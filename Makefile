# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test lint fmt vet clumsylint lint-self lint-mutation race bench fleet state clumsyd crashtest

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 10m ./...

race:
	$(GO) test -race -timeout 10m ./...

# lint is the full static-analysis gate: standard vet, formatting drift,
# the project's own invariant analyzers over the whole tree, the
# analyzers over themselves, and the mutation tests that prove each
# analyzer still catches its bug class (see internal/lint and
# DESIGN.md "Enforced invariants").
lint: vet fmt clumsylint lint-self lint-mutation

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l . 2>/dev/null)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

clumsylint:
	$(GO) run ./cmd/clumsylint ./...

# lint-self: the analyzer suite must hold its own code to the same bar.
lint-self:
	$(GO) run ./cmd/clumsylint ./internal/lint/... ./cmd/clumsylint/...

# lint-mutation: golden fixtures plus the mutation tests (deleted
# snapshot copy, dropped fingerprint input, de-annotated hot path,
# removed switch arm — each must be caught by its analyzer).
lint-mutation:
	$(GO) test -run 'TestMutation|TestAnnotationRemoval' ./internal/lint/...

# bench writes an auto-numbered BENCH_<n>.json performance snapshot of the
# quick matrix (drop -quick for the full one). Diff two snapshots with
# `go run ./cmd/clumsy bench -compare BENCH_0.json BENCH_1.json`.
bench:
	$(GO) run ./cmd/clumsy bench -quick -progress

# fleet runs the fleet degradation study (faulty-node fraction sweep on the
# virtual-time cluster simulator). `go run ./cmd/clumsy fleet -faulty N ...`
# runs one fleet simulation instead.
fleet:
	$(GO) run ./cmd/clumsy fleet -progress

# state runs the state-integrity study: flow-table corruption detection
# and the recovery ladder for the stateful apps (fw, flowtrack) across
# fault regime x scrub interval x workload shape.
state:
	$(GO) run ./cmd/clumsy state -progress

# clumsyd starts the campaign service on its default address with a local
# data directory. Submit work with e.g.
#   curl -X POST localhost:8377/campaigns -d '{"study":"table1"}'
clumsyd:
	$(GO) run ./cmd/clumsyd -data clumsyd-data

# crashtest runs the kill-point matrix: deterministic I/O fault injection
# (short writes, fsync errors, ENOSPC, torn renames) crashes the daemon at
# every injected point; journals must be absent or replayable, never
# corrupt, and recovery must complete byte-identically.
crashtest:
	$(GO) test -run 'TestCrashMatrix|TestKillAndRecover|TestSecondSignal' -v -timeout 10m ./cmd/clumsyd
	$(GO) test -run 'TestWriteFileFaultMatrix|TestStreamingFileFaultMatrix' -timeout 5m ./internal/atomicio
