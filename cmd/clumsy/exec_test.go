package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// Exec tests for process-level behaviour the in-process suite cannot
// reach: real signal delivery and exit codes.

var (
	cliBuildOnce sync.Once
	cliBuildErr  error
	cliBinPath   string
)

// clumsyBin builds the CLI once per test binary.
func clumsyBin(t *testing.T) string {
	t.Helper()
	cliBuildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "clumsy-bin")
		if err != nil {
			cliBuildErr = err
			return
		}
		cliBinPath = filepath.Join(dir, "clumsy")
		out, err := exec.Command("go", "build", "-o", cliBinPath, "clumsy/cmd/clumsy").CombinedOutput()
		if err != nil {
			cliBuildErr = fmt.Errorf("building clumsy: %v\n%s", err, out)
		}
	})
	if cliBuildErr != nil {
		t.Fatal(cliBuildErr)
	}
	return cliBinPath
}

// TestSecondSigintForceQuits drives the documented interrupt contract:
// the first SIGINT starts a graceful stop, a second one force-quits with
// exit 130 — and even then the journal holds only complete, parseable
// lines and the -out file was never published.
func TestSecondSigintForceQuits(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	outFile := filepath.Join(dir, "result.txt")
	// A heavyweight grid: each cell takes seconds, so the campaign is
	// still mid-cell when the signals land.
	cmd := exec.Command(clumsyBin(t), "table1", "-packets", "60000", "-trials", "2",
		"-journal", journal, "-out", outFile)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var errLines bytes.Buffer
	stopping := make(chan struct{}, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			errLines.WriteString(sc.Text() + "\n")
			if strings.Contains(sc.Text(), "stopping campaign") {
				select {
				case stopping <- struct{}{}:
				default:
				}
			}
		}
	}()

	// The journal file is truncated into existence when the campaign
	// opens it; that is the signal the run is underway.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if _, err := os.Stat(journal); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill() //lint:errcheck-ok — test teardown
			t.Fatalf("journal never created; stderr:\n%s", errLines.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-stopping:
	case <-time.After(10 * time.Second):
		cmd.Process.Kill() //lint:errcheck-ok — test teardown
		t.Fatalf("graceful-stop message never appeared; stderr:\n%s", errLines.String())
	}
	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	werr := cmd.Wait()
	var ee *exec.ExitError
	if !errors.As(werr, &ee) {
		t.Fatalf("force-quit run exited cleanly (err %v); stderr:\n%s", werr, errLines.String())
	}
	if code := ee.ExitCode(); code != 130 {
		t.Fatalf("exit code %d, want 130; stderr:\n%s", code, errLines.String())
	}

	// The interrupted campaign must leave no partial rendering behind...
	if _, err := os.Stat(outFile); !os.IsNotExist(err) {
		t.Fatalf("-out file exists after force quit (stat err %v)", err)
	}
	// ...and every journal line must be complete valid JSON.
	raw, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range bytes.Split(raw, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		if !json.Valid(line) {
			t.Fatalf("journal line %d corrupt after force quit: %q", i+1, line)
		}
	}
}
