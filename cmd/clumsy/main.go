// Command clumsy regenerates the tables and figures of "A Case for Clumsy
// Packet Processors" (Mallik & Memik, MICRO-37 2004) from the Go
// reproduction, and runs individual simulations.
//
// Usage:
//
//	clumsy <experiment> [flags]
//
// Experiments: table1, fig1b, fig2b, fig3, fig4, fig5, fig6, fig7, fig8,
// fig9, fig10, fig11, fig12, all, run, stats, bench, list.
//
// Every command accepts the observability flags -trace-out (JSONL event
// trace of all simulated runs), -cpuprofile/-memprofile (pprof), and
// -progress (grid progress on stderr).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"clumsy/internal/apps"
	"clumsy/internal/atomicio"
	"clumsy/internal/bench"
	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
	"clumsy/internal/cluster"
	"clumsy/internal/experiment"
	"clumsy/internal/metrics"
	"clumsy/internal/packet"
	"clumsy/internal/telemetry"
	"clumsy/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "clumsy:", err)
		os.Exit(1)
	}
}

// cliOpts carries every parsed flag through the experiment dispatch so
// that compound commands (extensions, all) re-dispatch without re-parsing
// flags or re-initialising the observability stack.
type cliOpts struct {
	opt         experiment.Options
	app         string
	packets     int
	seed        uint64
	scale       float64
	cr          float64
	crSet       bool // -cr given explicitly (fleet keeps the cluster default otherwise)
	dynamic     bool
	parity      bool
	strikes     int
	regime      clumsy.FaultRegime
	recovery    clumsy.RecoveryPolicy
	maxDropRate float64
	watchdog    float64
	format      string
	describe    bool
	out         string
	tracePath   string
	quick       bool
	compare     bool
	threshold   float64
	progress    bool
	nodes       int
	faulty      int
	dispatch    string
	wl          *workload.Spec // workload-v2 spec, nil = canonical trace
	scrub       int
	stateStr    int
	args        []string // positional arguments after the flags
	tel         *telemetry.Telemetry
}

// fleetConfig builds the single-run fleet configuration of `fleet -faulty N`.
func (o cliOpts) fleetConfig(pol cluster.DispatchPolicy) cluster.Config {
	cfg := cluster.Config{
		App:             o.app,
		Nodes:           o.nodes,
		Packets:         o.packets,
		Seed:            o.seed,
		Dispatch:        pol,
		FaultyNodes:     o.faulty,
		FaultScale:      o.scale,
		Dynamic:         o.dynamic,
		Recovery:        o.recovery,
		NodeMaxDropRate: o.maxDropRate,
		Workload:        o.wl,
		Telemetry:       o.tel,
	}
	if o.crSet {
		cfg.CycleTime = o.cr
	}
	return cfg
}

// runConfig builds the single-run configuration of the run/stats commands.
func (o cliOpts) runConfig() clumsy.Config {
	return clumsy.Config{
		App:            o.app,
		Packets:        max(o.packets, 1000),
		Seed:           max64(o.seed, 1),
		CycleTime:      o.cr,
		Dynamic:        o.dynamic,
		Detection:      detectionOf(o.parity),
		Strikes:        o.strikes,
		FaultScale:     maxf(o.scale, 1),
		Regime:         o.regime,
		Recovery:       o.recovery,
		MaxDropRate:    o.maxDropRate,
		WatchdogFactor: o.watchdog,
		ScrubInterval:  o.scrub,
		StateStrikes:   o.stateStr,
		Workload:       o.wl,
	}
}

// run parses flags, stands up the observability stack (telemetry hub,
// trace sink, grid monitor, pprof profiles), and dispatches the command.
func run(args []string, w io.Writer) (err error) {
	if len(args) == 0 {
		usage(w)
		return fmt.Errorf("missing experiment name")
	}
	cmd, rest := args[0], args[1:]

	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	packets := fs.Int("packets", 0, "packets per run (0 = default)")
	trials := fs.Int("trials", 0, "trials per configuration (0 = default)")
	scale := fs.Float64("scale", 0, "fault-rate multiplier (0 = default 1)")
	seed := fs.Uint64("seed", 0, "experiment seed (0 = default)")
	appName := fs.String("app", "route", "application for run/fig6-style experiments")
	cr := fs.Float64("cr", 1, "relative cycle time for run")
	dynamic := fs.Bool("dynamic", false, "use the dynamic frequency controller for run")
	parity := fs.Bool("parity", false, "enable parity detection for run")
	strikes := fs.Int("strikes", 1, "recovery strikes under parity for run")
	recovery := fs.String("recovery", "abort", "fatal-error policy: abort (paper semantics), drop (contain and continue), or degrade (drop + the escalating recovery ladder)")
	regime := fs.String("regime", "paper", "fault regime: paper (memoryless), burst (Gilbert-Elliott droop episodes), or permanent (stuck-at cell map)")
	maxDropRate := fs.Float64("max-drop-rate", 0, "under -recovery drop, abort once this drop fraction is exceeded (0 = unlimited)")
	watchdog := fs.Float64("watchdog", 0, "per-packet instruction budget as a multiple of the golden worst packet (0 = default 500)")
	format := fs.String("format", "text", "output format: text or csv (stats: text=Prometheus or json)")
	out := fs.String("out", "", "write command output to this file atomically instead of stdout")
	journalPath := fs.String("journal", "", "record completed campaign cells to this JSONL journal")
	resume := fs.Bool("resume", false, "with -journal, skip cells already recorded in the journal")
	runTimeout := fs.Duration("run-timeout", 0, "per-grid-cell wall-clock deadline, e.g. 90s (0 = none)")
	retries := fs.Int("retries", 0, "retries per cell for transient host failures (simulated outcomes never retry)")
	retryBackoff := fs.Duration("retry-backoff", 0, "base retry delay, doubled per attempt (0 = default 100ms)")
	tracePath := fs.String("trace", "", "replay a binary trace file instead of generating (run command)")
	traceOut := fs.String("trace-out", "", "write a JSONL event trace of every simulated run to this file")
	cpuprofile := fs.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memprofile := fs.String("memprofile", "", "write a pprof heap profile to this file")
	progress := fs.Bool("progress", false, "report experiment-grid progress on stderr")
	describe := fs.Bool("describe", false, "stats: print the telemetry name registry instead of running a simulation")
	nodes := fs.Int("nodes", 0, "fleet: node count (0 = 8)")
	faulty := fs.Int("faulty", -1, "fleet: hostile node count for one fleet simulation (-1 = run the degradation study instead)")
	dispatchPolicy := fs.String("dispatch", "", "fleet: dispatch policy, flow (default) or least")
	shape := fs.String("shape", "", "workload-v2 temporal shape: steady, diurnal, flash, or onoff (empty = canonical trace)")
	shape2 := fs.String("shape2", "", "workload-v2 stacked shape multiplied onto -shape, mean rate renormalized to 1 (empty = no stacking)")
	periods2 := fs.Int("periods2", 0, "cycle count of the -shape2 profile (0 = that shape's default)")
	adversarial := fs.Float64("adversarial", 0, "workload-v2 malformed-packet fraction (truncated/fuzzed wire images)")
	churn := fs.Float64("churn", 0, "workload-v2 flow-churn fraction (each churned packet gets a fresh flow identity)")
	scrub := fs.Int("scrub", 0, "flow-table scrub interval in packets for stateful apps (0 = default, negative = disabled)")
	stateStrikes := fs.Int("state-strikes", 0, "per-record corruption strike budget before the run is declared unrecoverable (0 = default)")
	quick := fs.Bool("quick", false, "bench: reduced matrix and packet counts (CI smoke-test scale)")
	compareFlag := fs.Bool("compare", false, "bench: compare two snapshot files (bench -compare OLD NEW) instead of running")
	threshold := fs.Float64("threshold", bench.DefaultThreshold, "bench -compare: relative regression gate on tracked metrics")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	policy, err := clumsy.ParseRecoveryPolicy(*recovery)
	if err != nil {
		return err
	}
	faultRegime, err := clumsy.ParseFaultRegime(*regime)
	if err != nil {
		return err
	}

	// Campaign context: the first SIGINT/SIGTERM cancels it, letting the
	// experiment grids drain in-flight cells, flush the journal, and report
	// partial progress. A second signal force-quits.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer func() {
		signal.Stop(sig)
		close(sig)
	}()
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		fmt.Fprintf(os.Stderr, "\nclumsy: %v — stopping campaign (send again to force quit)\n", s)
		cancel()
		if _, ok := <-sig; ok {
			os.Exit(130)
		}
	}()

	o := cliOpts{
		opt: experiment.Options{
			Packets: *packets, Trials: *trials, FaultScale: *scale, Seed: *seed,
			Recovery: policy, MaxDropRate: *maxDropRate,
			Ctx: ctx, RunTimeout: *runTimeout, Retries: *retries, RetryBackoff: *retryBackoff,
		},
		app:         *appName,
		packets:     *packets,
		seed:        *seed,
		scale:       *scale,
		cr:          *cr,
		dynamic:     *dynamic,
		parity:      *parity,
		strikes:     *strikes,
		regime:      faultRegime,
		recovery:    policy,
		maxDropRate: *maxDropRate,
		watchdog:    *watchdog,
		format:      *format,
		describe:    *describe,
		out:         *out,
		tracePath:   *tracePath,
		quick:       *quick,
		compare:     *compareFlag,
		threshold:   *threshold,
		progress:    *progress,
		nodes:       *nodes,
		faulty:      *faulty,
		dispatch:    *dispatchPolicy,
		scrub:       *scrub,
		stateStr:    *stateStrikes,
		args:        fs.Args(),
	}
	if *shape != "" || *shape2 != "" || *adversarial > 0 || *churn > 0 {
		sh := workload.ShapeSteady
		if *shape != "" {
			var perr error
			if sh, perr = workload.ParseShape(*shape); perr != nil {
				return perr
			}
		}
		sh2 := workload.ShapeSteady
		if *shape2 != "" {
			var perr error
			if sh2, perr = workload.ParseShape(*shape2); perr != nil {
				return perr
			}
		}
		o.wl = &workload.Spec{Shape: sh, Shape2: sh2, Periods2: *periods2,
			Adversarial: *adversarial, Churn: *churn}
	}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "cr" {
			o.crSet = true
		}
	})

	// Observability stack. The hub is installed as the process default so
	// that every clumsy.Run — including the ones buried inside experiment
	// grids — is counted and traced without plumbing changes.
	o.tel = telemetry.New()
	clumsy.SetDefaultTelemetry(o.tel)
	defer clumsy.SetDefaultTelemetry(nil)
	if *traceOut != "" {
		// Atomic: the trace file appears under its final name only once the
		// sink is flushed and closed, so a killed command never leaves a
		// truncated JSONL behind.
		f, err := atomicio.Create(*traceOut)
		if err != nil {
			return err
		}
		sink := telemetry.NewJSONLSink(f)
		o.tel.SetSink(sink)
		defer sink.Close()
	}
	if *journalPath != "" {
		j, loaded, jerr := experiment.OpenJournal(*journalPath, *resume)
		if jerr != nil {
			return jerr
		}
		o.opt.Journal = j
		if *resume {
			fmt.Fprintf(os.Stderr, "clumsy: resuming campaign from %s (%d cells recorded)\n", *journalPath, loaded)
			o.tel.StartRun(nil).CampaignResume(*journalPath, loaded)
		}
	} else if *resume {
		return fmt.Errorf("-resume requires -journal")
	}
	if *progress {
		mon := &telemetry.RunMonitor{Registry: o.tel.Registry, OnProgress: printProgress}
		experiment.SetMonitor(mon)
		defer experiment.SetMonitor(nil)
	}
	if *cpuprofile != "" {
		f, err := atomicio.Create(*cpuprofile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Abort()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "clumsy: closing cpu profile: %v\n", err)
			}
		}()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}
	err = dispatch(cmd, o, w)
	if errors.Is(err, context.Canceled) {
		// Interrupted: report how much of the campaign survives, and how to
		// pick it back up.
		if j := o.opt.Journal; j != nil {
			fmt.Fprintf(os.Stderr, "clumsy: interrupted — %d cells journaled to %s; rerun with -resume to continue\n",
				j.Len(), j.Path())
		} else {
			fmt.Fprintln(os.Stderr, "clumsy: interrupted — no journal kept (use -journal to make campaigns resumable)")
		}
	}
	return err
}

// dispatch routes the command's output: with -out the full rendering is
// written atomically to the file (a cancelled or failed command leaves no
// partial file), otherwise it streams to w. The trace and bench commands
// manage their own -out semantics (binary trace payload; snapshot JSON).
func dispatch(cmd string, o cliOpts, w io.Writer) error {
	if o.out != "" && cmd != "trace" && cmd != "bench" {
		return atomicio.WriteFile(o.out, func(f io.Writer) error {
			return execute(cmd, o, f)
		})
	}
	return execute(cmd, o, w)
}

// printProgress renders one grid-progress line on stderr (carriage-return
// updated in place, finished with a newline).
func printProgress(p telemetry.Progress) {
	// Drained cells (grid failure or cancellation) would otherwise vanish
	// from the count: Done never reaches Total and the line looks stuck.
	skipped := ""
	if p.Skipped > 0 {
		skipped = fmt.Sprintf("  skipped=%d", p.Skipped)
	}
	fmt.Fprintf(os.Stderr, "\r%d/%d runs  avg %v/run  elapsed %v  workers %.0f%% busy%s   ",
		p.Done, p.Total,
		p.AvgRun.Round(time.Millisecond), p.Elapsed.Round(time.Millisecond),
		p.Utilization()*100, skipped)
	if p.Done >= p.Total {
		fmt.Fprintln(os.Stderr)
	}
}

// writeHeapProfile dumps the heap profile at exit; failures are reported
// but do not change the command's outcome.
func writeHeapProfile(path string) {
	runtime.GC()
	if err := atomicio.WriteFile(path, pprof.WriteHeapProfile); err != nil {
		fmt.Fprintln(os.Stderr, "clumsy: memprofile:", err)
	}
}

// execute dispatches one (sub)command with already-parsed options.
func execute(cmd string, o cliOpts, w io.Writer) error {
	emitTable := func(t *experiment.Table) error {
		if o.format == "csv" {
			return t.RenderCSV(w)
		}
		t.Render(w)
		return nil
	}
	emitFigure := func(f *experiment.Figure) error {
		if o.format == "csv" {
			return f.RenderCSV(w)
		}
		f.Render(w)
		return nil
	}
	opt := o.opt

	switch cmd {
	case "list":
		usage(w)
		return nil
	case "fig1b":
		return emitFigure(experiment.Fig1b())
	case "fig2b":
		return emitFigure(experiment.Fig2b())
	case "fig3":
		return emitFigure(experiment.Fig3())
	case "fig4":
		return emitFigure(experiment.Fig4())
	case "fig5":
		return emitFigure(experiment.Fig5())
	case "table1":
		rows, err := experiment.Table1(opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.Table1Render(rows, opt))
	case "fig6", "fig7":
		// Figure 6 studies route, Figure 7 studies nat; -app overrides.
		app := o.app
		if app == "route" && cmd == "fig7" {
			app = "nat"
		}
		sweeps, err := experiment.ErrorBehaviour(app, opt)
		if err != nil {
			return err
		}
		label := map[string]string{"fig6": "Figure 6", "fig7": "Figure 7"}[cmd]
		for _, t := range experiment.ErrorBehaviourRender(sweeps, label, opt) {
			if err := emitTable(t); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	case "fig8":
		rows, err := experiment.Fig8(opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.Fig8Render(rows, opt))
	case "fig9", "fig10", "fig11", "fig12":
		pairs := map[string][]string{
			"fig9":  {"route", "crc"},
			"fig10": {"md5", "tl"},
			"fig11": {"drr", "nat"},
			"fig12": {"url", "average"},
		}[cmd]
		for i, app := range pairs {
			panel := fmt.Sprintf("Figure %s(%c)", cmd[3:], 'a'+i)
			var r *experiment.EDFResult
			var err error
			if app == "average" {
				var all []*experiment.EDFResult
				for _, name := range apps.Names() {
					g, err := experiment.EDFGrid(name, opt)
					if err != nil {
						return err
					}
					all = append(all, g)
				}
				r = experiment.EDFAverage(all)
			} else {
				r, err = experiment.EDFGrid(app, opt)
				if err != nil {
					return err
				}
			}
			if err := emitTable(experiment.EDFRender(r, panel, opt)); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	case "ecc":
		cells, err := experiment.ExtDetection(o.app, opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.ExtDetectionRender(o.app, cells, opt))
	case "subblock":
		cells, err := experiment.ExtSubBlock(o.app, opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.ExtSubBlockRender(o.app, cells, opt))
	case "exponents":
		rows, err := experiment.ExtExponents(o.app, opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.ExtExponentsRender(o.app, rows, opt))
	case "dvs":
		rows, err := experiment.ExtDVS(o.app, opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.ExtDVSRender(o.app, rows, opt))
	case "geometry":
		cells, err := experiment.ExtGeometry(o.app, opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.ExtGeometryRender(o.app, cells, opt))
	case "media":
		// The paper notes its ideas apply "to any type of processor that
		// executes applications with fault resiliency (e.g., media
		// processors)"; this grid runs the IMA ADPCM extension workload.
		r, err := experiment.EDFGrid("adpcm", opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.EDFRender(r, "Extension: media processor (adpcm)", opt))
	case "tuning":
		cells, err := experiment.ExtTuning(o.app, opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.ExtTuningRender(o.app, cells, opt))
	case "extensions":
		for _, sub := range []string{"ecc", "subblock", "exponents", "dvs", "geometry", "tuning", "media"} {
			if err := execute(sub, o, w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
	case "reliability":
		cells, err := experiment.Reliability(opt)
		if err != nil {
			return err
		}
		for _, t := range experiment.ReliabilityRender(cells, opt) {
			if err := emitTable(t); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		points, err := experiment.ReliabilityCurve(o.app, opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.ReliabilityCurveRender(o.app, points, opt))
	case "fleet":
		pol, err := cluster.ParseDispatchPolicy(o.dispatch)
		if err != nil {
			return err
		}
		if o.faulty >= 0 {
			// One fleet simulation: N nodes, the given hostile count, full
			// health lifecycle, SLO report (text, or -format json).
			r, err := cluster.Run(o.fleetConfig(pol))
			if err != nil {
				return err
			}
			if o.format == "json" {
				return r.WriteJSON(w)
			}
			return r.WriteText(w)
		}
		// The fleet degradation study: journaled, resumable, rendered like
		// every other campaign table.
		cells, err := experiment.Fleet(o.app, opt)
		if err != nil {
			return err
		}
		return emitTable(experiment.FleetRender(o.app, cells, opt))
	case "state":
		// The state-integrity study: flow-table corruption detection and
		// recovery for the stateful apps, journaled and resumable like
		// every other campaign.
		for i, app := range experiment.StateApps() {
			cells, err := experiment.StateIntegrity(app, opt)
			if err != nil {
				return err
			}
			if err := emitTable(experiment.StateIntegrityRender(app, cells, opt)); err != nil {
				return err
			}
			if i < len(experiment.StateApps())-1 {
				fmt.Fprintln(w)
			}
		}
	case "trace":
		return dumpTrace(w, o.app, max(o.packets, 20), max64(o.seed, 1), o.out)
	case "bench":
		return benchCommand(o, w)
	case "verify":
		claims, err := experiment.VerifyClaims(opt)
		if err != nil {
			return err
		}
		if err := emitTable(experiment.VerifyRender(claims, opt)); err != nil {
			return err
		}
		for _, c := range claims {
			if !c.Pass {
				return fmt.Errorf("claim %q failed", c.Name)
			}
		}
	case "all":
		return allExperiments(opt, w)
	case "run":
		res, err := runOne(o.runConfig(), o.tracePath)
		if err != nil {
			return err
		}
		return report(w, res)
	case "stats":
		if o.describe {
			return describeNames(w)
		}
		// Execute one run exactly like `run` (same defaults and seeding,
		// so its counts match a trace captured by `run -trace-out` with
		// the same flags), then dump the counter registry.
		if _, err := runOne(o.runConfig(), o.tracePath); err != nil {
			return err
		}
		if o.format == "json" {
			return o.tel.Registry.WriteJSON(w)
		}
		return o.tel.Registry.WritePrometheus(w)
	default:
		usage(w)
		return fmt.Errorf("unknown experiment %q", cmd)
	}
	return nil
}

// describeNames prints the telemetry name registry — the same table the
// telemnames analyzer enforces (one of the nine clumsylint invariants;
// see DESIGN.md "Enforced invariants") — so dashboards and scripts can
// discover every instrument and event the simulator can emit.
func describeNames(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	kind := telemetry.Kind(-1)
	for _, spec := range telemetry.Names() {
		if spec.Kind != kind {
			if kind != telemetry.Kind(-1) {
				fmt.Fprintln(tw)
			}
			kind = spec.Kind
			fmt.Fprintf(tw, "%sS\n", strings.ToUpper(kind.String()))
		}
		fmt.Fprintf(tw, "  %s\t%s\n", spec.Name, spec.Help)
	}
	return tw.Flush()
}

func detectionOf(parity bool) cache.Detection {
	if parity {
		return cache.DetectionParity
	}
	return cache.DetectionNone
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// dumpTrace generates an application's workload and either writes it as a
// binary trace file or prints a human-readable summary.
func dumpTrace(w io.Writer, appName string, packets int, seed uint64, out string) error {
	app, err := apps.New(appName)
	if err != nil {
		return err
	}
	tr, err := packet.Generate(app.TraceConfig(packets, seed))
	if err != nil {
		return err
	}
	if out != "" {
		if err := atomicio.WriteFile(out, tr.Serialize); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %d packets to %s\n", len(tr.Packets), out)
		return nil
	}
	fmt.Fprintf(w, "# %s workload, %d packets, seed %d\n", appName, packets, seed)
	fmt.Fprintf(w, "%-5s %-17s %-17s %-5s %-4s %-5s %s\n", "idx", "src", "dst", "proto", "ttl", "len", "payload")
	for i := range tr.Packets {
		p := &tr.Packets[i]
		preview := ""
		for _, b := range p.Payload {
			if len(preview) >= 24 {
				break
			}
			if b >= 0x20 && b < 0x7f {
				preview += string(rune(b))
			} else {
				preview += "."
			}
		}
		fmt.Fprintf(w, "%-5d %-17s %-17s %-5d %-4d %-5d %q\n",
			i, ipString(p.Src), ipString(p.Dst), p.Proto, p.TTL, len(p.Payload), preview)
	}
	return nil
}

func ipString(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", a>>24, a>>16&0xff, a>>8&0xff, a&0xff)
}

// runOne executes one configuration. If tracePath is non-empty, the stored
// trace is replayed instead of generating one.
func runOne(cfg clumsy.Config, tracePath string) (*clumsy.Result, error) {
	if tracePath == "" {
		return clumsy.Run(cfg)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, err
	}
	tr, terr := packet.ReadTrace(f)
	f.Close() //lint:errcheck-ok — read-only file, nothing to flush
	if terr != nil {
		return nil, terr
	}
	return clumsy.RunWithTrace(cfg, tr)
}

// report prints the full human-readable report of one run.
func report(w io.Writer, res *clumsy.Result) error {
	cfg := res.Config
	e := metrics.DefaultExponents()
	fmt.Fprintf(w, "app %s  Cr=%g dynamic=%v detection=%v strikes=%d scale=%g\n",
		cfg.App, cfg.CycleTime, cfg.Dynamic, cfg.Detection, cfg.Strikes, cfg.FaultScale)
	fmt.Fprintf(w, "golden: %d instrs, %.0f cycles, %.1f cycles/packet, %.4g J\n",
		res.GoldenInstrs, res.GoldenCycles, res.GoldenDelay, res.GoldenEnergy.Total())
	fmt.Fprintf(w, "clumsy: %d instrs, %.0f cycles, %.1f cycles/packet, %.4g J\n",
		res.Instrs, res.Cycles, res.Delay, res.Energy.Total())
	if res.Cycles > 0 {
		bd := res.Breakdown
		pct := func(v float64) float64 { return v / res.Cycles * 100 }
		fmt.Fprintf(w, "cycles: compute %.0f (%.1f%%), l1d %.0f (%.1f%%), l1i %.0f (%.1f%%), l2 %.0f (%.1f%%), mem %.0f (%.1f%%), recovery %.0f (%.1f%%), freq-penalty %.0f (%.1f%%)\n",
			bd.Compute, pct(bd.Compute), bd.L1D, pct(bd.L1D), bd.L1I, pct(bd.L1I),
			bd.L2, pct(bd.L2), bd.Mem, pct(bd.Mem), bd.Recovery, pct(bd.Recovery),
			bd.FreqPenalty, pct(bd.FreqPenalty))
	}
	fmt.Fprintf(w, "packets: %d/%d processed, fallibility %.4f, fatal %v\n",
		res.Report.Processed, res.Report.GoldenPackets, res.Fallibility(), res.Report.Fatal)
	if cfg.Recovery == clumsy.RecoverDrop || cfg.Recovery == clumsy.RecoverDegrade {
		fmt.Fprintf(w, "containment: %d dropped, %d contained, %d pages restored, drop rate %.5f\n",
			res.Report.Dropped, res.Contained, res.RestoredPages, res.Report.DropRate())
		if res.FatalErr != nil {
			fmt.Fprintf(w, "  run still ended fatally: %v\n", res.FatalErr)
		}
	}
	switch cfg.Regime {
	case clumsy.RegimePaper:
		// The memoryless regime has no regime-specific counters to print.
	case clumsy.RegimeBurst:
		fmt.Fprintf(w, "burst: %d bad-state episodes\n", res.BurstEpisodes)
	case clumsy.RegimePermanent:
		fmt.Fprintf(w, "stuck-at: %d permanent hits, %d intermittent hits\n",
			res.PermanentHits, res.IntermittentHits)
	}
	if res.LinesDisabled > 0 || res.Recovery.LineDisables > 0 || res.SpatialBackoffs > 0 {
		fmt.Fprintf(w, "ladder: %d lines disabled (%.1f%% capacity dead), %d re-enabled, %d bypass accesses, %d spatial back-offs\n",
			res.LinesDisabled, res.DisabledFrac*100, res.Recovery.LineReEnables,
			res.Recovery.Bypasses, res.SpatialBackoffs)
	}
	if res.StateRecords > 0 {
		fmt.Fprintf(w, "state: %d flow records; %d mismatches detected, %d evicted, %d rebuilt, %d scrub passes; end-of-run divergence %d (%d undetected)\n",
			res.StateRecords, res.StateDetected, res.StateEvictions, res.StateRebuilds,
			res.StateScrubs, res.StateDiverged, res.StateUndetected)
	}
	fmt.Fprintf(w, "faults: %d read, %d write; parity errors %d, retries %d, recoveries %d\n",
		res.Recovery.FaultsOnRead, res.Recovery.FaultsOnWrite,
		res.Recovery.ParityErrors, res.Recovery.Retries, res.Recovery.Recoveries)
	fmt.Fprintf(w, "L1D: %d accesses, %.2f%% miss rate\n",
		res.L1DStats.Accesses(), res.L1DStats.MissRate()*100)
	if res.LevelPackets != nil {
		fmt.Fprintf(w, "dynamic: %d switches, packets per level %v\n", res.Switches, res.LevelPackets)
		for _, ev := range res.Timeline {
			fmt.Fprintf(w, "  packet %6d -> Cr = %g\n", ev.Packet, ev.CycleTime)
		}
	}
	fmt.Fprintf(w, "energy-delay^2-fallibility^2: %.4g (golden %.4g, ratio %.3f)\n",
		res.EDF(e), res.GoldenEDF(e), res.EDF(e)/res.GoldenEDF(e))
	for _, name := range res.Report.StructureNames() {
		if p := res.Report.ErrorProbability(name); p > 0 {
			fmt.Fprintf(w, "  error[%s] = %.5f\n", name, p)
		}
	}
	return nil
}

func allExperiments(opt experiment.Options, w io.Writer) error {
	for _, f := range []*experiment.Figure{
		experiment.Fig1b(), experiment.Fig2b(), experiment.Fig3(),
		experiment.Fig4(), experiment.Fig5(),
	} {
		f.Render(w)
		fmt.Fprintln(w)
	}
	rows, err := experiment.Table1(opt)
	if err != nil {
		return err
	}
	experiment.Table1Render(rows, opt).Render(w)
	fmt.Fprintln(w)
	for _, app := range []string{"route", "nat"} {
		label := "Figure 6"
		if app == "nat" {
			label = "Figure 7"
		}
		sweeps, err := experiment.ErrorBehaviour(app, opt)
		if err != nil {
			return err
		}
		for _, t := range experiment.ErrorBehaviourRender(sweeps, label, opt) {
			t.Render(w)
			fmt.Fprintln(w)
		}
	}
	fatal, err := experiment.Fig8(opt)
	if err != nil {
		return err
	}
	experiment.Fig8Render(fatal, opt).Render(w)
	fmt.Fprintln(w)
	results, err := experiment.AllEDF(opt)
	if err != nil {
		return err
	}
	panels := []string{"Figure 9(a)", "Figure 9(b)", "Figure 10(a)", "Figure 10(b)",
		"Figure 11(a)", "Figure 11(b)", "Figure 12(a)", "Figure 12(b)"}
	order := map[string]int{"route": 0, "crc": 1, "md5": 2, "tl": 3, "drr": 4, "nat": 5, "url": 6, "average": 7}
	for _, r := range results {
		idx, ok := order[r.App]
		if !ok {
			continue
		}
		experiment.EDFRender(r, panels[idx], opt).Render(w)
		fmt.Fprintln(w)
	}
	// Close the campaign with the programmatic claims verdict.
	claims, err := experiment.VerifyClaims(opt)
	if err != nil {
		return err
	}
	experiment.VerifyRender(claims, opt).Render(w)
	return nil
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: clumsy <experiment> [flags]

experiments:
  fig1b   voltage swing vs cycle time (circuit model)
  fig2b   SRAM noise-immunity curves
  fig3    switching-combination noise distribution
  fig4    fault probability vs voltage swing
  fig5    fault probability vs cycle time + fitted formula (Eq. 4)
  table1  application properties and fallibility factors
  fig6    route error probabilities (control/data/both planes)
  fig7    nat error probabilities (control/data/both planes)
  fig8    fatal error probabilities per application
  fig9    EDF^2 panels: route, crc
  fig10   EDF^2 panels: md5, tl
  fig11   EDF^2 panels: drr, nat
  fig12   EDF^2 panels: url, average of all applications
  all     everything above in paper order
  verify  check the paper's headline claims programmatically (exit 1 on failure)
  run     one simulation (-app -cr -dynamic -parity -strikes -scale
          -regime paper|burst|permanent -recovery abort|drop|degrade
          -max-drop-rate X -watchdog X [-trace f])
  stats   one simulation like run, then dump the telemetry counter registry
          (-format text = Prometheus exposition, -format json = JSON;
          -describe prints the registered instrument/event name table)
  trace   dump an application's workload (-app -packets -seed [-out file])
  fleet   fleet-scale serving on the virtual-time cluster simulator:
          N clumsy nodes behind a dispatcher with node health tracking,
          drain-and-re-clock, failover, and SLO-guarded load shedding.
          Plain "fleet" runs the journaled degradation study (faulty-node
          fraction sweep, -app -packets -trials); "fleet -faulty N" runs one
          fleet simulation (-nodes N -dispatch flow|least -packets -seed
          -scale -cr -dynamic, -format json for the machine-readable report)
  bench   structured performance benchmark: packets/sec, ns/packet,
          allocs/packet, instructions/packet, and per-component cycle
          attribution over app x recovery x regime, plus telemetry
          micro-benchmarks; writes an auto-numbered BENCH_<n>.json snapshot
          (-out overrides the path, -quick for CI smoke-test scale)
          bench -compare [-threshold X] [-format json] OLD NEW
          diffs two snapshots and exits non-zero when a tracked metric
          regresses beyond the threshold (default 10%)
  list    this text

extensions (beyond the paper's evaluation; -app selects the workload):
  ecc        SEC-DED error correction vs parity vs no detection
  subblock   sub-block (per-word) recovery vs full-line invalidation
  exponents  sensitivity of the winner to the EDF metric weights
  dvs        conventional voltage scaling vs clumsy over-clocking
  geometry   L1 data cache size ablation
  tuning     dynamic-controller threshold study (the paper's X1/X2 choice)
  media      the claim beyond networking: EDF grid for an IMA ADPCM codec
  extensions all seven extension studies
  reliability  fault regime x recovery policy sweep over every application
               (paper/burst/permanent x abort/drop/degrade) plus the
               graceful-degradation curve: drop rate and IPC vs the
               force-disabled L1D capacity fraction (-app selects the curve's
               workload)
  state        state-integrity study for the stateful apps (fw, flowtrack):
               fault regime x scrub interval x workload shape, reporting
               checksum detections, recovery-ladder actions, and end-of-run
               flow-record divergence vs the golden shadow (-packets -trials
               -scale; journaled/resumable with -journal/-resume)

common flags: -packets N  -trials N  -scale X  -seed N  -format text|csv
              -out f (write output atomically to f instead of stdout)

resilient campaigns (any experiment command):
  -journal f.jsonl     record every completed grid cell to a durable journal
                       (atomic rewrite per cell; survives kill at any point)
  -resume              with -journal, skip cells already recorded; the resumed
                       campaign's output is byte-identical to an uninterrupted run
  -run-timeout D       per-grid-cell wall-clock deadline (e.g. 90s); a wedged
                       cell fails with a diagnostic instead of hanging the grid
  -retries N           retry transient host failures per cell with exponential
                       backoff; simulated outcomes (drop-rate exceeded, watchdog,
                       traps) are deterministic and never retried
  -retry-backoff D     base retry delay, doubled per attempt (default 100ms)
  SIGINT/SIGTERM       first signal drains in-flight cells, flushes the journal,
                       and reports partial progress; second force-quits

fault containment (any simulation command):
  -recovery abort|drop|degrade
                         abort reproduces the paper's measurement semantics
                         (a fatal error ends the run); drop contains fatal
                         errors at packet granularity: the packet is dropped,
                         simulated memory is rolled back to the last packet
                         boundary, and the run continues; degrade adds the
                         escalating recovery ladder on top of drop: k-strike
                         retry, then per-line disable after repeated strikes,
                         then strike-informed frequency back-off
  -regime paper|burst|permanent
                         fault regime: the paper's memoryless process, the
                         Gilbert-Elliott burst model (voltage-droop episodes),
                         or a per-line stuck-at cell map over the paper process
  -max-drop-rate X       under drop, declare the run failed once the dropped
                         fraction of attempted packets exceeds X (0 = never)
  -watchdog X            per-packet instruction budget as a multiple of the
                         golden run's worst packet (0 = default 500); tight
                         budgets (< 1) make heavy packets trip the watchdog

stateful apps (fw, flowtrack; run/stats/fleet commands):
  -scrub N               flow-table scrub interval in packets (0 = default 64,
                         negative = disabled); the scrub pass verifies every
                         record's checksum and runs the recovery ladder on
                         latent corruption
  -state-strikes N       per-record corruption budget: strike 1 evicts the
                         record, later strikes rebuild it from the golden
                         shadow, exhausting the budget ends the run with an
                         unrecoverable-state error (0 = default 4)

workload v2 (run/stats/fleet commands):
  -shape S               temporal shape: steady, diurnal, flash, or onoff;
                         fleet runs modulate arrival gaps by the shape, batch
                         runs keep the trace order but scale the adversarial
                         and churn pressure with the local intensity
  -shape2 S              stack a second shape multiplicatively on -shape
                         (e.g. on/off bursts riding a diurnal swing); the
                         product is renormalized so the mean rate stays 1
  -periods2 N            cycle count for the -shape2 profile (0 = default)
  -adversarial X         fraction of packets replaced by malformed wire images
                         (truncated headers, fuzzed header fields)
  -churn X               fraction of packets rewritten into fresh one-packet
                         flows (flow-churn flood against stateful tables)

observability (any command):
  -trace-out f.jsonl   structured event trace of every simulated run
                       (fault injections, recoveries, DVS transitions,
                       packet drops, run lifecycle; cycle timestamps)
  -progress            live experiment-grid progress on stderr
  -cpuprofile f        pprof CPU profile of the whole command
  -memprofile f        pprof heap profile written at exit
`)
}
