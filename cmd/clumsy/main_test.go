package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"clumsy/internal/packet"
)

func capture(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestNoArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing experiment should error")
	}
	if !strings.Contains(buf.String(), "usage:") {
		t.Fatal("usage not printed")
	}
}

func TestUnknownCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"figZZ"}, &buf); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestList(t *testing.T) {
	out := capture(t, "list")
	for _, frag := range []string{"table1", "fig12", "run"} {
		if !strings.Contains(out, frag) {
			t.Errorf("list output missing %q", frag)
		}
	}
}

func TestCircuitFigures(t *testing.T) {
	cases := map[string]string{
		"fig1b": "voltage swing",
		"fig2b": "noise immunity",
		"fig3":  "switching combinations",
		"fig4":  "fault at various voltage levels",
		"fig5":  "different cycle times",
	}
	for cmd, frag := range cases {
		out := capture(t, cmd)
		if !strings.Contains(out, frag) {
			t.Errorf("%s output missing %q", cmd, frag)
		}
	}
}

func TestTable1Command(t *testing.T) {
	out := capture(t, "table1", "-packets", "150", "-trials", "1")
	for _, frag := range []string{"Table I", "md5", "Fallibility"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table1 output missing %q", frag)
		}
	}
}

func TestFig6And7Commands(t *testing.T) {
	out := capture(t, "fig6", "-packets", "100", "-trials", "1")
	if !strings.Contains(out, "route") || !strings.Contains(out, "control plane") {
		t.Error("fig6 should sweep route over planes")
	}
	out = capture(t, "fig7", "-packets", "100", "-trials", "1")
	if !strings.Contains(out, "nat") {
		t.Error("fig7 should study nat")
	}
}

func TestFig8Command(t *testing.T) {
	out := capture(t, "fig8", "-packets", "100", "-trials", "1")
	if !strings.Contains(out, "fatal error probabilities") || !strings.Contains(out, "avrg") {
		t.Error("fig8 output malformed")
	}
}

func TestFig9Command(t *testing.T) {
	out := capture(t, "fig9", "-packets", "100", "-trials", "1")
	if !strings.Contains(out, "Figure 9(a)") || !strings.Contains(out, "Figure 9(b)") {
		t.Error("fig9 should render two panels")
	}
	if !strings.Contains(out, "two strikes") {
		t.Error("fig9 missing recovery schemes")
	}
}

func TestRunCommand(t *testing.T) {
	out := capture(t, "run", "-app", "route", "-cr", "0.5", "-parity", "-strikes", "2", "-packets", "1000")
	for _, frag := range []string{"golden:", "clumsy:", "fallibility", "energy-delay^2-fallibility^2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("run output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunDynamic(t *testing.T) {
	out := capture(t, "run", "-app", "crc", "-dynamic", "-parity", "-strikes", "3", "-packets", "1000")
	if !strings.Contains(out, "dynamic:") {
		t.Errorf("dynamic run should report level usage:\n%s", out)
	}
}

func TestRunUnknownApp(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"run", "-app", "bogus"}, &buf); err == nil {
		t.Fatal("unknown app should error")
	}
}

func TestTraceCommand(t *testing.T) {
	out := capture(t, "trace", "-app", "url", "-packets", "25", "-seed", "3")
	if !strings.Contains(out, "url workload") || !strings.Contains(out, "GET /") {
		t.Fatalf("trace output malformed:\n%s", out)
	}
}

func TestTraceCommandBinaryOut(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.bin"
	out := capture(t, "trace", "-app", "route", "-packets", "30", "-out", path)
	if !strings.Contains(out, "wrote 30 packets") {
		t.Fatalf("unexpected output: %s", out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := packet.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != 30 {
		t.Fatalf("read back %d packets", len(tr.Packets))
	}
}

func TestCSVFormat(t *testing.T) {
	out := capture(t, "fig1b", "-format", "csv")
	if !strings.HasPrefix(out, "series,Cr,Vsr") {
		t.Fatalf("csv header missing:\n%s", out[:40])
	}
	out = capture(t, "table1", "-packets", "120", "-trials", "1", "-format", "csv")
	if !strings.HasPrefix(out, "App,") {
		t.Fatalf("table csv header missing:\n%s", out[:40])
	}
}

func TestExtensionCommands(t *testing.T) {
	for cmd, frag := range map[string]string{
		"ecc":       "detection schemes",
		"subblock":  "sub-block recovery",
		"exponents": "metric-weighting",
		"dvs":       "DVS vs clumsy",
	} {
		out := capture(t, cmd, "-app", "route", "-packets", "120", "-trials", "1")
		if !strings.Contains(out, frag) {
			t.Errorf("%s output missing %q", cmd, frag)
		}
	}
}

func TestRunWithTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.bin"
	capture(t, "trace", "-app", "route", "-packets", "200", "-out", path)
	out := capture(t, "run", "-app", "route", "-cr", "0.5", "-parity", "-strikes", "2", "-trace", path)
	if !strings.Contains(out, "packets: 200/200 processed") {
		t.Fatalf("replayed run malformed:\n%s", out)
	}
}

func TestRunWithMissingTraceFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"run", "-trace", "/no/such/file"}, &buf); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestMediaCommand(t *testing.T) {
	out := capture(t, "media", "-packets", "120", "-trials", "1")
	if !strings.Contains(out, "adpcm") || !strings.Contains(out, "media processor") {
		t.Fatalf("media output malformed:\n%s", out)
	}
}

func TestVerifyCommand(t *testing.T) {
	// At a moderate deterministic scale every claim passes and the
	// command exits cleanly.
	out := capture(t, "verify", "-packets", "1200", "-trials", "2")
	if !strings.Contains(out, "PASS") {
		t.Fatalf("verify output malformed:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("verify reported failures:\n%s", out)
	}
}
