package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clumsy/internal/packet"
)

func capture(t *testing.T, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return buf.String()
}

func TestNoArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Fatal("missing experiment should error")
	}
	if !strings.Contains(buf.String(), "usage:") {
		t.Fatal("usage not printed")
	}
}

func TestUnknownCommand(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"figZZ"}, &buf); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestList(t *testing.T) {
	out := capture(t, "list")
	for _, frag := range []string{"table1", "fig12", "run"} {
		if !strings.Contains(out, frag) {
			t.Errorf("list output missing %q", frag)
		}
	}
}

func TestCircuitFigures(t *testing.T) {
	cases := map[string]string{
		"fig1b": "voltage swing",
		"fig2b": "noise immunity",
		"fig3":  "switching combinations",
		"fig4":  "fault at various voltage levels",
		"fig5":  "different cycle times",
	}
	for cmd, frag := range cases {
		out := capture(t, cmd)
		if !strings.Contains(out, frag) {
			t.Errorf("%s output missing %q", cmd, frag)
		}
	}
}

func TestTable1Command(t *testing.T) {
	out := capture(t, "table1", "-packets", "150", "-trials", "1")
	for _, frag := range []string{"Table I", "md5", "Fallibility"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table1 output missing %q", frag)
		}
	}
}

func TestFig6And7Commands(t *testing.T) {
	out := capture(t, "fig6", "-packets", "100", "-trials", "1")
	if !strings.Contains(out, "route") || !strings.Contains(out, "control plane") {
		t.Error("fig6 should sweep route over planes")
	}
	out = capture(t, "fig7", "-packets", "100", "-trials", "1")
	if !strings.Contains(out, "nat") {
		t.Error("fig7 should study nat")
	}
}

func TestFig8Command(t *testing.T) {
	out := capture(t, "fig8", "-packets", "100", "-trials", "1")
	if !strings.Contains(out, "fatal error probabilities") || !strings.Contains(out, "avrg") {
		t.Error("fig8 output malformed")
	}
}

func TestFig9Command(t *testing.T) {
	out := capture(t, "fig9", "-packets", "100", "-trials", "1")
	if !strings.Contains(out, "Figure 9(a)") || !strings.Contains(out, "Figure 9(b)") {
		t.Error("fig9 should render two panels")
	}
	if !strings.Contains(out, "two strikes") {
		t.Error("fig9 missing recovery schemes")
	}
}

func TestRunCommand(t *testing.T) {
	out := capture(t, "run", "-app", "route", "-cr", "0.5", "-parity", "-strikes", "2", "-packets", "1000")
	for _, frag := range []string{"golden:", "clumsy:", "fallibility", "energy-delay^2-fallibility^2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("run output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunDynamic(t *testing.T) {
	out := capture(t, "run", "-app", "crc", "-dynamic", "-parity", "-strikes", "3", "-packets", "1000")
	if !strings.Contains(out, "dynamic:") {
		t.Errorf("dynamic run should report level usage:\n%s", out)
	}
}

func TestRunDropPolicy(t *testing.T) {
	// A tight watchdog budget makes the trace's heaviest packets trip the
	// watchdog; the drop policy must contain them and report the accounting.
	out := capture(t, "run", "-app", "route", "-cr", "0.25", "-recovery", "drop",
		"-watchdog", "0.7", "-seed", "1")
	if !strings.Contains(out, "containment:") {
		t.Fatalf("drop-policy run missing containment line:\n%s", out)
	}
	if strings.Contains(out, "containment: 0 dropped") {
		t.Fatalf("tight watchdog under drop should drop packets:\n%s", out)
	}
	if strings.Contains(out, "fatal true") {
		t.Fatalf("contained run must not be fatal:\n%s", out)
	}
}

func TestRunAbortPolicyHidesContainment(t *testing.T) {
	out := capture(t, "run", "-app", "route", "-cr", "0.5", "-packets", "1000")
	if strings.Contains(out, "containment:") {
		t.Fatalf("abort-policy run must not print containment accounting:\n%s", out)
	}
}

func TestRunBadRecoveryPolicy(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"run", "-recovery", "bogus"}, &buf); err == nil {
		t.Fatal("unknown recovery policy should error")
	}
}

func TestRunUnknownApp(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"run", "-app", "bogus"}, &buf); err == nil {
		t.Fatal("unknown app should error")
	}
}

func TestTraceCommand(t *testing.T) {
	out := capture(t, "trace", "-app", "url", "-packets", "25", "-seed", "3")
	if !strings.Contains(out, "url workload") || !strings.Contains(out, "GET /") {
		t.Fatalf("trace output malformed:\n%s", out)
	}
}

func TestTraceCommandBinaryOut(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/trace.bin"
	out := capture(t, "trace", "-app", "route", "-packets", "30", "-out", path)
	if !strings.Contains(out, "wrote 30 packets") {
		t.Fatalf("unexpected output: %s", out)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := packet.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Packets) != 30 {
		t.Fatalf("read back %d packets", len(tr.Packets))
	}
}

func TestCSVFormat(t *testing.T) {
	out := capture(t, "fig1b", "-format", "csv")
	if !strings.HasPrefix(out, "series,Cr,Vsr") {
		t.Fatalf("csv header missing:\n%s", out[:40])
	}
	out = capture(t, "table1", "-packets", "120", "-trials", "1", "-format", "csv")
	if !strings.HasPrefix(out, "App,") {
		t.Fatalf("table csv header missing:\n%s", out[:40])
	}
}

func TestExtensionCommands(t *testing.T) {
	for cmd, frag := range map[string]string{
		"ecc":       "detection schemes",
		"subblock":  "sub-block recovery",
		"exponents": "metric-weighting",
		"dvs":       "DVS vs clumsy",
	} {
		out := capture(t, cmd, "-app", "route", "-packets", "120", "-trials", "1")
		if !strings.Contains(out, frag) {
			t.Errorf("%s output missing %q", cmd, frag)
		}
	}
}

func TestRunWithTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/t.bin"
	capture(t, "trace", "-app", "route", "-packets", "200", "-out", path)
	out := capture(t, "run", "-app", "route", "-cr", "0.5", "-parity", "-strikes", "2", "-trace", path)
	if !strings.Contains(out, "packets: 200/200 processed") {
		t.Fatalf("replayed run malformed:\n%s", out)
	}
}

func TestRunWithMissingTraceFile(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"run", "-trace", "/no/such/file"}, &buf); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestMediaCommand(t *testing.T) {
	out := capture(t, "media", "-packets", "120", "-trials", "1")
	if !strings.Contains(out, "adpcm") || !strings.Contains(out, "media processor") {
		t.Fatalf("media output malformed:\n%s", out)
	}
}

// readEvents parses a JSONL trace file and returns the events by type.
func readEvents(t *testing.T, path string) map[string][]map[string]any {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	byType := map[string][]map[string]any{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("invalid JSONL line: %v\n%s", err, sc.Text())
		}
		typ, _ := ev["type"].(string)
		if typ == "" {
			t.Fatalf("event without type: %s", sc.Text())
		}
		if _, ok := ev["cycle"].(float64); !ok {
			t.Fatalf("event without numeric cycle timestamp: %s", sc.Text())
		}
		byType[typ] = append(byType[typ], ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return byType
}

// TestTraceOutJSONL is the acceptance check of the telemetry subsystem:
// a traced dynamic run must produce valid JSONL holding fault-injection,
// recovery, and frequency-transition events with cycle timestamps.
func TestTraceOutJSONL(t *testing.T) {
	path := t.TempDir() + "/events.jsonl"
	capture(t, "run", "-app", "route", "-packets", "1000", "-dynamic", "-parity",
		"-strikes", "2", "-scale", "25", "-seed", "3", "-trace-out", path)
	byType := readEvents(t, path)
	for _, typ := range []string{"run_start", "fault_injection", "recovery", "freq_transition", "run_end"} {
		if len(byType[typ]) == 0 {
			t.Errorf("trace holds no %s events", typ)
		}
	}
	// Cycle timestamps must be monotonic non-decreasing within the run.
	prev := -1.0
	for _, evs := range []string{"fault_injection", "recovery"} {
		prev = -1
		for _, ev := range byType[evs] {
			c := ev["cycle"].(float64)
			if c < prev {
				t.Fatalf("%s cycles not monotonic: %g after %g", evs, c, prev)
			}
			prev = c
		}
	}
}

// TestStatsMatchesTrace runs the stats command with a trace sink attached
// in the same process and checks that the counter registry agrees with
// the counts derivable from the JSONL trace.
func TestStatsMatchesTrace(t *testing.T) {
	path := t.TempDir() + "/events.jsonl"
	out := capture(t, "stats", "-app", "route", "-packets", "800", "-cr", "0.5",
		"-parity", "-strikes", "2", "-scale", "25", "-seed", "7",
		"-trace-out", path, "-format", "json")
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(out), &snap); err != nil {
		t.Fatalf("stats -format json is not JSON: %v\n%s", err, out)
	}
	byType := readEvents(t, path)
	c := snap.Counters
	if got, want := c["fault.read_injected"]+c["fault.write_injected"], uint64(len(byType["fault_injection"])); got != want {
		t.Errorf("fault counters %d != %d fault_injection events", got, want)
	}
	retries, recoveries := 0, 0
	for _, ev := range byType["recovery"] {
		if ev["kind"] == "retry" {
			retries++
		} else {
			recoveries++
		}
	}
	if got := c["recovery.retries"]; got != uint64(retries) {
		t.Errorf("recovery.retries %d != %d retry events", got, retries)
	}
	if got := c["recovery.recoveries"]; got != uint64(recoveries) {
		t.Errorf("recovery.recoveries %d != %d recovery events", got, recoveries)
	}
	if got := c["run.count"]; got != 1 {
		t.Errorf("run.count = %d, want 1", got)
	}
	if len(byType["fault_injection"]) == 0 {
		t.Error("expected at least one injected fault at scale 25")
	}
}

// TestStatsPrometheus checks the default stats format is Prometheus text.
func TestStatsPrometheus(t *testing.T) {
	out := capture(t, "stats", "-app", "crc", "-packets", "300", "-scale", "5", "-seed", "2")
	for _, frag := range []string{
		"# TYPE clumsy_cache_l1d_reads counter",
		"# TYPE clumsy_packet_instructions histogram",
		"clumsy_run_count 1",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("prometheus stats missing %q:\n%s", frag, out[:min(len(out), 400)])
		}
	}
}

// TestExperimentGridTraced checks that experiment subcommands are traced
// through the default-telemetry hub without any per-command wiring: a
// small table1 grid must leave run_start/run_end events from many runs.
func TestExperimentGridTraced(t *testing.T) {
	path := t.TempDir() + "/grid.jsonl"
	capture(t, "table1", "-packets", "120", "-trials", "1", "-trace-out", path)
	byType := readEvents(t, path)
	if len(byType["run_start"]) < 7 { // one faulty run per application at least
		t.Fatalf("grid trace holds %d run_start events, want >= 7", len(byType["run_start"]))
	}
	if len(byType["run_end"]) != len(byType["run_start"]) {
		t.Fatalf("run_start/run_end mismatch: %d vs %d", len(byType["run_start"]), len(byType["run_end"]))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestVerifyCommand(t *testing.T) {
	// At a moderate deterministic scale every claim passes and the
	// command exits cleanly.
	out := capture(t, "verify", "-packets", "1200", "-trials", "2")
	if !strings.Contains(out, "PASS") {
		t.Fatalf("verify output malformed:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("verify reported failures:\n%s", out)
	}
}

// TestJournalResumeRoundTrip drives the resilient-campaign flags through the
// CLI: a journaled run, then a -resume rerun that produces identical output
// from the recorded cells alone.
func TestJournalResumeRoundTrip(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	first := capture(t, "table1", "-packets", "150", "-trials", "1", "-journal", journal)
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("journal not written: %v", err)
	}
	if lines := bytes.Count(data, []byte("\n")); lines == 0 {
		t.Fatal("journal holds no cells")
	}
	second := capture(t, "table1", "-packets", "150", "-trials", "1", "-journal", journal, "-resume")
	if first != second {
		t.Fatalf("resumed output differs:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
}

func TestResumeRequiresJournal(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"table1", "-resume"}, &buf); err == nil {
		t.Fatal("-resume without -journal should error")
	}
}

// TestOutFlagAtomicWrite: -out writes the full rendering to the file (no
// partial file on failure paths is covered by the atomicio tests).
func TestOutFlagAtomicWrite(t *testing.T) {
	out := filepath.Join(t.TempDir(), "table1.csv")
	if msg := capture(t, "table1", "-packets", "150", "-trials", "1", "-format", "csv", "-out", out); msg != "" {
		t.Fatalf("with -out, stdout should be quiet, got %q", msg)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "App,") {
		t.Fatalf("-out file missing CSV header: %q", string(data[:min(len(data), 120)]))
	}
}

// TestRunTimeoutFlag: an absurdly generous deadline must not perturb a
// normal run, proving the watchdog path composes with real cells.
func TestRunTimeoutFlag(t *testing.T) {
	plain := capture(t, "fig8", "-packets", "150", "-trials", "1")
	guarded := capture(t, "fig8", "-packets", "150", "-trials", "1", "-run-timeout", "5m", "-retries", "2")
	if plain != guarded {
		t.Fatal("deadline/retry flags changed the result of a healthy campaign")
	}
}
