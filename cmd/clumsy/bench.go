package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"clumsy/internal/bench"
)

// benchCommand implements `clumsy bench`: by default it runs the benchmark
// suite and writes an auto-numbered BENCH_<n>.json snapshot; with -compare
// it diffs two existing snapshots and fails when a tracked metric
// regressed beyond the threshold.
func benchCommand(o cliOpts, w io.Writer) error {
	if o.compare {
		return benchCompare(o, w)
	}
	if len(o.args) != 0 {
		return fmt.Errorf("bench: unexpected arguments %v (snapshot comparison needs -compare)", o.args)
	}
	opts := bench.Options{Quick: o.quick}
	if o.progress {
		opts.Progress = os.Stderr
	}
	snap, err := bench.Run(opts)
	if err != nil {
		return err
	}
	path := o.out
	if path == "" {
		path, err = bench.NextSnapshotPath(".")
		if err != nil {
			return err
		}
	}
	if err := bench.WriteSnapshot(path, snap); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s: %d cases, mode %s, go %s\n",
		path, len(snap.Cases), snap.Mode, snap.Env.GoVersion)
	return nil
}

// benchCompare diffs two snapshots. The comparison itself always renders
// (text table or -format json); a regression beyond the threshold then
// turns into a non-zero exit so CI can gate on it.
func benchCompare(o cliOpts, w io.Writer) error {
	if len(o.args) != 2 {
		return fmt.Errorf("bench -compare needs exactly two snapshot files (got %d); note flags must precede the file arguments", len(o.args))
	}
	oldSnap, err := bench.ReadSnapshot(o.args[0])
	if err != nil {
		return err
	}
	newSnap, err := bench.ReadSnapshot(o.args[1])
	if err != nil {
		return err
	}
	cmp := bench.Compare(oldSnap, newSnap, o.threshold)
	if o.format == "json" {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cmp); err != nil {
			return err
		}
	} else {
		if err := cmp.WriteText(w); err != nil {
			return err
		}
	}
	if regs := cmp.Regressions(); len(regs) > 0 {
		return fmt.Errorf("bench: %s", cmp.Verdict())
	}
	return nil
}
