// Command clumsyd is the long-lived campaign service: a crash-tolerant
// daemon that schedules journaled experiment campaigns over an HTTP/JSON
// control plane. Submissions wait in a bounded queue (backpressure via
// 429 + Retry-After), run under per-campaign supervisors with bounded
// restart-with-resume, and survive any kill point: on startup the daemon
// re-adopts every incomplete campaign from its journal and finishes it
// byte-identically to an uninterrupted run. SIGTERM/SIGINT drains
// gracefully — stop admitting, finish or checkpoint in-flight campaigns,
// exit 0; a second signal force-quits with exit 130 (journals stay
// replayable either way).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"clumsy/internal/atomicio"
	"clumsy/internal/clumsy"
	"clumsy/internal/service"
	"clumsy/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("clumsyd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8377", "listen address for the control plane")
	dataDir := fs.String("data", "clumsyd-data", "durable campaign directory (specs, journals, results)")
	maxConc := fs.Int("max-concurrent", 2, "supervisor slots (campaigns running at once)")
	queueDepth := fs.Int("queue-depth", 8, "bounded submission queue; full rejects with 429")
	attemptTimeout := fs.Duration("attempt-timeout", 0, "per-attempt watchdog deadline (0 = none)")
	cellTimeout := fs.Duration("cell-timeout", 0, "per-grid-cell wall-clock watchdog (0 = none)")
	maxRestarts := fs.Int("max-restarts", 2, "supervised restart-with-resume budget per campaign")
	drainGrace := fs.Duration("drain-grace", 30*time.Second, "how long a drain waits before checkpointing in-flight campaigns")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: clumsyd [flags]\n\nflags:\n")
		fs.PrintDefaults()
		fmt.Fprintf(fs.Output(), "\nstudies: %v\n", service.StudyNames())
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	// The crashtest rig arms deterministic I/O faults through the
	// environment; a clean environment leaves this a no-op.
	if armed, err := atomicio.ArmFaultFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "clumsyd:", err)
		return 2
	} else if armed {
		fmt.Fprintf(os.Stderr, "clumsyd: I/O fault injection armed (%s=%s)\n", atomicio.FaultEnv, os.Getenv(atomicio.FaultEnv))
	}

	tel := telemetry.New()
	clumsy.SetDefaultTelemetry(tel)
	defer clumsy.SetDefaultTelemetry(nil)

	svc, err := service.New(service.Config{
		DataDir:        *dataDir,
		MaxConcurrent:  *maxConc,
		QueueDepth:     *queueDepth,
		AttemptTimeout: *attemptTimeout,
		CellTimeout:    *cellTimeout,
		MaxRestarts:    *maxRestarts,
		Telemetry:      tel,
		Log:            os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "clumsyd:", err)
		return 1
	}
	if svc.Recovered > 0 {
		fmt.Fprintf(os.Stderr, "clumsyd: recovered %d incomplete campaign(s) on start\n", svc.Recovered)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clumsyd:", err)
		svc.Close()
		return 1
	}
	srv := &http.Server{Handler: svc.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "clumsyd: serving on %s (data %s)\n", ln.Addr(), *dataDir)

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "clumsyd:", err)
		svc.Close()
		return 1
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "clumsyd: %s: draining (send again to force quit)\n", s)
	}

	// Second signal during the drain force-quits. Journals are written
	// atomically per cell, so even a force quit leaves resumable state.
	go func() {
		if _, ok := <-sig; ok {
			fmt.Fprintln(os.Stderr, "clumsyd: force quit")
			os.Exit(130)
		}
	}()

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	svc.Drain(drainCtx)
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	srv.Shutdown(sctx) //lint:errcheck-ok — the drain already checkpointed everything durable
	fmt.Fprintln(os.Stderr, "clumsyd: drained, exiting")
	return 0
}
