package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"clumsy/internal/atomicio"
	"clumsy/internal/service"
)

// The exec suite drives the real clumsyd binary: kill-and-recover
// byte-identity, graceful drain, the second-signal force quit, and the
// crashtest matrix that kills the daemon at injected I/O fault points
// and proves every journal is absent or replayable — never corrupt.

var (
	buildOnce sync.Once
	buildErr  error
	binPath   string
)

// clumsydBin builds the daemon once per test binary.
func clumsydBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "clumsyd-bin")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "clumsyd")
		out, err := exec.Command("go", "build", "-o", binPath, "clumsy/cmd/clumsyd").CombinedOutput()
		if err != nil {
			buildErr = fmt.Errorf("building clumsyd: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return binPath
}

// daemon is one running clumsyd under test.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	errs *bytes.Buffer // captured stderr
}

// startDaemon launches clumsyd on an ephemeral port and waits for its
// "serving on" line. extraEnv entries are appended to the environment.
func startDaemon(t *testing.T, dataDir string, extraEnv ...string) *daemon {
	t.Helper()
	cmd := exec.Command(clumsydBin(t), "-addr", "127.0.0.1:0", "-data", dataDir)
	cmd.Env = append(os.Environ(), extraEnv...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	d := &daemon{cmd: cmd, errs: &bytes.Buffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.errs.WriteString(line + "\n")
			if _, rest, ok := strings.Cut(line, "serving on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(20 * time.Second):
		cmd.Process.Kill() //lint:errcheck-ok — best-effort teardown of a wedged daemon
		t.Fatalf("daemon never announced its address; stderr:\n%s", d.errs)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //lint:errcheck-ok — test teardown
			cmd.Wait()         //lint:errcheck-ok — test teardown
		}
	})
	return d
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

// wait blocks for process exit and returns its exit code (-1 when
// signal-killed).
func (d *daemon) wait(t *testing.T) int {
	t.Helper()
	err := d.cmd.Wait()
	if err == nil {
		return 0
	}
	var ee *exec.ExitError
	if !errors.As(err, &ee) {
		t.Fatalf("daemon wait: %v", err)
	}
	return ee.ExitCode()
}

// submit posts a campaign spec and decodes the acknowledgement.
func submit(t *testing.T, d *daemon, spec string) (service.Status, error) {
	t.Helper()
	resp, err := http.Post(d.url("/campaigns"), "application/json", strings.NewReader(spec))
	if err != nil {
		return service.Status{}, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		return service.Status{}, fmt.Errorf("submit: %d %s", resp.StatusCode, body)
	}
	var st service.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return service.Status{}, err
	}
	return st, nil
}

// getStatus fetches one campaign's status.
func getStatus(t *testing.T, d *daemon, id string) (service.Status, error) {
	t.Helper()
	resp, err := http.Get(d.url("/campaigns/" + id))
	if err != nil {
		return service.Status{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.Status{}, fmt.Errorf("status: %d", resp.StatusCode)
	}
	var st service.Status
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

// awaitState polls until the campaign reaches the wanted state, failing
// on failed/cancelled detours when a completion is expected.
func awaitState(t *testing.T, d *daemon, id, want string) service.Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := getStatus(t, d, id)
		if err == nil {
			if st.State == want {
				return st
			}
			if want == "completed" && (st.State == "failed" || st.State == "cancelled") {
				t.Fatalf("campaign %s reached %s (%s) while waiting for %s", id, st.State, st.Error, want)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %s; daemon stderr:\n%s", id, want, d.errs)
	return service.Status{}
}

// fetchResult downloads a completed campaign's published result.
func fetchResult(t *testing.T, d *daemon, id string) []byte {
	t.Helper()
	resp, err := http.Get(d.url("/campaigns/" + id + "/result"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, b)
	}
	return b
}

const smallCampaign = `{"study":"table1","packets":120,"trials":1}`

// referenceResult computes the uninterrupted result for smallCampaign
// in-process (no fault injector armed here), once.
var refOnce sync.Once
var refBytes []byte

func referenceResult(t *testing.T) []byte {
	t.Helper()
	refOnce.Do(func() {
		svc, err := service.New(service.Config{DataDir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		defer svc.Close()
		st, err := svc.Submit(service.Spec{Study: "table1", Packets: 120, Trials: 1})
		if err != nil {
			t.Fatal(err)
		}
		c, _ := svc.Get(st.ID)
		<-c.Done()
		refBytes, err = c.Result()
		if err != nil {
			t.Fatal(err)
		}
	})
	if len(refBytes) == 0 {
		t.Fatal("reference result unavailable")
	}
	return refBytes
}

// checkJournalIntegrity asserts the crashtest invariant for every file
// under the data dir: journals and JSON records are absent or fully
// parseable — never a torn line or truncated document.
func checkJournalIntegrity(t *testing.T, dataDir string) {
	t.Helper()
	err := filepath.WalkDir(dataDir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		switch filepath.Ext(path) {
		case ".jsonl":
			for i, line := range bytes.Split(raw, []byte("\n")) {
				if len(line) == 0 {
					continue
				}
				if !json.Valid(line) {
					t.Errorf("%s line %d is corrupt: %q", path, i+1, line)
				}
			}
		case ".json":
			if !json.Valid(raw) {
				t.Errorf("%s is corrupt: %q", path, raw)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// No stray atomicio temp files may survive a crash point either.
	matches, err := filepath.Glob(filepath.Join(dataDir, "campaigns", "*", ".atomic-*"))
	if err == nil && len(matches) > 0 {
		// Stray temps are tolerated (a crash between create and rename
		// leaves one) but must never shadow the real file; report them
		// for visibility only.
		t.Logf("stray temp files after crash: %v", matches)
	}
}

// TestKillAndRecoverByteIdentical is the acceptance test of the
// tentpole: SIGKILL the daemon mid-campaign, restart it on the same data
// dir, and require the recovered campaign's published result to be
// byte-identical to an uninterrupted run.
func TestKillAndRecoverByteIdentical(t *testing.T) {
	dataDir := t.TempDir()
	d := startDaemon(t, dataDir)
	st, err := submit(t, d, smallCampaign)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one cell land in the journal before the kill so the
	// recovery genuinely resumes (rather than restarts from nothing).
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, err := getStatus(t, d, st.ID)
		if err == nil && (cur.CellsDone > 0 || cur.State == "completed") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no journal progress before the kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d.wait(t)
	checkJournalIntegrity(t, dataDir)

	d2 := startDaemon(t, dataDir)
	fin := awaitState(t, d2, st.ID, "completed")
	res := fetchResult(t, d2, st.ID)
	if want := referenceResult(t); !bytes.Equal(res, want) {
		t.Fatalf("recovered result differs from uninterrupted run (adopted=%v):\n%s", fin.Adopted, res)
	}

	// Graceful drain: SIGTERM must exit 0 with nothing left running.
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d2.wait(t); code != 0 {
		t.Fatalf("drained daemon exited %d, want 0; stderr:\n%s", code, d2.errs)
	}
}

// TestSecondSignalForceQuits: during a slow drain a second signal must
// force-quit with exit 130 and still leave only replayable state behind.
func TestSecondSignalForceQuits(t *testing.T) {
	dataDir := t.TempDir()
	d := startDaemon(t, dataDir)
	// A heavyweight campaign keeps the drain busy long enough to land the
	// second signal.
	st, err := submit(t, d, `{"study":"table1","packets":60000,"trials":2}`)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, d, st.ID, "running")
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the drain start
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := d.wait(t); code != 130 {
		t.Fatalf("force quit exited %d, want 130; stderr:\n%s", code, d.errs)
	}
	checkJournalIntegrity(t, dataDir)
}

// TestCrashMatrix is the crashtest rig: arm a deterministic I/O fault in
// crash mode, run a campaign until the daemon kills itself mid-write
// (exit 86), assert on-disk state is absent-or-replayable, then restart
// clean and require the campaign to finish byte-identical to the
// uninterrupted reference. Swept over every fault mode, two operation
// indices, and three seeds.
func TestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("crash matrix is slow; skipped with -short")
	}
	want := referenceResult(t)
	for _, mode := range []string{"shortwrite", "syncerr", "enospc", "tornrename"} {
		for _, op := range []int{1, 4} {
			for seed := 1; seed <= 3; seed++ {
				spec := fmt.Sprintf("%s:%d:%d:crash", mode, op, seed)
				t.Run(spec, func(t *testing.T) {
					dataDir := t.TempDir()
					d := startDaemon(t, dataDir, atomicio.FaultEnv+"="+spec)
					id := ""
					if st, err := submit(t, d, smallCampaign); err == nil {
						id = st.ID
					}
					// The daemon must die at the injected point, not finish.
					if code := d.wait(t); code != atomicio.CrashExitCode {
						t.Fatalf("daemon exited %d, want %d; stderr:\n%s", code, atomicio.CrashExitCode, d.errs)
					}
					checkJournalIntegrity(t, dataDir)

					// Clean restart: whatever survived must recover to the
					// exact uninterrupted result.
					d2 := startDaemon(t, dataDir)
					if id == "" {
						// The crash beat the submission acknowledgement; any
						// adopted campaign still finishes, else resubmit.
						sts := listCampaigns(t, d2)
						if len(sts) > 0 {
							id = sts[0].ID
						} else {
							st, err := submit(t, d2, smallCampaign)
							if err != nil {
								t.Fatal(err)
							}
							id = st.ID
						}
					}
					awaitState(t, d2, id, "completed")
					if res := fetchResult(t, d2, id); !bytes.Equal(res, want) {
						t.Fatalf("post-crash result differs from uninterrupted run:\n%s", res)
					}
					if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
						t.Fatal(err)
					}
					if code := d2.wait(t); code != 0 {
						t.Fatalf("drain exited %d; stderr:\n%s", code, d2.errs)
					}
				})
			}
		}
	}
}

// listCampaigns fetches the full campaign list.
func listCampaigns(t *testing.T, d *daemon) []service.Status {
	t.Helper()
	resp, err := http.Get(d.url("/campaigns"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sts []service.Status
	if err := json.NewDecoder(resp.Body).Decode(&sts); err != nil {
		t.Fatal(err)
	}
	return sts
}
