// Command clumsylint is the project's invariant checker: a multichecker
// over the nine analyzers in internal/lint plus the stale-directive
// sweep. It exits non-zero when any invariant is violated and is a
// required CI job alongside go vet and staticcheck.
//
// Usage:
//
//	go run ./cmd/clumsylint [-list] [-json] [-out file] [packages]
//
// With no package patterns it checks ./... . Findings are deduplicated
// and printed in deterministic position order. -json emits them as a
// JSON array of {file,line,col,analyzer,message} records; with -out the
// records are written atomically (via internal/atomicio) so CI can
// annotate PRs from a stable artifact. Exit status: 0 clean, 1 findings,
// 2 error — regardless of output mode.
//
// Each analyzer documents an in-source escape-hatch directive for
// deliberate exceptions; see DESIGN.md ("Enforced invariants") for the
// catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"clumsy/internal/atomicio"
	"clumsy/internal/lint/allocfree"
	"clumsy/internal/lint/analysis"
	"clumsy/internal/lint/cycleacct"
	"clumsy/internal/lint/detwalk"
	"clumsy/internal/lint/driver"
	"clumsy/internal/lint/errchecksim"
	"clumsy/internal/lint/exhaustive"
	"clumsy/internal/lint/floatcmp"
	"clumsy/internal/lint/fpcover"
	"clumsy/internal/lint/staledirect"
	"clumsy/internal/lint/statecover"
	"clumsy/internal/lint/telemnames"
)

// analyzers is the full clumsylint suite, in run order. The stale
// directive sweep is appended last so it sees the whole suite's
// directive consumption.
var analyzers = func() []*analysis.Analyzer {
	suite := []*analysis.Analyzer{
		detwalk.Analyzer,
		cycleacct.Analyzer,
		telemnames.Analyzer,
		errchecksim.Analyzer,
		floatcmp.Analyzer,
		statecover.Analyzer,
		fpcover.Analyzer,
		allocfree.Analyzer,
		exhaustive.Analyzer,
	}
	return append(suite, staledirect.New(suite))
}()

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON records")
	out := flag.String("out", "", "write JSON findings atomically to this file (implies -json)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: clumsylint [-list] [-json] [-out file] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	findings, err := driver.Run(".", analyzers, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clumsylint:", err)
		os.Exit(2)
	}
	if err := emit(findings, *asJSON || *out != "", *out); err != nil {
		fmt.Fprintln(os.Stderr, "clumsylint:", err)
		os.Exit(2)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "clumsylint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// record is one finding in the JSON output schema.
type record struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// emit prints the findings: canonical text lines on stdout, or JSON
// records (to stdout, or atomically to path when set).
func emit(findings []driver.Finding, asJSON bool, path string) error {
	if !asJSON {
		for _, f := range findings {
			fmt.Println(f)
		}
		return nil
	}
	records := make([]record, len(findings))
	for i, f := range findings {
		records[i] = record{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		}
	}
	write := func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(records)
	}
	if path != "" {
		return atomicio.WriteFile(path, write)
	}
	return write(os.Stdout)
}
