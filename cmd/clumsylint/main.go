// Command clumsylint is the project's determinism/accounting/telemetry
// invariant checker: a multichecker over the five analyzers in
// internal/lint. It exits non-zero when any invariant is violated and is a
// required CI job alongside go vet and staticcheck.
//
// Usage:
//
//	go run ./cmd/clumsylint [-list] [packages]
//
// With no package patterns it checks ./... . Each analyzer documents an
// in-source escape-hatch directive for deliberate exceptions; see
// DESIGN.md ("Static analysis") for the invariant catalogue.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"clumsy/internal/lint/analysis"
	"clumsy/internal/lint/cycleacct"
	"clumsy/internal/lint/detwalk"
	"clumsy/internal/lint/errchecksim"
	"clumsy/internal/lint/floatcmp"
	"clumsy/internal/lint/load"
	"clumsy/internal/lint/telemnames"
)

// analyzers is the full clumsylint suite, in report order.
var analyzers = []*analysis.Analyzer{
	detwalk.Analyzer,
	cycleacct.Analyzer,
	telemnames.Analyzer,
	errchecksim.Analyzer,
	floatcmp.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "describe the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: clumsylint [-list] [packages]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	n, err := check(flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "clumsylint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "clumsylint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// check loads the packages and applies every analyzer, printing findings
// in position order. It returns the number of findings.
func check(patterns []string) (int, error) {
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		return 0, err
	}
	total := 0
	for _, pkg := range pkgs {
		var diags []analysis.Diagnostic
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return total, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
			}
		}
		sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
		for _, d := range diags {
			fmt.Printf("%s: %s (%s)\n", pkg.Fset.Position(d.Pos), d.Message, d.Analyzer.Name)
		}
		total += len(diags)
	}
	return total, nil
}
