module clumsy

go 1.22
