module clumsy

// The lint suite in internal/lint deliberately depends only on the standard
// library (go/ast, go/types, go/importer): the build environment is
// air-gapped, so golang.org/x/tools cannot be fetched. internal/lint/analysis
// mirrors the x/tools go/analysis API surface so the analyzers would port
// with import-path changes only.
go 1.24.0
