// Replay: capture a workload to a trace file, then replay the identical
// packet sequence under several clumsy configurations and diff them. The
// golden/faulty comparison machinery requires byte-identical inputs across
// runs, and the binary trace format (packet.Trace.Serialize/ReadTrace)
// makes the workload a durable artifact — the same property that lets a
// bug report ship with the exact trace that triggered it.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
	"clumsy/internal/metrics"
	"clumsy/internal/packet"
)

func main() {
	dir, err := os.MkdirTemp("", "clumsy-replay")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "route.trace")

	// 1. Capture: generate the route workload once and persist it.
	app, err := apps.New("route")
	if err != nil {
		log.Fatal(err)
	}
	trace := packet.MustGenerate(app.TraceConfig(4000, 7))
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.Serialize(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("captured %d packets to %s (%d bytes)\n\n", len(trace.Packets), path, info.Size())

	// 2. Replay the identical trace under three configurations.
	configs := []struct {
		name string
		cfg  clumsy.Config
	}{
		{"conservative (Cr=1)", clumsy.Config{App: "route", Seed: 7, CycleTime: 1}},
		{"clumsy (Cr=0.5, parity, 2-strike)", clumsy.Config{App: "route", Seed: 7,
			CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2}},
		{"reckless (Cr=0.25, no detection)", clumsy.Config{App: "route", Seed: 7,
			CycleTime: 0.25, FaultScale: 25}},
	}

	g, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	replayed, err := packet.ReadTrace(g)
	g.Close()
	if err != nil {
		log.Fatal(err)
	}

	e := metrics.DefaultExponents()
	fmt.Printf("%-36s %12s %12s %12s %8s\n", "configuration", "cyc/pkt", "energy [J]", "fallibility", "EDF^2")
	for _, c := range configs {
		res, err := clumsy.RunWithTrace(c.cfg, replayed)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %12.1f %12.4g %12.4f %8.3f\n",
			c.name, res.Delay, res.Energy.Total(), res.Fallibility(),
			res.EDF(e)/res.GoldenEDF(e))
	}
	fmt.Println("\nevery row processed the byte-identical packet sequence from the trace file")
}
