// Faultsweep: walk the circuit model across the whole operating range and
// print the frontier the paper's Figure 5 and Section 5.4 trade along —
// cycle time vs voltage swing vs per-bit fault probability vs cache energy
// — then confirm the fault rates empirically with the injector.
package main

import (
	"fmt"

	"clumsy/internal/circuit"
	"clumsy/internal/fault"
)

func main() {
	cell := circuit.DefaultCell()
	fit := circuit.FitFaultCurve(cell, 0.2, 40)

	fmt.Println("clumsy cache operating frontier")
	fmt.Println()
	fmt.Printf("%-8s %-10s %-14s %-14s %-12s\n",
		"Cr", "swing", "P_E(model)", "P_E(fitted)", "cache energy")
	for _, cr := range []float64{1, 0.9, 0.8, 0.75, 0.6, 0.5, 0.4, 0.3, 0.25} {
		vsr := circuit.VoltageSwing(cr)
		fmt.Printf("%-8.2f %-10.3f %-14.4g %-14.4g %.1f%%\n",
			cr, vsr, cell.FaultProbability(cr), fit.Eval(cr), vsr*100)
	}
	fmt.Printf("\nfitted formula: %s\n", fit)

	// Empirical check: drive the injector at an amplified rate and compare
	// the observed fault frequency with the model.
	fmt.Println("\nempirical injector check (scale 1e4, 32-bit accesses):")
	model := fault.NewModel(1e4)
	rng := fault.NewRNG(42)
	for _, cr := range []float64{1, 0.5, 0.25} {
		inj := fault.NewInjector(model, rng.Fork(uint64(cr*100)), 32)
		inj.SetCycleTime(cr)
		const n = 2_000_000
		faults := 0
		for i := 0; i < n; i++ {
			if inj.Next() != 0 {
				faults++
			}
		}
		want := model.EventRate(cr, 32)
		got := float64(faults) / n
		fmt.Printf("  Cr=%-5g expected %.4g, observed %.4g (%+.1f%%)\n",
			cr, want, got, (got/want-1)*100)
	}
}
