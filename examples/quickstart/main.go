// Quickstart: simulate the route application on a clumsy packet processor
// whose L1 data cache is over-clocked to half its specified cycle time,
// protected by parity with two-strike recovery — the paper's best average
// configuration — and compare it against the fault-free baseline.
package main

import (
	"fmt"
	"log"

	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
	"clumsy/internal/metrics"
)

func main() {
	res, err := clumsy.Run(clumsy.Config{
		App:       "route",
		Packets:   5000,
		Seed:      2024,
		CycleTime: 0.5, // clock the D-cache twice as fast as specified
		Detection: cache.DetectionParity,
		Strikes:   2,
	})
	if err != nil {
		log.Fatal(err)
	}

	e := metrics.DefaultExponents()
	fmt.Println("clumsy packet processor — quickstart")
	fmt.Printf("application:       route (%d packets)\n", res.Report.GoldenPackets)
	fmt.Printf("operating point:   Cr = %.2f, %v, %d-strike recovery\n",
		res.Config.CycleTime, cache.DetectionParity, res.Config.Strikes)
	fmt.Printf("delay:             %.1f -> %.1f cycles/packet (%.1f%% faster)\n",
		res.GoldenDelay, res.Delay, (1-res.Delay/res.GoldenDelay)*100)
	fmt.Printf("energy:            %.4g -> %.4g J (%.1f%% less)\n",
		res.GoldenEnergy.Total(), res.Energy.Total(),
		(1-res.Energy.Total()/res.GoldenEnergy.Total())*100)
	fmt.Printf("fallibility:       %.4f (fraction of packets with any error: %.4f)\n",
		res.Fallibility(), res.Fallibility()-1)
	fmt.Printf("faults seen:       %d injected, %d detected by parity, %d recovered via L2\n",
		res.Recovery.FaultsOnRead+res.Recovery.FaultsOnWrite,
		res.Recovery.ParityErrors, res.Recovery.Recoveries)
	fmt.Printf("EDF^2 product:     %.3f of the fault-free baseline\n",
		res.EDF(e)/res.GoldenEDF(e))
}
