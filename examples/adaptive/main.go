// Adaptive: watch the dynamic frequency-adaptation controller of Section 4
// steer the data-cache clock. The processor observes parity failures over
// 100-packet epochs and steps through the discrete frequency levels
// (Cr = 1, 0.75, 0.5, 0.25); this example prints where it spends its time
// and what that does to energy, delay, and errors.
package main

import (
	"fmt"
	"log"

	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
	"clumsy/internal/freqctl"
	"clumsy/internal/metrics"
)

func main() {
	fmt.Println("dynamic frequency adaptation — md5 signing, parity + three-strike")
	fmt.Println()

	res, err := clumsy.Run(clumsy.Config{
		App:       "md5",
		Packets:   4000,
		Seed:      7,
		Dynamic:   true,
		Detection: cache.DetectionParity,
		Strikes:   3,
	})
	if err != nil {
		log.Fatal(err)
	}

	levels := freqctl.DefaultLevels()
	fmt.Println("time spent per operating point:")
	var total uint64
	for _, n := range res.LevelPackets {
		total += n
	}
	for i, n := range res.LevelPackets {
		bar := ""
		if total > 0 {
			for j := uint64(0); j < 40*n/total; j++ {
				bar += "#"
			}
		}
		fmt.Printf("  Cr = %-5g %6d packets  %s\n", levels[i], n, bar)
	}
	fmt.Printf("frequency switches: %d (10-cycle penalty each)\n\n", res.Switches)

	fmt.Println("switch timeline:")
	for _, ev := range res.Timeline {
		fmt.Printf("  packet %5d -> Cr = %g\n", ev.Packet, ev.CycleTime)
	}
	fmt.Println()

	e := metrics.DefaultExponents()
	fmt.Printf("delay:       %.1f -> %.1f cycles/packet\n", res.GoldenDelay, res.Delay)
	fmt.Printf("energy:      %.4g -> %.4g J\n", res.GoldenEnergy.Total(), res.Energy.Total())
	fmt.Printf("fallibility: %.4f\n", res.Fallibility())
	fmt.Printf("relative EDF^2: %.3f\n", res.EDF(e)/res.GoldenEDF(e))

	// Compare against the best static setting for reference.
	static, err := clumsy.Run(clumsy.Config{
		App: "md5", Packets: 4000, Seed: 7, CycleTime: 0.5,
		Detection: cache.DetectionParity, Strikes: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstatic Cr=0.5 for comparison: relative EDF^2 = %.3f\n",
		static.EDF(e)/static.GoldenEDF(e))
	fmt.Println("(the paper finds the dynamic scheme tracks the static Cr=0.5 region without beating it)")
}
