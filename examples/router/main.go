// Router: a software line card built from three NetBench stages — IPv4
// forwarding (route), address translation (nat), and fair scheduling (drr)
// — each running on its own clumsy execution core, the way network
// processors dedicate micro-engines to pipeline stages. Every stage is
// over-clocked to the paper's sweet spot (Cr = 0.5, parity, two-strike) and
// the example reports per-stage and whole-line-card figures.
package main

import (
	"fmt"
	"log"

	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
	"clumsy/internal/metrics"
)

type stage struct {
	name string
	res  *clumsy.Result
}

func main() {
	const packets = 3000
	fmt.Println("clumsy software line card: route -> nat -> drr")
	fmt.Printf("every stage at Cr = 0.5, parity, two-strike; %d packets\n\n", packets)

	var stages []stage
	for _, name := range []string{"route", "nat", "drr"} {
		res, err := clumsy.Run(clumsy.Config{
			App:       name,
			Packets:   packets,
			Seed:      99,
			CycleTime: 0.5,
			Detection: cache.DetectionParity,
			Strikes:   2,
		})
		if err != nil {
			log.Fatal(err)
		}
		stages = append(stages, stage{name, res})
	}

	e := metrics.DefaultExponents()
	fmt.Printf("%-8s %12s %12s %12s %12s %8s\n",
		"stage", "cyc/pkt", "base cyc/pkt", "energy [J]", "fallibility", "EDF^2")
	var delay, baseDelay, energy, baseEnergy float64
	fall := 1.0
	for _, s := range stages {
		r := s.res
		fmt.Printf("%-8s %12.1f %12.1f %12.4g %12.4f %8.3f\n",
			s.name, r.Delay, r.GoldenDelay, r.Energy.Total(), r.Fallibility(),
			r.EDF(e)/r.GoldenEDF(e))
		delay += r.Delay
		baseDelay += r.GoldenDelay
		energy += r.Energy.Total()
		baseEnergy += r.GoldenEnergy.Total()
		// A packet is correct only if every stage handled it correctly;
		// per-stage error fractions are small and independent, so the
		// line-card fallibility composes multiplicatively.
		fall *= r.Fallibility()
	}

	fmt.Printf("\nline card: %.1f cycles/packet (baseline %.1f, %.1f%% faster)\n",
		delay, baseDelay, (1-delay/baseDelay)*100)
	fmt.Printf("           %.4g J (baseline %.4g, %.1f%% less energy)\n",
		energy, baseEnergy, (1-energy/baseEnergy)*100)
	fmt.Printf("           composed fallibility %.4f\n", fall)
	fmt.Printf("           EDF^2 %.3f of baseline\n",
		e.EDF(energy, delay, fall)/e.EDF(baseEnergy, baseDelay, 1))

	// Throughput interpretation at the paper's 160 MHz core clock.
	const mhz = 160e6
	fmt.Printf("\nat a %.0f MHz core: %.0f -> %.0f kpps per pipeline\n",
		mhz/1e6, mhz/baseDelay/1e3, mhz/delay/1e3)
}
