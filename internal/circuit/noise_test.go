package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAmplitudeDensityIntegratesToOne(t *testing.T) {
	// Trapezoid integration of the exponential density over a wide range.
	const h = 1e-4
	sum := 0.0
	for x := 0.0; x < 2.0; x += h {
		sum += h * (AmplitudeDensity(x) + AmplitudeDensity(x+h)) / 2
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("amplitude density integrates to %v, want 1", sum)
	}
}

func TestAmplitudeTailMatchesDensity(t *testing.T) {
	f := func(raw uint16) bool {
		ar := float64(raw) / math.MaxUint16 // in [0, 1]
		// d/dar Tail = -density
		const h = 1e-6
		num := (AmplitudeTail(ar+h) - AmplitudeTail(ar)) / h
		return math.Abs(num+AmplitudeDensity(ar+h/2)) < 1e-3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAmplitudeTailBounds(t *testing.T) {
	if AmplitudeTail(0) != 1 {
		t.Fatalf("tail at 0 = %v", AmplitudeTail(0))
	}
	if AmplitudeTail(-1) != 1 {
		t.Fatalf("tail at negative amplitude = %v", AmplitudeTail(-1))
	}
	if AmplitudeTail(10) > 1e-100 {
		t.Fatalf("tail at 10 should be negligible, got %v", AmplitudeTail(10))
	}
}

func TestDurationDensityUniform(t *testing.T) {
	if DurationDensity(0.05) != 1/MaxDuration {
		t.Fatalf("density inside support = %v", DurationDensity(0.05))
	}
	if DurationDensity(0.2) != 0 || DurationDensity(-0.01) != 0 {
		t.Fatal("density outside support should be zero")
	}
}

func TestSwitchingCasesTotal(t *testing.T) {
	// Total number of switching combinations is 4^n = 2^(2n).
	for _, n := range []int{1, 2, 4, 8, 16} {
		_, counts := SwitchingCases(n, 20, 1.0)
		total := 0.0
		for _, c := range counts {
			total += c
		}
		want := math.Pow(4, float64(n))
		if math.Abs(total-want)/want > 1e-12 {
			t.Errorf("n=%d: total cases %v, want %v", n, total, want)
		}
	}
}

func TestSwitchingCasesWorstCaseIsUnique(t *testing.T) {
	// Exactly two combinations produce the maximal |sum| = n (all lines
	// rise, or all fall); they land in the last bin together with any other
	// combination in that amplitude range.
	n := 8
	centers, counts := SwitchingCases(n, 1000, 1.0)
	last := counts[len(counts)-1]
	if last != 2 {
		t.Fatalf("worst-case bin has %v combinations, want 2 (all-up, all-down)", last)
	}
	if centers[len(centers)-1] <= centers[0] {
		t.Fatal("bin centers not increasing")
	}
}

func TestSwitchingCasesRoughlyExponential(t *testing.T) {
	// Figure 3 / Eq. 1: the count decays (approximately exponentially)
	// with amplitude; verify monotone decrease over coarse bins for n=16.
	_, counts := SwitchingCases(16, 8, 1.0)
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("counts not decaying at bin %d: %v > %v", i, counts[i], counts[i-1])
		}
	}
}

func TestSwitchingCasesPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { SwitchingCases(0, 10, 1) },
		func() { SwitchingCases(4, 0, 1) },
		func() { SwitchingCases(4, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
