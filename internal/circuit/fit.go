package circuit

import (
	"fmt"
	"math"
)

// ExpFit is an exponential-of-power-law fit of the fault-probability curve,
// reproducing the curve-fitting step that yields Eq. 4 in the paper:
//
//	P_E(Cr) ≈ A · exp(B · Fr^Delta),   Fr = 1/Cr
//
// The paper fixes Delta = 7 for its SPICE-derived data; this reproduction
// fits Delta together with A and B to its own integrated curve and reports
// the goodness of fit, so the formula is honest about the model behind it.
type ExpFit struct {
	A     float64 // multiplicative constant
	B     float64 // exponent scale
	Delta float64 // frequency exponent
	R2    float64 // coefficient of determination in log space
}

// Eval evaluates the fitted formula at relative cycle time cr.
func (f ExpFit) Eval(cr float64) float64 {
	return f.A * math.Exp(f.B*math.Pow(1/cr, f.Delta))
}

// String renders the fitted formula in the notation of Eq. 4.
func (f ExpFit) String() string {
	return fmt.Sprintf("P_E = %.3g * e^(%.3g * Fr^%.2f)   (R^2 = %.5f)", f.A, f.B, f.Delta, f.R2)
}

// FitFaultCurve fits the ExpFit form to the cell's integrated fault
// probability sampled at n+1 cycle times spanning [crMin, 1]. In log space
// the model is linear in (log A, B) for a fixed Delta, so the fit runs an
// outer golden-section-free grid refinement over Delta with an inner
// ordinary least squares solve.
func FitFaultCurve(c Cell, crMin float64, n int) ExpFit {
	if n < 2 {
		panic("circuit: FitFaultCurve needs at least two intervals")
	}
	crs, _ := SwingCurve(crMin, n)
	ys := make([]float64, len(crs)) // log P_E
	for i, cr := range crs {
		ys[i] = math.Log(c.FaultProbability(cr))
	}

	best := ExpFit{R2: math.Inf(-1)}
	// Two-stage grid over Delta: coarse then refined around the winner.
	scan := func(lo, hi float64, steps int) {
		for i := 0; i <= steps; i++ {
			d := lo + (hi-lo)*float64(i)/float64(steps)
			if d <= 0 {
				continue
			}
			a, b, r2 := olsLogFit(crs, ys, d)
			if r2 > best.R2 {
				best = ExpFit{A: math.Exp(a), B: b, Delta: d, R2: r2}
			}
		}
	}
	scan(0.2, 10, 98)
	scan(best.Delta-0.1, best.Delta+0.1, 40)
	return best
}

// olsLogFit solves log P = a + b·Fr^delta by ordinary least squares and
// returns the intercept, slope, and R².
func olsLogFit(crs, ys []float64, delta float64) (a, b, r2 float64) {
	n := float64(len(crs))
	var sx, sy, sxx, sxy float64
	xs := make([]float64, len(crs))
	for i, cr := range crs {
		x := math.Pow(1/cr, delta)
		xs[i] = x
		sx += x
		sy += ys[i]
		sxx += x * x
		sxy += x * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, math.Inf(-1)
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range ys {
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
		res := ys[i] - (a + b*xs[i])
		ssRes += res * res
	}
	if ssTot == 0 {
		return a, b, math.Inf(-1)
	}
	return a, b, 1 - ssRes/ssTot
}
