package circuit

import (
	"math"
	"testing"
)

func TestDefaultCellCalibration(t *testing.T) {
	c := DefaultCell()
	got := c.FaultProbabilityAtSwing(1)
	if math.Abs(got-BaseFaultProbability)/BaseFaultProbability > 1e-6 {
		t.Fatalf("P_E(Vsr=1) = %.4g, want %.4g", got, BaseFaultProbability)
	}
}

func TestCriticalAmplitudeShape(t *testing.T) {
	c := DefaultCell()
	// Lower swing -> lower critical amplitude (easier to flip).
	if c.CriticalAmplitude(0.05, 0.5) >= c.CriticalAmplitude(0.05, 1.0) {
		t.Fatal("critical amplitude should drop with swing")
	}
	// Shorter pulses need larger amplitudes.
	if c.CriticalAmplitude(0.01, 1.0) <= c.CriticalAmplitude(0.05, 1.0) {
		t.Fatal("critical amplitude should rise for short pulses")
	}
	if !math.IsInf(c.CriticalAmplitude(0, 1.0), 1) {
		t.Fatal("zero-duration pulse should never flip the cell")
	}
}

func TestImmunityCurveOrdering(t *testing.T) {
	c := DefaultCell()
	_, full := c.ImmunityCurve(1.0, 50)
	_, reduced := c.ImmunityCurve(0.6, 50)
	for i := range full {
		if reduced[i] >= full[i] {
			t.Fatalf("immunity curve at reduced swing should be lower at index %d", i)
		}
	}
}

func TestFaultProbabilityMonotoneInSwing(t *testing.T) {
	c := DefaultCell()
	prev := math.Inf(1)
	for vsr := 0.3; vsr <= 1.0; vsr += 0.05 {
		p := c.FaultProbabilityAtSwing(vsr)
		if p >= prev {
			t.Fatalf("fault probability should fall as swing rises (vsr=%.2f)", vsr)
		}
		if p <= 0 || p >= 1 {
			t.Fatalf("fault probability out of range at vsr=%.2f: %v", vsr, p)
		}
		prev = p
	}
}

func TestFaultProbabilityKnee(t *testing.T) {
	// The headline shape of Figure 5: the curve is flat until the clock
	// cycle is roughly halved and rises sharply at Cr = 0.25. The paper's
	// dynamic scheme depends on this: "the clock cycle can be reduced by
	// almost 60% before we observe a major increase in the number of
	// faults".
	c := DefaultCell()
	base := c.FaultProbability(1)
	r75 := c.FaultProbability(0.75) / base
	r50 := c.FaultProbability(0.50) / base
	r25 := c.FaultProbability(0.25) / base
	if r75 > 2.5 {
		t.Errorf("Cr=0.75 fault ratio %v, want modest (< 2.5)", r75)
	}
	if r50 < 1.5 || r50 > 8 {
		t.Errorf("Cr=0.50 fault ratio %v, want mild knee (1.5..8)", r50)
	}
	if r25 < 10 {
		t.Errorf("Cr=0.25 fault ratio %v, want sharp rise (> 10x)", r25)
	}
	if !(r75 < r50 && r50 < r25) {
		t.Errorf("ratios not increasing: %v %v %v", r75, r50, r25)
	}
}

func TestCalibrateRejectsBadTargets(t *testing.T) {
	c := DefaultCell()
	for _, target := range []float64{0, 1, -0.1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Calibrate(%v) did not panic", target)
				}
			}()
			c.Calibrate(target)
		}()
	}
}

func TestCalibrateHitsArbitraryTargets(t *testing.T) {
	c := Cell{Margin: 0.5, Gamma: 0.4, Tau: 0.01}
	for _, target := range []float64{1e-9, 1e-6, 1e-4} {
		c.Calibrate(target)
		got := c.FaultProbabilityAtSwing(1)
		if math.Abs(got-target)/target > 1e-5 {
			t.Errorf("calibrated to %.3g, want %.3g", got, target)
		}
	}
}
