// Package circuit models the circuit-level behaviour underlying the clumsy
// packet processor: the relation between the clock cycle time of an SRAM
// array and its voltage swing, the noise environment created by capacitively
// coupled neighbour lines, the noise immunity of a 6-transistor SRAM cell,
// and — by integrating the noise distributions over the immunity surface —
// the probability of a logic fault per bit access as a function of the
// relative cycle time Cr (Section 3 of the paper; Figures 1–5, Eq. 1–4).
package circuit

import "math"

// SwingK is the RC-charging shape constant of the voltage-swing curve.
// It is calibrated so that the cache energy (linear in swing) shrinks by
// 6%, 19% and 45% at Cr = 0.75, 0.5 and 0.25, matching Section 5.4.
const SwingK = 2.75

// VoltageSwing returns the relative voltage swing Vsr = Vs/Vfs reached at a
// circuit node when it is clocked with relative cycle time cr = C/Cfs
// (Figure 1b). The node charges exponentially toward Vdd; at the full-swing
// cycle time Cfs (cr = 1) the swing is normalised to exactly 1. Cycle times
// above Cfs cannot exceed the full swing, so the curve is clamped at 1.
//
// VoltageSwing panics for non-positive cr: a zero cycle time is not a
// physical operating point.
func VoltageSwing(cr float64) float64 {
	if cr <= 0 {
		panic("circuit: non-positive relative cycle time")
	}
	if cr >= 1 {
		return 1
	}
	return (1 - math.Exp(-SwingK*cr)) / (1 - math.Exp(-SwingK))
}

// CycleTimeForSwing inverts VoltageSwing: it returns the relative cycle
// time needed to reach the requested relative swing vsr in (0, 1]. It is
// the exact analytic inverse of the charging curve.
func CycleTimeForSwing(vsr float64) float64 {
	if vsr <= 0 || vsr > 1 {
		panic("circuit: relative voltage swing out of (0, 1]")
	}
	if vsr == 1 { //lint:floatcmp-ok — exact domain endpoint: 1.0 is representable and means full swing
		return 1
	}
	return -math.Log(1-vsr*(1-math.Exp(-SwingK))) / SwingK
}

// RelativeFrequency converts a relative cycle time Cr into the relative
// frequency Fr = f/ffs = 1/Cr used in Eq. 4 of the paper.
func RelativeFrequency(cr float64) float64 {
	if cr <= 0 {
		panic("circuit: non-positive relative cycle time")
	}
	return 1 / cr
}

// SwingCurve samples the voltage-swing curve of Figure 1b at n+1 evenly
// spaced cycle times spanning [crMin, 1]. It returns parallel slices of
// cycle times and swings, ordered by increasing cycle time.
func SwingCurve(crMin float64, n int) (cr, vsr []float64) {
	if n < 1 {
		panic("circuit: SwingCurve needs at least one interval")
	}
	if crMin <= 0 || crMin > 1 {
		panic("circuit: crMin out of (0, 1]")
	}
	cr = make([]float64, n+1)
	vsr = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		c := crMin + (1-crMin)*float64(i)/float64(n)
		cr[i] = c
		vsr[i] = VoltageSwing(c)
	}
	return cr, vsr
}
