package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVoltageSwingFullCycle(t *testing.T) {
	if got := VoltageSwing(1); got != 1 {
		t.Fatalf("VoltageSwing(1) = %v, want 1", got)
	}
	if got := VoltageSwing(1.5); got != 1 {
		t.Fatalf("VoltageSwing(1.5) = %v, want clamp at 1", got)
	}
}

func TestVoltageSwingMatchesEnergyReductions(t *testing.T) {
	// Section 5.4: cache energy (linear in swing) shrinks by 6%, 19% and
	// 45% at Cr = 0.75, 0.5, 0.25. The swing curve must land within a
	// couple of points of those anchors.
	cases := []struct {
		cr, wantReduction, tol float64
	}{
		{0.75, 0.06, 0.02},
		{0.50, 0.19, 0.02},
		{0.25, 0.45, 0.03},
	}
	for _, c := range cases {
		red := 1 - VoltageSwing(c.cr)
		if math.Abs(red-c.wantReduction) > c.tol {
			t.Errorf("Cr=%.2f: energy reduction %.3f, want %.2f±%.2f", c.cr, red, c.wantReduction, c.tol)
		}
	}
}

func TestVoltageSwingMonotone(t *testing.T) {
	prev := 0.0
	for cr := 0.05; cr <= 1.0; cr += 0.01 {
		v := VoltageSwing(cr)
		if v <= prev {
			t.Fatalf("swing not strictly increasing at cr=%.2f: %v <= %v", cr, v, prev)
		}
		prev = v
	}
}

func TestVoltageSwingPanicsOnNonPositive(t *testing.T) {
	for _, cr := range []float64{0, -0.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("VoltageSwing(%v) did not panic", cr)
				}
			}()
			VoltageSwing(cr)
		}()
	}
}

func TestCycleTimeForSwingInverse(t *testing.T) {
	f := func(raw uint16) bool {
		cr := 0.05 + 0.95*float64(raw)/math.MaxUint16
		back := CycleTimeForSwing(VoltageSwing(cr))
		if cr >= 1 {
			return back == 1
		}
		return math.Abs(back-cr) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelativeFrequency(t *testing.T) {
	if got := RelativeFrequency(0.25); got != 4 {
		t.Fatalf("RelativeFrequency(0.25) = %v, want 4", got)
	}
	if got := RelativeFrequency(1); got != 1 {
		t.Fatalf("RelativeFrequency(1) = %v, want 1", got)
	}
}

func TestSwingCurveShape(t *testing.T) {
	cr, vsr := SwingCurve(0.1, 90)
	if len(cr) != 91 || len(vsr) != 91 {
		t.Fatalf("unexpected lengths %d, %d", len(cr), len(vsr))
	}
	if cr[0] != 0.1 || cr[90] != 1 {
		t.Fatalf("endpoints %v, %v", cr[0], cr[90])
	}
	if vsr[90] != 1 {
		t.Fatalf("swing at Cr=1 is %v, want 1", vsr[90])
	}
	for i := 1; i < len(vsr); i++ {
		if vsr[i] <= vsr[i-1] {
			t.Fatalf("curve not increasing at index %d", i)
		}
	}
}
