package circuit

import "math"

// The noise environment of a victim line inside the SRAM array.
//
// A victim line is coupled to n neighbour lines. Each switching combination
// of the neighbours injects a different aggregate noise amplitude; only the
// single combination where all neighbours switch the same way produces the
// worst case, while a combinatorially large number of combinations mostly
// cancel. For large n (> 16) the resulting distribution of relative noise
// amplitudes Ar = A/Vfs saturates to the exponential density of Eq. 2:
//
//	P(Ar) = AmplitudeRate * exp(-AmplitudeRate * Ar)
//
// The noise duration Dr = D/Cfs is bounded by on-chip rise times and is
// uniform on [0, MaxDuration] (Eq. 3).
const (
	// AmplitudeRate is the exponential rate constant of the relative noise
	// amplitude distribution (Eq. 2 in the paper).
	AmplitudeRate = 28.8

	// MaxDuration is the largest relative noise duration; noise pulses are
	// limited by the rise time of the aggressor signals, roughly one tenth
	// of the full-swing cycle time (Eq. 3).
	MaxDuration = 0.1
)

// AmplitudeDensity returns the probability density of a relative noise
// amplitude ar under the saturated exponential model of Eq. 2. The density
// is zero for negative amplitudes.
func AmplitudeDensity(ar float64) float64 {
	if ar < 0 {
		return 0
	}
	return AmplitudeRate * math.Exp(-AmplitudeRate*ar)
}

// AmplitudeTail returns P(Ar > ar): the probability that a noise event has
// relative amplitude exceeding ar.
func AmplitudeTail(ar float64) float64 {
	if ar <= 0 {
		return 1
	}
	return math.Exp(-AmplitudeRate * ar)
}

// DurationDensity returns the probability density of a relative noise
// duration dr under the uniform model of Eq. 3.
func DurationDensity(dr float64) float64 {
	if dr < 0 || dr >= MaxDuration {
		return 0
	}
	return 1 / MaxDuration
}

// SwitchingCases reproduces Figure 3: for a victim line with n significant
// neighbours it returns, for each of the `bins` amplitude ranges spanning
// [0, arMax], the number of neighbour switching combinations whose aggregate
// coupled amplitude falls in that range.
//
// Each neighbour line contributes one of {-1, 0(non-switching, two ways), +1}
// unit couplings, so there are 2^(2n) combinations in total (each line has
// four edge states: rise, fall, steady-high, steady-low). The aggregate
// amplitude is |sum|/n in units of the worst case. The counts are computed
// exactly with a trinomial convolution, not by enumeration, so large n is
// cheap.
func SwitchingCases(n, bins int, arMax float64) (centers []float64, counts []float64) {
	if n < 1 || bins < 1 || arMax <= 0 {
		panic("circuit: invalid SwitchingCases arguments")
	}
	// counts over aggregate sum s in [-n, n]: coefficients of
	// (x^-1 + 2 + x)^n — each line: +1 one way, -1 one way, 0 two ways.
	coef := make([]float64, 2*n+1) // index s+n
	coef[n] = 1
	for line := 0; line < n; line++ {
		next := make([]float64, 2*n+1)
		for s := -n; s <= n; s++ {
			c := coef[s+n]
			if c == 0 {
				continue
			}
			next[s+n] += 2 * c
			if s+1 <= n {
				next[s+1+n] += c
			}
			if s-1 >= -n {
				next[s-1+n] += c
			}
		}
		coef = next
	}
	centers = make([]float64, bins)
	counts = make([]float64, bins)
	w := arMax / float64(bins)
	for i := range centers {
		centers[i] = (float64(i) + 0.5) * w
	}
	for s := -n; s <= n; s++ {
		ar := math.Abs(float64(s)) / float64(n)
		b := int(ar / w)
		if b >= bins {
			b = bins - 1
		}
		counts[b] += coef[s+n]
	}
	return centers, counts
}
