package circuit_test

import (
	"fmt"

	"clumsy/internal/circuit"
)

// Example shows the paper's operating points on the fault-probability
// curve: the rate is anchored at 2.59e-7 per bit at full swing and rises
// sharply only once the cycle time drops below half.
func Example() {
	cell := circuit.DefaultCell()
	base := cell.FaultProbability(1)
	for _, cr := range []float64{1, 0.75, 0.5, 0.25} {
		fmt.Printf("Cr=%-5g swing=%.2f fault-rate=%.1fx\n",
			cr, circuit.VoltageSwing(cr), cell.FaultProbability(cr)/base)
	}
	// Output:
	// Cr=1     swing=1.00 fault-rate=1.0x
	// Cr=0.75  swing=0.93 fault-rate=1.5x
	// Cr=0.5   swing=0.80 fault-rate=3.5x
	// Cr=0.25  swing=0.53 fault-rate=26.8x
}
