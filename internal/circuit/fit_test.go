package circuit

import (
	"math"
	"strings"
	"testing"
)

func TestFitFaultCurveQuality(t *testing.T) {
	c := DefaultCell()
	fit := FitFaultCurve(c, 0.2, 40)
	if fit.R2 < 0.98 {
		t.Fatalf("fit R^2 = %v, want >= 0.98 (paper's Eq. 4 tracks the data closely)", fit.R2)
	}
	// Evaluate against the integrated model at the paper's operating points.
	for _, cr := range []float64{1, 0.75, 0.5, 0.25} {
		want := c.FaultProbability(cr)
		got := fit.Eval(cr)
		if got <= 0 {
			t.Fatalf("fit gives non-positive probability at Cr=%v", cr)
		}
		ratio := got / want
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("fit at Cr=%v off by %vx (got %.3g want %.3g)", cr, ratio, got, want)
		}
	}
}

func TestFitIncreasesWithFrequency(t *testing.T) {
	fit := FitFaultCurve(DefaultCell(), 0.2, 40)
	if fit.B <= 0 {
		t.Fatalf("exponent scale B = %v, want positive (faults rise with frequency)", fit.B)
	}
	if fit.Delta <= 0 {
		t.Fatalf("Delta = %v, want positive", fit.Delta)
	}
	prev := 0.0
	for cr := 1.0; cr >= 0.2; cr -= 0.05 {
		p := fit.Eval(cr)
		if p <= prev {
			t.Fatalf("fitted curve not increasing with frequency at Cr=%.2f", cr)
		}
		prev = p
	}
}

func TestFitString(t *testing.T) {
	fit := ExpFit{A: 2.59e-7, B: 0.1, Delta: 7, R2: 0.999}
	s := fit.String()
	for _, frag := range []string{"P_E", "Fr^7.00", "R^2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q, missing %q", s, frag)
		}
	}
}

func TestOLSRecoversExactModel(t *testing.T) {
	// Synthesize data exactly of the fitted form and verify recovery.
	const a, b, delta = -15.0, 0.002, 3.0
	crs := []float64{1, 0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.25}
	ys := make([]float64, len(crs))
	for i, cr := range crs {
		ys[i] = a + b*math.Pow(1/cr, delta)
	}
	gotA, gotB, r2 := olsLogFit(crs, ys, delta)
	if math.Abs(gotA-a) > 1e-9 || math.Abs(gotB-b) > 1e-12 {
		t.Fatalf("ols got (%v, %v), want (%v, %v)", gotA, gotB, a, b)
	}
	if r2 < 1-1e-12 {
		t.Fatalf("r2 = %v, want 1", r2)
	}
}
