package circuit

import "math"

// Cell describes the noise immunity of a 6-transistor SRAM cell operated at
// a reduced voltage swing (Figure 2). The feedback loop of the cell cannot
// recover from a noise pulse whose amplitude and duration lie above the
// immunity curve; the curve drops as the voltage swing shrinks, making a
// faster-clocked (lower-swing) cell easier to upset.
//
// The immunity boundary is modelled as
//
//	Acrit(Dr, Vsr) = Margin * Vsr^Gamma * (1 + Tau/Dr)
//
// Margin is the static noise margin of the cell at full swing, as a
// fraction of the full-swing voltage. Gamma < 1 captures the feedback
// loop's nonlinear sensitivity: early swing reductions barely erode the
// margin, deep reductions erode it quickly. Tau is the regenerative time
// constant of the feedback loop: short pulses need disproportionately large
// amplitudes to flip the cell.
type Cell struct {
	Margin float64 // static noise margin at full swing, fraction of Vfs
	Gamma  float64 // swing sensitivity exponent of the feedback loop
	Tau    float64 // regenerative time constant, fraction of Cfs
}

// DefaultCell returns the calibrated 6T cell used throughout the paper
// reproduction. Margin is fixed numerically (see Calibrate) so that the
// integrated fault probability at full swing equals BaseFaultProbability,
// the Shivakumar-consistent anchor the paper quotes (2.59e-7 per bit).
func DefaultCell() Cell {
	c := Cell{Margin: 0.5, Gamma: 0.4, Tau: 0.01}
	c.Calibrate(BaseFaultProbability)
	return c
}

// BaseFaultProbability is the per-bit fault probability at full voltage
// swing (Cr = 1) used to anchor the model, matching the initial fault
// probability of 2.59e-7 chosen in Section 5.1.
const BaseFaultProbability = 2.59e-7

// CriticalAmplitude returns the smallest relative noise amplitude that
// upsets the cell for a pulse of relative duration dr at relative voltage
// swing vsr. Durations at or below zero cannot flip the cell (infinite
// critical amplitude).
func (c Cell) CriticalAmplitude(dr, vsr float64) float64 {
	if dr <= 0 {
		return math.Inf(1)
	}
	return c.Margin * math.Pow(vsr, c.Gamma) * (1 + c.Tau/dr)
}

// ImmunityCurve samples the noise-immunity curve of Figure 2b for a given
// relative voltage swing: for n+1 relative durations spanning (0, MaxDuration]
// it returns the critical amplitude boundary. Pulses above the boundary
// cause a logic failure.
func (c Cell) ImmunityCurve(vsr float64, n int) (dr, ar []float64) {
	if n < 1 {
		panic("circuit: ImmunityCurve needs at least one interval")
	}
	dr = make([]float64, n+1)
	ar = make([]float64, n+1)
	for i := 0; i <= n; i++ {
		d := MaxDuration * float64(i+1) / float64(n+1)
		dr[i] = d
		ar[i] = c.CriticalAmplitude(d, vsr)
	}
	return dr, ar
}

// FaultProbabilityAtSwing integrates the noise distributions of Eq. 2 and
// Eq. 3 over the region above the immunity curve, yielding the probability
// that a single noise event upsets the cell at relative swing vsr
// (Figure 4):
//
//	P_E(Vsr) = ∫0..MaxDuration P(Dr) · P(Ar > Acrit(Dr, Vsr)) dDr
//
// The integral is evaluated with composite Simpson quadrature; the
// integrand is smooth, so a modest node count converges far below the
// model's own accuracy.
func (c Cell) FaultProbabilityAtSwing(vsr float64) float64 {
	const steps = 512 // Simpson intervals; even
	f := func(dr float64) float64 {
		return DurationDensity(dr) * AmplitudeTail(c.CriticalAmplitude(dr, vsr))
	}
	h := MaxDuration / steps
	sum := f(1e-12) + f(MaxDuration-1e-12)
	for i := 1; i < steps; i++ {
		x := float64(i) * h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// FaultProbability composes the swing curve of Figure 1b with the
// swing-level fault probability of Figure 4 to obtain the per-bit fault
// probability at relative cycle time cr (Figure 5). Cycle times at or above
// the full-swing cycle time operate at full swing.
func (c Cell) FaultProbability(cr float64) float64 {
	return c.FaultProbabilityAtSwing(VoltageSwing(cr))
}

// Calibrate adjusts the cell's static noise margin so that the integrated
// fault probability at full swing equals target. The fault probability is
// strictly decreasing in Margin, so a bisection converges unconditionally.
func (c *Cell) Calibrate(target float64) {
	if target <= 0 || target >= 1 {
		panic("circuit: calibration target out of (0, 1)")
	}
	lo, hi := 0.01, 5.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		c.Margin = mid
		if c.FaultProbabilityAtSwing(1) > target {
			lo = mid // margin too small, faults too likely
		} else {
			hi = mid
		}
	}
	c.Margin = (lo + hi) / 2
}
