// Package telemetry is the observability layer of the simulator: atomic
// counters and histograms collected into a registry, a structured JSONL
// event sink with simulated-cycle timestamps, and wall-clock monitoring for
// the parallel experiment runner.
//
// The package is designed so that instrumentation costs nothing when it is
// off. Instrumented code holds a possibly-nil *RunTrace; every emit method
// is nil-receiver-safe, so the disabled hot path pays one predictable
// branch and zero allocations. Counters are not incremented on the
// simulator's hot paths at all — the run machinery keeps its existing plain
// struct statistics and flushes them into the atomic registry once per run,
// which also makes the registry safe to share across the parallel
// experiment workers.
package telemetry

import "sync/atomic"

// Telemetry is the process-wide observability hub: a counter registry plus
// an optional trace sink. A nil *Telemetry is valid and means "off".
type Telemetry struct {
	Registry *Registry

	sink   atomic.Pointer[JSONLSink]
	runSeq atomic.Uint64
}

// New returns a Telemetry hub with an empty registry and no trace sink.
func New() *Telemetry {
	return &Telemetry{Registry: NewRegistry()}
}

// SetSink installs (or, with nil, removes) the structured event sink.
func (t *Telemetry) SetSink(s *JSONLSink) {
	if t == nil {
		return
	}
	t.sink.Store(s)
}

// Sink returns the installed event sink, or nil.
func (t *Telemetry) Sink() *JSONLSink {
	if t == nil {
		return nil
	}
	return t.sink.Load()
}

// TraceEnabled reports whether structured events are being recorded.
func (t *Telemetry) TraceEnabled() bool { return t.Sink() != nil }

// StartRun opens a trace for one simulation run. clock supplies the
// current simulated cycle for event timestamps (nil stamps zero). It
// returns nil — the disabled trace — when t is nil or no sink is
// installed, so callers can hold the result unconditionally.
func (t *Telemetry) StartRun(clock func() float64) *RunTrace {
	sink := t.Sink()
	if sink == nil {
		return nil
	}
	return &RunTrace{
		sink:  sink,
		run:   t.runSeq.Add(1),
		clock: clock,
	}
}
