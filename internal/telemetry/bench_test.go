package telemetry

import (
	"io"
	"testing"
)

// Micro-benchmarks of the instrumentation primitives. The numbers that
// matter: the disabled (nil) trace must be a constant-time no-op with zero
// allocations, counters and histograms must be a single atomic add, and
// the enabled emit path must reuse its scratch buffer rather than
// allocating per event.

func BenchmarkCounterAdd(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

func BenchmarkDisabledTraceEmit(b *testing.B) {
	var rt *RunTrace // the disabled trace held by uninstrumented runs
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.FaultInjection("read", 1, uint64(i))
	}
}

func BenchmarkEnabledTraceEmit(b *testing.B) {
	sink := NewJSONLSink(io.Discard)
	tel := New()
	tel.SetSink(sink)
	rt := tel.StartRun(func() float64 { return 1234.5 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.FaultInjection("read", 1, uint64(i))
	}
}

// TestDisabledTraceNoAllocs asserts (not just reports) that the disabled
// telemetry path allocates nothing: the guarantee that lets the cache hot
// path carry a trace pointer for free.
func TestDisabledTraceNoAllocs(t *testing.T) {
	var rt *RunTrace
	allocs := testing.AllocsPerRun(1000, func() {
		rt.FaultInjection("read", 1, 42)
		rt.Recovery("retry", 1, 42)
		rt.FreqTransition(1, "keep", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled trace allocated %.1f times per op, want 0", allocs)
	}
}

// TestCounterNoAllocs asserts the counter/histogram fast path is
// allocation-free, since the registry is shared by all parallel workers.
func TestCounterNoAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	h := r.Histogram("y")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(7)
	})
	if allocs != 0 {
		t.Fatalf("counter path allocated %.1f times per op, want 0", allocs)
	}
}

// TestEnabledTraceSteadyStateNoAllocs asserts the enabled emit path reuses
// its scratch buffer once warm.
func TestEnabledTraceSteadyStateNoAllocs(t *testing.T) {
	sink := NewJSONLSink(io.Discard)
	tel := New()
	tel.SetSink(sink)
	rt := tel.StartRun(func() float64 { return 99 })
	rt.FaultInjection("read", 1, 42) // warm the buffer
	allocs := testing.AllocsPerRun(1000, func() {
		rt.FaultInjection("read", 1, 42)
	})
	if allocs != 0 {
		t.Fatalf("enabled trace allocated %.1f times per op after warm-up, want 0", allocs)
	}
}
