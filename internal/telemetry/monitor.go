package telemetry

import (
	"sync"
	"time"
)

// Progress is a snapshot of a running experiment grid, delivered to the
// RunMonitor's OnProgress callback after every completed run.
type Progress struct {
	Done    int           // runs completed
	Skipped int           // runs drained without executing after a grid failure or cancellation
	Total   int           // runs in the grid
	Workers int           // parallel workers executing the grid
	Elapsed time.Duration // wall time since the grid started
	Busy    time.Duration // summed per-run wall time across workers
	AvgRun  time.Duration // mean wall time per completed run
}

// Utilization returns the fraction of worker wall-time spent inside runs
// (1.0 = every worker busy the whole time).
func (p Progress) Utilization() float64 {
	if p.Workers <= 0 || p.Elapsed <= 0 {
		return 0
	}
	u := float64(p.Busy) / (float64(p.Elapsed) * float64(p.Workers))
	if u > 1 {
		u = 1
	}
	return u
}

// RunMonitor collects wall-clock telemetry for a parallel experiment grid:
// per-run durations, total worker busy time, and completion progress. A
// nil *RunMonitor is valid and records nothing, so the runner can hold one
// unconditionally.
//
// When Registry is set, every completed run also feeds the
// "experiment.runs" counter and the "experiment.run_ms" histogram, so grid
// timing shows up in the same stats dump as the simulation counters.
type RunMonitor struct {
	// OnProgress, if non-nil, observes every completed run. It is called
	// under the monitor's lock: keep it fast and do not re-enter the
	// monitor.
	OnProgress func(Progress)

	// Registry, if non-nil, receives run-duration instruments.
	Registry *Registry

	mu      sync.Mutex
	total   int
	done    int
	skipped int
	workers int
	started time.Time
	busy    time.Duration
}

// Begin marks the start of a grid of total runs on the given number of
// workers, resetting the per-grid progress state.
func (m *RunMonitor) Begin(total, workers int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.total = total
	m.done = 0
	m.skipped = 0
	m.workers = workers
	m.started = time.Now() //lint:wallclock-ok — wall-clock progress reporting, never feeds simulated state
	m.busy = 0
	m.mu.Unlock()
}

// RunDone records the completion of one run that took d of wall time.
func (m *RunMonitor) RunDone(d time.Duration) {
	if m == nil {
		return
	}
	if m.Registry != nil {
		m.Registry.Counter(CtrExperimentRuns).Inc()
		m.Registry.Histogram(HistExperimentRunMS).Observe(uint64(d.Milliseconds()))
	}
	m.mu.Lock()
	m.done++
	m.busy += d
	p := m.progressLocked()
	cb := m.OnProgress
	if cb != nil {
		cb(p)
	}
	m.mu.Unlock()
}

// RunSkipped records one grid item that was drained without executing —
// after the grid's first failure or a campaign cancellation the remaining
// queued items are skipped, and a campaign log should say how many.
func (m *RunMonitor) RunSkipped() {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.skipped++
	m.mu.Unlock()
}

// Progress returns the current grid progress.
func (m *RunMonitor) Progress() Progress {
	if m == nil {
		return Progress{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.progressLocked()
}

func (m *RunMonitor) progressLocked() Progress {
	p := Progress{
		Done:    m.done,
		Skipped: m.skipped,
		Total:   m.total,
		Workers: m.workers,
		Busy:    m.busy,
	}
	if !m.started.IsZero() {
		p.Elapsed = time.Since(m.started) //lint:wallclock-ok — elapsed wall time of the grid, reporting only
	}
	if m.done > 0 {
		p.AvgRun = m.busy / time.Duration(m.done)
	}
	return p
}
