package telemetry

import "sort"

// Kind classifies a registered telemetry name.
//
//lint:exhaustive
type Kind int

const (
	// KindCounter names a monotonic counter in the registry.
	KindCounter Kind = iota
	// KindHistogram names a log2-bucketed histogram in the registry.
	KindHistogram
	// KindEvent names a structured trace event type (the "type" field of
	// the JSONL records).
	KindEvent
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	case KindEvent:
		return "event"
	default:
		return "unknown"
	}
}

// NameSpec documents one registered telemetry name. The table below is the
// single source of truth for the simulator's instrument and event names:
// the `telemnames` analyzer in internal/lint rejects any Counter/Histogram
// lookup or trace-event type that is not listed here, and the CLI `stats
// -describe` subcommand prints it.
type NameSpec struct {
	Name string
	Kind Kind
	Help string
}

// Registered counter names. Instrumented code must reference counters
// through these constants (or the cache-level helper below); a raw string
// literal that drifts from the table is a lint error.
const (
	CtrRunCount                  = "run.count"
	CtrRunFatal                  = "run.fatal"
	CtrRunPacketsProcessed       = "run.packets_processed"
	CtrRunPacketsDropped         = "run.packets_dropped"
	CtrRunInstructions           = "run.instructions"
	CtrRunCycles                 = "run.cycles"
	CtrFaultReadInjected         = "fault.read_injected"
	CtrFaultWriteInjected        = "fault.write_injected"
	CtrFaultBurstEpisodes        = "fault.burst_episodes"
	CtrFaultPermanentHits        = "fault.permanent_hits"
	CtrCacheL1DLinesDisabled     = "cache.l1d.lines_disabled"
	CtrRecoveryLineDisabled      = "recovery.line_disabled"
	CtrRecoveryEscalations       = "recovery.escalations"
	CtrRecoveryDetected          = "recovery.detected"
	CtrRecoveryRetries           = "recovery.retries"
	CtrRecoveryRecoveries        = "recovery.recoveries"
	CtrRecoveryECCCorrected      = "recovery.ecc_corrected"
	CtrRecoveryECCMiscorrected   = "recovery.ecc_miscorrected"
	CtrRecoveryContained         = "recovery.contained"
	CtrRecoveryRestoredPages     = "recovery.restored_pages"
	CtrFreqEpochs                = "freq.epochs"
	CtrFreqUpTransitions         = "freq.up_transitions"
	CtrFreqDownTransitions       = "freq.down_transitions"
	CtrFreqSwitches              = "freq.switches"
	CtrFreqPenaltyCycles         = "freq.penalty_cycles"
	CtrWatchdogKills             = "watchdog.kills"
	CtrCyclesCompute             = "cycles.compute"
	CtrCyclesL1DStall            = "cycles.l1d_stall"
	CtrCyclesL1IStall            = "cycles.l1i_stall"
	CtrCyclesL2Stall             = "cycles.l2_stall"
	CtrCyclesMemStall            = "cycles.mem_stall"
	CtrCyclesRecovery            = "cycles.recovery"
	CtrCyclesFreqPenalty         = "cycles.freq_penalty"
	CtrExperimentRuns            = "experiment.runs"
	CtrCampaignCellsDone         = "campaign.cells_done"
	CtrCampaignCellsSkipped      = "campaign.cells_skipped"
	CtrCampaignCellsRetried      = "campaign.cells_retried"
	CtrCampaignCellsTimedOut     = "campaign.cells_timed_out"
	CtrClusterArrivals           = "cluster.arrivals"
	CtrClusterAdmitted           = "cluster.admitted"
	CtrClusterShed               = "cluster.shed"
	CtrClusterDispatched         = "cluster.dispatched"
	CtrClusterCompleted          = "cluster.completed"
	CtrClusterNodeDrops          = "cluster.node_drops"
	CtrClusterRedispatched       = "cluster.failover_redispatched"
	CtrClusterDegradations       = "cluster.degradations"
	CtrClusterDrains             = "cluster.drains"
	CtrClusterReclocks           = "cluster.reclocks"
	CtrClusterProbations         = "cluster.probations"
	CtrClusterRecoveries         = "cluster.recoveries"
	CtrClusterDeaths             = "cluster.deaths"
	CtrClusterSLOViolations      = "cluster.slo_violations"
	CtrServiceCampaignsActive    = "service.campaigns_active"
	CtrServiceCampaignsQueued    = "service.campaigns_queued"
	CtrServiceCampaignsCompleted = "service.campaigns_completed"
	CtrServiceCampaignsFailed    = "service.campaigns_failed"
	CtrServiceCampaignsRestarted = "service.campaigns_restarted"
	CtrServiceQueueRejections    = "service.queue_rejections"
	CtrServiceRecoveriesOnStart  = "service.recoveries_on_start"
	CtrStateDetected             = "state.detected"
	CtrStateEvictions            = "state.evictions"
	CtrStateRebuilds             = "state.rebuilds"
	CtrStateScrubs               = "state.scrubs"
)

// Registered histogram names.
const (
	HistPacketInstructions = "packet.instructions"
	HistPacketCycles       = "packet.cycles"
	HistExperimentRunMS    = "experiment.run_ms"
	HistClusterLatency     = "cluster.latency_ticks"
)

// Registered trace-event types.
const (
	EventRunStart       = "run_start"
	EventRunEnd         = "run_end"
	EventFaultInjection = "fault_injection"
	EventRecovery       = "recovery"
	EventFreqTransition = "freq_transition"
	EventPacketDrop     = "packet_drop"
	EventStateRestore   = "state_restore"
	EventCampaignResume = "campaign_resume"
	EventCellRetry      = "cell_retry"
	EventCellTimeout    = "cell_timeout"
	EventLineDisable    = "line_disable"
	EventBurstEnter     = "burst_enter"
	EventBurstExit      = "burst_exit"
	EventNodeTransition = "node_transition"
	EventNodeReclock    = "node_reclock"
	EventStateCorrupt   = "state_corrupt"
	EventStateScrub     = "state_scrub"
)

// CacheLevels are the per-level counter families of the memory hierarchy.
var CacheLevels = []string{"l1d", "l1i", "l2", "mem"}

// cacheEvents are the per-level cache counter suffixes.
var cacheEvents = []struct{ suffix, help string }{
	{"reads", "read accesses"},
	{"writes", "write accesses"},
	{"read_misses", "read misses"},
	{"write_misses", "write misses"},
	{"writebacks", "dirty lines written to the next level"},
	{"invalidations", "lines dropped by recovery or DMA coherence"},
}

// CacheCounterName returns the registered counter name for one cache
// level's event, e.g. ("l1d", "reads") -> "cache.l1d.reads".
func CacheCounterName(level, event string) string {
	return "cache." + level + "." + event
}

// names is the full registry table, built once at init.
var names []NameSpec

// byName indexes the table for Registered.
var byName map[string]Kind

func init() {
	names = []NameSpec{
		{CtrRunCount, KindCounter, "simulated faulty runs started"},
		{CtrRunFatal, KindCounter, "runs ended by a fatal error"},
		{CtrRunPacketsProcessed, KindCounter, "packets completed across runs"},
		{CtrRunPacketsDropped, KindCounter, "packets dropped (aborted or contained)"},
		{CtrRunInstructions, KindCounter, "instructions executed across runs"},
		{CtrRunCycles, KindCounter, "cycles burned across runs"},
		{CtrFaultReadInjected, KindCounter, "fault events injected on the L1D read path"},
		{CtrFaultWriteInjected, KindCounter, "fault events injected on the L1D write path"},
		{CtrFaultBurstEpisodes, KindCounter, "bad-state episodes entered by the Gilbert-Elliott burst process"},
		{CtrFaultPermanentHits, KindCounter, "accesses faulted by a stuck-at cell below its critical cycle time"},
		{CtrCacheL1DLinesDisabled, KindCounter, "L1D frames disabled by the strike-budget recovery action"},
		{CtrRecoveryLineDisabled, KindCounter, "line-disable recovery actions taken"},
		{CtrRecoveryEscalations, KindCounter, "recovery-ladder escalations beyond k-strike retry (line disables + spatial frequency back-offs)"},
		{CtrRecoveryDetected, KindCounter, "detected (uncorrectable) parity/ECC mismatches"},
		{CtrRecoveryRetries, KindCounter, "L1 re-reads before recovery (two-/three-strike)"},
		{CtrRecoveryRecoveries, KindCounter, "refetch-from-L2 recovery sequences"},
		{CtrRecoveryECCCorrected, KindCounter, "single-bit faults repaired in place by ECC"},
		{CtrRecoveryECCMiscorrected, KindCounter, ">=3-bit faults silently miscorrected by ECC"},
		{CtrRecoveryContained, KindCounter, "fatal errors contained as packet drops"},
		{CtrRecoveryRestoredPages, KindCounter, "checkpoint pages rolled back by containment"},
		{CtrFreqEpochs, KindCounter, "dynamic-frequency controller epochs"},
		{CtrFreqUpTransitions, KindCounter, "epochs that sped the L1D up"},
		{CtrFreqDownTransitions, KindCounter, "epochs that slowed the L1D down"},
		{CtrFreqSwitches, KindCounter, "operating-point switches applied"},
		{CtrFreqPenaltyCycles, KindCounter, "cycles charged for frequency switches"},
		{CtrWatchdogKills, KindCounter, "packets killed by the instruction-budget watchdog"},
		{CtrCyclesCompute, KindCounter, "cycles attributed to single-issue instruction execution"},
		{CtrCyclesL1DStall, KindCounter, "cycles attributed to first-attempt L1D array access"},
		{CtrCyclesL1IStall, KindCounter, "cycles attributed to L1I fetch stalls (incl. its backend fills)"},
		{CtrCyclesL2Stall, KindCounter, "cycles attributed to normal-path L2 fills and write-backs on the data side"},
		{CtrCyclesMemStall, KindCounter, "cycles attributed to normal-path main-memory transfers on the data side"},
		{CtrCyclesRecovery, KindCounter, "cycles attributed to fault recovery (retries, refetches, watchdog burn)"},
		{CtrCyclesFreqPenalty, KindCounter, "cycles attributed to operating-point switch penalties"},
		{CtrExperimentRuns, KindCounter, "experiment-grid runs completed"},
		{CtrCampaignCellsDone, KindCounter, "campaign grid cells computed to completion"},
		{CtrCampaignCellsSkipped, KindCounter, "campaign grid cells satisfied from the resume journal"},
		{CtrCampaignCellsRetried, KindCounter, "campaign grid cell attempts retried after a transient host failure"},
		{CtrCampaignCellsTimedOut, KindCounter, "campaign grid cells failed by the per-cell wall-clock deadline"},
		{CtrClusterArrivals, KindCounter, "packets arrived at the fleet dispatcher"},
		{CtrClusterAdmitted, KindCounter, "packets admitted past fleet admission control"},
		{CtrClusterShed, KindCounter, "packets shed by admission control or full queues"},
		{CtrClusterDispatched, KindCounter, "packets enqueued to a node by the dispatcher"},
		{CtrClusterCompleted, KindCounter, "packets completed by fleet nodes"},
		{CtrClusterNodeDrops, KindCounter, "packets dropped by node-level fault containment"},
		{CtrClusterRedispatched, KindCounter, "queued packets re-dispatched to survivors off a failed node"},
		{CtrClusterDegradations, KindCounter, "node transitions into the degraded health state"},
		{CtrClusterDrains, KindCounter, "node transitions into the draining health state"},
		{CtrClusterReclocks, KindCounter, "drain-complete re-clock actions applied to nodes"},
		{CtrClusterProbations, KindCounter, "nodes re-admitted to dispatch on probation"},
		{CtrClusterRecoveries, KindCounter, "nodes recovered from probation to healthy"},
		{CtrClusterDeaths, KindCounter, "nodes declared dead and ejected from the fleet"},
		{CtrClusterSLOViolations, KindCounter, "completed packets whose latency exceeded the SLO"},
		{CtrServiceCampaignsActive, KindCounter, "campaigns entered the running state by a clumsyd supervisor"},
		{CtrServiceCampaignsQueued, KindCounter, "campaigns accepted into the clumsyd submission queue"},
		{CtrServiceCampaignsCompleted, KindCounter, "campaigns completed by clumsyd supervisors"},
		{CtrServiceCampaignsFailed, KindCounter, "campaigns failed terminally after exhausting supervised restarts"},
		{CtrServiceCampaignsRestarted, KindCounter, "supervised restart-with-resume attempts after a campaign failure"},
		{CtrServiceQueueRejections, KindCounter, "campaign submissions rejected by queue backpressure (HTTP 429)"},
		{CtrServiceRecoveriesOnStart, KindCounter, "incomplete campaigns re-adopted from their journals at clumsyd startup"},
		{CtrStateDetected, KindCounter, "flow-record checksum mismatches detected by verified reads or scrub"},
		{CtrStateEvictions, KindCounter, "corrupted flow records evicted (first recovery-ladder rung)"},
		{CtrStateRebuilds, KindCounter, "corrupted flow records rebuilt from the golden shadow"},
		{CtrStateScrubs, KindCounter, "periodic flow-table scrub passes completed"},

		{HistPacketInstructions, KindHistogram, "instructions per completed packet"},
		{HistPacketCycles, KindHistogram, "cycles per completed packet"},
		{HistExperimentRunMS, KindHistogram, "wall-clock milliseconds per grid run"},
		{HistClusterLatency, KindHistogram, "queueing+service latency in virtual ticks per completed fleet packet"},

		{EventRunStart, KindEvent, "configuration of a starting run"},
		{EventRunEnd, KindEvent, "outcome of a finished run"},
		{EventFaultInjection, KindEvent, "one injected fault on the L1D read or write path"},
		{EventRecovery, KindEvent, "one step of the k-strike recovery machinery"},
		{EventFreqTransition, KindEvent, "one applied dynamic-frequency decision"},
		{EventPacketDrop, KindEvent, "one packet killed by a fatal error"},
		{EventStateRestore, KindEvent, "one fault-containment rollback to a packet boundary"},
		{EventCampaignResume, KindEvent, "campaign resumed from a journal, skipping completed cells"},
		{EventCellRetry, KindEvent, "one campaign grid cell retried after a transient host failure"},
		{EventCellTimeout, KindEvent, "one campaign grid cell failed by its wall-clock deadline"},
		{EventLineDisable, KindEvent, "one L1D frame disabled after exhausting its strike budget"},
		{EventBurstEnter, KindEvent, "burst process entered the bad (droop episode) state"},
		{EventBurstExit, KindEvent, "burst process returned to the good state"},
		{EventNodeTransition, KindEvent, "one fleet-node health state transition"},
		{EventNodeReclock, KindEvent, "one drain-complete re-clock of a fleet node"},
		{EventStateCorrupt, KindEvent, "one recovery-ladder action on a corrupted flow record"},
		{EventStateScrub, KindEvent, "one periodic flow-table scrub pass"},
	}
	for _, level := range CacheLevels {
		for _, ev := range cacheEvents {
			names = append(names, NameSpec{
				Name: CacheCounterName(level, ev.suffix),
				Kind: KindCounter,
				Help: "L1D/L1I/L2/memory " + ev.help + " (" + level + ")",
			})
		}
	}
	byName = make(map[string]Kind, len(names))
	for _, n := range names {
		if _, dup := byName[n.Name]; dup {
			panic("telemetry: duplicate registered name " + n.Name)
		}
		byName[n.Name] = n.Kind
	}
}

// Names returns the registry table sorted by kind then name.
func Names() []NameSpec {
	out := make([]NameSpec, len(names))
	copy(out, names)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Registered reports whether name is a registered instrument or event of
// the given kind.
func Registered(name string, k Kind) bool {
	kind, ok := byName[name]
	return ok && kind == k
}
