package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("same name must return the same counter")
	}
	s := r.Snapshot()
	if s.Counters["a.b"] != 42 {
		t.Fatalf("snapshot = %v", s.Counters)
	}
	r.Reset()
	if got := r.Counter("a.b").Load(); got != 0 {
		t.Fatalf("after reset: %d", got)
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()        // must not panic
	r.Histogram("y").Observe(3) // must not panic
	r.Reset()
	if s := r.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil registry snapshot: %v", s)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1010 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	s := h.snapshot()
	// Expected occupation: le=0 (zeros):1, le=1:1, le=3 ([2,3]):2,
	// le=7 ([4,7]):1, le=1023:1.
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 1023: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Fatalf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
}

func TestWriteJSONAndPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("cache.l1d.reads").Add(7)
	r.Histogram("packet.instructions").Observe(5)

	var jb bytes.Buffer
	if err := r.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(jb.Bytes(), &s); err != nil {
		t.Fatalf("JSON dump does not round-trip: %v", err)
	}
	if s.Counters["cache.l1d.reads"] != 7 || s.Histograms["packet.instructions"].Count != 1 {
		t.Fatalf("round-trip = %+v", s)
	}

	var pb bytes.Buffer
	if err := r.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	text := pb.String()
	for _, want := range []string{
		"# TYPE clumsy_cache_l1d_reads counter",
		"clumsy_cache_l1d_reads 7",
		"# TYPE clumsy_packet_instructions histogram",
		`clumsy_packet_instructions_bucket{le="+Inf"} 1`,
		"clumsy_packet_instructions_sum 5",
		"clumsy_packet_instructions_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}
}

func TestRunTraceEvents(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tel := New()
	tel.SetSink(sink)

	cycle := 0.0
	rt := tel.StartRun(func() float64 { return cycle })
	if rt == nil {
		t.Fatal("StartRun returned nil with a sink installed")
	}
	rt.RunStart("route", 100, 1, 0.5, true, "parity", 2, 25)
	cycle = 123.5
	rt.FaultInjection("read", 2, 0xdead)
	rt.Recovery("retry", 1, 0xdead)
	rt.FreqTransition(100, "speed up", 0.25)
	rt.PacketDrop(57, `watchdog "quoted"`)
	rt.StateRestore(57, 3, "watchdog")
	rt.RunEnd(100, 1, 12345, false)
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	if sink.Records() != 7 {
		t.Fatalf("records = %d, want 7", sink.Records())
	}

	types := []string{"run_start", "fault_injection", "recovery", "freq_transition", "packet_drop", "state_restore", "run_end"}
	sc := bufio.NewScanner(&buf)
	for i := 0; sc.Scan(); i++ {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d invalid JSON: %v\n%s", i, err, sc.Text())
		}
		if ev["type"] != types[i] {
			t.Fatalf("line %d type = %v, want %s", i, ev["type"], types[i])
		}
		if ev["run"] != float64(1) {
			t.Fatalf("line %d run = %v", i, ev["run"])
		}
		if _, ok := ev["cycle"].(float64); !ok {
			t.Fatalf("line %d has no numeric cycle: %v", i, ev)
		}
		if i > 0 && ev["cycle"] != 123.5 {
			t.Fatalf("line %d cycle = %v, want 123.5", i, ev["cycle"])
		}
	}
}

func TestDisabledRunTraceIsNil(t *testing.T) {
	tel := New() // no sink
	if rt := tel.StartRun(nil); rt != nil {
		t.Fatal("StartRun without a sink must return the nil trace")
	}
	var rt *RunTrace
	// Every emit on the disabled trace must be a no-op, not a panic.
	rt.RunStart("x", 0, 0, 1, false, "none", 1, 1)
	rt.FaultInjection("read", 1, 0)
	rt.Recovery("retry", 1, 0)
	rt.FreqTransition(0, "keep", 1)
	rt.PacketDrop(0, "watchdog")
	rt.StateRestore(0, 0, "watchdog")
	rt.RunEnd(0, 0, 0, false)
	rt.SetClock(nil)

	var tnil *Telemetry
	if tnil.Sink() != nil || tnil.TraceEnabled() {
		t.Fatal("nil Telemetry must read as disabled")
	}
	tnil.SetSink(nil)
}

// TestConcurrentCountersAndSink exercises the shared registry and JSONL
// sink from many goroutines at once — the shape of telemetry written from
// parallelFor experiment workers. Run under -race (the CI does), and
// verify both the counter totals and that no two events interleaved.
func TestConcurrentCountersAndSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	tel := New()
	tel.SetSink(sink)

	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := tel.Registry.Counter("shared.count")
			h := tel.Registry.Histogram("shared.hist")
			rt := tel.StartRun(nil)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				h.Observe(uint64(i))
				rt.FaultInjection("read", 1, uint64(i))
			}
			rt.RunEnd(perWorker, 0, 0, false)
		}()
	}
	wg.Wait()
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}

	if got := tel.Registry.Counter("shared.count").Load(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := tel.Registry.Histogram("shared.hist").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d", got)
	}

	lines := 0
	runs := map[float64]bool{}
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("interleaved or corrupt line: %v\n%s", err, sc.Text())
		}
		runs[ev["run"].(float64)] = true
		lines++
	}
	if want := workers * (perWorker + 1); lines != want {
		t.Fatalf("lines = %d, want %d", lines, want)
	}
	if len(runs) != workers {
		t.Fatalf("distinct run ids = %d, want %d", len(runs), workers)
	}
}
