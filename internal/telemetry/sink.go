package telemetry

import (
	"bufio"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
)

// JSONLSink serialises structured trace events to an io.Writer as JSON
// Lines, one complete object per line. It is safe for concurrent use; the
// parallel experiment workers all write through one sink and lines never
// interleave.
type JSONLSink struct {
	mu      sync.Mutex
	w       *bufio.Writer
	c       io.Closer
	records atomic.Uint64
}

// NewJSONLSink wraps w in a buffered JSONL sink. If w is also an
// io.Closer, Close closes it after flushing.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// write appends one record (a complete JSON object without the trailing
// newline) to the stream.
func (s *JSONLSink) write(line []byte) {
	s.mu.Lock()
	s.w.Write(line)
	s.w.WriteByte('\n')
	s.mu.Unlock()
	s.records.Add(1)
}

// Records returns the number of events written so far.
func (s *JSONLSink) Records() uint64 { return s.records.Load() }

// Flush drains the write buffer.
func (s *JSONLSink) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Flush()
}

// Close flushes and, when the underlying writer is closable, closes it.
func (s *JSONLSink) Close() error {
	err := s.Flush()
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// RunTrace emits the structured events of one simulation run, stamping
// each with the run's sequence number and the current simulated cycle. A
// nil *RunTrace is the disabled trace: every method returns immediately,
// so instrumented code needs no separate enable flag.
//
// A RunTrace is used from the single goroutine driving its run (it reuses
// an internal scratch buffer); distinct runs may trace concurrently
// through the shared sink.
type RunTrace struct {
	sink  *JSONLSink
	run   uint64
	clock func() float64
	buf   []byte
}

// SetClock installs the simulated-cycle clock (used when the engine is
// built after the trace is opened).
func (rt *RunTrace) SetClock(clock func() float64) {
	if rt != nil {
		rt.clock = clock
	}
}

// begin starts a record with the common fields: run, cycle, type.
func (rt *RunTrace) begin(typ string) []byte {
	b := append(rt.buf[:0], `{"run":`...)
	b = strconv.AppendUint(b, rt.run, 10)
	b = append(b, `,"cycle":`...)
	cycle := 0.0
	if rt.clock != nil {
		cycle = rt.clock()
	}
	b = strconv.AppendFloat(b, cycle, 'f', -1, 64)
	b = append(b, `,"type":"`...)
	b = append(b, typ...)
	b = append(b, '"')
	return b
}

func (rt *RunTrace) end(b []byte) {
	b = append(b, '}')
	rt.sink.write(b)
	rt.buf = b
}

func appendStr(b []byte, key, v string) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	return strconv.AppendQuote(b, v)
}

func appendInt(b []byte, key string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	return strconv.AppendInt(b, v, 10)
}

func appendUint(b []byte, key string, v uint64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	return strconv.AppendUint(b, v, 10)
}

func appendFloat(b []byte, key string, v float64) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendBool(b []byte, key string, v bool) []byte {
	b = append(b, ',', '"')
	b = append(b, key...)
	b = append(b, `":`...)
	return strconv.AppendBool(b, v)
}

// RunStart records the configuration of a run.
func (rt *RunTrace) RunStart(app string, packets int, seed uint64, cr float64, dynamic bool, detection string, strikes int, scale float64) {
	if rt == nil {
		return
	}
	b := rt.begin(EventRunStart)
	b = appendStr(b, "app", app)
	b = appendInt(b, "packets", int64(packets))
	b = appendUint(b, "seed", seed)
	b = appendFloat(b, "cr", cr)
	b = appendBool(b, "dynamic", dynamic)
	b = appendStr(b, "detection", detection)
	b = appendInt(b, "strikes", int64(strikes))
	b = appendFloat(b, "scale", scale)
	rt.end(b)
}

// RunEnd records the outcome of a run: completed packets, packets dropped
// by fault containment (or the single fatal packet of an aborted run),
// instructions, and whether the run ended fatally.
func (rt *RunTrace) RunEnd(processed, dropped int, instrs uint64, fatal bool) {
	if rt == nil {
		return
	}
	b := rt.begin(EventRunEnd)
	b = appendInt(b, "processed", int64(processed))
	b = appendInt(b, "dropped", int64(dropped))
	b = appendUint(b, "instrs", instrs)
	b = appendBool(b, "fatal", fatal)
	rt.end(b)
}

// FaultInjection records one injected fault event on the L1D read or write
// path: how many bits flipped and at which simulated address.
func (rt *RunTrace) FaultInjection(path string, bitsFlipped int, addr uint64) {
	if rt == nil {
		return
	}
	b := rt.begin(EventFaultInjection)
	b = appendStr(b, "path", path)
	b = appendInt(b, "bits", int64(bitsFlipped))
	b = appendUint(b, "addr", addr)
	rt.end(b)
}

// Recovery records one step of the k-strike recovery machinery: kind is
// "retry" (an L1 re-read), "line" (full-line invalidate and refetch),
// "subblock" (per-word refetch), or "ecc_correct" (transparent SEC-DED
// repair). attempt is the strike number that triggered the step.
func (rt *RunTrace) Recovery(kind string, attempt int, addr uint64) {
	if rt == nil {
		return
	}
	b := rt.begin(EventRecovery)
	b = appendStr(b, "kind", kind)
	b = appendInt(b, "attempt", int64(attempt))
	b = appendUint(b, "addr", addr)
	rt.end(b)
}

// FreqTransition records one dynamic-frequency decision that changed the
// operating point: the packet index at which it took effect, the decision
// ("speed up" / "slow down"), and the new relative cycle time.
func (rt *RunTrace) FreqTransition(packet int, decision string, cr float64) {
	if rt == nil {
		return
	}
	b := rt.begin(EventFreqTransition)
	b = appendInt(b, "packet", int64(packet))
	b = appendStr(b, "decision", decision)
	b = appendFloat(b, "cr", cr)
	rt.end(b)
}

// PacketDrop records one packet killed by a fatal error (watchdog trip,
// memory trap, traversal loop, or contained panic). Under the abort policy
// it is the packet on which the run died and the rest of the trace is
// lost; under drop-and-continue each contained fault emits one.
func (rt *RunTrace) PacketDrop(packet int, reason string) {
	if rt == nil {
		return
	}
	b := rt.begin(EventPacketDrop)
	b = appendInt(b, "packet", int64(packet))
	b = appendStr(b, "reason", reason)
	rt.end(b)
}

// CampaignResume records that a campaign reattached to a journal and will
// skip the cells already completed by an earlier (killed or finished)
// invocation.
func (rt *RunTrace) CampaignResume(journal string, cells int) {
	if rt == nil {
		return
	}
	b := rt.begin(EventCampaignResume)
	b = appendStr(b, "journal", journal)
	b = appendInt(b, "cells", int64(cells))
	rt.end(b)
}

// CellRetry records one retried campaign grid cell: the study and cell
// index, the attempt number that failed, and the host error that caused
// the retry (sim-semantic failures are never retried and never get here).
func (rt *RunTrace) CellRetry(study string, index, attempt int, reason string) {
	if rt == nil {
		return
	}
	b := rt.begin(EventCellRetry)
	b = appendStr(b, "study", study)
	b = appendInt(b, "index", int64(index))
	b = appendInt(b, "attempt", int64(attempt))
	b = appendStr(b, "reason", reason)
	rt.end(b)
}

// CellTimeout records one campaign grid cell failed by its wall-clock
// deadline instead of being allowed to wedge the grid.
func (rt *RunTrace) CellTimeout(study string, index int, seconds float64) {
	if rt == nil {
		return
	}
	b := rt.begin(EventCellTimeout)
	b = appendStr(b, "study", study)
	b = appendInt(b, "index", int64(index))
	b = appendFloat(b, "seconds", seconds)
	rt.end(b)
}

// LineDisable records one L1D frame disabled by the strike-budget
// recovery action: the faulting address, the strike count that exhausted
// the budget, and the total number of frames now dead.
func (rt *RunTrace) LineDisable(addr uint64, strikes, deadLines int) {
	if rt == nil {
		return
	}
	b := rt.begin(EventLineDisable)
	b = appendUint(b, "addr", addr)
	b = appendInt(b, "strikes", int64(strikes))
	b = appendInt(b, "dead_lines", int64(deadLines))
	rt.end(b)
}

// BurstEnter records the burst process entering the bad (droop episode)
// state; episode is the cumulative episode count.
func (rt *RunTrace) BurstEnter(episode uint64) {
	if rt == nil {
		return
	}
	b := rt.begin(EventBurstEnter)
	b = appendUint(b, "episode", episode)
	rt.end(b)
}

// BurstExit records the burst process returning to the good state.
func (rt *RunTrace) BurstExit(episode uint64) {
	if rt == nil {
		return
	}
	b := rt.begin(EventBurstExit)
	b = appendUint(b, "episode", episode)
	rt.end(b)
}

// NodeTransition records one fleet-node health state transition: the node
// index, the states left and entered, and the evidence that drove it.
func (rt *RunTrace) NodeTransition(node int, from, to, reason string) {
	if rt == nil {
		return
	}
	b := rt.begin(EventNodeTransition)
	b = appendInt(b, "node", int64(node))
	b = appendStr(b, "from", from)
	b = appendStr(b, "to", to)
	b = appendStr(b, "reason", reason)
	rt.end(b)
}

// NodeReclock records one drain-complete re-clock: the node index and the
// relative cycle time it was re-clocked to.
func (rt *RunTrace) NodeReclock(node int, cr float64) {
	if rt == nil {
		return
	}
	b := rt.begin(EventNodeReclock)
	b = appendInt(b, "node", int64(node))
	b = appendFloat(b, "cr", cr)
	rt.end(b)
}

// StateCorrupt records one recovery-ladder action on a corrupted flow
// record: the packet during which the mismatch surfaced, the record index,
// the action taken ("evict", "rebuild", or "unrecoverable"), and the
// record's cumulative strike count.
func (rt *RunTrace) StateCorrupt(packet, record int, action string, strikes int) {
	if rt == nil {
		return
	}
	b := rt.begin(EventStateCorrupt)
	b = appendInt(b, "packet", int64(packet))
	b = appendInt(b, "record", int64(record))
	b = appendStr(b, "action", action)
	b = appendInt(b, "strikes", int64(strikes))
	rt.end(b)
}

// StateScrub records one periodic flow-table scrub pass: the packet index
// after which it ran, the records verified, and the mismatches it caught.
func (rt *RunTrace) StateScrub(packet, records, detected int) {
	if rt == nil {
		return
	}
	b := rt.begin(EventStateScrub)
	b = appendInt(b, "packet", int64(packet))
	b = appendInt(b, "records", int64(records))
	b = appendInt(b, "detected", int64(detected))
	rt.end(b)
}

// StateRestore records one fault-containment recovery: after dropping the
// given packet, the control-plane state was rolled back to the last packet
// boundary by restoring `pages` dirty pages of simulated memory.
func (rt *RunTrace) StateRestore(packet, pages int, reason string) {
	if rt == nil {
		return
	}
	b := rt.begin(EventStateRestore)
	b = appendInt(b, "packet", int64(packet))
	b = appendInt(b, "pages", int64(pages))
	b = appendStr(b, "reason", reason)
	rt.end(b)
}
