package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// histBuckets is one bucket per bit length of the observed value: bucket 0
// holds zeros, bucket i holds values in [2^(i-1), 2^i).
const histBuckets = 65

// Histogram is a lock-free log2-bucketed histogram of uint64 observations.
// The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Mean returns the mean observation, or 0 with no observations.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Bucket is one histogram bucket in snapshot form: Count observations were
// at most Le.
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a histogram, with only the
// occupied buckets and non-cumulative per-bucket counts.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count(), Sum: h.Sum(), Mean: h.Mean()}
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		le := uint64(0)
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: n})
	}
	return s
}

// Registry is a named collection of counters and histograms. Lookups
// get-or-create under a mutex; the returned instruments themselves are
// lock-free, so hot code should look its instruments up once and keep the
// pointers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Safe for
// concurrent use. A nil registry returns a throwaway counter so callers
// never need a nil check before incrementing.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return new(Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use. Safe
// for concurrent use; a nil registry returns a throwaway histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return new(Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// Reset removes every instrument.
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = make(map[string]*Counter)
	r.hists = make(map[string]*Histogram)
}

// Snapshot is a point-in-time copy of the registry contents.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: make(map[string]uint64)}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot)
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// WriteJSON writes the registry contents as one indented JSON object with
// deterministically ordered keys.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry contents in the Prometheus text
// exposition format, with metric names sanitised (dots become underscores)
// and prefixed "clumsy_".
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		m := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m, m, s.Counters[name]); err != nil {
			return err
		}
	}

	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		m := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", m); err != nil {
			return err
		}
		cum := uint64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", m, b.Le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			m, h.Count, m, h.Sum, m, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted registry name onto a valid Prometheus metric name.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("clumsy_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
