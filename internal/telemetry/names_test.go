package telemetry

import (
	"sort"
	"strings"
	"testing"
)

// TestNamesTableWellFormed checks the registry's structural invariants:
// unique names, non-empty help, and sorted, kind-grouped output.
func TestNamesTableWellFormed(t *testing.T) {
	specs := Names()
	if len(specs) == 0 {
		t.Fatal("empty registry table")
	}
	seen := make(map[string]bool)
	for _, s := range specs {
		if s.Name == "" || s.Help == "" {
			t.Errorf("spec %+v: empty name or help", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate registered name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Kind.String() == "unknown" {
			t.Errorf("%s: unknown kind %d", s.Name, s.Kind)
		}
	}
	sorted := sort.SliceIsSorted(specs, func(i, j int) bool {
		if specs[i].Kind != specs[j].Kind {
			return specs[i].Kind < specs[j].Kind
		}
		return specs[i].Name < specs[j].Name
	})
	if !sorted {
		t.Error("Names() is not sorted by kind then name")
	}
}

// TestNamesTableContents pins the counts and spot-checks the entries the
// rest of the tree depends on. A new instrument must land here and in the
// table together.
func TestNamesTableContents(t *testing.T) {
	var counters, hists, events int
	for _, s := range Names() {
		switch s.Kind {
		case KindCounter:
			counters++
		case KindHistogram:
			hists++
		case KindEvent:
			events++
		}
	}
	// 63 scalar counters + 4 cache levels x 6 events.
	if want := 63 + len(CacheLevels)*6; counters != want {
		t.Errorf("got %d registered counters, want %d", counters, want)
	}
	if hists != 4 {
		t.Errorf("got %d registered histograms, want 4", hists)
	}
	if events != 17 {
		t.Errorf("got %d registered events, want 17", events)
	}
}

func TestRegistered(t *testing.T) {
	cases := []struct {
		name string
		kind Kind
		want bool
	}{
		{CtrRunCount, KindCounter, true},
		{CtrRunCount, KindHistogram, false}, // kind mismatch
		{HistPacketCycles, KindHistogram, true},
		{HistPacketCycles, KindCounter, false},
		{EventPacketDrop, KindEvent, true},
		{"run.cuont", KindCounter, false},
		{"", KindCounter, false},
	}
	for _, c := range cases {
		if got := Registered(c.name, c.kind); got != c.want {
			t.Errorf("Registered(%q, %s) = %v, want %v", c.name, c.kind, got, c.want)
		}
	}
	for _, level := range CacheLevels {
		name := CacheCounterName(level, "reads")
		if !Registered(name, KindCounter) {
			t.Errorf("cache family name %q not registered", name)
		}
	}
}

// TestCacheCounterName pins the family's naming scheme, which the JSONL
// consumers parse by splitting on dots.
func TestCacheCounterName(t *testing.T) {
	if got := CacheCounterName("l1d", "read_misses"); got != "cache.l1d.read_misses" {
		t.Errorf("CacheCounterName = %q", got)
	}
	for _, s := range Names() {
		if strings.HasPrefix(s.Name, "cache.") && strings.Count(s.Name, ".") != 2 {
			t.Errorf("cache family name %q is not cache.<level>.<event>", s.Name)
		}
	}
}
