package service

import (
	"fmt"
	"sync"

	"clumsy/internal/experiment"
)

// State is a campaign's lifecycle position. Queued and Running are
// volatile (lost on a crash — an interrupted campaign is re-adopted as
// Queued); Completed, Failed, and Cancelled are terminal and persisted
// in the campaign's state.json.
//
//lint:exhaustive
type State int

const (
	// StateQueued: accepted, waiting for a supervisor slot.
	StateQueued State = iota
	// StateRunning: a supervisor goroutine is executing the campaign.
	StateRunning
	// StateCompleted: the study finished and result.txt is published.
	StateCompleted
	// StateFailed: the study failed terminally after exhausting the
	// supervised restart budget.
	StateFailed
	// StateCancelled: cancelled by the operator before completion.
	StateCancelled
)

// String names the state for status reports and state.json.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateCompleted:
		return "completed"
	case StateFailed:
		return "failed"
	case StateCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// parseState maps a state.json name back to its value. Only terminal
// states are ever persisted; anything else is rejected so a corrupt
// record cannot masquerade as progress.
func parseState(s string) (State, error) {
	switch s {
	case "completed":
		return StateCompleted, nil
	case "failed":
		return StateFailed, nil
	case "cancelled":
		return StateCancelled, nil
	}
	return 0, fmt.Errorf("service: non-terminal state %q in state record", s)
}

// terminal reports whether the state is an endpoint of the lifecycle.
func (s State) terminal() bool {
	switch s {
	case StateCompleted, StateFailed, StateCancelled:
		return true
	case StateQueued, StateRunning:
		return false
	}
	return false
}

// Campaign is one scheduled study: the submitted spec plus the
// supervisor-visible lifecycle. All mutable fields are guarded by mu;
// the immutable identity fields (ID, Spec, dir) are set before the
// campaign is published and never change.
type Campaign struct {
	ID   string
	Spec Spec
	dir  string // on-disk home: spec.json, journal.jsonl, result.txt, state.json

	mu        sync.Mutex
	state     State
	adopted   bool                // re-adopted from a journal at startup
	restarts  int                 // supervised restart-with-resume attempts so far
	cellsDone int                 // journal entries at last observation
	journal   *experiment.Journal // live journal while an attempt runs
	errMsg    string
	cancelled bool          // operator cancel requested
	stop      func()        // cancels the running attempt's context
	done      chan struct{} // closed when the supervisor finishes
}

// Status is the externally visible snapshot of a campaign, served by the
// HTTP API and returned by Submit.
type Status struct {
	ID        string `json:"id"`
	Study     string `json:"study"`
	App       string `json:"app,omitempty"`
	State     string `json:"state"`
	Adopted   bool   `json:"adopted,omitempty"`
	Restarts  int    `json:"restarts,omitempty"`
	CellsDone int    `json:"cells_done"`
	Error     string `json:"error,omitempty"`
}

// status snapshots the campaign under its lock. While an attempt is
// running the cell count is read live from its journal.
func (c *Campaign) status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil {
		c.cellsDone = c.journal.Len()
	}
	return Status{
		ID:        c.ID,
		Study:     c.Spec.Study,
		App:       c.Spec.App,
		State:     c.state.String(),
		Adopted:   c.adopted,
		Restarts:  c.restarts,
		CellsDone: c.cellsDone,
		Error:     c.errMsg,
	}
}

// currentState reads the state under the lock.
func (c *Campaign) currentState() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// cancelRequested reads the operator-cancel flag under the lock.
func (c *Campaign) cancelRequested() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelled
}

// Done returns a channel closed when the campaign's supervisor finishes
// (terminal state reached or checkpoint-cancelled by a drain).
func (c *Campaign) Done() <-chan struct{} { return c.done }
