package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clumsy/internal/experiment"
	"clumsy/internal/telemetry"
)

// newService builds a service on a temp dir with test-friendly knobs,
// closed at cleanup. Callers may tweak cfg through mod.
func newService(t *testing.T, mod func(*Config)) *Service {
	t.Helper()
	cfg := Config{
		DataDir:        t.TempDir(),
		RestartBackoff: time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	return svc
}

// registerTestStudy installs a synthetic study for the duration of the
// test. Tests in this package must not run in parallel while one is
// registered (none do).
func registerTestStudy(t *testing.T, name string, st study) {
	t.Helper()
	if _, exists := studies[name]; exists {
		t.Fatalf("study %q already registered", name)
	}
	studies[name] = st
	t.Cleanup(func() { delete(studies, name) })
}

// waitDone blocks until the campaign's supervisor finishes.
func waitDone(t *testing.T, c *Campaign) {
	t.Helper()
	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign %s did not finish", c.ID)
	}
}

// smallSpec is a fast real campaign used where genuine study output
// matters.
func smallSpec() Spec {
	return Spec{Study: "table1", Packets: 120, Trials: 1}
}

// renderDirect runs a spec's study without the service, the way the CLI
// would, for byte-identity comparisons.
func renderDirect(t *testing.T, sp Spec) []byte {
	t.Helper()
	o, err := sp.options()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := studies[sp.Study].run(o, sp, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSubmitRunsToCompletionByteIdentical(t *testing.T) {
	svc := newService(t, nil)
	st, err := svc.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	c, ok := svc.Get(st.ID)
	if !ok {
		t.Fatalf("submitted campaign %s not listed", st.ID)
	}
	waitDone(t, c)
	if got := c.currentState(); got != StateCompleted {
		t.Fatalf("state = %s, want completed (err %q)", got, c.status().Error)
	}
	res, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := renderDirect(t, smallSpec()); !bytes.Equal(res, want) {
		t.Fatalf("service result differs from direct run:\n--- service ---\n%s--- direct ---\n%s", res, want)
	}
	if st := c.status(); st.CellsDone == 0 {
		t.Fatal("completed campaign reports zero journaled cells")
	}
}

func TestSubmitValidates(t *testing.T) {
	svc := newService(t, nil)
	for _, sp := range []Spec{
		{Study: "bogus"},
		{Study: "edf"}, // needs an app
		{Study: "table1", Format: "xml"},
		{Study: "table1", Packets: -1},
		{Study: "errors", App: "bogus"},
		{Study: "table1", Recovery: "bogus"},
	} {
		if _, err := svc.Submit(sp); err == nil {
			t.Errorf("Submit(%+v) accepted a bad spec", sp)
		}
	}
	if n := len(svc.List()); n != 0 {
		t.Fatalf("bad specs left %d campaigns behind", n)
	}
}

// TestQueueBackpressure fills the single slot and the queue, then checks
// the next submission is rejected with ErrQueueFull and counted.
func TestQueueBackpressure(t *testing.T) {
	started := make(chan struct{}, 4)
	registerTestStudy(t, "block", study{run: func(o experiment.Options, sp Spec, w io.Writer) error {
		started <- struct{}{}
		<-o.Ctx.Done()
		return o.Ctx.Err()
	}})
	svc := newService(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.QueueDepth = 2
	})
	if _, err := svc.Submit(Spec{Study: "block"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first campaign never started")
	}
	// Slot busy: these two sit in the queue.
	for i := 0; i < 2; i++ {
		if _, err := svc.Submit(Spec{Study: "block"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := svc.Submit(Spec{Study: "block"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("full queue returned %v, want ErrQueueFull", err)
	}
	if got := svc.tel.Registry.Counter(telemetry.CtrServiceQueueRejections).Load(); got != 1 {
		t.Fatalf("queue_rejections = %d, want 1", got)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan struct{}, 2)
	registerTestStudy(t, "block", study{run: func(o experiment.Options, sp Spec, w io.Writer) error {
		started <- struct{}{}
		<-o.Ctx.Done()
		return o.Ctx.Err()
	}})
	svc := newService(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.QueueDepth = 4
	})
	run, err := svc.Submit(Spec{Study: "block"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := svc.Submit(Spec{Study: "block"})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued one: terminal immediately, never runs.
	if err := svc.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	qc, _ := svc.Get(queued.ID)
	waitDone(t, qc)
	if got := qc.currentState(); got != StateCancelled {
		t.Fatalf("queued cancel: state %s, want cancelled", got)
	}
	// Its terminal record must be on disk (crash-safe cancel).
	if _, err := os.Stat(filepath.Join(qc.dir, stateFile)); err != nil {
		t.Fatalf("cancelled campaign has no terminal record: %v", err)
	}

	// Cancel the running one: the supervisor observes the cancelled
	// context and records the terminal state.
	if err := svc.Cancel(run.ID); err != nil {
		t.Fatal(err)
	}
	rc, _ := svc.Get(run.ID)
	waitDone(t, rc)
	if got := rc.currentState(); got != StateCancelled {
		t.Fatalf("running cancel: state %s, want cancelled", got)
	}
	if err := svc.Cancel(run.ID); err != nil {
		t.Fatalf("cancelling a terminal campaign should be a no-op, got %v", err)
	}
	if err := svc.Cancel("c999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel of unknown id: %v, want ErrNotFound", err)
	}
}

// TestRestartWithResume fails the first attempt after the journal is
// fully populated; the supervised restart must resume from the journal
// and complete with the exact output of an undisturbed run.
func TestRestartWithResume(t *testing.T) {
	var calls atomic.Int32
	registerTestStudy(t, "failonce", study{run: func(o experiment.Options, sp Spec, w io.Writer) error {
		rows, err := experiment.Table1(o)
		if err != nil {
			return err
		}
		if calls.Add(1) == 1 {
			return errors.New("injected first-attempt failure")
		}
		return emitTable(sp, w, experiment.Table1Render(rows, o))
	}})
	svc := newService(t, nil)
	st, err := svc.Submit(Spec{Study: "failonce", Packets: 120, Trials: 1})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := svc.Get(st.ID)
	waitDone(t, c)
	final := c.status()
	if final.State != "completed" {
		t.Fatalf("state = %s (%s), want completed", final.State, final.Error)
	}
	if final.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", final.Restarts)
	}
	if final.CellsDone == 0 {
		t.Fatal("resumed attempt should report journaled cells")
	}
	res, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := renderDirect(t, smallSpec()); !bytes.Equal(res, want) {
		t.Fatalf("restarted result differs from undisturbed run:\n%s", res)
	}
	if got := svc.tel.Registry.Counter(telemetry.CtrServiceCampaignsRestarted).Load(); got != 1 {
		t.Fatalf("campaigns_restarted = %d, want 1", got)
	}
}

// TestRestartBudgetExhaustion: a study that always fails must end up
// failed after MaxRestarts+1 attempts.
func TestRestartBudgetExhaustion(t *testing.T) {
	var calls atomic.Int32
	registerTestStudy(t, "alwaysfail", study{run: func(o experiment.Options, sp Spec, w io.Writer) error {
		calls.Add(1)
		return errors.New("persistent failure")
	}})
	svc := newService(t, func(c *Config) { c.MaxRestarts = 2 })
	st, err := svc.Submit(Spec{Study: "alwaysfail"})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := svc.Get(st.ID)
	waitDone(t, c)
	if got := c.currentState(); got != StateFailed {
		t.Fatalf("state = %s, want failed", got)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 restarts)", got)
	}
	if got := svc.tel.Registry.Counter(telemetry.CtrServiceCampaignsFailed).Load(); got != 1 {
		t.Fatalf("campaigns_failed = %d, want 1", got)
	}
}

// TestPanicContained: a panicking study must fail its campaign, not the
// daemon.
func TestPanicContained(t *testing.T) {
	registerTestStudy(t, "panics", study{run: func(o experiment.Options, sp Spec, w io.Writer) error {
		panic("study exploded")
	}})
	svc := newService(t, func(c *Config) { c.MaxRestarts = 1 })
	st, err := svc.Submit(Spec{Study: "panics"})
	if err != nil {
		t.Fatal(err)
	}
	c, _ := svc.Get(st.ID)
	waitDone(t, c)
	if got := c.currentState(); got != StateFailed {
		t.Fatalf("state = %s, want failed", got)
	}
	if msg := c.status().Error; !strings.Contains(msg, "panic") {
		t.Fatalf("error %q does not mention the panic", msg)
	}
}

// TestDrainCheckpointAndAdoption is the graceful-drain contract: an
// in-flight campaign that cannot finish inside the grace period is
// checkpointed (journal kept, no terminal record) and a fresh service on
// the same data dir adopts and completes it.
func TestDrainCheckpointAndAdoption(t *testing.T) {
	dataDir := t.TempDir()
	started := make(chan struct{}, 1)
	var calls atomic.Int32
	registerTestStudy(t, "blockfirst", study{run: func(o experiment.Options, sp Spec, w io.Writer) error {
		if calls.Add(1) == 1 {
			started <- struct{}{}
			<-o.Ctx.Done()
			return o.Ctx.Err()
		}
		fmt.Fprintln(w, "completed after adoption")
		return nil
	}})
	svc, err := New(Config{DataDir: dataDir, RestartBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Submit(Spec{Study: "blockfirst"})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	expired, cancel := context.WithCancel(context.Background())
	cancel() // zero grace: checkpoint immediately
	svc.Drain(expired)
	if _, err := svc.Submit(Spec{Study: "blockfirst"}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit while draining: %v, want ErrDraining", err)
	}

	c, _ := svc.Get(st.ID)
	if got := c.currentState(); got.terminal() {
		t.Fatalf("checkpointed campaign has terminal state %s", got)
	}
	if _, err := os.Stat(filepath.Join(c.dir, stateFile)); !os.IsNotExist(err) {
		t.Fatalf("checkpointed campaign must not have a terminal record (stat err %v)", err)
	}

	svc2, err := New(Config{DataDir: dataDir, RestartBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if svc2.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", svc2.Recovered)
	}
	c2, ok := svc2.Get(st.ID)
	if !ok {
		t.Fatalf("adopted campaign %s not listed", st.ID)
	}
	waitDone(t, c2)
	if got := c2.currentState(); got != StateCompleted {
		t.Fatalf("adopted campaign state = %s, want completed", got)
	}
	if !c2.status().Adopted {
		t.Fatal("adopted campaign should report adopted=true")
	}
	res, err := c2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "completed after adoption\n" {
		t.Fatalf("adopted result = %q", res)
	}
	if got := svc2.tel.Registry.Counter(telemetry.CtrServiceRecoveriesOnStart).Load(); got != 1 {
		t.Fatalf("recoveries_on_start = %d, want 1", got)
	}
}

// TestRecoveryByteIdentity is the crash-recovery acceptance check in
// process form: a campaign interrupted by Close (the SIGKILL stand-in —
// no checkpointing courtesy beyond the per-cell journal) must, after
// adoption by a fresh service, publish a byte-identical result to an
// uninterrupted run — with the journal actually carrying cells across.
func TestRecoveryByteIdentity(t *testing.T) {
	dataDir := t.TempDir()
	svc, err := New(Config{DataDir: dataDir, RestartBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	st, err := svc.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	c, _ := svc.Get(st.ID)
	// Let some cells land in the journal, then kill the service hard.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if c.status().CellsDone > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cells journaled before interruption")
		}
		time.Sleep(time.Millisecond)
	}
	svc.Close()

	if st2, _ := svc.Get(st.ID); st2.currentState() == StateCompleted {
		t.Skip("campaign finished before the interruption; nothing to recover")
	}
	svc2, err := New(Config{DataDir: dataDir, RestartBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if svc2.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", svc2.Recovered)
	}
	c2, _ := svc2.Get(st.ID)
	waitDone(t, c2)
	if got := c2.currentState(); got != StateCompleted {
		t.Fatalf("recovered state = %s (%s)", got, c2.status().Error)
	}
	res, err := c2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := renderDirect(t, smallSpec()); !bytes.Equal(res, want) {
		t.Fatalf("recovered result differs from uninterrupted run:\n%s", res)
	}
}

// TestLoadCampaignsSkipsGhostDirs: a directory without spec.json (a
// submission killed before its first atomic write) is not a campaign.
func TestLoadCampaignsSkipsGhostDirs(t *testing.T) {
	dataDir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(campaignsDir(dataDir), "c000007"), 0o755); err != nil {
		t.Fatal(err)
	}
	svc, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if svc.Recovered != 0 || len(svc.List()) != 0 {
		t.Fatalf("ghost dir adopted: recovered %d, %d campaigns", svc.Recovered, len(svc.List()))
	}
	// The ghost still burns its ID so a new submission never collides.
	st, err := svc.Submit(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "c000008" {
		t.Fatalf("next ID = %s, want c000008", st.ID)
	}
}

func TestHTTPLifecycle(t *testing.T) {
	svc := newService(t, nil)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(b)
	}

	if resp, body := get("/healthz"); resp.StatusCode != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	if resp, _ := get("/readyz"); resp.StatusCode != 200 {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	// Submit a real campaign over the wire.
	resp, err := http.Post(ts.URL+"/campaigns", "application/json",
		strings.NewReader(`{"study":"table1","packets":120,"trials":1}`))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	c, ok := svc.Get(st.ID)
	if !ok {
		t.Fatalf("campaign %s not registered", st.ID)
	}
	waitDone(t, c)

	if resp, body := get("/campaigns"); resp.StatusCode != 200 || !strings.Contains(body, st.ID) {
		t.Fatalf("list: %d %q", resp.StatusCode, body)
	}
	if resp, body := get("/campaigns/" + st.ID); resp.StatusCode != 200 || !strings.Contains(body, `"completed"`) {
		t.Fatalf("status: %d %q", resp.StatusCode, body)
	}
	if resp, body := get("/campaigns/" + st.ID + "/result"); resp.StatusCode != 200 || !strings.Contains(body, "Table I") {
		t.Fatalf("result: %d %.120q", resp.StatusCode, body)
	}
	if resp, _ := get("/campaigns/c999999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing campaign: %d", resp.StatusCode)
	}
	if resp, body := get("/metrics"); resp.StatusCode != 200 ||
		!strings.Contains(body, "clumsy_service_campaigns_completed 1") {
		t.Fatalf("metrics: %d\n%s", resp.StatusCode, body)
	}

	// Malformed and unknown-field specs are rejected up front.
	for _, bad := range []string{`{"study":`, `{"study":"table1","bogus":1}`} {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad spec %q: %d", bad, resp.StatusCode)
		}
	}
}

// TestHTTPBackpressureAndDrain covers the two refusal paths: 429 with
// Retry-After on a full queue, 503 from submit and readyz once draining.
func TestHTTPBackpressureAndDrain(t *testing.T) {
	started := make(chan struct{}, 1)
	registerTestStudy(t, "block", study{run: func(o experiment.Options, sp Spec, w io.Writer) error {
		started <- struct{}{}
		<-o.Ctx.Done()
		return o.Ctx.Err()
	}})
	svc := newService(t, func(c *Config) {
		c.MaxConcurrent = 1
		c.QueueDepth = 1
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	post := func() *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(`{"study":"block"}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //lint:errcheck-ok — drain for keep-alive
		resp.Body.Close()
		return resp
	}
	if resp := post(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-started
	if resp := post(); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: %d", resp.StatusCode)
	}
	resp := post()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overfull submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	svc.Drain(expired)
	if resp := post(); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rresp.Body) //lint:errcheck-ok — drain for keep-alive
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", rresp.StatusCode)
	}
}

func TestStudyRegistryCoversCLIStudies(t *testing.T) {
	for _, name := range []string{"table1", "fig8", "errors", "edf", "reliability", "fleet", "state", "verify"} {
		if _, ok := studies[name]; !ok {
			t.Errorf("study registry missing %q", name)
		}
		if StudyHelp(name) == "" && name != "block" {
			t.Errorf("study %q has no help text", name)
		}
	}
	names := StudyNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("StudyNames not sorted: %v", names)
		}
	}
}
