package service

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"clumsy/internal/atomicio"
)

// On-disk layout. Everything under DataDir/campaigns/<id>/:
//
//	spec.json     the submitted Spec, written atomically before the
//	              submission is acknowledged — a campaign either exists
//	              with its full spec or not at all
//	journal.jsonl the campaign journal (internal/experiment), atomically
//	              rewritten per completed grid cell
//	result.txt    the rendered study output, written atomically only on
//	              completion
//	state.json    the terminal record (completed/failed/cancelled),
//	              written atomically after result.txt
//
// Recovery rule: a directory with a valid spec.json and no state.json is
// an incomplete campaign — whatever the daemon was doing when it died —
// and is re-adopted with -resume semantics at startup. Every write is an
// atomicio rename, so no kill point can produce a directory that parses
// as anything other than "not yet submitted", "incomplete", or
// "terminal".

const (
	specFile    = "spec.json"
	journalFile = "journal.jsonl"
	resultFile  = "result.txt"
	stateFile   = "state.json"
)

// stateRecord is the persisted terminal state.
type stateRecord struct {
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Restarts int    `json:"restarts,omitempty"`
	Adopted  bool   `json:"adopted,omitempty"`
}

// campaignsDir returns the campaign root under the data directory.
func campaignsDir(dataDir string) string { return filepath.Join(dataDir, "campaigns") }

// journalPath returns a campaign's journal location.
func (c *Campaign) journalPath() string { return filepath.Join(c.dir, journalFile) }

// resultPath returns a campaign's published result location.
func (c *Campaign) resultPath() string { return filepath.Join(c.dir, resultFile) }

// writeJSON persists v atomically as pretty-printed JSON.
func writeJSON(path string, v any) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(v)
	})
}

// persistSpec writes the campaign's spec.json, creating its directory.
func (c *Campaign) persistSpec() error {
	if err := os.MkdirAll(c.dir, 0o755); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	return writeJSON(filepath.Join(c.dir, specFile), c.Spec)
}

// persistTerminal records the campaign's terminal state. It is the last
// write of a campaign's lifecycle; a crash before it simply leaves the
// campaign incomplete, and re-adoption recomputes the identical outcome
// from the journal.
func (c *Campaign) persistTerminal() error {
	c.mu.Lock()
	rec := stateRecord{State: c.state.String(), Error: c.errMsg, Restarts: c.restarts, Adopted: c.adopted}
	c.mu.Unlock()
	return writeJSON(filepath.Join(c.dir, stateFile), rec)
}

// Result returns the published result bytes of a completed campaign.
func (c *Campaign) Result() ([]byte, error) { return os.ReadFile(c.resultPath()) }

// loadCampaigns scans the data directory and rebuilds the campaign set:
// terminal campaigns for listing, incomplete ones flagged for adoption.
// Directories without a spec.json (a submission killed before its first
// atomic write landed) are skipped. The returned slices are ordered by
// campaign ID; maxID is the highest numeric ID seen.
func loadCampaigns(dataDir string) (terminal, incomplete []*Campaign, maxID int, err error) {
	root := campaignsDir(dataDir)
	entries, err := os.ReadDir(root)
	if os.IsNotExist(err) {
		return nil, nil, 0, nil
	}
	if err != nil {
		return nil, nil, 0, fmt.Errorf("service: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		dir := filepath.Join(root, name)
		if n, ok := parseID(name); ok && n > maxID {
			maxID = n
		}
		raw, rerr := os.ReadFile(filepath.Join(dir, specFile))
		if os.IsNotExist(rerr) {
			continue // submission never acknowledged; not a campaign
		}
		if rerr != nil {
			return nil, nil, 0, fmt.Errorf("service: %w", rerr)
		}
		var sp Spec
		if jerr := json.Unmarshal(raw, &sp); jerr != nil {
			return nil, nil, 0, fmt.Errorf("service: %s: %w", filepath.Join(dir, specFile), jerr)
		}
		c := &Campaign{ID: name, Spec: sp, dir: dir, done: make(chan struct{})}
		sraw, serr := os.ReadFile(filepath.Join(dir, stateFile))
		if os.IsNotExist(serr) {
			// Incomplete: queued, running, or mid-publication when the
			// process died. Adopt and resume from the journal.
			c.state = StateQueued
			c.adopted = true
			incomplete = append(incomplete, c)
			continue
		}
		if serr != nil {
			return nil, nil, 0, fmt.Errorf("service: %w", serr)
		}
		var rec stateRecord
		if jerr := json.Unmarshal(sraw, &rec); jerr != nil {
			return nil, nil, 0, fmt.Errorf("service: %s: %w", filepath.Join(dir, stateFile), jerr)
		}
		st, perr := parseState(rec.State)
		if perr != nil {
			return nil, nil, 0, perr
		}
		c.state = st
		c.errMsg = rec.Error
		c.restarts = rec.Restarts
		c.adopted = rec.Adopted
		close(c.done)
		terminal = append(terminal, c)
	}
	return terminal, incomplete, maxID, nil
}

// parseID extracts the numeric part of a "c000042"-style campaign ID.
func parseID(name string) (int, bool) {
	if !strings.HasPrefix(name, "c") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(name, "c"))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// formatID renders a campaign ID.
func formatID(n int) string { return fmt.Sprintf("c%06d", n) }
