package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// API:
//
//	GET  /healthz            liveness — 200 while the process serves
//	GET  /readyz             readiness — 503 once draining
//	GET  /metrics            Prometheus text format, service.* included
//	POST /campaigns          submit a Spec; 202 + Status, 400 on a bad
//	                         spec, 429 + Retry-After under backpressure,
//	                         503 while draining
//	GET  /campaigns          list all campaigns in submission order
//	GET  /campaigns/{id}     one campaign's status
//	GET  /campaigns/{id}/result  the published result of a completed run
//	POST /campaigns/{id}/cancel  cancel a queued or running campaign

// retryAfterSeconds is the hint sent with 429 responses.
const retryAfterSeconds = 5

// Handler serves the control-plane API for the service.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.tel.Registry.WritePrometheus(w) //lint:errcheck-ok — ResponseWriter errors are the client's problem
	})
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeJSONResponse(w, http.StatusOK, s.List())
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, ErrNotFound.Error(), http.StatusNotFound)
			return
		}
		writeJSONResponse(w, http.StatusOK, c.status())
	})
	mux.HandleFunc("GET /campaigns/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, ErrNotFound.Error(), http.StatusNotFound)
			return
		}
		if c.currentState() != StateCompleted {
			http.Error(w, "service: campaign has no published result", http.StatusConflict)
			return
		}
		b, err := c.Result()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write(b) //lint:errcheck-ok — ResponseWriter errors are the client's problem
	})
	mux.HandleFunc("POST /campaigns/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		err := s.Cancel(r.PathValue("id"))
		if errors.Is(err, ErrNotFound) {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		c, _ := s.Get(r.PathValue("id"))
		writeJSONResponse(w, http.StatusOK, c.status())
	})
	return mux
}

// handleSubmit admits one campaign, mapping the scheduler's sentinel
// errors onto backpressure status codes.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var sp Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		http.Error(w, fmt.Sprintf("service: bad spec: %v", err), http.StatusBadRequest)
		return
	}
	st, err := s.Submit(sp)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, ErrDraining):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSONResponse(w, http.StatusAccepted, st)
}

// writeJSONResponse renders v as the response body.
func writeJSONResponse(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //lint:errcheck-ok — ResponseWriter errors are the client's problem
}
