package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"clumsy/internal/atomicio"
	"clumsy/internal/experiment"
	"clumsy/internal/telemetry"
)

// Config sizes the service. Zero values take the documented defaults.
type Config struct {
	// DataDir is the durable home of every campaign (specs, journals,
	// results, terminal records).
	DataDir string
	// MaxConcurrent is the number of supervisor slots: campaigns running
	// at once (default 2).
	MaxConcurrent int
	// QueueDepth bounds the submissions waiting for a slot; a full queue
	// rejects with ErrQueueFull — HTTP 429 + Retry-After (default 8).
	QueueDepth int
	// AttemptTimeout is the per-attempt watchdog deadline: one supervised
	// execution of the whole campaign. An expired attempt is treated as a
	// failure and consumes a restart (0 = none).
	AttemptTimeout time.Duration
	// CellTimeout is forwarded to the campaign layer's per-grid-cell
	// wall-clock watchdog (experiment.Options.RunTimeout; 0 = none).
	CellTimeout time.Duration
	// MaxRestarts bounds supervised restart-with-resume after a campaign
	// failure; the journal carries completed cells across restarts, so
	// every restart makes forward progress (default 2).
	MaxRestarts int
	// RestartBackoff is the delay before a supervised restart, doubled
	// per consecutive restart (default 100ms).
	RestartBackoff time.Duration
	// Telemetry receives the service.* counters and hosts the registry
	// the /metrics endpoint serves (nil = a private hub).
	Telemetry *telemetry.Telemetry
	// Log receives one-line operational messages (nil = discard).
	Log io.Writer
}

func (cfg Config) withDefaults() Config {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.MaxRestarts < 0 {
		cfg.MaxRestarts = 0
	}
	if cfg.MaxRestarts == 0 {
		cfg.MaxRestarts = 2
	}
	if cfg.RestartBackoff <= 0 {
		cfg.RestartBackoff = 100 * time.Millisecond
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.New()
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	return cfg
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrQueueFull rejects a submission because the bounded queue is at
	// capacity (HTTP 429).
	ErrQueueFull = errors.New("service: submission queue full")
	// ErrDraining rejects a submission because the service is shutting
	// down (HTTP 503).
	ErrDraining = errors.New("service: draining, not admitting campaigns")
	// ErrNotFound reports an unknown campaign ID (HTTP 404).
	ErrNotFound = errors.New("service: no such campaign")
)

// Service schedules journaled campaigns: a bounded submission queue
// feeding MaxConcurrent supervisor goroutines, with crash recovery at
// construction and graceful drain at shutdown.
type Service struct {
	cfg Config
	tel *telemetry.Telemetry

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string
	queue     []*Campaign
	draining  bool
	nextID    int

	notify    chan struct{}
	drainCh   chan struct{} // closed when the drain begins: wakes every idle worker
	drainOnce sync.Once
	wg        sync.WaitGroup

	// Recovered is the number of incomplete campaigns re-adopted from
	// their journals at startup.
	Recovered int
}

// New builds the service: it scans DataDir, re-adopts every incomplete
// campaign (anything with a spec but no terminal record — the crash
// recovery path), and starts the supervisor slots.
func New(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	if err := os.MkdirAll(campaignsDir(cfg.DataDir), 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	terminal, incomplete, maxID, err := loadCampaigns(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:        cfg,
		tel:        cfg.Telemetry,
		baseCtx:    ctx,
		baseCancel: cancel,
		campaigns:  make(map[string]*Campaign),
		notify:     make(chan struct{}, 1),
		drainCh:    make(chan struct{}),
		nextID:     maxID,
		Recovered:  len(incomplete),
	}
	for _, c := range terminal {
		s.campaigns[c.ID] = c
		s.order = append(s.order, c.ID)
	}
	for _, c := range incomplete {
		s.campaigns[c.ID] = c
		s.order = append(s.order, c.ID)
		// Adoption bypasses the queue bound: recovered work is never
		// rejected, whatever QueueDepth says.
		s.queue = append(s.queue, c)
		s.tel.Registry.Counter(telemetry.CtrServiceRecoveriesOnStart).Inc()
		s.logf("adopting incomplete campaign %s (study %s)", c.ID, c.Spec.Study)
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.wake()
	return s, nil
}

func (s *Service) logf(format string, args ...any) {
	fmt.Fprintf(s.cfg.Log, "clumsyd: "+format+"\n", args...)
}

// wake nudges one idle worker.
func (s *Service) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Submit validates, persists, and enqueues one campaign. The spec is on
// disk before Submit returns, so an acknowledged submission survives any
// later crash.
func (s *Service) Submit(sp Spec) (Status, error) {
	if err := sp.Validate(); err != nil {
		return Status{}, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Status{}, ErrDraining
	}
	if len(s.queue) >= s.cfg.QueueDepth {
		s.tel.Registry.Counter(telemetry.CtrServiceQueueRejections).Inc()
		s.mu.Unlock()
		return Status{}, ErrQueueFull
	}
	s.nextID++
	id := formatID(s.nextID)
	c := &Campaign{
		ID:    id,
		Spec:  sp,
		dir:   filepath.Join(campaignsDir(s.cfg.DataDir), id),
		state: StateQueued,
		done:  make(chan struct{}),
	}
	if err := c.persistSpec(); err != nil {
		s.nextID--
		s.mu.Unlock()
		return Status{}, err
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.queue = append(s.queue, c)
	s.tel.Registry.Counter(telemetry.CtrServiceCampaignsQueued).Inc()
	s.mu.Unlock()
	s.wake()
	return c.status(), nil
}

// Get returns a campaign by ID.
func (s *Service) Get(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// List snapshots every campaign in submission order.
func (s *Service) List() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]Status, 0, len(ids))
	for _, id := range ids {
		if c, ok := s.Get(id); ok {
			out = append(out, c.status())
		}
	}
	return out
}

// Cancel stops a campaign: a queued one is removed from the queue and
// terminally cancelled; a running one has its attempt context cancelled
// and its supervisor records the terminal state. Cancelling a terminal
// campaign is a no-op.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	c.mu.Lock()
	switch c.state {
	case StateQueued:
		for i, q := range s.queue {
			if q == c {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		c.state = StateCancelled
		c.cancelled = true
		close(c.done)
		c.mu.Unlock()
		s.mu.Unlock()
		return c.persistTerminal()
	case StateRunning:
		c.cancelled = true
		stop := c.stop
		c.mu.Unlock()
		s.mu.Unlock()
		if stop != nil {
			stop()
		}
		return nil
	case StateCompleted, StateFailed, StateCancelled:
		c.mu.Unlock()
		s.mu.Unlock()
		return nil
	}
	c.mu.Unlock()
	s.mu.Unlock()
	return nil
}

// Draining reports whether the service has stopped admitting campaigns.
func (s *Service) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the scheduler down: admission stops
// immediately (submissions and queue pops), in-flight campaigns get
// until ctx expires to finish, and whatever is still running at the
// deadline is checkpoint-cancelled — its journal already holds every
// completed cell, so the next daemon start re-adopts and finishes it
// byte-identically. Campaigns still queued stay queued on disk and are
// likewise adopted on the next start. Drain returns once every
// supervisor has stopped.
func (s *Service) Drain(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	queued := len(s.queue)
	s.mu.Unlock()
	if queued > 0 {
		s.logf("drain: leaving %d queued campaign(s) for the next start", queued)
	}
	s.drainOnce.Do(func() { close(s.drainCh) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.logf("drain: grace expired, checkpointing in-flight campaigns")
		s.baseCancel()
		<-done
	}
	s.baseCancel()
}

// Close shuts the service down immediately (checkpoint-cancel without a
// grace period). Safe after Drain.
func (s *Service) Close() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.drainOnce.Do(func() { close(s.drainCh) })
	s.baseCancel()
	s.wg.Wait()
}

// worker is one supervisor slot: it pops queued campaigns and supervises
// them until shutdown or drain.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		c := s.pop()
		if c == nil {
			return
		}
		s.supervise(c)
	}
}

// pop blocks until a campaign is available, returning nil at shutdown or
// drain.
func (s *Service) pop() *Campaign {
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil
		}
		if len(s.queue) > 0 {
			c := s.queue[0]
			s.queue = s.queue[1:]
			more := len(s.queue) > 0
			s.mu.Unlock()
			if more {
				s.wake()
			}
			return c
		}
		s.mu.Unlock()
		select {
		case <-s.notify:
		case <-s.drainCh:
			// Loop: the draining check above returns nil for everyone.
		case <-s.baseCtx.Done():
			return nil
		}
	}
}

// supervise runs one campaign under the restart discipline: execute,
// and on failure restart with resume (the journal carries completed
// cells) up to MaxRestarts times. Cancellation is terminal; a drain
// checkpoint leaves the campaign incomplete for the next start.
func (s *Service) supervise(c *Campaign) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	c.mu.Lock()
	c.state = StateRunning
	c.stop = cancel
	resume := c.adopted
	c.mu.Unlock()
	s.tel.Registry.Counter(telemetry.CtrServiceCampaignsActive).Inc()
	s.logf("campaign %s: running study %s (resume=%v)", c.ID, c.Spec.Study, resume)

	defer close(c.done)
	for attempt := 0; ; attempt++ {
		err := s.runAttempt(ctx, c, resume)
		resume = true // every later attempt resumes from the journal
		if err == nil {
			s.finish(c, StateCompleted, nil)
			return
		}
		if ctx.Err() != nil {
			if c.cancelRequested() {
				s.finish(c, StateCancelled, err)
			} else {
				// Drain checkpoint: no terminal record, so the next start
				// adopts the campaign and resumes it.
				c.mu.Lock()
				c.state = StateQueued
				c.stop = nil
				c.mu.Unlock()
				s.logf("campaign %s: checkpointed by drain (journal flushed, resumable)", c.ID)
			}
			return
		}
		if attempt >= s.cfg.MaxRestarts {
			s.finish(c, StateFailed, err)
			return
		}
		c.mu.Lock()
		c.restarts++
		c.mu.Unlock()
		s.tel.Registry.Counter(telemetry.CtrServiceCampaignsRestarted).Inc()
		s.logf("campaign %s: attempt %d failed (%v), restarting with resume", c.ID, attempt, err)
		backoff := s.cfg.RestartBackoff << attempt
		timer := time.NewTimer(backoff)
		select {
		case <-ctx.Done():
			timer.Stop()
		case <-timer.C:
		}
	}
}

// runAttempt executes the campaign's study once: open the journal (with
// resume semantics on restarts and adoption), run the study into a
// buffer under the attempt watchdog, and publish the result atomically.
// A panic in the study is contained and reported as the attempt's error.
func (s *Service) runAttempt(ctx context.Context, c *Campaign, resume bool) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("service: panic in study %s: %v", c.Spec.Study, r)
		}
	}()
	actx := ctx
	if s.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, s.cfg.AttemptTimeout)
		defer cancel()
	}
	j, loaded, err := experiment.OpenJournal(c.journalPath(), resume)
	if err != nil {
		return err
	}
	if resume && loaded > 0 {
		s.logf("campaign %s: resuming with %d recorded cell(s)", c.ID, loaded)
	}
	c.mu.Lock()
	c.journal = j
	c.cellsDone = loaded
	c.mu.Unlock()
	opt, err := c.Spec.options()
	if err != nil {
		return err
	}
	opt.Ctx = actx
	opt.Journal = j
	opt.RunTimeout = s.cfg.CellTimeout
	st := studies[c.Spec.Study]
	var buf bytes.Buffer
	if err := st.run(opt, c.Spec, &buf); err != nil {
		return err
	}
	return atomicio.WriteFile(c.resultPath(), func(w io.Writer) error {
		_, werr := w.Write(buf.Bytes())
		return werr
	})
}

// finish records a terminal state, bumps the outcome counter, and
// persists the terminal record (after the result, so a crash between
// the two re-adopts and re-publishes identically).
func (s *Service) finish(c *Campaign, st State, cause error) {
	c.mu.Lock()
	c.state = st
	c.stop = nil
	if cause != nil {
		c.errMsg = cause.Error()
	}
	if j := c.journal; j != nil {
		c.cellsDone = j.Len()
	}
	c.mu.Unlock()
	switch st {
	case StateCompleted:
		s.tel.Registry.Counter(telemetry.CtrServiceCampaignsCompleted).Inc()
	case StateFailed:
		s.tel.Registry.Counter(telemetry.CtrServiceCampaignsFailed).Inc()
	case StateCancelled, StateQueued, StateRunning:
		// Cancelled bumps no outcome counter; queued/running are never
		// passed here.
	}
	if err := c.persistTerminal(); err != nil {
		s.logf("campaign %s: recording terminal state: %v", c.ID, err)
	}
	s.logf("campaign %s: %s", c.ID, st)
}
