// Package service is the clumsyd control plane: a long-lived scheduler
// that runs journaled experiment campaigns on top of the campaign layer
// in internal/experiment. Campaigns are submitted over HTTP (see
// http.go), wait in a bounded queue, and execute under per-campaign
// supervisors with watchdog deadlines and bounded restart-with-resume.
// Every campaign's progress lives in an on-disk journal written through
// internal/atomicio, so a killed daemon re-adopts incomplete campaigns
// on startup and finishes them byte-identically to an uninterrupted run.
package service

import (
	"fmt"
	"io"
	"sort"

	"clumsy/internal/apps"
	"clumsy/internal/clumsy"
	"clumsy/internal/experiment"
)

// Spec describes one campaign submission: which study to run and the
// experiment scale. The zero values of the scale fields mean the
// experiment package defaults. The spec is persisted verbatim (spec.json)
// before the campaign is admitted, so an adopted campaign re-runs under
// exactly the submitted configuration.
type Spec struct {
	// Study names the campaign in the study registry below.
	Study string `json:"study"`
	// App selects the workload for per-app studies (edf, fig6/fig7-style
	// error behaviour, fleet, reliability curve). Empty means the study's
	// default.
	App string `json:"app,omitempty"`

	Packets     int     `json:"packets,omitempty"`
	Trials      int     `json:"trials,omitempty"`
	Seed        uint64  `json:"seed,omitempty"`
	FaultScale  float64 `json:"scale,omitempty"`
	Recovery    string  `json:"recovery,omitempty"` // abort (default), drop, degrade
	MaxDropRate float64 `json:"max_drop_rate,omitempty"`

	// Format selects the rendering: "text" (default) or "csv" for the
	// table studies.
	Format string `json:"format,omitempty"`
}

// Validate checks the spec against the study registry and the recovery
// policy and app names, so a bad submission is rejected at the API
// instead of failing its supervisor later.
func (sp Spec) Validate() error {
	st, ok := studies[sp.Study]
	if !ok {
		return fmt.Errorf("service: unknown study %q (have %v)", sp.Study, StudyNames())
	}
	if sp.Recovery != "" {
		if _, err := clumsy.ParseRecoveryPolicy(sp.Recovery); err != nil {
			return err
		}
	}
	if sp.App != "" {
		if _, err := apps.New(sp.App); err != nil {
			return err
		}
	}
	if st.needsApp && sp.App == "" {
		return fmt.Errorf("service: study %q needs an app", sp.Study)
	}
	if sp.Format != "" && sp.Format != "text" && sp.Format != "csv" {
		return fmt.Errorf("service: unknown format %q (want text or csv)", sp.Format)
	}
	if sp.Packets < 0 || sp.Trials < 0 || sp.FaultScale < 0 || sp.MaxDropRate < 0 {
		return fmt.Errorf("service: negative scale parameter in spec")
	}
	return nil
}

// options maps the spec onto experiment.Options. Context, journal, and
// supervision knobs are filled in by the supervisor per attempt.
func (sp Spec) options() (experiment.Options, error) {
	o := experiment.Options{
		Packets:     sp.Packets,
		Trials:      sp.Trials,
		FaultScale:  sp.FaultScale,
		Seed:        sp.Seed,
		MaxDropRate: sp.MaxDropRate,
	}
	if sp.Recovery != "" {
		pol, err := clumsy.ParseRecoveryPolicy(sp.Recovery)
		if err != nil {
			return o, err
		}
		o.Recovery = pol
	}
	return o, nil
}

// studyFn renders one complete study for the spec into w. The rendering
// must match the clumsy CLI's for the same flags, so a service-run
// campaign's result file is byte-comparable to a batch run.
type studyFn func(o experiment.Options, sp Spec, w io.Writer) error

// study couples the runner with its registry metadata.
type study struct {
	run      studyFn
	needsApp bool
	help     string
}

// emitTable renders one table in the spec's format.
func emitTable(sp Spec, w io.Writer, t *experiment.Table) error {
	if sp.Format == "csv" {
		return t.RenderCSV(w)
	}
	t.Render(w)
	return nil
}

// emitTables renders a table sequence separated by blank lines, the way
// the CLI prints multi-table studies.
func emitTables(sp Spec, w io.Writer, tables ...*experiment.Table) error {
	for _, t := range tables {
		if err := emitTable(sp, w, t); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// studies is the campaign registry: every study a campaign may name. All
// of them route their grid cells through the journaled campaign layer,
// which is what makes supervised restart and crash adoption safe.
var studies = map[string]study{
	"table1": {help: "application properties and fallibility factors", run: func(o experiment.Options, sp Spec, w io.Writer) error {
		rows, err := experiment.Table1(o)
		if err != nil {
			return err
		}
		return emitTable(sp, w, experiment.Table1Render(rows, o))
	}},
	"fig8": {help: "fatal error probabilities per application", run: func(o experiment.Options, sp Spec, w io.Writer) error {
		rows, err := experiment.Fig8(o)
		if err != nil {
			return err
		}
		return emitTable(sp, w, experiment.Fig8Render(rows, o))
	}},
	"errors": {needsApp: true, help: "per-plane error behaviour sweep for one app (fig6/fig7)", run: func(o experiment.Options, sp Spec, w io.Writer) error {
		sweeps, err := experiment.ErrorBehaviour(sp.App, o)
		if err != nil {
			return err
		}
		return emitTables(sp, w, experiment.ErrorBehaviourRender(sweeps, "Service error sweep", o)...)
	}},
	"edf": {needsApp: true, help: "EDF^2 recovery x operating-point grid for one app", run: func(o experiment.Options, sp Spec, w io.Writer) error {
		r, err := experiment.EDFGrid(sp.App, o)
		if err != nil {
			return err
		}
		return emitTable(sp, w, experiment.EDFRender(r, "Service EDF grid", o))
	}},
	"reliability": {help: "fault regime x recovery policy sweep plus the degradation curve", run: func(o experiment.Options, sp Spec, w io.Writer) error {
		cells, err := experiment.Reliability(o)
		if err != nil {
			return err
		}
		if err := emitTables(sp, w, experiment.ReliabilityRender(cells, o)...); err != nil {
			return err
		}
		app := sp.App
		if app == "" {
			app = "route"
		}
		points, err := experiment.ReliabilityCurve(app, o)
		if err != nil {
			return err
		}
		return emitTable(sp, w, experiment.ReliabilityCurveRender(app, points, o))
	}},
	"fleet": {needsApp: true, help: "fleet degradation study (faulty-node fraction sweep)", run: func(o experiment.Options, sp Spec, w io.Writer) error {
		cells, err := experiment.Fleet(sp.App, o)
		if err != nil {
			return err
		}
		return emitTable(sp, w, experiment.FleetRender(sp.App, cells, o))
	}},
	"state": {help: "state-integrity study for the stateful apps", run: func(o experiment.Options, sp Spec, w io.Writer) error {
		names := experiment.StateApps()
		for i, app := range names {
			cells, err := experiment.StateIntegrity(app, o)
			if err != nil {
				return err
			}
			if err := emitTable(sp, w, experiment.StateIntegrityRender(app, cells, o)); err != nil {
				return err
			}
			if i < len(names)-1 {
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
		}
		return nil
	}},
	"verify": {help: "programmatic check of the paper's headline claims", run: func(o experiment.Options, sp Spec, w io.Writer) error {
		claims, err := experiment.VerifyClaims(o)
		if err != nil {
			return err
		}
		if err := emitTable(sp, w, experiment.VerifyRender(claims, o)); err != nil {
			return err
		}
		for _, c := range claims {
			if !c.Pass {
				return fmt.Errorf("claim %q failed", c.Name)
			}
		}
		return nil
	}},
}

// StudyNames lists the registered studies, sorted.
func StudyNames() []string {
	out := make([]string, 0, len(studies))
	for name := range studies {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StudyHelp returns the one-line description of a registered study.
func StudyHelp(name string) string { return studies[name].help }
