package radix

import (
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

func newTable(t *testing.T) (*Table, *simmem.Space) {
	t.Helper()
	space := simmem.NewSpace(1 << 22)
	tab, err := New(space, space)
	if err != nil {
		t.Fatal(err)
	}
	return tab, space
}

func TestEmptyTableLookup(t *testing.T) {
	tab, space := newTable(t)
	res, err := tab.Lookup(space, 0x0a000001, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("lookup in empty table found a route")
	}
	if res.Steps != 1 {
		t.Fatalf("steps = %d, want 1 (root only)", res.Steps)
	}
}

func TestInsertAndExactLookup(t *testing.T) {
	tab, space := newTable(t)
	p := packet.Prefix{Addr: 0xc0a80000, Len: 16}
	if err := tab.Insert(space, p, 42, 3); err != nil {
		t.Fatal(err)
	}
	res, err := tab.Lookup(space, 0xc0a81234, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.NextHop != 42 || res.Iface != 3 || res.PrefixLen != 16 {
		t.Fatalf("result %+v", res)
	}
	// An address outside the prefix misses.
	res, err = tab.Lookup(space, 0xc0a90000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("lookup outside prefix found a route")
	}
}

func TestLongestPrefixMatch(t *testing.T) {
	tab, space := newTable(t)
	if err := tab.Insert(space, packet.Prefix{Addr: 0x0a000000, Len: 8}, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(space, packet.Prefix{Addr: 0x0a010000, Len: 16}, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(space, packet.Prefix{Addr: 0x0a010100, Len: 24}, 3, 3); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr uint32
		want uint32
	}{
		{0x0a020202, 1}, // only /8 matches
		{0x0a01ff00, 2}, // /16
		{0x0a010164, 3}, // /24 wins
	}
	for _, c := range cases {
		res, err := tab.Lookup(space, c.addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.NextHop != c.want {
			t.Errorf("lookup %#x: %+v, want hop %d", c.addr, res, c.want)
		}
	}
}

func TestDefaultRoute(t *testing.T) {
	tab, space := newTable(t)
	if err := tab.Insert(space, packet.Prefix{Addr: 0, Len: 0}, 99, 9); err != nil {
		t.Fatal(err)
	}
	res, err := tab.Lookup(space, 0xdeadbeef, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.NextHop != 99 || res.PrefixLen != 0 {
		t.Fatalf("default route not matched: %+v", res)
	}
}

func TestHostRoute(t *testing.T) {
	tab, space := newTable(t)
	if err := tab.Insert(space, packet.Prefix{Addr: 0x01020304, Len: 32}, 7, 1); err != nil {
		t.Fatal(err)
	}
	res, err := tab.Lookup(space, 0x01020304, nil)
	if err != nil || !res.Found || res.NextHop != 7 {
		t.Fatalf("host route: %+v, %v", res, err)
	}
	res, _ = tab.Lookup(space, 0x01020305, nil)
	if res.Found {
		t.Fatal("host route matched wrong address")
	}
}

func TestOnNodeVisitsEveryStep(t *testing.T) {
	tab, space := newTable(t)
	if err := tab.Insert(space, packet.Prefix{Addr: 0x80000000, Len: 4}, 1, 1); err != nil {
		t.Fatal(err)
	}
	visited := 0
	res, err := tab.Lookup(space, 0x80000001, func(a simmem.Addr) error {
		visited++
		if a == 0 {
			t.Fatal("visited null node")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if visited != res.Steps {
		t.Fatalf("visited %d, steps %d", visited, res.Steps)
	}
	if res.Steps != 5 { // root + 4 levels
		t.Fatalf("steps = %d, want 5", res.Steps)
	}
}

func TestBulkInsertLookupAgainstReference(t *testing.T) {
	tab, space := newTable(t)
	rng := fault.NewRNG(17)
	prefixes := packet.GeneratePrefixes(300, rng)
	for i, p := range prefixes {
		if err := tab.Insert(space, p, uint32(i+1), uint32(i%8)); err != nil {
			t.Fatal(err)
		}
	}
	// Reference longest-prefix match in host memory.
	ref := func(addr uint32) (uint32, bool) {
		best, bestLen, found := uint32(0), -1, false
		for i, p := range prefixes {
			if p.Contains(addr) && p.Len > bestLen {
				best, bestLen, found = uint32(i+1), p.Len, true
			}
		}
		return best, found
	}
	for i := 0; i < 2000; i++ {
		addr := rng.Uint32()
		want, wantFound := ref(addr)
		res, err := tab.Lookup(space, addr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != wantFound || (wantFound && res.NextHop != want) {
			t.Fatalf("addr %#x: got (%v, %d), want (%v, %d)", addr, res.Found, res.NextHop, wantFound, want)
		}
	}
}

func TestCorruptPointerIsSilentDeadEnd(t *testing.T) {
	tab, space := newTable(t)
	if err := tab.Insert(space, packet.Prefix{Addr: 0xff000000, Len: 8}, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Corrupt the root's right-child pointer to an address outside the
	// arena: the checked walk treats it as a dead end (a wrong result, not
	// a crash), as the pointer-validating FreeBSD code would.
	if err := space.Store32(tab.Root()+offRight, 0xf0000000); err != nil {
		t.Fatal(err)
	}
	res, err := tab.Lookup(space, 0xff000001, nil)
	if err != nil {
		t.Fatalf("checked walk must not trap: %v", err)
	}
	if res.Found {
		t.Fatal("lookup through severed subtree should miss")
	}
}

func TestCorruptPointerInsideArenaReadsGarbage(t *testing.T) {
	tab, space := newTable(t)
	if err := tab.Insert(space, packet.Prefix{Addr: 0xff000000, Len: 8}, 7, 1); err != nil {
		t.Fatal(err)
	}
	// Point the root's right child at a plausible-but-wrong place inside
	// the arena (the root's own flags words): the walk continues over
	// garbage and terminates via the stored bit index or the watchdog.
	if err := space.Store32(tab.Root()+offRight, tab.Root()+8); err != nil {
		t.Fatal(err)
	}
	_, err := tab.Lookup(space, 0xff000001, nil)
	if err != nil && err != ErrLoop {
		t.Fatalf("in-arena garbage walk should end silently or via watchdog, got %v", err)
	}
}

func TestPointerCycleHitsWatchdog(t *testing.T) {
	tab, space := newTable(t)
	if err := tab.Insert(space, packet.Prefix{Addr: 0xff000000, Len: 8}, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Point the root's right child back at the root: a cycle.
	if err := space.Store32(tab.Root()+offRight, tab.Root()); err != nil {
		t.Fatal(err)
	}
	_, err := tab.Lookup(space, 0xff000001, nil)
	if err != ErrLoop {
		t.Fatalf("err = %v, want ErrLoop", err)
	}
}

func TestInsertRejectsBadLength(t *testing.T) {
	tab, space := newTable(t)
	if err := tab.Insert(space, packet.Prefix{Addr: 0, Len: 33}, 1, 1); err == nil {
		t.Fatal("prefix length 33 should be rejected")
	}
}

func TestNodeCountGrowth(t *testing.T) {
	tab, space := newTable(t)
	if tab.Nodes() != 1 {
		t.Fatalf("fresh table has %d nodes", tab.Nodes())
	}
	if err := tab.Insert(space, packet.Prefix{Addr: 0x80000000, Len: 8}, 1, 1); err != nil {
		t.Fatal(err)
	}
	if tab.Nodes() != 9 { // root + 8 levels
		t.Fatalf("nodes = %d, want 9", tab.Nodes())
	}
	// Inserting a sibling that shares 7 bits adds just one node.
	if err := tab.Insert(space, packet.Prefix{Addr: 0x81000000, Len: 8}, 2, 1); err != nil {
		t.Fatal(err)
	}
	if tab.Nodes() != 10 {
		t.Fatalf("nodes = %d, want 10", tab.Nodes())
	}
}

// failingMem wraps a Space and fails the n-th access, to exercise Insert's
// error-propagation paths.
type failingMem struct {
	*simmem.Space
	countdown int
}

var errInjected = &simmem.AccessError{Op: "test", Reason: "injected"}

func (f *failingMem) tick() error {
	f.countdown--
	if f.countdown == 0 {
		return errInjected
	}
	return nil
}

func (f *failingMem) Load32(a simmem.Addr) (uint32, error) {
	if err := f.tick(); err != nil {
		return 0, err
	}
	return f.Space.Load32(a)
}

func (f *failingMem) Store32(a simmem.Addr, v uint32) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Space.Store32(a, v)
}

func TestInsertPropagatesMemoryErrors(t *testing.T) {
	// Fail each successive access position until the insert completes;
	// every failure must surface as an error, never a panic or silent
	// partial success masquerading as ok.
	for n := 1; n < 200; n++ {
		space := simmem.NewSpace(1 << 20)
		tab, err := New(space, space)
		if err != nil {
			t.Fatal(err)
		}
		fm := &failingMem{Space: space, countdown: n}
		err = tab.Insert(fm, packet.Prefix{Addr: 0xc0a80000, Len: 16}, 1, 2)
		if err == nil {
			// The insert finished before the failing access: done.
			return
		}
	}
	t.Fatal("insert never completed within 200 accesses")
}

func TestInsertRebuildsThroughCorruptLink(t *testing.T) {
	tab, space := newTable(t)
	if err := tab.Insert(space, packet.Prefix{Addr: 0x80000000, Len: 8}, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Corrupt the root's right child to an out-of-arena pointer, then
	// insert a prefix that must pass through it: Insert should rebuild the
	// subtree instead of chasing the bogus pointer.
	if err := space.Store32(tab.Root()+offRight, 0xf0000000); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(space, packet.Prefix{Addr: 0x81000000, Len: 8}, 2, 1); err != nil {
		t.Fatalf("insert through corrupt link failed: %v", err)
	}
	res, err := tab.Lookup(space, 0x81000001, nil)
	if err != nil || !res.Found || res.NextHop != 2 {
		t.Fatalf("rebuilt subtree lookup: %+v, %v", res, err)
	}
}
