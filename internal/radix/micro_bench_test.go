package radix

import (
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

func BenchmarkLookup(b *testing.B) {
	space := simmem.NewSpace(1 << 22)
	tab, err := New(space, space)
	if err != nil {
		b.Fatal(err)
	}
	prefixes := packet.GeneratePrefixes(1000, fault.NewRNG(1))
	for i, p := range prefixes {
		if err := tab.Insert(space, p, uint32(i+1), 1); err != nil {
			b.Fatal(err)
		}
	}
	addrs := make([]uint32, 1024)
	rng := fault.NewRNG(2)
	for i := range addrs {
		p := prefixes[rng.Intn(len(prefixes))]
		addrs[i] = p.Addr | rng.Uint32()&^p.Mask()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tab.Lookup(space, addrs[i%len(addrs)], nil); err != nil {
			b.Fatal(err)
		}
	}
}
