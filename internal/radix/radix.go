// Package radix implements the routing table shared by the tl, route, drr,
// nat and url applications: a binary (radix) trie in the style of the
// FreeBSD table-lookup code the NetBench tl benchmark is taken from.
//
// The distinguishing property of this implementation is that every node —
// including the child pointers — lives inside the simulated address space
// and is reached through the simmem.Memory interface. When the clumsy L1
// data cache flips a bit in a child pointer, the traversal really does walk
// into unrelated memory: it may read garbage route entries (a silent,
// application-level error), trap on an unmapped or misaligned address (a
// fatal error), or loop (caught by the traversal watchdog) — exactly the
// error classes the paper instruments.
package radix

import (
	"errors"

	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// Node layout, in 32-bit words:
//
//	w0: flags — bit 0: node carries a route; bits 8..15: prefix length
//	w1: left child address (0 = none)
//	w2: right child address (0 = none)
//	w3: next hop
//	w4: interface index
//	w5: bit index this node tests (as in the FreeBSD radix code, the bit
//	    index is part of the node, so a corrupted node can send the walk
//	    back up the trie and form a cycle)
const (
	nodeSize  = 24
	offFlags  = 0
	offLeft   = 4
	offRight  = 8
	offNhop   = 12
	offIface  = 16
	offBit    = 20
	flagRoute = 1
)

// TraversalLimit bounds a lookup walk. A healthy IPv4 trie never exceeds
// 33 nodes; a corrupted pointer that forms a cycle trips this limit.
const TraversalLimit = 64

// ErrLoop is returned when a lookup exceeds TraversalLimit — in a faulty
// execution this indicates a pointer cycle created by corruption, and the
// processor treats it as a fatal (stuck) error.
var ErrLoop = errors.New("radix: traversal limit exceeded")

// Table is a radix routing table rooted in simulated memory.
type Table struct {
	space *simmem.Space
	root  simmem.Addr
	nodes int
}

// validChild reports whether a child pointer loaded from memory looks like
// a plausible node address. The FreeBSD radix code this models checks its
// pointers before following them, so a corrupted pointer that escapes the
// heap reads as a dead end (a wrong lookup result — a silent error) rather
// than a protection fault. Pointers that stay inside the arena are
// followed and read garbage, and a pointer that loops the walk back on
// itself trips the traversal watchdog — the infinite-loop fatal errors the
// paper reports.
func (t *Table) validChild(a simmem.Addr) bool {
	return a >= simmem.PageBase && uint64(a)+nodeSize <= uint64(t.space.Brk())
}

// New allocates an empty table (just the root node) in space. The root is
// created through mem so that control-plane fault injection applies.
func New(space *simmem.Space, mem simmem.Memory) (*Table, error) {
	t := &Table{space: space}
	root, err := t.newNode(mem)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// Root returns the address of the root node.
func (t *Table) Root() simmem.Addr { return t.root }

// Nodes returns the number of allocated nodes.
func (t *Table) Nodes() int { return t.nodes }

func (t *Table) newNode(mem simmem.Memory) (simmem.Addr, error) {
	a, err := t.space.Alloc(nodeSize, 8)
	if err != nil {
		return 0, err
	}
	t.nodes++
	// The arena zeroes memory, but the writes must still go through the
	// cache so the golden and faulty executions issue identical accesses.
	for off := simmem.Addr(0); off < nodeSize; off += 4 {
		if err := mem.Store32(a+off, 0); err != nil {
			return 0, err
		}
	}
	return a, nil
}

// Insert adds a prefix with its next hop and interface. All reads and
// writes go through mem.
func (t *Table) Insert(mem simmem.Memory, p packet.Prefix, nextHop, iface uint32) error {
	if p.Len < 0 || p.Len > 32 {
		return errors.New("radix: prefix length out of range")
	}
	cur := t.root
	for depth := 0; depth < p.Len; depth++ {
		off := simmem.Addr(offLeft)
		if p.Addr&(1<<uint(31-depth)) != 0 {
			off = offRight
		}
		child, err := mem.Load32(cur + off)
		if err != nil {
			return err
		}
		if child != 0 && !t.validChild(child) {
			// A corrupted link: the insert rebuilds the subtree from a
			// fresh node, orphaning whatever the bogus pointer shadowed.
			child = 0
		}
		if child == 0 {
			child, err = t.newNode(mem)
			if err != nil {
				return err
			}
			if err := mem.Store32(cur+off, child); err != nil {
				return err
			}
			if err := mem.Store32(child+offBit, uint32(depth+1)); err != nil {
				return err
			}
		}
		cur = child
	}
	if err := mem.Store32(cur+offNhop, nextHop); err != nil {
		return err
	}
	if err := mem.Store32(cur+offIface, iface); err != nil {
		return err
	}
	return mem.Store32(cur+offFlags, flagRoute|uint32(p.Len)<<8)
}

// Result is the outcome of a lookup.
type Result struct {
	Found     bool
	NodeAddr  simmem.Addr // node carrying the matched route
	NextHop   uint32
	Iface     uint32
	PrefixLen int
	Steps     int // nodes visited
}

// Lookup performs a longest-prefix match for addr through mem. onNode, if
// non-nil, is invoked for every node visited (the applications use it to
// account instructions and observe the traversed entries).
func (t *Table) Lookup(mem simmem.Memory, addr uint32, onNode func(simmem.Addr) error) (Result, error) {
	var res Result
	cur := t.root
	for {
		if res.Steps >= TraversalLimit {
			return res, ErrLoop
		}
		res.Steps++
		if onNode != nil {
			if err := onNode(cur); err != nil {
				return res, err
			}
		}
		flags, err := mem.Load32(cur + offFlags)
		if err != nil {
			return res, err
		}
		if flags&flagRoute != 0 {
			nhop, err := mem.Load32(cur + offNhop)
			if err != nil {
				return res, err
			}
			ifc, err := mem.Load32(cur + offIface)
			if err != nil {
				return res, err
			}
			res.Found = true
			res.NodeAddr = cur
			res.NextHop = nhop
			res.Iface = ifc
			res.PrefixLen = int(flags >> 8 & 0xff)
		}
		// The bit index to test is stored in the node (FreeBSD-style); a
		// corrupted index can revisit earlier bits and cycle.
		bit, err := mem.Load32(cur + offBit)
		if err != nil {
			return res, err
		}
		if bit >= 32 {
			return res, nil
		}
		off := simmem.Addr(offLeft)
		if addr&(1<<(31-bit)) != 0 {
			off = offRight
		}
		child, err := mem.Load32(cur + off)
		if err != nil {
			return res, err
		}
		if child == 0 || !t.validChild(child) {
			return res, nil
		}
		cur = simmem.Align(child, 8)
	}
}
