package atomicio

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
)

// Fault injection turns the package's crash-safety claims from assertions
// into tested behaviour. An Injector intercepts the primitive operations
// every atomic write is built from — temp-file writes, the fsync, the
// rename — and makes exactly one of them misbehave in a deterministic,
// seeded way: a short write that stops partway through the buffer, a
// failing fsync, ENOSPC mid-write, or a rename torn between the temp file
// and the target. In crash mode the injected fault does not return an
// error at all: the process exits on the spot (CrashExitCode), leaving
// the filesystem exactly as a SIGKILL at that instant would. The
// crashtest rigs (internal/atomicio tests, cmd/clumsyd, CI) drive a
// matrix of injection points and verify the invariant the package
// promises: the target path always holds the old bytes or the new bytes
// in full — never a mix, never a truncation.
//
// The hook is process-global and nil by default; the disabled path is one
// atomic pointer load per primitive operation.

// FaultMode selects which primitive operation misbehaves.
//
//lint:exhaustive
type FaultMode int

const (
	// FaultShortWrite makes the Nth temp-file write stop short (a strict
	// prefix of the buffer reaches the file) and fail with EIO.
	FaultShortWrite FaultMode = iota
	// FaultSyncErr makes the Nth temp-file fsync fail with EIO; the data
	// may or may not be durable, which is exactly the ambiguity a real
	// fsync failure leaves.
	FaultSyncErr
	// FaultENOSPC makes the Nth temp-file write stop short and fail with
	// ENOSPC (disk full).
	FaultENOSPC
	// FaultTornRename tears the Nth rename: in error mode the rename
	// fails with EIO leaving the temp file unlinked into place; in crash
	// mode the process dies either immediately before or immediately
	// after the rename (seed-chosen), the two instants a real crash can
	// split.
	FaultTornRename
)

// String names the mode the way ParseFault spells it.
func (m FaultMode) String() string {
	switch m {
	case FaultShortWrite:
		return "shortwrite"
	case FaultSyncErr:
		return "syncerr"
	case FaultENOSPC:
		return "enospc"
	case FaultTornRename:
		return "tornrename"
	}
	return fmt.Sprintf("faultmode(%d)", int(m))
}

// ParseFaultMode maps a mode name back to its value.
func ParseFaultMode(s string) (FaultMode, error) {
	switch s {
	case "shortwrite":
		return FaultShortWrite, nil
	case "syncerr":
		return FaultSyncErr, nil
	case "enospc":
		return FaultENOSPC, nil
	case "tornrename":
		return FaultTornRename, nil
	}
	return 0, fmt.Errorf("atomicio: unknown fault mode %q (want shortwrite, syncerr, enospc, or tornrename)", s)
}

// CrashExitCode is the exit status of a crash-mode injection, chosen to
// be distinguishable from ordinary failures (1) and signal deaths.
const CrashExitCode = 86

// FaultEnv is the environment variable cmd/clumsyd (and any other
// process that opts in) reads at startup to arm the injector.
const FaultEnv = "CLUMSY_IO_FAULT"

// Injector describes one injected fault. The Op'th operation of the
// mode's kind (1-based, counted process-wide) misbehaves; every other
// operation runs normally, so a matrix over Op values sweeps the fault
// across every write, fsync, and rename the process performs.
type Injector struct {
	Mode FaultMode
	Op   int64  // 1-based index of the faulted operation among its kind
	Seed uint64 // drives the short-write length and the torn-rename side
	// Crash exits the process (CrashExitCode) at the injection point
	// instead of returning an error — a deterministic stand-in for
	// SIGKILL landing mid-operation.
	Crash bool

	count atomic.Int64
}

// ParseFault parses the "mode:op:seed[:crash]" spec used by FaultEnv,
// e.g. "tornrename:2:7:crash".
func ParseFault(spec string) (*Injector, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return nil, fmt.Errorf("atomicio: fault spec %q: want mode:op:seed[:crash]", spec)
	}
	mode, err := ParseFaultMode(parts[0])
	if err != nil {
		return nil, err
	}
	op, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || op < 1 {
		return nil, fmt.Errorf("atomicio: fault spec %q: op must be a positive integer", spec)
	}
	seed, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("atomicio: fault spec %q: bad seed", spec)
	}
	inj := &Injector{Mode: mode, Op: op, Seed: seed}
	if len(parts) == 4 {
		if parts[3] != "crash" {
			return nil, fmt.Errorf("atomicio: fault spec %q: trailing field must be \"crash\"", spec)
		}
		inj.Crash = true
	}
	return inj, nil
}

// active is the process-wide injector; nil (the default) disables
// injection entirely.
var active atomic.Pointer[Injector]

// SetInjector installs inj as the process-wide fault injector. Pass nil
// to disable. Intended for tests and for ArmFaultFromEnv.
func SetInjector(inj *Injector) { active.Store(inj) }

// ArmFaultFromEnv arms the injector from the FaultEnv environment
// variable if it is set, reporting whether injection is now active.
func ArmFaultFromEnv() (bool, error) {
	spec := os.Getenv(FaultEnv)
	if spec == "" {
		return false, nil
	}
	inj, err := ParseFault(spec)
	if err != nil {
		return false, err
	}
	SetInjector(inj)
	return true, nil
}

// opKind classifies the primitive operations the injector can intercept.
type opKind int

const (
	opWrite opKind = iota
	opSync
	opRename
)

// kind maps a fault mode onto the operation kind it counts.
func (m FaultMode) kind() opKind {
	switch m {
	case FaultShortWrite, FaultENOSPC:
		return opWrite
	case FaultSyncErr:
		return opSync
	case FaultTornRename:
		return opRename
	}
	return opWrite
}

// splitmix64 is the seed scrambler used for the injected choices; small
// enough to inline here rather than importing the simulator's RNG.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// trip reports whether the injector fires on this operation: the op
// kind matches the mode and the per-kind counter has reached Op.
func (inj *Injector) trip(k opKind) bool {
	if inj == nil || inj.Mode.kind() != k {
		return false
	}
	return inj.count.Add(1) == inj.Op
}

// crashNow simulates a kill at the injection point.
func (inj *Injector) crashNow(where string) {
	fmt.Fprintf(os.Stderr, "atomicio: injected crash (%s at %s, op %d, seed %d)\n",
		inj.Mode, where, inj.Op, inj.Seed)
	os.Exit(CrashExitCode)
}

// faultyWrite intercepts one temp-file write. It returns the bytes
// written and an error exactly like (*os.File).Write, with the injected
// short write leaving a strict prefix of p in the file.
func faultyWrite(f *os.File, p []byte) (int, error) {
	inj := active.Load()
	if !inj.trip(opWrite) {
		return f.Write(p)
	}
	// A strict prefix: at least 0, at most len(p)-1 bytes land.
	k := 0
	if len(p) > 1 {
		k = int(splitmix64(inj.Seed^uint64(inj.Op)) % uint64(len(p)))
	}
	n, _ := f.Write(p[:k]) // the injected error below supersedes any real one
	if inj.Crash {
		inj.crashNow("write")
	}
	errno := syscall.EIO
	if inj.Mode == FaultENOSPC {
		errno = syscall.ENOSPC
	}
	return n, fmt.Errorf("atomicio: injected %s after %d/%d bytes: %w", inj.Mode, n, len(p), errno)
}

// faultySync intercepts one temp-file fsync.
func faultySync(f *os.File) error {
	inj := active.Load()
	if !inj.trip(opSync) {
		return f.Sync()
	}
	if inj.Crash {
		inj.crashNow("fsync")
	}
	return fmt.Errorf("atomicio: injected fsync failure: %w", syscall.EIO)
}

// faultyRename intercepts one rename. The torn-rename crash lands on a
// seed-chosen side of the rename: before it (temp complete, target old)
// or after it (target new, directory entry not yet synced).
func faultyRename(oldpath, newpath string) error {
	inj := active.Load()
	if !inj.trip(opRename) {
		return os.Rename(oldpath, newpath)
	}
	if inj.Crash {
		if splitmix64(inj.Seed^0xdead)&1 == 0 {
			inj.crashNow("pre-rename")
		}
		if err := os.Rename(oldpath, newpath); err == nil {
			inj.crashNow("post-rename")
		}
		inj.crashNow("pre-rename")
	}
	return fmt.Errorf("atomicio: injected torn rename of %s: %w", newpath, syscall.EIO)
}

// faultFile adapts faultyWrite to io.Writer so the buffered writer in
// WriteFile flushes through the injector.
type faultFile struct{ f *os.File }

func (ff faultFile) Write(p []byte) (int, error) { return faultyWrite(ff.f, p) }
