// Package atomicio provides crash-safe file writes for campaign outputs:
// result CSVs, event traces, profiles, and the experiment journal. Every
// write goes through a temporary file in the target directory, is fsynced,
// and is renamed into place, so a killed process (SIGKILL, OOM, power
// loss) leaves either the previous complete file or the new complete file
// — never a truncated half-write.
package atomicio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFile produces path atomically: write receives a buffered writer
// into a temporary file in path's directory; on success the temp file is
// flushed, fsynced, and renamed over path. On any error the temp file is
// removed and path is left untouched.
func WriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()           //lint:errcheck-ok — already failing, the remove below is the cleanup that matters
			os.Remove(tmp.Name()) //lint:errcheck-ok — best-effort cleanup on the error path
		}
	}()
	// All primitive operations route through the fault-injection hooks in
	// fault.go; with no injector armed they are the plain os.File calls.
	bw := bufio.NewWriterSize(faultFile{tmp}, 1<<16)
	if err = write(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("atomicio: flush %s: %w", path, err)
	}
	if err = faultySync(tmp); err != nil {
		return fmt.Errorf("atomicio: fsync %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	if err = faultyRename(tmp.Name(), path); err != nil {
		return fmt.Errorf("atomicio: rename %s: %w", path, err)
	}
	syncDir(dir)
	return nil
}

// syncDir makes the rename itself durable by fsyncing the directory entry.
// Failures are deliberately ignored: some filesystems reject directory
// fsync, and by this point the data file is complete and named.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()  //lint:errcheck-ok — best-effort durability of the rename, see above
	d.Close() //lint:errcheck-ok — read-only directory handle
}

// File is a streaming atomic file: bytes are written to a temporary file
// in the target directory and the file is renamed into place only when
// Close succeeds. It backs outputs that are produced incrementally over a
// whole command — JSONL event traces and pprof CPU profiles — so an
// interrupted command never leaves a truncated output under the final
// name.
type File struct {
	f    *os.File
	path string
	done bool
	werr error // first write failure; Close refuses to publish after one
}

// Create opens a streaming atomic file that will become path on Close.
func Create(path string) (*File, error) {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	return &File{f: tmp, path: path}, nil
}

// Write appends to the temporary file.
func (a *File) Write(p []byte) (int, error) {
	n, err := faultyWrite(a.f, p)
	if err != nil && a.werr == nil {
		a.werr = err
	}
	return n, err
}

// Close fsyncs the temporary file and renames it to the final path. It is
// idempotent; after the first successful Close further calls return nil.
func (a *File) Close() error {
	if a.done {
		return nil
	}
	a.done = true
	if a.werr != nil {
		// A write already failed: the temp file is a known-truncated
		// stream. Publishing it under the final name would trade the
		// previous complete file for a partial one, so discard instead.
		a.f.Close()           //lint:errcheck-ok — discarding a failed stream
		os.Remove(a.f.Name()) //lint:errcheck-ok — best-effort cleanup
		return fmt.Errorf("atomicio: not publishing %s after failed write: %w", a.path, a.werr)
	}
	if err := faultySync(a.f); err != nil {
		a.f.Close()           //lint:errcheck-ok — already failing, the remove below is the cleanup
		os.Remove(a.f.Name()) //lint:errcheck-ok — best-effort cleanup on the error path
		return fmt.Errorf("atomicio: fsync %s: %w", a.path, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name()) //lint:errcheck-ok — best-effort cleanup on the error path
		return fmt.Errorf("atomicio: close %s: %w", a.path, err)
	}
	if err := faultyRename(a.f.Name(), a.path); err != nil {
		os.Remove(a.f.Name()) //lint:errcheck-ok — best-effort cleanup on the error path
		return fmt.Errorf("atomicio: rename %s: %w", a.path, err)
	}
	syncDir(filepath.Dir(a.path))
	return nil
}

// Abort discards the temporary file without touching the final path. Safe
// to call after Close (it then does nothing).
func (a *File) Abort() {
	if a.done {
		return
	}
	a.done = true
	a.f.Close()           //lint:errcheck-ok — discarding the file, nothing to preserve
	os.Remove(a.f.Name()) //lint:errcheck-ok — best-effort cleanup
}
