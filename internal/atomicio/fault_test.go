package atomicio

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// faultContent builds deterministic content large enough to span several
// buffered writes (the WriteFile buffer is 64 KiB), so short-write
// injection can land mid-stream.
func faultContent(tag byte, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = tag ^ byte(i*7)
	}
	return b
}

// writeChunks emits content through w in several Write calls.
func writeChunks(content []byte) func(io.Writer) error {
	return func(w io.Writer) error {
		for len(content) > 0 {
			n := 40 << 10
			if n > len(content) {
				n = len(content)
			}
			if _, err := w.Write(content[:n]); err != nil {
				return err
			}
			content = content[n:]
		}
		return nil
	}
}

// TestWriteFileFaultMatrix is the crash-safety acceptance matrix for
// WriteFile: under every fault mode, at every injection point, for
// several seeds, the target file must hold either the old bytes or the
// new bytes in full — never a prefix, never a mix — and success/failure
// must agree with the content observed.
func TestWriteFileFaultMatrix(t *testing.T) {
	defer SetInjector(nil)
	oldBytes := faultContent(0x55, 130<<10)
	newBytes := faultContent(0xaa, 150<<10)
	for _, mode := range []FaultMode{FaultShortWrite, FaultSyncErr, FaultENOSPC, FaultTornRename} {
		for op := int64(1); op <= 4; op++ {
			for seed := uint64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/op%d/seed%d", mode, op, seed)
				t.Run(name, func(t *testing.T) {
					dir := t.TempDir()
					path := filepath.Join(dir, "target.bin")
					if err := os.WriteFile(path, oldBytes, 0o644); err != nil {
						t.Fatal(err)
					}
					SetInjector(&Injector{Mode: mode, Op: op, Seed: seed})
					err := WriteFile(path, writeChunks(newBytes))
					SetInjector(nil)

					got, rerr := os.ReadFile(path)
					if rerr != nil {
						t.Fatalf("target unreadable after injected fault: %v", rerr)
					}
					isOld := bytes.Equal(got, oldBytes)
					isNew := bytes.Equal(got, newBytes)
					if !isOld && !isNew {
						t.Fatalf("target is neither the old nor the new bytes (len %d, old %d, new %d)",
							len(got), len(oldBytes), len(newBytes))
					}
					if err == nil && !isNew {
						t.Fatal("WriteFile reported success but the target holds the old bytes")
					}
					if err != nil && !isOld {
						t.Fatalf("WriteFile failed (%v) but the target was replaced", err)
					}
					// The error path must not leak temp files into the
					// directory.
					entries, derr := os.ReadDir(dir)
					if derr != nil {
						t.Fatal(derr)
					}
					if len(entries) != 1 {
						var names []string
						for _, e := range entries {
							names = append(names, e.Name())
						}
						t.Fatalf("stray files left next to the target: %v", names)
					}
					// An op index beyond the operations WriteFile performs
					// must not fire at all.
					wantFault := op <= opsOf(mode)
					if wantFault && err == nil {
						t.Fatalf("fault %s at op %d did not fire", mode, op)
					}
					if !wantFault && err != nil {
						t.Fatalf("no eligible op %d for %s, yet WriteFile failed: %v", op, mode, err)
					}
				})
			}
		}
	}
}

// opsOf counts the eligible operations a single 150 KiB WriteFile
// performs per mode: three buffered flushes (64+64+22 KiB), one fsync,
// one rename.
func opsOf(mode FaultMode) int64 {
	switch mode.kind() {
	case opWrite:
		return 3
	case opSync:
		return 1
	case opRename:
		return 1
	}
	return 0
}

// TestStreamingFileFaultMatrix runs the same old-or-new invariant over
// the streaming File path (journal traces, profiles): an injected fault
// during Write or Close must leave the previous target intact.
func TestStreamingFileFaultMatrix(t *testing.T) {
	defer SetInjector(nil)
	oldBytes := []byte("previous complete file\n")
	newBytes := faultContent(0x3c, 90<<10)
	for _, mode := range []FaultMode{FaultShortWrite, FaultSyncErr, FaultENOSPC, FaultTornRename} {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", mode, seed), func(t *testing.T) {
				dir := t.TempDir()
				path := filepath.Join(dir, "stream.jsonl")
				if err := os.WriteFile(path, oldBytes, 0o644); err != nil {
					t.Fatal(err)
				}
				SetInjector(&Injector{Mode: mode, Op: 1, Seed: seed})
				f, err := Create(path)
				if err != nil {
					t.Fatal(err)
				}
				_, werr := f.Write(newBytes)
				cerr := f.Close()
				if werr != nil {
					f.Abort()
				}
				SetInjector(nil)

				got, rerr := os.ReadFile(path)
				if rerr != nil {
					t.Fatal(rerr)
				}
				switch {
				case bytes.Equal(got, oldBytes):
					if werr == nil && cerr == nil {
						t.Fatal("Close succeeded but target still holds the old bytes")
					}
				case bytes.Equal(got, newBytes):
					if werr != nil || cerr != nil {
						t.Fatalf("write/close failed (%v, %v) but target was replaced", werr, cerr)
					}
				default:
					t.Fatalf("target is neither old nor new (len %d)", len(got))
				}
			})
		}
	}
}

func TestParseFault(t *testing.T) {
	inj, err := ParseFault("tornrename:2:7:crash")
	if err != nil {
		t.Fatal(err)
	}
	if inj.Mode != FaultTornRename || inj.Op != 2 || inj.Seed != 7 || !inj.Crash {
		t.Fatalf("parsed %+v", inj)
	}
	inj, err = ParseFault("shortwrite:1:0")
	if err != nil || inj.Crash {
		t.Fatalf("parse without crash: %+v, %v", inj, err)
	}
	for _, bad := range []string{"", "shortwrite", "shortwrite:0:1", "shortwrite:1:x", "bogus:1:1", "shortwrite:1:1:boom"} {
		if _, err := ParseFault(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
	if !strings.Contains(FaultShortWrite.String(), "shortwrite") {
		t.Error("mode String drifted from ParseFault spelling")
	}
}
