package atomicio

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "a,b\n1,2\n")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a,b\n1,2\n" {
		t.Fatalf("content = %q", got)
	}
}

func TestWriteFileOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "new")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("content = %q", got)
	}
}

// TestWriteFileErrorLeavesTargetUntouched is the crash-safety contract: a
// failing producer must leave the previous complete file in place and no
// temp litter behind.
func TestWriteFileErrorLeavesTargetUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("intact"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("producer failed")
	err := WriteFile(path, func(w io.Writer) error {
		_, werr := io.WriteString(w, "partial garbage")
		if werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want producer error", err)
	}
	got, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if string(got) != "intact" {
		t.Fatalf("target clobbered: %q", got)
	}
	assertNoTempLitter(t, dir)
}

func TestCreateCloseRenames(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("{\"a\":1}\n")); err != nil {
		t.Fatal(err)
	}
	// Before Close the final name must not exist.
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("final path exists before Close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "{\"a\":1}\n" {
		t.Fatalf("content = %q", got)
	}
	assertNoTempLitter(t, dir)
}

func TestCreateAbortRemovesTemp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("half")); err != nil {
		t.Fatal(err)
	}
	f.Abort()
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("aborted file reached final path: %v", err)
	}
	assertNoTempLitter(t, dir)
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("temp litter left behind: %s", e.Name())
		}
	}
}
