package detwalk_test

import (
	"testing"

	"clumsy/internal/lint/analysistest"
	"clumsy/internal/lint/detwalk"
)

func TestDetwalk(t *testing.T) {
	analysistest.Run(t, detwalk.Analyzer,
		"clumsy/internal/clumsy",
		"clumsy/internal/telemetry",
		"clumsy/internal/cluster",
	)
}
