// Fixture: the deterministic sim core. Every class of hidden
// nondeterminism must be flagged here, and every escape hatch must
// silence it.
package clumsy

import (
	"math/rand" // want `import of math/rand in deterministic code`
	"time"
)

var _ = rand.Int

func mapWalk(m map[int]int) int {
	s := 0
	for k := range m { // want `range over map in the deterministic sim core`
		s += k
	}
	return s
}

func mapWalkSorted(m map[int]int) int {
	s := 0
	//lint:det-ok — order-insensitive sum
	for k := range m {
		s += k
	}
	return s
}

func sliceWalk(xs []int) int {
	s := 0
	for _, x := range xs { // slices are ordered: no diagnostic
		s += x
	}
	return s
}

func spawn(done chan struct{}) {
	go func() { close(done) }() // want `goroutine spawn in the deterministic sim core`
}

func spawnJustified(done chan struct{}) {
	//lint:det-ok — joined before any cycle accounting
	go func() { close(done) }()
}

func clock() time.Duration {
	start := time.Now()      // want `wall clock read \(time\.Now\) in deterministic code`
	return time.Since(start) // want `wall clock read \(time\.Since\) in deterministic code`
}

func clockJustified() time.Time {
	return time.Now() //lint:wallclock-ok — fixture: reporting only
}

func notWallClock(d time.Duration) time.Time {
	// Unix is not a wall-clock read; no diagnostic.
	return time.Unix(0, int64(d))
}
