// Fixture: an internal package outside the sim core. Wall-clock reads and
// math/rand are still rejected, but map iteration and goroutines are the
// package's own business.
package telemetry

import "time"

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall clock read \(time\.Since\) in deterministic code`
}

func fanOut(m map[string]int, out chan int) {
	for _, v := range m { // non-core package: no diagnostic
		out <- v
	}
	go func() { close(out) }() // non-core package: no diagnostic
}
