// Fixture: the fleet simulator is part of the deterministic sim core. Its
// virtual-time event loop must not walk maps, spawn goroutines, or read
// the wall clock — a fixed-seed fleet run is byte-identical only because
// every decision is a pure function of the configuration.
package cluster

import "time"

func drainFlows(flows map[uint64]int) int {
	moved := 0
	for key := range flows { // want `range over map in the deterministic sim core`
		moved += int(key & 1)
	}
	return moved
}

func drainFlowsOrdered(keys []uint64) int {
	moved := 0
	for _, key := range keys { // slices are ordered: no diagnostic
		moved += int(key & 1)
	}
	return moved
}

func tick() float64 {
	// Virtual time must come from the event loop, never the host clock.
	return float64(time.Now().UnixNano()) // want `wall clock read \(time\.Now\) in deterministic code`
}
