// Package detwalk enforces the simulator's bit-determinism invariant: the
// paper's tables and figures are reproducible only because a seeded run is
// a pure function of its configuration. Three classes of hidden
// nondeterminism are rejected inside the deterministic sim core
// (internal/{clumsy,cache,simmem,fault,apps,freqctl,metrics,packet,radix,
// cluster,workload}):
//
//   - iteration over a Go map (`for range m`), whose order varies per
//     process — a hot-path map walk silently changes access interleaving;
//   - goroutine spawns, which make cycle accounting racy;
//   - wall-clock reads (time.Now, time.Since, time.Until) and math/rand,
//     which must never feed simulated state; fault injection draws from the
//     seeded xorshift RNG in internal/fault instead.
//
// The wall-clock/math-rand check additionally covers every other internal
// package, because a time.Now that creeps into experiment orchestration or
// telemetry can leak into results just as silently. The two legitimate
// wall-clock consumers (the progress monitor and the parallel-runner
// timing) carry a `//lint:wallclock-ok` directive; map iteration or
// goroutine exceptions in the core would use `//lint:det-ok`.
package detwalk

import (
	"go/ast"
	"go/types"
	"strconv"

	"clumsy/internal/lint/analysis"
)

// CorePackages are the deterministic sim-core package directories.
var CorePackages = []string{
	"internal/clumsy",
	"internal/cache",
	"internal/simmem",
	"internal/fault",
	"internal/apps",
	"internal/freqctl",
	"internal/metrics",
	"internal/packet",
	"internal/radix",
	"internal/cluster",
	"internal/workload",
}

// Analyzer is the detwalk check.
var Analyzer = &analysis.Analyzer{
	Name: "detwalk",
	Doc: "flag nondeterminism in the sim core: map iteration, goroutine spawns, " +
		"wall-clock reads, and math/rand (escape hatches: //lint:wallclock-ok, //lint:det-ok)",
	Run:        run,
	Directives: []string{"wallclock-ok", "det-ok"},
}

// wallClockFuncs are the package time functions that read the wall clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	core := analysis.PathWithin(pass.Pkg.Path(), CorePackages...)
	internal := analysis.PathWithin(pass.Pkg.Path(), "internal")
	if !core && !internal {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				if !pass.DirectiveAt(imp.Pos(), "wallclock-ok") {
					pass.Reportf(imp.Pos(), "import of %s in deterministic code: use the seeded RNG in internal/fault", path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if !core || n.X == nil {
					return true
				}
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap && !pass.DirectiveAt(n.Pos(), "det-ok") {
					pass.Reportf(n.Pos(), "range over map in the deterministic sim core: iteration order is nondeterministic")
				}
			case *ast.GoStmt:
				if core && !pass.DirectiveAt(n.Pos(), "det-ok") {
					pass.Reportf(n.Pos(), "goroutine spawn in the deterministic sim core: cycle accounting must stay single-threaded")
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Uses[sel.Sel]
				if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" || !wallClockFuncs[obj.Name()] {
					return true
				}
				if !pass.DirectiveAt(n.Pos(), "wallclock-ok") {
					pass.Reportf(n.Pos(), "wall clock read (time.%s) in deterministic code: simulated time must come from the cycle model", obj.Name())
				}
			}
			return true
		})
	}
	return nil
}
