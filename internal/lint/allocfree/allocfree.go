// Package allocfree turns the runtime zero-allocation pin
// (TestSteadyStatePacketLoopZeroAlloc) into a static gate: a function
// annotated `//lint:hot-path` — and every same-package function it
// transitively calls — may not contain heap-allocating constructs:
//
//   - make/new and slice or map composite literals;
//   - &T{...} composite-literal escapes;
//   - append growth;
//   - closures (func literals), except the classic `defer func(){...}()`
//     containment pattern, which the compiler stack-allocates;
//   - string concatenation and string<->[]byte conversions;
//   - fmt calls, errors.New, and sort.Slice (always allocate);
//   - interface boxing: passing or converting a non-pointer-shaped
//     concrete value to an interface type;
//   - calls to functions that (transitively) do any of the above.
//
// Cross-package calls are checked through object facts: each pass exports
// a per-function allocation summary, and a hot path that calls an
// allocating function from a dependency is reported at the call site.
// Calls that cannot be resolved statically (interface methods, func
// values) are assumed clean — the runtime AllocsPerRun pin remains the
// backstop for dynamic dispatch.
//
// Escape: `//lint:alloc-ok <reason>` on the offending line, for audited
// cold allocations (one-time warm-up growth, error paths that only run
// when the run is already failing).
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"clumsy/internal/lint/analysis"
)

// AllocFact is the object fact summarizing one function: whether calling
// it can allocate (directly or transitively) and a human-readable chain
// explaining where.
type AllocFact struct {
	Allocates bool
	Why       string
}

// AFact marks AllocFact as a fact type.
func (*AllocFact) AFact() {}

// Analyzer is the allocfree check.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "forbid heap allocations in //lint:hot-path functions and everything " +
		"they call (escape: //lint:alloc-ok <reason>)",
	Run:        run,
	FactTypes:  []analysis.Fact{(*AllocFact)(nil)},
	Directives: []string{"hot-path", "alloc-ok"},
}

// site is one allocating construct in a function body.
type site struct {
	pos  token.Pos
	what string
}

// fnInfo is the per-function scan result.
type fnInfo struct {
	decl  *ast.FuncDecl
	sites []site // unescaped allocating constructs
	calls []resolvedCall
	// effective allocation state after local+fact propagation:
	state  allocState
	why    string
	whyPos token.Pos
}

type resolvedCall struct {
	pos    token.Pos
	callee *types.Func
}

type allocState int

const (
	stateUnknown allocState = iota
	stateComputing
	stateClean
	stateAllocates
)

func run(pass *analysis.Pass) error {
	infos := make(map[*types.Func]*fnInfo)
	var order []*types.Func
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &fnInfo{decl: fd}
			scanBody(pass, fd, info)
			infos[fn] = info
			order = append(order, fn)
		}
	}

	// Resolve each function's effective state (direct sites or an
	// allocating callee, local or via imported facts) and export it, so
	// dependent packages see through this package's call chains.
	for _, fn := range order {
		resolve(pass, fn, infos)
	}
	for _, fn := range order {
		info := infos[fn]
		pass.ExportObjectFact(fn, &AllocFact{Allocates: info.state == stateAllocates, Why: info.why})
	}

	// Walk each hot path's same-package closure, reporting every
	// allocating construct inside it and every call that leaves the
	// package into an allocating function.
	for _, fn := range order {
		info := infos[fn]
		if !pass.FuncDirective(info.decl, "hot-path") {
			continue
		}
		reportClosure(pass, fn, infos)
	}
	return nil
}

// scanBody records a function's direct allocating constructs and its
// statically-resolvable calls. `//lint:alloc-ok <reason>` suppresses a
// construct at scan time — before propagation — so an audited cold
// allocation never taints summaries; the directive therefore always
// counts as consumed.
func scanBody(pass *analysis.Pass, fd *ast.FuncDecl, info *fnInfo) {
	add := func(pos token.Pos, what string) {
		if reason, ok := pass.DirectiveArgs(pos, "alloc-ok"); ok {
			if reason == "" {
				pass.Reportf(pos, "//lint:alloc-ok needs a reason")
			}
			return
		}
		info.sites = append(info.sites, site{pos, what})
	}
	deferred := make(map[*ast.FuncLit]bool)
	skipLit := make(map[*ast.CompositeLit]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				deferred[lit] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					skipLit[lit] = true
					add(n.Pos(), "composite literal escapes via &"+typeString(pass, lit))
				}
			}
		case *ast.CompositeLit:
			if skipLit[n] {
				return true
			}
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal allocates its backing array")
			case *types.Map:
				add(n.Pos(), "map literal allocates")
			}
		case *ast.FuncLit:
			if !deferred[n] {
				add(n.Pos(), "closure allocates its captured environment")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(pass, n.X) {
				add(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(pass, n.Lhs[0]) {
				add(n.Pos(), "string += allocates")
			}
		case *ast.CallExpr:
			scanCall(pass, n, info, add)
		}
		return true
	})
}

// scanCall classifies one call: builtin allocators, conversions, denylisted
// stdlib, boxing at the call boundary, or a resolvable callee to chase.
func scanCall(pass *analysis.Pass, call *ast.CallExpr, info *fnInfo, add func(token.Pos, string)) {
	fun := ast.Unparen(call.Fun)

	// Conversions: string<->[]byte/[]rune allocate a copy.
	if tv, ok := pass.TypesInfo.Types[fun]; ok && tv.IsType() {
		if isStringByteConv(pass, tv.Type, call) {
			add(call.Pos(), "string conversion allocates a copy")
		}
		return
	}

	var id *ast.Ident
	switch f := fun.(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return // func value: unresolvable, assumed clean
	}
	switch obj := pass.TypesInfo.Uses[id].(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			add(call.Pos(), "make allocates")
		case "new":
			add(call.Pos(), "new allocates")
		case "append":
			add(call.Pos(), "append may grow its backing array")
		}
		return
	case *types.Func:
		if pkg := obj.Pkg(); pkg != nil {
			switch {
			case pkg.Path() == "fmt":
				add(call.Pos(), "fmt."+obj.Name()+" allocates (formatting boxes its operands)")
				return
			case pkg.Path() == "errors" && obj.Name() == "New":
				add(call.Pos(), "errors.New allocates")
				return
			case pkg.Path() == "sort" && (obj.Name() == "Slice" || obj.Name() == "SliceStable"):
				add(call.Pos(), "sort."+obj.Name()+" allocates (closure and reflection)")
				return
			}
		}
		sig, _ := obj.Type().(*types.Signature)
		boxingCheck(pass, call, sig, add)
		if sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			return // dynamic dispatch: assumed clean, runtime pin is the backstop
		}
		info.calls = append(info.calls, resolvedCall{call.Pos(), obj})
	}
}

// boxingCheck flags arguments whose assignment to an interface-typed
// parameter boxes a non-pointer-shaped concrete value.
func boxingCheck(pass *analysis.Pass, call *ast.CallExpr, sig *types.Signature, add func(token.Pos, string)) {
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() || types.IsInterface(tv.Type) {
			continue
		}
		if pointerShaped(tv.Type) {
			continue
		}
		add(arg.Pos(), fmt.Sprintf("passing %s boxes it into an interface", types.TypeString(tv.Type, types.RelativeTo(pass.Pkg))))
	}
}

// pointerShaped reports whether values of t fit an interface word without
// allocation.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// resolve computes a function's effective allocation state: direct sites,
// or a call (local or via facts) to an allocating function. Cycles are
// optimistically clean.
func resolve(pass *analysis.Pass, fn *types.Func, infos map[*types.Func]*fnInfo) allocState {
	info := infos[fn]
	if info == nil {
		return stateClean
	}
	switch info.state {
	case stateClean, stateAllocates:
		return info.state
	case stateComputing:
		return stateClean
	}
	info.state = stateComputing
	if len(info.sites) > 0 {
		s := info.sites[0]
		info.state = stateAllocates
		info.why = fmt.Sprintf("%s at %s", s.what, pass.Fset.Position(s.pos))
		info.whyPos = s.pos
		return info.state
	}
	for _, c := range info.calls {
		if callee, ok := infos[c.callee]; ok {
			if resolve(pass, c.callee, infos) == stateAllocates {
				info.state = stateAllocates
				info.why = fmt.Sprintf("calls %s: %s", c.callee.Name(), callee.why)
				info.whyPos = c.pos
				return info.state
			}
			continue
		}
		var fact AllocFact
		if pass.ImportObjectFact(c.callee, &fact) && fact.Allocates {
			info.state = stateAllocates
			info.why = fmt.Sprintf("calls %s: %s", c.callee.FullName(), fact.Why)
			info.whyPos = c.pos
			return info.state
		}
	}
	info.state = stateClean
	return info.state
}

// reportClosure reports every allocation reachable from one hot-path
// function through same-package calls: direct constructs at their own
// position, out-of-package allocating callees at the call site.
func reportClosure(pass *analysis.Pass, root *types.Func, infos map[*types.Func]*fnInfo) {
	visited := make(map[*types.Func]bool)
	queue := []*types.Func{root}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		info := infos[fn]
		if info == nil {
			continue
		}
		for _, s := range info.sites {
			pass.Reportf(s.pos, "allocation on the hot path: %s — reuse a preallocated buffer or annotate //lint:alloc-ok <reason>", s.what)
		}
		for _, c := range info.calls {
			if _, local := infos[c.callee]; local {
				queue = append(queue, c.callee)
				continue
			}
			var fact AllocFact
			if pass.ImportObjectFact(c.callee, &fact) && fact.Allocates {
				// The escape is queried only now, with the diagnostic
				// imminent, so an alloc-ok on a clean call goes stale.
				if reason, ok := pass.DirectiveArgs(c.pos, "alloc-ok"); ok {
					if reason == "" {
						pass.Reportf(c.pos, "//lint:alloc-ok needs a reason")
					}
					continue
				}
				pass.Reportf(c.pos, "hot-path call to %s, which allocates: %s", c.callee.FullName(), fact.Why)
			}
		}
	}
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isStringByteConv reports whether the conversion T(x) crosses the
// string/byte-slice boundary.
func isStringByteConv(pass *analysis.Pass, to types.Type, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Type == nil {
		return false
	}
	from := tv.Type
	return (isStringType(to) && isByteSlice(from)) || (isByteSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func typeString(pass *analysis.Pass, lit *ast.CompositeLit) string {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return "T{}"
	}
	return types.TypeString(tv.Type, types.RelativeTo(pass.Pkg)) + "{}"
}
