package allocfree_test

import (
	"strings"
	"testing"

	"clumsy/internal/lint/allocfree"
	"clumsy/internal/lint/analysistest"
)

func TestAllocFree(t *testing.T) {
	analysistest.Run(t, allocfree.Analyzer,
		"clumsy/internal/simmem",
		"clumsy/internal/clumsy",
	)
}

// loopMirror mirrors the real steady-state packet loop: the per-packet
// staging buffer is truncated and reused, never reallocated.
const loopMirror = `package clumsy

type engine struct {
	staging []uint64
	head    int
}

// beginPacket resets per-packet state.
//
//lint:hot-path
func (e *engine) beginPacket() {
	e.staging = e.staging[:0]
	e.head = 0
}

// dmaPacket stages one packet word.
//
//lint:hot-path
func (e *engine) dmaPacket(w uint64) {
	if e.head < cap(e.staging) {
		e.staging = e.staging[:e.head+1]
		e.staging[e.head] = w
		e.head++
	}
}
`

// TestMutationReallocatedStagingBuffer swaps the reused staging buffer
// for a fresh make — the zero-alloc regression the runtime pin catches
// at test time and allocfree must catch at lint time.
func TestMutationReallocatedStagingBuffer(t *testing.T) {
	files := map[string]string{"internal/clumsy/loop.go": loopMirror}
	if got := analysistest.CheckSource(t, allocfree.Analyzer, files); len(got) != 0 {
		t.Fatalf("pristine mirror must be clean, got %v", got)
	}

	mutated := strings.Replace(loopMirror, "e.staging = e.staging[:0]", "e.staging = make([]uint64, 0, cap(e.staging))", 1)
	if mutated == loopMirror {
		t.Fatal("mutation did not apply")
	}
	files["internal/clumsy/loop.go"] = mutated
	got := analysistest.CheckSource(t, allocfree.Analyzer, files)
	if len(got) != 1 || !strings.Contains(got[0].Message, "allocation on the hot path: make allocates") {
		t.Fatalf("reallocated staging buffer must be caught, got %v", got)
	}
}

// TestAnnotationRemovalSilences checks the inverse direction: without
// the //lint:hot-path annotation the same allocation is not a finding —
// the analyzer gates on the annotation, not on heuristics.
func TestAnnotationRemovalSilences(t *testing.T) {
	mutated := strings.Replace(loopMirror, "e.staging = e.staging[:0]", "e.staging = make([]uint64, 0, cap(e.staging))", 1)
	cold := strings.ReplaceAll(mutated, "//lint:hot-path\n", "")
	files := map[string]string{"internal/clumsy/loop.go": cold}
	if got := analysistest.CheckSource(t, allocfree.Analyzer, files); len(got) != 0 {
		t.Fatalf("unannotated function must not be checked, got %v", got)
	}
}
