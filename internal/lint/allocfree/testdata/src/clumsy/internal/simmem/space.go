// Fixture dependency: an allocating helper one package below the hot
// loop, so the hot-path report must travel through an AllocFact.
package simmem

// Grow extends the backing space.
func Grow(buf []uint64, n int) []uint64 {
	return append(buf, make([]uint64, n)...)
}

// Peek is allocation-free: calling it from a hot path is fine.
func Peek(buf []uint64, i int) uint64 {
	if i < len(buf) {
		return buf[i]
	}
	return 0
}
