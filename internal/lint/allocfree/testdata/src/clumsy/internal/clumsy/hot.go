// Fixture: the steady-state packet loop. Everything reachable from a
// //lint:hot-path function must be allocation-free — the zero-alloc pin
// (TestSteadyStatePacketLoopZeroAlloc) is the runtime twin of this check.
package clumsy

import "clumsy/internal/lint/allocfree/testdata/src/clumsy/internal/simmem"

type engine struct {
	buf     []uint64
	scratch [64]byte
	name    string
}

type store interface {
	Put(v any)
}

// processPacket is the per-packet fast path.
//
//lint:hot-path
func (e *engine) processPacket(w uint64, s store) {
	e.buf = append(e.buf, w) // want `append may grow its backing array`
	tmp := make([]uint64, 8) // want `make allocates`
	_ = tmp
	s.Put(int(w))             // want `passing int boxes it into an interface`
	e.name = e.name + "x"     // want `string concatenation allocates`
	_ = simmem.Grow(e.buf, 4) // want `hot-path call to .*simmem\.Grow, which allocates: append may grow`
	_ = simmem.Peek(e.buf, 0) // clean dependency call: silent
	//lint:alloc-ok Grow allocates only on its resize path, never for in-range packets
	_ = simmem.Grow(e.buf, 2)
	e.stage(w)                  // same-package callee: its sites report at their own lines
	key := string(e.scratch[:]) //lint:alloc-ok fault diagnostics, reached only after the run has failed
	_ = key
	defer func() { e.buf = e.buf[:0] }() // deferred closures stay on the stack
}

// stage is clean except for one escape the hot closure must surface.
func (e *engine) stage(w uint64) {
	e.scratch[w%64]++
	e.buf = append(e.buf, w) // want `append may grow its backing array`
}

// report is a cold diagnostics helper: it may allocate freely because no
// hot-path function reaches it.
func (e *engine) report() []uint64 {
	out := make([]uint64, len(e.buf))
	copy(out, e.buf)
	return out
}
