package fpcover_test

import (
	"strings"
	"testing"

	"clumsy/internal/lint/analysistest"
	"clumsy/internal/lint/fpcover"
)

func TestFpCover(t *testing.T) {
	analysistest.Run(t, fpcover.Analyzer,
		"clumsy/internal/clumsy",
		"clumsy/internal/experiment",
	)
}

// journalMirror mirrors the real Options.fingerprint sink: every
// result-determining option feeds the id struct.
const journalMirror = `package experiment

//lint:fingerprint-source
type Options struct {
	Packets int
	Trials  int
	Seed    int64
}

// fingerprint derives the journal cell key.
//
//lint:fingerprint-sink
func (o Options) fingerprint(study string, index int) int {
	id := struct {
		Study   string
		Index   int
		Packets int
		Trials  int
		Seed    int64
	}{Study: study, Index: index, Packets: o.Packets, Trials: o.Trials, Seed: o.Seed}
	return id.Index + id.Packets
}
`

// TestMutationDroppedFingerprintInput deletes the Seed input from a
// mirror of the real journal fingerprint: the silent-stale-resume bug
// class fpcover exists for.
func TestMutationDroppedFingerprintInput(t *testing.T) {
	files := map[string]string{"internal/experiment/journal.go": journalMirror}
	if got := analysistest.CheckSource(t, fpcover.Analyzer, files); len(got) != 0 {
		t.Fatalf("pristine mirror must be clean, got %v", got)
	}

	mutated := strings.Replace(journalMirror, "\t\tSeed    int64\n", "", 1)
	mutated = strings.Replace(mutated, ", Seed: o.Seed}", "}", 1)
	if mutated == journalMirror {
		t.Fatal("mutation did not apply")
	}
	files["internal/experiment/journal.go"] = mutated
	got := analysistest.CheckSource(t, fpcover.Analyzer, files)
	if len(got) != 1 || !strings.Contains(got[0].Message, "Options field Seed does not flow into the campaign fingerprint") {
		t.Fatalf("dropped fingerprint input must be caught, got %v", got)
	}
}
