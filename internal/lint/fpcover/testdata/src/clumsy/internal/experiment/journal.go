// Fixture: the journal-side fingerprint sink plus a same-package source.
// Options fields must reach the id struct or carry an annotation; Config
// fields arrive via the package fact and report at the sink.
package experiment

import "clumsy/internal/lint/fpcover/testdata/src/clumsy/internal/clumsy"

// Options mirrors the real campaign options.
//
//lint:fingerprint-source
type Options struct {
	Packets int
	Trials  int // want `Options field Trials does not flow into the campaign fingerprint`
	Ctx     int //lint:fingerprint-exempt steers execution, not results
	//lint:fingerprint-exempt
	Retries int // want `//lint:fingerprint-exempt on Options.Retries needs an argument`
}

// fingerprint derives the journal cell key.
//
//lint:fingerprint-sink
func fingerprint(o Options, c clumsy.Config) int { // want `clumsy.Config field Planes does not flow into the campaign fingerprint`
	id := struct {
		Packets int
		Seed    int64
	}{Packets: o.Packets + c.Packets, Seed: c.Seed}
	return id.Packets + int(id.Seed)
}
