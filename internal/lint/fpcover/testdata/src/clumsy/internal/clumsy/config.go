// Fixture: the processor-side fingerprint source. Config lives one
// package below the journal sink, so its field list travels to the sink
// package as a fact.
package clumsy

// Config mirrors the real per-run configuration.
//
//lint:fingerprint-source
type Config struct {
	Packets   int
	Seed      int64
	CycleTime float64 //lint:fingerprint-extra table1 grid axis, serialized in the study Extra
	Telemetry bool    //lint:fingerprint-exempt observability wiring, cannot change a Result
	Planes    int     // not in the sink id and not annotated: reported at the sink
}
