// Package fpcover enforces fingerprint coverage for the campaign
// journal: every field of a struct annotated `//lint:fingerprint-source`
// (clumsy.Config, experiment.Options) that can change a Result must flow
// into the sha256 cell fingerprint computed by the function annotated
// `//lint:fingerprint-sink`, or carry an annotation saying how or why
// not. A Config field the fingerprint misses is the worst kind of bug the
// journal can have: `-resume` silently reuses cells computed under a
// different configuration and the campaign output is wrong with no error
// anywhere.
//
// Coverage paths, checked per source field:
//
//   - a same-named key in a keyed struct literal inside the sink function
//     (the id struct that feeds sha256);
//   - `//lint:fingerprint-extra <study>`: the field reaches the
//     fingerprint through a study's Extra value, which is serialized into
//     the id wholesale;
//   - `//lint:fingerprint-exempt <reason>`: the field steers execution
//     (contexts, timeouts, retry budgets) and cannot change a Result.
//
// Sources may live in packages the sink package imports: the defining
// package's pass exports the annotated field list as a package fact, and
// the sink package's pass checks it, reporting at the sink so the finding
// lands where the fix goes.
package fpcover

import (
	"go/ast"
	"go/token"

	"clumsy/internal/lint/analysis"
)

// SourceField is one field of a fingerprint-source struct.
type SourceField struct {
	Name      string
	Annotated bool // carries fingerprint-extra or fingerprint-exempt
}

// SourcesFact is the package fact listing a package's fingerprint-source
// structs.
type SourcesFact struct {
	Types map[string][]SourceField // type name -> fields in declaration order
}

// AFact marks SourcesFact as a fact type.
func (*SourcesFact) AFact() {}

// Analyzer is the fpcover check.
var Analyzer = &analysis.Analyzer{
	Name: "fpcover",
	Doc: "require every //lint:fingerprint-source struct field to flow into the " +
		"//lint:fingerprint-sink journal fingerprint (escapes: //lint:fingerprint-extra " +
		"<study>, //lint:fingerprint-exempt <reason>)",
	Run:        run,
	FactTypes:  []analysis.Fact{(*SourcesFact)(nil)},
	Directives: []string{"fingerprint-source", "fingerprint-sink", "fingerprint-extra", "fingerprint-exempt"},
}

func run(pass *analysis.Pass) error {
	local := collectSources(pass)
	if len(local.Types) > 0 {
		pass.ExportPackageFact(&local)
	}

	sinkKeys, sinkPos, haveSink := collectSinks(pass)
	if !haveSink {
		return nil
	}

	// Local sources report at the field; imported sources report at the
	// sink, which is where the missing id entry belongs.
	for typeName, fields := range local.Types {
		for _, fld := range fields {
			if fld.Annotated || sinkKeys[fld.Name] {
				continue
			}
			pass.Reportf(fieldPos(pass, typeName, fld.Name), "%s field %s does not flow into the campaign fingerprint: add it to the fingerprint id or annotate //lint:fingerprint-extra <study> / //lint:fingerprint-exempt <reason>",
				typeName, fld.Name)
		}
	}
	for _, imp := range pass.Pkg.Imports() {
		var fact SourcesFact
		if !pass.ImportPackageFact(imp, &fact) {
			continue
		}
		for typeName, fields := range fact.Types {
			for _, fld := range fields {
				if fld.Annotated || sinkKeys[fld.Name] {
					continue
				}
				pass.Reportf(sinkPos, "%s.%s field %s does not flow into the campaign fingerprint: add it to the fingerprint id, or annotate it //lint:fingerprint-extra <study> / //lint:fingerprint-exempt <reason> at its declaration",
					imp.Name(), typeName, fld.Name)
			}
		}
	}
	return nil
}

// collectSources gathers the package's fingerprint-source structs with
// their per-field annotation state, reporting annotations that lack the
// required argument.
func collectSources(pass *analysis.Pass) SourcesFact {
	fact := SourcesFact{Types: make(map[string][]SourceField)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !sourceDirective(pass, gd, ts) {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					pass.Reportf(ts.Pos(), "//lint:fingerprint-source on non-struct type %s", ts.Name.Name)
					continue
				}
				var fields []SourceField
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						annotated := false
						for _, dir := range []string{"fingerprint-extra", "fingerprint-exempt"} {
							if args, ok := pass.DirectiveArgs(name.Pos(), dir); ok {
								annotated = true
								if args == "" {
									pass.Reportf(name.Pos(), "//lint:%s on %s.%s needs an argument", dir, ts.Name.Name, name.Name)
								}
							}
						}
						fields = append(fields, SourceField{Name: name.Name, Annotated: annotated})
					}
				}
				fact.Types[ts.Name.Name] = fields
			}
		}
	}
	if len(fact.Types) == 0 {
		return SourcesFact{}
	}
	return fact
}

func sourceDirective(pass *analysis.Pass, gd *ast.GenDecl, ts *ast.TypeSpec) bool {
	if _, ok := pass.DocDirective(gd.Doc, "fingerprint-source"); ok {
		return true
	}
	if _, ok := pass.DocDirective(ts.Doc, "fingerprint-source"); ok {
		return true
	}
	if _, ok := pass.DirectiveArgs(ts.Pos(), "fingerprint-source"); ok {
		return true
	}
	return false
}

// collectSinks finds the fingerprint-sink functions and the union of the
// keyed struct-literal keys their bodies mention — the id struct fed to
// sha256. Returns the first sink's position for cross-package reports.
func collectSinks(pass *analysis.Pass) (map[string]bool, token.Pos, bool) {
	keys := make(map[string]bool)
	pos := token.NoPos
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !pass.FuncDirective(fd, "fingerprint-sink") {
				continue
			}
			if pos == token.NoPos {
				pos = fd.Pos()
			}
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				for _, elt := range cl.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							keys[id.Name] = true
						}
					}
				}
				return true
			})
		}
	}
	return keys, pos, pos != token.NoPos
}

// fieldPos resolves the declaration position of a named field of a local
// struct type for reporting.
func fieldPos(pass *analysis.Pass, typeName, fieldName string) token.Pos {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != typeName {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if name.Name == fieldName {
							return name.Pos()
						}
					}
				}
				return ts.Pos()
			}
		}
	}
	return token.NoPos
}
