package statecover_test

import (
	"strings"
	"testing"

	"clumsy/internal/lint/analysistest"
	"clumsy/internal/lint/statecover"
)

func TestStateCover(t *testing.T) {
	analysistest.Run(t, statecover.Analyzer, "clumsy/internal/cache")
}

// l1Mirror mirrors the real L1Data checkpoint surface: tab is carried by
// snapshot/restore, deadLines only by syncDisabled — the exact shape of
// the PR 5 bug, where RestoreSnapshot forgot to recount disabled lines.
const l1Mirror = `package cache

// L1Data mirrors the real data cache.
//
//lint:checkpoint snapshot, restore, syncDisabled
type L1Data struct {
	tab       []uint64
	deadLines int
}

func (c *L1Data) snapshot(dst []uint64) {
	copy(dst, c.tab)
}

func (c *L1Data) restore(src []uint64) {
	copy(c.tab, src)
}

func (c *L1Data) syncDisabled() {
	n := 0
	for _, w := range c.tab {
		if w != 0 {
			n++
		}
	}
	c.deadLines = n
}
`

// TestMutationDeletedSyncSite re-creates the hand-patched PR 5 bug in a
// fixture mirror: deleting the syncDisabled recount — the only checkpoint
// reference to deadLines — must be reported by statecover.
func TestMutationDeletedSyncSite(t *testing.T) {
	files := map[string]string{"internal/cache/l1.go": l1Mirror}
	if got := analysistest.CheckSource(t, statecover.Analyzer, files); len(got) != 0 {
		t.Fatalf("pristine mirror must be clean, got %v", got)
	}

	mutated := strings.Replace(l1Mirror, "\tc.deadLines = n\n", "\t_ = n\n", 1)
	if mutated == l1Mirror {
		t.Fatal("mutation did not apply")
	}
	files["internal/cache/l1.go"] = mutated
	got := analysistest.CheckSource(t, statecover.Analyzer, files)
	if len(got) != 1 || !strings.Contains(got[0].Message, "field deadLines of checkpointable struct L1Data is not referenced") {
		t.Fatalf("deleted sync site must be caught, got %v", got)
	}
}
