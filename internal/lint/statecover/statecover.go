// Package statecover enforces checkpoint coverage: every field of a
// struct annotated `//lint:checkpoint <func> [<func> ...]` must be
// referenced by at least one of the named checkpoint functions (its
// Snapshot/Restore/syncDisabled surface), directly or through
// same-package calls, or carry `//lint:ephemeral <reason>` explaining why
// it survives rollback. This is exactly the bug class PR 5's
// `syncDisabled` fix and PR 7's re-clock pinning patched by hand: a new
// stateful field that the snapshot pair silently ignores corrupts
// re-execution only when a fault lands, which a determinism test cannot
// see until it is too late.
//
// Coverage is one-of-any, not all-of-each: `deadLines` is maintained by
// `syncDisabled` rather than copied by `snapshot`, and that is correct —
// what must never happen is a field no checkpoint function knows about.
package statecover

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"clumsy/internal/lint/analysis"
)

// Analyzer is the statecover check.
var Analyzer = &analysis.Analyzer{
	Name: "statecover",
	Doc: "require every field of a //lint:checkpoint struct to be referenced by " +
		"its checkpoint functions or annotated //lint:ephemeral <reason>",
	Run:        run,
	Directives: []string{"checkpoint", "ephemeral"},
}

func run(pass *analysis.Pass) error {
	decls := funcDecls(pass)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				args, pos, ok := checkpointDirective(pass, gd, ts)
				if !ok {
					continue
				}
				st, isStruct := ts.Type.(*ast.StructType)
				if !isStruct {
					pass.Reportf(pos, "//lint:checkpoint on non-struct type %s", ts.Name.Name)
					continue
				}
				names := strings.FieldsFunc(args, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
				if len(names) == 0 {
					pass.Reportf(pos, "//lint:checkpoint on %s names no checkpoint functions", ts.Name.Name)
					continue
				}
				covered := coveredFields(pass, decls, names, ts.Name.Name, pos)
				checkStruct(pass, ts.Name.Name, st, covered)
			}
		}
	}
	return nil
}

// checkpointDirective finds the checkpoint annotation of a type spec in
// its decl doc, spec doc, or the line above the spec.
func checkpointDirective(pass *analysis.Pass, gd *ast.GenDecl, ts *ast.TypeSpec) (string, token.Pos, bool) {
	if args, ok := pass.DocDirective(gd.Doc, "checkpoint"); ok {
		return args, gd.Pos(), true
	}
	if args, ok := pass.DocDirective(ts.Doc, "checkpoint"); ok {
		return args, ts.Pos(), true
	}
	if args, ok := pass.DirectiveArgs(ts.Pos(), "checkpoint"); ok {
		return args, ts.Pos(), true
	}
	return "", token.NoPos, false
}

// funcDecls maps every function object declared in the package to its
// declaration.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

// coveredFields walks the named checkpoint functions and every
// same-package function they transitively call, collecting the struct
// field objects their bodies reference (selector reads/writes and keyed
// composite-literal entries both count).
func coveredFields(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, names []string, typeName string, dirPos token.Pos) map[types.Object]bool {
	byName := make(map[string][]*types.Func)
	for fn := range decls {
		byName[fn.Name()] = append(byName[fn.Name()], fn)
	}
	var queue []*types.Func
	for _, name := range names {
		fns := byName[name]
		if len(fns) == 0 {
			pass.Reportf(dirPos, "//lint:checkpoint on %s names %q, which is not declared in this package", typeName, name)
			continue
		}
		queue = append(queue, fns...)
	}

	covered := make(map[types.Object]bool)
	visited := make(map[*types.Func]bool)
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		if visited[fn] {
			continue
		}
		visited[fn] = true
		fd := decls[fn]
		if fd == nil || fd.Body == nil {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && obj.IsField() {
				covered[obj] = true
			}
			if callee, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
				if _, local := decls[callee]; local && !visited[callee] {
					queue = append(queue, callee)
				}
			}
			return true
		})
	}
	return covered
}

// checkStruct reports the fields of one annotated struct that no
// checkpoint function references and no ephemeral annotation excuses.
func checkStruct(pass *analysis.Pass, typeName string, st *ast.StructType, covered map[types.Object]bool) {
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			// Embedded field: resolve its implicit field object.
			obj := embeddedVar(pass, field.Type)
			name := "(embedded)"
			if obj != nil {
				name = obj.Name()
			}
			checkField(pass, typeName, name, field.Type.Pos(), obj, covered)
			continue
		}
		for _, name := range field.Names {
			obj, _ := pass.TypesInfo.Defs[name].(*types.Var)
			checkField(pass, typeName, name.Name, name.Pos(), obj, covered)
		}
	}
}

func checkField(pass *analysis.Pass, typeName, name string, pos token.Pos, obj *types.Var, covered map[types.Object]bool) {
	if obj == nil || covered[obj] {
		return
	}
	if reason, ok := pass.DirectiveArgs(pos, "ephemeral"); ok {
		if reason == "" {
			pass.Reportf(pos, "//lint:ephemeral on %s.%s needs a reason", typeName, name)
		}
		return
	}
	pass.Reportf(pos, "field %s of checkpointable struct %s is not referenced by its checkpoint functions: copy it or annotate //lint:ephemeral <reason>",
		name, typeName)
}

// embeddedVar resolves the field object of an embedded field expression.
func embeddedVar(pass *analysis.Pass, expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.Sel
		case *ast.Ident:
			// The ident names the embedded type; the implicit field var
			// shares its name within the enclosing struct and is recorded
			// as a def-less use, so fall back to name-based matching via
			// the type's object. Defs carries the field var for embedded
			// fields keyed by the same ident in go/types.
			if v, ok := pass.TypesInfo.Defs[e].(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}
