// Fixture: checkpoint coverage of a cache-like table. One field is
// silently unknown to the snapshot pair (true positive), derived config
// is excused as ephemeral (annotated exemption), an ephemeral annotation
// without a reason is itself reported, and a field maintained only by a
// helper the restore path calls is covered transitively.
package cache

// table mirrors the real set-associative store.
//
//lint:checkpoint snapshot,restore
type table struct {
	tag   uint64
	data  []byte
	lru   uint8 // want `field lru of checkpointable struct table is not referenced by its checkpoint functions`
	shift uint  //lint:ephemeral derived from the geometry at construction, never mutated
	tick  uint64
	//lint:ephemeral
	epoch uint64 // want `//lint:ephemeral on table.epoch needs a reason`
	dead  int    // maintained by sync, reached from restore: covered
}

func (t *table) snapshot(dst *table) {
	dst.tag = t.tag
	dst.tick = t.tick
	copy(dst.data, t.data)
}

func (t *table) restore(src *table) {
	t.tag = src.tag
	t.tick = src.tick
	t.data = append(t.data[:0], src.data...)
	t.sync()
}

func (t *table) sync() {
	t.dead = len(t.data)
}

// ghost has a checkpoint annotation naming a function that does not
// exist, which must be reported rather than silently covering nothing.
//
//lint:checkpoint ghostSnap
type ghost struct { // want `//lint:checkpoint on ghost names "ghostSnap", which is not declared in this package`
	v int // want `field v of checkpointable struct ghost is not referenced`
}
