// Fixture: the cache layer's stall-cycle accumulator.
package cache

type CycleBreakdown struct {
	Compute  float64
	L2       float64
	Recovery float64
}

type L1Data struct {
	Cycles    float64
	Breakdown CycleBreakdown
}

//lint:cycle-accounting
func (c *L1Data) chargeStall(cyc float64) {
	c.Cycles += cyc
	c.Breakdown.L2 += cyc
}

func fill(c *L1Data, cyc float64) {
	c.Cycles += cyc          // want `direct write to cycle/energy counter field Cycles`
	c.Breakdown.L2 += cyc    // want `direct write to cycle/energy counter field L2`
	c.Breakdown.Recovery = 0 // want `direct write to cycle/energy counter field Recovery`
	c.chargeStall(cyc)
}

type MainMemory struct {
	Cycles  float64
	Latency float64
}

//lint:cycle-accounting
func (m *MainMemory) chargeTransfer() { m.Cycles += m.Latency }

func transfer(m *MainMemory) {
	m.Cycles += m.Latency // want `direct write to cycle/energy counter field Cycles`
	m.Latency = 80        // config, not a counter: writable anywhere
	m.chargeTransfer()
}

type EnergyWeights struct {
	ReadSwing  float64
	WriteSwing float64
}

func tune(w *EnergyWeights) {
	w.ReadSwing = 0.5  // want `direct write to cycle/energy counter field ReadSwing`
	w.WriteSwing = 0.5 // want `direct write to cycle/energy counter field WriteSwing`
}

//lint:cycle-accounting
func setWeights(w *EnergyWeights, r, wr float64) {
	w.ReadSwing = r
	w.WriteSwing = wr
}
