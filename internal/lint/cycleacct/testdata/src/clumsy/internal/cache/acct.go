// Fixture: the cache layer's stall-cycle accumulator.
package cache

type L1Data struct {
	Cycles float64
}

//lint:cycle-accounting
func (c *L1Data) chargeStall(cyc float64) { c.Cycles += cyc }

func fill(c *L1Data, cyc float64) {
	c.Cycles += cyc // want `direct write to cycle/energy counter field Cycles`
	c.chargeStall(cyc)
}

type EnergyWeights struct {
	ReadSwing  float64
	WriteSwing float64
}

func tune(w *EnergyWeights) {
	w.ReadSwing = 0.5  // want `direct write to cycle/energy counter field ReadSwing`
	w.WriteSwing = 0.5 // want `direct write to cycle/energy counter field WriteSwing`
}

//lint:cycle-accounting
func setWeights(w *EnergyWeights, r, wr float64) {
	w.ReadSwing = r
	w.WriteSwing = wr
}
