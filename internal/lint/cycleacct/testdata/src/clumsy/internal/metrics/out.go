// Fixture: a package outside the accounting scope. Even a type named like
// an accumulator is writable here.
package metrics

type engine struct {
	core float64
}

func free(e *engine) {
	e.core++ // out of scope: no diagnostic
}
