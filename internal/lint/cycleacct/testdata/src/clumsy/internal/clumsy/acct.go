// Fixture: cycle accounting inside the simulator core. Direct writes to the
// engine's counters are rejected unless the function is a designated
// accounting helper; snapshot structs stay writable everywhere.
package clumsy

type engine struct {
	core   float64
	instrs uint64
	burned float64
	pc     int // not a counter field: writable anywhere
}

// charge is the designated accounting helper.
//
//lint:cycle-accounting
func (e *engine) charge(n int) {
	e.instrs += uint64(n)
	e.core += float64(n)
}

func step(e *engine) {
	e.pc++
	e.instrs++    // want `direct write to cycle/energy counter field instrs`
	e.core += 1.5 // want `direct write to cycle/energy counter field core`
	e.core = 0    // want `direct write to cycle/energy counter field core`
	e.burned += 8 // want `direct write to cycle/energy counter field burned`
	e.charge(1)   // routed through the helper: no diagnostic
}

func stepClosure(e *engine) {
	f := func() {
		e.core++ // want `direct write to cycle/energy counter field core`
	}
	f()
}

// Result mirrors the real fold-out snapshot struct: not an accumulator, so
// assignments to it are fine even though the field is named Cycles.
type Result struct {
	Cycles float64
}

func fold(e *engine, r *Result) {
	r.Cycles = e.core
}
