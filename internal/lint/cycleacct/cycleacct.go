// Package cycleacct keeps the cost model auditable: every cycle, every
// instruction, and every unit of cache energy charged by the simulator must
// flow through a designated accounting function. Inside internal/clumsy and
// internal/cache, direct writes (assignment, compound assignment,
// increment/decrement) to the counter fields
//
//	Cycles, core, instrs, burned, ReadSwing, WriteSwing,
//	and the CycleBreakdown attribution buckets
//
// are rejected unless the enclosing function is marked as an accounting
// helper with a `//lint:cycle-accounting` doc-comment directive. A
// cost-model change then always lands in a small, greppable set of
// functions, and the paper's Table I / Figures 6-12 numbers cannot drift
// because some distant call site bumped a counter on its own.
package cycleacct

import (
	"go/ast"
	"go/token"
	"go/types"

	"clumsy/internal/lint/analysis"
)

// Packages are the accounting-scoped package directories.
var Packages = []string{"internal/clumsy", "internal/cache"}

// counterFields maps each live accumulator struct to its protected
// cycle/energy/instruction counter fields. Result-snapshot structs
// (clumsy.Result, cache.Stats copies) are deliberately not listed: the
// invariant protects the accumulators the cost model charges into, not the
// fold-out copies a finished run reports.
var counterFields = map[string]map[string]bool{
	"engine":     {"core": true, "instrs": true, "burned": true},
	"L1Data":     {"Cycles": true},
	"L1Instr":    {"Cycles": true},
	"MainMemory": {"Cycles": true},
	"CycleBreakdown": {
		"Compute": true, "L1D": true, "L1I": true, "L2": true,
		"Mem": true, "Recovery": true, "FreqPenalty": true,
	},
	"EnergyWeights": {"ReadSwing": true, "WriteSwing": true},
	"onceResult":    {"cycles": true, "instrs": true, "breakdown": true},
}

// Analyzer is the cycleacct check.
var Analyzer = &analysis.Analyzer{
	Name: "cycleacct",
	Doc: "forbid direct writes to cycle/energy counter fields outside functions " +
		"marked //lint:cycle-accounting (keeps the cost model auditable)",
	Run:        run,
	Directives: []string{"cycle-accounting"},
}

func run(pass *analysis.Pass) error {
	if !analysis.PathWithin(pass.Pkg.Path(), Packages...) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if pass.FuncDirective(fn, "cycle-accounting") {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures inherit the enclosing function's (lack of)
			// accounting status; keep walking.
			return true
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				report(pass, fn, lhs)
			}
		case *ast.IncDecStmt:
			report(pass, fn, n.X)
		}
		return true
	})
}

// report flags lhs when it is a counter field of a live accumulator.
func report(pass *analysis.Pass, fn *ast.FuncDecl, lhs ast.Expr) {
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || !counterFields[named.Obj().Name()][sel.Sel.Name] {
		return
	}
	pass.Reportf(sel.Pos(),
		"direct write to cycle/energy counter field %s outside an accounting function: "+
			"route it through a //lint:cycle-accounting helper (in %s)",
		sel.Sel.Name, fn.Name.Name)
}
