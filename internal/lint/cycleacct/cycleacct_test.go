package cycleacct_test

import (
	"testing"

	"clumsy/internal/lint/analysistest"
	"clumsy/internal/lint/cycleacct"
)

func TestCycleAcct(t *testing.T) {
	analysistest.Run(t, cycleacct.Analyzer,
		"clumsy/internal/clumsy",
		"clumsy/internal/cache",
		"clumsy/internal/metrics",
	)
}
