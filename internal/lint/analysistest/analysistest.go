// Package analysistest runs an analyzer over golden test fixtures and
// checks its diagnostics against `// want` comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract: a fixture line that
// must trigger carries a trailing comment
//
//	time.Now() // want `wall clock`
//
// where the quoted text is a regular expression the diagnostic message must
// match (double quotes work too). Multiple expectations may follow one
// want. Lines without a want comment must stay silent; both missed and
// surplus diagnostics fail the test.
//
// Fixtures live under testdata/src/ and are addressed by the directory
// path below src/, which becomes the fixture's effective package path —
// so a fixture at testdata/src/clumsy/internal/cache exercises the
// analyzer exactly as the real internal/cache package would.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"clumsy/internal/lint/analysis"
	"clumsy/internal/lint/driver"
	"clumsy/internal/lint/load"
)

// expectation is one `// want` pattern awaiting a diagnostic.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads each fixture package under testdata/src and applies the
// analyzer, comparing diagnostics against the fixtures' want comments.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	patterns := make([]string, len(fixtures))
	for i, fx := range fixtures {
		patterns[i] = "./" + filepath.ToSlash(filepath.Join("testdata", "src", fx))
	}
	pkgs, err := load.Load(".", patterns...)
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	if len(pkgs) != len(fixtures) {
		t.Fatalf("loaded %d packages for %d fixtures", len(pkgs), len(fixtures))
	}
	// One fact store spans the whole fixture set, and load returns the
	// packages in dependency order, so a fixture package can import facts
	// exported over a fixture it imports — exactly like the real driver.
	facts := analysis.NewFactStore()
	for _, pkg := range pkgs {
		runPackage(t, a, pkg, facts)
	}
}

func runPackage(t *testing.T, a *analysis.Analyzer, pkg *load.Package, facts *analysis.FactStore) {
	t.Helper()
	expects, err := parseWants(pkg)
	if err != nil {
		t.Fatal(err)
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Types,
		TypesInfo:  pkg.TypesInfo,
		Facts:      facts,
		Directives: analysis.NewDirectives(pkg.Fset, pkg.Files),
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s: analyzer %s: %v", pkg.PkgPath, a.Name, err)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		if !claim(expects, pos, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.re)
		}
	}
}

// CheckSource materializes an ad-hoc module from files (path below the
// module root -> contents), runs the analyzer over it with the real
// driver, and returns the deduplicated findings. Mutation tests use it to
// assert that a mirror of a real invariant site is clean as written and
// reported once the invariant is deleted.
func CheckSource(t *testing.T, a *analysis.Analyzer, files map[string]string) []driver.Finding {
	t.Helper()
	return CheckSourceSuite(t, []*analysis.Analyzer{a}, files)
}

// CheckSourceSuite is CheckSource for a multi-analyzer suite, preserving
// suite order (the stale-directive sweep must run last).
func CheckSourceSuite(t *testing.T, analyzers []*analysis.Analyzer, files map[string]string) []driver.Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module fixture\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for rel, content := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	findings, err := driver.Run(dir, analyzers, "./...")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	return findings
}

// claim marks the first unmatched expectation that covers the diagnostic.
func claim(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseWants collects the `// want` expectations of every fixture file.
func parseWants(pkg *load.Package) ([]*expectation, error) {
	var expects []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				trimmed := strings.TrimSpace(text)
				if !strings.HasPrefix(trimmed, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parsePatterns(strings.TrimPrefix(trimmed, "want "))
				if err != nil {
					return nil, fmt.Errorf("%s: bad want comment: %v", pos, err)
				}
				for _, re := range res {
					expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return expects, nil
}

// parsePatterns splits `"re" "re" ...` (or backquoted) into regexps.
func parsePatterns(s string) ([]*regexp.Regexp, error) {
	var res []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			break
		}
		var raw, rest string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			raw, rest = s[1:1+end], s[2+end:]
		case '"':
			// Find the closing quote and let strconv handle escapes.
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			raw, rest = unq, s[end+1:]
		default:
			return nil, fmt.Errorf("expected quoted regexp in %q", s)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			return nil, err
		}
		res = append(res, re)
		s = rest
	}
	return res, nil
}
