// Package load turns `go list` package patterns into fully type-checked
// syntax trees without depending on golang.org/x/tools/go/packages (the
// build environment is offline). It shells out to
//
//	go list -export -json -deps <patterns>
//
// which compiles every dependency into the build cache and reports, per
// package, the gc export-data file. Target packages (the ones matching the
// patterns) are then parsed from source and type-checked with go/types,
// resolving every import through the export data — the classic pre-modules
// driver technique, fast because no dependency is ever re-checked from
// source.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	PkgPath   string
	Dir       string
	Imports   []string // direct imports, as listed by `go list`
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists and type-checks the packages matching the patterns, resolved
// relative to dir. Test files are not loaded (invariants are enforced on
// the shipped sources); packages consisting only of tests are skipped.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			pp := p
			targets = append(targets, &pp)
		}
	}
	// Dependency order (imports before importers, alphabetical within a
	// rank): a cross-package facts driver must have analyzed a package
	// before any package that imports it.
	sortDeps(targets)

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", t.ImportPath)
		}
		pkg, err := check(fset, imp, t)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// sortDeps orders the targets topologically by their import edges within
// the target set, deterministically: alphabetical first, then a
// depth-first postorder, so two runs always emit packages identically.
func sortDeps(targets []*listedPackage) {
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	byPath := make(map[string]*listedPackage, len(targets))
	for _, t := range targets {
		byPath[t.ImportPath] = t
	}
	seen := make(map[string]bool, len(targets))
	ordered := make([]*listedPackage, 0, len(targets))
	var visit func(t *listedPackage)
	visit = func(t *listedPackage) {
		if seen[t.ImportPath] {
			return
		}
		seen[t.ImportPath] = true
		for _, imp := range t.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		ordered = append(ordered, t)
	}
	for _, t := range targets {
		visit(t)
	}
	copy(targets, ordered)
}

// check parses and type-checks one listed package from source.
func check(fset *token.FileSet, imp types.Importer, t *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	typesPkg, err := conf.Check(t.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type errors:\n  %s", t.ImportPath, strings.Join(typeErrs, "\n  "))
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
	}
	return &Package{
		PkgPath:   t.ImportPath,
		Dir:       t.Dir,
		Imports:   t.Imports,
		Fset:      fset,
		Files:     files,
		Types:     typesPkg,
		TypesInfo: info,
	}, nil
}
