// Package errchecksim flags call statements that silently discard an error
// result anywhere in internal/ and cmd/. The fault-injection paths make
// swallowed errors genuinely dangerous here: a dropped error from the
// simulated memory or cache layer can turn a detectable fault into silent
// result corruption, which is the exact failure mode the paper's detection
// machinery exists to measure.
//
// The check is deliberately narrower than a general-purpose errcheck:
//   - only expression statements are flagged (an explicit `_ =` assignment
//     is visible in review and stays allowed);
//   - the fmt print family and the sticky-error or infallible writers
//     (*bufio.Writer, *bytes.Buffer, *strings.Builder) are exempt;
//   - a deliberate drop carries `//lint:errcheck-ok` with a reason.
package errchecksim

import (
	"go/ast"
	"go/types"

	"clumsy/internal/lint/analysis"
)

// Analyzer is the errcheck-sim check.
var Analyzer = &analysis.Analyzer{
	Name: "errchecksim",
	Doc: "flag statements that drop an error return in internal/ and cmd/ " +
		"(escape: //lint:errcheck-ok)",
	Run:        run,
	Directives: []string{"errcheck-ok"},
}

// exemptFuncs are package-level functions whose error never needs checking
// (stdout/stderr printing; an error there has no recovery path the CLI
// would take).
var exemptFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
}

// exemptRecvs are receiver types whose methods either cannot fail or latch
// the error for a later Flush/Close check.
var exemptRecvs = map[string]bool{
	"bufio.Writer":     true,
	"bytes.Buffer":     true,
	"strings.Builder":  true,
	"tabwriter.Writer": true,
}

func run(pass *analysis.Pass) error {
	if !analysis.PathWithin(pass.Pkg.Path(), "internal", "cmd") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsError(pass, call) || exempt(pass, call) {
				return true
			}
			if pass.DirectiveAt(call.Pos(), "errcheck-ok") {
				return true
			}
			pass.Reportf(call.Pos(), "error return of %s is silently dropped: handle it or mark //lint:errcheck-ok",
				calleeName(call))
			return true
		})
	}
	return nil
}

// returnsError reports whether any result of the call is an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isError(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isError(t)
	}
}

func isError(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// exempt reports whether the callee is on the allowlist.
func exempt(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if selection, ok := pass.TypesInfo.Selections[sel]; ok && selection.Kind() == types.MethodVal {
		t := selection.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return false
		}
		short := shortPkg(named.Obj().Pkg().Path()) + "." + named.Obj().Name()
		return exemptRecvs[short]
	}
	// Package-qualified function call.
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return exemptFuncs[obj.Pkg().Path()][obj.Name()]
}

func shortPkg(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// calleeName renders the call target for the diagnostic.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	default:
		return "call"
	}
}
