// Fixture: a package outside internal/ and cmd/ — out of scope, silent.
package util

func fallible() error { return nil }

func free() {
	fallible() // out of scope: no diagnostic
}
