// Fixture: dropped errors in the fleet simulator. The SLO report writers
// and node lifecycle calls all return errors that must not vanish.
package cluster

import "fmt"

type node struct{}

func (n *node) Close() error { return nil }

type report struct{}

func (r *report) WriteJSON() error { return nil }

func emit(r *report, n *node) {
	r.WriteJSON() // want `error return of r.WriteJSON is silently dropped`
	n.Close()     // want `error return of n.Close is silently dropped`
	_ = r.WriteJSON()
	fmt.Println("fleet done") // fmt print family: exempt
	n.Close()                 //lint:errcheck-ok — fixture: deliberate drop
}
