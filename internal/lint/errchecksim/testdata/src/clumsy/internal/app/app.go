// Fixture: dropped errors inside internal/. Only bare expression statements
// are flagged; explicit discards, the fmt print family, and infallible
// writers stay allowed.
package app

import (
	"fmt"
	"os"
	"strings"
)

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

func clean() int { return 0 }

func drops(f *os.File, sb *strings.Builder) {
	fallible()     // want `error return of fallible is silently dropped`
	pair()         // want `error return of pair is silently dropped`
	f.Close()      // want `error return of f.Close is silently dropped`
	clean()        // no error result: no diagnostic
	_ = fallible() // explicit discard is visible in review: allowed
	fmt.Println(1) // fmt print family: exempt
	fmt.Fprintf(os.Stderr, "x")
	sb.WriteString("x") // infallible writer: exempt
	fallible()          //lint:errcheck-ok — fixture: deliberate drop
}
