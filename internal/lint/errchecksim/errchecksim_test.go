package errchecksim_test

import (
	"testing"

	"clumsy/internal/lint/analysistest"
	"clumsy/internal/lint/errchecksim"
)

func TestErrcheckSim(t *testing.T) {
	analysistest.Run(t, errchecksim.Analyzer,
		"clumsy/internal/app",
		"clumsy/internal/cluster",
		"example.com/util",
	)
}
