package floatcmp_test

import (
	"testing"

	"clumsy/internal/lint/analysistest"
	"clumsy/internal/lint/floatcmp"
)

func TestFloatCmp(t *testing.T) {
	analysistest.Run(t, floatcmp.Analyzer,
		"clumsy/internal/stats",
		"clumsy/internal/packet",
	)
}
