// Package floatcmp guards the numeric kernels where the paper's Eq. 1-4
// fits live (internal/{circuit,energy,cacti,stats,metrics}): comparing
// floating-point values with == or != there is almost always a latent bug,
// because the fitted models produce values that are equal analytically but
// not bitwise. Exact comparison against the constant 0 is allowed — zero is
// a common exact sentinel ("no observations yet", "feature off") and is
// representable precisely. Any other deliberate exact comparison carries
// `//lint:floatcmp-ok` with a reason.
package floatcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"clumsy/internal/lint/analysis"
)

// Packages are the numeric-kernel package directories.
var Packages = []string{
	"internal/circuit",
	"internal/energy",
	"internal/cacti",
	"internal/stats",
	"internal/metrics",
}

// Analyzer is the floatcmp check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc: "flag ==/!= on floating-point operands in the numeric kernels " +
		"(zero-sentinel comparisons allowed; escape: //lint:floatcmp-ok)",
	Run:        run,
	Directives: []string{"floatcmp-ok"},
}

func run(pass *analysis.Pass) error {
	if !analysis.PathWithin(pass.Pkg.Path(), Packages...) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, bin.X) && !isFloat(pass, bin.Y) {
				return true
			}
			if isZero(pass, bin.X) || isZero(pass, bin.Y) {
				return true
			}
			if pass.DirectiveAt(bin.Pos(), "floatcmp-ok") {
				return true
			}
			pass.Reportf(bin.OpPos, "floating-point %s comparison in a numeric kernel: compare against a tolerance or mark //lint:floatcmp-ok", bin.Op)
			return true
		})
	}
	return nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isZero reports whether e is a compile-time constant equal to exactly 0.
func isZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}
