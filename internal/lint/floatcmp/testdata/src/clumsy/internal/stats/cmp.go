// Fixture: float comparisons inside a numeric-kernel package. Exact ==/!=
// is rejected except against the constant zero sentinel.
package stats

func compare(a, b float64, n int) int {
	if a == b { // want `floating-point == comparison in a numeric kernel`
		return 1
	}
	if a != b { // want `floating-point != comparison in a numeric kernel`
		return 2
	}
	if a == 0 { // zero sentinel: allowed
		return 3
	}
	if 0.0 != b { // zero sentinel on the left: allowed
		return 4
	}
	if n == 3 { // integers: not our business
		return 5
	}
	if a == 1 { // want `floating-point == comparison in a numeric kernel`
		return 6
	}
	if a == 1 { //lint:floatcmp-ok — fixture: exact representable endpoint
		return 7
	}
	return 0
}
