// Fixture: a package outside the numeric kernels — out of scope, silent.
package packet

func equal(a, b float64) bool {
	return a == b // out of scope: no diagnostic
}
