package staledirect_test

import (
	"strings"
	"testing"

	"clumsy/internal/lint/analysis"
	"clumsy/internal/lint/analysistest"
	"clumsy/internal/lint/exhaustive"
	"clumsy/internal/lint/staledirect"
)

// enumSrc exercises every staledirect outcome against a real consumer
// (exhaustive): a consumed escape, a stale escape, an excused keep, and
// an unknown directive.
const enumSrc = `package cluster

//lint:exhaustive
type Mode int

const (
	ModeA Mode = iota
	ModeB
)

// use consumes its escape: the default really does hide ModeB.
func use(m Mode) int {
	switch m {
	case ModeA:
		return 0
	default: //lint:exhaustive-ok ModeB folds into the slow path
		return 1
	}
}

// total is fully handled, so the escape above its switch is stale.
func total(m Mode) int {
	//lint:exhaustive-ok left over from a two-arm draft
	switch m {
	case ModeA, ModeB:
		return int(m)
	}
	return 0
}

// kept carries the same dead escape, deliberately excused.
func kept(m Mode) int {
	//lint:stale-ok exercised by the staledirect test
	//lint:exhaustive-ok kept deliberately
	switch m {
	case ModeA, ModeB:
		return int(m)
	}
	return 0
}

// boot carries a directive whose analyzer is not in this suite.
//
//lint:wallclock-ok detwalk is not registered here
func boot() {}
`

func TestStaleDirect(t *testing.T) {
	suite := []*analysis.Analyzer{exhaustive.Analyzer}
	analyzers := append(suite, staledirect.New(suite))
	files := map[string]string{"internal/cluster/mode.go": enumSrc}
	got := analysistest.CheckSourceSuite(t, analyzers, files)
	if len(got) != 2 {
		t.Fatalf("want exactly 2 findings (stale + unknown), got %v", got)
	}
	if got[0].Analyzer != "staledirect" || !strings.Contains(got[0].Message, "stale directive //lint:exhaustive-ok") {
		t.Errorf("finding 0: want stale exhaustive-ok, got %v", got[0])
	}
	if got[1].Analyzer != "staledirect" || !strings.Contains(got[1].Message, "unknown directive //lint:wallclock-ok") {
		t.Errorf("finding 1: want unknown wallclock-ok, got %v", got[1])
	}
}
