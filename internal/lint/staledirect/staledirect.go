// Package staledirect keeps the escape-hatch inventory honest: after the
// whole clumsylint suite has run over a package, any `//lint:` directive
// that no analyzer consumed — an escape that no longer suppresses a
// diagnostic, an annotation on nothing, or a misspelled directive name —
// is itself reported. Without this check the exemption list only ever
// grows: a `//lint:wallclock-ok` outlives the time.Now it excused and
// quietly licenses the next one.
//
// The analyzer must run after every other analyzer of the suite (the
// driver runs analyzers in list order per package, so it registers last),
// and it is constructed from the suite so it knows the set of legitimate
// directive names.
package staledirect

import (
	"sort"
	"strings"

	"clumsy/internal/lint/analysis"
)

// New builds the staledirect analyzer for a suite: the suite's declared
// directive names (plus staledirect's own ignore escape) are the known
// vocabulary; anything else is reported as unknown.
func New(suite []*analysis.Analyzer) *analysis.Analyzer {
	known := map[string]bool{"stale-ok": true}
	var names []string
	for _, a := range suite {
		for _, d := range a.Directives {
			if !known[d] {
				known[d] = true
				names = append(names, d)
			}
		}
	}
	sort.Strings(names)
	return &analysis.Analyzer{
		Name: "staledirect",
		Doc: "report //lint: directives no analyzer consumed (stale escapes, " +
			"orphaned annotations, misspelled names); known: " + strings.Join(names, ", "),
		Run:        func(pass *analysis.Pass) error { return run(pass, known) },
		Directives: []string{"stale-ok"},
	}
}

func run(pass *analysis.Pass, known map[string]bool) error {
	if pass.Directives == nil {
		return nil
	}
	for _, d := range pass.Directives.All() {
		if d.Used {
			continue
		}
		if !known[d.Name] {
			pass.Reportf(d.Pos, "unknown directive //lint:%s — misspelled, or its analyzer is not registered", d.Name)
			continue
		}
		if d.Name == "stale-ok" {
			continue
		}
		// A deliberate keep (e.g. a directive documented in a fixture)
		// can carry //lint:stale-ok <reason> on the same line.
		if _, ok := pass.DirectiveArgs(d.Pos, "stale-ok"); ok {
			continue
		}
		pass.Reportf(d.Pos, "stale directive //lint:%s: no analyzer consumed it here — the exception it excused is gone, so remove it", d.Name)
	}
	return nil
}
