// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// over one type-checked package, a Pass is one invocation of it, and a
// Diagnostic is one finding. The API mirrors x/tools so the project's
// analyzers port over verbatim if the real dependency ever becomes
// available; it exists because the build environment is offline and the
// module must not grow external dependencies.
//
// Beyond the x/tools surface, the package carries two project mechanisms:
//
//   - Directives: `//lint:<name>` comments that mark deliberate exceptions
//     to an invariant (for example `//lint:wallclock-ok` on the two
//     legitimate wall-clock sites) or feed annotations to an analyzer
//     (`//lint:checkpoint`, `//lint:hot-path`). Directives apply to the
//     line they sit on and to the line immediately below, so both trailing
//     and preceding comment placement work. Consumption is tracked so the
//     staledirect analyzer can report exemptions that rot.
//
//   - Facts (facts.go): gob-serialized data one pass exports about its
//     package for passes over dependent packages to import, mirroring
//     x/tools facts. The driver visits packages in dependency order and
//     threads one FactStore through every pass.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is the one-paragraph description shown by `clumsylint -list`.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
	// FactTypes lists prototypes of the fact types the analyzer exports
	// or imports (informational; fact round-trips are checked at export).
	FactTypes []Fact
	// Directives lists the `//lint:` directive names the analyzer owns,
	// both escapes and annotations. The staledirect analyzer treats any
	// directive name outside the union of these lists as unknown.
	Directives []string
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each finding.
	Report func(Diagnostic)

	// Facts is the driver-shared fact store (nil outside a driver; the
	// pass then builds a private one, so same-package facts still work).
	Facts *FactStore

	// Directives is the package's directive tracker, shared across the
	// suite's passes by the driver so consumption accumulates.
	Directives *Directives
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer})
}

// EffectivePath maps a package import path onto the path the invariants
// are phrased in. For regular packages it is the import path itself; for
// analyzer test fixtures under .../testdata/src/ it is the part after
// src/, so a fixture directory layout mirrors the real tree and
// path-scoped analyzers behave identically on it.
func EffectivePath(pkgPath string) string {
	const marker = "/testdata/src/"
	if i := strings.LastIndex(pkgPath, marker); i >= 0 {
		return pkgPath[i+len(marker):]
	}
	return pkgPath
}

// PathWithin reports whether the effective package path is one of the
// given package directories or below one (e.g. "clumsy/internal/cache"
// is within "internal/cache").
func PathWithin(pkgPath string, dirs ...string) bool {
	eff := EffectivePath(pkgPath)
	for _, d := range dirs {
		if eff == d || strings.HasPrefix(eff, d+"/") ||
			strings.HasSuffix(eff, "/"+d) || strings.Contains(eff, "/"+d+"/") {
			return true
		}
	}
	return false
}

// ObjectOf resolves the types.Object an identifier uses or defines.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Defs[id]
}
