// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// over one type-checked package, a Pass is one invocation of it, and a
// Diagnostic is one finding. The API mirrors x/tools so the project's
// analyzers port over verbatim if the real dependency ever becomes
// available; it exists because the build environment is offline and the
// module must not grow external dependencies.
//
// Beyond the x/tools surface, the package carries the project's directive
// machinery: `//lint:<name>` comments that mark deliberate exceptions to an
// invariant (for example `//lint:wallclock-ok` on the two legitimate
// wall-clock sites). Directives apply to the line they sit on and to the
// line immediately below, so both trailing and preceding comment placement
// work.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is the one-paragraph description shown by `clumsylint -help`.
	Doc string
	// Run applies the check to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each finding.
	Report func(Diagnostic)

	directives map[*ast.File]map[int][]string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer})
}

// directivePrefix introduces an in-source exception marker.
const directivePrefix = "//lint:"

// fileDirectives indexes a file's `//lint:` comments by line.
func fileDirectives(fset *token.FileSet, f *ast.File) map[int][]string {
	idx := make(map[int][]string)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			name := strings.TrimPrefix(text, directivePrefix)
			if i := strings.IndexAny(name, " \t"); i >= 0 {
				name = name[:i]
			}
			line := fset.Position(c.Pos()).Line
			idx[line] = append(idx[line], name)
		}
	}
	return idx
}

// DirectiveAt reports whether a `//lint:name` directive covers pos: the
// directive sits on the same line (trailing comment) or on the line above
// (preceding comment).
func (p *Pass) DirectiveAt(pos token.Pos, name string) bool {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]string)
	}
	var file *ast.File
	for _, f := range p.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			file = f
			break
		}
	}
	if file == nil {
		return false
	}
	idx, ok := p.directives[file]
	if !ok {
		idx = fileDirectives(p.Fset, file)
		p.directives[file] = idx
	}
	line := p.Fset.Position(pos).Line
	for _, l := range []int{line, line - 1} {
		for _, d := range idx[l] {
			if d == name {
				return true
			}
		}
	}
	return false
}

// FuncDirective reports whether the function declaration carries the
// directive in its doc comment.
func FuncDirective(fn *ast.FuncDecl, name string) bool {
	if fn == nil || fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == directivePrefix+name {
			return true
		}
	}
	return false
}

// EffectivePath maps a package import path onto the path the invariants
// are phrased in. For regular packages it is the import path itself; for
// analyzer test fixtures under .../testdata/src/ it is the part after
// src/, so a fixture directory layout mirrors the real tree and
// path-scoped analyzers behave identically on it.
func EffectivePath(pkgPath string) string {
	const marker = "/testdata/src/"
	if i := strings.LastIndex(pkgPath, marker); i >= 0 {
		return pkgPath[i+len(marker):]
	}
	return pkgPath
}

// PathWithin reports whether the effective package path is one of the
// given package directories or below one (e.g. "clumsy/internal/cache"
// is within "internal/cache").
func PathWithin(pkgPath string, dirs ...string) bool {
	eff := EffectivePath(pkgPath)
	for _, d := range dirs {
		if eff == d || strings.HasPrefix(eff, d+"/") ||
			strings.HasSuffix(eff, "/"+d) || strings.Contains(eff, "/"+d+"/") {
			return true
		}
	}
	return false
}
