package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
)

// A Fact is a typed datum one analyzer pass exports about a package or
// one of its objects for passes over dependent packages to import — the
// project's miniature of golang.org/x/tools/go/analysis facts. Fact types
// must be gob-serializable pointers: the store round-trips every fact
// through gob exactly as a separate-process driver would serialize it
// alongside the `go list -export` data, so a fact that survives in-process
// is guaranteed to survive a future cached driver too.
type Fact interface {
	AFact()
}

// factKey addresses one serialized fact. Facts are namespaced per
// analyzer (two analyzers' facts never collide), per package, per object
// (empty for package facts), and per concrete fact type.
type factKey struct {
	analyzer string
	pkg      string
	object   string
	typ      string
}

// FactStore holds the gob-encoded facts of one driver run. The driver
// creates a single store and threads it through every pass, visiting
// packages in dependency order so a pass only ever imports facts that
// were already exported.
type FactStore struct {
	m map[factKey][]byte
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[factKey][]byte)}
}

func (s *FactStore) put(key factKey, f Fact) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(f); err != nil {
		return fmt.Errorf("lint: encoding fact %T for %s.%s: %v", f, key.pkg, key.object, err)
	}
	s.m[key] = buf.Bytes()
	return nil
}

func (s *FactStore) get(key factKey, f Fact) bool {
	enc, ok := s.m[key]
	if !ok {
		return false
	}
	if err := gob.NewDecoder(bytes.NewReader(enc)).Decode(f); err != nil {
		panic(fmt.Sprintf("lint: decoding fact %T for %s.%s: %v", f, key.pkg, key.object, err))
	}
	return true
}

// objectKey names an object stably within its package: "Name" for
// package-level objects, "Recv.Name" for methods.
func objectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
			t := recv.Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	return obj.Name()
}

func factType(f Fact) string {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("lint: fact %T must be a pointer", f))
	}
	return t.Elem().Name()
}

// facts returns the pass's shared store, building a pass-local one when
// the pass was constructed without a driver (unit tests).
func (p *Pass) facts() *FactStore {
	if p.Facts == nil {
		p.Facts = NewFactStore()
	}
	return p.Facts
}

// ExportObjectFact records a fact about an object of the current package.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() == nil {
		panic("lint: ExportObjectFact on nil or universe object")
	}
	if obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("lint: ExportObjectFact: %s is not from the current package %s", obj.Name(), p.Pkg.Path()))
	}
	key := factKey{p.Analyzer.Name, obj.Pkg().Path(), objectKey(obj), factType(f)}
	if err := p.facts().put(key, f); err != nil {
		panic(err.Error())
	}
}

// ImportObjectFact copies the fact recorded about obj (by this analyzer,
// over obj's package) into f, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key := factKey{p.Analyzer.Name, obj.Pkg().Path(), objectKey(obj), factType(f)}
	return p.facts().get(key, f)
}

// ExportPackageFact records a fact about the current package.
func (p *Pass) ExportPackageFact(f Fact) {
	key := factKey{p.Analyzer.Name, p.Pkg.Path(), "", factType(f)}
	if err := p.facts().put(key, f); err != nil {
		panic(err.Error())
	}
}

// ImportPackageFact copies the fact recorded about pkg into f, reporting
// whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, f Fact) bool {
	if pkg == nil {
		return false
	}
	key := factKey{p.Analyzer.Name, pkg.Path(), "", factType(f)}
	return p.facts().get(key, f)
}
