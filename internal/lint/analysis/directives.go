package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// directivePrefix introduces an in-source exception marker.
const directivePrefix = "//lint:"

// Directive is one `//lint:<name> <args>` comment in a package's files.
// Args is the text after the name (an exemption reason, a function list),
// with surrounding whitespace trimmed. Trailing records whether code
// precedes the comment on its line: a trailing directive binds only to
// its own line, a standalone one to the line below — so an exemption on
// one struct field never leaks onto the next. Used records whether any
// analyzer consumed the directive — either as a suppression that matched
// a would-be diagnostic or as an annotation it acted on — which is what
// the staledirect check keys off.
type Directive struct {
	Name     string
	Args     string
	Pos      token.Pos
	Trailing bool
	Used     bool
}

// Directives indexes one package's `//lint:` comments by file and line
// and tracks consumption. The driver builds one per package and shares it
// across every analyzer pass so that, after the suite has run, the
// directives no analyzer consumed can be reported as stale.
type Directives struct {
	fset   *token.FileSet
	byLine map[string]map[int][]*Directive // filename -> line -> directives
	all    []*Directive
}

// NewDirectives scans the files' comments for `//lint:` markers.
func NewDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{fset: fset, byLine: make(map[string]map[int][]*Directive)}
	for _, f := range files {
		code := codeLines(fset, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, directivePrefix)
				name, args := rest, ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name, args = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				pos := fset.Position(c.Pos())
				dir := &Directive{Name: name, Args: args, Pos: c.Pos(), Trailing: code[pos.Line]}
				lines, ok := d.byLine[pos.Filename]
				if !ok {
					lines = make(map[int][]*Directive)
					d.byLine[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], dir)
				d.all = append(d.all, dir)
			}
		}
	}
	return d
}

// lookup finds the directives named name covering pos: on the same line
// (trailing comment), or standalone on the line above. A trailing
// directive on the line above belongs to that line's code, not to pos.
func (d *Directives) lookup(pos token.Pos, name string) []*Directive {
	p := d.fset.Position(pos)
	lines := d.byLine[p.Filename]
	if lines == nil {
		return nil
	}
	var found []*Directive
	for _, dir := range lines[p.Line] {
		if dir.Name == name {
			found = append(found, dir)
		}
	}
	for _, dir := range lines[p.Line-1] {
		if dir.Name == name && !dir.Trailing {
			found = append(found, dir)
		}
	}
	return found
}

// codeLines marks the lines of f holding non-comment tokens, so the
// scanner can tell a trailing directive from a standalone one. Leaf
// positions (idents, literals, closing braces via End) cover every line
// that carries code.
func codeLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case nil:
			return false
		case *ast.Comment, *ast.CommentGroup:
			return false
		}
		lines[fset.Position(n.Pos()).Line] = true
		lines[fset.Position(n.End()-1).Line] = true
		return true
	})
	return lines
}

// All returns every directive in the package, in file order.
func (d *Directives) All() []*Directive {
	return d.all
}

// DirectiveAt reports whether a `//lint:name` directive covers pos — the
// directive sits on the same line (trailing comment) or on the line above
// (preceding comment) — and marks it consumed.
func (p *Pass) DirectiveAt(pos token.Pos, name string) bool {
	_, ok := p.DirectiveArgs(pos, name)
	return ok
}

// DirectiveArgs is DirectiveAt plus the directive's trailing text, for
// annotations that carry arguments (a reason, a function list).
func (p *Pass) DirectiveArgs(pos token.Pos, name string) (string, bool) {
	found := p.directives().lookup(pos, name)
	for _, dir := range found {
		dir.Used = true
	}
	if len(found) == 0 {
		return "", false
	}
	return found[0].Args, true
}

// DocDirective reports whether a declaration's doc comment carries the
// directive, returning its trailing text, and marks it consumed.
func (p *Pass) DocDirective(doc *ast.CommentGroup, name string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, directivePrefix) {
			continue
		}
		rest := strings.TrimPrefix(c.Text, directivePrefix)
		dn, args := rest, ""
		if i := strings.IndexAny(rest, " \t"); i >= 0 {
			dn, args = rest[:i], strings.TrimSpace(rest[i+1:])
		}
		if dn != name {
			continue
		}
		for _, dir := range p.directives().lookup(c.Pos(), name) {
			dir.Used = true
		}
		return args, true
	}
	return "", false
}

// FuncDirective reports whether the function declaration carries the
// directive in its doc comment, and marks it consumed.
func (p *Pass) FuncDirective(fn *ast.FuncDecl, name string) bool {
	if fn == nil {
		return false
	}
	_, ok := p.DocDirective(fn.Doc, name)
	return ok
}

// directives returns the pass's shared tracker, building a pass-local one
// when the pass was constructed without a driver (unit tests).
func (p *Pass) directives() *Directives {
	if p.Directives == nil {
		p.Directives = NewDirectives(p.Fset, p.Files)
	}
	return p.Directives
}
