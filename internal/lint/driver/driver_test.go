package driver_test

import (
	"go/token"
	"strings"
	"testing"

	"clumsy/internal/lint/analysis"
	"clumsy/internal/lint/analysistest"
	"clumsy/internal/lint/driver"
	"clumsy/internal/lint/exhaustive"
	"clumsy/internal/lint/staledirect"
)

const clusterSrc = `package cluster

//lint:exhaustive
type Mode int

const (
	ModeA Mode = iota
	ModeB
)
`

const fleetSrc = `package fleet

import "fixture/internal/cluster"

func pick(m cluster.Mode) int {
	switch m {
	case cluster.ModeA:
		return 0
	}
	return 1
}
`

// TestFactsCrossPackages runs the driver over a two-package module: the
// enum is declared (and annotated) in one package, the incomplete switch
// lives in a dependent one, so the finding can only come from the
// EnumsFact travelling through the shared fact store.
func TestFactsCrossPackages(t *testing.T) {
	suite := []*analysis.Analyzer{exhaustive.Analyzer}
	analyzers := append(suite, staledirect.New(suite))
	files := map[string]string{
		"internal/cluster/mode.go": clusterSrc,
		"internal/fleet/fleet.go":  fleetSrc,
	}
	got := analysistest.CheckSourceSuite(t, analyzers, files)
	if len(got) != 1 {
		t.Fatalf("want exactly 1 finding, got %v", got)
	}
	f := got[0]
	if f.Analyzer != "exhaustive" || !strings.Contains(f.Message, "switch over cluster.Mode does not handle ModeB") {
		t.Fatalf("want cross-package exhaustive finding, got %v", f)
	}
	if !strings.HasSuffix(f.Pos.Filename, "internal/fleet/fleet.go") {
		t.Fatalf("finding must land in the dependent package, got %v", f.Pos)
	}

	// Same inputs, fresh module: the rendered findings must be identical
	// modulo the temp dir.
	again := analysistest.CheckSourceSuite(t, analyzers, files)
	if len(again) != 1 || again[0].Analyzer != f.Analyzer || again[0].Message != f.Message || again[0].Pos.Line != f.Pos.Line {
		t.Fatalf("driver output is not deterministic: %v vs %v", got, again)
	}
}

func TestDedupe(t *testing.T) {
	mk := func(file string, line int, an, msg string) driver.Finding {
		return driver.Finding{Pos: token.Position{Filename: file, Line: line, Column: 1}, Analyzer: an, Message: msg}
	}
	in := []driver.Finding{
		mk("b.go", 3, "floatcmp", "x"),
		mk("a.go", 9, "detwalk", "y"),
		mk("b.go", 3, "floatcmp", "x"), // exact duplicate
		mk("a.go", 9, "cycleacct", "y"),
	}
	out := driver.Dedupe(in)
	if len(out) != 3 {
		t.Fatalf("want 3 findings after dedupe, got %v", out)
	}
	want := []string{
		"a.go:9:1: y (cycleacct)",
		"a.go:9:1: y (detwalk)",
		"b.go:3:1: x (floatcmp)",
	}
	for i, w := range want {
		if out[i].String() != w {
			t.Errorf("finding %d: want %q, got %q", i, w, out[i].String())
		}
	}
}
