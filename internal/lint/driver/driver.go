// Package driver runs a clumsylint analyzer suite over a package set the
// way both cmd/clumsylint and the test harnesses need it run: packages in
// dependency order with one shared fact store (so a pass over
// internal/experiment can import facts exported by the pass over
// internal/clumsy), one directive tracker per package shared across the
// suite (so stale-directive detection sees the whole suite's consumption),
// and findings deduplicated and sorted deterministically by position.
package driver

import (
	"fmt"
	"go/token"
	"sort"

	"clumsy/internal/lint/analysis"
	"clumsy/internal/lint/load"
)

// Finding is one resolved diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical `pos: message (analyzer)`
// line format.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run loads the packages matching patterns (relative to dir) and applies
// the analyzers to each, in package dependency order and analyzer list
// order. Identical findings reported through multiple driver paths are
// deduplicated and the result is sorted by file, line, column, analyzer,
// and message, so output is stable across runs.
func Run(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var findings []Finding
	err = RunPackages(pkgs, analyzers, func(pkg *load.Package, d analysis.Diagnostic) {
		findings = append(findings, Finding{
			Pos:      pkg.Fset.Position(d.Pos),
			Analyzer: d.Analyzer.Name,
			Message:  d.Message,
		})
	})
	if err != nil {
		return nil, err
	}
	return Dedupe(findings), nil
}

// RunPackages applies the analyzers to already-loaded packages, assumed
// to be in dependency order (load.Load returns them that way), invoking
// report for every raw diagnostic. One fact store spans the whole run;
// one directive tracker spans each package's passes.
func RunPackages(pkgs []*load.Package, analyzers []*analysis.Analyzer, report func(*load.Package, analysis.Diagnostic)) error {
	facts := analysis.NewFactStore()
	for _, pkg := range pkgs {
		directives := analysis.NewDirectives(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:   a,
				Fset:       pkg.Fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				TypesInfo:  pkg.TypesInfo,
				Facts:      facts,
				Directives: directives,
				Report:     func(d analysis.Diagnostic) { report(pkg, d) },
			}
			if err := a.Run(pass); err != nil {
				return fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
			}
		}
	}
	return nil
}

// Dedupe removes duplicate findings and sorts the rest by position,
// analyzer, and message.
func Dedupe(findings []Finding) []Finding {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	out := findings[:0]
	for i, f := range findings {
		if i > 0 && f == findings[i-1] {
			continue
		}
		out = append(out, f)
	}
	return out
}
