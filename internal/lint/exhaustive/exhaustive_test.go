package exhaustive_test

import (
	"strings"
	"testing"

	"clumsy/internal/lint/analysistest"
	"clumsy/internal/lint/exhaustive"
)

func TestExhaustive(t *testing.T) {
	analysistest.Run(t, exhaustive.Analyzer,
		"clumsy/internal/cluster",
		"clumsy/internal/fleet",
	)
}

// fsmMirror mirrors the real fleet health FSM transition switch: five
// states, every arm explicit.
const fsmMirror = `package cluster

// NodeState is the fleet health FSM state.
//
//lint:exhaustive
type NodeState int

const (
	StateHealthy NodeState = iota
	StateSuspect
	StateDegraded
	StateDraining
	StateDead
)

// next returns the state after one verdict-driven step.
func next(s NodeState, ok bool) NodeState {
	switch s {
	case StateHealthy:
		if !ok {
			return StateSuspect
		}
		return StateHealthy
	case StateSuspect:
		if ok {
			return StateHealthy
		}
		return StateDegraded
	case StateDegraded:
		if ok {
			return StateSuspect
		}
		return StateDraining
	case StateDraining:
		return StateDead
	case StateDead:
		return StateDead
	}
	return s
}
`

// TestMutationDeletedSwitchArm deletes the StateDead arm from a mirror
// of the real FSM transition switch — the missed-arm bug class a sixth
// state would introduce into every switch that isn't checked.
func TestMutationDeletedSwitchArm(t *testing.T) {
	files := map[string]string{"internal/cluster/fsm.go": fsmMirror}
	if got := analysistest.CheckSource(t, exhaustive.Analyzer, files); len(got) != 0 {
		t.Fatalf("pristine mirror must be clean, got %v", got)
	}

	mutated := strings.Replace(fsmMirror, "\tcase StateDead:\n\t\treturn StateDead\n", "", 1)
	if mutated == fsmMirror {
		t.Fatal("mutation did not apply")
	}
	files["internal/cluster/fsm.go"] = mutated
	got := analysistest.CheckSource(t, exhaustive.Analyzer, files)
	if len(got) != 1 || !strings.Contains(got[0].Message, "switch over NodeState does not handle StateDead") {
		t.Fatalf("deleted switch arm must be caught, got %v", got)
	}
}
