// Package exhaustive enforces total handling of the project's enums: a
// `switch` over a type annotated `//lint:exhaustive` (recovery policy,
// fault regime, cluster health state, ladder escalation step, telemetry
// event kind, ...) must either handle every declared constant of the type
// or carry an explicit escape. PR 7's five-state fleet FSM made the
// missed-arm bug class live: adding a sixth state must break the build of
// every switch that silently ignores it, not surface as a wrong verdict
// ten minutes into a campaign.
//
// The enum's declared constants are collected in the defining package and
// exported as a package fact, so switches in dependent packages are
// checked against the authoritative constant set even though the
// annotation comment is invisible in export data.
//
// Escapes: `//lint:exhaustive-ok <reason>` on the switch statement (for
// switches guarded by earlier control flow) or on its default clause (for
// deliberate catch-alls, e.g. String methods mapping invalid values).
package exhaustive

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"clumsy/internal/lint/analysis"
)

// EnumsFact is the package fact listing the annotated enum types of one
// package and their declared constant names, in declaration order.
type EnumsFact struct {
	Enums map[string][]string // type name -> constant names
}

// AFact marks EnumsFact as a fact type.
func (*EnumsFact) AFact() {}

// Analyzer is the exhaustive check.
var Analyzer = &analysis.Analyzer{
	Name: "exhaustive",
	Doc: "require switches over //lint:exhaustive enum types to handle every " +
		"declared constant (escape: //lint:exhaustive-ok on the switch or its default)",
	Run:        run,
	FactTypes:  []analysis.Fact{(*EnumsFact)(nil)},
	Directives: []string{"exhaustive", "exhaustive-ok"},
}

func run(pass *analysis.Pass) error {
	local := collectEnums(pass)
	if len(local) > 0 {
		fact := &EnumsFact{Enums: make(map[string][]string, len(local))}
		for name, consts := range local {
			fact.Enums[name] = consts
		}
		pass.ExportPackageFact(fact)
	}

	// constantsOf resolves the declared constant set of a switch tag's
	// type: locally for enums of this package, via the package fact for
	// imported enums.
	constantsOf := func(t types.Type) (*types.Named, []string) {
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return nil, nil
		}
		if named.Obj().Pkg() == pass.Pkg {
			return named, local[named.Obj().Name()]
		}
		var fact EnumsFact
		if !pass.ImportPackageFact(named.Obj().Pkg(), &fact) {
			return nil, nil
		}
		return named, fact.Enums[named.Obj().Name()]
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.TypesInfo.Types[sw.Tag]
			if !ok || tv.Type == nil {
				return true
			}
			named, consts := constantsOf(tv.Type)
			if len(consts) == 0 {
				return true
			}
			checkSwitch(pass, sw, named, consts)
			return true
		})
	}
	return nil
}

// collectEnums finds the package's `//lint:exhaustive` named integer
// types and their constants, in declaration order.
func collectEnums(pass *analysis.Pass) map[string][]string {
	marked := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, ok := pass.DocDirective(gd.Doc, "exhaustive"); ok {
					marked[ts.Name.Name] = true
					continue
				}
				if _, ok := pass.DocDirective(ts.Doc, "exhaustive"); ok {
					marked[ts.Name.Name] = true
					continue
				}
				if _, ok := pass.DirectiveArgs(ts.Pos(), "exhaustive"); ok {
					marked[ts.Name.Name] = true
				}
			}
		}
	}
	if len(marked) == 0 {
		return nil
	}
	enums := make(map[string][]string, len(marked))
	// Walk const declarations in file order so the constant list is in
	// declaration order (scope iteration would alphabetize it).
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
					if !ok || obj.Type() == nil {
						continue
					}
					named, ok := obj.Type().(*types.Named)
					if !ok || named.Obj().Pkg() != pass.Pkg || !marked[named.Obj().Name()] {
						continue
					}
					enums[named.Obj().Name()] = append(enums[named.Obj().Name()], obj.Name())
				}
			}
		}
	}
	return enums
}

// checkSwitch verifies one switch over an annotated enum.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, named *types.Named, consts []string) {
	covered := make(map[string]bool)
	var deflt *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			e = ast.Unparen(e)
			var id *ast.Ident
			switch e := e.(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			default:
				continue
			}
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
				covered[c.Name()] = true
			}
		}
	}
	var missing []string
	for _, c := range consts {
		if !covered[c] {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	typeName := named.Obj().Name()
	if named.Obj().Pkg() != pass.Pkg {
		typeName = named.Obj().Pkg().Name() + "." + typeName
	}
	if deflt != nil {
		if args, ok := pass.DirectiveArgs(deflt.Pos(), "exhaustive-ok"); ok {
			if args == "" {
				pass.Reportf(deflt.Pos(), "//lint:exhaustive-ok needs a reason")
			}
			return
		}
	}
	if args, ok := pass.DirectiveArgs(sw.Pos(), "exhaustive-ok"); ok {
		if args == "" {
			pass.Reportf(sw.Pos(), "//lint:exhaustive-ok needs a reason")
		}
		return
	}
	if deflt != nil {
		pass.Reportf(deflt.Pos(), "default hides unhandled %s constants %s: add explicit cases or annotate //lint:exhaustive-ok <reason>",
			typeName, strings.Join(missing, ", "))
		return
	}
	pass.Reportf(sw.Pos(), "switch over %s does not handle %s: add the missing cases, a default, or //lint:exhaustive-ok <reason>",
		typeName, strings.Join(missing, ", "))
}
