// Fixture: switches over an enum imported from another package — the
// constant set arrives via the EnumsFact, since the annotation comment is
// invisible in export data.
package fleet

import "clumsy/internal/lint/exhaustive/testdata/src/clumsy/internal/cluster"

func assess(s cluster.NodeState) int {
	switch s { // want `switch over cluster.NodeState does not handle StateDead, StateSuspect: add the missing cases, a default, or //lint:exhaustive-ok <reason>`
	case cluster.StateHealthy, cluster.StateDegraded, cluster.StateDraining:
		return 0
	}
	return 1
}

func label(s cluster.NodeState) string {
	switch s {
	case cluster.StateHealthy:
		return "up"
	case cluster.StateSuspect, cluster.StateDegraded:
		return "wobbly"
	case cluster.StateDraining, cluster.StateDead:
		return "down"
	}
	return "?"
}
