// Fixture: the fleet health FSM enum and the switch shapes that occur in
// the real tree — missing arms, hiding defaults, excused defaults,
// guard-excused switches, and total switches.
package cluster

// NodeState is the health FSM state.
//
//lint:exhaustive
type NodeState int

const (
	StateHealthy NodeState = iota
	StateSuspect
	StateDegraded
	StateDraining
	StateDead
)

// bad forgets two states and has no default.
func bad(s NodeState) int {
	switch s { // want `switch over NodeState does not handle StateDead, StateDraining: add the missing cases, a default, or //lint:exhaustive-ok <reason>`
	case StateHealthy, StateSuspect:
		return 0
	case StateDegraded:
		return 1
	}
	return 2
}

// hidden papers over four states with a catch-all.
func hidden(s NodeState) int {
	switch s {
	case StateHealthy:
		return 0
	default: // want `default hides unhandled NodeState constants StateDead, StateDegraded, StateDraining, StateSuspect`
		return 1
	}
}

// excused is the deliberate-catch-all shape (String methods).
func excused(s NodeState) string {
	switch s {
	case StateHealthy:
		return "healthy"
	default: //lint:exhaustive-ok every non-healthy state renders as one label here
		return "unwell"
	}
}

// guarded is the control-flow-guarded shape: the switch is total given
// the guard above it, so the escape sits on the statement.
func guarded(s NodeState) int {
	if s == StateDead {
		return -1
	}
	//lint:exhaustive-ok StateDead is rejected by the guard above
	switch s {
	case StateHealthy, StateSuspect, StateDegraded, StateDraining:
		return int(s)
	}
	return 0
}

// reasonless escapes without saying why.
func reasonless(s NodeState) int {
	switch s {
	case StateHealthy:
		return 0
	//lint:exhaustive-ok
	default: // want `//lint:exhaustive-ok needs a reason`
		return 1
	}
}

// total handles every state: silent.
func total(s NodeState) bool {
	switch s {
	case StateHealthy, StateSuspect, StateDegraded:
		return true
	case StateDraining, StateDead:
		return false
	}
	return false
}
