// Package telemnames cross-checks every telemetry instrument and
// trace-event name in the tree against the registry table in
// internal/telemetry (names.go). A Counter or Histogram lookup whose name
// is a constant must use a registered name — misspelled or undocumented
// names are exactly the silent drift the registry exists to prevent (the
// stats subcommand, dashboards, and the CHANGES.md contract all read the
// same table). Non-constant names are flagged too, so dynamically built
// families stay auditable; a deliberate one (the per-cache-level family)
// carries `//lint:telemname-dynamic`.
//
// Inside internal/telemetry itself the analyzer additionally checks the
// event-type literals passed to (*RunTrace).begin, which is where every
// JSONL record type originates.
package telemnames

import (
	"go/ast"
	"go/constant"
	"go/types"

	"clumsy/internal/lint/analysis"
	"clumsy/internal/telemetry"
)

// Analyzer is the telemnames check.
var Analyzer = &analysis.Analyzer{
	Name: "telemnames",
	Doc: "require telemetry counter/histogram/event names to come from the " +
		"registry table in internal/telemetry (escape: //lint:telemname-dynamic)",
	Run:        run,
	Directives: []string{"telemname-dynamic"},
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, method := receiverOf(pass, sel)
			if recv == "" {
				return true
			}
			var kind telemetry.Kind
			switch {
			case recv == "Registry" && method == "Counter":
				kind = telemetry.KindCounter
			case recv == "Registry" && method == "Histogram":
				kind = telemetry.KindHistogram
			case recv == "RunTrace" && method == "begin":
				kind = telemetry.KindEvent
			default:
				return true
			}
			checkName(pass, call.Args[0], kind)
			return true
		})
	}
	return nil
}

// receiverOf resolves a method call's receiver type name and method name,
// restricted to methods of the internal/telemetry package.
func receiverOf(pass *analysis.Pass, sel *ast.SelectorExpr) (recv, method string) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", ""
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || !analysis.PathWithin(fn.Pkg().Path(), "internal/telemetry") {
		return "", ""
	}
	t := selection.Recv()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	return named.Obj().Name(), fn.Name()
}

// checkName validates one name argument against the registry table.
func checkName(pass *analysis.Pass, arg ast.Expr, kind telemetry.Kind) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		if !pass.DirectiveAt(arg.Pos(), "telemname-dynamic") {
			pass.Reportf(arg.Pos(),
				"non-constant telemetry %s name: use a registered constant from internal/telemetry/names.go "+
					"or mark the deliberate dynamic family with //lint:telemname-dynamic", kind)
		}
		return
	}
	name := constant.StringVal(tv.Value)
	if !telemetry.Registered(name, kind) {
		pass.Reportf(arg.Pos(),
			"unregistered telemetry %s name %q: add it to the registry table in internal/telemetry/names.go",
			kind, name)
	}
}
