package telemnames_test

import (
	"testing"

	"clumsy/internal/lint/analysistest"
	"clumsy/internal/lint/telemnames"
)

func TestTelemNames(t *testing.T) {
	analysistest.Run(t, telemnames.Analyzer, "clumsy/internal/observe")
}
