// Fixture: telemetry-name hygiene. Names must be constants from the
// registry table; misspellings, kind mismatches, and unmarked dynamic names
// are all rejected.
package observe

import "clumsy/internal/telemetry"

func instrument(reg *telemetry.Registry, dyn string) {
	reg.Counter(telemetry.CtrRunCount).Inc()      // registry constant: ok
	reg.Counter("run.count").Inc()                // raw literal, but registered: ok
	reg.Counter(telemetry.CtrCyclesCompute).Inc() // attribution-bucket constant: ok
	reg.Counter("run.cuont").Inc()                // want `unregistered telemetry counter name "run.cuont"`
	reg.Histogram(telemetry.HistPacketCycles).Observe(1)
	reg.Histogram("packet.cyc").Observe(1)                        // want `unregistered telemetry histogram name "packet.cyc"`
	reg.Histogram("run.count").Observe(1)                         // want `unregistered telemetry histogram name "run.count"`
	reg.Counter(dyn).Inc()                                        // want `non-constant telemetry counter name`
	reg.Counter(telemetry.CacheCounterName("l1d", "reads")).Inc() //lint:telemname-dynamic fixture
	reg.Counter(telemetry.CtrClusterArrivals).Inc()               // fleet counter constant: ok
	reg.Histogram(telemetry.HistClusterLatency).Observe(1)        // fleet histogram constant: ok
	reg.Counter("cluster.arrivles").Inc()                         // want `unregistered telemetry counter name "cluster.arrivles"`
	reg.Counter(telemetry.CtrServiceQueueRejections).Inc()        // clumsyd service counter constant: ok
	reg.Counter("service.queue_rejectons").Inc()                  // want `unregistered telemetry counter name "service.queue_rejectons"`
}
