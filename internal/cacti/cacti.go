// Package cacti implements a simplified analytic SRAM energy and timing
// model in the spirit of the enhanced access and cycle time model of Wilton
// and Jouppi (the CACTI model the paper uses to obtain full-frequency cache
// energies, Section 5.4).
//
// The model decomposes a cache access into decoder, wordline, bitline,
// sense-amplifier, tag-comparison, and output-driver stages. Each stage is
// assigned a switched capacitance derived from the array geometry; energy is
// C·Vdd² and delay is a fitted RC term per stage. Absolute accuracy is not
// the goal — the downstream experiments only consume per-access energies and
// their relative scaling — but the numbers come out in a realistic range for
// the 0.18 µm generation the paper targets (a few hundred pJ for a 4 KB L1,
// a few nJ for a 128 KB L2).
package cacti

import (
	"errors"
	"fmt"
	"math"
)

// Config describes an SRAM cache organisation.
type Config struct {
	SizeBytes int // total data capacity
	BlockSize int // line size in bytes
	Assoc     int // associativity (1 = direct mapped)
	TagBits   int // tag width per line
	Vdd       float64
	// Technology scales all capacitances; 1.0 corresponds to 0.18 µm.
	Technology float64
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0:
		return errors.New("cacti: non-positive cache size")
	case c.BlockSize <= 0:
		return errors.New("cacti: non-positive block size")
	case c.Assoc <= 0:
		return errors.New("cacti: non-positive associativity")
	case c.SizeBytes%(c.BlockSize*c.Assoc) != 0:
		return fmt.Errorf("cacti: size %d not divisible by block*assoc %d", c.SizeBytes, c.BlockSize*c.Assoc)
	case c.TagBits < 0:
		return errors.New("cacti: negative tag bits")
	case c.Vdd <= 0:
		return errors.New("cacti: non-positive Vdd")
	case c.Technology <= 0:
		return errors.New("cacti: non-positive technology scale")
	}
	if s := c.Sets(); s&(s-1) != 0 {
		return fmt.Errorf("cacti: set count %d is not a power of two", s)
	}
	return nil
}

// Sets returns the number of cache sets.
func (c Config) Sets() int { return c.SizeBytes / (c.BlockSize * c.Assoc) }

// Rows returns the number of wordlines in the data array (one row per set;
// ways are laid out horizontally, a common organisation for small caches).
func (c Config) Rows() int { return c.Sets() }

// DataBitsPerRow returns the number of data bit columns in a row.
func (c Config) DataBitsPerRow() int { return c.BlockSize * 8 * c.Assoc }

// Per-unit capacitances for the reference 0.18 µm technology, in
// femtofarads. These are fitted constants, not extracted layout values;
// they are calibrated so that the 4 KB L1 lands near 1.2 nJ per read —
// the figure implied by combining Montanaro's whole-chip power (0.5 W at
// 160 MHz) with Phelan's 16 % L1-data-cache share at the observed access
// rate (see the cross-validation tests in internal/energy).
const (
	cDecodePerRow   = 40.0   // decoder predecode+drive per row, fF
	cWordlinePerBit = 36.0   // wordline capacitance per attached cell, fF
	cBitlinePerRow  = 38.0   // bitline capacitance per cell on the column, fF
	cSenseAmp       = 2200.0 // per activated sense amplifier, fF
	cTagCompare     = 1100.0 // per tag bit comparator, fF
	cOutputPerBit   = 560.0  // output driver per delivered data bit, fF
)

// Result carries the derived per-access figures of the model.
type Result struct {
	ReadEnergy  float64 // joules per read access
	WriteEnergy float64 // joules per write access
	AccessTime  float64 // seconds (full-swing operation)
}

// Model evaluates the analytic model for the configuration.
func Model(c Config) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	rows := float64(c.Rows())
	bitsPerRow := float64(c.DataBitsPerRow())
	wordBits := 64.0 // bits delivered per access (critical word + tag path)
	if bw := float64(c.BlockSize * 8); bw < wordBits {
		wordBits = bw
	}

	fF := 1e-15 * c.Technology
	e := func(cap float64) float64 { return cap * fF * c.Vdd * c.Vdd }

	// A read cycles: decoder, one wordline, every bitline column swings
	// (reduced-swing sensing is folded into the fitted constant), sense
	// amps on the accessed word of each way, tag compare, output drive.
	decode := e(cDecodePerRow * rows)
	wordline := e(cWordlinePerBit * bitsPerRow)
	bitline := e(cBitlinePerRow * rows * bitsPerRow / 8) // column mux of 8
	sense := e(cSenseAmp * wordBits * float64(c.Assoc))
	tag := e(cTagCompare * float64(c.TagBits*c.Assoc))
	output := e(cOutputPerBit * wordBits)

	read := decode + wordline + bitline + sense + tag + output
	// Writes drive full-swing bitlines on the written word but skip sense
	// amps and output drivers.
	write := decode + wordline + bitline*1.35 + tag + e(cOutputPerBit*wordBits*0.4)

	// Delay: fitted RC stages. τ0 is the technology time constant,
	// calibrated so a 4 KB array reads in ~1.2 ns — comfortably inside
	// the simulator's 2-cycle L1 latency at StrongARM clock rates, which
	// is the very margin the paper over-clocks into.
	const tau0 = 260e-12                      // seconds
	delay := tau0 * (2.2*math.Log2(rows)/10 + // decode
		1.1*bitsPerRow/1024 + // wordline RC
		1.6*rows/256 + // bitline discharge
		2.0) // sense + drive
	return Result{ReadEnergy: read, WriteEnergy: write, AccessTime: delay}, nil
}

// MustModel is Model for known-good configurations; it panics on error.
// It is intended for package-level defaults.
func MustModel(c Config) Result {
	r, err := Model(c)
	if err != nil {
		panic(err)
	}
	return r
}

// StrongARMCaches returns the three cache configurations of the simulated
// processor (Section 5.1): 4 KB direct-mapped L1 data and instruction
// caches with 32-byte lines, and a 128 KB 4-way unified L2 with 128-byte
// lines, in that order.
func StrongARMCaches() (l1d, l1i, l2 Config) {
	l1 := Config{SizeBytes: 4096, BlockSize: 32, Assoc: 1, TagBits: 20, Vdd: 1.8, Technology: 1}
	l2c := Config{SizeBytes: 128 * 1024, BlockSize: 128, Assoc: 4, TagBits: 17, Vdd: 1.8, Technology: 1}
	return l1, l1, l2c
}
