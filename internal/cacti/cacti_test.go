package cacti

import (
	"testing"
	"testing/quick"
)

func TestStrongARMConfigsValid(t *testing.T) {
	l1d, l1i, l2 := StrongARMCaches()
	for _, c := range []Config{l1d, l1i, l2} {
		if err := c.Validate(); err != nil {
			t.Errorf("config %+v invalid: %v", c, err)
		}
	}
	if l1d.Sets() != 128 {
		t.Errorf("L1 sets = %d, want 128 (4KB / 32B direct-mapped)", l1d.Sets())
	}
	if l2.Sets() != 256 {
		t.Errorf("L2 sets = %d, want 256 (128KB / (128B * 4-way))", l2.Sets())
	}
}

func TestModelEnergyRanges(t *testing.T) {
	l1d, _, l2 := StrongARMCaches()
	r1 := MustModel(l1d)
	r2 := MustModel(l2)
	// Plausibility bands for 0.18um-class arrays.
	if r1.ReadEnergy < 50e-12 || r1.ReadEnergy > 2e-9 {
		t.Errorf("L1 read energy %.3g J outside plausible band", r1.ReadEnergy)
	}
	if r2.ReadEnergy < 500e-12 || r2.ReadEnergy > 20e-9 {
		t.Errorf("L2 read energy %.3g J outside plausible band", r2.ReadEnergy)
	}
	if r2.ReadEnergy < 3*r1.ReadEnergy {
		t.Errorf("L2 access (%.3g) should cost several times L1 (%.3g)", r2.ReadEnergy, r1.ReadEnergy)
	}
	if r1.WriteEnergy <= 0 || r2.WriteEnergy <= 0 {
		t.Error("write energies must be positive")
	}
	if r1.AccessTime <= 0 || r2.AccessTime <= r1.AccessTime {
		t.Errorf("access times implausible: L1 %.3g, L2 %.3g", r1.AccessTime, r2.AccessTime)
	}
}

func TestModelScalesWithSize(t *testing.T) {
	base := Config{SizeBytes: 4096, BlockSize: 32, Assoc: 1, TagBits: 20, Vdd: 1.8, Technology: 1}
	big := base
	big.SizeBytes = 64 * 1024
	rb := MustModel(base)
	rg := MustModel(big)
	if rg.ReadEnergy <= rb.ReadEnergy {
		t.Error("larger cache should cost more energy per access")
	}
	if rg.AccessTime <= rb.AccessTime {
		t.Error("larger cache should be slower")
	}
}

func TestModelScalesWithVdd(t *testing.T) {
	c := Config{SizeBytes: 4096, BlockSize: 32, Assoc: 1, TagBits: 20, Vdd: 1.8, Technology: 1}
	low := c
	low.Vdd = 0.9
	rh := MustModel(c)
	rl := MustModel(low)
	ratio := rh.ReadEnergy / rl.ReadEnergy
	if ratio < 3.9 || ratio > 4.1 { // E ~ Vdd^2, (1.8/0.9)^2 = 4
		t.Errorf("Vdd scaling ratio = %v, want ~4", ratio)
	}
}

func TestValidateRejections(t *testing.T) {
	good := Config{SizeBytes: 4096, BlockSize: 32, Assoc: 1, TagBits: 20, Vdd: 1.8, Technology: 1}
	mutations := []func(*Config){
		func(c *Config) { c.SizeBytes = 0 },
		func(c *Config) { c.BlockSize = 0 },
		func(c *Config) { c.Assoc = 0 },
		func(c *Config) { c.SizeBytes = 5000 }, // not divisible
		func(c *Config) { c.TagBits = -1 },
		func(c *Config) { c.Vdd = 0 },
		func(c *Config) { c.Technology = 0 },
		func(c *Config) { c.SizeBytes = 96 * 32 }, // 96 sets: not a power of two
	}
	for i, m := range mutations {
		c := good
		m(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error for %+v", i, c)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestModelReturnsErrorNotPanic(t *testing.T) {
	_, err := Model(Config{})
	if err == nil {
		t.Fatal("Model of zero config should fail")
	}
}

func TestMustModelPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustModel should panic on invalid config")
		}
	}()
	MustModel(Config{})
}

func TestEnergyPositiveProperty(t *testing.T) {
	f := func(sizeExp, blockExp uint8) bool {
		size := 1 << (10 + sizeExp%8)  // 1KB..128KB
		block := 1 << (4 + blockExp%4) // 16..128B
		c := Config{SizeBytes: size, BlockSize: block, Assoc: 1, TagBits: 20, Vdd: 1.8, Technology: 1}
		if c.Validate() != nil {
			return true // skip inconsistent combinations
		}
		r, err := Model(c)
		if err != nil {
			return false
		}
		return r.ReadEnergy > 0 && r.WriteEnergy > 0 && r.AccessTime > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
