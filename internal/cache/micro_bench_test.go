package cache

import (
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

// Micro-benchmarks of the simulator's hot paths. The experiment campaigns
// spend almost all of their time in L1D accesses, so these are the numbers
// that govern how many packets a laptop can simulate per second.

func benchHierarchy(b *testing.B, det Detection, scale float64) *Hierarchy {
	b.Helper()
	space := simmem.NewSpace(1 << 22)
	m := fault.NewModel(scale)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	h, err := NewHierarchy(space, inj, det, 2)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkL1DHitNoDetection(b *testing.B) {
	h := benchHierarchy(b, DetectionNone, 1)
	a := h.Space.MustAlloc(64, 32)
	if err := h.L1D.Store32(a, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.L1D.Load32(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkL1DHitParity(b *testing.B) {
	h := benchHierarchy(b, DetectionParity, 1)
	a := h.Space.MustAlloc(64, 32)
	if err := h.L1D.Store32(a, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.L1D.Load32(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkL1DHitECC(b *testing.B) {
	h := benchHierarchy(b, DetectionECC, 1)
	a := h.Space.MustAlloc(64, 32)
	if err := h.L1D.Store32(a, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.L1D.Load32(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkL1DMissStream(b *testing.B) {
	h := benchHierarchy(b, DetectionParity, 1)
	base := h.Space.MustAlloc(1<<20, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Stride through 1 MiB: every fourth access misses the L1.
		addr := base + simmem.Addr(i*32)%(1<<20)
		if _, err := h.L1D.Load32(addr &^ 3); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDisabledTelemetryNoAllocsOnAccess asserts that with no telemetry
// installed (the default), the L1D access hot path allocates nothing —
// the guarantee behind the "disabled telemetry costs one predictable
// branch" claim. Guarded by AllocsPerRun rather than a benchmark so a
// regression fails the suite instead of silently shifting a number.
func TestDisabledTelemetryNoAllocsOnAccess(t *testing.T) {
	for _, det := range []Detection{DetectionNone, DetectionParity, DetectionECC} {
		h := benchHierarchyT(t, det, 1)
		a := h.Space.MustAlloc(64, 32)
		if err := h.L1D.Store32(a, 1); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(1000, func() {
			if _, err := h.L1D.Load32(a); err != nil {
				t.Fatal(err)
			}
			if err := h.L1D.Store32(a, 2); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%v: L1D access allocated %.1f times per op with telemetry off, want 0", det, allocs)
		}
	}
}

func benchHierarchyT(t *testing.T, det Detection, scale float64) *Hierarchy {
	t.Helper()
	space := simmem.NewSpace(1 << 22)
	m := fault.NewModel(scale)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	h, err := NewHierarchy(space, inj, det, 2)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func BenchmarkL1DStore(b *testing.B) {
	h := benchHierarchy(b, DetectionParity, 1)
	a := h.Space.MustAlloc(64, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.L1D.Store32(a, uint32(i)); err != nil {
			b.Fatal(err)
		}
	}
}
