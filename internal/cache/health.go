package cache

// HealthEvidence is a non-destructive snapshot of the L1D's recovery-ladder
// state, exported for fleet-level health assessment. Unlike
// TakeEpochEvidence — which the frequency controller consumes at epoch
// boundaries and which resets the per-epoch strike tracking — reading
// health evidence never perturbs the ladder, so a dispatcher polling node
// health cannot change simulated behaviour.
type HealthEvidence struct {
	DisabledLines    int     // frames currently dead
	DisabledFraction float64 // fraction of L1D capacity dead
	PendingLines     int     // distinct frames struck in the open epoch (not yet consumed)
	CycleTime        float64 // current relative cycle time
}

// Health returns the current ladder evidence without consuming it.
func (c *L1Data) Health() HealthEvidence {
	return HealthEvidence{
		DisabledLines:    c.deadLines,
		DisabledFraction: c.DisabledFraction(),
		PendingLines:     c.epochDistinct,
		CycleTime:        c.cr,
	}
}
