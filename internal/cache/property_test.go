package cache

import (
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

// TestHierarchyMatchesReferenceMemory drives long random operation
// sequences through the full fault-free hierarchy and through a flat
// reference memory, and demands bit-identical results — the fundamental
// correctness property of the cache simulator (write-back, write-allocate,
// eviction, multi-level inclusion, parity bookkeeping, sub-word
// read-modify-write).
func TestHierarchyMatchesReferenceMemory(t *testing.T) {
	for _, det := range []Detection{DetectionNone, DetectionParity, DetectionECC} {
		det := det
		t.Run(det.String(), func(t *testing.T) {
			t.Parallel()
			space := simmem.NewSpace(1 << 20)
			ref := simmem.NewSpace(1 << 20)
			m := fault.NewModel(1)
			inj := fault.NewInjector(m, fault.NewRNG(1), 32)
			inj.SetEnabled(false)
			h, err := NewHierarchy(space, inj, det, 2)
			if err != nil {
				t.Fatal(err)
			}
			// A working set deliberately larger than the L1 and
			// overlapping L2 sets, to force evictions and refills.
			base := space.MustAlloc(64*1024, 64)
			if _, err := ref.Alloc(64*1024, 64); err != nil {
				t.Fatal(err)
			}

			rng := fault.NewRNG(99)
			for op := 0; op < 200000; op++ {
				addr := base + simmem.Addr(rng.Intn(64*1024-8))
				switch rng.Intn(6) {
				case 0:
					v := rng.Uint32()
					if err := h.L1D.Store32(addr, v); err != nil {
						t.Fatal(err)
					}
					if err := ref.Store32(addr, v); err != nil {
						t.Fatal(err)
					}
				case 1:
					a, errA := h.L1D.Load32(addr)
					b, errB := ref.Load32(addr)
					if errA != nil || errB != nil {
						t.Fatalf("op %d: load errors %v %v", op, errA, errB)
					}
					if a != b {
						t.Fatalf("op %d: Load32(%#x) = %#x, ref %#x", op, addr, a, b)
					}
				case 2:
					v := uint16(rng.Uint32())
					if err := h.L1D.Store16(addr, v); err != nil {
						t.Fatal(err)
					}
					if err := ref.Store16(addr, v); err != nil {
						t.Fatal(err)
					}
				case 3:
					a, _ := h.L1D.Load16(addr)
					b, _ := ref.Load16(addr)
					if a != b {
						t.Fatalf("op %d: Load16(%#x) = %#x, ref %#x", op, addr, a, b)
					}
				case 4:
					v := uint8(rng.Uint32())
					if err := h.L1D.Store8(addr, v); err != nil {
						t.Fatal(err)
					}
					if err := ref.Store8(addr, v); err != nil {
						t.Fatal(err)
					}
				case 5:
					a, _ := h.L1D.Load8(addr)
					b, _ := ref.Load8(addr)
					if a != b {
						t.Fatalf("op %d: Load8(%#x) = %#x, ref %#x", op, addr, a, b)
					}
				}
			}
			// Final sweep: every byte of the working set agrees after all
			// the dirty lines are flushed.
			h.L1D.InvalidateAllWriteback(t)
			l2buf := make([]byte, 64*1024)
			if _, err := h.L2.FetchLine(base, l2buf); err != nil {
				t.Fatal(err)
			}
			for off := 0; off < 64*1024; off++ {
				want, _ := ref.Load8(base + simmem.Addr(off))
				if l2buf[off] != want {
					t.Fatalf("final state differs at offset %d: %#x vs %#x", off, l2buf[off], want)
				}
			}
		})
	}
}
