package cache

import (
	"testing"
	"testing/quick"

	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

// newHierarchy builds a hierarchy with the given fault scale for tests.
func newTestHierarchy(t *testing.T, scale float64, det Detection, strikes int) *Hierarchy {
	t.Helper()
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(scale)
	inj := fault.NewInjector(m, fault.NewRNG(1234), 32)
	h, err := NewHierarchy(space, inj, det, strikes)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// quiet returns a hierarchy whose injector effectively never fires.
func quiet(t *testing.T) *Hierarchy {
	t.Helper()
	return newTestHierarchy(t, 1e-9, DetectionNone, 1)
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{},
		{SizeBytes: 4096, BlockSize: 30, Assoc: 1}, // not word multiple
		{SizeBytes: 4096, BlockSize: 24, Assoc: 1}, // word multiple, not pow2
		{SizeBytes: 5000, BlockSize: 32, Assoc: 1}, // not divisible
		{SizeBytes: 4096, BlockSize: 32, Assoc: 1, Latency: -1},
		{SizeBytes: 96 * 32, BlockSize: 32, Assoc: 1}, // 96 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid: %+v", i, c)
		}
	}
	if err := DefaultL1D.Validate(); err != nil {
		t.Errorf("default L1D invalid: %v", err)
	}
	if err := DefaultL2.Validate(); err != nil {
		t.Errorf("default L2 invalid: %v", err)
	}
}

func TestWordParity(t *testing.T) {
	cases := []struct {
		v    uint32
		want byte
	}{
		{0, 0}, {1, 1}, {3, 0}, {7, 1}, {0xffffffff, 0}, {0x80000000, 1},
	}
	for _, c := range cases {
		if got := wordParity(c.v); got != c.want {
			t.Errorf("wordParity(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
	// XOR-ing one bit always flips parity.
	f := func(v uint32, bit uint8) bool {
		b := uint32(1) << (bit % 32)
		return wordParity(v) != wordParity(v^b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadWriteThroughHierarchy(t *testing.T) {
	h := quiet(t)
	a := h.Space.MustAlloc(4096, 4)
	for i := uint32(0); i < 64; i++ {
		if err := h.L1D.Store32(a+simmem.Addr(i*4), i*0x01010101); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint32(0); i < 64; i++ {
		v, err := h.L1D.Load32(a + simmem.Addr(i*4))
		if err != nil || v != i*0x01010101 {
			t.Fatalf("word %d = %#x, %v", i, v, err)
		}
	}
}

func TestSubWordAccesses(t *testing.T) {
	h := quiet(t)
	a := h.Space.MustAlloc(64, 4)
	if err := h.L1D.Store32(a, 0x44332211); err != nil {
		t.Fatal(err)
	}
	b, err := h.L1D.Load8(a + 2)
	if err != nil || b != 0x33 {
		t.Fatalf("Load8 = %#x, %v", b, err)
	}
	if err := h.L1D.Store8(a+3, 0xaa); err != nil {
		t.Fatal(err)
	}
	w, _ := h.L1D.Load32(a)
	if w != 0xaa332211 {
		t.Fatalf("after Store8: %#x", w)
	}
	hw, err := h.L1D.Load16(a + 2)
	if err != nil || hw != 0xaa33 {
		t.Fatalf("Load16 = %#x, %v", hw, err)
	}
	if err := h.L1D.Store16(a, 0xbeef); err != nil {
		t.Fatal(err)
	}
	w, _ = h.L1D.Load32(a)
	if w != 0xaa33beef {
		t.Fatalf("after Store16: %#x", w)
	}
}

func TestMissAndHitAccounting(t *testing.T) {
	h := quiet(t)
	a := h.Space.MustAlloc(4096, 32)
	// First touch of a line misses; the second hits.
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	if h.L1D.Stats.ReadMisses != 1 {
		t.Fatalf("read misses = %d, want 1", h.L1D.Stats.ReadMisses)
	}
	before := h.L1D.Cycles
	if _, err := h.L1D.Load32(a + 4); err != nil {
		t.Fatal(err)
	}
	if h.L1D.Stats.ReadMisses != 1 {
		t.Fatalf("second access same line should hit, misses = %d", h.L1D.Stats.ReadMisses)
	}
	hitCost := h.L1D.Cycles - before
	if hitCost != DefaultL1D.Latency {
		t.Fatalf("hit cost = %v cycles, want %v", hitCost, DefaultL1D.Latency)
	}
}

func TestEvictionWritesBack(t *testing.T) {
	h := quiet(t)
	// 4KB direct-mapped: addresses 4096 apart collide.
	a := h.Space.MustAlloc(4096, 4096)
	b := h.Space.MustAlloc(4096, 4096)
	if err := h.L1D.Store32(a, 0x1111); err != nil {
		t.Fatal(err)
	}
	if err := h.L1D.Store32(b, 0x2222); err != nil { // evicts dirty line a
		t.Fatal(err)
	}
	if h.L1D.Stats.Writebacks == 0 {
		t.Fatal("dirty eviction should write back")
	}
	// Value a survives the round trip through L2.
	v, err := h.L1D.Load32(a)
	if err != nil || v != 0x1111 {
		t.Fatalf("after eviction, a = %#x, %v", v, err)
	}
}

func TestCycleTimeScalesLatency(t *testing.T) {
	h := quiet(t)
	a := h.Space.MustAlloc(64, 4)
	if _, err := h.L1D.Load32(a); err != nil { // fill
		t.Fatal(err)
	}
	measure := func(cr float64) float64 {
		h.L1D.SetCycleTime(cr)
		before := h.L1D.Cycles
		if _, err := h.L1D.Load32(a); err != nil {
			t.Fatal(err)
		}
		return h.L1D.Cycles - before
	}
	full := measure(1)
	half := measure(0.5)
	if half >= full {
		t.Fatalf("hit at Cr=0.5 costs %v, full %v: over-clocking must shrink latency", half, full)
	}
	if half != full/2 {
		t.Fatalf("hit cost should scale linearly: %v vs %v", half, full)
	}
}

func TestEnergyWeightsScaleWithSwing(t *testing.T) {
	h := quiet(t)
	a := h.Space.MustAlloc(64, 4)
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	h.L1D.Energy = EnergyWeights{}
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	atFull := h.L1D.Energy.ReadSwing
	h.L1D.SetCycleTime(0.25)
	h.L1D.Energy = EnergyWeights{}
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	atQuarter := h.L1D.Energy.ReadSwing
	if atQuarter >= atFull {
		t.Fatal("per-access energy weight must shrink with the swing")
	}
	if atQuarter > 0.6*atFull || atQuarter < 0.4*atFull {
		t.Fatalf("swing weight at Cr=0.25 = %v of full, want ~0.53 (45%% reduction band)", atQuarter/atFull)
	}
}

func TestBadAddressesTrap(t *testing.T) {
	h := quiet(t)
	if _, err := h.L1D.Load32(4); err == nil {
		t.Error("null-page load should trap")
	}
	if _, err := h.L1D.Load32(simmem.PageBase + 2); err != nil {
		t.Error("misaligned load should align down, not trap")
	}
	if err := h.L1D.Store32(1<<20+64, 1); err == nil {
		t.Error("out-of-range store should trap")
	}
}

func TestL2SharedBetweenL1s(t *testing.T) {
	h := quiet(t)
	code := h.Space.MustAlloc(8192, 128)
	if err := h.L1I.Fetch(code); err != nil {
		t.Fatal(err)
	}
	if h.L1I.Stats.ReadMisses != 1 {
		t.Fatalf("first fetch should miss, got %d", h.L1I.Stats.ReadMisses)
	}
	if err := h.L1I.Fetch(code + 4); err != nil {
		t.Fatal(err)
	}
	if h.L1I.Stats.ReadMisses != 1 {
		t.Fatal("second fetch in line should hit")
	}
	// The I-miss landed in the unified L2.
	if h.L2.Stats.Reads == 0 {
		t.Fatal("instruction miss should reach the unified L2")
	}
}

func TestHierarchyInvalidateAll(t *testing.T) {
	h := quiet(t)
	a := h.Space.MustAlloc(64, 4)
	if err := h.L1D.Store32(a, 42); err != nil {
		t.Fatal(err)
	}
	h.InvalidateAll()
	// Dirty data dropped without write-back: backing store still zero.
	v, err := h.Space.Load32(a)
	if err != nil || v != 0 {
		t.Fatalf("backing store after invalidate = %v, %v", v, err)
	}
	misses := h.L1D.Stats.ReadMisses
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	if h.L1D.Stats.ReadMisses != misses+1 {
		t.Fatal("access after invalidate should miss")
	}
}

func TestAccessorGetters(t *testing.T) {
	h := quiet(t)
	if h.L1D.CycleTime() != 1 {
		t.Fatalf("CycleTime = %v", h.L1D.CycleTime())
	}
	if h.L1D.Detection() != DetectionNone {
		t.Fatalf("Detection = %v", h.L1D.Detection())
	}
	if h.L1D.Strikes() != 1 {
		t.Fatalf("Strikes = %v", h.L1D.Strikes())
	}
	if h.StallCycles() != 0 {
		t.Fatalf("fresh hierarchy stalls = %v", h.StallCycles())
	}
	a := h.Space.MustAlloc(64, 4)
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	if h.StallCycles() <= 0 {
		t.Fatal("stall cycles should accumulate after a miss")
	}
	s := h.L1D.Stats
	if s.Accesses() != 1 {
		t.Fatalf("accesses = %d", s.Accesses())
	}
	if s.MissRate() != 1 {
		t.Fatalf("miss rate = %v, want 1 (single cold miss)", s.MissRate())
	}
	var empty Stats
	if empty.MissRate() != 0 {
		t.Fatal("empty stats should report zero miss rate")
	}
}

func TestSubWordErrorPropagation(t *testing.T) {
	// Accesses beyond the end of the space must fail through every width.
	h := quiet(t)
	end := simmem.Addr(h.Space.Size())
	if _, err := h.L1D.Load8(end + 4); err == nil {
		t.Error("Load8 past end accepted")
	}
	if err := h.L1D.Store8(end+4, 1); err == nil {
		t.Error("Store8 past end accepted")
	}
	if _, err := h.L1D.Load16(end + 4); err == nil {
		t.Error("Load16 past end accepted")
	}
	if err := h.L1D.Store16(end+4, 1); err == nil {
		t.Error("Store16 past end accepted")
	}
	if err := h.L1D.Store32(2, 1); err == nil {
		t.Error("Store32 into null page accepted")
	}
}

func TestNewHierarchyWithBadConfig(t *testing.T) {
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	bad := HierarchyConfig{L1D: Config{SizeBytes: 5000, BlockSize: 32, Assoc: 1}}
	if _, err := NewHierarchyWith(space, inj, DetectionNone, 1, bad); err == nil {
		t.Fatal("invalid L1D geometry accepted")
	}
	bad = HierarchyConfig{L2: Config{SizeBytes: 5000, BlockSize: 128, Assoc: 4}}
	if _, err := NewHierarchyWith(space, inj, DetectionNone, 1, bad); err == nil {
		t.Fatal("invalid L2 geometry accepted")
	}
}
