package cache

import (
	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

// StrongARM-110-like hierarchy parameters (Section 5.1).
var (
	// DefaultL1D: 4 KB direct-mapped, 32-byte lines, 2-cycle latency.
	DefaultL1D = Config{SizeBytes: 4096, BlockSize: 32, Assoc: 1, Latency: 2}
	// DefaultL1I matches the L1 data cache organisation.
	DefaultL1I = Config{SizeBytes: 4096, BlockSize: 32, Assoc: 1, Latency: 2}
	// DefaultL2: 128 KB 4-way, 128-byte lines, 15-cycle latency.
	DefaultL2 = Config{SizeBytes: 128 * 1024, BlockSize: 128, Assoc: 4, Latency: 15}
	// DefaultMemoryLatency is the line-transfer latency of main memory.
	DefaultMemoryLatency = 80.0
)

// Hierarchy bundles the full simulated memory system.
//
//lint:checkpoint Snapshot, RestoreSnapshot
type Hierarchy struct {
	//lint:ephemeral rolled back separately through its own simmem.Checkpoint
	Space *simmem.Space
	//lint:ephemeral holds no restorable state of its own: its contents are the Space
	Mem *MainMemory
	L2  *L2
	L1D *L1Data
	L1I *L1Instr
}

// HierarchyConfig describes a full memory system; zero-valued fields fall
// back to the StrongARM defaults.
type HierarchyConfig struct {
	L1D        Config
	L1I        Config
	L2         Config
	MemLatency float64
}

func (hc HierarchyConfig) withDefaults() HierarchyConfig {
	if hc.L1D == (Config{}) {
		hc.L1D = DefaultL1D
	}
	if hc.L1I == (Config{}) {
		hc.L1I = DefaultL1I
	}
	if hc.L2 == (Config{}) {
		hc.L2 = DefaultL2
	}
	if hc.MemLatency == 0 {
		hc.MemLatency = DefaultMemoryLatency
	}
	return hc
}

// NewHierarchy assembles the default StrongARM-like hierarchy over space,
// with the given fault process, detection scheme and strike count on the
// L1 data cache.
func NewHierarchy(space *simmem.Space, inj fault.Process, det Detection, strikes int) (*Hierarchy, error) {
	return NewHierarchyWith(space, inj, det, strikes, HierarchyConfig{})
}

// NewHierarchyWith assembles a hierarchy with explicit cache geometries
// (used by the geometry ablation experiments).
func NewHierarchyWith(space *simmem.Space, inj fault.Process, det Detection, strikes int, hc HierarchyConfig) (*Hierarchy, error) {
	hc = hc.withDefaults()
	mem := NewMainMemory(space, hc.MemLatency)
	l2, err := NewL2(hc.L2, mem)
	if err != nil {
		return nil, err
	}
	l1d, err := NewL1Data(hc.L1D, l2, inj, det, strikes)
	if err != nil {
		return nil, err
	}
	l1i, err := NewL1Instr(hc.L1I, l2)
	if err != nil {
		return nil, err
	}
	// The L1D samples the memory's cycle accumulator around its backend
	// calls to split stall attribution into L2 and memory buckets.
	l1d.AttachMemory(mem)
	return &Hierarchy{Space: space, Mem: mem, L2: l2, L1D: l1d, L1I: l1i}, nil
}

// StallCycles returns the total memory stall cycles accumulated so far.
func (h *Hierarchy) StallCycles() float64 { return h.L1D.Cycles + h.L1I.Cycles }

// DMA writes data into the backing store at addr the way a NIC's DMA
// engine would, invalidating any stale cached copies of the range. (The
// range is normally uncached, but a wild read through a fault-corrupted
// pointer may have pulled arbitrary lines into the hierarchy.)
func (h *Hierarchy) DMA(addr simmem.Addr, data []byte) error {
	if err := h.Space.WriteBlock(addr, data); err != nil {
		return err
	}
	h.L1D.InvalidateRange(addr, len(data))
	h.L2.InvalidateRange(addr, len(data))
	return nil
}

// CoherentDMA is DMA with the write-back half of coherence: dirty cached
// lines overlapping the range are flushed to the backing store before the
// DMA data lands and the stale copies are invalidated. Plain DMA may
// discard unwritten stores that share a cache line with the target range;
// the state-repair ladder uses this variant so rewriting one flow record
// cannot silently revert its line neighbours to stale memory images. The
// L2 flushes before the L1D: the L1 holds the newest copy of any doubly
// dirty line, so its bytes must land last.
func (h *Hierarchy) CoherentDMA(addr simmem.Addr, data []byte) error {
	if err := h.L2.FlushRange(addr, len(data), h.Space.WriteBlock); err != nil {
		return err
	}
	if err := h.L1D.FlushRange(addr, len(data), h.Space.WriteBlock); err != nil {
		return err
	}
	return h.DMA(addr, data)
}

// Snapshot is a deep copy of the restorable state of every cache level —
// line payloads, tags, valid/dirty bits, parity/ECC check bits, and LRU
// order. Together with a simmem.Checkpoint of the backing space it captures
// the complete architectural memory state of the machine; statistics and
// energy accounting are excluded (a rollback rewinds contents, not
// measurements). Snapshots must be restored into the hierarchy they were
// taken from.
type Snapshot struct {
	l1d, l1i, l2 *tableSnap
}

// Snapshot copies the current cache state into snap, reusing its buffers
// when possible; pass nil to allocate a fresh one. Taking a snapshot has no
// architectural effect — no accesses, write-backs, stats, or energy.
//
//lint:hot-path
func (h *Hierarchy) Snapshot(snap *Snapshot) *Snapshot {
	if snap == nil {
		snap = &Snapshot{} //lint:alloc-ok first use only; the steady state reuses these buffers and the zero-alloc pin verifies it
	}
	snap.l1d = h.L1D.tab.snapshot(snap.l1d)
	snap.l1i = h.L1I.tab.snapshot(snap.l1i)
	snap.l2 = h.L2.tab.snapshot(snap.l2)
	return snap
}

// RestoreSnapshot copies a snapshot back into the hierarchy. Afterwards
// every level holds exactly the lines it held at the snapshot moment, so a
// continuation reads the same values — including the same hit/miss and
// write-back behaviour — as an execution that never deviated after it.
//
//lint:hot-path
func (h *Hierarchy) RestoreSnapshot(snap *Snapshot) {
	h.L1D.tab.restore(snap.l1d)
	h.L1I.tab.restore(snap.l1i)
	h.L2.tab.restore(snap.l2)
	h.L1D.syncDisabled()
}

// InvalidateAll flushes every level without write-back.
func (h *Hierarchy) InvalidateAll() {
	h.L1D.InvalidateAll()
	h.L1I.InvalidateAll()
	h.L2.InvalidateAll()
}
