// Package cache implements the simulated memory hierarchy of the clumsy
// packet processor: a frequency-scaled, fault-injected L1 data cache with
// optional per-word parity and k-strike recovery, a conventional L1
// instruction cache, a shared unified L2, and a fixed-latency memory — the
// configuration of Section 5.1 (StrongARM-110-like: 4 KB direct-mapped L1s
// with 32-byte lines and 2-cycle latency, 128 KB 4-way L2 with 128-byte
// lines and 15-cycle latency).
//
// Only the L1 data cache is over-clocked: faults are injected on its read
// and write paths, its access latency shrinks proportionally to the relative
// cycle time Cr, and its per-access energy shrinks with the voltage swing.
// The L2 is assumed correct unless an incorrect value is written back to it
// from L1 (Section 4).
package cache

import (
	"errors"
	"fmt"

	"clumsy/internal/simmem"
)

// Config describes one cache level.
type Config struct {
	SizeBytes int
	BlockSize int
	Assoc     int
	// Latency is the access latency in core cycles at full-swing operation.
	Latency float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.BlockSize <= 0 || c.Assoc <= 0:
		return errors.New("cache: non-positive geometry")
	case c.BlockSize%4 != 0:
		return errors.New("cache: block size must be a multiple of the 32-bit word")
	case c.BlockSize&(c.BlockSize-1) != 0:
		return errors.New("cache: block size must be a power of two")
	case c.SizeBytes%(c.BlockSize*c.Assoc) != 0:
		return fmt.Errorf("cache: size %d not divisible by block*assoc", c.SizeBytes)
	case c.Latency < 0:
		return errors.New("cache: negative latency")
	}
	sets := c.SizeBytes / (c.BlockSize * c.Assoc)
	if sets&(sets-1) != 0 {
		return errors.New("cache: set count must be a power of two")
	}
	return nil
}

// Stats aggregates the events of one cache level.
type Stats struct {
	Reads         uint64
	Writes        uint64
	ReadMisses    uint64
	WriteMisses   uint64
	Writebacks    uint64
	Invalidations uint64
}

// MissRate returns the combined read+write miss rate.
func (s Stats) MissRate() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.ReadMisses+s.WriteMisses) / float64(total)
}

// Accesses returns the total number of accesses.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Backend is the next level of the hierarchy as seen by a cache: it serves
// whole lines and reports the stall cycles of each operation.
type Backend interface {
	// FetchLine fills buf (whose length is the requesting cache's block
	// size) with the line containing addr and returns the stall cycles.
	FetchLine(addr simmem.Addr, buf []byte) (float64, error)
	// StoreLine writes a full line back and returns the stall cycles.
	StoreLine(addr simmem.Addr, buf []byte) (float64, error)
}

// line is one cache line with per-word parity. The dead/strike fields
// belong to the line-disable recovery action of the L1 data cache; other
// levels never set them. A dead line is always invalid (disable
// invalidates it), so the hit path needs no extra check. Every field is
// part of the rollback surface: statecover requires the snapshot pair to
// carry any field added here.
//
//lint:checkpoint snapshot, restore
type line struct {
	valid  bool
	dirty  bool
	tag    uint32
	data   []byte
	parity []byte   // one bit per 32-bit word, LSB used
	enc    []uint32 // ECC-encoded words (nil unless SEC-DED is enabled)
	lru    uint64

	dead        bool   // frame disabled: never allocated, accesses bypass to L2
	pinned      bool   // disabled by experiment control; survives re-enable
	strikes     uint32 // uncorrected strikes inside the current window
	strikeTotal uint32 // cumulative uncorrected strikes (histogram)
	strikeMark  uint64 // access clock at the start of the current window
	epochMark   uint32 // last controller epoch this frame faulted in
}

// table is the shared set-associative storage and lookup machinery used by
// every cache level.
//
//lint:checkpoint snapshot, restore
type table struct {
	cfg  Config
	sets [][]line
	//lint:ephemeral derived from the geometry at construction, never mutated
	setShift uint
	//lint:ephemeral derived from the geometry at construction, never mutated
	setMask uint32
	tick    uint64
}

func newTable(cfg Config) (*table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.BlockSize * cfg.Assoc)
	t := &table{cfg: cfg, setMask: uint32(nsets - 1)}
	for bs := cfg.BlockSize; bs > 1; bs >>= 1 {
		t.setShift++
	}
	t.sets = make([][]line, nsets)
	for i := range t.sets {
		ways := make([]line, cfg.Assoc)
		for w := range ways {
			ways[w].data = make([]byte, cfg.BlockSize)
			ways[w].parity = make([]byte, cfg.BlockSize/4)
		}
		t.sets[i] = ways
	}
	return t, nil
}

func (t *table) index(addr simmem.Addr) (set uint32, tag uint32) {
	blk := uint32(addr) >> t.setShift
	return blk & t.setMask, blk >> 0 // full block number as tag keeps lookups unambiguous
}

// lookup returns the way holding addr, or nil on a miss.
func (t *table) lookup(addr simmem.Addr) *line {
	set, tag := t.index(addr)
	ways := t.sets[set]
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			t.tick++
			ways[w].lru = t.tick
			return &ways[w]
		}
	}
	return nil
}

// victim returns the way to fill for addr (the invalid way if one exists,
// otherwise the least recently used way). Dead ways are never allocated;
// when every way of the set is dead, victim returns nil and the access
// must bypass to the next level.
func (t *table) victim(addr simmem.Addr) *line {
	set, _ := t.index(addr)
	ways := t.sets[set]
	var best *line
	for w := range ways {
		if ways[w].dead {
			continue
		}
		if !ways[w].valid {
			return &ways[w]
		}
		if best == nil || ways[w].lru < best.lru {
			best = &ways[w]
		}
	}
	return best
}

// lineBase returns the address of the first byte of the line holding addr.
func (t *table) lineBase(addr simmem.Addr) simmem.Addr {
	return addr &^ simmem.Addr(t.cfg.BlockSize-1)
}

// invalidateRange drops (without write-back) every line overlapping
// [addr, addr+n): the cached copies are stale after a DMA write landed in
// the backing store.
func (t *table) invalidateRange(addr simmem.Addr, n int) {
	first := t.lineBase(addr)
	last := t.lineBase(addr + simmem.Addr(n) - 1)
	for a := first; ; a += simmem.Addr(t.cfg.BlockSize) {
		set, tag := t.index(a)
		ways := t.sets[set]
		for w := range ways {
			if ways[w].valid && ways[w].tag == tag {
				ways[w].valid = false
				ways[w].dirty = false
			}
		}
		if a >= last {
			break
		}
	}
}

// flushRange writes back, via sink, every valid dirty line overlapping
// [addr, addr+n) and marks it clean. It is the write-back half of a
// coherent DMA: invalidateRange alone discards unwritten stores that
// merely share a line with the DMA target, silently reverting neighbouring
// bytes to their stale backing-store image.
func (t *table) flushRange(addr simmem.Addr, n int, sink func(simmem.Addr, []byte) error) error {
	first := t.lineBase(addr)
	last := t.lineBase(addr + simmem.Addr(n) - 1)
	for a := first; ; a += simmem.Addr(t.cfg.BlockSize) {
		set, tag := t.index(a)
		ways := t.sets[set]
		for w := range ways {
			if ways[w].valid && ways[w].dirty && ways[w].tag == tag {
				if err := sink(a, ways[w].data); err != nil {
					return err
				}
				ways[w].dirty = false
			}
		}
		if a >= last {
			break
		}
	}
	return nil
}

// lineState is the restorable bookkeeping of one cache line; the byte
// payloads live in flat buffers of the tableSnap so repeated snapshots
// reuse the same allocations.
type lineState struct {
	valid bool
	dirty bool
	tag   uint32
	lru   uint64

	// Line-disable bookkeeping: rolled back with the contents so a
	// contained packet drop restores the exact strike map and disabled
	// set, keeping resumed campaigns byte-identical.
	dead        bool
	pinned      bool
	strikes     uint32
	strikeTotal uint32
	strikeMark  uint64
	epochMark   uint32
}

// tableSnap is a deep copy of a table's restorable state. Statistics and
// energy are deliberately not part of it: a fault-containment rollback
// rewinds the machine's contents, not its measurements.
//
//lint:checkpoint snapshot, restore
type tableSnap struct {
	meta []lineState
	data []byte
	par  []byte
	enc  []uint32 // empty unless ECC storage is allocated
	tick uint64
}

// snapshot copies the table's full line state into snap, allocating it (or
// its buffers) on first use. The returned value is snap, or a fresh
// snapshot when snap is nil.
func (t *table) snapshot(snap *tableSnap) *tableSnap {
	nline := len(t.sets) * t.cfg.Assoc
	bs := t.cfg.BlockSize
	if snap == nil {
		snap = &tableSnap{} //lint:alloc-ok first use only; the steady state reuses these buffers and the zero-alloc pin verifies it
	}
	if len(snap.meta) != nline {
		snap.meta = make([]lineState, nline)  //lint:alloc-ok first use only; the steady state reuses these buffers and the zero-alloc pin verifies it
		snap.data = make([]byte, nline*bs)    //lint:alloc-ok first use only; the steady state reuses these buffers and the zero-alloc pin verifies it
		snap.par = make([]byte, nline*(bs/4)) //lint:alloc-ok first use only; the steady state reuses these buffers and the zero-alloc pin verifies it
	}
	i := 0
	for s := range t.sets {
		for w := range t.sets[s] {
			ln := &t.sets[s][w]
			snap.meta[i] = lineState{valid: ln.valid, dirty: ln.dirty, tag: ln.tag, lru: ln.lru,
				dead: ln.dead, pinned: ln.pinned, strikes: ln.strikes,
				strikeTotal: ln.strikeTotal, strikeMark: ln.strikeMark, epochMark: ln.epochMark}
			copy(snap.data[i*bs:], ln.data)
			copy(snap.par[i*(bs/4):], ln.parity)
			if ln.enc != nil {
				if len(snap.enc) != nline*(bs/4) {
					snap.enc = make([]uint32, nline*(bs/4)) //lint:alloc-ok first use only; the steady state reuses these buffers and the zero-alloc pin verifies it
				}
				copy(snap.enc[i*(bs/4):], ln.enc)
			}
			i++
		}
	}
	snap.tick = t.tick
	return snap
}

// restore copies a snapshot taken from this table back into it. The table
// afterwards holds exactly the lines, payloads, and LRU state of the
// snapshot moment.
func (t *table) restore(snap *tableSnap) {
	bs := t.cfg.BlockSize
	i := 0
	for s := range t.sets {
		for w := range t.sets[s] {
			ln := &t.sets[s][w]
			st := snap.meta[i]
			ln.valid, ln.dirty, ln.tag, ln.lru = st.valid, st.dirty, st.tag, st.lru
			ln.dead, ln.pinned, ln.strikes = st.dead, st.pinned, st.strikes
			ln.strikeTotal, ln.strikeMark, ln.epochMark = st.strikeTotal, st.strikeMark, st.epochMark
			copy(ln.data, snap.data[i*bs:(i+1)*bs])
			copy(ln.parity, snap.par[i*(bs/4):(i+1)*(bs/4)])
			if ln.enc != nil && len(snap.enc) > 0 {
				copy(ln.enc, snap.enc[i*(bs/4):(i+1)*(bs/4)])
			}
			i++
		}
	}
	t.tick = snap.tick
}

// invalidateAll drops every line (used between golden/faulty runs).
func (t *table) invalidateAll() {
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w].valid = false
			t.sets[s][w].dirty = false
		}
	}
}

// wordParity returns the even-parity bit of a 32-bit word.
func wordParity(v uint32) byte {
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return byte(v & 1)
}
