// Package cache implements the simulated memory hierarchy of the clumsy
// packet processor: a frequency-scaled, fault-injected L1 data cache with
// optional per-word parity and k-strike recovery, a conventional L1
// instruction cache, a shared unified L2, and a fixed-latency memory — the
// configuration of Section 5.1 (StrongARM-110-like: 4 KB direct-mapped L1s
// with 32-byte lines and 2-cycle latency, 128 KB 4-way L2 with 128-byte
// lines and 15-cycle latency).
//
// Only the L1 data cache is over-clocked: faults are injected on its read
// and write paths, its access latency shrinks proportionally to the relative
// cycle time Cr, and its per-access energy shrinks with the voltage swing.
// The L2 is assumed correct unless an incorrect value is written back to it
// from L1 (Section 4).
package cache

import (
	"errors"
	"fmt"

	"clumsy/internal/simmem"
)

// Config describes one cache level.
type Config struct {
	SizeBytes int
	BlockSize int
	Assoc     int
	// Latency is the access latency in core cycles at full-swing operation.
	Latency float64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.BlockSize <= 0 || c.Assoc <= 0:
		return errors.New("cache: non-positive geometry")
	case c.BlockSize%4 != 0:
		return errors.New("cache: block size must be a multiple of the 32-bit word")
	case c.BlockSize&(c.BlockSize-1) != 0:
		return errors.New("cache: block size must be a power of two")
	case c.SizeBytes%(c.BlockSize*c.Assoc) != 0:
		return fmt.Errorf("cache: size %d not divisible by block*assoc", c.SizeBytes)
	case c.Latency < 0:
		return errors.New("cache: negative latency")
	}
	sets := c.SizeBytes / (c.BlockSize * c.Assoc)
	if sets&(sets-1) != 0 {
		return errors.New("cache: set count must be a power of two")
	}
	return nil
}

// Stats aggregates the events of one cache level.
type Stats struct {
	Reads         uint64
	Writes        uint64
	ReadMisses    uint64
	WriteMisses   uint64
	Writebacks    uint64
	Invalidations uint64
}

// MissRate returns the combined read+write miss rate.
func (s Stats) MissRate() float64 {
	total := s.Reads + s.Writes
	if total == 0 {
		return 0
	}
	return float64(s.ReadMisses+s.WriteMisses) / float64(total)
}

// Accesses returns the total number of accesses.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Backend is the next level of the hierarchy as seen by a cache: it serves
// whole lines and reports the stall cycles of each operation.
type Backend interface {
	// FetchLine fills buf (whose length is the requesting cache's block
	// size) with the line containing addr and returns the stall cycles.
	FetchLine(addr simmem.Addr, buf []byte) (float64, error)
	// StoreLine writes a full line back and returns the stall cycles.
	StoreLine(addr simmem.Addr, buf []byte) (float64, error)
}

// line is one cache line with per-word parity.
type line struct {
	valid  bool
	dirty  bool
	tag    uint32
	data   []byte
	parity []byte   // one bit per 32-bit word, LSB used
	enc    []uint32 // ECC-encoded words (nil unless SEC-DED is enabled)
	lru    uint64
}

// table is the shared set-associative storage and lookup machinery used by
// every cache level.
type table struct {
	cfg      Config
	sets     [][]line
	setShift uint
	setMask  uint32
	tick     uint64
}

func newTable(cfg Config) (*table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.SizeBytes / (cfg.BlockSize * cfg.Assoc)
	t := &table{cfg: cfg, setMask: uint32(nsets - 1)}
	for bs := cfg.BlockSize; bs > 1; bs >>= 1 {
		t.setShift++
	}
	t.sets = make([][]line, nsets)
	for i := range t.sets {
		ways := make([]line, cfg.Assoc)
		for w := range ways {
			ways[w].data = make([]byte, cfg.BlockSize)
			ways[w].parity = make([]byte, cfg.BlockSize/4)
		}
		t.sets[i] = ways
	}
	return t, nil
}

func (t *table) index(addr simmem.Addr) (set uint32, tag uint32) {
	blk := uint32(addr) >> t.setShift
	return blk & t.setMask, blk >> 0 // full block number as tag keeps lookups unambiguous
}

// lookup returns the way holding addr, or nil on a miss.
func (t *table) lookup(addr simmem.Addr) *line {
	set, tag := t.index(addr)
	ways := t.sets[set]
	for w := range ways {
		if ways[w].valid && ways[w].tag == tag {
			t.tick++
			ways[w].lru = t.tick
			return &ways[w]
		}
	}
	return nil
}

// victim returns the way to fill for addr (the invalid way if one exists,
// otherwise the least recently used way).
func (t *table) victim(addr simmem.Addr) *line {
	set, _ := t.index(addr)
	ways := t.sets[set]
	best := &ways[0]
	for w := range ways {
		if !ways[w].valid {
			return &ways[w]
		}
		if ways[w].lru < best.lru {
			best = &ways[w]
		}
	}
	return best
}

// lineBase returns the address of the first byte of the line holding addr.
func (t *table) lineBase(addr simmem.Addr) simmem.Addr {
	return addr &^ simmem.Addr(t.cfg.BlockSize-1)
}

// invalidateRange drops (without write-back) every line overlapping
// [addr, addr+n): the cached copies are stale after a DMA write landed in
// the backing store.
func (t *table) invalidateRange(addr simmem.Addr, n int) {
	first := t.lineBase(addr)
	last := t.lineBase(addr + simmem.Addr(n) - 1)
	for a := first; ; a += simmem.Addr(t.cfg.BlockSize) {
		set, tag := t.index(a)
		ways := t.sets[set]
		for w := range ways {
			if ways[w].valid && ways[w].tag == tag {
				ways[w].valid = false
				ways[w].dirty = false
			}
		}
		if a >= last {
			break
		}
	}
}

// invalidateAll drops every line (used between golden/faulty runs).
func (t *table) invalidateAll() {
	for s := range t.sets {
		for w := range t.sets[s] {
			t.sets[s][w].valid = false
			t.sets[s][w].dirty = false
		}
	}
}

// wordParity returns the even-parity bit of a 32-bit word.
func wordParity(v uint32) byte {
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return byte(v & 1)
}
