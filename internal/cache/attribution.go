package cache

// CycleBreakdown splits a run's total cycles into per-component buckets —
// the attribution INTERPLAY-style degradation prediction needs and the
// paper's aggregate cycle counts cannot provide. The buckets partition the
// total exactly: every cycle the simulator charges lands in exactly one
// bucket, and the accounting discipline (cycleacct) confines all bucket
// writes to //lint:cycle-accounting helpers alongside the accumulators
// they shadow.
//
// At the standard operating points every individual charge is a dyadic
// rational (latencies 1, 1.5, 2, 15, 80; one cycle per instruction; the
// switch penalty 10) and run totals stay far below 2^53, so the floating-
// point bucket sums are exact and Total() equals the run's cycle count
// bit-for-bit — the tested invariant. An exotic hand-picked CycleTime
// whose scaled latency is not exactly representable can perturb the
// partition by ulps; none of the paper's operating points do.
type CycleBreakdown struct {
	// Compute is the single-issue core's own cycles: one per executed
	// instruction, excluding the watchdog burn (accounted as Recovery).
	Compute float64 `json:"compute"`
	// L1D is the data cache's array access latency on the normal path
	// (first-attempt reads and writes at the current cycle time).
	L1D float64 `json:"l1d_stall"`
	// L1I is the instruction-fetch stall: every cycle charged below the
	// L1I, including its share of L2 and memory time (instruction fetch
	// is never fault-injected, so its backend time is not split further).
	L1I float64 `json:"l1i_stall"`
	// L2 is the L2's own portion of data-side backend stalls on the
	// normal (non-recovery) path.
	L2 float64 `json:"l2_stall"`
	// Mem is main memory's portion of data-side backend stalls on the
	// normal path.
	Mem float64 `json:"mem_stall"`
	// Recovery is every cycle the fault machinery costs beyond normal
	// operation: k-strike retry re-reads, recovery refetches and
	// write-backs through the backend (full-line and sub-block), and the
	// watchdog budget a stuck packet burns before containment or abort.
	Recovery float64 `json:"recovery"`
	// FreqPenalty is the dynamic controller's operating-point switch
	// penalty cycles.
	FreqPenalty float64 `json:"freq_penalty"`
}

// Total returns the sum of all buckets; on every standard configuration it
// equals the run's total cycle count exactly.
func (b CycleBreakdown) Total() float64 {
	return b.Compute + b.L1D + b.L1I + b.L2 + b.Mem + b.Recovery + b.FreqPenalty
}
