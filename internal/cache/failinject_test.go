package cache

import (
	"errors"
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

// failingBackend errors after a countdown, to exercise the L1D's
// error-propagation paths (fill, write-back, recovery refetch).
type failingBackend struct {
	inner     Backend
	countdown int
}

var errBackend = errors.New("backend failure injected")

func (f *failingBackend) tick() error {
	f.countdown--
	if f.countdown == 0 {
		return errBackend
	}
	return nil
}

func (f *failingBackend) FetchLine(a simmem.Addr, buf []byte) (float64, error) {
	if err := f.tick(); err != nil {
		return 0, err
	}
	return f.inner.FetchLine(a, buf)
}

func (f *failingBackend) StoreLine(a simmem.Addr, buf []byte) (float64, error) {
	if err := f.tick(); err != nil {
		return 0, err
	}
	return f.inner.StoreLine(a, buf)
}

func TestL1DPropagatesBackendFailures(t *testing.T) {
	// Drive a workload that exercises fills, dirty write-backs, and parity
	// recoveries, failing each successive backend operation in turn. Every
	// injected failure must surface as an error — never a panic, never
	// silent success.
	for n := 1; n <= 40; n++ {
		space := simmem.NewSpace(1 << 20)
		mem := NewMainMemory(space, 80)
		fb := &failingBackend{inner: mem, countdown: n}
		inj := fault.NewInjector(fault.NewModel(1), fault.NewRNG(1), 32)
		inj.SetEnabled(false)
		l1, err := NewL1Data(DefaultL1D, fb, inj, DetectionParity, 1)
		if err != nil {
			t.Fatal(err)
		}
		base := space.MustAlloc(32*1024, 4096)

		failed := false
		// Write two conflicting lines (fill + dirty eviction + fill), then
		// corrupt a word to force a recovery refetch.
		ops := []func() error{
			func() error { return l1.Store32(base, 1) },
			func() error { return l1.Store32(base+8192, 2) },
			func() error { _, err := l1.Load32(base); return err },
			func() error {
				if ln := l1.tab.lookup(base); ln != nil {
					ln.data[int(base)&(DefaultL1D.BlockSize-1)] ^= 1
				}
				_, err := l1.Load32(base)
				return err
			},
		}
		for _, op := range ops {
			if err := op(); err != nil {
				if !errors.Is(err, errBackend) {
					t.Fatalf("n=%d: unexpected error %v", n, err)
				}
				failed = true
				break
			}
		}
		if !failed && fb.countdown <= 0 {
			t.Fatalf("n=%d: backend failure was swallowed", n)
		}
	}
}

func TestL1InstrPropagatesBackendFailure(t *testing.T) {
	space := simmem.NewSpace(1 << 20)
	mem := NewMainMemory(space, 80)
	fb := &failingBackend{inner: mem, countdown: 1}
	l1i, err := NewL1Instr(DefaultL1I, fb)
	if err != nil {
		t.Fatal(err)
	}
	code := space.MustAlloc(4096, 128)
	if err := l1i.Fetch(code); !errors.Is(err, errBackend) {
		t.Fatalf("err = %v, want injected backend failure", err)
	}
}
