package cache

import "clumsy/internal/simmem"

// MainMemory is the bottom of the hierarchy: a fixed-latency DRAM front-end
// over the simulated address space. It is never fault-injected.
type MainMemory struct {
	Space   *simmem.Space
	Latency float64 // stall cycles per line transfer
	Stats   Stats

	// Cycles accumulates the transfer latency of every line moved; the
	// L1D samples it around backend calls to split reported stalls into
	// L2 and memory attribution buckets.
	Cycles float64
}

// NewMainMemory wraps space with the given line-transfer latency.
func NewMainMemory(space *simmem.Space, latency float64) *MainMemory {
	return &MainMemory{Space: space, Latency: latency}
}

// chargeTransfer accounts one line transfer's latency — the only
// permitted write to the memory cycle accumulator (cycleacct invariant).
//
//lint:cycle-accounting
func (m *MainMemory) chargeTransfer() { m.Cycles += m.Latency }

// FetchLine reads a line from the backing space.
func (m *MainMemory) FetchLine(addr simmem.Addr, buf []byte) (float64, error) {
	m.Stats.Reads++
	if err := m.Space.ReadBlock(addr, buf); err != nil {
		return 0, err
	}
	m.chargeTransfer()
	return m.Latency, nil
}

// StoreLine writes a line to the backing space.
func (m *MainMemory) StoreLine(addr simmem.Addr, buf []byte) (float64, error) {
	m.Stats.Writes++
	if err := m.Space.WriteBlock(addr, buf); err != nil {
		return 0, err
	}
	m.chargeTransfer()
	return m.Latency, nil
}

var _ Backend = (*MainMemory)(nil)

// L2 is the shared, unified second-level cache. It always runs at full
// swing: its contents are correct unless a corrupted line is written back
// from L1 (Section 4). Write-back, write-allocate.
//
//lint:checkpoint Snapshot, RestoreSnapshot
type L2 struct {
	tab *table
	//lint:ephemeral topology wiring, immutable after construction
	next Backend
	//lint:ephemeral measurement; a rollback rewinds contents, not measurements
	Stats Stats
}

// NewL2 builds the unified L2 over the given backend.
func NewL2(cfg Config, next Backend) (*L2, error) {
	tab, err := newTable(cfg)
	if err != nil {
		return nil, err
	}
	return &L2{tab: tab, next: next}, nil
}

// ensure returns the line holding addr, filling it on a miss, together with
// the stall cycles spent below this level.
func (c *L2) ensure(addr simmem.Addr, isWrite bool) (*line, float64, error) {
	if ln := c.tab.lookup(addr); ln != nil {
		return ln, 0, nil
	}
	if isWrite {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}
	victim := c.tab.victim(addr)
	var cycles float64
	if victim.valid && victim.dirty {
		c.Stats.Writebacks++
		base := simmem.Addr(victim.tag) << c.tab.setShift
		wb, err := c.next.StoreLine(base, victim.data)
		if err != nil {
			return nil, 0, err
		}
		cycles += wb
	}
	base := c.tab.lineBase(addr)
	fill, err := c.next.FetchLine(base, victim.data)
	if err != nil {
		return nil, 0, err
	}
	cycles += fill
	_, tag := c.tab.index(addr)
	victim.valid = true
	victim.dirty = false
	victim.tag = tag
	c.tab.tick++
	victim.lru = c.tab.tick
	return victim, cycles, nil
}

// FetchLine serves an upper-level fill request of len(buf) bytes.
func (c *L2) FetchLine(addr simmem.Addr, buf []byte) (float64, error) {
	c.Stats.Reads++
	cycles := c.tab.cfg.Latency
	for off := 0; off < len(buf); off += c.tab.cfg.BlockSize {
		ln, extra, err := c.ensure(addr+simmem.Addr(off), false)
		if err != nil {
			return 0, err
		}
		cycles += extra
		lo := int(addr+simmem.Addr(off)) & (c.tab.cfg.BlockSize - 1)
		copy(buf[off:], ln.data[lo:])
	}
	return cycles, nil
}

// StoreLine absorbs an upper-level write-back.
func (c *L2) StoreLine(addr simmem.Addr, buf []byte) (float64, error) {
	c.Stats.Writes++
	cycles := c.tab.cfg.Latency
	for off := 0; off < len(buf); off += c.tab.cfg.BlockSize {
		ln, extra, err := c.ensure(addr+simmem.Addr(off), true)
		if err != nil {
			return 0, err
		}
		cycles += extra
		lo := int(addr+simmem.Addr(off)) & (c.tab.cfg.BlockSize - 1)
		copy(ln.data[lo:], buf[off:min(off+c.tab.cfg.BlockSize-lo, len(buf))])
		ln.dirty = true
	}
	return cycles, nil
}

// InvalidateAll flushes the L2 without write-back (experiment reset).
func (c *L2) InvalidateAll() { c.tab.invalidateAll() }

// InvalidateRange drops any lines overlapping the given byte range without
// write-back (DMA coherence).
func (c *L2) InvalidateRange(addr simmem.Addr, n int) { c.tab.invalidateRange(addr, n) }

// FlushRange writes back every dirty line overlapping the given byte range
// through sink and marks it clean — the write-back half of a coherent DMA.
func (c *L2) FlushRange(addr simmem.Addr, n int, sink func(simmem.Addr, []byte) error) error {
	return c.tab.flushRange(addr, n, sink)
}

var _ Backend = (*L2)(nil)

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
