package cache

import (
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

// newQuietHierarchy builds a default hierarchy with the injector disabled.
func newQuietHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	space := simmem.NewSpace(1 << 20)
	inj := fault.NewInjector(fault.NewModel(1), fault.NewRNG(1), 32)
	inj.SetEnabled(false)
	h, err := NewHierarchy(space, inj, DetectionNone, 1)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestSnapshotRestoreRoundTrip: writes made after a snapshot disappear on
// restore — every level's lines and the values read through the hierarchy
// return to the snapshot moment.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	h := newQuietHierarchy(t)
	a, err := h.Space.Alloc(8192, 32)
	if err != nil {
		t.Fatal(err)
	}
	for off := simmem.Addr(0); off < 512; off += 4 {
		if err := h.L1D.Store32(a+off, uint32(off)+7); err != nil {
			t.Fatal(err)
		}
	}
	snap := h.Snapshot(nil)

	// Overwrite the same range and more — enough to force evictions and
	// write-backs, so both the caches and the space change.
	for off := simmem.Addr(0); off < 8192; off += 4 {
		if err := h.L1D.Store32(a+off, 0xdeadbeef); err != nil {
			t.Fatal(err)
		}
	}
	h.RestoreSnapshot(snap)

	for off := simmem.Addr(0); off < 512; off += 4 {
		v, err := h.L1D.Load32(a + off)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint32(off)+7 {
			t.Fatalf("after restore, [%#x] = %#x, want %#x", a+off, v, uint32(off)+7)
		}
	}
}

// TestSnapshotHasNoArchitecturalEffect: taking a snapshot (and committing
// more on top of an existing one) must not change stats, cycles, energy, or
// the space.
func TestSnapshotHasNoArchitecturalEffect(t *testing.T) {
	h := newQuietHierarchy(t)
	a, err := h.Space.Alloc(4096, 32)
	if err != nil {
		t.Fatal(err)
	}
	for off := simmem.Addr(0); off < 2048; off += 4 {
		if err := h.L1D.Store32(a+off, uint32(off)); err != nil {
			t.Fatal(err)
		}
	}
	stats, cyc, en := h.L1D.Stats, h.L1D.Cycles, h.L1D.Energy
	l2stats, memStats := h.L2.Stats, h.Mem.Stats
	var spaceByte uint8
	if spaceByte, err = h.Space.Load8(a); err != nil {
		t.Fatal(err)
	}

	snap := h.Snapshot(nil)
	snap = h.Snapshot(snap) // buffer-reusing path

	if h.L1D.Stats != stats || h.L1D.Cycles != cyc || h.L1D.Energy != en {
		t.Fatal("snapshot changed L1D accounting")
	}
	if h.L2.Stats != l2stats || h.Mem.Stats != memStats {
		t.Fatal("snapshot changed lower-level accounting")
	}
	if b, _ := h.Space.Load8(a); b != spaceByte {
		t.Fatal("snapshot touched the backing space")
	}
}

// TestSnapshotDeepCopies: mutating the hierarchy after a snapshot must not
// leak into the snapshot (the line buffers are copied, not aliased).
func TestSnapshotDeepCopies(t *testing.T) {
	h := newQuietHierarchy(t)
	a, err := h.Space.Alloc(64, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.L1D.Store32(a, 0x11111111); err != nil {
		t.Fatal(err)
	}
	snap := h.Snapshot(nil)
	if err := h.L1D.Store32(a, 0x22222222); err != nil {
		t.Fatal(err)
	}
	h.RestoreSnapshot(snap)
	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x11111111 {
		t.Fatalf("snapshot aliased live line data: read %#x", v)
	}
}

// TestSnapshotRestoresLRUDeterminism: after a restore, the victim-selection
// state matches the snapshot moment, so a replay of the same accesses
// produces the same evictions (containment keeps runs deterministic).
func TestSnapshotRestoresLRUDeterminism(t *testing.T) {
	h := newQuietHierarchy(t)
	a, err := h.Space.Alloc(64*1024, 32)
	if err != nil {
		t.Fatal(err)
	}
	touch := func(n int) {
		for off := simmem.Addr(0); off < simmem.Addr(n); off += 32 {
			if _, err := h.L1D.Load32(a + off); err != nil {
				t.Fatal(err)
			}
		}
	}
	touch(16 * 1024)
	snap := h.Snapshot(nil)
	statsAt := h.L1D.Stats

	touch(32 * 1024) // first replay, perturbing everything
	h.RestoreSnapshot(snap)
	first := h.L1D.Stats.ReadMisses - statsAt.ReadMisses

	statsAt = h.L1D.Stats
	touch(32 * 1024) // second replay from the same restored state
	second := h.L1D.Stats.ReadMisses - statsAt.ReadMisses

	if first != second {
		t.Fatalf("replays from the same snapshot diverge: %d vs %d misses", first, second)
	}
}
