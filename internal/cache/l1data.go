package cache

import (
	"math/bits"

	"clumsy/internal/circuit"
	"clumsy/internal/fault"
	"clumsy/internal/simmem"
	"clumsy/internal/telemetry"
)

// Detection selects the fault-detection scheme of the L1 data cache
// (Section 4: a parity-protected architecture and one without detection).
//
//lint:exhaustive
type Detection int

const (
	// DetectionNone lets faults corrupt values silently.
	DetectionNone Detection = iota
	// DetectionParity protects each 32-bit word with one parity bit;
	// faults flipping an odd number of bits are detected on read.
	DetectionParity
	// DetectionECC protects each word with a SEC-DED Hamming code:
	// single-bit faults are corrected transparently, double-bit faults
	// are detected and recovered like parity hits. The paper excludes ECC
	// on complexity and energy grounds (Section 4); it is implemented
	// here as an extension so the trade-off can be measured.
	DetectionECC
)

func (d Detection) String() string {
	switch d {
	case DetectionNone:
		return "no detection"
	case DetectionParity:
		return "parity"
	case DetectionECC:
		return "ecc"
	default:
		return "no detection"
	}
}

// RecoveryStats counts the detection and recovery events of the L1D.
type RecoveryStats struct {
	ParityErrors  uint64 // detected (uncorrectable) mismatches, parity or ECC
	Retries       uint64 // L1 re-reads before giving up (two-/three-strike)
	Recoveries    uint64 // refetch-from-L2 sequences (full-line or sub-block)
	Corrected     uint64 // single-bit faults repaired in place by ECC
	Miscorrected  uint64 // >=3-bit faults silently miscorrected by ECC
	FaultsOnRead  uint64 // fault events injected on the read path
	FaultsOnWrite uint64 // fault events injected on the write path
	LineDisables  uint64 // frames disabled after exhausting the strike budget
	LineReEnables uint64 // frames re-enabled after a frequency drop
	Bypasses      uint64 // accesses served directly from L2 (all ways dead)
}

// EnergyWeights accumulate, per access class, the sum of the relative
// voltage swing at the time of each access. Multiplying a weight by the
// full-swing per-access energy yields the total energy of that class: the
// paper's model has cache energy shrinking linearly with the swing
// (Section 5.4).
type EnergyWeights struct {
	ReadSwing  float64 // sum of Vsr over read accesses (incl. retries)
	WriteSwing float64 // sum of Vsr over write accesses (incl. fills)
}

// L1Data is the clumsy level-1 data cache: write-back, write-allocate,
// frequency-scaled, fault-injected, optionally parity-protected with
// k-strike recovery. It implements simmem.Memory, so applications run on it
// unchanged. The rollback surface is the line table (deep-copied by the
// hierarchy snapshot) plus the disabled-frame count (recounted by
// syncDisabled — the PR 5 restore bug this annotation now pins); every
// other field documents why it survives a rollback.
//
//lint:checkpoint Snapshot, RestoreSnapshot, syncDisabled
type L1Data struct {
	tab *table
	//lint:ephemeral topology wiring, immutable after construction
	next Backend

	//lint:ephemeral fault-process time advances monotonically; a drop never rewinds the fault environment
	injector fault.Process
	//lint:ephemeral configuration, immutable during a run
	detection Detection
	//lint:ephemeral configuration, immutable during a run
	strikes int // 1, 2, or 3; L1 attempts before recovering via L2
	//lint:ephemeral configuration, immutable during a run
	subBlock bool // recover single words from L2 instead of whole lines

	// Line-disable recovery (dormant unless armed via SetLineDisable):
	// after disableStrikes uncorrected strikes on one frame within
	// disableWindow accesses, the frame is marked dead and its set
	// degrades to fewer ways. A frequency drop re-enables dead frames —
	// the marginal cells that killed them get slower cycles to settle.
	//lint:ephemeral configuration, immutable during a run
	disableStrikes int // 0 = line disable off (paper semantics)
	//lint:ephemeral configuration, immutable during a run
	disableWindow uint64 // strike window, in L1D accesses
	deadLines     int    // currently disabled frames
	//lint:ephemeral controller health evidence; a rollback rewinds contents, not evidence
	epochSeq uint32 // controller epoch counter for spatial evidence
	//lint:ephemeral controller health evidence; a rollback rewinds contents, not evidence
	epochDistinct int // distinct frames that faulted this epoch

	//lint:ephemeral physical operating point; re-clocking is a ladder decision, not memory contents
	cr float64 // relative cycle time of this cache
	//lint:ephemeral physical operating point; re-clocking is a ladder decision, not memory contents
	vsr float64 // relative voltage swing at cr
	//lint:ephemeral physical operating point; re-clocking is a ladder decision, not memory contents
	lat float64 // current access latency in core cycles (Latency * cr)
	//lint:ephemeral scratch buffer, dead outside a single access
	fill []byte // scratch line buffer
	//lint:ephemeral scratch buffer, dead outside a single access
	word [4]byte // scratch word buffer; local arrays escape through the next-level interface

	// rt, when non-nil, receives structured trace events for injected
	// faults and recovery steps. It is nil by default, so the hit path is
	// untouched and the (already rare) fault path pays one branch.
	//lint:ephemeral telemetry sink, not machine state
	rt *telemetry.RunTrace

	//lint:ephemeral measurement; a rollback rewinds contents, not measurements
	Stats Stats
	//lint:ephemeral measurement; a rollback rewinds contents, not measurements
	Recovery RecoveryStats
	//lint:ephemeral measurement; a rollback rewinds contents, not measurements
	Energy EnergyWeights

	// Cycles accumulates the data-access stall cycles of the run; the
	// execution engine folds it into the per-packet cycle counts.
	//lint:ephemeral measurement; a rollback rewinds contents, not measurements
	Cycles float64

	// Breakdown shadows Cycles with per-component attribution: every
	// charge helper that advances Cycles adds the same amount to exactly
	// one bucket (L1D array, L2, Mem, or Recovery), so the data-side
	// buckets always sum to Cycles. The Compute/L1I/FreqPenalty buckets
	// are folded in by the run machinery at the end of a run.
	//lint:ephemeral measurement; a rollback rewinds contents, not measurements
	Breakdown CycleBreakdown

	// mem, when non-nil, points at the main memory at the bottom of this
	// cache's backend chain; its cycle accumulator is sampled around
	// backend calls to split reported stalls into L2 and memory buckets.
	// Nil (an L1D built over an arbitrary backend) attributes all
	// non-recovery backend stalls to the L2 bucket.
	//lint:ephemeral topology wiring, immutable after construction
	mem *MainMemory
}

// AttachMemory registers the main memory below this cache's backend chain
// for the L2/memory stall split. The hierarchy constructor calls it; an
// L1D without one accounts backend stalls wholly to the L2 bucket.
func (c *L1Data) AttachMemory(m *MainMemory) { c.mem = m }

// memCycles samples the attached main memory's cycle accumulator (zero
// without one); deltas around a backend call isolate the memory share of
// its reported stall.
func (c *L1Data) memCycles() float64 {
	if c.mem == nil {
		return 0
	}
	return c.mem.Cycles
}

// NewL1Data builds the clumsy L1 data cache over next. strikes selects the
// recovery scheme (1, 2, or 3); it is ignored under DetectionNone.
func NewL1Data(cfg Config, next Backend, inj fault.Process, det Detection, strikes int) (*L1Data, error) {
	tab, err := newTable(cfg)
	if err != nil {
		return nil, err
	}
	if strikes < 1 || strikes > 3 {
		strikes = 1
	}
	c := &L1Data{tab: tab, next: next, injector: inj, detection: det, strikes: strikes,
		epochSeq: 1, fill: make([]byte, cfg.BlockSize)}
	if det == DetectionECC {
		for si := range tab.sets {
			for w := range tab.sets[si] {
				tab.sets[si][w].enc = make([]uint32, cfg.BlockSize/4)
			}
		}
	}
	c.SetCycleTime(1)
	return c, nil
}

// SetTelemetry installs (or, with nil, removes) the structured event
// trace of the current run. Fault injections and recovery steps are
// emitted to it; counters are not touched here — the run machinery flushes
// Stats and Recovery into the telemetry registry when the run finishes.
func (c *L1Data) SetTelemetry(rt *telemetry.RunTrace) { c.rt = rt }

// SetSubBlock selects sub-block recovery (the extension sketched in the
// paper's footnote 2): on an uncorrectable detected fault, only the
// affected 32-bit word is refetched from the L2 instead of invalidating
// and refilling the whole line. Dirty neighbours on the line survive and
// no write-back is needed.
func (c *L1Data) SetSubBlock(on bool) { c.subBlock = on }

// SubBlock reports whether sub-block recovery is enabled.
func (c *L1Data) SubBlock() bool { return c.subBlock }

// SetLineDisable arms per-line strike tracking: after strikes uncorrected
// strikes on the same frame within window L1D accesses, the frame is
// disabled and its set degrades to fewer ways (for the direct-mapped L1D,
// to forced misses served straight from the L2). strikes <= 0 disarms the
// mechanism — the paper's semantics, and the default.
func (c *L1Data) SetLineDisable(strikes int, window uint64) {
	c.disableStrikes = strikes
	if window == 0 {
		window = 1 << 62 // effectively unwindowed
	}
	c.disableWindow = window
}

// ForceDisable pins the first ceil(frac * lines) frames dead — the
// experiment control behind the graceful-degradation curve. Pinned frames
// are not re-enabled by frequency drops and do not count as disable
// events; they model capacity lost before the run started.
func (c *L1Data) ForceDisable(frac float64) {
	if frac <= 0 {
		return
	}
	total := len(c.tab.sets) * c.tab.cfg.Assoc
	n := int(frac*float64(total) + 0.999999)
	if n > total {
		n = total
	}
	marked := 0
	for s := range c.tab.sets {
		for w := range c.tab.sets[s] {
			if marked >= n {
				return
			}
			ln := &c.tab.sets[s][w]
			if !ln.dead {
				ln.dead = true
				ln.pinned = true
				ln.valid = false
				ln.dirty = false
				c.deadLines++
			}
			marked++
		}
	}
}

// DisabledLines returns the number of currently disabled frames.
func (c *L1Data) DisabledLines() int { return c.deadLines }

// DisabledFraction returns the fraction of L1D capacity currently
// disabled.
func (c *L1Data) DisabledFraction() float64 {
	total := len(c.tab.sets) * c.tab.cfg.Assoc
	if total == 0 {
		return 0
	}
	return float64(c.deadLines) / float64(total)
}

// StrikeHistogram buckets the frames that took uncorrected strikes by
// their cumulative strike count: bucket i holds frames with exactly i
// strikes, the last bucket holds frames with 7 or more. Untouched frames
// are not counted, so the histogram is all-zero for a strike-free run.
func (c *L1Data) StrikeHistogram() [8]uint64 {
	var h [8]uint64
	for s := range c.tab.sets {
		for w := range c.tab.sets[s] {
			b := c.tab.sets[s][w].strikeTotal
			if b == 0 {
				continue
			}
			if b > 7 {
				b = 7
			}
			h[b]++
		}
	}
	return h
}

// TakeEpochEvidence returns the spatial evidence of the closing
// controller epoch — the number of distinct frames that took an
// uncorrected strike, and the disabled-capacity fraction — and opens the
// next epoch. The frequency controller consumes it at epoch boundaries.
func (c *L1Data) TakeEpochEvidence() (distinctLines int, disabledFrac float64) {
	distinctLines = c.epochDistinct
	c.epochDistinct = 0
	c.epochSeq++
	return distinctLines, c.DisabledFraction()
}

// noteStrike records an uncorrected strike against a frame and reports
// whether the frame has exhausted its strike budget and must be disabled.
// It also feeds the per-epoch spatial evidence, which is tracked even
// while line disable itself is disarmed (the evidence costs two integer
// compares on a path that already paid for a detected fault).
func (c *L1Data) noteStrike(ln *line) bool {
	if ln.epochMark != c.epochSeq {
		ln.epochMark = c.epochSeq
		c.epochDistinct++
	}
	ln.strikeTotal++
	if c.disableStrikes <= 0 {
		return false
	}
	now := c.Stats.Reads + c.Stats.Writes
	if ln.strikes == 0 || now-ln.strikeMark > c.disableWindow {
		ln.strikeMark = now
		ln.strikes = 0
	}
	ln.strikes++
	return int(ln.strikes) >= c.disableStrikes
}

// disableLine marks an (already invalidated) frame dead.
func (c *L1Data) disableLine(ln *line, addr simmem.Addr) {
	ln.dead = true
	c.deadLines++
	c.Recovery.LineDisables++
	if c.rt != nil {
		c.rt.LineDisable(uint64(addr), int(ln.strikes), c.deadLines)
	}
}

// reenableAll returns every non-pinned dead frame to service with a clean
// strike window. Frames stay invalid (they were invalidated at disable).
func (c *L1Data) reenableAll() {
	for s := range c.tab.sets {
		for w := range c.tab.sets[s] {
			ln := &c.tab.sets[s][w]
			if ln.dead && !ln.pinned {
				ln.dead = false
				ln.strikes = 0
				c.deadLines--
				c.Recovery.LineReEnables++
			}
		}
	}
}

// syncDisabled recounts the disabled frames after a snapshot restore.
func (c *L1Data) syncDisabled() {
	n := 0
	for s := range c.tab.sets {
		for w := range c.tab.sets[s] {
			if c.tab.sets[s][w].dead {
				n++
			}
		}
	}
	c.deadLines = n
}

// SetCycleTime moves the cache (and its fault process) to relative cycle
// time cr. Latency and per-access energy scale immediately; cached data is
// unaffected (the paper notes that varying the clock frequency, unlike the
// supply voltage, requires no cache flush).
func (c *L1Data) SetCycleTime(cr float64) {
	if cr > c.cr && c.deadLines > 0 {
		// Frequency drop: the longer cycle gives the marginal cells that
		// accumulated strikes a second chance, so dead frames (except
		// experiment-pinned ones) return to service with a clean window.
		c.reenableAll()
	}
	c.cr = cr
	c.vsr = circuit.VoltageSwing(cr)
	// The array access time shrinks with the cycle time, but the
	// load-to-use latency seen by the in-order core cannot drop below one
	// core cycle — this floor is why the paper finds Cr = 0.5 almost
	// always preferable to Cr = 0.25 (Section 5.4: the energy keeps
	// falling but the delay gain has been exhausted while the error rate
	// soars).
	c.lat = c.tab.cfg.Latency * cr
	if c.lat < 1 {
		c.lat = 1
	}
	c.injector.SetCycleTime(cr)
}

// CycleTime returns the current relative cycle time.
func (c *L1Data) CycleTime() float64 { return c.cr }

// Detection returns the configured detection scheme.
func (c *L1Data) Detection() Detection { return c.detection }

// Strikes returns the configured number of strikes.
func (c *L1Data) Strikes() int { return c.strikes }

// InvalidateAll drops all lines without write-back (experiment reset).
func (c *L1Data) InvalidateAll() { c.tab.invalidateAll() }

// InvalidateRange drops any lines overlapping the given byte range without
// write-back (DMA coherence).
func (c *L1Data) InvalidateRange(addr simmem.Addr, n int) { c.tab.invalidateRange(addr, n) }

// FlushRange writes back every dirty line overlapping the given byte range
// through sink and marks it clean — the write-back half of a coherent DMA.
func (c *L1Data) FlushRange(addr simmem.Addr, n int, sink func(simmem.Addr, []byte) error) error {
	return c.tab.flushRange(addr, n, sink)
}

// The charge helpers below are the only places the L1D's stall-cycle,
// attribution, and energy accumulators may be written; the cycleacct
// analyzer enforces this, so any cost-model change to the clumsy cache
// stays confined to these lines. Each helper adds the charged cycles to
// exactly one Breakdown bucket, which is what keeps the buckets summing
// to Cycles exactly.

// chargeStall accounts stall cycles reported by the next level on the
// normal (non-recovery) path, split into the L2's share and main
// memory's share (memPart, a delta of the attached memory's accumulator
// around the backend call).
//
//lint:cycle-accounting
func (c *L1Data) chargeStall(cyc, memPart float64) {
	c.Cycles += cyc
	c.Breakdown.L2 += cyc - memPart
	c.Breakdown.Mem += memPart
}

// chargeRecoveryStall accounts backend stall cycles spent on recovery
// traffic — sub-block refetches, recovery write-backs, and post-recovery
// refills — attributed wholly to the recovery bucket.
//
//lint:cycle-accounting
func (c *L1Data) chargeRecoveryStall(cyc float64) {
	c.Cycles += cyc
	c.Breakdown.Recovery += cyc
}

// chargeArrayRead accounts one first-attempt drive of the array on the
// read path: the scaled access latency plus read energy at the current
// voltage swing.
//
//lint:cycle-accounting
func (c *L1Data) chargeArrayRead() {
	c.Cycles += c.lat
	c.Breakdown.L1D += c.lat
	c.Energy.ReadSwing += c.vsr
}

// chargeArrayRetry accounts a re-drive of the array forced by the
// k-strike machinery (a retry, or a re-read after a recovery): the same
// latency and energy as a normal read, attributed to recovery.
//
//lint:cycle-accounting
func (c *L1Data) chargeArrayRetry() {
	c.Cycles += c.lat
	c.Breakdown.Recovery += c.lat
	c.Energy.ReadSwing += c.vsr
}

// chargeArrayWrite accounts one drive of the array on the write path.
//
//lint:cycle-accounting
func (c *L1Data) chargeArrayWrite() {
	c.Cycles += c.lat
	c.Breakdown.L1D += c.lat
	c.Energy.WriteSwing += c.vsr
}

// chargeFillDrive accounts the single array drive of a line fill (the
// latency is already covered by the backend's reported stall cycles).
//
//lint:cycle-accounting
func (c *L1Data) chargeFillDrive() { c.Energy.WriteSwing += c.vsr }

// ensure returns the line containing addr, filling on a miss. When every
// way of the set is disabled it returns (nil, nil) after counting the
// forced miss; the caller serves the access via the L2 bypass path.
// recovering marks a refill forced by the recovery machinery: its backend
// stalls land in the recovery bucket instead of the L2/memory split.
func (c *L1Data) ensure(addr simmem.Addr, isWrite, recovering bool) (*line, error) {
	if ln := c.tab.lookup(addr); ln != nil {
		return ln, nil
	}
	if isWrite {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}
	victim := c.tab.victim(addr)
	if victim == nil {
		return nil, nil
	}
	if victim.valid && victim.dirty {
		// A dirty line carries values that may have been corrupted by a
		// write-path fault; writing it back is the paper's path by which
		// "an incorrect value from level-1 is written to" the L2.
		c.Stats.Writebacks++
		base := simmem.Addr(victim.tag) << c.tab.setShift
		m0 := c.memCycles()
		cyc, err := c.next.StoreLine(base, victim.data)
		if err != nil {
			return nil, err
		}
		if recovering {
			c.chargeRecoveryStall(cyc)
		} else {
			c.chargeStall(cyc, c.memCycles()-m0)
		}
	}
	base := c.tab.lineBase(addr)
	m0 := c.memCycles()
	cyc, err := c.next.FetchLine(base, victim.data)
	if err != nil {
		return nil, err
	}
	if recovering {
		c.chargeRecoveryStall(cyc)
	} else {
		c.chargeStall(cyc, c.memCycles()-m0)
	}
	// The fill drives the array once; parity is computed per word from the
	// (correct) L2 data.
	c.chargeFillDrive()
	for w := 0; w < len(victim.data); w += 4 {
		victim.parity[w/4] = wordParity(leWord(victim.data[w:]))
		if victim.enc != nil {
			victim.enc[w/4] = leWord(victim.data[w:])
		}
	}
	_, tag := c.tab.index(addr)
	victim.valid = true
	victim.dirty = false
	victim.tag = tag
	c.tab.tick++
	victim.lru = c.tab.tick
	return victim, nil
}

func leWord(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeWord(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// readWord performs the full clumsy read of the aligned 32-bit word at
// addr: injection, parity check, strikes, and recovery through L2.
func (c *L1Data) readWord(addr simmem.Addr) (uint32, error) {
	c.Stats.Reads++
	ln, err := c.ensure(addr, false, false)
	if err != nil {
		return 0, err
	}
	if ln == nil {
		return c.bypassReadWord(addr)
	}
	w := int(addr) & (c.tab.cfg.BlockSize - 1) &^ 3
	recoveries := 0
	for attempt := 1; ; attempt++ {
		if attempt > 1 || recoveries > 0 {
			// Everything beyond the first pristine array drive of this
			// word is recovery-induced: a k-strike retry or a re-read
			// after a refetch.
			c.chargeArrayRetry()
		} else {
			c.chargeArrayRead()
		}
		stored := leWord(ln.data[w:])
		mask := uint32(c.injector.NextAt(uint64(addr)))
		if mask != 0 {
			c.Recovery.FaultsOnRead++
			if c.rt != nil {
				c.rt.FaultInjection("read", bits.OnesCount32(mask), uint64(addr))
			}
		}
		v := stored ^ mask
		switch c.detection {
		case DetectionNone:
			return v, nil
		case DetectionECC:
			decoded, outcome := classifyECC(v, ln.enc[w/4])
			switch outcome {
			case eccClean:
				return v, nil
			case eccCorrected:
				c.Recovery.Corrected++
				if c.rt != nil {
					c.rt.Recovery("ecc_correct", attempt, uint64(addr))
				}
				// Scrub: the corrected value is written back into the
				// array so a persistent write fault does not linger.
				putLeWord(ln.data[w:], decoded)
				ln.parity[w/4] = wordParity(decoded)
				return decoded, nil
			case eccMiscorrected:
				c.Recovery.Miscorrected++
				return decoded, nil
			}
			// Double-bit: detected but uncorrectable; fall through to the
			// strike/recovery machinery below.
		case DetectionParity:
			fallthrough
		default: // any unrecognised scheme behaves like parity
			if wordParity(v) == ln.parity[w/4] {
				return v, nil
			}
		}
		c.Recovery.ParityErrors++
		if recoveries >= 4 {
			// Safety valve for pathological fault rates (scale >> 1): after
			// several full recoveries the hardware gives up and forwards
			// the word; real rates never reach this.
			return v, nil
		}
		if attempt < c.strikes {
			// Two-/three-strike: assume a transient read fault and try
			// the L1 again before declaring the block bad.
			c.Recovery.Retries++
			if c.rt != nil {
				c.rt.Recovery("retry", attempt, uint64(addr))
			}
			continue
		}
		// The strikes are exhausted: the fault is uncorrected at this
		// level. Attribute a strike to the frame; a frame that keeps
		// collecting them inside the window is disabled rather than
		// endlessly refetched.
		disable := c.noteStrike(ln)
		if c.subBlock && !disable {
			// Sub-block recovery (footnote 2): refetch only the affected
			// word from L2; the rest of the line, including dirty
			// neighbours, stays put and no write-back is needed.
			c.Recovery.Recoveries++
			recoveries++
			if c.rt != nil {
				c.rt.Recovery("subblock", attempt, uint64(addr))
			}
			word := c.word[:]
			cyc, err := c.next.FetchLine(addr, word)
			if err != nil {
				return 0, err
			}
			c.chargeRecoveryStall(cyc)
			copy(ln.data[w:w+4], word)
			fresh := leWord(word)
			ln.parity[w/4] = wordParity(fresh)
			if ln.enc != nil {
				ln.enc[w/4] = fresh
			}
			attempt = 0
			continue
		}
		// Out of strikes: treat it as a write fault, invalidate the block
		// and serve from L2 (Section 4). The dirty line is written back
		// first to preserve legitimate stores on the rest of the line.
		c.Recovery.Recoveries++
		recoveries++
		if c.rt != nil {
			c.rt.Recovery("line", attempt, uint64(addr))
		}
		c.Stats.Invalidations++
		if ln.dirty {
			c.Stats.Writebacks++
			base := simmem.Addr(ln.tag) << c.tab.setShift
			cyc, err := c.next.StoreLine(base, ln.data)
			if err != nil {
				return 0, err
			}
			c.chargeRecoveryStall(cyc)
		}
		ln.valid = false
		ln.dirty = false
		if disable {
			c.disableLine(ln, addr)
		}
		ln, err = c.ensure(addr, false, true)
		if err != nil {
			return 0, err
		}
		if ln == nil {
			// The disable emptied the set: serve the word uncached.
			return c.bypassReadWord(addr)
		}
		// The refetched word is read once more through the (still clumsy)
		// array; the loop continues with fresh parity, so a transient on
		// this read is detected again rather than silently returned.
		attempt = 0
	}
}

// bypassReadWord serves one aligned word straight from the L2: the access
// pattern of a set whose every frame is disabled. The broken array is not
// driven, so no fault is injected and no array energy is charged; the
// cost is the full L2 round trip on every access.
func (c *L1Data) bypassReadWord(addr simmem.Addr) (uint32, error) {
	c.Recovery.Bypasses++
	word := c.word[:]
	m0 := c.memCycles()
	cyc, err := c.next.FetchLine(addr, word)
	if err != nil {
		return 0, err
	}
	// Bypass is the degraded steady state of a set whose frames are all
	// dead, not a recovery event: its round trips split into the normal
	// L2/memory buckets.
	c.chargeStall(cyc, c.memCycles()-m0)
	return leWord(word), nil
}

// bypassWriteWord writes one aligned word straight through to the L2.
func (c *L1Data) bypassWriteWord(addr simmem.Addr, v uint32) error {
	c.Recovery.Bypasses++
	word := c.word[:]
	putLeWord(word, v)
	m0 := c.memCycles()
	cyc, err := c.next.StoreLine(addr, word)
	if err != nil {
		return err
	}
	c.chargeStall(cyc, c.memCycles()-m0)
	return nil
}

// writeWord performs the clumsy write of the aligned word at addr. The
// parity bit is computed from the intended value before the array drive, so
// a write-path fault leaves a detectable mismatch behind (unless an even
// number of bits flip).
func (c *L1Data) writeWord(addr simmem.Addr, v uint32) error {
	c.Stats.Writes++
	ln, err := c.ensure(addr, true, false)
	if err != nil {
		return err
	}
	if ln == nil {
		return c.bypassWriteWord(addr, v)
	}
	c.chargeArrayWrite()
	w := int(addr) & (c.tab.cfg.BlockSize - 1)
	w &^= 3
	mask := uint32(c.injector.NextAt(uint64(addr)))
	if mask != 0 {
		c.Recovery.FaultsOnWrite++
		if c.rt != nil {
			c.rt.FaultInjection("write", bits.OnesCount32(mask), uint64(addr))
		}
	}
	putLeWord(ln.data[w:], v^mask)
	ln.parity[w/4] = wordParity(v)
	if ln.enc != nil {
		ln.enc[w/4] = v
	}
	ln.dirty = true
	return nil
}

// Load32 implements simmem.Memory.
func (c *L1Data) Load32(a simmem.Addr) (uint32, error) {
	a = simmem.Align(a, 4)
	if err := c.checkAlign("load32", a, 4); err != nil {
		return 0, err
	}
	return c.readWord(a)
}

// Store32 implements simmem.Memory.
func (c *L1Data) Store32(a simmem.Addr, v uint32) error {
	a = simmem.Align(a, 4)
	if err := c.checkAlign("store32", a, 4); err != nil {
		return err
	}
	return c.writeWord(a, v)
}

// Load16 reads a halfword via the containing word.
func (c *L1Data) Load16(a simmem.Addr) (uint16, error) {
	a = simmem.Align(a, 2)
	if err := c.checkAlign("load16", a, 2); err != nil {
		return 0, err
	}
	w, err := c.readWord(a &^ 3)
	if err != nil {
		return 0, err
	}
	return uint16(w >> ((a & 2) * 8)), nil
}

// Store16 writes a halfword with a read-modify-write of the word.
func (c *L1Data) Store16(a simmem.Addr, v uint16) error {
	a = simmem.Align(a, 2)
	if err := c.checkAlign("store16", a, 2); err != nil {
		return err
	}
	w, err := c.readWord(a &^ 3)
	if err != nil {
		return err
	}
	shift := (a & 2) * 8
	w = w&^(0xffff<<shift) | uint32(v)<<shift
	return c.writeWord(a&^3, w)
}

// Load8 reads a byte via the containing word.
func (c *L1Data) Load8(a simmem.Addr) (uint8, error) {
	if err := c.checkAlign("load8", a, 1); err != nil {
		return 0, err
	}
	w, err := c.readWord(a &^ 3)
	if err != nil {
		return 0, err
	}
	return uint8(w >> ((a & 3) * 8)), nil
}

// Store8 writes a byte with a read-modify-write of the word.
func (c *L1Data) Store8(a simmem.Addr, v uint8) error {
	if err := c.checkAlign("store8", a, 1); err != nil {
		return err
	}
	w, err := c.readWord(a &^ 3)
	if err != nil {
		return err
	}
	shift := (a & 3) * 8
	w = w&^(0xff<<shift) | uint32(v)<<shift
	return c.writeWord(a&^3, w)
}

// checkAlign mirrors the address validation of the golden space so that a
// corrupted pointer faults identically on both memories. Misalignment is
// not a fault: the low address bits are ignored (ARM behaviour), handled by
// simmem.Align at the call sites.
func (c *L1Data) checkAlign(op string, a simmem.Addr, width int) error {
	if a < simmem.PageBase {
		return &simmem.AccessError{Op: op, Addr: a, Reason: "address in unmapped page"}
	}
	return nil
}

var _ simmem.Memory = (*L1Data)(nil)
