package cache

import (
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

func TestClassifyECC(t *testing.T) {
	enc := uint32(0xdeadbeef)
	if v, o := classifyECC(enc, enc); o != eccClean || v != enc {
		t.Fatalf("clean word misclassified: %v %v", v, o)
	}
	if v, o := classifyECC(enc^0x10, enc); o != eccCorrected || v != enc {
		t.Fatalf("single-bit not corrected: %#x %v", v, o)
	}
	if v, o := classifyECC(enc^0x30, enc); o != eccDetected || v != enc^0x30 {
		t.Fatalf("double-bit not detected: %#x %v", v, o)
	}
	if _, o := classifyECC(enc^0x70, enc); o != eccMiscorrected {
		t.Fatalf("triple-bit should miscorrect, got %v", o)
	}
}

func TestPopcount32(t *testing.T) {
	cases := map[uint32]int{0: 0, 1: 1, 3: 2, 0xff: 8, 0xffffffff: 32, 0x80000001: 2}
	for v, want := range cases {
		if got := popcount32(v); got != want {
			t.Errorf("popcount32(%#x) = %d, want %d", v, got, want)
		}
	}
}

// eccHierarchy builds an ECC-protected hierarchy with a manual injector.
func eccHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	inj.SetEnabled(false)
	h, err := NewHierarchy(space, inj, DetectionECC, 2)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestECCCorrectsSingleBitWriteFault(t *testing.T) {
	h := eccHierarchy(t)
	a := h.Space.MustAlloc(64, 4)
	if err := h.L1D.Store32(a, 0x12345678); err != nil {
		t.Fatal(err)
	}
	// Corrupt one stored bit by hand (a write-path fault left it behind).
	ln := h.L1D.tab.lookup(a)
	w := int(a) & (DefaultL1D.BlockSize - 1) &^ 3
	ln.data[w] ^= 0x04
	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x12345678 {
		t.Fatalf("ECC returned %#x, want corrected value", v)
	}
	if h.L1D.Recovery.Corrected != 1 {
		t.Fatalf("corrected counter = %d", h.L1D.Recovery.Corrected)
	}
	// The scrub wrote the corrected value back: a second read is clean.
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	if h.L1D.Recovery.Corrected != 1 {
		t.Fatal("scrub did not repair the array")
	}
}

func TestECCDetectsDoubleBitAndRecovers(t *testing.T) {
	h := eccHierarchy(t)
	a := h.Space.MustAlloc(64, 4)
	if err := h.L1D.Store32(a, 0xcafe); err != nil {
		t.Fatal(err)
	}
	// Flush the correct value to L2 so recovery has a source.
	h.L1D.InvalidateAllWriteback(t)
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	ln := h.L1D.tab.lookup(a)
	w := int(a) & (DefaultL1D.BlockSize - 1) &^ 3
	ln.data[w] ^= 0x03 // two bits: uncorrectable, detectable
	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xcafe {
		t.Fatalf("double-bit recovery returned %#x", v)
	}
	if h.L1D.Recovery.ParityErrors == 0 || h.L1D.Recovery.Recoveries == 0 {
		t.Fatalf("double-bit fault should detect and recover: %+v", h.L1D.Recovery)
	}
}

func TestSubBlockRecoveryKeepsDirtyNeighbours(t *testing.T) {
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	inj.SetEnabled(false)
	h, err := NewHierarchy(space, inj, DetectionParity, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.L1D.SetSubBlock(true)
	if !h.L1D.SubBlock() {
		t.Fatal("sub-block flag not set")
	}
	a := space.MustAlloc(64, 32)
	// Word 0 goes through L2 (so recovery has a source); word 1 is a
	// dirty neighbour that must survive the word-granular recovery.
	if err := h.L1D.Store32(a, 0x1111); err != nil {
		t.Fatal(err)
	}
	h.L1D.InvalidateAllWriteback(t)
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	if err := h.L1D.Store32(a+4, 0x2222); err != nil {
		t.Fatal(err)
	}
	// Corrupt word 0 with stale parity.
	ln := h.L1D.tab.lookup(a)
	w := int(a) & (DefaultL1D.BlockSize - 1) &^ 3
	ln.data[w] ^= 0x01
	wbBefore := h.L1D.Stats.Writebacks
	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1111 {
		t.Fatalf("sub-block recovery returned %#x", v)
	}
	if h.L1D.Recovery.Recoveries != 1 {
		t.Fatalf("recoveries = %d", h.L1D.Recovery.Recoveries)
	}
	if h.L1D.Stats.Writebacks != wbBefore {
		t.Fatal("sub-block recovery must not write the line back")
	}
	if h.L1D.Stats.Invalidations != 0 {
		t.Fatal("sub-block recovery must not invalidate the line")
	}
	// The dirty neighbour survived in place.
	n, err := h.L1D.Load32(a + 4)
	if err != nil || n != 0x2222 {
		t.Fatalf("dirty neighbour = %#x, %v", n, err)
	}
}

func TestECCRunsUnderInjection(t *testing.T) {
	// ECC at an extreme rate: the vast majority of faults are single-bit
	// and must be corrected without recovery traffic.
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(3e4)
	inj := fault.NewInjector(m, fault.NewRNG(7), 32)
	h, err := NewHierarchy(space, inj, DetectionECC, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := space.MustAlloc(4096, 4)
	if err := h.L1D.Store32(a, 42); err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := 0; i < 20000; i++ {
		v, err := h.L1D.Load32(a)
		if err != nil {
			t.Fatal(err)
		}
		if v != 42 {
			wrong++
		}
	}
	if h.L1D.Recovery.Corrected == 0 {
		t.Fatal("no corrections at extreme rate")
	}
	faults := h.L1D.Recovery.FaultsOnRead + h.L1D.Recovery.FaultsOnWrite
	if float64(wrong) > 0.01*float64(faults) {
		t.Fatalf("ECC let %d of %d faults through", wrong, faults)
	}
}
