package cache

// SEC-DED (single-error-correct, double-error-detect) support for the L1
// data cache. The paper sets error correction aside ("Hamming codes would
// incur unnecessary complication on the design and energy consumption",
// Section 4); this extension implements it so the trade-off can be
// measured: ECC transparently repairs the single-bit faults that dominate
// the fault mix, at a substantially higher per-access energy overhead than
// parity.
//
// The implementation models the *behaviour* of a (39,32) Hamming code per
// data word rather than the bit matrices: each protected line carries its
// as-encoded words, and a read compares the (possibly corrupted) stored
// word against the encoding. Zero differing bits pass; one differing bit
// is corrected on the fly; two differing bits are detected but
// uncorrectable and enter the k-strike recovery path, exactly like a
// parity hit; three or more differing bits alias into the code and are
// silently miscorrected — the residual vulnerability of SEC-DED.

// eccOutcome classifies a read under SEC-DED.
type eccOutcome int

const (
	eccClean eccOutcome = iota
	eccCorrected
	eccDetected
	eccMiscorrected
)

// classifyECC compares the read word against the encoded value and returns
// the value the decoder delivers together with the outcome class.
func classifyECC(read, encoded uint32) (uint32, eccOutcome) {
	diff := read ^ encoded
	switch popcount32(diff) {
	case 0:
		return read, eccClean
	case 1:
		return encoded, eccCorrected
	case 2:
		return read, eccDetected
	default:
		// Three or more flipped bits alias to a valid-looking single-bit
		// syndrome: the decoder "corrects" the wrong bit and hands back a
		// value that differs from both the read and the encoded word.
		return read ^ 1<<(diff&31), eccMiscorrected
	}
}

func popcount32(x uint32) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
