package cache

import "clumsy/internal/simmem"

// L1Instr is the level-1 instruction cache. It is conventional: the paper
// over-clocks only the data cache, so instruction fetches run at full swing
// with no fault injection. It serves fetch requests by program counter and
// reports miss stall cycles; the fetched bytes themselves are irrelevant to
// the simulation (applications are host code), so the cache tracks only
// tags.
//
//lint:checkpoint Snapshot, RestoreSnapshot
type L1Instr struct {
	tab *table
	//lint:ephemeral topology wiring, immutable after construction
	next Backend
	//lint:ephemeral scratch buffer, dead outside a single fetch
	fill []byte
	//lint:ephemeral measurement; a rollback rewinds contents, not measurements
	Stats Stats

	// Cycles accumulates fetch stall cycles (hits are fully pipelined).
	//lint:ephemeral measurement; a rollback rewinds contents, not measurements
	Cycles float64
}

// chargeStall accounts fetch stall cycles reported by the next level — the
// only permitted write to the L1I cycle accumulator (cycleacct invariant).
//
//lint:cycle-accounting
func (c *L1Instr) chargeStall(cyc float64) { c.Cycles += cyc }

// NewL1Instr builds the instruction cache over next.
func NewL1Instr(cfg Config, next Backend) (*L1Instr, error) {
	tab, err := newTable(cfg)
	if err != nil {
		return nil, err
	}
	return &L1Instr{tab: tab, next: next, fill: make([]byte, cfg.BlockSize)}, nil
}

// Fetch simulates the instruction fetch at pc. Hits cost nothing beyond the
// pipelined fetch stage; misses stall for the L2 (and possibly memory)
// latency.
func (c *L1Instr) Fetch(pc simmem.Addr) error {
	c.Stats.Reads++
	if ln := c.tab.lookup(pc); ln != nil {
		return nil
	}
	c.Stats.ReadMisses++
	victim := c.tab.victim(pc)
	base := c.tab.lineBase(pc)
	cyc, err := c.next.FetchLine(base, victim.data)
	if err != nil {
		return err
	}
	c.chargeStall(cyc)
	_, tag := c.tab.index(pc)
	victim.valid = true
	victim.tag = tag
	c.tab.tick++
	victim.lru = c.tab.tick
	return nil
}

// InvalidateAll drops all lines (experiment reset).
func (c *L1Instr) InvalidateAll() { c.tab.invalidateAll() }
