package cache

import (
	"math/bits"
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

// corruptWord flips one stored bit of the cached word at a, simulating a
// write-path fault left behind in the array (parity goes stale).
func corruptWord(t *testing.T, h *Hierarchy, a simmem.Addr) {
	t.Helper()
	ln := h.L1D.tab.lookup(a)
	if ln == nil {
		t.Fatalf("address %#x not cached", a)
	}
	w := int(a) & (DefaultL1D.BlockSize - 1) &^ 3
	ln.data[w] ^= 0x01
}

// strike forces one uncorrected parity strike on the frame holding a: the
// word is stored, corrupted in the array, and read back through the
// one-strike recovery path.
func strike(t *testing.T, h *Hierarchy, a simmem.Addr) {
	t.Helper()
	if err := h.L1D.Store32(a, 0xbeef); err != nil {
		t.Fatal(err)
	}
	corruptWord(t, h, a)
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
}

func newParityHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	space := simmem.NewSpace(1 << 20)
	inj := fault.NewInjector(fault.NewModel(1), fault.NewRNG(1), 32)
	inj.SetEnabled(false)
	h, err := NewHierarchy(space, inj, DetectionParity, 1)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestLineDisableAfterStrikes(t *testing.T) {
	h := newParityHierarchy(t)
	h.L1D.SetLineDisable(2, 0)
	a := h.Space.MustAlloc(64, 4)

	strike(t, h, a)
	if h.L1D.Recovery.LineDisables != 0 || h.L1D.DisabledLines() != 0 {
		t.Fatalf("one strike below the budget already disabled: %+v", h.L1D.Recovery)
	}
	strike(t, h, a)
	if h.L1D.Recovery.LineDisables != 1 || h.L1D.DisabledLines() != 1 {
		t.Fatalf("second strike should disable the frame: %+v", h.L1D.Recovery)
	}

	// The direct-mapped set is now empty: accesses bypass to the L2 and
	// still deliver correct values.
	if err := h.L1D.Store32(a, 0x1234); err != nil {
		t.Fatal(err)
	}
	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1234 {
		t.Fatalf("bypass read = %#x, want 0x1234", v)
	}
	if h.L1D.Recovery.Bypasses < 2 {
		t.Fatalf("Bypasses = %d, want >= 2 (store + load)", h.L1D.Recovery.Bypasses)
	}

	// A frequency drop (longer cycle) re-enables the frame with a clean
	// strike window; a frequency increase does not.
	h.L1D.SetCycleTime(0.5)
	if h.L1D.DisabledLines() != 1 {
		t.Fatal("frequency increase re-enabled a dead frame")
	}
	h.L1D.SetCycleTime(1)
	if h.L1D.DisabledLines() != 0 || h.L1D.Recovery.LineReEnables != 1 {
		t.Fatalf("frequency drop did not re-enable: %d dead, %+v", h.L1D.DisabledLines(), h.L1D.Recovery)
	}
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
}

func TestLineDisableWindowExpiry(t *testing.T) {
	h := newParityHierarchy(t)
	h.L1D.SetLineDisable(2, 4)
	a := h.Space.MustAlloc(64, 4)
	other := h.Space.MustAlloc(4096, 4)

	strike(t, h, a)
	// Age the first strike out of the 4-access window.
	for off := simmem.Addr(0); off < 40; off += 4 {
		if _, err := h.L1D.Load32(other + off); err != nil {
			t.Fatal(err)
		}
	}
	strike(t, h, a)
	if h.L1D.Recovery.LineDisables != 0 {
		t.Fatal("strikes outside the window must not accumulate to a disable")
	}
	// Two strikes back-to-back inside a fresh window do disable.
	strike(t, h, a)
	if h.L1D.Recovery.LineDisables != 1 {
		t.Fatalf("LineDisables = %d after two in-window strikes", h.L1D.Recovery.LineDisables)
	}
}

func TestLineDisableDormantByDefault(t *testing.T) {
	h := newParityHierarchy(t)
	a := h.Space.MustAlloc(64, 4)
	for i := 0; i < 5; i++ {
		strike(t, h, a)
	}
	if h.L1D.Recovery.LineDisables != 0 || h.L1D.DisabledLines() != 0 {
		t.Fatal("line disable acted while disarmed")
	}
	// The strike histogram still records the hits (free bookkeeping), and
	// the spatial evidence still flows.
	hist := h.L1D.StrikeHistogram()
	if hist[5] != 1 {
		t.Fatalf("histogram = %v, want one frame in bucket 5", hist)
	}
	distinct, frac := h.L1D.TakeEpochEvidence()
	if distinct != 1 || frac != 0 {
		t.Fatalf("evidence = (%d, %g), want (1, 0)", distinct, frac)
	}
}

func TestForceDisableFractionAndPinning(t *testing.T) {
	h := newParityHierarchy(t)
	total := len(h.L1D.tab.sets) * DefaultL1D.Assoc
	h.L1D.ForceDisable(0.25)
	want := total / 4
	if h.L1D.DisabledLines() != want {
		t.Fatalf("DisabledLines = %d, want %d of %d", h.L1D.DisabledLines(), want, total)
	}
	if got := h.L1D.DisabledFraction(); got != 0.25 {
		t.Fatalf("DisabledFraction = %g", got)
	}
	// Pinned frames survive the frequency-drop amnesty.
	h.L1D.SetCycleTime(0.5)
	h.L1D.SetCycleTime(1)
	if h.L1D.DisabledLines() != want || h.L1D.Recovery.LineReEnables != 0 {
		t.Fatal("frequency drop re-enabled pinned frames")
	}
	// Values survive a full sweep over every set, dead or alive.
	a := h.Space.MustAlloc(8192, 4)
	for off := simmem.Addr(0); off < 8192; off += 4 {
		if err := h.L1D.Store32(a+off, uint32(off)^0x5a5a); err != nil {
			t.Fatal(err)
		}
	}
	for off := simmem.Addr(0); off < 8192; off += 4 {
		v, err := h.L1D.Load32(a + off)
		if err != nil {
			t.Fatal(err)
		}
		if v != uint32(off)^0x5a5a {
			t.Fatalf("[%#x] = %#x, want %#x", a+off, v, uint32(off)^0x5a5a)
		}
	}
	if h.L1D.Recovery.Bypasses == 0 {
		t.Fatal("a quarter of the cache is dead but nothing bypassed")
	}
}

func TestForceDisableAllBypassesEverything(t *testing.T) {
	h := newParityHierarchy(t)
	h.L1D.ForceDisable(1)
	if h.L1D.DisabledFraction() != 1 {
		t.Fatalf("DisabledFraction = %g, want 1", h.L1D.DisabledFraction())
	}
	a := h.Space.MustAlloc(256, 4)
	if err := h.L1D.Store32(a, 77); err != nil {
		t.Fatal(err)
	}
	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 77 {
		t.Fatalf("uncached round trip = %d, want 77", v)
	}
	if h.L1D.Stats.ReadMisses == 0 || h.L1D.Recovery.Bypasses == 0 {
		t.Fatalf("fully dead cache must miss and bypass: %+v %+v", h.L1D.Stats, h.L1D.Recovery)
	}
}

func TestEpochEvidenceDistinctFrames(t *testing.T) {
	h := newParityHierarchy(t)
	a := h.Space.MustAlloc(64, 4)
	b := h.Space.MustAlloc(4096, 4) // different set than a
	strike(t, h, a)
	strike(t, h, a) // same frame twice: still one distinct line
	strike(t, h, b)
	distinct, _ := h.L1D.TakeEpochEvidence()
	if distinct != 2 {
		t.Fatalf("distinct = %d, want 2", distinct)
	}
	// The epoch advanced: the same frames count again next epoch.
	strike(t, h, a)
	distinct, _ = h.L1D.TakeEpochEvidence()
	if distinct != 1 {
		t.Fatalf("next epoch distinct = %d, want 1", distinct)
	}
	distinct, _ = h.L1D.TakeEpochEvidence()
	if distinct != 0 {
		t.Fatalf("empty epoch distinct = %d, want 0", distinct)
	}
}

// TestDisableSnapshotRestore checks that the whole ladder state — dead
// frames, pinned frames, strike counts, histogram — round-trips through
// checkpoint/restore, so drop-and-continue cannot resurrect a disabled
// line or forget a strike.
func TestDisableSnapshotRestore(t *testing.T) {
	h := newParityHierarchy(t)
	h.L1D.SetLineDisable(2, 0)
	a := h.Space.MustAlloc(64, 4)
	strike(t, h, a)
	strike(t, h, a) // disables the frame
	h.L1D.ForceDisable(0.05)
	deadBefore := h.L1D.DisabledLines()
	histBefore := h.L1D.StrikeHistogram()
	if deadBefore < 2 {
		t.Fatalf("setup: %d dead frames, want >= 2", deadBefore)
	}

	snap := h.Snapshot(nil)

	// Mutate: the frequency drop revives the strike-disabled frame (not
	// the pinned ones) and fresh strikes restart elsewhere.
	h.L1D.SetCycleTime(0.5)
	h.L1D.SetCycleTime(1)
	if h.L1D.DisabledLines() >= deadBefore {
		t.Fatal("mutation did not change the disabled set")
	}
	b := h.Space.MustAlloc(8192, 4)
	for { // skip frames pinned by ForceDisable: dead sets never cache
		if err := h.L1D.Store32(b, 1); err != nil {
			t.Fatal(err)
		}
		if h.L1D.tab.lookup(b) != nil {
			break
		}
		b += simmem.Addr(DefaultL1D.BlockSize)
	}
	strike(t, h, b)

	h.RestoreSnapshot(snap)
	if got := h.L1D.DisabledLines(); got != deadBefore {
		t.Fatalf("after restore: %d dead frames, want %d", got, deadBefore)
	}
	if got := h.L1D.StrikeHistogram(); got != histBefore {
		t.Fatalf("after restore: histogram %v, want %v", got, histBefore)
	}
	// The restored dead frame still bypasses.
	bypasses := h.L1D.Recovery.Bypasses
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	if h.L1D.Recovery.Bypasses == bypasses {
		t.Fatal("restored dead frame served from the array")
	}
}

// TestECCMiscorrectionUnderBurst is the >=3-bit hazard of SEC-DED under
// correlated faults: a burst-model triple-bit flip is "corrected" to yet
// another wrong word — the delivered value differs from both the raw read
// and the originally encoded word, and Recovery.Miscorrected counts it
// (flushed to the recovery.ecc_miscorrected counter by the run machinery).
func TestECCMiscorrectionUnderBurst(t *testing.T) {
	m := fault.NewModel(3e4)
	burstParams := fault.BurstParams{MeanGoodAccesses: 1, MeanBadAccesses: 1e9, BadMultiplier: 1e9}

	// Unit level: hunt the burst process for a triple-bit mask and push it
	// through the decoder by hand.
	b := fault.NewBurst(m, fault.NewRNG(9), 32, burstParams)
	enc := uint32(0x12345678)
	var mask uint32
	for i := 0; i < 1e6 && mask == 0; i++ {
		if mk := uint32(b.NextAt(0)); bits.OnesCount32(mk) == 3 {
			mask = mk
		}
	}
	if mask == 0 {
		t.Fatal("burst process produced no triple-bit mask in the bad state")
	}
	read := enc ^ mask
	v, outcome := classifyECC(read, enc)
	if outcome != eccMiscorrected {
		t.Fatalf("triple-bit classified %v, want miscorrection", outcome)
	}
	if v == read || v == enc {
		t.Fatalf("miscorrected word %#x must differ from both the read word %#x and the encoded word %#x", v, read, enc)
	}

	// Integration: an ECC hierarchy driven by the burst process racks up
	// miscorrections and delivers wrong values while doing so.
	space := simmem.NewSpace(1 << 20)
	proc := fault.NewBurst(m, fault.NewRNG(21), 32, burstParams)
	h, err := NewHierarchy(space, proc, DetectionECC, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := space.MustAlloc(4096, 4)
	if err := h.L1D.Store32(a, 42); err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := 0; i < 5000; i++ {
		v, err := h.L1D.Load32(a)
		if err != nil {
			t.Fatal(err)
		}
		if v != 42 {
			wrong++
		}
	}
	if h.L1D.Recovery.Miscorrected == 0 {
		t.Fatal("no ECC miscorrections under a saturated burst")
	}
	if wrong == 0 {
		t.Fatal("miscorrections counted but every delivered value was right")
	}
}
