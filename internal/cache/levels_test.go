package cache

import (
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

// Deeper behavioural tests of the multi-level machinery: L2 associativity
// and LRU, write-back chains to memory, and DMA-range invalidation.

func TestL2LRUReplacement(t *testing.T) {
	space := simmem.NewSpace(1 << 22)
	mem := NewMainMemory(space, 80)
	// Tiny 2-way L2: 2 sets of 2 ways, 128-byte lines.
	l2, err := NewL2(Config{SizeBytes: 512, BlockSize: 128, Assoc: 2, Latency: 15}, mem)
	if err != nil {
		t.Fatal(err)
	}
	base := space.MustAlloc(8192, 512)
	buf := make([]byte, 128)
	// Three lines mapping to the same set (stride = 256 with 2 sets).
	a, b, c := base, base+512, base+1024
	for _, addr := range []simmem.Addr{a, b, a, c} { // a is re-used: b becomes LRU
		if _, err := l2.FetchLine(addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	reads := mem.Stats.Reads
	if _, err := l2.FetchLine(a, buf); err != nil { // must still be resident
		t.Fatal(err)
	}
	if mem.Stats.Reads != reads {
		t.Fatal("a should have survived: it was more recently used than b")
	}
	if _, err := l2.FetchLine(b, buf); err != nil { // b was evicted
		t.Fatal(err)
	}
	if mem.Stats.Reads != reads+1 {
		t.Fatal("b should have been the LRU victim")
	}
}

func TestL2DirtyEvictionReachesMemory(t *testing.T) {
	space := simmem.NewSpace(1 << 22)
	mem := NewMainMemory(space, 80)
	l2, err := NewL2(Config{SizeBytes: 256, BlockSize: 128, Assoc: 1, Latency: 15}, mem)
	if err != nil {
		t.Fatal(err)
	}
	base := space.MustAlloc(8192, 512)
	line := make([]byte, 128)
	for i := range line {
		line[i] = 0xab
	}
	if _, err := l2.StoreLine(base, line); err != nil {
		t.Fatal(err)
	}
	// Backing store is still clean: the write sits dirty in L2.
	if v, _ := space.Load8(base); v != 0 {
		t.Fatal("write-back cache must not write through")
	}
	// Evict by touching the conflicting line (direct-mapped, 2 sets,
	// stride 256).
	if _, err := l2.FetchLine(base+256, line); err != nil {
		t.Fatal(err)
	}
	if v, _ := space.Load8(base); v != 0xab {
		t.Fatalf("dirty eviction did not reach memory: %#x", v)
	}
	if l2.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", l2.Stats.Writebacks)
	}
}

func TestL1MissGoesThroughBothLevels(t *testing.T) {
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1e-9)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	h, err := NewHierarchy(space, inj, DetectionNone, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := space.MustAlloc(4096, 32)
	before := h.L1D.Cycles
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	cold := h.L1D.Cycles - before
	// Cold miss: L1 latency + L2 latency + memory latency.
	if cold < DefaultL1D.Latency+DefaultL2.Latency+DefaultMemoryLatency {
		t.Fatalf("cold miss cost %v cycles, too cheap", cold)
	}
	// Second line in the same L2 line: L1 miss, L2 hit.
	before = h.L1D.Cycles
	if _, err := h.L1D.Load32(a + 32); err != nil {
		t.Fatal(err)
	}
	l2hit := h.L1D.Cycles - before
	if l2hit >= cold {
		t.Fatalf("L2 hit (%v) should be cheaper than memory (%v)", l2hit, cold)
	}
	if l2hit < DefaultL1D.Latency+DefaultL2.Latency {
		t.Fatalf("L2 hit cost %v, too cheap", l2hit)
	}
}

func TestInvalidateRangeDropsExactLines(t *testing.T) {
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1e-9)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	h, err := NewHierarchy(space, inj, DetectionNone, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := space.MustAlloc(256, 32)
	for off := simmem.Addr(0); off < 256; off += 4 {
		if err := h.L1D.Store32(a+off, 0xffffffff); err != nil {
			t.Fatal(err)
		}
	}
	// Invalidate the middle two lines only.
	h.L1D.InvalidateRange(a+32, 64)
	misses := h.L1D.Stats.ReadMisses
	if _, err := h.L1D.Load32(a); err != nil { // untouched line: hit
		t.Fatal(err)
	}
	if h.L1D.Stats.ReadMisses != misses {
		t.Fatal("line outside the range was invalidated")
	}
	if _, err := h.L1D.Load32(a + 64); err != nil { // inside range: miss
		t.Fatal(err)
	}
	if h.L1D.Stats.ReadMisses != misses+1 {
		t.Fatal("line inside the range survived")
	}
}

// TestCoherentDMAPreservesDirtyLineNeighbours pins the write-back half of
// CoherentDMA. A store sits dirty in the caches; a plain DMA to a
// different address in the same line discards it with the invalidation,
// silently reverting the neighbour to its stale memory image. CoherentDMA
// must flush the dirty bytes to the backing store first, so the neighbour
// survives the invalidation. This is the state-repair ladder's coherence
// contract: rewriting one flow record must not destroy the unwritten
// stores of the records sharing its cache lines.
func TestCoherentDMAPreservesDirtyLineNeighbours(t *testing.T) {
	build := func() (*Hierarchy, simmem.Addr) {
		space := simmem.NewSpace(1 << 20)
		m := fault.NewModel(1e-9)
		inj := fault.NewInjector(m, fault.NewRNG(1), 32)
		h, err := NewHierarchy(space, inj, DetectionNone, 1)
		if err != nil {
			t.Fatal(err)
		}
		a := space.MustAlloc(256, 256)
		// The neighbour's store: dirty in L1, not written back.
		if err := h.L1D.Store32(a, 0xfeedface); err != nil {
			t.Fatal(err)
		}
		return h, a
	}
	image := []byte{1, 2, 3, 4}

	// Plain DMA to the same L1 line (word 1, the neighbour is word 0)
	// loses the neighbour — the documented incoherent behaviour.
	h, a := build()
	if err := h.DMA(a+4, image); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.L1D.Load32(a); v == 0xfeedface {
		t.Fatal("plain DMA kept the dirty neighbour; the coherent variant is untestable")
	}

	// CoherentDMA flushes first: the neighbour's bytes survive.
	h, a = build()
	if err := h.CoherentDMA(a+4, image); err != nil {
		t.Fatal(err)
	}
	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xfeedface {
		t.Fatalf("neighbour word = %#x after CoherentDMA, want 0xfeedface", v)
	}
	// The DMA payload itself landed.
	got, err := h.L1D.Load32(a + 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0x04030201 {
		t.Fatalf("DMA payload = %#x, want 0x04030201", got)
	}

	// A dirty line in the L2 only (evicted from L1) is flushed too.
	h, a = build()
	// Evict the dirty L1 line into L2: the L1D is 4 KB direct-mapped, so
	// touching a+4096 claims the same set.
	if _, err := h.L1D.Load32(a + 4096); err != nil {
		t.Fatal(err)
	}
	if err := h.CoherentDMA(a+4, image); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.L1D.Load32(a); v != 0xfeedface {
		t.Fatalf("L2-dirty neighbour word = %#x after CoherentDMA, want 0xfeedface", v)
	}
}

func TestDMAOverwritesCachedData(t *testing.T) {
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1e-9)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	h, err := NewHierarchy(space, inj, DetectionNone, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := space.MustAlloc(64, 32)
	// Pull the (zero) line into L1D and L2 — the "wild read" scenario.
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	// DMA a packet over it.
	if err := h.DMA(a, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x04030201 {
		t.Fatalf("read after DMA = %#x, want fresh data (stale cache?)", v)
	}
}

func TestMainMemoryBounds(t *testing.T) {
	space := simmem.NewSpace(1 << 16)
	mem := NewMainMemory(space, 80)
	buf := make([]byte, 128)
	if _, err := mem.FetchLine(1<<16, buf); err == nil {
		t.Fatal("fetch past end of space should fail")
	}
	if _, err := mem.StoreLine(2, buf); err == nil {
		t.Fatal("store into the null page should fail")
	}
}
