package cache

import (
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

// Deeper behavioural tests of the multi-level machinery: L2 associativity
// and LRU, write-back chains to memory, and DMA-range invalidation.

func TestL2LRUReplacement(t *testing.T) {
	space := simmem.NewSpace(1 << 22)
	mem := NewMainMemory(space, 80)
	// Tiny 2-way L2: 2 sets of 2 ways, 128-byte lines.
	l2, err := NewL2(Config{SizeBytes: 512, BlockSize: 128, Assoc: 2, Latency: 15}, mem)
	if err != nil {
		t.Fatal(err)
	}
	base := space.MustAlloc(8192, 512)
	buf := make([]byte, 128)
	// Three lines mapping to the same set (stride = 256 with 2 sets).
	a, b, c := base, base+512, base+1024
	for _, addr := range []simmem.Addr{a, b, a, c} { // a is re-used: b becomes LRU
		if _, err := l2.FetchLine(addr, buf); err != nil {
			t.Fatal(err)
		}
	}
	reads := mem.Stats.Reads
	if _, err := l2.FetchLine(a, buf); err != nil { // must still be resident
		t.Fatal(err)
	}
	if mem.Stats.Reads != reads {
		t.Fatal("a should have survived: it was more recently used than b")
	}
	if _, err := l2.FetchLine(b, buf); err != nil { // b was evicted
		t.Fatal(err)
	}
	if mem.Stats.Reads != reads+1 {
		t.Fatal("b should have been the LRU victim")
	}
}

func TestL2DirtyEvictionReachesMemory(t *testing.T) {
	space := simmem.NewSpace(1 << 22)
	mem := NewMainMemory(space, 80)
	l2, err := NewL2(Config{SizeBytes: 256, BlockSize: 128, Assoc: 1, Latency: 15}, mem)
	if err != nil {
		t.Fatal(err)
	}
	base := space.MustAlloc(8192, 512)
	line := make([]byte, 128)
	for i := range line {
		line[i] = 0xab
	}
	if _, err := l2.StoreLine(base, line); err != nil {
		t.Fatal(err)
	}
	// Backing store is still clean: the write sits dirty in L2.
	if v, _ := space.Load8(base); v != 0 {
		t.Fatal("write-back cache must not write through")
	}
	// Evict by touching the conflicting line (direct-mapped, 2 sets,
	// stride 256).
	if _, err := l2.FetchLine(base+256, line); err != nil {
		t.Fatal(err)
	}
	if v, _ := space.Load8(base); v != 0xab {
		t.Fatalf("dirty eviction did not reach memory: %#x", v)
	}
	if l2.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", l2.Stats.Writebacks)
	}
}

func TestL1MissGoesThroughBothLevels(t *testing.T) {
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1e-9)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	h, err := NewHierarchy(space, inj, DetectionNone, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := space.MustAlloc(4096, 32)
	before := h.L1D.Cycles
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	cold := h.L1D.Cycles - before
	// Cold miss: L1 latency + L2 latency + memory latency.
	if cold < DefaultL1D.Latency+DefaultL2.Latency+DefaultMemoryLatency {
		t.Fatalf("cold miss cost %v cycles, too cheap", cold)
	}
	// Second line in the same L2 line: L1 miss, L2 hit.
	before = h.L1D.Cycles
	if _, err := h.L1D.Load32(a + 32); err != nil {
		t.Fatal(err)
	}
	l2hit := h.L1D.Cycles - before
	if l2hit >= cold {
		t.Fatalf("L2 hit (%v) should be cheaper than memory (%v)", l2hit, cold)
	}
	if l2hit < DefaultL1D.Latency+DefaultL2.Latency {
		t.Fatalf("L2 hit cost %v, too cheap", l2hit)
	}
}

func TestInvalidateRangeDropsExactLines(t *testing.T) {
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1e-9)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	h, err := NewHierarchy(space, inj, DetectionNone, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := space.MustAlloc(256, 32)
	for off := simmem.Addr(0); off < 256; off += 4 {
		if err := h.L1D.Store32(a+off, 0xffffffff); err != nil {
			t.Fatal(err)
		}
	}
	// Invalidate the middle two lines only.
	h.L1D.InvalidateRange(a+32, 64)
	misses := h.L1D.Stats.ReadMisses
	if _, err := h.L1D.Load32(a); err != nil { // untouched line: hit
		t.Fatal(err)
	}
	if h.L1D.Stats.ReadMisses != misses {
		t.Fatal("line outside the range was invalidated")
	}
	if _, err := h.L1D.Load32(a + 64); err != nil { // inside range: miss
		t.Fatal(err)
	}
	if h.L1D.Stats.ReadMisses != misses+1 {
		t.Fatal("line inside the range survived")
	}
}

func TestDMAOverwritesCachedData(t *testing.T) {
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1e-9)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	h, err := NewHierarchy(space, inj, DetectionNone, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := space.MustAlloc(64, 32)
	// Pull the (zero) line into L1D and L2 — the "wild read" scenario.
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	// DMA a packet over it.
	if err := h.DMA(a, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x04030201 {
		t.Fatalf("read after DMA = %#x, want fresh data (stale cache?)", v)
	}
}

func TestMainMemoryBounds(t *testing.T) {
	space := simmem.NewSpace(1 << 16)
	mem := NewMainMemory(space, 80)
	buf := make([]byte, 128)
	if _, err := mem.FetchLine(1<<16, buf); err == nil {
		t.Fatal("fetch past end of space should fail")
	}
	if _, err := mem.StoreLine(2, buf); err == nil {
		t.Fatal("store into the null page should fail")
	}
}
