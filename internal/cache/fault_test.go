package cache

import (
	"testing"

	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

// These tests drive the clumsy L1D at pathological fault scales to exercise
// the detection and recovery machinery deterministically.

func TestNoDetectionCorruptsSilently(t *testing.T) {
	h := newTestHierarchy(t, 1e6, DetectionNone, 1) // very high fault rate
	a := h.Space.MustAlloc(4096, 4)
	if err := h.L1D.Store32(a, 0); err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	for i := 0; i < 20000; i++ {
		v, err := h.L1D.Load32(a)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Fatal("expected silent corruption at extreme fault rate without detection")
	}
	if h.L1D.Recovery.ParityErrors != 0 {
		t.Fatal("no-detection cache must not report parity errors")
	}
}

func TestParityDetectsReadFaults(t *testing.T) {
	h := newTestHierarchy(t, 1e4, DetectionParity, 1)
	a := h.Space.MustAlloc(4096, 4)
	if err := h.L1D.Store32(a, 0x5a5a5a5a); err != nil {
		t.Fatal(err)
	}
	wrong := 0
	for i := 0; i < 20000; i++ {
		v, err := h.L1D.Load32(a)
		if err != nil {
			t.Fatal(err)
		}
		if v != 0x5a5a5a5a {
			wrong++
		}
	}
	if h.L1D.Recovery.ParityErrors == 0 {
		t.Fatal("parity cache saw no faults at extreme rate")
	}
	// Odd-bit faults are caught; the only escapes are even-bit flips (1% of
	// events are double-bit). The wrong-read rate must be far below the
	// raw fault rate.
	faults := h.L1D.Recovery.FaultsOnRead + h.L1D.Recovery.FaultsOnWrite
	if faults == 0 {
		t.Fatal("no faults injected")
	}
	if float64(wrong) > 0.1*float64(faults) {
		t.Fatalf("parity let %d of %d faults through", wrong, faults)
	}
	if h.L1D.Recovery.Recoveries == 0 {
		t.Fatal("one-strike scheme should have recovered via L2")
	}
}

func TestStrikesRetryBeforeRecovery(t *testing.T) {
	// With a three-strike scheme, transient read faults mostly resolve by
	// retrying the L1; recoveries are rarer than with one-strike at the
	// same fault sequence.
	run := func(strikes int) (retries, recoveries uint64) {
		h := newTestHierarchy(t, 3e5, DetectionParity, strikes)
		a := h.Space.MustAlloc(4096, 4)
		if err := h.L1D.Store32(a, 7); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50000; i++ {
			if _, err := h.L1D.Load32(a); err != nil {
				t.Fatal(err)
			}
		}
		return h.L1D.Recovery.Retries, h.L1D.Recovery.Recoveries
	}
	r1, rec1 := run(1)
	r3, rec3 := run(3)
	if r1 != 0 {
		t.Fatalf("one-strike must never retry, got %d", r1)
	}
	if r3 == 0 {
		t.Fatal("three-strike should retry")
	}
	if rec3 >= rec1 {
		t.Fatalf("three-strike recoveries (%d) should be rarer than one-strike (%d)", rec3, rec1)
	}
	if rec1 == 0 {
		t.Fatal("one-strike should recover at this rate")
	}
}

func TestRecoveryRestoresCorrectData(t *testing.T) {
	// A write fault leaves a parity-inconsistent word behind; the next read
	// must detect it and serve the correct value from L2 — provided the
	// line was clean in L2 (here: written once, evicted, re-written).
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1) // rate irrelevant; we corrupt by hand
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	inj.SetEnabled(false)
	h, err := NewHierarchy(space, inj, DetectionParity, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := space.MustAlloc(64, 4)
	if err := h.L1D.Store32(a, 0xcafe0000); err != nil {
		t.Fatal(err)
	}
	// Push the line to L2 so it holds the correct value.
	h.L1D.InvalidateAllWriteback(t)
	// Refill and corrupt the stored copy directly (simulating a past
	// write-path fault: data flipped, parity stale).
	if _, err := h.L1D.Load32(a); err != nil {
		t.Fatal(err)
	}
	ln := h.L1D.tab.lookup(a)
	if ln == nil {
		t.Fatal("line not resident")
	}
	w := int(a) & (DefaultL1D.BlockSize - 1) &^ 3
	ln.data[w] ^= 0x01
	ln.dirty = false // pretend the corrupt value was never legitimately dirtied

	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xcafe0000 {
		t.Fatalf("recovery returned %#x, want the L2 copy 0xcafe0000", v)
	}
	if h.L1D.Recovery.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", h.L1D.Recovery.Recoveries)
	}
}

// InvalidateAllWriteback flushes dirty L1D lines into L2 and invalidates.
// Test helper: exercises the write-back path deterministically.
func (c *L1Data) InvalidateAllWriteback(t *testing.T) {
	t.Helper()
	for s := range c.tab.sets {
		for w := range c.tab.sets[s] {
			ln := &c.tab.sets[s][w]
			if ln.valid && ln.dirty {
				base := simmem.Addr(ln.tag) << c.tab.setShift
				if _, err := c.next.StoreLine(base, ln.data); err != nil {
					t.Fatal(err)
				}
			}
			ln.valid = false
			ln.dirty = false
		}
	}
}

func TestEvenBitFaultEscapesParity(t *testing.T) {
	// Flip two bits by hand: parity matches, the wrong value is returned.
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	inj.SetEnabled(false)
	h, err := NewHierarchy(space, inj, DetectionParity, 3)
	if err != nil {
		t.Fatal(err)
	}
	a := space.MustAlloc(64, 4)
	if err := h.L1D.Store32(a, 0); err != nil {
		t.Fatal(err)
	}
	ln := h.L1D.tab.lookup(a)
	w := int(a) & (DefaultL1D.BlockSize - 1) &^ 3
	ln.data[w] ^= 0x03 // two bits: even parity preserved
	v, err := h.L1D.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 3 {
		t.Fatalf("expected undetected double-bit corruption, got %#x", v)
	}
	if h.L1D.Recovery.ParityErrors != 0 {
		t.Fatal("double-bit flip should evade parity")
	}
}

func TestFaultFreeRunsIdenticalAcrossDetection(t *testing.T) {
	// With the injector disabled, all configurations return identical data.
	for _, det := range []Detection{DetectionNone, DetectionParity} {
		space := simmem.NewSpace(1 << 20)
		m := fault.NewModel(1)
		inj := fault.NewInjector(m, fault.NewRNG(1), 32)
		inj.SetEnabled(false)
		h, err := NewHierarchy(space, inj, det, 2)
		if err != nil {
			t.Fatal(err)
		}
		a := space.MustAlloc(256, 4)
		for i := uint32(0); i < 64; i++ {
			if err := h.L1D.Store32(a+simmem.Addr(4*i), i*i); err != nil {
				t.Fatal(err)
			}
		}
		for i := uint32(0); i < 64; i++ {
			v, err := h.L1D.Load32(a + simmem.Addr(4*i))
			if err != nil || v != i*i {
				t.Fatalf("det=%v word %d = %v, %v", det, i, v, err)
			}
		}
	}
}

func TestDetectionString(t *testing.T) {
	if DetectionNone.String() != "no detection" || DetectionParity.String() != "parity" {
		t.Fatal("unexpected Detection strings")
	}
}
