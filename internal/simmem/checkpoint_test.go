package simmem

import "testing"

func TestDirtyTrackingOffByDefault(t *testing.T) {
	s := NewSpace(64 << 10)
	a := s.MustAlloc(64, 4)
	if err := s.Store32(a, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if s.DirtyPages() != 0 {
		t.Fatalf("DirtyPages = %d before any checkpoint", s.DirtyPages())
	}
}

func TestCheckpointRestoreUndoesStores(t *testing.T) {
	s := NewSpace(64 << 10)
	a := s.MustAlloc(256, 4)
	if err := s.Store32(a, 0x11111111); err != nil {
		t.Fatal(err)
	}
	ck := s.NewCheckpoint()
	defer ck.Release()

	if err := s.Store32(a, 0x22222222); err != nil {
		t.Fatal(err)
	}
	if err := s.Store8(a+100, 0x7f); err != nil {
		t.Fatal(err)
	}
	if got := s.DirtyPages(); got != 1 {
		t.Fatalf("DirtyPages = %d, want 1 (both stores hit one page)", got)
	}
	if n := ck.Restore(); n != 1 {
		t.Fatalf("Restore returned %d pages, want 1", n)
	}
	v, err := s.Load32(a)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x11111111 {
		t.Fatalf("restored word = %#x, want 0x11111111", v)
	}
	b, _ := s.Load8(a + 100)
	if b != 0 {
		t.Fatalf("restored byte = %#x, want 0", b)
	}
	if s.DirtyPages() != 0 {
		t.Fatal("restore must clear the dirty bitmap")
	}
}

func TestCheckpointCommitAdvancesRestorePoint(t *testing.T) {
	s := NewSpace(64 << 10)
	a := s.MustAlloc(8, 4)
	ck := s.NewCheckpoint()
	defer ck.Release()

	if err := s.Store32(a, 1); err != nil {
		t.Fatal(err)
	}
	if n := ck.Commit(); n != 1 {
		t.Fatalf("Commit returned %d pages, want 1", n)
	}
	if err := s.Store32(a, 2); err != nil {
		t.Fatal(err)
	}
	ck.Restore()
	v, _ := s.Load32(a)
	if v != 1 {
		t.Fatalf("after commit+restore, word = %d, want 1 (committed value)", v)
	}
}

func TestCheckpointRestoresBrk(t *testing.T) {
	s := NewSpace(64 << 10)
	ck := s.NewCheckpoint()
	defer ck.Release()
	brk0 := s.Brk()

	a, err := s.Alloc(4096, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Store32(a, 42); err != nil {
		t.Fatal(err)
	}
	ck.Restore()
	if s.Brk() != brk0 {
		t.Fatalf("Brk = %#x after restore, want %#x", s.Brk(), brk0)
	}
	// Commit after a new allocation advances the frontier snapshot.
	b, err := s.Alloc(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	_ = b
	ck.Commit()
	brk1 := s.Brk()
	ck.Restore()
	if s.Brk() != brk1 {
		t.Fatalf("Brk = %#x after commit+restore, want %#x", s.Brk(), brk1)
	}
}

func TestCheckpointTracksWriteBlock(t *testing.T) {
	s := NewSpace(64 << 10)
	a := s.MustAlloc(3*PageSize, 32)
	ck := s.NewCheckpoint()
	defer ck.Release()

	buf := make([]byte, 2*PageSize)
	for i := range buf {
		buf[i] = 0xab
	}
	if err := s.WriteBlock(a, buf); err != nil {
		t.Fatal(err)
	}
	if got := s.DirtyPages(); got < 2 {
		t.Fatalf("DirtyPages = %d, want >= 2 for a 2-page block write", got)
	}
	ck.Restore()
	got := make([]byte, len(buf))
	if err := s.ReadBlock(a, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x after restore, want 0", i, b)
		}
	}
}

func TestCheckpointReleaseStopsTracking(t *testing.T) {
	s := NewSpace(64 << 10)
	a := s.MustAlloc(8, 4)
	ck := s.NewCheckpoint()
	ck.Release()
	if err := s.Store32(a, 9); err != nil {
		t.Fatal(err)
	}
	if s.DirtyPages() != 0 {
		t.Fatal("released checkpoint must not keep tracking")
	}
}

func TestRestoreFullScribble(t *testing.T) {
	// Scribble over the entire mapped space, restore, and verify the image
	// is byte-identical to the snapshot — the invariant the fault-containment
	// golden-equivalence test builds on.
	s := NewSpace(128 << 10)
	a := s.MustAlloc(4096, 4)
	for off := Addr(0); off < 4096; off += 4 {
		if err := s.Store32(a+off, uint32(off)*0x9e3779b9); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]byte, s.Size()-int(PageBase))
	if err := s.ReadBlock(PageBase, want); err != nil {
		t.Fatal(err)
	}
	ck := s.NewCheckpoint()
	defer ck.Release()
	for addr := PageBase; int(addr)+4 <= s.Size(); addr += 4 {
		if err := s.Store32(addr, 0xffffffff); err != nil {
			t.Fatal(err)
		}
	}
	if n := ck.Restore(); n == 0 {
		t.Fatal("scribble marked no pages dirty")
	}
	got := make([]byte, len(want))
	if err := s.ReadBlock(PageBase, got); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("byte %d differs after restore: %#x != %#x", i, got[i], want[i])
		}
	}
}
