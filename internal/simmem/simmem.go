// Package simmem provides the simulated 32-bit address space in which all
// application data structures live. Every load and store issued by the
// NetBench applications goes through a Memory implementation — either the
// Space itself (the fault-free golden run) or the cache hierarchy with fault
// injection (the clumsy run). Because structure layouts, including pointers
// between radix-tree nodes, table entries, and queues, are encoded inside
// this space, an injected bit flip corrupts exactly the kind of state the
// paper instruments: a flipped pointer bit sends a lookup into unrelated
// memory or out of bounds (a fatal error), a flipped payload bit silently
// changes a checksum or TTL.
package simmem

import (
	"encoding/binary"
	"fmt"
)

// Addr is an address in the simulated space.
type Addr = uint32

// PageBase is the lowest valid address. The first page is kept unmapped so
// that null or near-null pointers produced by fault corruption trap as
// fatal access errors, like a real protection fault.
const PageBase Addr = 0x1000

// AccessError describes an invalid simulated memory access. The clumsy
// processor treats it as a fatal application error (Section 2: errors that
// prevent a complete execution).
type AccessError struct {
	Op     string // "load8", "store32", ...
	Addr   Addr
	Reason string
}

func (e *AccessError) Error() string {
	return fmt.Sprintf("simmem: %s at %#x: %s", e.Op, e.Addr, e.Reason)
}

// Memory is the access interface the applications are written against.
// Multi-byte quantities are little-endian; misaligned addresses have their
// low bits ignored (ARM behaviour), and out-of-range accesses return an
// *AccessError.
type Memory interface {
	Load8(a Addr) (uint8, error)
	Store8(a Addr, v uint8) error
	Load16(a Addr) (uint16, error)
	Store16(a Addr, v uint16) error
	Load32(a Addr) (uint32, error)
	Store32(a Addr, v uint32) error
}

// Space is the backing store: a flat byte array with a bump allocator.
// When a Checkpoint is active, every store additionally marks the written
// page in the dirty bitmap (see checkpoint.go); dirty is nil otherwise.
// Every field is carried across a rollback by the checkpoint machinery;
// the statecover analyzer keeps it that way.
//
//lint:checkpoint NewCheckpoint, Commit, Restore
type Space struct {
	data  []byte
	brk   Addr
	dirty []uint64
}

// NewSpace creates a space of the given size in bytes. The size must cover
// at least the unmapped first page plus some usable memory.
func NewSpace(size int) *Space {
	if size <= int(PageBase) {
		panic("simmem: space smaller than the unmapped page")
	}
	return &Space{data: make([]byte, size), brk: PageBase}
}

// Size returns the extent of the space in bytes.
func (s *Space) Size() int { return len(s.data) }

// Brk returns the current allocation frontier.
func (s *Space) Brk() Addr { return s.brk }

// Alloc carves size bytes aligned to align (a power of two) out of the
// arena and returns the base address. The returned memory is zeroed.
func (s *Space) Alloc(size, align int) (Addr, error) {
	if size < 0 {
		return 0, fmt.Errorf("simmem: negative allocation size %d", size)
	}
	if align <= 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("simmem: alignment %d is not a positive power of two", align)
	}
	base := (uint64(s.brk) + uint64(align) - 1) &^ (uint64(align) - 1)
	end := base + uint64(size)
	if end > uint64(len(s.data)) {
		return 0, fmt.Errorf("simmem: out of memory (need %d bytes at %#x, space %d)", size, base, len(s.data))
	}
	s.brk = Addr(end)
	return Addr(base), nil
}

// MustAlloc is Alloc for setup code where exhaustion is a programming
// error (sizing the space is part of each experiment's configuration).
func (s *Space) MustAlloc(size, align int) Addr {
	a, err := s.Alloc(size, align)
	if err != nil {
		panic(err)
	}
	return a
}

// check validates an access. Misaligned multi-byte accesses are not an
// error: like the ARM cores the paper simulates, the hardware simply
// ignores the low address bits (callers mask them), so a corrupted pointer
// produces wrong data rather than a trap. Only the unmapped first page and
// the end of the physical space trap.
func (s *Space) check(op string, a Addr, width int) error {
	if a < PageBase {
		return &AccessError{Op: op, Addr: a, Reason: "address in unmapped page"}
	}
	if uint64(a)+uint64(width) > uint64(len(s.data)) {
		return &AccessError{Op: op, Addr: a, Reason: "address beyond end of space"}
	}
	return nil
}

// Align rounds an address down to the natural alignment of a width-byte
// access, mirroring the ARM behaviour of ignoring the low address bits.
func Align(a Addr, width int) Addr {
	return a &^ (Addr(width) - 1)
}

// Load8 reads one byte.
func (s *Space) Load8(a Addr) (uint8, error) {
	if err := s.check("load8", a, 1); err != nil {
		return 0, err
	}
	return s.data[a], nil
}

// Store8 writes one byte.
func (s *Space) Store8(a Addr, v uint8) error {
	if err := s.check("store8", a, 1); err != nil {
		return err
	}
	s.markDirty(a, 1)
	s.data[a] = v
	return nil
}

// Load16 reads a little-endian 16-bit value.
func (s *Space) Load16(a Addr) (uint16, error) {
	a = Align(a, 2)
	if err := s.check("load16", a, 2); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(s.data[a:]), nil
}

// Store16 writes a little-endian 16-bit value.
func (s *Space) Store16(a Addr, v uint16) error {
	a = Align(a, 2)
	if err := s.check("store16", a, 2); err != nil {
		return err
	}
	s.markDirty(a, 2)
	binary.LittleEndian.PutUint16(s.data[a:], v)
	return nil
}

// Load32 reads a little-endian 32-bit value.
func (s *Space) Load32(a Addr) (uint32, error) {
	a = Align(a, 4)
	if err := s.check("load32", a, 4); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(s.data[a:]), nil
}

// Store32 writes a little-endian 32-bit value.
func (s *Space) Store32(a Addr, v uint32) error {
	a = Align(a, 4)
	if err := s.check("store32", a, 4); err != nil {
		return err
	}
	s.markDirty(a, 4)
	binary.LittleEndian.PutUint32(s.data[a:], v)
	return nil
}

// ReadBlock copies len(buf) bytes starting at a into buf without going
// through the access interface. It is used by the cache simulator for line
// fills and by tests; applications must not call it.
func (s *Space) ReadBlock(a Addr, buf []byte) error {
	if err := s.check("readblock", a, 1); err != nil {
		return err
	}
	if uint64(a)+uint64(len(buf)) > uint64(len(s.data)) {
		return &AccessError{Op: "readblock", Addr: a, Reason: "block beyond end of space"}
	}
	copy(buf, s.data[a:])
	return nil
}

// WriteBlock copies buf into the space starting at a (cache write-backs).
func (s *Space) WriteBlock(a Addr, buf []byte) error {
	if err := s.check("writeblock", a, 1); err != nil {
		return err
	}
	if uint64(a)+uint64(len(buf)) > uint64(len(s.data)) {
		return &AccessError{Op: "writeblock", Addr: a, Reason: "block beyond end of space"}
	}
	if len(buf) > 0 {
		s.markDirty(a, len(buf))
	}
	copy(s.data[a:], buf)
	return nil
}

var _ Memory = (*Space)(nil)
