package simmem

import (
	"encoding/binary"
	"fmt"
)

// StateTable manages a region of flow records that persist across packet
// boundaries — the first structure in this simulator whose corruption a
// packet-boundary rollback cannot undo. Each record carries recWords
// payload words followed by one checksum word, written through the
// charged Memory interface so integrity costs real cycles. The table
// additionally keeps a golden shadow copy in host memory, updated with
// the *intended* value of every store (the argument, not a re-read of
// possibly-corrupt simulated memory): the shadow is the oracle the
// ECC/parity recovery paths already imply, and it is what the recovery
// ladder rebuilds from.
//
// Shadow state follows the same packet-boundary transaction discipline
// as the simulated space: CommitShadow pins the mutations of a completed
// packet, RestoreShadow rolls an aborted packet's shadow writes back, so
// shadow and simulated memory revert together when containment drops a
// packet.
//
//lint:checkpoint CommitShadow, RestoreShadow
type StateTable struct {
	//lint:ephemeral layout constant fixed at construction
	base Addr
	//lint:ephemeral layout constant fixed at construction
	records int

	recWords int

	shadow    []uint32 // live golden payload words, records x recWords
	sums      []uint32 // live golden checksum per record
	committed []uint32 // shadow at the last packet boundary
	commSums  []uint32 // sums at the last packet boundary

	dirty   []int32 // record indices touched since the last commit
	isDirty []bool

	//lint:ephemeral read scratch, valid only until the next Lookup
	scratch []uint32

	// OnCorrupt is invoked with the record index when a verified read
	// finds a checksum mismatch. The processor installs the recovery
	// ladder here (evict, rebuild from shadow, or declare the run
	// unrecoverable); after a nil return the record is re-read. With no
	// handler installed a mismatch is an unprotected-corruption error.
	//
	//lint:ephemeral policy hook installed once per run, before any packet
	OnCorrupt func(idx int) error
}

// stateTableIsolation is the alignment and padding granule of the table's
// allocation: at least the largest cache line in the hierarchy (the 128-byte
// L2 line), so no cache line ever spans the table boundary. Packet buffers
// are rewritten by plain (non-write-back) DMA every packet; a line shared
// between the table's edge and a neighbouring allocation would let that
// DMA's invalidation discard unwritten flow-record stores.
const stateTableIsolation = 128

// NewStateTable allocates a table of records x (recWords+1) words in the
// space, isolated to whole cache lines. Records start unsealed; call Init
// through the charged memory before first use.
func NewStateTable(space *Space, records, recWords int) (*StateTable, error) {
	if records <= 0 || recWords <= 0 {
		return nil, fmt.Errorf("simmem: state table needs positive geometry (records %d, words %d)", records, recWords)
	}
	size := (records*(recWords+1)*4 + stateTableIsolation - 1) &^ (stateTableIsolation - 1)
	base, err := space.Alloc(size, stateTableIsolation)
	if err != nil {
		return nil, err
	}
	return &StateTable{
		base:      base,
		records:   records,
		recWords:  recWords,
		shadow:    make([]uint32, records*recWords),
		sums:      make([]uint32, records),
		committed: make([]uint32, records*recWords),
		commSums:  make([]uint32, records),
		dirty:     make([]int32, 0, records),
		isDirty:   make([]bool, records),
		scratch:   make([]uint32, recWords),
	}, nil
}

// Base returns the table's base address in the simulated space.
func (t *StateTable) Base() Addr { return t.base }

// Records returns the record count.
func (t *StateTable) Records() int { return t.records }

// RecWords returns the payload words per record (the checksum word is
// managed by the table, not the application).
func (t *StateTable) RecWords() int { return t.recWords }

// RecordBytes returns the byte footprint of one record including its
// checksum word.
func (t *StateTable) RecordBytes() int { return (t.recWords + 1) * 4 }

// RecordAddr returns the simulated address of record idx.
func (t *StateTable) RecordAddr(idx int) Addr {
	return t.base + Addr(idx*t.RecordBytes())
}

// FieldAddr returns the simulated address of payload word `word` of
// record idx.
func (t *StateTable) FieldAddr(idx, word int) Addr {
	return t.RecordAddr(idx) + Addr(word*4)
}

func (t *StateTable) sumAddr(idx int) Addr {
	return t.RecordAddr(idx) + Addr(t.recWords*4)
}

// SumAddr returns the simulated address of record idx's checksum word —
// exported for the end-of-run divergence audit, which reads stored bytes
// outside the charged path.
func (t *StateTable) SumAddr(idx int) Addr { return t.sumAddr(idx) }

// stateSum mixes the payload words with the record index so a record
// copied wholesale into the wrong slot still fails verification.
func stateSum(words []uint32, idx int) uint32 {
	h := uint32(0x811c9dc5) ^ uint32(idx)*0x9e3779b9
	for _, w := range words {
		h = (h ^ w) * 0x01000193
		h ^= h >> 17
	}
	return h
}

// SumOf computes the record checksum of the given payload words at index
// idx — exported for the end-of-run divergence audit, which reads stored
// bytes outside the charged path.
func (t *StateTable) SumOf(words []uint32, idx int) uint32 {
	return stateSum(words, idx)
}

// markDirty notes a shadow mutation of record idx for the next
// commit/restore.
//
//lint:hot-path
func (t *StateTable) markDirty(idx int) {
	if !t.isDirty[idx] {
		t.isDirty[idx] = true
		t.dirty = append(t.dirty, int32(idx)) //lint:alloc-ok capacity reaches steady state once every record has been touched; commit/restore reuse it
	}
}

// Init zeroes and seals every record through mem: after Init each record
// is a valid empty entry whose stored checksum verifies. Setup-time
// control-plane work, charged like any other table initialisation.
func (t *StateTable) Init(mem Memory) error {
	for idx := 0; idx < t.records; idx++ {
		for w := 0; w < t.recWords; w++ {
			if err := mem.Store32(t.FieldAddr(idx, w), 0); err != nil {
				return err
			}
		}
		sum := stateSum(t.shadow[idx*t.recWords:(idx+1)*t.recWords], idx)
		if err := mem.Store32(t.sumAddr(idx), sum); err != nil {
			return err
		}
		t.sums[idx] = sum
		t.commSums[idx] = sum
	}
	return nil
}

// StoreField writes one payload word of record idx through mem and
// records the intended value in the golden shadow. Callers must Seal the
// record after the last StoreField of an update, and must only update
// records they verified with Lookup in the same packet.
//
//lint:hot-path
func (t *StateTable) StoreField(mem Memory, idx, word int, v uint32) error {
	if err := mem.Store32(t.FieldAddr(idx, word), v); err != nil {
		return err
	}
	t.markDirty(idx)
	t.shadow[idx*t.recWords+word] = v
	return nil
}

// Seal recomputes the record checksum from the golden shadow and stores
// it through mem, closing an update transaction.
//
//lint:hot-path
func (t *StateTable) Seal(mem Memory, idx int) error {
	sum := stateSum(t.shadow[idx*t.recWords:(idx+1)*t.recWords], idx)
	t.markDirty(idx)
	t.sums[idx] = sum
	return mem.Store32(t.sumAddr(idx), sum)
}

// Lookup is a verified read of record idx: every payload word and the
// stored checksum are loaded through mem (charged, faultable), the
// checksum is recomputed, and on mismatch the OnCorrupt ladder runs and
// the record is re-read. The returned slice is the table's scratch
// buffer, valid until the next Lookup.
//
//lint:hot-path
func (t *StateTable) Lookup(mem Memory, idx int) ([]uint32, error) {
	for {
		for w := 0; w < t.recWords; w++ {
			v, err := mem.Load32(t.FieldAddr(idx, w))
			if err != nil {
				return nil, err
			}
			t.scratch[w] = v
		}
		stored, err := mem.Load32(t.sumAddr(idx))
		if err != nil {
			return nil, err
		}
		if stateSum(t.scratch, idx) == stored {
			return t.scratch, nil
		}
		if t.OnCorrupt == nil {
			return nil, &AccessError{Op: "state-lookup", Addr: t.RecordAddr(idx), Reason: "unprotected flow-record corruption"} //lint:alloc-ok fatal-error construction, run is over
		}
		if err := t.OnCorrupt(idx); err != nil {
			return nil, err
		}
	}
}

// ZeroShadow clears the golden shadow of record idx — the shadow half of
// an eviction (the simulated bytes are rewritten by the recovery ladder
// through the DMA engine).
func (t *StateTable) ZeroShadow(idx int) {
	for w := 0; w < t.recWords; w++ {
		t.shadow[idx*t.recWords+w] = 0
	}
	t.markDirty(idx)
	t.sums[idx] = stateSum(t.shadow[idx*t.recWords:(idx+1)*t.recWords], idx)
}

// EncodeShadow serialises the golden record idx — payload words then
// checksum, little-endian — into buf, which must hold RecordBytes. This
// is the image the recovery ladder DMA-writes to rebuild a record.
func (t *StateTable) EncodeShadow(idx int, buf []byte) {
	if len(buf) < t.RecordBytes() {
		panic("simmem: EncodeShadow buffer too small")
	}
	for w := 0; w < t.recWords; w++ {
		binary.LittleEndian.PutUint32(buf[w*4:], t.shadow[idx*t.recWords+w])
	}
	binary.LittleEndian.PutUint32(buf[t.recWords*4:], t.sums[idx])
}

// ShadowWord returns the golden value of payload word `word` of record
// idx (host-side, uncharged — audit and test use only).
func (t *StateTable) ShadowWord(idx, word int) uint32 {
	return t.shadow[idx*t.recWords+word]
}

// ShadowSum returns the golden checksum of record idx.
func (t *StateTable) ShadowSum(idx int) uint32 { return t.sums[idx] }

// CommitShadow pins the shadow mutations of a completed packet, making
// them the rollback target of the next restore.
//
//lint:hot-path
func (t *StateTable) CommitShadow() {
	for _, idx := range t.dirty {
		i := int(idx)
		copy(t.committed[i*t.recWords:(i+1)*t.recWords], t.shadow[i*t.recWords:(i+1)*t.recWords])
		t.commSums[i] = t.sums[i]
		t.isDirty[i] = false
	}
	t.dirty = t.dirty[:0]
}

// RestoreShadow rolls the shadow back to the last commit, discarding the
// aborted packet's intended writes alongside the checkpoint's memory
// restore.
//
//lint:hot-path
func (t *StateTable) RestoreShadow() {
	for _, idx := range t.dirty {
		i := int(idx)
		copy(t.shadow[i*t.recWords:(i+1)*t.recWords], t.committed[i*t.recWords:(i+1)*t.recWords])
		t.sums[i] = t.commSums[i]
		t.isDirty[i] = false
	}
	t.dirty = t.dirty[:0]
}
