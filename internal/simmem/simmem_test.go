package simmem

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func newTestSpace(t *testing.T) *Space {
	t.Helper()
	return NewSpace(64 * 1024)
}

func TestAllocAlignmentAndGrowth(t *testing.T) {
	s := newTestSpace(t)
	a1 := s.MustAlloc(3, 1)
	if a1 != PageBase {
		t.Fatalf("first allocation at %#x, want %#x", a1, PageBase)
	}
	a2 := s.MustAlloc(4, 4)
	if a2%4 != 0 || a2 < a1+3 {
		t.Fatalf("second allocation at %#x not 4-aligned after first", a2)
	}
	a3 := s.MustAlloc(1, 64)
	if a3%64 != 0 {
		t.Fatalf("allocation at %#x not 64-aligned", a3)
	}
}

func TestAllocExhaustion(t *testing.T) {
	s := NewSpace(8192)
	if _, err := s.Alloc(8192, 1); err == nil {
		t.Fatal("allocation larger than remaining space should fail")
	}
	if _, err := s.Alloc(-1, 1); err == nil {
		t.Fatal("negative size should fail")
	}
	if _, err := s.Alloc(8, 3); err == nil {
		t.Fatal("non-power-of-two alignment should fail")
	}
}

func TestNewSpaceTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for tiny space")
		}
	}()
	NewSpace(16)
}

func TestRoundTrips(t *testing.T) {
	s := newTestSpace(t)
	a := s.MustAlloc(64, 8)
	if err := s.Store32(a, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load32(a)
	if err != nil || v != 0xdeadbeef {
		t.Fatalf("Load32 = %#x, %v", v, err)
	}
	// Little-endian layout is observable byte-wise.
	b, _ := s.Load8(a)
	if b != 0xef {
		t.Fatalf("low byte = %#x, want 0xef (little endian)", b)
	}
	if err := s.Store16(a+4, 0xbead); err != nil {
		t.Fatal(err)
	}
	h, _ := s.Load16(a + 4)
	if h != 0xbead {
		t.Fatalf("Load16 = %#x", h)
	}
	if err := s.Store8(a+8, 0x7f); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Load8(a + 8); got != 0x7f {
		t.Fatalf("Load8 = %#x", got)
	}
}

func TestNullPageTraps(t *testing.T) {
	s := newTestSpace(t)
	for _, a := range []Addr{0, 4, PageBase - 4} {
		if _, err := s.Load32(a); err == nil {
			t.Errorf("load in unmapped page at %#x should fail", a)
		}
		var ae *AccessError
		_, err := s.Load32(a)
		if !errors.As(err, &ae) {
			t.Errorf("error at %#x is %T, want *AccessError", a, err)
		}
	}
}

func TestOutOfRangeTraps(t *testing.T) {
	s := NewSpace(8192)
	if _, err := s.Load32(8192); err == nil {
		t.Error("load past end should fail")
	}
	// A nearly-straddling access aligns down and stays in range.
	if _, err := s.Load32(8190); err != nil {
		t.Errorf("aligned-down load at the edge should succeed: %v", err)
	}
	if _, err := s.Load8(8192); err == nil {
		t.Error("byte load past end should fail")
	}
	if err := s.Store8(9000, 1); err == nil {
		t.Error("store past end should fail")
	}
}

func TestMisalignmentAlignsDown(t *testing.T) {
	// Like the ARM cores the paper simulates, misaligned accesses ignore
	// the low address bits rather than trapping.
	s := newTestSpace(t)
	a := s.MustAlloc(16, 4)
	if err := s.Store32(a, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	v, err := s.Load32(a + 1)
	if err != nil || v != 0xdeadbeef {
		t.Errorf("misaligned 32-bit load = %#x, %v; want aligned-down value", v, err)
	}
	h, err := s.Load16(a + 1)
	if err != nil || h != 0xbeef {
		t.Errorf("misaligned 16-bit load = %#x, %v", h, err)
	}
	if err := s.Store32(a+2, 1); err != nil {
		t.Errorf("misaligned store should align down, got %v", err)
	}
	if v, _ := s.Load32(a); v != 1 {
		t.Errorf("misaligned store landed at %#x", v)
	}
}

func TestAlign(t *testing.T) {
	if Align(0x1003, 4) != 0x1000 || Align(0x1003, 2) != 0x1002 || Align(0x1003, 1) != 0x1003 {
		t.Fatal("Align rounds incorrectly")
	}
}

func TestAccessErrorMessage(t *testing.T) {
	s := newTestSpace(t)
	_, err := s.Load32(2)
	if err == nil || !strings.Contains(err.Error(), "unmapped") {
		t.Fatalf("error = %v, want mention of unmapped page", err)
	}
}

func TestBlockOperations(t *testing.T) {
	s := newTestSpace(t)
	a := s.MustAlloc(128, 32)
	src := make([]byte, 32)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := s.WriteBlock(a, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, 32)
	if err := s.ReadBlock(a, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if src[i] != dst[i] {
			t.Fatalf("byte %d: %#x != %#x", i, dst[i], src[i])
		}
	}
	if err := s.ReadBlock(Addr(s.Size()-4), make([]byte, 32)); err == nil {
		t.Error("block read past end should fail")
	}
	if err := s.WriteBlock(2, src); err == nil {
		t.Error("block write in null page should fail")
	}
}

func TestLoadStoreProperty(t *testing.T) {
	s := newTestSpace(t)
	base := s.MustAlloc(4096, 4)
	f := func(off uint16, v uint32) bool {
		a := base + Addr(off%1024)*4
		if err := s.Store32(a, v); err != nil {
			return false
		}
		got, err := s.Load32(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHelpers(t *testing.T) {
	s := newTestSpace(t)
	a := s.MustAlloc(64, 1)
	if err := StoreBytes(s, a, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if err := LoadBytes(s, a, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[2] != 3 {
		t.Fatalf("LoadBytes = %v", buf)
	}
	if err := StoreString(s, a+8, "GET /x"); err != nil {
		t.Fatal(err)
	}
	str, err := LoadString(s, a+8, 32)
	if err != nil || str != "GET /x" {
		t.Fatalf("LoadString = %q, %v", str, err)
	}
	// maxLen truncation
	str, err = LoadString(s, a+8, 3)
	if err != nil || str != "GET" {
		t.Fatalf("truncated LoadString = %q, %v", str, err)
	}
	// errors propagate
	if err := StoreBytes(s, 2, []byte{1}); err == nil {
		t.Error("StoreBytes into null page should fail")
	}
	if _, err := LoadString(s, 2, 4); err == nil {
		t.Error("LoadString from null page should fail")
	}
}
