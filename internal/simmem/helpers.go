package simmem

// Helper accessors shared by the applications. They are written against the
// Memory interface so the same application code runs on the golden space and
// on the fault-injected cache hierarchy.

// StoreBytes writes p byte-by-byte starting at a.
func StoreBytes(m Memory, a Addr, p []byte) error {
	for i, b := range p {
		if err := m.Store8(a+Addr(i), b); err != nil {
			return err
		}
	}
	return nil
}

// LoadBytes reads len(p) bytes starting at a.
func LoadBytes(m Memory, a Addr, p []byte) error {
	for i := range p {
		b, err := m.Load8(a + Addr(i))
		if err != nil {
			return err
		}
		p[i] = b
	}
	return nil
}

// StoreString writes the bytes of str followed by a NUL terminator.
func StoreString(m Memory, a Addr, str string) error {
	for i := 0; i < len(str); i++ {
		if err := m.Store8(a+Addr(i), str[i]); err != nil {
			return err
		}
	}
	return m.Store8(a+Addr(len(str)), 0)
}

// LoadString reads a NUL-terminated string of at most maxLen bytes.
func LoadString(m Memory, a Addr, maxLen int) (string, error) {
	buf := make([]byte, 0, 16)
	for i := 0; i < maxLen; i++ {
		b, err := m.Load8(a + Addr(i))
		if err != nil {
			return "", err
		}
		if b == 0 {
			break
		}
		buf = append(buf, b)
	}
	return string(buf), nil
}
