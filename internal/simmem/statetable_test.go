package simmem

import (
	"encoding/binary"
	"testing"
)

func newTestTable(t *testing.T) (*StateTable, *Space) {
	t.Helper()
	space := NewSpace(1 << 16)
	st, err := NewStateTable(space, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Init(space); err != nil {
		t.Fatalf("init: %v", err)
	}
	return st, space
}

func TestStateTableInitSealsEveryRecord(t *testing.T) {
	st, space := newTestTable(t)
	for idx := 0; idx < st.Records(); idx++ {
		words, err := st.Lookup(space, idx)
		if err != nil {
			t.Fatalf("record %d: %v", idx, err)
		}
		for w, v := range words {
			if v != 0 {
				t.Errorf("record %d word %d = %d after Init, want 0", idx, w, v)
			}
		}
	}
}

func TestStateTableIsolationGeometry(t *testing.T) {
	space := NewSpace(1 << 16)
	if _, err := space.Alloc(4, 4); err != nil { // misalign the frontier
		t.Fatal(err)
	}
	st, err := NewStateTable(space, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Base()%stateTableIsolation != 0 {
		t.Errorf("table base %#x is not %d-byte aligned", st.Base(), stateTableIsolation)
	}
	next, err := space.Alloc(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	span := int(next - st.Base())
	if span%stateTableIsolation != 0 {
		t.Errorf("next allocation %d bytes past table base; a cache line spans the table boundary", span)
	}
}

func TestStateTableStoreSealLookupRoundtrip(t *testing.T) {
	st, space := newTestTable(t)
	want := []uint32{0xdeadbeef, 42, 7}
	for w, v := range want {
		if err := st.StoreField(space, 5, w, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(space, 5); err != nil {
		t.Fatal(err)
	}
	got, err := st.Lookup(space, 5)
	if err != nil {
		t.Fatalf("lookup after seal: %v", err)
	}
	for w := range want {
		if got[w] != want[w] {
			t.Errorf("word %d = %#x, want %#x", w, got[w], want[w])
		}
	}
}

func TestStateTableDetectsCorruption(t *testing.T) {
	st, space := newTestTable(t)
	if err := st.StoreField(space, 2, 0, 99); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(space, 2); err != nil {
		t.Fatal(err)
	}
	// Flip one stored bit behind the table's back.
	v, _ := space.Load32(st.FieldAddr(2, 0))
	if err := space.Store32(st.FieldAddr(2, 0), v^4); err != nil {
		t.Fatal(err)
	}
	// No handler installed: corruption is an unprotected-access error.
	if _, err := st.Lookup(space, 2); err == nil {
		t.Fatal("corrupt record verified with no OnCorrupt handler")
	}
	// With a repair handler the record is rebuilt and re-read.
	fired := 0
	st.OnCorrupt = func(idx int) error {
		fired++
		if idx != 2 {
			t.Fatalf("OnCorrupt idx = %d, want 2", idx)
		}
		buf := make([]byte, st.RecordBytes())
		st.EncodeShadow(idx, buf)
		return space.WriteBlock(st.RecordAddr(idx), buf)
	}
	words, err := st.Lookup(space, 2)
	if err != nil {
		t.Fatalf("lookup with repair: %v", err)
	}
	if fired != 1 {
		t.Errorf("OnCorrupt fired %d times, want 1", fired)
	}
	if words[0] != 99 {
		t.Errorf("repaired word = %d, want the golden 99", words[0])
	}
}

func TestStateTableChecksumBindsIndex(t *testing.T) {
	st, space := newTestTable(t)
	if err := st.StoreField(space, 1, 0, 77); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(space, 1); err != nil {
		t.Fatal(err)
	}
	// Copy record 1 wholesale into slot 3: payload and checksum both move,
	// but the checksum is seeded with the record index, so the transplanted
	// record must fail verification.
	buf := make([]byte, st.RecordBytes())
	st.EncodeShadow(1, buf)
	if err := space.WriteBlock(st.RecordAddr(3), buf); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Lookup(space, 3); err == nil {
		t.Error("record transplanted into the wrong slot verified")
	}
}

func TestStateTableShadowCommitRestore(t *testing.T) {
	st, space := newTestTable(t)
	if err := st.StoreField(space, 4, 1, 10); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(space, 4); err != nil {
		t.Fatal(err)
	}
	st.CommitShadow()
	committedSum := st.ShadowSum(4)

	// An aborted packet's shadow writes roll back with RestoreShadow.
	if err := st.StoreField(space, 4, 1, 20); err != nil {
		t.Fatal(err)
	}
	if err := st.Seal(space, 4); err != nil {
		t.Fatal(err)
	}
	st.RestoreShadow()
	if got := st.ShadowWord(4, 1); got != 10 {
		t.Errorf("shadow word after restore = %d, want committed 10", got)
	}
	if st.ShadowSum(4) != committedSum {
		t.Error("shadow sum did not roll back with the payload")
	}

	// Untouched records are unaffected by either boundary operation.
	if got := st.ShadowWord(0, 0); got != 0 {
		t.Errorf("untouched record shadow = %d, want 0", got)
	}
}

func TestStateTableEncodeShadowLayout(t *testing.T) {
	st, space := newTestTable(t)
	for w, v := range []uint32{1, 2, 3} {
		if err := st.StoreField(space, 6, w, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(space, 6); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, st.RecordBytes())
	st.EncodeShadow(6, buf)
	// The encoded image must be byte-identical to the sealed stored bytes:
	// this equality is what makes a ladder rebuild an exact restore.
	for i := 0; i < st.RecordBytes(); i += 4 {
		stored, err := space.Load32(st.RecordAddr(6) + Addr(i))
		if err != nil {
			t.Fatal(err)
		}
		if enc := binary.LittleEndian.Uint32(buf[i:]); enc != stored {
			t.Errorf("image word %d = %#x, stored = %#x", i/4, enc, stored)
		}
	}
	if got := st.SumOf([]uint32{1, 2, 3}, 6); got != st.ShadowSum(6) {
		t.Errorf("SumOf = %#x, shadow sum = %#x", got, st.ShadowSum(6))
	}
}

func TestStateTableZeroShadowReseals(t *testing.T) {
	st, space := newTestTable(t)
	for w, v := range []uint32{5, 6, 7} {
		if err := st.StoreField(space, 7, w, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Seal(space, 7); err != nil {
		t.Fatal(err)
	}
	st.ZeroShadow(7)
	// The zeroed shadow must be internally consistent: its sum is the sum
	// of zeros, so a DMA of the encoded image yields a verifiable record.
	if got, want := st.ShadowSum(7), st.SumOf([]uint32{0, 0, 0}, 7); got != want {
		t.Errorf("zeroed shadow sum = %#x, want %#x", got, want)
	}
	buf := make([]byte, st.RecordBytes())
	st.EncodeShadow(7, buf)
	if err := space.WriteBlock(st.RecordAddr(7), buf); err != nil {
		t.Fatal(err)
	}
	words, err := st.Lookup(space, 7)
	if err != nil {
		t.Fatalf("evicted record does not verify: %v", err)
	}
	for w, v := range words {
		if v != 0 {
			t.Errorf("evicted word %d = %d, want 0", w, v)
		}
	}
}
