package simmem

// Dirty-page tracking and checkpoint/restore: the state-containment
// substrate of the drop-and-continue recovery policy. A router that "drops
// the offending packet and keeps forwarding" (Section 2 of the paper) must
// be able to discard whatever a half-processed packet did to its control
// state; here that is modelled as a shadow copy of the simulated space plus
// a page-granular dirty bitmap, committed at every packet boundary and
// rolled back when a fatal error strikes mid-packet.
//
// The tracking is off by default: a Space with no checkpoint attached pays
// one nil-check per store, so the golden run and the paper-fidelity abort
// policy are untouched.

import "math/bits"

// PageShift is the log2 of the checkpoint page size (4 KiB pages).
const PageShift = 12

// PageSize is the granularity of dirty tracking and restore.
const PageSize = 1 << PageShift

// markDirty flags every page overlapped by a [a, a+width) write. It is a
// no-op (one branch) unless a Checkpoint enabled tracking.
func (s *Space) markDirty(a Addr, width int) {
	if s.dirty == nil {
		return
	}
	first := int(a) >> PageShift
	last := (int(a) + width - 1) >> PageShift
	for p := first; p <= last; p++ {
		s.dirty[p>>6] |= 1 << (uint(p) & 63)
	}
}

// DirtyPages returns the number of pages written since tracking was last
// reset (zero when tracking is off). Exposed for tests and telemetry.
func (s *Space) DirtyPages() int {
	n := 0
	for _, w := range s.dirty {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Checkpoint is a restorable snapshot of a Space. Creating one copies the
// whole space into a shadow buffer and turns on dirty-page tracking; from
// then on Commit folds newly written pages into the shadow (advancing the
// restore point to the current state) and Restore copies them back
// (rewinding to the last commit). Exactly one checkpoint can be active per
// space; creating a new one supersedes the old.
//
//lint:checkpoint NewCheckpoint, Commit, Restore
type Checkpoint struct {
	space  *Space
	shadow []byte
	brk    Addr
}

// NewCheckpoint snapshots the current state of the space and enables
// dirty-page tracking against it.
func (s *Space) NewCheckpoint() *Checkpoint {
	c := &Checkpoint{space: s, shadow: make([]byte, len(s.data)), brk: s.brk}
	copy(c.shadow, s.data)
	pages := (len(s.data) + PageSize - 1) >> PageShift
	s.dirty = make([]uint64, (pages+63)/64)
	return c
}

// forEachDirty invokes f with the byte extent of every dirty page, clears
// the bitmap, and returns the number of dirty pages visited.
func (c *Checkpoint) forEachDirty(f func(start, end int)) int {
	s := c.space
	n := 0
	for wi, w := range s.dirty {
		if w == 0 {
			continue
		}
		for ; w != 0; w &= w - 1 {
			p := wi<<6 + bits.TrailingZeros64(w)
			start := p << PageShift
			end := start + PageSize
			if end > len(s.data) {
				end = len(s.data)
			}
			f(start, end)
			n++
		}
		s.dirty[wi] = 0
	}
	return n
}

// Commit folds every page written since the last commit (or since the
// checkpoint was created) into the shadow, making the current state the new
// restore point. It returns the number of pages committed.
//
//lint:hot-path
func (c *Checkpoint) Commit() int {
	//lint:alloc-ok the closure captures only the receiver; it is inlined, and the zero-alloc pin verifies it
	n := c.forEachDirty(func(start, end int) {
		copy(c.shadow[start:end], c.space.data[start:end])
	})
	c.brk = c.space.brk
	return n
}

// Restore copies the shadow back over every page written since the last
// commit and rewinds the allocation frontier, discarding everything the
// aborted packet did to the simulated memory. It returns the number of
// pages restored.
//
//lint:hot-path
func (c *Checkpoint) Restore() int {
	//lint:alloc-ok the closure captures only the receiver; it is inlined, and the zero-alloc pin verifies it
	n := c.forEachDirty(func(start, end int) {
		copy(c.space.data[start:end], c.shadow[start:end])
	})
	c.space.brk = c.brk
	return n
}

// Release turns dirty tracking off, returning the space to its zero-cost
// store path. The checkpoint must not be used afterwards.
func (c *Checkpoint) Release() {
	if c.space.dirty != nil {
		c.space.dirty = nil
	}
}
