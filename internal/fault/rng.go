// Package fault turns the circuit-level fault probabilities into concrete
// bit flips on cache accesses. It provides a deterministic random number
// generator (so every experiment is reproducible from a seed), the per-bit
// fault model as a function of the relative cycle time, and an efficient
// injector that realises the Bernoulli fault process with geometric skip
// sampling — the simulator never pays a per-access random draw for fault
// rates in the 1e-7 range.
package fault

// RNG is a small, fast, deterministic generator (splitmix64 seeding into
// xorshift64*). It deliberately does not use math/rand so that fault
// sequences are stable across Go releases; reproducibility of an injected
// fault trace is part of the experiment contract.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator. Any seed, including zero, is valid: the seed
// is first diffused through a splitmix64 step so the internal state is
// never the all-zero fixed point of the xorshift.
func (r *RNG) Seed(seed uint64) {
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform sample in [0, n). It panics for n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("fault: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Fork derives an independent generator whose stream is a deterministic
// function of the parent's current state and the given label. Components
// that need their own streams (e.g. the trace generator vs the injector)
// fork with distinct labels so that changing one component's consumption
// does not perturb the other.
func (r *RNG) Fork(label uint64) *RNG {
	return NewRNG(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}
