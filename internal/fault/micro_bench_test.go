package fault

import "testing"

func BenchmarkInjectorNext(b *testing.B) {
	in := NewInjector(NewModel(1), NewRNG(1), 32)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= in.Next()
	}
	_ = sink
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
