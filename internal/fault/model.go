package fault

import (
	"clumsy/internal/circuit"
)

// Multi-bit fault correlation ratios (Section 5.1): with the single-bit
// fault probability anchored at 2.59e-7, two-bit faults occur at 2.59e-9
// and three-bit faults at 2.59e-10 — ratios of 1e-2 and 1e-3.
const (
	DoubleBitRatio = 1e-2
	TripleBitRatio = 1e-3
)

// Model maps the relative cycle time of the L1 data cache to per-access
// fault probabilities, using the integrated circuit model.
//
// Scale multiplies every probability. The default of 1 reproduces the
// paper's absolute rates; experiments on short traces may raise it to keep
// the statistics tight, and every report states the scale used.
type Model struct {
	Cell  circuit.Cell
	Scale float64

	memo map[float64]float64 // cr -> per-bit probability (unscaled)
}

// NewModel returns a fault model backed by the calibrated default SRAM
// cell with the given scale.
func NewModel(scale float64) *Model {
	if scale <= 0 {
		panic("fault: non-positive fault scale")
	}
	return &Model{Cell: circuit.DefaultCell(), Scale: scale, memo: map[float64]float64{}}
}

// PerBit returns the scaled per-bit fault probability at relative cycle
// time cr. Results are memoised: the circuit integration runs once per
// distinct operating point.
func (m *Model) PerBit(cr float64) float64 {
	if m.memo == nil {
		m.memo = map[float64]float64{}
	}
	p, ok := m.memo[cr]
	if !ok {
		p = m.Cell.FaultProbability(cr)
		m.memo[cr] = p
	}
	p *= m.Scale
	if p > 1 {
		p = 1
	}
	return p
}

// EventRate returns the probability that an access of the given bit width
// suffers at least one fault event, including the correlated double- and
// triple-bit events.
func (m *Model) EventRate(cr float64, bits int) float64 {
	if bits <= 0 {
		panic("fault: non-positive access width")
	}
	p := m.PerBit(cr) * (1 + DoubleBitRatio + TripleBitRatio) * float64(bits)
	if p > 1 {
		p = 1
	}
	return p
}
