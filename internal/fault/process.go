package fault

import "math"

// Process is the common face of every fault process the cache can host.
// The paper's memoryless per-access process (*Injector), the Gilbert–
// Elliott burst process (*Burst), and the permanent/intermittent stuck-at
// process (*StuckAt) all implement it. NextAt receives the word-aligned
// address of the access so that spatially anchored processes (stuck-at
// maps) can key faults to physical array cells; address-blind processes
// ignore it.
type Process interface {
	// NextAt advances the process by one access to the given word address
	// and returns the fault mask to XOR into the accessed word.
	NextAt(addr uint64) uint64
	// SetCycleTime moves the process to a new relative cycle time.
	SetCycleTime(cr float64)
	// CycleTime returns the current relative cycle time.
	CycleTime() float64
	// SetEnabled turns fault injection on or off. Disabled accesses pass
	// through untouched and do not advance the process.
	SetEnabled(on bool)
	// Enabled reports whether faults are currently being injected.
	Enabled() bool
	// ResetCounters clears the per-epoch access and fault counters.
	ResetCounters()
}

var (
	_ Process = (*Injector)(nil)
	_ Process = (*Burst)(nil)
	_ Process = (*StuckAt)(nil)
)

// geometricGap draws the number of non-events before the next event of a
// Bernoulli process with probability rate per trial. It consumes exactly
// the draws the original Injector.redraw consumed, so refactoring the
// injector onto it preserves byte-identical fault traces.
func geometricGap(rng *RNG, rate float64) int64 {
	if rate <= 0 {
		return math.MaxInt64
	}
	if rate >= 1 {
		return 0
	}
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	g := math.Floor(math.Log(u) / math.Log(1-rate))
	if g >= math.MaxInt64 || g < 0 {
		return math.MaxInt64
	}
	return int64(g)
}

// drawMask chooses the multiplicity of a fault event (with the correlated
// double/triple-bit probabilities of the model) and returns the bit mask.
// It is shared by every process so all regimes flip bits identically.
func drawMask(rng *RNG, bits int) (mask uint64, flips int) {
	n := 1
	u := rng.Float64() * (1 + DoubleBitRatio + TripleBitRatio)
	switch {
	case u > 1+DoubleBitRatio:
		n = 3
	case u > 1:
		n = 2
	}
	for flipped := 0; flipped < n; {
		b := uint(rng.Intn(bits))
		if mask&(1<<b) == 0 {
			mask |= 1 << b
			flipped++
		}
	}
	return mask, n
}

// BurstParams configures the Gilbert–Elliott two-state burst process.
type BurstParams struct {
	// MeanGoodAccesses is the mean residence time of the good state, in
	// accesses. In the good state faults arrive at the paper's base rate.
	MeanGoodAccesses float64
	// MeanBadAccesses is the mean residence time of the bad (droop/thermal
	// episode) state, in accesses.
	MeanBadAccesses float64
	// BadMultiplier scales the base fault rate while in the bad state.
	BadMultiplier float64
}

// DefaultBurstParams returns the calibration used by the reliability
// study: episodes roughly once per few hundred thousand accesses, lasting
// a few thousand accesses, at 100x the base rate — bursty enough that
// k-strike retry alone cannot ride them out.
func DefaultBurstParams() BurstParams {
	return BurstParams{
		MeanGoodAccesses: 4e5,
		MeanBadAccesses:  4e3,
		BadMultiplier:    100,
	}
}

// Burst is a Gilbert–Elliott two-state fault process: a Markov chain
// alternating between a good state at the paper's base rate and a bad
// state at BadMultiplier times that rate. State residence times and fault
// gaps are both geometric, so the process stays exactly reproducible from
// the seed and costs no per-access draws.
//
//lint:checkpoint ResetCounters
type Burst struct {
	//lint:ephemeral configuration, immutable during a run
	model *Model
	//lint:ephemeral fault-process position; fault time never rewinds
	rng *RNG
	//lint:ephemeral configuration, immutable during a run
	bits int
	//lint:ephemeral configuration, immutable during a run
	p BurstParams
	//lint:ephemeral operating point, changed only by SetCycleTime
	cr float64
	//lint:ephemeral segment gating toggled by the experiment harness
	enabled bool

	//lint:ephemeral fault-process position; fault time never rewinds
	bad bool
	//lint:ephemeral fault-process position; fault time never rewinds
	stay int64 // accesses remaining in the current state
	//lint:ephemeral fault-process position; fault time never rewinds
	skip int64 // fault-free accesses before the next fault
	//lint:ephemeral derived from the operating point by SetCycleTime
	goodRate float64
	//lint:ephemeral derived from the operating point by SetCycleTime
	badRate float64

	// OnTransition, if set, is invoked on every state change with the new
	// state (true = entering the bad state). Wired to trace events.
	//lint:ephemeral observer wiring, not process state
	OnTransition func(bad bool)

	// Counters for the run reports and the dynamic frequency controller.
	Accesses uint64 // accesses observed while enabled
	Events   uint64 // fault events injected
	BitFlips uint64 // total bits flipped
	// Episodes is deliberately cumulative: it survives ResetCounters so
	// the run report can total bad-state episodes across epochs.
	//lint:ephemeral cumulative across epochs by design; see ResetCounters
	Episodes uint64 // bad-state episodes entered
}

// NewBurst returns an enabled burst process for accesses of the given bit
// width, starting in the good state at full-swing cycle time (Cr = 1).
func NewBurst(m *Model, rng *RNG, bits int, p BurstParams) *Burst {
	if bits <= 0 || bits > 64 {
		panic("fault: access width out of range")
	}
	if p.MeanGoodAccesses < 1 || p.MeanBadAccesses < 1 || p.BadMultiplier <= 0 {
		panic("fault: burst parameters out of range")
	}
	b := &Burst{model: m, rng: rng, bits: bits, p: p, enabled: true}
	b.stay = geometricGap(rng, 1/p.MeanGoodAccesses) + 1
	b.SetCycleTime(1)
	return b
}

// SetCycleTime moves the process to a new relative cycle time. Both state
// rates are recomputed and the pending fault gap is redrawn at the current
// state's new rate; state residence is rate-independent and carries over.
func (b *Burst) SetCycleTime(cr float64) {
	b.cr = cr
	b.goodRate = b.model.EventRate(cr, b.bits)
	b.badRate = b.goodRate * b.p.BadMultiplier
	if b.badRate > 1 {
		b.badRate = 1
	}
	b.skip = geometricGap(b.rng, b.rate())
}

// CycleTime returns the process's current relative cycle time.
func (b *Burst) CycleTime() float64 { return b.cr }

// SetEnabled turns fault injection on or off.
func (b *Burst) SetEnabled(on bool) { b.enabled = on }

// Enabled reports whether faults are currently being injected.
func (b *Burst) Enabled() bool { return b.enabled }

// Bad reports whether the process is currently in the bad state.
func (b *Burst) Bad() bool { return b.bad }

func (b *Burst) rate() float64 {
	if b.bad {
		return b.badRate
	}
	return b.goodRate
}

func (b *Burst) toggle() {
	b.bad = !b.bad
	mean := b.p.MeanGoodAccesses
	if b.bad {
		mean = b.p.MeanBadAccesses
		b.Episodes++
	}
	b.stay = geometricGap(b.rng, 1/mean) + 1
	b.skip = geometricGap(b.rng, b.rate())
	if b.OnTransition != nil {
		b.OnTransition(b.bad)
	}
}

// NextAt advances the process by one access and returns the fault mask.
// The burst process is address-blind.
func (b *Burst) NextAt(addr uint64) uint64 { return b.Next() }

// Next advances the fault process by one access and returns the fault
// mask to XOR into the accessed word.
func (b *Burst) Next() uint64 {
	if !b.enabled {
		return 0
	}
	b.Accesses++
	if b.stay <= 0 {
		b.toggle()
	}
	b.stay--
	if b.skip > 0 {
		b.skip--
		return 0
	}
	b.skip = geometricGap(b.rng, b.rate())
	b.Events++
	mask, n := drawMask(b.rng, b.bits)
	b.BitFlips += uint64(n)
	return mask
}

// ResetCounters clears the access and fault counters. Episodes is
// cumulative and survives resets.
func (b *Burst) ResetCounters() {
	b.Accesses, b.Events, b.BitFlips = 0, 0, 0
}

// StuckAtParams configures the permanent/intermittent stuck-at process.
type StuckAtParams struct {
	// WeakCellFraction is the fraction of cache words carrying one
	// marginal cell.
	WeakCellFraction float64
	// MinThreshold and MaxThreshold bound the per-cell critical cycle
	// time: a weak cell faults on every access once Cr drops below its
	// threshold (drawn uniformly from this range at seeding).
	MinThreshold float64
	MaxThreshold float64
	// IntermittentBand widens each threshold upward by this relative
	// margin: inside the band the cell faults intermittently with
	// IntermittentProb per access, modelling the marginal region a cell
	// traverses before failing hard.
	IntermittentBand float64
	IntermittentProb float64
}

// DefaultStuckAtParams returns the calibration used by the reliability
// study: about 2% of words carry a weak cell, with critical thresholds
// spread across the paper's operating range so aggressive cycle times
// expose progressively more permanent faults.
func DefaultStuckAtParams() StuckAtParams {
	return StuckAtParams{
		WeakCellFraction: 0.02,
		MinThreshold:     0.3,
		MaxThreshold:     0.8,
		IntermittentBand: 0.15,
		IntermittentProb: 0.5,
	}
}

type stuckCell struct {
	bit    int8    // faulting bit position, -1 = no weak cell
	thresh float64 // critical relative cycle time
}

// StuckAt layers a per-word stuck-at fault map over an inner transient
// process. Each weak cell carries a critical cycle time: below it the
// cell faults on every access (permanent); just above it, inside the
// intermittent band, it faults probabilistically. The map is keyed by the
// physical array word (addr/4 mod words), which for the direct-mapped L1
// data cache is exactly the frame the address occupies — so a weak cell
// strikes the same line on every visit, the access pattern line disable
// exists to contain.
//
//lint:checkpoint ResetCounters
type StuckAt struct {
	inner Process
	//lint:ephemeral intermittent-band position; fault time never rewinds
	rng *RNG // intermittent-band draws; cells are seeded at construction
	//lint:ephemeral configuration, immutable during a run
	words int // power-of-two word count of the backing array
	//lint:ephemeral weak-cell map, seeded at construction and never mutated
	cells []stuckCell
	//lint:ephemeral configuration, immutable during a run
	band float64
	//lint:ephemeral configuration, immutable during a run
	prob float64
	//lint:ephemeral operating point, changed only by SetCycleTime
	cr float64
	//lint:ephemeral segment gating toggled by the experiment harness
	enabled bool

	//lint:ephemeral cumulative across epochs by design; see ResetCounters
	PermanentHits uint64 // accesses faulted by a cell below threshold
	//lint:ephemeral cumulative across epochs by design; see ResetCounters
	IntermittentHits uint64 // accesses faulted inside the band
}

// NewStuckAt seeds a stuck-at map over an array of the given word count
// (must be a power of two) and layers it on top of inner. The map is
// drawn from rng at construction, so identical seeds give identical maps.
func NewStuckAt(inner Process, rng *RNG, words int, p StuckAtParams) *StuckAt {
	if words <= 0 || words&(words-1) != 0 {
		panic("fault: stuck-at word count must be a positive power of two")
	}
	if p.WeakCellFraction < 0 || p.WeakCellFraction > 1 || p.MaxThreshold < p.MinThreshold {
		panic("fault: stuck-at parameters out of range")
	}
	s := &StuckAt{inner: inner, rng: rng, words: words, enabled: true}
	s.cells = make([]stuckCell, words)
	for w := range s.cells {
		s.cells[w].bit = -1
		if rng.Float64() < p.WeakCellFraction {
			s.cells[w].bit = int8(rng.Intn(32))
			s.cells[w].thresh = p.MinThreshold + rng.Float64()*(p.MaxThreshold-p.MinThreshold)
		}
	}
	s.band = p.IntermittentBand
	s.prob = p.IntermittentProb
	// The inner process starts at Cr = 1 from its own constructor; going
	// through SetCycleTime here would consume an extra gap draw and shift
	// the transient stream off the paper regime's — with no stuck cell
	// exposed, StuckAt must reproduce the inner process bit-for-bit.
	s.cr = 1
	return s
}

// WeakCells returns the number of words carrying a weak cell.
func (s *StuckAt) WeakCells() int {
	n := 0
	for _, c := range s.cells {
		if c.bit >= 0 {
			n++
		}
	}
	return n
}

// SetCycleTime moves the process (and its inner transient process) to a
// new relative cycle time.
func (s *StuckAt) SetCycleTime(cr float64) {
	s.cr = cr
	s.inner.SetCycleTime(cr)
}

// CycleTime returns the process's current relative cycle time.
func (s *StuckAt) CycleTime() float64 { return s.cr }

// SetEnabled turns fault injection on or off for both layers.
func (s *StuckAt) SetEnabled(on bool) {
	s.enabled = on
	s.inner.SetEnabled(on)
}

// Enabled reports whether faults are currently being injected.
func (s *StuckAt) Enabled() bool { return s.enabled }

// NextAt advances the inner transient process and overlays the stuck-at
// map for the physical word the address occupies.
func (s *StuckAt) NextAt(addr uint64) uint64 {
	if !s.enabled {
		return 0
	}
	mask := s.inner.NextAt(addr)
	c := &s.cells[(addr>>2)&uint64(s.words-1)]
	if c.bit < 0 {
		return mask
	}
	switch {
	case s.cr < c.thresh:
		s.PermanentHits++
		mask |= 1 << uint(c.bit)
	case s.cr < c.thresh*(1+s.band):
		if s.rng.Float64() < s.prob {
			s.IntermittentHits++
			mask |= 1 << uint(c.bit)
		}
	}
	return mask
}

// ResetCounters clears the per-epoch counters of the inner process. The
// stuck-at hit counters are cumulative and survive resets.
func (s *StuckAt) ResetCounters() { s.inner.ResetCounters() }
