package fault

import (
	"math/bits"
	"testing"
)

// trace collects the mask sequence of n enabled accesses.
func trace(p Process, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = p.NextAt(uint64(i * 4))
	}
	return out
}

// TestInjectorDisablePreservesGap is the regression contract of the
// enable/disable path: disabled accesses pass through without advancing
// the process, so an injector that is switched off and on again produces
// exactly the fault trace of one that never was — the pending geometric
// gap survives the round trip.
func TestInjectorDisablePreservesGap(t *testing.T) {
	m := NewModel(5e4)
	mk := func() *Injector { return NewInjector(m, NewRNG(42).Fork(0xfa17), 32) }

	ref := mk()
	want := trace(ref, 3000)

	in := mk()
	got := trace(in, 1000)
	in.SetEnabled(false)
	for i := 0; i < 500; i++ {
		if mask := in.Next(); mask != 0 {
			t.Fatalf("disabled access %d injected %#x", i, mask)
		}
	}
	in.SetEnabled(true)
	got = append(got, trace(in, 2000)...)

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("access %d: mask %#x after disable/enable, want %#x", i, got[i], want[i])
		}
	}
}

// TestInjectorSetCycleTimeMidGapDeterministic pins the rescale semantics:
// SetCycleTime in the middle of a pending gap redraws it at the new rate
// from the same RNG stream, so two injectors given the identical call
// schedule produce byte-identical traces.
func TestInjectorSetCycleTimeMidGapDeterministic(t *testing.T) {
	m := NewModel(5e4)
	run := func() []uint64 {
		in := NewInjector(m, NewRNG(9).Fork(0xfa17), 32)
		out := trace(in, 700)
		in.SetCycleTime(0.5)
		out = append(out, trace(in, 700)...)
		in.SetCycleTime(0.25)
		out = append(out, trace(in, 700)...)
		in.SetCycleTime(1)
		return append(out, trace(in, 700)...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d: %#x vs %#x — SetCycleTime mid-gap is not deterministic", i, a[i], b[i])
		}
	}
	faults := 0
	for _, mask := range a {
		if mask != 0 {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("schedule injected no faults; the test exercised nothing")
	}
}

func TestBurstDeterminism(t *testing.T) {
	m := NewModel(1e4)
	mk := func() *Burst {
		return NewBurst(m, NewRNG(7).Fork(0xfa17), 32, BurstParams{
			MeanGoodAccesses: 500, MeanBadAccesses: 100, BadMultiplier: 100})
	}
	a, b := mk(), mk()
	ta, tb := trace(a, 50000), trace(b, 50000)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("access %d: %#x vs %#x", i, ta[i], tb[i])
		}
	}
	if a.Episodes != b.Episodes || a.Events != b.Events || a.BitFlips != b.BitFlips {
		t.Fatalf("counters diverge: %+v vs %+v", a, b)
	}
	if a.Episodes == 0 {
		t.Fatal("short residence times produced no bad-state episodes")
	}
	if a.Events == 0 {
		t.Fatal("no fault events at an extreme scale")
	}
}

func TestBurstTransitionsAlternate(t *testing.T) {
	m := NewModel(1)
	b := NewBurst(m, NewRNG(3), 32, BurstParams{
		MeanGoodAccesses: 50, MeanBadAccesses: 20, BadMultiplier: 10})
	var states []bool
	b.OnTransition = func(bad bool) { states = append(states, bad) }
	trace(b, 10000)
	if len(states) < 4 {
		t.Fatalf("only %d transitions in 10k accesses with mean residence 50/20", len(states))
	}
	for i, bad := range states {
		if want := i%2 == 0; bad != want {
			t.Fatalf("transition %d: bad=%v, want %v (good and bad states must alternate)", i, bad, want)
		}
	}
	if int(b.Episodes) != (len(states)+1)/2 {
		t.Fatalf("Episodes = %d, want %d (one per entry into the bad state)", b.Episodes, (len(states)+1)/2)
	}
}

func TestBurstDisabled(t *testing.T) {
	b := NewBurst(NewModel(1e6), NewRNG(1), 32, DefaultBurstParams())
	b.SetEnabled(false)
	for i := 0; i < 100; i++ {
		if mask := b.Next(); mask != 0 {
			t.Fatalf("disabled burst injected %#x", mask)
		}
	}
	if b.Accesses != 0 {
		t.Fatalf("disabled accesses advanced the process: %d", b.Accesses)
	}
	if !b.Enabled() {
		b.SetEnabled(true)
	}
	if !b.Enabled() {
		t.Fatal("SetEnabled(true) did not stick")
	}
}

func TestBurstParamValidation(t *testing.T) {
	for _, p := range []BurstParams{
		{MeanGoodAccesses: 0, MeanBadAccesses: 10, BadMultiplier: 2},
		{MeanGoodAccesses: 10, MeanBadAccesses: 0, BadMultiplier: 2},
		{MeanGoodAccesses: 10, MeanBadAccesses: 10, BadMultiplier: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBurst(%+v) did not panic", p)
				}
			}()
			NewBurst(NewModel(1), NewRNG(1), 32, p)
		}()
	}
}

// TestStuckAtTransparentWithoutWeakCells pins the regime contract: with no
// weak cells seeded, StuckAt must reproduce its inner process bit-for-bit
// — including the construction-time RNG consumption, so the permanent
// regime's transient substream is the paper regime's stream exactly.
func TestStuckAtTransparentWithoutWeakCells(t *testing.T) {
	m := NewModel(5e4)

	seedA := NewRNG(11)
	bare := NewInjector(m, seedA.Fork(0xfa17), 32)

	seedB := NewRNG(11)
	inner := NewInjector(m, seedB.Fork(0xfa17), 32)
	s := NewStuckAt(inner, seedB.Fork(0x57ac), 1024, StuckAtParams{
		WeakCellFraction: 0, MinThreshold: 0.3, MaxThreshold: 0.8})

	if s.WeakCells() != 0 {
		t.Fatalf("zero fraction seeded %d weak cells", s.WeakCells())
	}
	for i := 0; i < 20000; i++ {
		addr := uint64(i * 4)
		if got, want := s.NextAt(addr), bare.NextAt(addr); got != want {
			t.Fatalf("access %d: stuck-at %#x, bare injector %#x", i, got, want)
		}
	}
	s.SetCycleTime(0.5)
	bare.SetCycleTime(0.5)
	for i := 0; i < 20000; i++ {
		addr := uint64(i * 4)
		if got, want := s.NextAt(addr), bare.NextAt(addr); got != want {
			t.Fatalf("post-rescale access %d: stuck-at %#x, bare injector %#x", i, got, want)
		}
	}
}

// quietInner is an inner process that never faults, isolating the
// stuck-at overlay so the per-cell assertions below are exact.
type quietInner struct {
	cr      float64
	enabled bool
}

func (q *quietInner) NextAt(addr uint64) uint64 { return 0 }
func (q *quietInner) SetCycleTime(cr float64)   { q.cr = cr }
func (q *quietInner) CycleTime() float64        { return q.cr }
func (q *quietInner) SetEnabled(on bool)        { q.enabled = on }
func (q *quietInner) Enabled() bool             { return q.enabled }
func (q *quietInner) ResetCounters()            {}

func newAllWeak(t *testing.T, band, prob float64) *StuckAt {
	t.Helper()
	return NewStuckAt(&quietInner{cr: 1, enabled: true}, NewRNG(5), 64, StuckAtParams{
		WeakCellFraction: 1, MinThreshold: 0.5, MaxThreshold: 0.5,
		IntermittentBand: band, IntermittentProb: prob})
}

func TestStuckAtPermanentThreshold(t *testing.T) {
	s := newAllWeak(t, 0, 0)
	if s.WeakCells() != 64 {
		t.Fatalf("WeakCells = %d, want 64", s.WeakCells())
	}
	// At full swing every cell is above threshold: silent.
	for i := 0; i < 64; i++ {
		if mask := s.NextAt(uint64(i * 4)); mask != 0 {
			t.Fatalf("word %d faulted at Cr=1: %#x", i, mask)
		}
	}
	// Below every threshold: each access faults with exactly the cell bit.
	s.SetCycleTime(0.4)
	for i := 0; i < 64; i++ {
		mask := s.NextAt(uint64(i * 4))
		if bits.OnesCount64(mask) != 1 || mask>>32 != 0 {
			t.Fatalf("word %d: stuck mask %#x, want exactly one bit in the low word", i, mask)
		}
		// The same word faults identically on every visit.
		if again := s.NextAt(uint64(i * 4)); again != mask {
			t.Fatalf("word %d: %#x then %#x — a stuck cell must repeat", i, mask, again)
		}
	}
	if s.PermanentHits != 128 {
		t.Fatalf("PermanentHits = %d, want 128", s.PermanentHits)
	}
	if s.IntermittentHits != 0 {
		t.Fatalf("IntermittentHits = %d with no band", s.IntermittentHits)
	}
}

func TestStuckAtIntermittentBand(t *testing.T) {
	s := newAllWeak(t, 0.2, 1) // band up to 0.6, always fault inside it
	s.SetCycleTime(0.55)
	for i := 0; i < 64; i++ {
		if mask := s.NextAt(uint64(i * 4)); mask == 0 {
			t.Fatalf("word %d silent inside the band with prob 1", i)
		}
	}
	if s.IntermittentHits != 64 || s.PermanentHits != 0 {
		t.Fatalf("hits = %d intermittent, %d permanent; want 64, 0", s.IntermittentHits, s.PermanentHits)
	}
	s.SetCycleTime(0.7) // above the band: silent again
	for i := 0; i < 64; i++ {
		if mask := s.NextAt(uint64(i * 4)); mask != 0 {
			t.Fatalf("word %d faulted above the band: %#x", i, mask)
		}
	}
}

func TestStuckAtDisabled(t *testing.T) {
	s := newAllWeak(t, 0, 0)
	s.SetCycleTime(0.4)
	s.SetEnabled(false)
	if mask := s.NextAt(0); mask != 0 {
		t.Fatalf("disabled stuck-at injected %#x", mask)
	}
	if s.Enabled() {
		t.Fatal("Enabled() after SetEnabled(false)")
	}
	if s.PermanentHits != 0 {
		t.Fatal("disabled access counted a permanent hit")
	}
}

func TestStuckAtMapDeterminism(t *testing.T) {
	mk := func() *StuckAt {
		return NewStuckAt(&quietInner{cr: 1, enabled: true}, NewRNG(77), 2048, DefaultStuckAtParams())
	}
	a, b := mk(), mk()
	if a.WeakCells() != b.WeakCells() {
		t.Fatalf("weak-cell maps differ: %d vs %d", a.WeakCells(), b.WeakCells())
	}
	if a.WeakCells() == 0 {
		t.Fatal("default params seeded no weak cells in 2048 words")
	}
	a.SetCycleTime(0.25)
	b.SetCycleTime(0.25)
	for i := 0; i < 4096; i++ {
		addr := uint64(i * 4)
		if a.NextAt(addr) != b.NextAt(addr) {
			t.Fatalf("access %d diverges between identically seeded maps", i)
		}
	}
}

func TestStuckAtValidation(t *testing.T) {
	inner := &quietInner{cr: 1, enabled: true}
	for _, words := range []int{0, -4, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewStuckAt(words=%d) did not panic", words)
				}
			}()
			NewStuckAt(inner, NewRNG(1), words, DefaultStuckAtParams())
		}()
	}
}

// FuzzFaultProcess drives every fault process through a fuzzed schedule of
// accesses, rescales, and disable windows, and checks the two invariants
// the simulator depends on: identical seeds and schedules produce
// identical traces, and every mask fits the configured access width.
func FuzzFaultProcess(f *testing.F) {
	f.Add(uint64(1), uint8(0), uint8(2), uint8(0), uint16(500))
	f.Add(uint64(42), uint8(1), uint8(0), uint8(3), uint16(900))
	f.Add(uint64(7), uint8(2), uint8(3), uint8(1), uint16(1200))
	f.Fuzz(func(t *testing.T, seed uint64, kind, crA, crB uint8, n uint16) {
		crs := []float64{1, 0.75, 0.5, 0.25}
		m := NewModel(1e4)
		mk := func() Process {
			rng := NewRNG(seed)
			switch kind % 3 {
			case 1:
				return NewBurst(m, rng.Fork(0xfa17), 32, BurstParams{
					MeanGoodAccesses: 200, MeanBadAccesses: 50, BadMultiplier: 50})
			case 2:
				inner := NewInjector(m, rng.Fork(0xfa17), 32)
				return NewStuckAt(inner, rng.Fork(0x57ac), 512, DefaultStuckAtParams())
			default:
				return NewInjector(m, rng.Fork(0xfa17), 32)
			}
		}
		steps := int(n)%2000 + 1
		run := func(p Process) []uint64 {
			p.SetCycleTime(crs[crA%4])
			out := trace(p, steps)
			p.SetEnabled(false)
			for i := 0; i < 37; i++ {
				p.NextAt(uint64(i))
			}
			p.SetEnabled(true)
			p.SetCycleTime(crs[crB%4])
			return append(out, trace(p, steps)...)
		}
		a, b := run(mk()), run(mk())
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("access %d: %#x vs %#x — identical schedules diverged", i, a[i], b[i])
			}
			if a[i]>>32 != 0 {
				t.Fatalf("access %d: mask %#x exceeds the 32-bit access width", i, a[i])
			}
		}
	})
}
