package fault

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between distinct seeds", same)
	}
}

func TestRNGZeroSeedWorks(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 64; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("only %d distinct values out of 7", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestForkIndependence(t *testing.T) {
	r := NewRNG(11)
	a := r.Fork(1)
	b := r.Fork(2)
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams with distinct labels should differ")
	}
}

func TestModelMonotoneInCycleTime(t *testing.T) {
	m := NewModel(1)
	if m.PerBit(0.5) <= m.PerBit(1) {
		t.Fatal("faster clock must increase fault probability")
	}
	if m.PerBit(0.25) <= m.PerBit(0.5) {
		t.Fatal("fault probability must keep rising toward Cr=0.25")
	}
}

func TestModelScale(t *testing.T) {
	m1 := NewModel(1)
	m100 := NewModel(100)
	r := m100.PerBit(1) / m1.PerBit(1)
	if math.Abs(r-100) > 1e-9 {
		t.Fatalf("scale ratio = %v, want 100", r)
	}
}

func TestModelScalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewModel(0) should panic")
		}
	}()
	NewModel(0)
}

func TestEventRateWidthScaling(t *testing.T) {
	m := NewModel(1)
	r32 := m.EventRate(1, 32)
	r8 := m.EventRate(1, 8)
	if math.Abs(r32/r8-4) > 1e-9 {
		t.Fatalf("event rate should scale linearly with width: %v", r32/r8)
	}
}

func TestEventRateClamped(t *testing.T) {
	m := NewModel(1e9) // absurd scale
	if r := m.EventRate(0.25, 32); r != 1 {
		t.Fatalf("event rate should clamp at 1, got %v", r)
	}
}

func TestInjectorStatisticalRate(t *testing.T) {
	// With a large scale the empirical fault rate must match the model.
	m := NewModel(1e4) // event rate around 1e-4 * 32-ish
	in := NewInjector(m, NewRNG(5), 32)
	want := m.EventRate(1, 32)
	const n = 2_000_000
	faults := 0
	for i := 0; i < n; i++ {
		if in.Next() != 0 {
			faults++
		}
	}
	got := float64(faults) / n
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("empirical rate %.4g, want %.4g (±5%%)", got, want)
	}
	if in.Events != uint64(faults) {
		t.Fatalf("Events counter %d != observed %d", in.Events, faults)
	}
	if in.Accesses != n {
		t.Fatalf("Accesses counter %d != %d", in.Accesses, n)
	}
}

func TestInjectorMultiBitDistribution(t *testing.T) {
	m := NewModel(1e6)
	in := NewInjector(m, NewRNG(9), 32)
	var one, two, three int
	for one+two+three < 50000 {
		mask := in.Next()
		if mask == 0 {
			continue
		}
		switch popcount(mask) {
		case 1:
			one++
		case 2:
			two++
		case 3:
			three++
		default:
			t.Fatalf("mask with %d bits", popcount(mask))
		}
	}
	frTwo := float64(two) / float64(one)
	if frTwo < 0.005 || frTwo > 0.02 {
		t.Errorf("double/single ratio %.4f, want ~0.01", frTwo)
	}
	frThree := float64(three) / float64(one)
	if frThree < 0.0002 || frThree > 0.003 {
		t.Errorf("triple/single ratio %.5f, want ~0.001", frThree)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestInjectorDisabled(t *testing.T) {
	m := NewModel(1e9) // every access would fault
	in := NewInjector(m, NewRNG(1), 32)
	in.SetEnabled(false)
	for i := 0; i < 1000; i++ {
		if in.Next() != 0 {
			t.Fatal("disabled injector produced a fault")
		}
	}
	if in.Accesses != 0 {
		t.Fatal("disabled injector should not count accesses")
	}
	in.SetEnabled(true)
	if in.Next() == 0 {
		t.Fatal("re-enabled injector at rate 1 should fault immediately")
	}
}

func TestInjectorCycleTimeSwitch(t *testing.T) {
	m := NewModel(1e4)
	in := NewInjector(m, NewRNG(2), 32)
	if in.CycleTime() != 1 {
		t.Fatalf("initial cycle time = %v", in.CycleTime())
	}
	in.SetCycleTime(0.25)
	if in.CycleTime() != 0.25 {
		t.Fatalf("cycle time after switch = %v", in.CycleTime())
	}
	// Faster clock: empirically more faults per access.
	count := func(cr float64, n int) int {
		in.SetCycleTime(cr)
		in.ResetCounters()
		f := 0
		for i := 0; i < n; i++ {
			if in.Next() != 0 {
				f++
			}
		}
		return f
	}
	slow := count(1, 300000)
	fast := count(0.25, 300000)
	if fast <= slow*5 {
		t.Fatalf("fault counts: fast=%d slow=%d, want sharp rise at Cr=0.25", fast, slow)
	}
}

func TestInjectorMaskWithinWidth(t *testing.T) {
	m := NewModel(1e9)
	in := NewInjector(m, NewRNG(4), 8)
	for i := 0; i < 1000; i++ {
		if mask := in.Next(); mask>>8 != 0 {
			t.Fatalf("mask %x exceeds 8-bit width", mask)
		}
	}
}

func TestInjectorResetCounters(t *testing.T) {
	m := NewModel(1e9)
	in := NewInjector(m, NewRNG(4), 32)
	in.Next()
	in.ResetCounters()
	if in.Accesses != 0 || in.Events != 0 || in.BitFlips != 0 {
		t.Fatal("counters not cleared")
	}
}

func TestUint32AndEnabled(t *testing.T) {
	r := NewRNG(8)
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint32()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("Uint32 produced only %d distinct values", len(seen))
	}
	in := NewInjector(NewModel(1), NewRNG(1), 32)
	if !in.Enabled() {
		t.Fatal("injector should start enabled")
	}
	in.SetEnabled(false)
	if in.Enabled() {
		t.Fatal("SetEnabled(false) ignored")
	}
}

func TestInjectorWidthValidation(t *testing.T) {
	m := NewModel(1)
	for _, bits := range []int{0, -1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d accepted", bits)
				}
			}()
			NewInjector(m, NewRNG(1), bits)
		}()
	}
}

func TestEventRatePanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EventRate(_, 0) should panic")
		}
	}()
	NewModel(1).EventRate(1, 0)
}
