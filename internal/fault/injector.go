package fault

// Injector realises the fault process for a stream of fixed-width cache
// accesses. Instead of drawing a Bernoulli sample per access, it draws the
// gap to the next faulty access from the geometric distribution — an exact
// reformulation of the independent-access process that makes rates around
// 1e-7 essentially free to simulate.
//
// The injector can be enabled and disabled (the control-plane/data-plane
// fault experiments of Section 5.2 inject faults into only one execution
// segment); while disabled, accesses pass through untouched and do not
// advance the fault process.
//
// Fault time advances monotonically by design — a packet rollback never
// rewinds the fault environment — so the only reset surface is the
// per-epoch counter clear; a new counter that ResetCounters misses would
// contaminate the next epoch's controller decision.
//
//lint:checkpoint ResetCounters
type Injector struct {
	//lint:ephemeral configuration, immutable during a run
	model *Model
	//lint:ephemeral fault-process position; fault time never rewinds
	rng *RNG
	//lint:ephemeral configuration, immutable during a run
	bits int
	//lint:ephemeral operating point, changed only by SetCycleTime
	cr float64
	//lint:ephemeral derived from the operating point by SetCycleTime
	rate float64
	//lint:ephemeral fault-process position; fault time never rewinds
	skip int64 // fault-free accesses remaining before the next fault
	//lint:ephemeral segment gating toggled by the experiment harness
	enabled bool

	// Counters for the run reports and the dynamic frequency controller.
	Accesses uint64 // accesses observed while enabled
	Events   uint64 // fault events injected
	BitFlips uint64 // total bits flipped
}

// NewInjector returns an enabled injector for accesses of the given bit
// width, operating at full-swing cycle time (Cr = 1).
func NewInjector(m *Model, rng *RNG, bits int) *Injector {
	if bits <= 0 || bits > 64 {
		panic("fault: access width out of range")
	}
	in := &Injector{model: m, rng: rng, bits: bits, enabled: true}
	in.SetCycleTime(1)
	return in
}

// SetCycleTime moves the injector to a new relative cycle time. The gap to
// the next fault is redrawn at the new rate; by the memorylessness of the
// geometric distribution this is statistically equivalent to continuing the
// process at the new rate.
func (in *Injector) SetCycleTime(cr float64) {
	in.cr = cr
	in.rate = in.model.EventRate(cr, in.bits)
	in.redraw()
}

// CycleTime returns the injector's current relative cycle time.
func (in *Injector) CycleTime() float64 { return in.cr }

// SetEnabled turns fault injection on or off.
func (in *Injector) SetEnabled(on bool) { in.enabled = on }

// Enabled reports whether faults are currently being injected.
func (in *Injector) Enabled() bool { return in.enabled }

func (in *Injector) redraw() {
	// Number of fault-free accesses before the next fault: geometric.
	in.skip = geometricGap(in.rng, in.rate)
}

// NextAt advances the fault process by one access and returns the fault
// mask. The paper's process is address-blind; NextAt exists to satisfy
// the Process interface.
func (in *Injector) NextAt(addr uint64) uint64 { return in.Next() }

// Next advances the fault process by one access and returns the fault mask
// to XOR into the accessed word: zero for the overwhelming majority of
// accesses, or a mask with one, two, or three set bits on a fault event
// (with the correlated probabilities of the model).
func (in *Injector) Next() uint64 {
	if !in.enabled {
		return 0
	}
	in.Accesses++
	if in.skip > 0 {
		in.skip--
		return 0
	}
	in.redraw()
	in.Events++
	mask, n := drawMask(in.rng, in.bits)
	in.BitFlips += uint64(n)
	return mask
}

// ResetCounters clears the access and fault counters (the dynamic
// frequency controller reads and resets them per epoch).
func (in *Injector) ResetCounters() {
	in.Accesses, in.Events, in.BitFlips = 0, 0, 0
}
