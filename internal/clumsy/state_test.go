package clumsy

import (
	"errors"
	"testing"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/fault"
	"clumsy/internal/metrics"
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
	"clumsy/internal/workload"
)

// stateRig is a data plane with a live flow-state guard and no fault
// injection: corruption is seeded explicitly, so each rung of the recovery
// ladder can be driven deterministically.
type stateRig struct {
	st    *simmem.StateTable
	guard *stateGuard
	ctx   *apps.Context
	h     *cache.Hierarchy
	space *simmem.Space
}

func newStateRig(t *testing.T, strikes int) *stateRig {
	t.Helper()
	app, err := apps.New("fw")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := packet.Generate(app.TraceConfig(16, 0x5eed))
	if err != nil {
		t.Fatal(err)
	}
	space := simmem.NewSpace(autoSpaceBytes(trace))
	proc := fault.NewInjector(fault.NewModel(1), fault.NewRNG(7).Fork(0xfa17), 32)
	proc.SetEnabled(false)
	h, err := cache.NewHierarchyWith(space, proc, cache.DetectionParity, 2, cache.HierarchyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := newEngine(h, appBlocks)
	if err != nil {
		t.Fatal(err)
	}
	ctx := &apps.Context{Space: space, Mem: dataMemory{eng}, Rec: metrics.NewRecorder(), Exec: eng}
	if err := app.Setup(ctx, trace); err != nil {
		t.Fatalf("setup: %v", err)
	}
	sa := app.(apps.StatefulApp)
	st := sa.StateTable()
	guard := newStateGuard(st, h, nil, eng, Config{StateStrikes: strikes})
	st.CommitShadow()
	return &stateRig{st: st, guard: guard, ctx: ctx, h: h, space: space}
}

// populate writes a golden record through the charged path and commits the
// packet boundary.
func (r *stateRig) populate(t *testing.T, idx int, vals []uint32) {
	t.Helper()
	for w, v := range vals {
		if err := r.st.StoreField(r.ctx.Mem, idx, w, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.st.Seal(r.ctx.Mem, idx); err != nil {
		t.Fatal(err)
	}
	r.st.CommitShadow()
}

// corrupt DMA-writes the record's golden image with one payload bit
// flipped, so the next verified read must take the ladder. The write is
// coherent so the seeded corruption stays surgical: a plain DMA here would
// also discard neighbouring records' unwritten stores sharing a cache
// line, seeding corruption the test did not ask for.
func (r *stateRig) corrupt(t *testing.T, idx int) {
	t.Helper()
	buf := make([]byte, r.st.RecordBytes())
	r.st.EncodeShadow(idx, buf)
	buf[0] ^= 0x10
	if err := r.h.CoherentDMA(r.st.RecordAddr(idx), buf); err != nil {
		t.Fatal(err)
	}
}

// storedImage reads the record's bytes as stored in the backing space.
func (r *stateRig) storedImage(t *testing.T, idx int) []byte {
	t.Helper()
	img := make([]byte, r.st.RecordBytes())
	for i := range img {
		v, err := r.space.Load8(r.st.RecordAddr(idx) + simmem.Addr(i))
		if err != nil {
			t.Fatal(err)
		}
		img[i] = v
	}
	return img
}

// TestStateLadderEvictRebuildExhaust drives one record through every rung
// of the recovery ladder: strike 1 evicts to a clean empty record, strike
// 2 rebuilds the exact golden bytes from the shadow, and the final strike
// declares the run's state unrecoverable.
func TestStateLadderEvictRebuildExhaust(t *testing.T) {
	r := newStateRig(t, 3)
	const idx = 9
	vals := []uint32{0x0a000001, 3, 1500, 60, 2}

	// Strike 1: evict. The record comes back empty and verified, and the
	// golden shadow is zeroed with it.
	r.populate(t, idx, vals)
	r.corrupt(t, idx)
	words, err := r.st.Lookup(r.ctx.Mem, idx)
	if err != nil {
		t.Fatalf("lookup through eviction: %v", err)
	}
	for w, v := range words {
		if v != 0 {
			t.Errorf("evicted word %d = %#x, want 0", w, v)
		}
	}
	if r.st.ShadowWord(idx, 0) != 0 {
		t.Error("eviction did not zero the golden shadow")
	}
	if r.guard.evictions != 1 || r.guard.rebuilds != 0 {
		t.Errorf("after strike 1: evictions=%d rebuilds=%d, want 1/0", r.guard.evictions, r.guard.rebuilds)
	}
	r.st.CommitShadow()

	// Strike 2: rebuild. The stored bytes afterwards are exactly the
	// golden shadow image — the golden-equivalence contract.
	r.populate(t, idx, vals)
	r.corrupt(t, idx)
	words, err = r.st.Lookup(r.ctx.Mem, idx)
	if err != nil {
		t.Fatalf("lookup through rebuild: %v", err)
	}
	for w, v := range vals {
		if words[w] != v {
			t.Errorf("rebuilt word %d = %#x, want golden %#x", w, words[w], v)
		}
	}
	golden := make([]byte, r.st.RecordBytes())
	r.st.EncodeShadow(idx, golden)
	stored := r.storedImage(t, idx)
	for i := range golden {
		if stored[i] != golden[i] {
			t.Fatalf("stored byte %d = %#x, golden image %#x: rebuild is not an exact restore", i, stored[i], golden[i])
		}
	}
	if r.guard.evictions != 1 || r.guard.rebuilds != 1 {
		t.Errorf("after strike 2: evictions=%d rebuilds=%d, want 1/1", r.guard.evictions, r.guard.rebuilds)
	}
	r.st.CommitShadow()

	// Strike 3 exhausts the budget: unrecoverable.
	r.corrupt(t, idx)
	if _, err := r.st.Lookup(r.ctx.Mem, idx); !errors.Is(err, ErrStateCorrupt) {
		t.Fatalf("exhausted ladder returned %v, want ErrStateCorrupt", err)
	}
	if r.guard.detected != 3 {
		t.Errorf("detected = %d, want 3", r.guard.detected)
	}
}

// TestScrubDetectsLatentCorruption seeds corruption in a record no lookup
// touches and shows the periodic scrub pass alone finds and repairs it.
func TestScrubDetectsLatentCorruption(t *testing.T) {
	r := newStateRig(t, 0) // default strike budget
	const idx = 3
	r.populate(t, idx, []uint32{0x0a0000ff, 1, 64, 60, 1})
	r.corrupt(t, idx)
	if r.guard.detected != 0 {
		t.Fatal("corruption detected before any read; the seed leaked")
	}
	if err := r.guard.scrubPass(r.ctx.Mem, 0); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if r.guard.detected != 1 || r.guard.evictions != 1 {
		t.Errorf("scrub found %d mismatches, evicted %d; want 1/1", r.guard.detected, r.guard.evictions)
	}
	if r.guard.scrubPasses != 1 {
		t.Errorf("scrubPasses = %d, want 1", r.guard.scrubPasses)
	}
	// The repaired table is fully verifiable: a second scrub is clean.
	if err := r.guard.scrubPass(r.ctx.Mem, 1); err != nil {
		t.Fatalf("second scrub: %v", err)
	}
	if r.guard.detected != 1 {
		t.Errorf("second scrub re-detected (%d total); repair did not stick", r.guard.detected)
	}
}

// TestScrubInterval pins the scrub cadence knob: default, custom, and
// disabled.
func TestScrubInterval(t *testing.T) {
	r := newStateRig(t, 0)
	if r.guard.interval != DefaultScrubInterval {
		t.Errorf("zero config interval = %d, want default %d", r.guard.interval, DefaultScrubInterval)
	}
	if !r.guard.scrubDue(DefaultScrubInterval) || r.guard.scrubDue(DefaultScrubInterval-1) {
		t.Error("scrubDue cadence is off at the default interval")
	}
	g := newStateGuard(r.st, r.h, nil, r.guard.eng, Config{ScrubInterval: -1})
	if g.scrubDue(64) || g.scrubDue(1) {
		t.Error("negative ScrubInterval did not disable scrubbing")
	}
	g = newStateGuard(r.st, r.h, nil, r.guard.eng, Config{ScrubInterval: 7})
	if !g.scrubDue(14) || g.scrubDue(15) {
		t.Error("custom ScrubInterval cadence is off")
	}
}

// TestStateIntegrityAcceptance is the PR's acceptance bar: injected
// flow-table corruption under the burst and permanent regimes is detected
// with zero undetected divergence at the default scrub interval, for both
// stateful applications.
func TestStateIntegrityAcceptance(t *testing.T) {
	for _, app := range []string{"fw", "flowtrack"} {
		for _, regime := range []FaultRegime{RegimeBurst, RegimePermanent} {
			for seed := uint64(1); seed <= 3; seed++ {
				cfg := Config{
					App: app, Packets: 300, Seed: seed, CycleTime: 0.5,
					Detection: cache.DetectionParity, Strikes: 2,
					FaultScale: 25, Regime: regime, Recovery: RecoverDrop,
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", app, regime, seed, err)
				}
				if res.StateUndetected != 0 {
					t.Errorf("%s/%s seed %d: %d diverged records passed checksum verification (silent corruption)",
						app, regime, seed, res.StateUndetected)
				}
				if res.StateRecords == 0 {
					t.Errorf("%s/%s seed %d: no flow records reported; the guard never attached", app, regime, seed)
				}
			}
		}
	}
}

// TestStatefulAppsSurviveAdversarialWorkload runs both stateful apps under
// the hostile end of the workload-v2 substrate (flash crowd, malformed
// wire images, churn flood) with faults on, and requires the run to
// complete with charged cycles and without setup death.
func TestStatefulAppsSurviveAdversarialWorkload(t *testing.T) {
	spec := &workload.Spec{Shape: workload.ShapeFlash, Adversarial: 0.3, Churn: 0.4}
	for _, app := range []string{"fw", "flowtrack"} {
		res, err := Run(Config{
			App: app, Packets: 400, Seed: 11, CycleTime: 0.5,
			Detection: cache.DetectionParity, Strikes: 2,
			FaultScale: 10, Regime: RegimeBurst, Recovery: RecoverDrop,
			Workload: spec,
		})
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if res.SetupDied {
			t.Fatalf("%s: setup died under the adversarial workload", app)
		}
		if res.Report.Processed == 0 {
			t.Errorf("%s: no packets processed", app)
		}
		if res.GoldenInstrs == 0 {
			t.Errorf("%s: golden pass charged no instructions", app)
		}
	}
}
