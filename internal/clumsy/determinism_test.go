package clumsy

import (
	"bytes"
	"encoding/json"
	"testing"

	"clumsy/internal/cache"
	"clumsy/internal/workload"
)

// resultBytes serializes everything a run reports — the metrics.Report plus
// every measured field of the Result — so two runs can be compared
// byte-for-byte. Maps inside the Report (per-structure error counts)
// marshal with sorted keys, so identical contents yield identical bytes.
func resultBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	fatal := ""
	if r.FatalErr != nil {
		fatal = r.FatalErr.Error()
	}
	b, err := json.Marshal(struct {
		Report        any
		GoldenCycles  float64
		GoldenInstrs  uint64
		GoldenDelay   float64
		GoldenEnergy  any
		Cycles        float64
		Breakdown     any
		Instrs        uint64
		Delay         float64
		Energy        any
		L1DStats      any
		Recovery      any
		Fatal         string
		SetupDied     bool
		Contained     int
		RestoredPages uint64
		LevelPackets  []uint64
		Switches      int
		Timeline      []FreqEvent

		LinesDisabled    int
		DisabledFrac     float64
		StrikeHist       [8]uint64
		BurstEpisodes    uint64
		PermanentHits    uint64
		IntermittentHits uint64
		SpatialBackoffs  int

		StateRecords    int
		StateDetected   uint64
		StateEvictions  uint64
		StateRebuilds   uint64
		StateScrubs     uint64
		StateDiverged   int
		StateUndetected int
	}{
		Report:        r.Report,
		GoldenCycles:  r.GoldenCycles,
		GoldenInstrs:  r.GoldenInstrs,
		GoldenDelay:   r.GoldenDelay,
		GoldenEnergy:  r.GoldenEnergy,
		Cycles:        r.Cycles,
		Breakdown:     r.Breakdown,
		Instrs:        r.Instrs,
		Delay:         r.Delay,
		Energy:        r.Energy,
		L1DStats:      r.L1DStats,
		Recovery:      r.Recovery,
		Fatal:         fatal,
		SetupDied:     r.SetupDied,
		Contained:     r.Contained,
		RestoredPages: r.RestoredPages,
		LevelPackets:  r.LevelPackets,
		Switches:      r.Switches,
		Timeline:      r.Timeline,

		LinesDisabled:    r.LinesDisabled,
		DisabledFrac:     r.DisabledFrac,
		StrikeHist:       r.StrikeHist,
		BurstEpisodes:    r.BurstEpisodes,
		PermanentHits:    r.PermanentHits,
		IntermittentHits: r.IntermittentHits,
		SpatialBackoffs:  r.SpatialBackoffs,

		StateRecords:    r.StateRecords,
		StateDetected:   r.StateDetected,
		StateEvictions:  r.StateEvictions,
		StateRebuilds:   r.StateRebuilds,
		StateScrubs:     r.StateScrubs,
		StateDiverged:   r.StateDiverged,
		StateUndetected: r.StateUndetected,
	})
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

// TestRunDeterminism is the bit-determinism contract the detwalk analyzer
// exists to protect: a seeded configuration is a pure function — running it
// twice yields byte-identical results, under both recovery policies, with
// and without the dynamic frequency controller. If this test starts
// failing, some nondeterminism (map iteration, wall clock, goroutine
// scheduling) has leaked into the sim core; `go run ./cmd/clumsylint ./...`
// is the first place to look.
func TestRunDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"abort", Config{App: "route", Packets: 200, Seed: 7, FaultScale: 2e3,
			CycleTime: 0.25, Recovery: RecoverAbort}},
		{"drop", Config{App: "nat", Packets: 150, Seed: 9, FaultScale: 2e3,
			CycleTime: 0.25, Recovery: RecoverDrop}},
		{"drop-parity", Config{App: "drr", Packets: 150, Seed: 3, FaultScale: 5e3,
			CycleTime: 0.25, Detection: cache.DetectionParity, Strikes: 2, Recovery: RecoverDrop}},
		{"dynamic", Config{App: "crc", Packets: 300, Seed: 11, FaultScale: 1e3,
			Dynamic: true, Recovery: RecoverAbort}},
		{"burst-drop", Config{App: "nat", Packets: 150, Seed: 9, FaultScale: 2e3,
			CycleTime: 0.25, Recovery: RecoverDrop, Regime: RegimeBurst}},
		{"burst-degrade", Config{App: "route", Packets: 200, Seed: 7, FaultScale: 5e3,
			CycleTime: 0.25, Detection: cache.DetectionParity, Strikes: 2,
			Recovery: RecoverDegrade, Regime: RegimeBurst}},
		{"permanent-abort-parity", Config{App: "drr", Packets: 150, Seed: 3, FaultScale: 5e3,
			CycleTime: 0.25, Detection: cache.DetectionParity, Strikes: 2,
			Recovery: RecoverAbort, Regime: RegimePermanent}},
		{"permanent-degrade-dynamic", Config{App: "crc", Packets: 300, Seed: 11, FaultScale: 1e3,
			Dynamic: true, Detection: cache.DetectionParity, Strikes: 2,
			Recovery: RecoverDegrade, Regime: RegimePermanent, MinDwellEpochs: 2}},
		{"predisable-degrade", Config{App: "route", Packets: 150, Seed: 5, FaultScale: 2e3,
			CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
			Recovery: RecoverDegrade, Regime: RegimePermanent, PreDisableFrac: 0.25}},

		// The stateful applications under every recovery policy: the state
		// guard (verified lookups, scrub passes, recovery ladder, shadow
		// commit/restore) must be as bit-deterministic as the rest of the
		// machine, including under the adversarial workload substrate.
		{"fw-abort", Config{App: "fw", Packets: 150, Seed: 7, FaultScale: 25,
			CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
			Recovery: RecoverAbort}},
		{"fw-drop-burst", Config{App: "fw", Packets: 200, Seed: 9, FaultScale: 25,
			CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
			Recovery: RecoverDrop, Regime: RegimeBurst, ScrubInterval: 32,
			Workload: &workload.Spec{Shape: workload.ShapeFlash, Adversarial: 0.15, Churn: 0.25}}},
		{"fw-degrade-permanent", Config{App: "fw", Packets: 200, Seed: 3, FaultScale: 25,
			CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
			Recovery: RecoverDegrade, Regime: RegimePermanent, StateStrikes: 6}},
		{"flowtrack-abort", Config{App: "flowtrack", Packets: 150, Seed: 5, FaultScale: 25,
			CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
			Recovery: RecoverAbort, Workload: &workload.Spec{Shape: workload.ShapeOnOff, Churn: 0.2}}},
		{"flowtrack-drop", Config{App: "flowtrack", Packets: 200, Seed: 11, FaultScale: 25,
			CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
			Recovery: RecoverDrop, Regime: RegimeBurst}},
		{"flowtrack-degrade", Config{App: "flowtrack", Packets: 200, Seed: 13, FaultScale: 25,
			CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
			Recovery: RecoverDegrade, Regime: RegimePermanent,
			Workload: &workload.Spec{Shape: workload.ShapeDiurnal, Adversarial: 0.1}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ab, bb := resultBytes(t, a), resultBytes(t, b)
			if !bytes.Equal(ab, bb) {
				t.Errorf("identical seeded configs diverge:\nfirst:  %s\nsecond: %s", ab, bb)
			}
		})
	}
}

// TestPaperRegimeLadderDormant is the backward-compatibility contract of
// the correlated-fault work: under the paper regime with the original
// policies, every ladder mechanism stays dormant, and spelling the regime
// out explicitly is byte-identical to the zero-value Config the existing
// tables are generated from.
func TestPaperRegimeLadderDormant(t *testing.T) {
	base := Config{App: "route", Packets: 200, Seed: 7, FaultScale: 2e3,
		CycleTime: 0.25, Detection: cache.DetectionParity, Strikes: 2, Recovery: RecoverAbort}
	implicit, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	spelled := base
	spelled.Regime = RegimePaper
	explicit, err := Run(spelled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resultBytes(t, implicit), resultBytes(t, explicit)) {
		t.Error("explicit RegimePaper diverges from the zero-value Config")
	}
	r := implicit
	if r.LinesDisabled != 0 || r.DisabledFrac != 0 || r.SpatialBackoffs != 0 ||
		r.BurstEpisodes != 0 || r.PermanentHits != 0 || r.IntermittentHits != 0 ||
		r.Recovery.LineDisables != 0 || r.Recovery.Bypasses != 0 {
		t.Errorf("ladder acted under the paper regime: %+v", r.Recovery)
	}
}

// TestRegimesDiverge pins that the three fault regimes are genuinely
// different processes from the same seed — in particular that the
// stuck-at overlay's construction does not silently replay the paper or
// burst transient stream (a one-draw constructor offset once made burst
// and permanent byte-identical).
func TestRegimesDiverge(t *testing.T) {
	base := Config{App: "nat", Packets: 300, Seed: 9, FaultScale: 1e4,
		CycleTime: 0.25, Detection: cache.DetectionParity, Strikes: 2, Recovery: RecoverDrop}
	results := map[FaultRegime]*Result{}
	for _, regime := range []FaultRegime{RegimePaper, RegimeBurst, RegimePermanent} {
		cfg := base
		cfg.Regime = regime
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[regime] = res
	}
	if bytes.Equal(resultBytes(t, results[RegimePaper]), resultBytes(t, results[RegimeBurst])) {
		t.Error("paper and burst regimes are byte-identical")
	}
	if bytes.Equal(resultBytes(t, results[RegimePaper]), resultBytes(t, results[RegimePermanent])) {
		t.Error("paper and permanent regimes are byte-identical")
	}
	if bytes.Equal(resultBytes(t, results[RegimeBurst]), resultBytes(t, results[RegimePermanent])) {
		t.Error("burst and permanent regimes are byte-identical")
	}
	if results[RegimePermanent].PermanentHits == 0 {
		t.Error("no stuck-at hits at Cr=0.25, below every weak cell's threshold")
	}
}

// TestPreDisableDegradesGracefully: with half the L1D dead before the run
// starts, the degrade policy limps on through the bypass path instead of
// dying — the graceful-degradation curve's existence proof.
func TestPreDisableDegradesGracefully(t *testing.T) {
	res, err := Run(Config{App: "route", Packets: 200, Seed: 5, FaultScale: 2e3,
		CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
		Recovery: RecoverDegrade, Regime: RegimePermanent, PreDisableFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.SetupDied || res.Report.Fatal {
		t.Fatalf("half-dead cache was not survivable: setupDied=%v fatal=%v", res.SetupDied, res.Report.Fatal)
	}
	if res.DisabledFrac < 0.5 {
		t.Errorf("DisabledFrac = %g, want >= 0.5 (pre-disabled frames are pinned)", res.DisabledFrac)
	}
	if res.Recovery.Bypasses == 0 {
		t.Error("no bypass accesses despite half the cache being dead")
	}
	if res.Report.Processed == 0 {
		t.Error("no packets completed")
	}
}
