package clumsy

import (
	"bytes"
	"encoding/json"
	"testing"

	"clumsy/internal/cache"
)

// resultBytes serializes everything a run reports — the metrics.Report plus
// every measured field of the Result — so two runs can be compared
// byte-for-byte. Maps inside the Report (per-structure error counts)
// marshal with sorted keys, so identical contents yield identical bytes.
func resultBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	fatal := ""
	if r.FatalErr != nil {
		fatal = r.FatalErr.Error()
	}
	b, err := json.Marshal(struct {
		Report        any
		GoldenCycles  float64
		GoldenInstrs  uint64
		GoldenDelay   float64
		GoldenEnergy  any
		Cycles        float64
		Instrs        uint64
		Delay         float64
		Energy        any
		L1DStats      any
		Recovery      any
		Fatal         string
		SetupDied     bool
		Contained     int
		RestoredPages uint64
		LevelPackets  []uint64
		Switches      int
		Timeline      []FreqEvent
	}{
		Report:        r.Report,
		GoldenCycles:  r.GoldenCycles,
		GoldenInstrs:  r.GoldenInstrs,
		GoldenDelay:   r.GoldenDelay,
		GoldenEnergy:  r.GoldenEnergy,
		Cycles:        r.Cycles,
		Instrs:        r.Instrs,
		Delay:         r.Delay,
		Energy:        r.Energy,
		L1DStats:      r.L1DStats,
		Recovery:      r.Recovery,
		Fatal:         fatal,
		SetupDied:     r.SetupDied,
		Contained:     r.Contained,
		RestoredPages: r.RestoredPages,
		LevelPackets:  r.LevelPackets,
		Switches:      r.Switches,
		Timeline:      r.Timeline,
	})
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return b
}

// TestRunDeterminism is the bit-determinism contract the detwalk analyzer
// exists to protect: a seeded configuration is a pure function — running it
// twice yields byte-identical results, under both recovery policies, with
// and without the dynamic frequency controller. If this test starts
// failing, some nondeterminism (map iteration, wall clock, goroutine
// scheduling) has leaked into the sim core; `go run ./cmd/clumsylint ./...`
// is the first place to look.
func TestRunDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"abort", Config{App: "route", Packets: 200, Seed: 7, FaultScale: 2e3,
			CycleTime: 0.25, Recovery: RecoverAbort}},
		{"drop", Config{App: "nat", Packets: 150, Seed: 9, FaultScale: 2e3,
			CycleTime: 0.25, Recovery: RecoverDrop}},
		{"drop-parity", Config{App: "drr", Packets: 150, Seed: 3, FaultScale: 5e3,
			CycleTime: 0.25, Detection: cache.DetectionParity, Strikes: 2, Recovery: RecoverDrop}},
		{"dynamic", Config{App: "crc", Packets: 300, Seed: 11, FaultScale: 1e3,
			Dynamic: true, Recovery: RecoverAbort}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			a, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			ab, bb := resultBytes(t, a), resultBytes(t, b)
			if !bytes.Equal(ab, bb) {
				t.Errorf("identical seeded configs diverge:\nfirst:  %s\nsecond: %s", ab, bb)
			}
		})
	}
}
