// Package clumsy assembles the clumsy packet processor: an in-order
// execution-cost engine, the fault-injected cache hierarchy, the dynamic
// frequency controller, and the golden/faulty run machinery that produces
// the paper's measurements.
package clumsy

import (
	"errors"

	"clumsy/internal/cache"
	"clumsy/internal/simmem"
)

// ErrWatchdog is returned when a packet exceeds its instruction budget —
// the signature of an execution stuck in a loop whose bound was corrupted.
// The paper calls these fatal errors (Section 2); the majority of the fatal
// errors it observed were infinite loops.
var ErrWatchdog = errors.New("clumsy: per-packet instruction budget exceeded")

// instrsPerFetch is how many sequential instructions one I-cache access
// covers (a 32-byte line of 4-byte instructions, fetched once).
const instrsPerFetch = 8

// engine models the execution core: single-issue, one cycle per
// instruction, with instruction fetch through the L1I and data access
// through the (possibly clumsy) L1D.
// Engine state deliberately survives a packet rollback: burned cycles and
// executed instructions are real even when the packet's memory effects are
// discarded. The per-packet boundary is beginPacket, which re-bases the
// watchdog; everything else carries a reason.
//
//lint:checkpoint beginPacket
type engine struct {
	//lint:ephemeral topology wiring, immutable after construction
	hier *cache.Hierarchy
	//lint:ephemeral layout constant fixed at construction
	codeBase simmem.Addr

	instrs uint64 // instructions executed
	//lint:ephemeral cycles spent are real even when a packet is rolled back
	core float64 // core cycles (1 per instruction); stalls live in the caches
	//lint:ephemeral cycles spent are real even when a packet is rolled back
	burned float64 // core cycles spun away by watchdog kills (subset of core)

	//lint:ephemeral fetch-locality state; the next packet re-fetches anyway
	curBlock int
	//lint:ephemeral fetch-locality state; the next packet re-fetches anyway
	sinceFetch int

	// Watchdog state.
	//lint:ephemeral configuration, immutable during a run
	budget      uint64 // per-packet instruction limit (0 = unlimited)
	packetStart uint64 // instrs at the start of the current packet
}

// newEngine builds an engine over the hierarchy with a code segment of the
// given number of basic blocks.
func newEngine(h *cache.Hierarchy, blocks int) (*engine, error) {
	if blocks < 1 {
		blocks = 1
	}
	code, err := h.Space.Alloc(blocks*32, 128)
	if err != nil {
		return nil, err
	}
	return &engine{hier: h, codeBase: code, curBlock: -1}, nil
}

// charge accounts n executed instructions: the instruction counter and the
// single-issue core cycles (one per instruction) advance together. Every
// instruction the simulator ever charges flows through here or through
// burnWatchdog; the cycleacct analyzer rejects counter writes anywhere
// else.
//
//lint:cycle-accounting
func (e *engine) charge(n int) {
	e.instrs += uint64(n)
	e.core += float64(n)
}

// burnWatchdog charges the core cycles a stuck packet spins away before the
// watchdog declares it dead: the remainder of the instruction budget beyond
// what the packet already executed (Section 4.1 — those cycles are real and
// count toward the run).
//
//lint:cycle-accounting
func (e *engine) burnWatchdog(budget uint64) {
	if spent := e.packetInstrs(); spent < budget {
		e.core += float64(budget - spent)
		e.burned += float64(budget - spent)
	}
}

// Step implements apps.Exec.
func (e *engine) Step(block, n int) error {
	if n < 0 {
		panic("clumsy: negative instruction count")
	}
	e.charge(n)
	if block != e.curBlock {
		e.curBlock = block
		e.sinceFetch = 0
		if err := e.fetch(block); err != nil {
			return err
		}
	}
	e.sinceFetch += n
	for e.sinceFetch >= instrsPerFetch {
		e.sinceFetch -= instrsPerFetch
		if err := e.fetch(block); err != nil {
			return err
		}
	}
	return e.checkBudget()
}

func (e *engine) fetch(block int) error {
	return e.hier.L1I.Fetch(e.codeBase + simmem.Addr(block*32))
}

func (e *engine) checkBudget() error {
	if e.budget != 0 && e.instrs-e.packetStart > e.budget {
		return ErrWatchdog
	}
	return nil
}

// beginPacket resets the watchdog window.
//
//lint:hot-path
func (e *engine) beginPacket() { e.packetStart = e.instrs }

// packetInstrs returns the instructions spent on the current packet so far.
func (e *engine) packetInstrs() uint64 { return e.instrs - e.packetStart }

// totalCycles returns core plus memory stall cycles.
func (e *engine) totalCycles() float64 { return e.core + e.hier.StallCycles() }

// dataMemory wraps the L1D so that every load and store is also accounted
// as one instruction (and one core cycle) and checked against the watchdog.
type dataMemory struct {
	eng *engine
}

func (m dataMemory) note() error {
	m.eng.charge(1)
	return m.eng.checkBudget()
}

func (m dataMemory) Load8(a simmem.Addr) (uint8, error) {
	if err := m.note(); err != nil {
		return 0, err
	}
	return m.eng.hier.L1D.Load8(a)
}

func (m dataMemory) Store8(a simmem.Addr, v uint8) error {
	if err := m.note(); err != nil {
		return err
	}
	return m.eng.hier.L1D.Store8(a, v)
}

func (m dataMemory) Load16(a simmem.Addr) (uint16, error) {
	if err := m.note(); err != nil {
		return 0, err
	}
	return m.eng.hier.L1D.Load16(a)
}

func (m dataMemory) Store16(a simmem.Addr, v uint16) error {
	if err := m.note(); err != nil {
		return err
	}
	return m.eng.hier.L1D.Store16(a, v)
}

func (m dataMemory) Load32(a simmem.Addr) (uint32, error) {
	if err := m.note(); err != nil {
		return 0, err
	}
	return m.eng.hier.L1D.Load32(a)
}

func (m dataMemory) Store32(a simmem.Addr, v uint32) error {
	if err := m.note(); err != nil {
		return err
	}
	return m.eng.hier.L1D.Store32(a, v)
}

var _ simmem.Memory = dataMemory{}
