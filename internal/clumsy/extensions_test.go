package clumsy

import (
	"testing"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/packet"
)

// packetGenerate builds the app's trace the way Run does.
func packetGenerate(a apps.App, packets int, seed uint64) (*packet.Trace, error) {
	return packet.Generate(a.TraceConfig(packets, seed))
}

func TestECCConfigRuns(t *testing.T) {
	res := run(t, Config{App: "route", Packets: 400, Seed: 21, FaultScale: 50, CycleTime: 0.25,
		Detection: cache.DetectionECC, Strikes: 2})
	if res.Report.Fatal {
		t.Fatalf("ECC run died: %v", res.FatalErr)
	}
	if res.Recovery.Corrected == 0 {
		t.Fatal("ECC corrected nothing at amplified rate")
	}
	// Single-bit faults (the overwhelming majority) are repaired in
	// place; the residue is double-bit recoveries and structural damage
	// from faults on already-read values, so fallibility stays far below
	// the unprotected run's.
	noDet := run(t, Config{App: "route", Packets: 400, Seed: 21, FaultScale: 50, CycleTime: 0.25,
		Detection: cache.DetectionNone})
	if !noDet.Report.Fatal && res.Fallibility() > noDet.Fallibility() {
		t.Fatalf("ECC fallibility %v should not exceed unprotected %v",
			res.Fallibility(), noDet.Fallibility())
	}
	if res.Fallibility() > 1.25 {
		t.Fatalf("ECC fallibility = %v", res.Fallibility())
	}
	// ECC pays more energy than parity at the same point.
	parity := run(t, Config{App: "route", Packets: 400, Seed: 21, FaultScale: 50, CycleTime: 0.25,
		Detection: cache.DetectionParity, Strikes: 2})
	if res.Energy.Parity <= parity.Energy.Parity {
		t.Fatalf("ECC overhead (%v) should exceed parity overhead (%v)",
			res.Energy.Parity, parity.Energy.Parity)
	}
}

func TestSubBlockConfigRuns(t *testing.T) {
	full := run(t, Config{App: "route", Packets: 400, Seed: 22, FaultScale: 50, CycleTime: 0.25,
		Detection: cache.DetectionParity, Strikes: 1})
	sub := run(t, Config{App: "route", Packets: 400, Seed: 22, FaultScale: 50, CycleTime: 0.25,
		Detection: cache.DetectionParity, Strikes: 1, SubBlock: true})
	if sub.Recovery.Recoveries == 0 {
		t.Fatal("sub-block run never recovered at amplified rate")
	}
	// Word-granular recovery never invalidates lines.
	if sub.L1DStats.Invalidations != 0 {
		t.Fatalf("sub-block recovery invalidated %d lines", sub.L1DStats.Invalidations)
	}
	if full.Recovery.Recoveries > 0 && full.L1DStats.Invalidations == 0 {
		t.Fatal("full-line recovery should invalidate")
	}
}

func TestDMACoherence(t *testing.T) {
	// The regression behind Hierarchy.DMA: a wild read caused by an
	// undetected corrupted pointer may cache lines of the region a future
	// packet buffer will occupy; the DMA write must invalidate them so the
	// processor reads the packet, not stale zeros. With no detection and
	// a hot fault rate, route exercises wild reads; the initial-src
	// observation (a direct read of DMA-written bytes) must never differ
	// unless a fault hit that very read.
	res := run(t, Config{App: "nat", Packets: 600, Seed: 23, FaultScale: 30, CycleTime: 0.25,
		Planes: PlaneData})
	// initial-src errors can only come from read-path faults on those
	// loads, which are a tiny fraction of all accesses — not from every
	// packet after the first wild read.
	p := res.Report.ErrorProbability("initial-src")
	if p > 0.02 {
		t.Fatalf("initial-src error probability %v suggests stale DMA data", p)
	}
}

func TestRunWithTraceReplaysExactly(t *testing.T) {
	app := "route"
	res1 := run(t, Config{App: app, Packets: 200, Seed: 31, FaultScale: 20, CycleTime: 0.5})
	// Replaying the generated trace must give identical results to the
	// generating run.
	a, err := apps.New(app)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := packetGenerate(a, 200, 31)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunWithTrace(Config{App: app, Seed: 31, FaultScale: 20, CycleTime: 0.5}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Cycles != res2.Cycles || res1.Instrs != res2.Instrs ||
		res1.Report.PacketsWith != res2.Report.PacketsWith {
		t.Fatalf("replay diverged: %v/%v cycles, %v/%v instrs",
			res1.Cycles, res2.Cycles, res1.Instrs, res2.Instrs)
	}
}

func TestRunWithTraceRejectsEmpty(t *testing.T) {
	if _, err := RunWithTrace(Config{App: "route"}, nil); err == nil {
		t.Fatal("nil trace accepted")
	}
}
