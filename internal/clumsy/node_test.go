package clumsy

import (
	"errors"
	"testing"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/packet"
)

func nodeTrace(t *testing.T, app string, packets int, seed uint64) *packet.Trace {
	t.Helper()
	a, err := apps.New(app)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := packet.Generate(a.TraceConfig(packets, seed))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestNodeStreamsCleanly: a benign node serves the whole workload with no
// drops, positive per-packet service times, and health evidence that says
// so.
func TestNodeStreamsCleanly(t *testing.T) {
	cfg := Config{App: "route", Seed: 11, CycleTime: 1.0,
		Detection: cache.DetectionParity, Strikes: 2, Recovery: RecoverDrop}
	tr := nodeTrace(t, cfg.App, 300, cfg.Seed)
	cal, err := Calibrate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	if cal.Budget == 0 || cal.Delay <= 0 {
		t.Fatalf("degenerate calibration %+v", cal)
	}
	n, err := OpenNode(cfg, tr, cal)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := range tr.Packets {
		out, err := n.Process(&tr.Packets[i])
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if out.Dropped || out.Fatal {
			t.Fatalf("packet %d dropped (%s) at full swing with no faults", i, out.Reason)
		}
		if out.Cycles <= 0 {
			t.Fatalf("packet %d cost %v cycles", i, out.Cycles)
		}
	}
	h := n.Health()
	if h.Processed != len(tr.Packets) || h.Contained != 0 || h.Dead {
		t.Fatalf("health %+v after a clean stream", h)
	}
	if h.DropRate() != 0 {
		t.Fatalf("drop rate %v", h.DropRate())
	}
}

// TestNodeDeterministic: two nodes opened with the same configuration
// produce identical per-packet outcomes and health.
func TestNodeDeterministic(t *testing.T) {
	cfg := Config{App: "route", Seed: 21, CycleTime: 0.25,
		Detection: cache.DetectionParity, Strikes: 2,
		Regime: RegimePermanent, FaultScale: 60, Recovery: RecoverDrop}
	tr := nodeTrace(t, cfg.App, 250, cfg.Seed)
	cal, err := Calibrate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	a, err := OpenNode(cfg, tr, cal)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenNode(cfg, tr, cal)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for i := range tr.Packets {
		oa, ea := a.Process(&tr.Packets[i])
		ob, eb := b.Process(&tr.Packets[i])
		if (ea != nil) != (eb != nil) {
			t.Fatalf("packet %d: error divergence %v vs %v", i, ea, eb)
		}
		if oa != ob {
			t.Fatalf("packet %d: outcome divergence %+v vs %+v", i, oa, ob)
		}
	}
	if a.Health() != b.Health() {
		t.Fatalf("health divergence %+v vs %+v", a.Health(), b.Health())
	}
}

// TestNodeReclock: re-clocking raises the cycle time and returns
// non-pinned disabled frames to service; pinned (hard-damaged) frames
// stay out.
func TestNodeReclock(t *testing.T) {
	cfg := Config{App: "route", Seed: 4, CycleTime: 0.5,
		Detection: cache.DetectionParity, Strikes: 2, Planes: PlaneData,
		Regime: RegimePermanent, FaultScale: 120, PreDisableFrac: 0.05,
		Recovery: RecoverDegrade}
	tr := nodeTrace(t, cfg.App, 400, cfg.Seed)
	cal, err := Calibrate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	n, err := OpenNode(cfg, tr, cal)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	pinned := n.Health().LinesDisabled // the pre-disabled (hard) frames
	if pinned == 0 {
		t.Fatal("PreDisableFrac pinned no frames")
	}
	for i := range tr.Packets {
		if _, err := n.Process(&tr.Packets[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := n.Health()
	if before.LinesDisabled <= pinned {
		t.Fatalf("expected soft disables beyond the %d pinned frames, got %d", pinned, before.LinesDisabled)
	}
	if got := n.Reclock(0.3); got != 0.5 {
		t.Fatalf("Reclock must clamp upward-only: got %v", got)
	}
	if got := n.Reclock(2.0); got != 1.0 {
		t.Fatalf("Reclock must cap at full swing: got %v", got)
	}
	after := n.Health()
	if after.CycleTime != 1.0 {
		t.Fatalf("cycle time %v after re-clock", after.CycleTime)
	}
	if after.LinesDisabled != pinned {
		t.Fatalf("re-clock left %d lines disabled, want only the %d pinned", after.LinesDisabled, pinned)
	}
}

// TestNodeDeadAfterAbort: under the abort policy the first fatal error
// ends the node's service life and later Process calls refuse. The
// synthetic panicky app makes the fatal deterministic: the Calibrate pass
// builds instance 1, the node instance 2, and instance 2 is armed to
// panic at packet 5.
func TestNodeDeadAfterAbort(t *testing.T) {
	cfg := Config{App: "panicky", Seed: 2, FaultScale: 1e-12, Recovery: RecoverAbort}
	tr := nodeTrace(t, cfg.App, 40, cfg.Seed)
	armPanicky(2, 5, false)
	cal, err := Calibrate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	n, err := OpenNode(cfg, tr, cal)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := 0; i < 5; i++ {
		out, err := n.Process(&tr.Packets[i])
		if err != nil || out.Dropped {
			t.Fatalf("packet %d: err=%v out=%+v before the armed index", i, err, out)
		}
	}
	out, err := n.Process(&tr.Packets[5])
	if err != nil {
		t.Fatalf("armed packet: %v", err)
	}
	if !out.Dropped || !out.Fatal || out.Reason == "" {
		t.Fatalf("armed packet outcome %+v, want a fatal drop with a reason", out)
	}
	if n.FatalErr() == nil {
		t.Fatal("fatal outcome without a recorded error")
	}
	if !n.Health().Dead {
		t.Fatal("health does not report the node dead")
	}
	if _, err := n.Process(&tr.Packets[6]); !errors.Is(err, ErrNodeDead) {
		t.Fatalf("Process on a dead node returned %v, want ErrNodeDead", err)
	}
}
