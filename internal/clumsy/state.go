package clumsy

import (
	"errors"
	"fmt"

	"clumsy/internal/cache"
	"clumsy/internal/simmem"
	"clumsy/internal/telemetry"
)

// ErrStateCorrupt is returned when a flow record exhausts the state
// recovery ladder: the checksum kept mismatching through eviction and
// shadow rebuilds, so cross-packet state can no longer be trusted. It is
// a distinct outcome from an ordinary contained drop — the damage spans
// packet boundaries — and is terminal under every recovery policy.
var ErrStateCorrupt = errors.New("clumsy: unrecoverable flow-state corruption")

const (
	// DefaultStateStrikes is the per-record corruption budget: strike 1
	// evicts, later strikes rebuild from the golden shadow, and reaching
	// the budget declares the run's state unrecoverable.
	DefaultStateStrikes = 4
	// DefaultScrubInterval is the scrub period in completed packets used
	// when the config leaves ScrubInterval at zero ("default"); a negative
	// ScrubInterval disables scrubbing.
	DefaultScrubInterval = 64
)

// stateGuard wires a StatefulApp's flow table into the processor: it is
// the OnCorrupt recovery ladder, the periodic scrub pass, and the
// end-of-run divergence audit. One guard exists per runOnce, installed in
// the golden and the faulty pass alike so both execute identical
// instruction streams (the ladder can only fire where faults exist).
type stateGuard struct {
	st  *simmem.StateTable
	h   *cache.Hierarchy
	rt  *telemetry.RunTrace
	eng *engine

	interval int // scrub period in completed packets, 0 = disabled
	budget   int // per-record strike budget

	strikes []uint16 // per-record corruption strikes, monotone evidence
	repair  []byte   // DMA image scratch, RecordBytes long
	words   []uint32 // audit read scratch, RecWords long
	packet  int      // current packet index, for event stamping

	detected    uint64
	evictions   uint64
	rebuilds    uint64
	scrubPasses uint64
}

// newStateGuard builds the guard and installs its recovery ladder as the
// table's OnCorrupt handler.
func newStateGuard(st *simmem.StateTable, h *cache.Hierarchy, rt *telemetry.RunTrace, eng *engine, cfg Config) *stateGuard {
	g := &stateGuard{
		st:       st,
		h:        h,
		rt:       rt,
		eng:      eng,
		interval: cfg.ScrubInterval,
		budget:   cfg.StateStrikes,
		strikes:  make([]uint16, st.Records()),
		repair:   make([]byte, st.RecordBytes()),
		words:    make([]uint32, st.RecWords()),
	}
	if g.interval == 0 {
		g.interval = DefaultScrubInterval
	} else if g.interval < 0 {
		g.interval = 0
	}
	if g.budget <= 0 {
		g.budget = DefaultStateStrikes
	}
	st.OnCorrupt = g.onCorrupt
	return g
}

// onCorrupt is the recovery ladder, invoked by StateTable.Lookup on a
// checksum mismatch. Strike counts are fault evidence, not program state:
// like engine cycle counters they are monotone and survive packet-boundary
// rollback. This is the rare rung — it runs only on detected corruption —
// so it is deliberately not a //lint:hot-path function: event emission
// and repair bookkeeping may allocate here.
func (g *stateGuard) onCorrupt(idx int) error {
	g.detected++
	g.strikes[idx]++
	s := int(g.strikes[idx])
	if s >= g.budget {
		g.rt.StateCorrupt(g.packet, idx, "unrecoverable", s)
		return fmt.Errorf("%w: record %d after %d strikes", ErrStateCorrupt, idx, s) //lint:alloc-ok terminal rung, run is over
	}
	if s == 1 {
		// First strike: evict. The shadow is zeroed too, so record bytes
		// and golden oracle agree (a later partial update + Seal would
		// otherwise write a checksum inconsistent with memory).
		g.evictions++
		g.st.ZeroShadow(idx)
	} else {
		// Later strikes: rebuild the exact golden bytes from the shadow.
		g.rebuilds++
	}
	g.st.EncodeShadow(idx, g.repair)
	if s == 1 {
		g.rt.StateCorrupt(g.packet, idx, "evict", s)
	} else {
		g.rt.StateCorrupt(g.packet, idx, "rebuild", s)
	}
	// Coherent DMA: the repair image must not destroy a neighbouring
	// record's unwritten stores sharing a cache line with this record.
	return g.h.CoherentDMA(g.st.RecordAddr(idx), g.repair)
}

// scrubDue reports whether the periodic scrub pass should run after
// `processed` completed packets.
func (g *stateGuard) scrubDue(processed int) bool {
	return g.interval > 0 && processed%g.interval == 0
}

// scrubPass verifies every record of the table through the charged memory
// path, driving the recovery ladder on any latent mismatch. It runs as
// trusted firmware between packets: the per-packet watchdog is suspended
// for its (table-bounded) duration, but every access still costs cycles.
func (g *stateGuard) scrubPass(mem simmem.Memory, pkt int) error {
	g.packet = pkt
	g.scrubPasses++
	before := g.detected
	saved := g.eng.budget
	g.eng.budget = 0
	var err error
	for idx := 0; idx < g.st.Records(); idx++ {
		if _, err = g.st.Lookup(mem, idx); err != nil {
			break
		}
	}
	g.eng.budget = saved
	g.rt.StateScrub(pkt, g.st.Records(), int(g.detected-before))
	return err
}

// capture copies the guard's counters into the run result.
func (g *stateGuard) capture(out *onceResult) {
	out.stateRecords = g.st.Records()
	out.stateDetected = g.detected
	out.stateEvictions = g.evictions
	out.stateRebuilds = g.rebuilds
	out.stateScrubs = g.scrubPasses
}

// audit is the end-of-run divergence check of the faulty pass: with the
// injector disabled it reads every stored record uncharged through the
// L1D and compares against the golden shadow. A diverged record whose
// stored checksum still verifies is *undetected* corruption — a checksum
// collision, the only channel the integrity machinery cannot close.
func (g *stateGuard) audit(out *onceResult) error {
	for idx := 0; idx < g.st.Records(); idx++ {
		diverged := false
		for w := 0; w < g.st.RecWords(); w++ {
			v, err := g.h.L1D.Load32(g.st.FieldAddr(idx, w))
			if err != nil {
				return err
			}
			g.words[w] = v
			if v != g.st.ShadowWord(idx, w) {
				diverged = true
			}
		}
		storedSum, err := g.h.L1D.Load32(g.st.SumAddr(idx))
		if err != nil {
			return err
		}
		if storedSum != g.st.ShadowSum(idx) {
			diverged = true
		}
		if !diverged {
			continue
		}
		out.stateDiverged++
		if g.st.SumOf(g.words, idx) == storedSum {
			out.stateUndetected++
		}
	}
	return nil
}
