package clumsy

import "testing"

// BenchmarkRunRoute measures the end-to-end simulation rate: a full
// golden+clumsy pair over a 500-packet route workload per iteration.
func BenchmarkRunRoute(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{App: "route", Packets: 500, Seed: uint64(i + 1),
			CycleTime: 0.5, FaultScale: 25})
		if err != nil {
			b.Fatal(err)
		}
		if res.Report.GoldenPackets != 500 {
			b.Fatal("short run")
		}
	}
}
