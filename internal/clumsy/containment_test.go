package clumsy

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/fault"
	"clumsy/internal/metrics"
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// fatalProneConfig is a configuration whose abort-policy runs reliably die
// mid-trace: a tight watchdog budget (0.7x the golden run's worst packet)
// over paper-rate faults. The applications deflect corrupted pointers
// defensively, so wild reads almost never trap; what kills real runs is the
// watchdog — and under a tight budget the trace's heaviest packets
// genuinely exceed it, driving the same ErrWatchdog fatal path a corrupted
// loop bound would.
func fatalProneConfig() Config {
	return Config{App: "route", Packets: 200, FaultScale: 1, CycleTime: 0.25,
		Planes: PlaneData, WatchdogFactor: 0.7}
}

// findFatalSeed searches for a seed whose abort-policy run dies mid-trace
// (fatal during the data plane, after at least one completed packet), so
// the drop-policy tests have a deterministic fatal to contain.
func findFatalSeed(t *testing.T, base Config) (uint64, *Result) {
	t.Helper()
	base.Recovery = RecoverAbort
	for seed := uint64(1); seed <= 80; seed++ {
		base.Seed = seed
		res, err := Run(base)
		if err != nil {
			t.Fatalf("seed search: %v", err)
		}
		if res.FatalErr != nil && !res.SetupDied && res.Report.Processed > 0 {
			return seed, res
		}
	}
	t.Fatalf("no seed in 1..80 produced a mid-trace fatal for %+v", base)
	return 0, nil
}

// TestDropPolicyCompletesTrace is the headline acceptance test: a
// configuration that dies mid-trace under the abort policy completes the
// whole trace under drop-and-continue, with the fatal errors contained as
// packet drops.
func TestDropPolicyCompletesTrace(t *testing.T) {
	base := fatalProneConfig()
	seed, abort := findFatalSeed(t, base)

	base.Seed = seed
	base.Recovery = RecoverDrop
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.FatalErr != nil {
		t.Fatalf("drop policy must contain the fatal error, got: %v", res.FatalErr)
	}
	if res.Report.Dropped == 0 {
		t.Fatal("a run that aborts under the abort policy must drop packets under drop")
	}
	if got := res.Report.Processed + res.Report.Dropped; got != res.Report.GoldenPackets {
		t.Fatalf("attempted %d packets, want the full trace of %d", got, res.Report.GoldenPackets)
	}
	if res.Report.Fatal {
		t.Fatal("completed trace must not be marked fatal")
	}
	if res.Contained != res.Report.Dropped {
		t.Fatalf("contained %d != dropped %d", res.Contained, res.Report.Dropped)
	}
	if res.RestoredPages == 0 {
		t.Fatal("containment restored no pages; the checkpoint never fired")
	}
	if f := res.Fallibility(); f < 1 || f > 2 {
		t.Fatalf("fallibility %v out of [1,2]", f)
	}
	if dr := res.Report.DropRate(); dr <= 0 || dr >= 1 {
		t.Fatalf("drop rate %v out of (0,1)", dr)
	}
	// More packets completed than the aborted run managed.
	if res.Report.Processed <= abort.Report.Processed {
		t.Fatalf("drop processed %d, abort processed %d before dying",
			res.Report.Processed, abort.Report.Processed)
	}
}

// TestDropMatchesAbortWithoutFatals: on a run with no fatal errors the two
// policies must be indistinguishable — the checkpoint machinery (dirty-page
// tracking, per-packet sync and commit) must not perturb cycles, energy,
// instruction counts, or observations. This is the bit-identity guarantee
// that keeps the paper-fidelity outputs unchanged.
func TestDropMatchesAbortWithoutFatals(t *testing.T) {
	for _, app := range apps.Names() {
		cfg := Config{App: app, Packets: 100, Seed: 11, FaultScale: 1e-9, CycleTime: 0.5}
		abort, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Recovery = RecoverDrop
		drop, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if abort.Cycles != drop.Cycles || abort.Instrs != drop.Instrs {
			t.Fatalf("%s: checkpointing perturbed the run: cycles %v/%v instrs %v/%v",
				app, abort.Cycles, drop.Cycles, abort.Instrs, drop.Instrs)
		}
		if abort.Energy.Total() != drop.Energy.Total() {
			t.Fatalf("%s: energy %v != %v", app, abort.Energy.Total(), drop.Energy.Total())
		}
		if abort.Report.PacketsWith != drop.Report.PacketsWith ||
			abort.Report.Processed != drop.Report.Processed || drop.Report.Dropped != 0 {
			t.Fatalf("%s: reports diverge: %+v vs %+v", app, abort.Report, drop.Report)
		}
	}
}

// playDataPlane runs one application's data plane fault-free and returns
// its recorder. With scribble set, the post-setup state is checkpointed
// (space pages plus cache snapshot), then trashed two ways — junk written
// straight into the backing space, and junk stored through the cache
// hierarchy so lines dirty, evict, and write back — and finally restored.
// If the restore is faithful the observations must match the unscribbled
// run byte for byte.
func playDataPlane(t *testing.T, appName string, scribble bool) *metrics.Recorder {
	t.Helper()
	app, err := apps.New(appName)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := packet.Generate(app.TraceConfig(60, 0x5eed))
	if err != nil {
		t.Fatal(err)
	}
	space := simmem.NewSpace(autoSpaceBytes(trace))
	injector := fault.NewInjector(fault.NewModel(1), fault.NewRNG(1).Fork(0xfa17), 32)
	injector.SetEnabled(false)
	h, err := cache.NewHierarchyWith(space, injector, cache.DetectionNone, 1, cache.HierarchyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := newEngine(h, appBlocks)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	ctx := &apps.Context{Space: space, Mem: dataMemory{eng}, Rec: rec, Exec: eng}
	if err := app.Setup(ctx, trace); err != nil {
		t.Fatalf("%s setup: %v", appName, err)
	}
	rec.BeginPackets()

	if scribble {
		ckpt := space.NewCheckpoint()
		defer ckpt.Release()
		cs := h.Snapshot(nil)

		junk := make([]byte, int(space.Brk())-int(simmem.PageBase))
		rng := fault.NewRNG(0xbad)
		for i := range junk {
			junk[i] = byte(rng.Uint64())
		}
		if err := space.WriteBlock(simmem.PageBase, junk); err != nil {
			t.Fatal(err)
		}
		// Stores through the hierarchy corrupt cached lines too and force
		// dirty evictions into the space.
		for off := simmem.Addr(0); off < simmem.Addr(len(junk)); off += 4 {
			if err := h.L1D.Store32(simmem.PageBase+off, uint32(rng.Uint64())); err != nil {
				t.Fatal(err)
			}
		}
		if pages := ckpt.Restore(); pages == 0 {
			t.Fatal("scribble dirtied no pages")
		}
		h.RestoreSnapshot(cs)
	}

	for i := range trace.Packets {
		p := &trace.Packets[i]
		buf, err := dmaPacket(h, p)
		if err != nil {
			t.Fatal(err)
		}
		eng.beginPacket()
		if err := app.Process(ctx, p, buf); err != nil {
			t.Fatalf("%s packet %d: %v", appName, i, err)
		}
		rec.EndPacket()
	}
	return rec
}

// TestRestoreGoldenEquivalence proves the restore is exact: after
// scribbling over the whole post-setup memory image and rolling it back,
// every application produces per-packet observations identical to a run
// that was never corrupted.
func TestRestoreGoldenEquivalence(t *testing.T) {
	names := append(apps.Names(), "adpcm")
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			ref := playDataPlane(t, name, false)
			got := playDataPlane(t, name, true)
			rep := metrics.Compare(ref, got)
			if rep.InitMismatch {
				t.Fatal("control-plane observations diverged (setup ran before the scribble)")
			}
			if rep.Processed != len(ref.Packets) || rep.Fatal {
				t.Fatalf("restored run attempted %d of %d packets", rep.Processed, len(ref.Packets))
			}
			if rep.PacketsWith != 0 {
				t.Fatalf("restored state diverged on %d of %d packets: %+v",
					rep.PacketsWith, rep.Processed, rep.PerStructure)
			}
		})
	}
}

// TestMaxDropRateAborts: the graceful-degradation threshold turns a
// containable run back into a fatal one once the drop fraction exceeds it.
func TestMaxDropRateAborts(t *testing.T) {
	base := fatalProneConfig()
	seed, _ := findFatalSeed(t, base)

	base.Seed = seed
	base.Recovery = RecoverDrop
	base.MaxDropRate = 1e-9 // any drop at all exceeds this
	res, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.FatalErr, ErrDropRateExceeded) {
		t.Fatalf("FatalErr = %v, want ErrDropRateExceeded", res.FatalErr)
	}
	if !res.Report.Fatal {
		t.Fatal("exceeding the threshold must cut the run short")
	}
	if res.Report.Dropped == 0 {
		t.Fatal("the threshold can only trip after a drop")
	}
}

// TestDropDeterminism: containment is part of the simulation, so two runs
// of the same configuration must agree in every figure.
func TestDropDeterminism(t *testing.T) {
	cfg := Config{App: "nat", Packets: 150, Seed: 9, FaultScale: 2e3, CycleTime: 0.25,
		Recovery: RecoverDrop}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Instrs != b.Instrs ||
		a.Report.Dropped != b.Report.Dropped || a.Contained != b.Contained ||
		a.RestoredPages != b.RestoredPages {
		t.Fatalf("identical drop configs diverge:\n%+v\n%+v", a.Report, b.Report)
	}
}

// TestSetupDeathAlwaysAborts: a fatal error during the control plane ends
// the run under either policy — there is no checkpoint to restore before
// Setup has completed. The death is driven deterministically through the
// panic-isolation path (the injected-fault fatal paths are exercised by the
// watchdog tests above; the containment plumbing downstream of isFatal is
// identical).
func TestSetupDeathAlwaysAborts(t *testing.T) {
	tr := panickyTrace(t, 40)
	for _, policy := range []RecoveryPolicy{RecoverAbort, RecoverDrop} {
		armPanicky(2, 0, true) // instance 2 = the faulty run, panics in Setup
		res, err := RunWithTrace(Config{App: "panicky", Seed: 3, FaultScale: 1e-12,
			Recovery: policy, MaxDropRate: 0.5}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if !res.SetupDied {
			t.Fatalf("%v: setup panic not recorded as a setup death", policy)
		}
		if res.FatalErr == nil {
			t.Fatalf("%v: SetupDied with nil FatalErr", policy)
		}
		if res.Report.Processed != 0 || res.Report.Dropped != 0 {
			t.Fatalf("%v: setup death processed %d / dropped %d packets",
				policy, res.Report.Processed, res.Report.Dropped)
		}
		if res.Contained != 0 || res.RestoredPages != 0 {
			t.Fatalf("%v: setup death must not be contained: %d / %d",
				policy, res.Contained, res.RestoredPages)
		}
		if res.Fallibility() != 2 {
			t.Fatalf("%v: fallibility = %v, want maximal 2", policy, res.Fallibility())
		}
		if res.Delay != res.GoldenDelay {
			t.Fatalf("%v: delay %v, want golden %v (no packets to charge)",
				policy, res.Delay, res.GoldenDelay)
		}
	}
}

// TestSubBlockDynamicRecovery covers the interaction of the two extension
// mechanisms with containment enabled: sub-block (per-word) recovery under
// the dynamic frequency controller, with fatal errors contained rather
// than aborting. The controller must keep adapting across contained drops.
func TestSubBlockDynamicRecovery(t *testing.T) {
	cfg := Config{App: "route", Packets: 1200, Seed: 7, FaultScale: 25,
		Dynamic: true, SubBlock: true, Detection: cache.DetectionParity, Strikes: 2,
		Recovery: RecoverDrop}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Recovery.Recoveries == 0 {
		t.Fatal("sub-block run saw no recoveries at 25x")
	}
	if a.Switches == 0 {
		t.Fatal("dynamic controller never switched")
	}
	if a.FatalErr != nil {
		t.Fatalf("containment should keep the dynamic run alive: %v", a.FatalErr)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Switches != b.Switches || a.Report.Dropped != b.Report.Dropped {
		t.Fatalf("dynamic+subblock+drop diverges across runs: %v/%v, %d/%d, %d/%d",
			a.Cycles, b.Cycles, a.Switches, b.Switches, a.Report.Dropped, b.Report.Dropped)
	}
}

// --- panic containment -------------------------------------------------

// panickyApp is a synthetic workload whose Process panics at a chosen
// packet index — but only on the armed instance, so the golden run (the
// first instance a RunWithTrace creates) stays clean while the faulty run
// (the second) panics. It also implements ScratchResetter so the tests can
// observe the containment hook firing.
type panickyApp struct {
	me   int
	data simmem.Addr
	idx  int
}

var panicky struct {
	mu         sync.Mutex
	instances  int
	armed      int // instance number whose Process panics (0 = none)
	armedSetup int // instance number whose Setup panics (0 = none)
	at         int // packet index at which the armed instance panics
	last       *panickyApp
	resets     int
}

func init() {
	apps.Register("panicky", func() apps.App {
		panicky.mu.Lock()
		defer panicky.mu.Unlock()
		panicky.instances++
		a := &panickyApp{me: panicky.instances}
		panicky.last = a
		return a
	})
}

// armPanicky resets the instance counter and arms the nth instance to
// panic at packet index at (or during Setup when inSetup is set).
func armPanicky(n, at int, inSetup bool) {
	panicky.mu.Lock()
	defer panicky.mu.Unlock()
	panicky.instances = 0
	panicky.resets = 0
	panicky.at = at
	if inSetup {
		panicky.armedSetup = n
		panicky.armed = 0
	} else {
		panicky.armed = n
		panicky.armedSetup = 0
	}
}

func (a *panickyApp) Name() string { return "panicky" }

func (a *panickyApp) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{Packets: packets, Flows: 8, PayloadMin: 16, PayloadMax: 32, Seed: seed}
}

func (a *panickyApp) Setup(ctx *apps.Context, tr *packet.Trace) error {
	panicky.mu.Lock()
	boom := a.me == panicky.armedSetup
	panicky.mu.Unlock()
	if boom {
		panic("panicky: synthetic setup panic")
	}
	addr, err := ctx.Space.Alloc(64, 4)
	if err != nil {
		return err
	}
	a.data = addr
	if err := ctx.Mem.Store32(addr, 0x1234); err != nil {
		return err
	}
	ctx.Rec.Observe("panicky-init", 0x1234)
	return nil
}

func (a *panickyApp) Process(ctx *apps.Context, p *packet.Packet, buf simmem.Addr) error {
	i := a.idx
	a.idx++
	if err := ctx.Exec.Step(0, 8); err != nil {
		return err
	}
	v, err := ctx.Mem.Load8(buf)
	if err != nil {
		return err
	}
	ctx.Rec.Observe("panicky-byte", uint64(v))
	panicky.mu.Lock()
	boom := a.me == panicky.armed && i == panicky.at
	panicky.mu.Unlock()
	if boom {
		panic(fmt.Sprintf("panicky: synthetic panic at packet %d", i))
	}
	return nil
}

func (a *panickyApp) ResetScratch() {
	panicky.mu.Lock()
	panicky.resets++
	panicky.mu.Unlock()
}

// panickyTrace builds the fixed trace the panic tests replay, so instance
// numbering is deterministic (RunWithTrace creates exactly two instances:
// golden first, faulty second).
func panickyTrace(t *testing.T, packets int) *packet.Trace {
	t.Helper()
	tr, err := packet.Generate((&panickyApp{}).TraceConfig(packets, 3))
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestPanicAbortsUnderAbortPolicy: a Go panic in the data plane surfaces
// as an ErrAppPanic fatal, not a process crash.
func TestPanicAbortsUnderAbortPolicy(t *testing.T) {
	tr := panickyTrace(t, 30)
	armPanicky(2, 10, false) // instance 2 = the faulty run
	res, err := RunWithTrace(Config{App: "panicky", Seed: 3, FaultScale: 1e-12}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.FatalErr, ErrAppPanic) {
		t.Fatalf("FatalErr = %v, want ErrAppPanic", res.FatalErr)
	}
	if !res.Report.Fatal || res.Report.Processed != 10 {
		t.Fatalf("report = %+v, want fatal after 10 packets", res.Report)
	}
}

// TestPanicContainedUnderDropPolicy: the same panic under drop policy is
// contained — the packet is dropped, the ScratchResetter hook fires, and
// the rest of the trace completes cleanly.
func TestPanicContainedUnderDropPolicy(t *testing.T) {
	tr := panickyTrace(t, 30)
	armPanicky(2, 10, false)
	res, err := RunWithTrace(Config{App: "panicky", Seed: 3, FaultScale: 1e-12,
		Recovery: RecoverDrop}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.FatalErr != nil {
		t.Fatalf("panic must be contained: %v", res.FatalErr)
	}
	if res.Report.Dropped != 1 || res.Contained != 1 {
		t.Fatalf("dropped %d contained %d, want exactly the panicking packet",
			res.Report.Dropped, res.Contained)
	}
	if res.Report.Processed != 29 {
		t.Fatalf("processed %d of 30, want 29", res.Report.Processed)
	}
	if res.Report.PacketsWith != 0 {
		t.Fatalf("%d packets diverged after the restore", res.Report.PacketsWith)
	}
	panicky.mu.Lock()
	resets := panicky.resets
	panicky.mu.Unlock()
	if resets != 1 {
		t.Fatalf("ResetScratch fired %d times, want 1", resets)
	}
}

// TestPanicInSetupAlwaysFatal: a setup panic has no checkpoint to fall
// back on, so even the drop policy reports it as a fatal setup death.
func TestPanicInSetupAlwaysFatal(t *testing.T) {
	tr := panickyTrace(t, 20)
	armPanicky(2, 0, true)
	res, err := RunWithTrace(Config{App: "panicky", Seed: 3, FaultScale: 1e-12,
		Recovery: RecoverDrop}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(res.FatalErr, ErrAppPanic) || !res.SetupDied {
		t.Fatalf("FatalErr = %v setupDied = %v, want setup panic", res.FatalErr, res.SetupDied)
	}
	if res.Fallibility() != 2 {
		t.Fatalf("fallibility = %v, want 2", res.Fallibility())
	}
}

// TestParseRecoveryPolicy covers the CLI spelling round-trip.
func TestParseRecoveryPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want RecoveryPolicy
		ok   bool
	}{
		{"", RecoverAbort, true},
		{"abort", RecoverAbort, true},
		{"drop", RecoverDrop, true},
		{"continue", RecoverAbort, false},
	} {
		got, err := ParseRecoveryPolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseRecoveryPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if RecoverAbort.String() != "abort" || RecoverDrop.String() != "drop" {
		t.Error("policy String() spellings changed")
	}
}

// FuzzContainment drives the drop policy across seeds, fault scales, and
// applications, checking the containment invariants: the simulator never
// errors, an unbounded drop policy always completes the trace, and the
// derived rates stay in range.
func FuzzContainment(f *testing.F) {
	f.Add(uint64(1), uint32(5000), uint8(0))
	f.Add(uint64(7), uint32(100), uint8(2))
	f.Add(uint64(42), uint32(50000), uint8(5))
	f.Fuzz(func(t *testing.T, seed uint64, scaleMilli uint32, appIdx uint8) {
		names := apps.Names()
		app := names[int(appIdx)%len(names)]
		scale := float64(scaleMilli%200000)/10 + 1e-6
		cfg := Config{
			App: app, Packets: 30, Seed: seed%1000 + 1,
			CycleTime: 0.25, FaultScale: scale, Planes: PlaneData,
			WatchdogFactor: 50, Recovery: RecoverDrop,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("Run(%+v): %v", cfg, err)
		}
		attempted := res.Report.Processed + res.Report.Dropped
		if res.FatalErr != nil {
			t.Fatalf("unbounded drop policy ended fatally: %v", res.FatalErr)
		}
		if attempted != res.Report.GoldenPackets {
			t.Fatalf("attempted %d of %d", attempted, res.Report.GoldenPackets)
		}
		if f := res.Fallibility(); f < 1 || f > 2 {
			t.Fatalf("fallibility %v", f)
		}
		if dr := res.Report.DropRate(); dr < 0 || dr > 1 {
			t.Fatalf("drop rate %v", dr)
		}
		if res.Report.Dropped == 0 && (res.Contained != 0 || res.RestoredPages != 0) {
			t.Fatalf("containment counters nonzero without drops: %+v", res)
		}
		if res.Contained != res.Report.Dropped {
			t.Fatalf("contained %d != dropped %d", res.Contained, res.Report.Dropped)
		}
	})
}
