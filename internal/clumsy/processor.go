package clumsy

import (
	"errors"
	"fmt"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/energy"
	"clumsy/internal/fault"
	"clumsy/internal/freqctl"
	"clumsy/internal/metrics"
	"clumsy/internal/packet"
	"clumsy/internal/radix"
	"clumsy/internal/simmem"
	"clumsy/internal/telemetry"
	"clumsy/internal/workload"
)

// Planes selects which execution segments receive fault injection, for the
// control-plane / data-plane experiments of Section 5.2.
type Planes int

const (
	PlaneNone Planes = 0
	// PlaneControl injects faults only during Setup (table construction).
	PlaneControl Planes = 1 << iota
	// PlaneData injects faults only during packet processing.
	PlaneData
	// PlaneBoth injects faults everywhere.
	PlaneBoth = PlaneControl | PlaneData
)

func (p Planes) String() string {
	switch p {
	case PlaneControl:
		return "control plane"
	case PlaneData:
		return "data plane"
	case PlaneBoth:
		return "both planes"
	default:
		return "no injection"
	}
}

// RecoveryPolicy selects what the faulty run does when a fatal error
// strikes during packet processing.
//
//lint:exhaustive
type RecoveryPolicy int

const (
	// RecoverAbort ends the run at the first fatal error — the paper's
	// measurement semantics (Section 4.1: figures are based on the packets
	// processed until the fatal error). This is the default; every
	// paper-fidelity table and figure is produced under it.
	RecoverAbort RecoveryPolicy = iota
	// RecoverDrop contains the fault at packet granularity, the way the
	// paper argues real routers behave (Section 2: drop the offending
	// packet and keep forwarding): the watchdog-budget cycles are charged,
	// the packet is dropped, the control-plane state is rolled back to the
	// last packet boundary from the checkpoint, and the run continues with
	// the next packet.
	RecoverDrop
	// RecoverDegrade is RecoverDrop plus the escalating recovery ladder:
	// per-line strike tracking disables frames that keep faulting
	// (correlated and permanent faults k-strike retry can never clear),
	// and under the dynamic scheme the frequency controller receives
	// spatial evidence — distinct faulting lines per epoch and the
	// disabled-capacity fraction — and backs the operating point off when
	// faults stop looking like independent transients.
	RecoverDegrade
)

func (p RecoveryPolicy) String() string {
	switch p {
	case RecoverAbort:
		return "abort"
	case RecoverDrop:
		return "drop"
	case RecoverDegrade:
		return "degrade"
	default:
		return "abort"
	}
}

// ParseRecoveryPolicy parses the CLI spelling of a policy.
func ParseRecoveryPolicy(s string) (RecoveryPolicy, error) {
	switch s {
	case "", "abort":
		return RecoverAbort, nil
	case "drop":
		return RecoverDrop, nil
	case "degrade":
		return RecoverDegrade, nil
	default:
		return RecoverAbort, fmt.Errorf("clumsy: unknown recovery policy %q (want abort, drop, or degrade)", s)
	}
}

// FaultRegime selects the statistical structure of the injected faults.
//
//lint:exhaustive
type FaultRegime int

const (
	// RegimePaper is the memoryless per-access Bernoulli process of
	// Section 3 — the default, and the regime behind every paper-fidelity
	// table and figure.
	RegimePaper FaultRegime = iota
	// RegimeBurst is the Gilbert–Elliott two-state process: voltage-droop
	// or thermal episodes multiply the base fault rate for short
	// stretches of accesses.
	RegimeBurst
	// RegimePermanent layers a per-line stuck-at fault map over the paper
	// process: marginal cells fault on every access once Cr drops below
	// their per-cell critical cycle time.
	RegimePermanent
)

func (r FaultRegime) String() string {
	switch r {
	case RegimePaper:
		return "paper"
	case RegimeBurst:
		return "burst"
	case RegimePermanent:
		return "permanent"
	default:
		return "paper"
	}
}

// ParseFaultRegime parses the CLI spelling of a fault regime.
func ParseFaultRegime(s string) (FaultRegime, error) {
	switch s {
	case "", "paper":
		return RegimePaper, nil
	case "burst":
		return RegimeBurst, nil
	case "permanent":
		return RegimePermanent, nil
	default:
		return RegimePaper, fmt.Errorf("clumsy: unknown fault regime %q (want paper, burst, or permanent)", s)
	}
}

// Recovery-ladder defaults, in force when RecoverDegrade leaves the
// corresponding Config knob at zero.
const (
	// DefaultLineDisableStrikes is the per-frame strike budget S: the
	// S-th uncorrected strike on one frame inside the window disables it.
	DefaultLineDisableStrikes = 3
	// DefaultLineDisableWindow is the strike window in L1D accesses.
	DefaultLineDisableWindow = 4096
	// DefaultSpatialLines is the per-epoch distinct-faulting-lines bound
	// beyond which the controller forces a slow-down.
	DefaultSpatialLines = 8
	// DefaultSpatialDisabledFrac is the disabled-capacity fraction beyond
	// which the controller forces a slow-down.
	DefaultSpatialDisabledFrac = 0.125
)

// ErrAppPanic marks a Go panic raised by an application while processing a
// packet — typically an out-of-range slice index or similar computed from
// corrupted simulated memory. The packet loop contains it with recover()
// and treats it like any other fatal error.
var ErrAppPanic = errors.New("clumsy: application panicked")

// ErrDropRateExceeded ends a drop-and-continue run whose drop fraction
// exceeded Config.MaxDropRate — the graceful-degradation threshold beyond
// which the processor is considered failed rather than clumsy.
var ErrDropRateExceeded = errors.New("clumsy: drop rate exceeded MaxDropRate")

// Config describes one simulation run. Every field that can change a
// Result must flow into the campaign fingerprint — by name, through a
// study's Extra cell parameters, or not at all with a documented reason;
// the fpcover analyzer enforces the classification.
//
//lint:fingerprint-source
type Config struct {
	//lint:fingerprint-extra per-app studies encode the app in the study name
	App     string // NetBench application name
	Packets int    // trace length
	Seed    uint64 // experiment seed (trace + fault stream)

	//lint:fingerprint-extra operating-point grids carry the cycle time in Extra
	CycleTime float64 // static relative cycle time of the L1D (ignored when Dynamic)
	//lint:fingerprint-extra scheme cells name static/dynamic in Extra
	Dynamic bool // use the frequency-adaptation controller

	// Dynamic-controller overrides (zero = the paper's defaults: 100
	// packets per epoch, X1 = 2.0, X2 = 0.8). Used by the threshold
	// tuning study.
	//lint:fingerprint-extra the threshold-tuning study fingerprints its grid point in Extra
	EpochPackets int
	//lint:fingerprint-extra the threshold-tuning study fingerprints its grid point in Extra
	X1, X2 float64

	//lint:fingerprint-extra detection-scheme cells carry the scheme in Extra
	Detection cache.Detection
	//lint:fingerprint-extra detection-scheme cells carry the strike count in Extra
	Strikes int // 1..3, recovery scheme under parity/ECC
	// SubBlock selects sub-block (per-word) recovery instead of full-line
	// invalidation — the extension of the paper's footnote 2.
	//lint:fingerprint-extra sub-block cells carry the recovery granularity in Extra
	SubBlock bool

	FaultScale float64 // multiplier on the physical fault rate (1 = paper)
	//lint:fingerprint-extra the error-behaviour study passes the plane as Extra
	Planes Planes // which planes receive faults

	// Regime selects the fault process of the faulty run: the paper's
	// memoryless process (the default), Gilbert–Elliott bursts, or the
	// permanent/intermittent stuck-at overlay.
	//lint:fingerprint-extra the reliability study names the regime in Extra
	Regime FaultRegime

	// LineDisableStrikes arms per-line strike tracking: after this many
	// uncorrected strikes on one frame within LineDisableWindow L1D
	// accesses, the frame is disabled. Zero leaves the mechanism off
	// unless Recovery is RecoverDegrade, which falls back to
	// DefaultLineDisableStrikes/DefaultLineDisableWindow.
	//lint:fingerprint-extra ladder cells carry the line-disable setting in Extra
	LineDisableStrikes int
	//lint:fingerprint-extra ladder cells carry the line-disable setting in Extra
	LineDisableWindow uint64

	// PreDisableFrac force-disables this fraction of L1D frames before
	// the faulty run starts — the x-axis control of the graceful-
	// degradation curve. The frames are pinned: frequency drops do not
	// re-enable them.
	//lint:fingerprint-extra the degradation curve sweeps this as its Extra axis
	PreDisableFrac float64

	// MinDwellEpochs, under the dynamic scheme, is the minimum number of
	// controller epochs between applied operating-point changes. Zero
	// (the default) keeps the paper's undamped semantics.
	//lint:fingerprint-extra the DVS study fingerprints its dwell setting in Extra
	MinDwellEpochs int

	// WatchdogFactor bounds per-packet instructions at this multiple of
	// the golden run's worst packet. A stuck execution (the paper's
	// infinite-loop fatal error) spins for this budget before it is
	// declared dead, and the burned cycles count toward the run — which is
	// what makes fatal configurations expensive in the EDF metric, as in
	// the paper's off-scale bars. Zero selects the default of 500.
	//lint:fingerprint-exempt fixed default across every study; no cell varies it
	WatchdogFactor float64

	// Recovery selects the fatal-error policy of the faulty run:
	// RecoverAbort (the default) reproduces the paper's semantics,
	// RecoverDrop contains fatal errors at packet granularity via
	// checkpoint/restore of the simulated memory. A fatal error during
	// Setup always aborts: there is no pre-fault state to restore before
	// the control plane has been built.
	Recovery RecoveryPolicy

	// MaxDropRate, under RecoverDrop, is the graceful-degradation
	// threshold: once the fraction of attempted packets that were dropped
	// exceeds it, the run aborts with ErrDropRateExceeded. Zero means no
	// threshold (drop forever).
	MaxDropRate float64

	// ScrubInterval, for stateful applications, walks the flow-state
	// table with verified reads every this many completed packets,
	// catching silent corruption between lookups. Zero disables the
	// scrub; verify-on-lookup and the recovery ladder stay armed whenever
	// the app keeps a state table.
	//lint:fingerprint-extra the state-integrity study sweeps the scrub interval in Extra
	ScrubInterval int

	// StateStrikes bounds the per-record recovery ladder: detection
	// strike 1 evicts the record, later strikes rebuild it from the
	// golden shadow, and reaching the budget ends the run with
	// ErrStateCorrupt. Zero selects DefaultStateStrikes.
	//lint:fingerprint-extra the state-integrity study carries the strike budget in Extra
	StateStrikes int

	// Workload, when non-nil, post-processes the generated trace with the
	// workload-v2 substrate (temporal shape, adversarial malformed
	// packets, flow churn) before the run. Run applies it; RunWithTrace
	// callers shape their trace themselves.
	//lint:fingerprint-extra the state-integrity study names the workload spec in Extra
	Workload *workload.Spec

	// SpaceBytes overrides the simulated memory size (0 = auto).
	//lint:fingerprint-extra geometry cells carry their sizing in Extra
	SpaceBytes int

	// L1DSize overrides the L1 data cache capacity in bytes (0 = the
	// StrongARM default of 4 KB); used by the geometry ablation.
	//lint:fingerprint-extra the geometry ablation sweeps this as its Extra axis
	L1DSize int

	// Telemetry, when non-nil, receives counters and structured trace
	// events from the faulty run (the golden reference stays silent). Nil
	// falls back to the process-wide hub installed with
	// SetDefaultTelemetry; when that is nil too, telemetry is off and the
	// simulation hot paths are untouched.
	//lint:fingerprint-exempt observability wiring, cannot change a Result
	Telemetry *telemetry.Telemetry
}

func (c Config) withDefaults() Config {
	if c.CycleTime == 0 {
		c.CycleTime = 1
	}
	if c.Strikes == 0 {
		c.Strikes = 1
	}
	if c.FaultScale == 0 {
		c.FaultScale = 1
	}
	if c.Planes == 0 {
		c.Planes = PlaneBoth
	}
	if c.WatchdogFactor == 0 {
		c.WatchdogFactor = 500
	}
	if c.Telemetry == nil {
		c.Telemetry = DefaultTelemetry()
	}
	return c
}

// Result carries everything measured in one golden+faulty run pair.
type Result struct {
	Config Config

	// Golden (fault-free, full-swing) reference.
	GoldenCycles   float64
	GoldenInstrs   uint64
	GoldenDelay    float64 // data-plane cycles per packet
	GoldenEnergy   energy.Breakdown
	GoldenL1DStats cache.Stats

	// Clumsy run.
	Cycles float64
	// Breakdown attributes Cycles to per-component buckets — compute,
	// L1D/L1I/L2/memory stall, recovery, and frequency-switch penalty.
	// The buckets partition Cycles exactly on every standard
	// configuration (see cache.CycleBreakdown and the attribution tests).
	Breakdown cache.CycleBreakdown
	Instrs    uint64
	Delay     float64 // data-plane cycles per completed packet
	Energy    energy.Breakdown
	L1DStats  cache.Stats
	Recovery  cache.RecoveryStats
	FatalErr  error // the error that ended a fatal run (nil otherwise)
	SetupDied bool  // the fatal error struck during the control plane

	// Fault-containment bookkeeping (RecoverDrop runs; zero under abort).
	Contained     int    // fatal errors contained as packet drops
	RestoredPages uint64 // checkpoint pages rolled back across all drops

	// State-integrity bookkeeping (zero for stateless apps and while the
	// machinery is dormant). Detected counts checksum mismatches caught
	// on lookup or scrub; Diverged and Undetected come from the
	// end-of-run audit against the golden shadow — Undetected is the
	// silent channel, records differing from the shadow whose stored
	// checksum nevertheless verifies (a checksum collision).
	StateRecords    int
	StateDetected   uint64
	StateEvictions  uint64
	StateRebuilds   uint64
	StateScrubs     uint64 // scrub passes completed
	StateDiverged   int
	StateUndetected int

	// Recovery-ladder bookkeeping (zero while the ladder is dormant).
	LinesDisabled    int       // L1D frames dead at run end
	DisabledFrac     float64   // fraction of L1D capacity dead at run end
	StrikeHist       [8]uint64 // frames bucketed by cumulative strikes (7 = 7+)
	BurstEpisodes    uint64    // bad-state episodes of the burst regime
	PermanentHits    uint64    // stuck-at faults below the critical cycle time
	IntermittentHits uint64    // stuck-at faults inside the intermittent band
	SpatialBackoffs  int       // slow-downs forced by spatial evidence

	Report metrics.Report

	// Dynamic-scheme bookkeeping (nil for static runs).
	LevelPackets []uint64
	Switches     int
	Timeline     []FreqEvent
}

// FreqEvent records one frequency change of a dynamic run.
type FreqEvent struct {
	Packet    int     // packet index at which the change took effect
	CycleTime float64 // the new relative cycle time
}

// Fallibility returns the fallibility factor of the clumsy run.
func (r *Result) Fallibility() float64 { return r.Report.Fallibility() }

// FatalProbability returns the implied per-packet fatal error probability.
func (r *Result) FatalProbability() float64 { return r.Report.FatalProbability() }

// EDF returns the energy^k·delay^m·fallibility^n product of the clumsy run
// under the given exponents.
func (r *Result) EDF(e metrics.EDFExponents) float64 {
	return e.EDF(r.Energy.Total(), r.Delay, r.Fallibility())
}

// GoldenEDF returns the product for the golden reference (fallibility 1).
func (r *Result) GoldenEDF(e metrics.EDFExponents) float64 {
	return e.EDF(r.GoldenEnergy.Total(), r.GoldenDelay, 1)
}

// Run executes the golden and the clumsy run for the configuration and
// compares them. The trace is generated from the application's workload
// definition; use RunWithTrace to replay a stored trace.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	app, err := apps.New(cfg.App)
	if err != nil {
		return nil, err
	}
	trace, err := packet.Generate(app.TraceConfig(cfg.Packets, cfg.Seed))
	if err != nil {
		return nil, err
	}
	if cfg.Workload != nil {
		trace = cfg.Workload.Apply(trace, cfg.Seed)
	}
	return RunWithTrace(cfg, trace)
}

// RunWithTrace executes the golden and the clumsy run over an explicit
// packet trace (e.g. one replayed from a file written by
// packet.Trace.Serialize) and compares them. Config.Packets is ignored;
// the trace defines the workload length.
func RunWithTrace(cfg Config, trace *packet.Trace) (*Result, error) {
	cfg = cfg.withDefaults()
	if trace == nil || len(trace.Packets) == 0 {
		return nil, errors.New("clumsy: empty trace")
	}
	cfg.Packets = len(trace.Packets)

	res := &Result{Config: cfg}

	// Golden pass: injector disabled, full swing, no watchdog.
	golden, err := runOnce(cfg, trace, nil, 0)
	if err != nil {
		return nil, fmt.Errorf("clumsy: golden run failed: %w", err)
	}
	if golden.fatal != nil {
		return nil, fmt.Errorf("clumsy: golden run must not die: %w", golden.fatal)
	}
	res.GoldenCycles = golden.cycles
	res.GoldenInstrs = golden.instrs
	res.GoldenDelay = golden.delay
	res.GoldenEnergy = golden.energy
	res.GoldenL1DStats = golden.l1dStats

	budget := uint64(cfg.WatchdogFactor * float64(golden.maxPacketInstrs))
	faulty, err := runOnce(cfg, trace, &injection{scale: cfg.FaultScale, planes: cfg.Planes}, budget)
	if err != nil {
		return nil, fmt.Errorf("clumsy: faulty run failed: %w", err)
	}
	res.Cycles = faulty.cycles
	res.Breakdown = faulty.breakdown
	res.Instrs = faulty.instrs
	res.Delay = faulty.delay
	res.Energy = faulty.energy
	res.L1DStats = faulty.l1dStats
	res.Recovery = faulty.recovery
	res.FatalErr = faulty.fatal
	res.SetupDied = faulty.setupDied
	res.Contained = faulty.contained
	res.RestoredPages = faulty.restoredPages
	res.StateRecords = faulty.stateRecords
	res.StateDetected = faulty.stateDetected
	res.StateEvictions = faulty.stateEvictions
	res.StateRebuilds = faulty.stateRebuilds
	res.StateScrubs = faulty.stateScrubs
	res.StateDiverged = faulty.stateDiverged
	res.StateUndetected = faulty.stateUndetected
	res.LinesDisabled = faulty.linesDisabled
	res.DisabledFrac = faulty.disabledFrac
	res.StrikeHist = faulty.strikeHist
	res.BurstEpisodes = faulty.burstEpisodes
	res.PermanentHits = faulty.permanentHits
	res.IntermittentHits = faulty.intermittentHits
	res.SpatialBackoffs = faulty.spatialBackoffs
	res.LevelPackets = faulty.levelPackets
	res.Switches = faulty.switches
	res.Timeline = faulty.timeline

	res.Report = metrics.Compare(golden.rec, faulty.rec)
	if faulty.fatal != nil && res.Report.Processed == 0 {
		// A run that died before completing a single packet has no
		// meaningful per-packet delay; charge the golden delay and let the
		// maximal fallibility carry the penalty (the paper reports such
		// configurations as off-scale bars).
		res.Delay = golden.delay
	}
	return res, nil
}

// injection describes the fault process of a run; nil means fault-free.
type injection struct {
	scale  float64
	planes Planes
}

// onceResult is the outcome of a single execution.
type onceResult struct {
	rec             *metrics.Recorder
	cycles          float64
	breakdown       cache.CycleBreakdown
	instrs          uint64
	delay           float64
	maxPacketInstrs uint64
	energy          energy.Breakdown
	l1dStats        cache.Stats
	recovery        cache.RecoveryStats
	fatal           error
	setupDied       bool
	levelPackets    []uint64
	switches        int
	timeline        []FreqEvent

	// Fault-containment accounting. drops counts packet_drop events (one
	// per fatal error, whether aborted or contained); contained and
	// restoredPages cover only contained drops; watchdogKills counts
	// watchdog trips among the fatal errors.
	drops         int
	contained     int
	restoredPages uint64
	watchdogKills int

	// State-integrity accounting (zero for stateless apps).
	stateRecords    int
	stateDetected   uint64
	stateEvictions  uint64
	stateRebuilds   uint64
	stateScrubs     uint64
	stateDiverged   int
	stateUndetected int

	// Recovery-ladder accounting (zero while the ladder is dormant).
	linesDisabled    int
	disabledFrac     float64
	strikeHist       [8]uint64
	burstEpisodes    uint64
	permanentHits    uint64
	intermittentHits uint64
	spatialBackoffs  int
}

// appBlocks is the size of the synthetic code segment, comfortably above
// any application's basic-block count.
const appBlocks = 32

func runOnce(cfg Config, trace *packet.Trace, inj *injection, budget uint64) (*onceResult, error) {
	spaceBytes := cfg.SpaceBytes
	if spaceBytes == 0 {
		spaceBytes = autoSpaceBytes(trace)
	}
	space := simmem.NewSpace(spaceBytes)

	scale := 1.0
	if inj != nil {
		scale = inj.scale
	}
	// The fault process. Every regime forks the injector stream off the
	// seed with the same label, so the paper regime consumes the RNG
	// exactly as it always has — bit-for-bit reproduction of the existing
	// tables is part of the contract. The stuck-at map draws from its own
	// fork so seeding it never perturbs the transient stream.
	model := fault.NewModel(scale)
	seedRNG := fault.NewRNG(cfg.Seed)
	var proc fault.Process
	var burst *fault.Burst
	var stuck *fault.StuckAt
	switch cfg.Regime {
	case RegimeBurst:
		burst = fault.NewBurst(model, seedRNG.Fork(0xfa17), 32, fault.DefaultBurstParams())
		proc = burst
	case RegimePermanent:
		inner := fault.NewInjector(model, seedRNG.Fork(0xfa17), 32)
		l1dBytes := cfg.L1DSize
		if l1dBytes == 0 {
			l1dBytes = cache.DefaultL1D.SizeBytes
		}
		stuck = fault.NewStuckAt(inner, seedRNG.Fork(0x57ac), l1dBytes/4, fault.DefaultStuckAtParams())
		proc = stuck
	case RegimePaper:
		fallthrough
	default: // unknown regimes fall back to the paper process
		proc = fault.NewInjector(model, seedRNG.Fork(0xfa17), 32)
	}
	proc.SetEnabled(false)

	var hc cache.HierarchyConfig
	if cfg.L1DSize != 0 {
		hc.L1D = cache.DefaultL1D
		hc.L1D.SizeBytes = cfg.L1DSize
	}
	h, err := cache.NewHierarchyWith(space, proc, cfg.Detection, cfg.Strikes, hc)
	if err != nil {
		return nil, err
	}
	h.L1D.SetSubBlock(cfg.SubBlock)
	if inj != nil {
		// Arm the line-disable rung of the recovery ladder. It stays
		// dormant (the paper's semantics) unless explicitly configured or
		// running under the degrade policy.
		strikes, window := cfg.LineDisableStrikes, cfg.LineDisableWindow
		if strikes == 0 && cfg.Recovery == RecoverDegrade {
			strikes = DefaultLineDisableStrikes
		}
		if strikes > 0 {
			if window == 0 {
				window = DefaultLineDisableWindow
			}
			h.L1D.SetLineDisable(strikes, window)
		}
		if cfg.PreDisableFrac > 0 {
			h.L1D.ForceDisable(cfg.PreDisableFrac)
		}
	}
	eng, err := newEngine(h, appBlocks)
	if err != nil {
		return nil, err
	}

	// Telemetry observes the faulty run only; the golden reference pass
	// stays silent so the counters and trace describe the clumsy
	// execution. rt is nil when tracing is off — the emit calls below all
	// vanish behind one branch.
	tel := cfg.Telemetry
	if inj == nil {
		tel = nil
	}
	var rt *telemetry.RunTrace
	if tel != nil {
		rt = tel.StartRun(eng.totalCycles)
		h.L1D.SetTelemetry(rt)
		rt.RunStart(cfg.App, cfg.Packets, cfg.Seed, cfg.CycleTime, cfg.Dynamic,
			cfg.Detection.String(), cfg.Strikes, cfg.FaultScale)
		if burst != nil {
			b, t := burst, rt
			b.OnTransition = func(bad bool) {
				if bad {
					t.BurstEnter(b.Episodes)
				} else {
					t.BurstExit(b.Episodes)
				}
			}
		}
	}

	var ctrl *freqctl.Controller
	if inj != nil {
		if cfg.Dynamic {
			epoch := cfg.EpochPackets
			if epoch == 0 {
				epoch = freqctl.DefaultEpochPackets
			}
			x1, x2 := cfg.X1, cfg.X2
			if x1 == 0 {
				x1 = freqctl.DefaultX1
			}
			if x2 == 0 {
				x2 = freqctl.DefaultX2
			}
			ctrl, err = freqctl.NewWith(freqctl.DefaultLevels(), epoch, x1, x2, freqctl.DefaultSwitchPenalty)
			if err != nil {
				return nil, err
			}
			if tel != nil {
				wireFreqTelemetry(ctrl, tel.Registry)
			}
			if cfg.MinDwellEpochs > 0 {
				ctrl.SetMinDwell(cfg.MinDwellEpochs)
			}
			if cfg.Recovery == RecoverDegrade {
				// Top rung of the ladder: the controller sees spatial
				// evidence and backs off when faults spread across lines
				// or eat capacity faster than line disable can contain.
				ctrl.SetSpatialPolicy(DefaultSpatialLines, DefaultSpatialDisabledFrac)
				ctrl.SpatialEvidence = h.L1D.TakeEpochEvidence
			}
			h.L1D.SetCycleTime(ctrl.CycleTime())
		} else {
			h.L1D.SetCycleTime(cfg.CycleTime)
		}
	}

	app, err := apps.New(cfg.App)
	if err != nil {
		return nil, err
	}
	rec := metrics.NewRecorder()
	ctx := &apps.Context{Space: space, Mem: dataMemory{eng}, Rec: rec, Exec: eng}

	out := &onceResult{rec: rec}

	// Control plane. A fatal error here always aborts, whatever the
	// recovery policy: the checkpoint that drop-and-continue restores from
	// is only taken once Setup has produced a state worth preserving (a
	// real router would rebuild its tables, not roll them back).
	if inj != nil && inj.planes&PlaneControl != 0 {
		proc.SetEnabled(true)
	}
	if err := runSetup(app, ctx, trace); err != nil {
		if !isFatal(err) {
			return nil, err
		}
		out.fatal = err
		out.setupDied = true
		out.drops++
		if errors.Is(err, ErrWatchdog) {
			out.watchdogKills++
		}
		rt.PacketDrop(-1, dropReason(err)) // died during the control plane
		captureLadder(out, h, burst, stuck, ctrl)
		finish(out, eng, h, cfg, ctrl, 0, 0)
		finishTelemetry(tel, rt, out, eng, h, ctrl, 0)
		return out, nil
	}
	proc.SetEnabled(false)
	rec.BeginPackets()
	setupCycles := eng.totalCycles()

	// State-integrity machinery: if Setup registered a flow-state table,
	// install the corruption ladder around it. The guard exists in both
	// the golden and the faulty pass — verified lookups and scrub walks
	// must charge the same instruction stream in both, or the golden
	// reference would stop being a reference — but the ladder only ever
	// fires where faults exist.
	var guard *stateGuard
	if sa, ok := app.(apps.StatefulApp); ok && sa.StateTable() != nil {
		guard = newStateGuard(sa.StateTable(), h, rt, eng, cfg)
	}

	// Checkpoint the post-setup state before the injector is re-enabled.
	// The restore point is the complete architectural memory state — the
	// backing space (dirty-page granular) plus a deep copy of every cache
	// level — so a rolled-back execution continues bit-exactly as if the
	// failed packet had never run: same values, same hits and misses, same
	// write-back order. Neither the checkpoint nor the per-packet commits
	// touch the simulated machine, which keeps drop-policy runs without
	// fatal errors identical to abort-policy runs.
	var ckpt *simmem.Checkpoint
	var cacheState *cache.Snapshot
	if inj != nil && cfg.Recovery != RecoverAbort {
		ckpt = space.NewCheckpoint()
		defer ckpt.Release()
		cacheState = h.Snapshot(nil)
	}

	// Data plane.
	if inj != nil && inj.planes&PlaneData != 0 {
		proc.SetEnabled(true)
	}
	eng.budget = budget
	parityMark := uint64(0)
	processed := 0
	var histInstrs, histCycles *telemetry.Histogram
	prevCycles := 0.0
	if tel != nil {
		histInstrs = tel.Registry.Histogram(telemetry.HistPacketInstructions)
		histCycles = tel.Registry.Histogram(telemetry.HistPacketCycles)
		prevCycles = eng.totalCycles()
	}
	for i := range trace.Packets {
		p := &trace.Packets[i]
		buf, err := dmaPacket(h, p)
		if err != nil {
			return nil, err
		}
		eng.beginPacket()
		if guard != nil {
			guard.packet = i
		}
		if err := processPacket(app, ctx, p, buf); err != nil {
			if errors.Is(err, ErrStateCorrupt) {
				// The recovery ladder is exhausted: flow state has
				// diverged beyond what eviction and shadow rebuild can
				// repair. This outcome is terminal under every policy —
				// containment can drop a packet, but it cannot un-lose
				// the table.
				out.drops++
				rt.PacketDrop(i, dropReason(err))
				out.fatal = err
				break
			}
			if !isFatal(err) {
				return nil, err
			}
			// The execution is stuck or trapped; the processor spins for
			// the remainder of the watchdog budget before the packet is
			// declared dead, and those cycles are real (Section 4.1: the
			// reported figures are based on the packets processed until
			// the fatal error, over the cycles actually burned).
			if budget > 0 {
				eng.burnWatchdog(budget)
			}
			out.drops++
			if errors.Is(err, ErrWatchdog) {
				out.watchdogKills++
			}
			rt.PacketDrop(i, dropReason(err))
			if ckpt == nil {
				out.fatal = err
				break
			}
			// Contain the fault: drop the packet and roll the whole
			// memory state — backing space and cache contents — back to
			// the last packet boundary. Execution resumes with the next
			// packet on exactly the machine state the failed packet
			// started from; only its burned cycles remain.
			pages := ckpt.Restore()
			h.RestoreSnapshot(cacheState)
			if guard != nil {
				guard.st.RestoreShadow()
			}
			out.contained++
			out.restoredPages += uint64(pages)
			rec.DropPacket()
			rt.StateRestore(i, pages, dropReason(err))
			if sr, ok := app.(apps.ScratchResetter); ok {
				sr.ResetScratch()
			}
			if histInstrs != nil {
				prevCycles = eng.totalCycles()
			}
			if cfg.MaxDropRate > 0 {
				if rate := float64(out.contained) / float64(i+1); rate > cfg.MaxDropRate {
					out.fatal = fmt.Errorf("%w: %.4f > %.4f after packet %d",
						ErrDropRateExceeded, rate, cfg.MaxDropRate, i)
					break
				}
			}
			continue
		}
		rec.EndPacket()
		processed++
		if n := eng.packetInstrs(); n > out.maxPacketInstrs {
			out.maxPacketInstrs = n
		}
		if histInstrs != nil {
			histInstrs.Observe(eng.packetInstrs())
			now := eng.totalCycles()
			histCycles.Observe(uint64(now - prevCycles))
			prevCycles = now
		}
		if guard != nil && guard.scrubDue(processed) {
			// Periodic integrity scrub, before the boundary commit so any
			// repairs fold into the next restore point. A scrub that
			// exhausts the ladder ends the run like an in-packet
			// exhaustion would.
			if err := guard.scrubPass(ctx.Mem, i); err != nil {
				if !errors.Is(err, ErrStateCorrupt) && !isFatal(err) {
					return nil, err
				}
				out.fatal = err
				break
			}
			if histInstrs != nil {
				prevCycles = eng.totalCycles() // scrub cycles are not packet cycles
			}
		}
		if ckpt != nil {
			// Advance the restore point to this packet boundary.
			ckpt.Commit()
			cacheState = h.Snapshot(cacheState)
		}
		if guard != nil {
			guard.st.CommitShadow()
		}
		if ctrl != nil {
			newErrors := h.L1D.Recovery.ParityErrors - parityMark
			parityMark = h.L1D.Recovery.ParityErrors
			if dec, changed := ctrl.PacketDone(newErrors); changed {
				h.L1D.SetCycleTime(ctrl.CycleTime())
				out.timeline = append(out.timeline, FreqEvent{Packet: i + 1, CycleTime: ctrl.CycleTime()})
				rt.FreqTransition(i+1, dec.String(), ctrl.CycleTime())
			}
		}
	}
	captureLadder(out, h, burst, stuck, ctrl)
	finish(out, eng, h, cfg, ctrl, setupCycles, processed)
	if guard != nil {
		guard.capture(out)
		if inj != nil {
			// End-of-run divergence audit: read the table as the machine
			// sees it (through the cache, injector off so the audit itself
			// is clean) and compare against the golden shadow. Runs after
			// finish so the measured stats exclude audit accesses.
			proc.SetEnabled(false)
			if err := guard.audit(out); err != nil {
				return nil, err
			}
		}
	}
	finishTelemetry(tel, rt, out, eng, h, ctrl, processed)
	return out, nil
}

// captureLadder folds the recovery-ladder state of the run — disabled
// capacity, strike histogram, and the regime- and controller-specific
// counters — into the result. Every field is zero while the ladder and
// the new regimes are dormant, so paper-fidelity results are unchanged.
func captureLadder(out *onceResult, h *cache.Hierarchy, burst *fault.Burst, stuck *fault.StuckAt, ctrl *freqctl.Controller) {
	out.linesDisabled = h.L1D.DisabledLines()
	out.disabledFrac = h.L1D.DisabledFraction()
	out.strikeHist = h.L1D.StrikeHistogram()
	if burst != nil {
		out.burstEpisodes = burst.Episodes
	}
	if stuck != nil {
		out.permanentHits = stuck.PermanentHits
		out.intermittentHits = stuck.IntermittentHits
	}
	if ctrl != nil {
		out.spatialBackoffs = ctrl.SpatialBackoffs
	}
}

// runSetup executes the application's control plane with panic isolation:
// a Go panic raised on corrupted state is converted into a fatal
// application error instead of unwinding the whole process.
func runSetup(app apps.App, ctx *apps.Context, trace *packet.Trace) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w (setup): %v", ErrAppPanic, r)
		}
	}()
	return app.Setup(ctx, trace)
}

// processPacket executes one packet with panic isolation. An application
// that reads fault-corrupted simulated memory can derive an impossible
// value and panic in host code (slice bounds, division by zero); the
// recover here turns that into a fatal error the packet loop can contain
// or abort on, exactly like a watchdog trip.
//
//lint:hot-path
func processPacket(app apps.App, ctx *apps.Context, p *packet.Packet, buf simmem.Addr) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrAppPanic, r) //lint:alloc-ok app-panic diagnostic; a packet that completes never reaches it
		}
	}()
	return app.Process(ctx, p, buf)
}

// finish folds the accumulated statistics into the result.
//
//lint:cycle-accounting
func finish(out *onceResult, eng *engine, h *cache.Hierarchy, cfg Config, ctrl *freqctl.Controller, setupCycles float64, processed int) {
	out.cycles = eng.totalCycles()
	// Fold the per-component attribution: the L1D accumulated its own
	// data-side split (array / L2 / memory / recovery stalls); the core,
	// instruction fetch, watchdog burn, and switch penalty join it here.
	// Every term below is a disjoint share of out.cycles, so the buckets
	// sum to the total exactly (see cache.CycleBreakdown).
	bd := h.L1D.Breakdown
	bd.Compute = eng.core - eng.burned
	bd.Recovery += eng.burned
	bd.L1I = h.L1I.Cycles
	if ctrl != nil {
		out.cycles += ctrl.PenaltyCycles
		bd.FreqPenalty = ctrl.PenaltyCycles
		out.levelPackets = ctrl.LevelPackets
		out.switches = ctrl.Switches
	}
	out.breakdown = bd
	out.instrs = eng.instrs
	if processed > 0 {
		out.delay = (out.cycles - setupCycles) / float64(processed)
	} else {
		out.delay = out.cycles // a run that processed nothing: all cost, no packets
	}
	out.l1dStats = h.L1D.Stats
	out.recovery = h.L1D.Recovery

	params := energy.ParamsForL1D(cfg.L1DSize)
	out.energy = params.Compute(energy.Usage{
		Cycles:        out.cycles,
		L1DReadSwing:  h.L1D.Energy.ReadSwing,
		L1DWriteSwing: h.L1D.Energy.WriteSwing,
		ParityOn:      cfg.Detection == cache.DetectionParity,
		ECCOn:         cfg.Detection == cache.DetectionECC,
		L1IReads:      h.L1I.Stats.Reads,
		L2Accesses:    h.L2.Stats.Accesses(),
		MemAccesses:   h.Mem.Stats.Accesses(),
	})
}

// isFatal reports whether err is an application-level fatal error (a trap
// on a corrupted address, a traversal cycle, a watchdog trip, or a
// contained application panic) rather than a simulator bug.
func isFatal(err error) bool {
	var ae *simmem.AccessError
	return errors.As(err, &ae) || errors.Is(err, ErrWatchdog) ||
		errors.Is(err, radix.ErrLoop) || errors.Is(err, ErrAppPanic)
}

// dmaPacket places one packet (header + payload) into fresh, line-aligned
// simulated memory, as a NIC's DMA engine would: directly into the backing
// store, invalidating any stale cached copies of the range (a wild read
// through a corrupted pointer may have cached lines of the buffer region
// before the packet arrived).
//
//lint:hot-path
func dmaPacket(h *cache.Hierarchy, p *packet.Packet) (simmem.Addr, error) {
	if p.Raw != nil {
		// Malformed wire image: DMA exactly the bytes the NIC received,
		// however few. The buffer keeps the canonical minimum footprint
		// so layouts stay stable.
		size := (len(p.Raw) + 31) &^ 31
		if size == 0 {
			size = 32
		}
		buf, err := h.Space.Alloc(size, 32) //lint:alloc-ok Alloc allocates only on its out-of-arena error path
		if err != nil {
			return 0, err
		}
		if len(p.Raw) > 0 {
			if err := h.DMA(buf, p.Raw); err != nil { //lint:alloc-ok DMA allocates only its fault-diagnostic AccessError
				return 0, err
			}
		}
		return buf, nil
	}
	size := (packet.HeaderLen + len(p.Payload) + 31) &^ 31
	buf, err := h.Space.Alloc(size, 32) //lint:alloc-ok Alloc allocates only on its out-of-arena error path
	if err != nil {
		return 0, err
	}
	hdr := p.Header()
	if err := h.DMA(buf, hdr[:]); err != nil { //lint:alloc-ok DMA allocates only its fault-diagnostic AccessError
		return 0, err
	}
	if len(p.Payload) > 0 {
		if err := h.DMA(buf+packet.HeaderLen, p.Payload); err != nil { //lint:alloc-ok DMA allocates only its fault-diagnostic AccessError
			return 0, err
		}
	}
	return buf, nil
}

// autoSpaceBytes sizes the simulated memory for the trace: tables plus all
// packet buffers plus slack.
func autoSpaceBytes(trace *packet.Trace) int {
	total := 8 << 20 // tables, code, queues
	for i := range trace.Packets {
		s := (trace.Packets[i].WireLen() + 31) &^ 31
		if s < 32 {
			s = 32
		}
		total += s
	}
	// Round to the next MiB for stable layouts across nearby trace sizes.
	return (total + 1<<20) &^ (1<<20 - 1)
}
