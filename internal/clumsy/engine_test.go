package clumsy

import (
	"errors"
	"testing"

	"clumsy/internal/cache"
	"clumsy/internal/fault"
	"clumsy/internal/simmem"
)

func newTestEngine(t *testing.T) (*engine, *cache.Hierarchy) {
	t.Helper()
	space := simmem.NewSpace(1 << 20)
	m := fault.NewModel(1e-9)
	inj := fault.NewInjector(m, fault.NewRNG(1), 32)
	h, err := cache.NewHierarchy(space, inj, cache.DetectionNone, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := newEngine(h, 8)
	if err != nil {
		t.Fatal(err)
	}
	return eng, h
}

func TestEngineStepAccounting(t *testing.T) {
	eng, _ := newTestEngine(t)
	if err := eng.Step(0, 10); err != nil {
		t.Fatal(err)
	}
	if eng.instrs != 10 || eng.core != 10 {
		t.Fatalf("instrs %d core %v", eng.instrs, eng.core)
	}
	if err := eng.Step(1, 5); err != nil {
		t.Fatal(err)
	}
	if eng.instrs != 15 {
		t.Fatalf("instrs = %d", eng.instrs)
	}
}

func TestEngineNegativeStepPanics(t *testing.T) {
	eng, _ := newTestEngine(t)
	defer func() {
		if recover() == nil {
			t.Fatal("negative step should panic")
		}
	}()
	_ = eng.Step(0, -1)
}

func TestEngineInstructionFetches(t *testing.T) {
	eng, h := newTestEngine(t)
	// Switching blocks fetches each block's line once; staying within a
	// block fetches once per 8 instructions.
	if err := eng.Step(0, 1); err != nil {
		t.Fatal(err)
	}
	first := h.L1I.Stats.Reads
	if first == 0 {
		t.Fatal("block entry should fetch")
	}
	if err := eng.Step(0, 16); err != nil { // two more fetch groups
		t.Fatal(err)
	}
	if h.L1I.Stats.Reads < first+2 {
		t.Fatalf("fetches = %d, want >= %d", h.L1I.Stats.Reads, first+2)
	}
	// Same-line fetches hit after the first miss.
	if h.L1I.Stats.ReadMisses != 1 {
		t.Fatalf("I-misses = %d, want 1", h.L1I.Stats.ReadMisses)
	}
}

func TestEngineWatchdog(t *testing.T) {
	eng, _ := newTestEngine(t)
	eng.budget = 100
	eng.beginPacket()
	if err := eng.Step(0, 99); err != nil {
		t.Fatal(err)
	}
	err := eng.Step(0, 50)
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want watchdog", err)
	}
	// A new packet resets the window.
	eng.beginPacket()
	if err := eng.Step(0, 50); err != nil {
		t.Fatalf("fresh packet should have budget: %v", err)
	}
	if eng.packetInstrs() != 50 {
		t.Fatalf("packetInstrs = %d", eng.packetInstrs())
	}
}

func TestEngineUnlimitedBudget(t *testing.T) {
	eng, _ := newTestEngine(t)
	eng.budget = 0
	eng.beginPacket()
	if err := eng.Step(0, 1<<20); err != nil {
		t.Fatalf("unlimited budget tripped: %v", err)
	}
}

func TestDataMemoryCountsInstructions(t *testing.T) {
	eng, h := newTestEngine(t)
	mem := dataMemory{eng}
	a := h.Space.MustAlloc(64, 4)
	if err := mem.Store32(a, 7); err != nil {
		t.Fatal(err)
	}
	v, err := mem.Load32(a)
	if err != nil || v != 7 {
		t.Fatalf("Load32 = %v, %v", v, err)
	}
	if eng.instrs != 2 {
		t.Fatalf("memory ops should count as instructions: %d", eng.instrs)
	}
	// Sub-word and halfword paths.
	if err := mem.Store8(a, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Load8(a); err != nil {
		t.Fatal(err)
	}
	if err := mem.Store16(a, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Load16(a); err != nil {
		t.Fatal(err)
	}
	if eng.instrs != 6 {
		t.Fatalf("instrs = %d, want 6", eng.instrs)
	}
}

func TestDataMemoryWatchdog(t *testing.T) {
	eng, h := newTestEngine(t)
	mem := dataMemory{eng}
	a := h.Space.MustAlloc(64, 4)
	eng.budget = 2
	eng.beginPacket()
	_ = mem.Store32(a, 1)
	_ = mem.Store32(a, 2)
	if err := mem.Store32(a, 3); !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want watchdog on memory op", err)
	}
}

func TestTotalCyclesIncludesStalls(t *testing.T) {
	eng, h := newTestEngine(t)
	mem := dataMemory{eng}
	a := h.Space.MustAlloc(64, 4)
	if _, err := mem.Load32(a); err != nil { // cold miss: L2 + memory stalls
		t.Fatal(err)
	}
	if eng.totalCycles() <= eng.core {
		t.Fatal("total cycles should include memory stalls")
	}
}

func TestPlanesString(t *testing.T) {
	cases := map[Planes]string{
		PlaneControl: "control plane",
		PlaneData:    "data plane",
		PlaneBoth:    "both planes",
		PlaneNone:    "no injection",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}
