package clumsy

import (
	"errors"
	"sync/atomic"

	"clumsy/internal/cache"
	"clumsy/internal/freqctl"
	"clumsy/internal/radix"
	"clumsy/internal/simmem"
	"clumsy/internal/telemetry"
)

// defaultTelemetry is the process-wide hub picked up by every Config that
// does not carry its own. The CLI installs one here so that experiment
// grids — which build Configs deep inside internal/experiment — are traced
// and counted without any plumbing changes.
var defaultTelemetry atomic.Pointer[telemetry.Telemetry]

// SetDefaultTelemetry installs the hub used by Configs with a nil
// Telemetry field. Pass nil to disable.
func SetDefaultTelemetry(t *telemetry.Telemetry) { defaultTelemetry.Store(t) }

// DefaultTelemetry returns the process-wide hub, or nil.
func DefaultTelemetry() *telemetry.Telemetry { return defaultTelemetry.Load() }

// wireFreqTelemetry hooks the controller's epoch decisions into the
// counter registry.
func wireFreqTelemetry(ctrl *freqctl.Controller, reg *telemetry.Registry) {
	epochs := reg.Counter(telemetry.CtrFreqEpochs)
	up := reg.Counter(telemetry.CtrFreqUpTransitions)
	down := reg.Counter(telemetry.CtrFreqDownTransitions)
	ctrl.OnDecision = func(d freqctl.Decision, changed bool, _ float64) {
		epochs.Inc()
		if !changed {
			return
		}
		if d == freqctl.SpeedUp {
			up.Inc()
		} else {
			down.Inc()
		}
	}
}

// finishTelemetry flushes one faulty run's accumulated statistics into the
// registry and closes the run trace. The simulator's hot paths keep their
// plain struct counters; this once-per-run flush is what makes the
// telemetry layer free while a run executes.
func finishTelemetry(tel *telemetry.Telemetry, rt *telemetry.RunTrace, out *onceResult, eng *engine, h *cache.Hierarchy, ctrl *freqctl.Controller, processed int) {
	if tel == nil {
		return
	}
	reg := tel.Registry
	reg.Counter(telemetry.CtrRunCount).Inc()
	if out.fatal != nil {
		reg.Counter(telemetry.CtrRunFatal).Inc()
	}
	// Drops are counted from the actual per-packet drop events, not
	// inferred as trace-length minus processed: under drop-and-continue a
	// run completes the trace yet still dropped packets, and under abort
	// the packets after the fatal one were never attempted, only lost.
	if out.drops > 0 {
		reg.Counter(telemetry.CtrRunPacketsDropped).Add(uint64(out.drops))
	}
	if out.watchdogKills > 0 {
		reg.Counter(telemetry.CtrWatchdogKills).Add(uint64(out.watchdogKills))
	}
	if out.contained > 0 {
		reg.Counter(telemetry.CtrRecoveryContained).Add(uint64(out.contained))
		reg.Counter(telemetry.CtrRecoveryRestoredPages).Add(out.restoredPages)
	}
	reg.Counter(telemetry.CtrRunPacketsProcessed).Add(uint64(processed))
	reg.Counter(telemetry.CtrRunInstructions).Add(eng.instrs)
	reg.Counter(telemetry.CtrRunCycles).Add(uint64(out.cycles))

	// Per-component cycle attribution: the same total, split by where the
	// cycles went. Counters are integral, so each bucket is truncated
	// independently; consumers wanting the exact partition read the
	// Breakdown fields off the Result.
	bd := out.breakdown
	reg.Counter(telemetry.CtrCyclesCompute).Add(uint64(bd.Compute))
	reg.Counter(telemetry.CtrCyclesL1DStall).Add(uint64(bd.L1D))
	reg.Counter(telemetry.CtrCyclesL1IStall).Add(uint64(bd.L1I))
	reg.Counter(telemetry.CtrCyclesL2Stall).Add(uint64(bd.L2))
	reg.Counter(telemetry.CtrCyclesMemStall).Add(uint64(bd.Mem))
	reg.Counter(telemetry.CtrCyclesRecovery).Add(uint64(bd.Recovery))
	reg.Counter(telemetry.CtrCyclesFreqPenalty).Add(uint64(bd.FreqPenalty))

	addCacheStats(reg, "l1d", h.L1D.Stats)
	addCacheStats(reg, "l1i", h.L1I.Stats)
	addCacheStats(reg, "l2", h.L2.Stats)
	addCacheStats(reg, "mem", h.Mem.Stats)

	rec := h.L1D.Recovery
	reg.Counter(telemetry.CtrFaultReadInjected).Add(rec.FaultsOnRead)
	reg.Counter(telemetry.CtrFaultWriteInjected).Add(rec.FaultsOnWrite)
	reg.Counter(telemetry.CtrRecoveryDetected).Add(rec.ParityErrors)
	reg.Counter(telemetry.CtrRecoveryRetries).Add(rec.Retries)
	reg.Counter(telemetry.CtrRecoveryRecoveries).Add(rec.Recoveries)
	reg.Counter(telemetry.CtrRecoveryECCCorrected).Add(rec.Corrected)
	reg.Counter(telemetry.CtrRecoveryECCMiscorrected).Add(rec.Miscorrected)

	// Recovery-ladder and correlated-regime counters; all zero (and the
	// flushes skipped) while the ladder and the new regimes are dormant.
	if rec.LineDisables > 0 {
		reg.Counter(telemetry.CtrRecoveryLineDisabled).Add(rec.LineDisables)
	}
	if out.linesDisabled > 0 {
		reg.Counter(telemetry.CtrCacheL1DLinesDisabled).Add(uint64(out.linesDisabled))
	}
	if out.burstEpisodes > 0 {
		reg.Counter(telemetry.CtrFaultBurstEpisodes).Add(out.burstEpisodes)
	}
	if out.permanentHits > 0 {
		reg.Counter(telemetry.CtrFaultPermanentHits).Add(out.permanentHits)
	}
	if esc := rec.LineDisables + uint64(out.spatialBackoffs); esc > 0 {
		reg.Counter(telemetry.CtrRecoveryEscalations).Add(esc)
	}

	if ctrl != nil {
		reg.Counter(telemetry.CtrFreqSwitches).Add(uint64(ctrl.Switches))
		reg.Counter(telemetry.CtrFreqPenaltyCycles).Add(uint64(ctrl.PenaltyCycles))
	}

	// Flow-state integrity counters; all zero for stateless apps.
	if out.stateDetected > 0 {
		reg.Counter(telemetry.CtrStateDetected).Add(out.stateDetected)
	}
	if out.stateEvictions > 0 {
		reg.Counter(telemetry.CtrStateEvictions).Add(out.stateEvictions)
	}
	if out.stateRebuilds > 0 {
		reg.Counter(telemetry.CtrStateRebuilds).Add(out.stateRebuilds)
	}
	if out.stateScrubs > 0 {
		reg.Counter(telemetry.CtrStateScrubs).Add(out.stateScrubs)
	}
	rt.RunEnd(processed, out.drops, eng.instrs, out.fatal != nil)
}

// addCacheStats folds one cache level's statistics into the registered
// per-level counter family. Hits per level are derivable as
// reads-read_misses / writes-write_misses. The names are built through
// telemetry.CacheCounterName — the one deliberate dynamic family, carrying
// the telemname-dynamic escape below; the expanded names are all listed in
// the registry table.
func addCacheStats(reg *telemetry.Registry, level string, s cache.Stats) {
	for _, ev := range []struct {
		suffix string
		v      uint64
	}{
		{"reads", s.Reads},
		{"writes", s.Writes},
		{"read_misses", s.ReadMisses},
		{"write_misses", s.WriteMisses},
		{"writebacks", s.Writebacks},
		{"invalidations", s.Invalidations},
	} {
		reg.Counter(telemetry.CacheCounterName(level, ev.suffix)).Add(ev.v) //lint:telemname-dynamic
	}
}

// dropReason classifies the fatal error that killed a run for the
// packet_drop trace record.
func dropReason(err error) string {
	var ae *simmem.AccessError
	switch {
	case errors.Is(err, ErrStateCorrupt):
		return "state_corrupt"
	case errors.Is(err, ErrWatchdog):
		return "watchdog"
	case errors.Is(err, radix.ErrLoop):
		return "loop"
	case errors.Is(err, ErrAppPanic):
		return "panic"
	case errors.As(err, &ae):
		return "memory_trap"
	default:
		return "fatal"
	}
}
