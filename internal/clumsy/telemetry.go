package clumsy

import (
	"errors"
	"sync/atomic"

	"clumsy/internal/cache"
	"clumsy/internal/freqctl"
	"clumsy/internal/radix"
	"clumsy/internal/simmem"
	"clumsy/internal/telemetry"
)

// defaultTelemetry is the process-wide hub picked up by every Config that
// does not carry its own. The CLI installs one here so that experiment
// grids — which build Configs deep inside internal/experiment — are traced
// and counted without any plumbing changes.
var defaultTelemetry atomic.Pointer[telemetry.Telemetry]

// SetDefaultTelemetry installs the hub used by Configs with a nil
// Telemetry field. Pass nil to disable.
func SetDefaultTelemetry(t *telemetry.Telemetry) { defaultTelemetry.Store(t) }

// DefaultTelemetry returns the process-wide hub, or nil.
func DefaultTelemetry() *telemetry.Telemetry { return defaultTelemetry.Load() }

// wireFreqTelemetry hooks the controller's epoch decisions into the
// counter registry.
func wireFreqTelemetry(ctrl *freqctl.Controller, reg *telemetry.Registry) {
	epochs := reg.Counter("freq.epochs")
	up := reg.Counter("freq.up_transitions")
	down := reg.Counter("freq.down_transitions")
	ctrl.OnDecision = func(d freqctl.Decision, changed bool, _ float64) {
		epochs.Inc()
		if !changed {
			return
		}
		if d == freqctl.SpeedUp {
			up.Inc()
		} else {
			down.Inc()
		}
	}
}

// finishTelemetry flushes one faulty run's accumulated statistics into the
// registry and closes the run trace. The simulator's hot paths keep their
// plain struct counters; this once-per-run flush is what makes the
// telemetry layer free while a run executes.
func finishTelemetry(tel *telemetry.Telemetry, rt *telemetry.RunTrace, out *onceResult, eng *engine, h *cache.Hierarchy, ctrl *freqctl.Controller, processed int) {
	if tel == nil {
		return
	}
	reg := tel.Registry
	reg.Counter("run.count").Inc()
	if out.fatal != nil {
		reg.Counter("run.fatal").Inc()
	}
	// Drops are counted from the actual per-packet drop events, not
	// inferred as trace-length minus processed: under drop-and-continue a
	// run completes the trace yet still dropped packets, and under abort
	// the packets after the fatal one were never attempted, only lost.
	if out.drops > 0 {
		reg.Counter("run.packets_dropped").Add(uint64(out.drops))
	}
	if out.watchdogKills > 0 {
		reg.Counter("watchdog.kills").Add(uint64(out.watchdogKills))
	}
	if out.contained > 0 {
		reg.Counter("recovery.contained").Add(uint64(out.contained))
		reg.Counter("recovery.restored_pages").Add(out.restoredPages)
	}
	reg.Counter("run.packets_processed").Add(uint64(processed))
	reg.Counter("run.instructions").Add(eng.instrs)
	reg.Counter("run.cycles").Add(uint64(out.cycles))

	addCacheStats(reg, "cache.l1d", h.L1D.Stats)
	addCacheStats(reg, "cache.l1i", h.L1I.Stats)
	addCacheStats(reg, "cache.l2", h.L2.Stats)
	addCacheStats(reg, "cache.mem", h.Mem.Stats)

	rec := h.L1D.Recovery
	reg.Counter("fault.read_injected").Add(rec.FaultsOnRead)
	reg.Counter("fault.write_injected").Add(rec.FaultsOnWrite)
	reg.Counter("recovery.detected").Add(rec.ParityErrors)
	reg.Counter("recovery.retries").Add(rec.Retries)
	reg.Counter("recovery.recoveries").Add(rec.Recoveries)
	reg.Counter("recovery.ecc_corrected").Add(rec.Corrected)
	reg.Counter("recovery.ecc_miscorrected").Add(rec.Miscorrected)

	if ctrl != nil {
		reg.Counter("freq.switches").Add(uint64(ctrl.Switches))
		reg.Counter("freq.penalty_cycles").Add(uint64(ctrl.PenaltyCycles))
	}
	rt.RunEnd(processed, out.drops, eng.instrs, out.fatal != nil)
}

// addCacheStats folds one cache level's statistics into prefixed counters.
// Hits per level are derivable as reads-read_misses / writes-write_misses.
func addCacheStats(reg *telemetry.Registry, prefix string, s cache.Stats) {
	reg.Counter(prefix + ".reads").Add(s.Reads)
	reg.Counter(prefix + ".writes").Add(s.Writes)
	reg.Counter(prefix + ".read_misses").Add(s.ReadMisses)
	reg.Counter(prefix + ".write_misses").Add(s.WriteMisses)
	reg.Counter(prefix + ".writebacks").Add(s.Writebacks)
	reg.Counter(prefix + ".invalidations").Add(s.Invalidations)
}

// dropReason classifies the fatal error that killed a run for the
// packet_drop trace record.
func dropReason(err error) string {
	var ae *simmem.AccessError
	switch {
	case errors.Is(err, ErrWatchdog):
		return "watchdog"
	case errors.Is(err, radix.ErrLoop):
		return "loop"
	case errors.Is(err, ErrAppPanic):
		return "panic"
	case errors.As(err, &ae):
		return "memory_trap"
	default:
		return "fatal"
	}
}
