package clumsy

import (
	"math"
	"testing"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/telemetry"
)

// sameBits reports bit-exact float64 equality (0.0 vs -0.0 included).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// checkBreakdown asserts the attribution contract on one finished run: the
// seven buckets partition Result.Cycles bit-exactly (every per-event charge
// at the standard operating points is a dyadic rational well below 2^52, so
// the two independently-accumulated sums agree to the last bit, not just to
// a tolerance), and no bucket is negative.
func checkBreakdown(t *testing.T, res *Result) {
	t.Helper()
	bd := res.Breakdown
	if !sameBits(bd.Total(), res.Cycles) {
		t.Errorf("breakdown does not partition total cycles: sum %v != cycles %v (diff %g)\n%+v",
			bd.Total(), res.Cycles, bd.Total()-res.Cycles, bd)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"compute", bd.Compute}, {"l1d", bd.L1D}, {"l1i", bd.L1I},
		{"l2", bd.L2}, {"mem", bd.Mem}, {"recovery", bd.Recovery},
		{"freq_penalty", bd.FreqPenalty},
	} {
		if f.v < 0 {
			t.Errorf("negative %s bucket: %g", f.name, f.v)
		}
	}
	if res.Cycles > 0 && bd.Compute == 0 && !res.SetupDied {
		t.Error("zero compute bucket on a run that executed instructions")
	}
}

// TestBreakdownPartitionsCycles sweeps every application under every
// recovery policy and fault regime and checks the attribution invariant on
// each combination. This is the tentpole contract of the cycle-attribution
// work: the buckets are a partition of the total, not an estimate of it.
func TestBreakdownPartitionsCycles(t *testing.T) {
	policies := []struct {
		name string
		pol  RecoveryPolicy
	}{{"abort", RecoverAbort}, {"drop", RecoverDrop}, {"degrade", RecoverDegrade}}
	regimes := []struct {
		name string
		reg  FaultRegime
	}{{"paper", RegimePaper}, {"burst", RegimeBurst}, {"permanent", RegimePermanent}}
	for _, app := range apps.Names() {
		for _, pol := range policies {
			for _, reg := range regimes {
				t.Run(app+"/"+pol.name+"/"+reg.name, func(t *testing.T) {
					res, err := Run(Config{App: app, Packets: 60, Seed: 7,
						FaultScale: 2e3, CycleTime: 0.5,
						Detection: cache.DetectionParity, Strikes: 2,
						Recovery: pol.pol, Regime: reg.reg})
					if err != nil {
						t.Fatal(err)
					}
					checkBreakdown(t, res)
				})
			}
		}
	}
}

// TestBreakdownTargetedPaths drives the attribution through the corners the
// matrix above can miss: the dynamic frequency controller's switch penalty,
// silent corruption with watchdog kills, ECC correction, sub-block
// recovery, and the pre-disabled bypass path.
func TestBreakdownTargetedPaths(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		check func(t *testing.T, res *Result)
	}{
		{
			name: "dynamic-freq-penalty",
			cfg: Config{App: "crc", Packets: 300, Seed: 11, FaultScale: 1e3,
				Dynamic: true, Detection: cache.DetectionParity, Strikes: 2,
				Recovery: RecoverDrop},
			check: func(t *testing.T, res *Result) {
				if res.Switches > 0 && res.Breakdown.FreqPenalty == 0 {
					t.Errorf("%d operating-point switches but zero freq-penalty bucket", res.Switches)
				}
			},
		},
		{
			name: "watchdog-burn",
			cfg: Config{App: "route", Packets: 200, Seed: 3, FaultScale: 5e3,
				CycleTime: 0.25, Recovery: RecoverDrop, WatchdogFactor: 50},
			check: nil, // watchdog-specific assertions live in TestBreakdownWatchdogBurn
		},
		{
			name: "ecc",
			cfg: Config{App: "md5", Packets: 80, Seed: 5, FaultScale: 2e3,
				CycleTime: 0.5, Detection: cache.DetectionECC, Strikes: 2,
				Recovery: RecoverDrop},
			check: func(t *testing.T, res *Result) {},
		},
		{
			name: "subblock",
			cfg: Config{App: "url", Packets: 80, Seed: 5, FaultScale: 2e3,
				CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
				Recovery: RecoverDrop, SubBlock: true},
			check: func(t *testing.T, res *Result) {},
		},
		{
			name: "predisable-bypass",
			cfg: Config{App: "route", Packets: 150, Seed: 5, FaultScale: 2e3,
				CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
				Recovery: RecoverDegrade, Regime: RegimePermanent, PreDisableFrac: 0.5},
			check: func(t *testing.T, res *Result) {
				// Bypass accesses go straight to L2/memory: the degraded
				// steady state must show up as backend stall, not recovery.
				if res.Recovery.Bypasses > 0 && res.Breakdown.L2 == 0 {
					t.Error("bypass accesses but zero L2 bucket")
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Run(c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkBreakdown(t, res)
			if c.check != nil {
				c.check(t, res)
			}
		})
	}
}

// TestBreakdownWatchdogBurn pins the burn attribution at the engine level:
// the budget remainder a dying packet spins away goes to the recovery
// bucket (via engine.burned), while the instructions it actually executed
// stay in compute. The integration-level path (a trap death followed by
// burnWatchdog) uses the same two accumulators.
func TestBreakdownWatchdogBurn(t *testing.T) {
	eng, _ := newTestEngine(t)
	eng.beginPacket()
	eng.charge(10)
	// Dying at 10 of a 100-instruction budget spins the remaining 90 away:
	// the packet's core total reaches the budget, with only the executed 10
	// left in the compute share.
	eng.burnWatchdog(100)
	if eng.core != 100 {
		t.Errorf("core = %g, want 100 (10 executed + 90 burned)", eng.core)
	}
	if eng.burned != 90 {
		t.Errorf("burned = %g, want 90", eng.burned)
	}
	if compute := eng.core - eng.burned; compute != 10 {
		t.Errorf("compute share = %g, want 10", compute)
	}
	// A packet that exceeded its budget before dying has nothing left to
	// burn: its spent cycles are real compute.
	eng.beginPacket()
	eng.charge(60)
	eng.burnWatchdog(50)
	if eng.burned != 90 {
		t.Errorf("burnWatchdog past an exhausted budget changed burned to %g", eng.burned)
	}
	if eng.core != 160 {
		t.Errorf("core = %g, want 160", eng.core)
	}
}

// TestBreakdownTelemetryFlush verifies the per-run flush of the cycles.*
// counter family: each counter holds the truncated value of the matching
// Result breakdown bucket, on a run where recovery and stall buckets are
// all nonzero.
func TestBreakdownTelemetryFlush(t *testing.T) {
	tel := telemetry.New()
	res, err := Run(Config{App: "route", Packets: 150, Seed: 7, FaultScale: 5e3,
		CycleTime: 0.5, Detection: cache.DetectionParity, Strikes: 2,
		Recovery: RecoverDrop, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	checkBreakdown(t, res)
	if res.Breakdown.Recovery == 0 {
		t.Fatal("config produced no recovery cycles; flush check needs a faulty run")
	}
	for _, c := range []struct {
		name string
		want float64
	}{
		{telemetry.CtrCyclesCompute, res.Breakdown.Compute},
		{telemetry.CtrCyclesL1DStall, res.Breakdown.L1D},
		{telemetry.CtrCyclesL1IStall, res.Breakdown.L1I},
		{telemetry.CtrCyclesL2Stall, res.Breakdown.L2},
		{telemetry.CtrCyclesMemStall, res.Breakdown.Mem},
		{telemetry.CtrCyclesRecovery, res.Breakdown.Recovery},
		{telemetry.CtrCyclesFreqPenalty, res.Breakdown.FreqPenalty},
	} {
		if got := tel.Registry.Counter(c.name).Load(); got != uint64(c.want) {
			t.Errorf("counter %s = %d, want %d", c.name, got, uint64(c.want))
		}
	}
}

// TestBreakdownRecoveryAttribution pins that fault recovery actually lands
// in the recovery bucket: a faulty parity run must report recovery cycles,
// and a fault-free run of the same configuration must report none.
func TestBreakdownRecoveryAttribution(t *testing.T) {
	base := Config{App: "route", Packets: 150, Seed: 7, CycleTime: 0.5,
		Detection: cache.DetectionParity, Strikes: 2, Recovery: RecoverDrop}

	clean := base
	clean.FaultScale = 1e-12 // effectively fault-free
	cres, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	checkBreakdown(t, cres)
	if cres.Breakdown.Recovery != 0 {
		t.Errorf("fault-free run charged %g recovery cycles", cres.Breakdown.Recovery)
	}

	faulty := base
	faulty.FaultScale = 5e3
	fres, err := Run(faulty)
	if err != nil {
		t.Fatal(err)
	}
	checkBreakdown(t, fres)
	if fres.Recovery.Retries > 0 && fres.Breakdown.Recovery == 0 {
		t.Errorf("%d retries but zero recovery cycles", fres.Recovery.Retries)
	}
	if fres.Breakdown.Recovery >= fres.Cycles {
		t.Errorf("recovery bucket %g swallowed the whole run (%g cycles)",
			fres.Breakdown.Recovery, fres.Cycles)
	}
}
