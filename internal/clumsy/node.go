package clumsy

import (
	"errors"
	"fmt"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/fault"
	"clumsy/internal/freqctl"
	"clumsy/internal/metrics"
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// The streaming node API refactors the batch packet loop of runOnce into
// an open/process lifecycle, so a fleet simulator can interleave packets
// from many independent processors under one virtual clock. A Node is one
// clumsy processor: the real engine, cache hierarchy, fault process, and
// recovery ladder of a faulty run, kept alive between packets. The
// containment machinery is identical to the batch path — watchdog budget,
// checkpoint/restore at packet boundaries, the escalating ladder — and a
// node fed the whole trace in order reproduces the batch run's recovery
// behaviour.

// ErrNodeDead is returned by Node.Process once a fatal error has ended the
// node's service life (abort policy, or drop rate beyond MaxDropRate).
var ErrNodeDead = errors.New("clumsy: node is dead")

// Calibration carries the golden-run figures a node needs before serving:
// the watchdog instruction budget and the fault-free per-packet delay (the
// natural service-capacity estimate of a healthy node). It is a pure
// function of the application and trace — fault seed, scale, and regime do
// not enter — so one calibration is shared by every node of a fleet.
type Calibration struct {
	Budget uint64  // per-packet instruction budget (WatchdogFactor x worst golden packet)
	Delay  float64 // golden data-plane cycles per packet
}

// Calibrate executes the golden (fault-free, full-swing) pass over the
// trace and derives the calibration for nodes serving that workload.
func Calibrate(cfg Config, trace *packet.Trace) (Calibration, error) {
	cfg = cfg.withDefaults()
	if trace == nil || len(trace.Packets) == 0 {
		return Calibration{}, errors.New("clumsy: empty trace")
	}
	cfg.Packets = len(trace.Packets)
	golden, err := runOnce(cfg, trace, nil, 0)
	if err != nil {
		return Calibration{}, fmt.Errorf("clumsy: golden run failed: %w", err)
	}
	if golden.fatal != nil {
		return Calibration{}, fmt.Errorf("clumsy: golden run must not die: %w", golden.fatal)
	}
	return Calibration{
		Budget: uint64(cfg.WatchdogFactor * float64(golden.maxPacketInstrs)),
		Delay:  golden.delay,
	}, nil
}

// NodeOutcome is the result of processing one packet on a node.
type NodeOutcome struct {
	Cycles  float64 // simulated cycles this packet cost (service time)
	Dropped bool    // the packet was killed by a fatal error
	Fatal   bool    // the fatal error also ended the node's service life
	Reason  string  // drop reason ("" when the packet completed)
}

// NodeHealth is the cumulative health evidence of a node: the recovery
// ladder's outputs, exported for a fleet-level health state machine. All
// counters are cumulative since OpenNode; consumers track windows by
// differencing snapshots.
type NodeHealth struct {
	Attempted     int // packets offered to the node
	Processed     int // packets completed
	Contained     int // fatal errors contained as drops
	WatchdogKills int // watchdog trips among the fatal errors

	LinesDisabled   int     // L1D frames currently dead
	DisabledFrac    float64 // L1D capacity fraction currently dead
	SpatialBackoffs int     // slow-downs forced by spatial evidence
	CycleTime       float64 // current relative cycle time of the L1D
	Dead            bool    // the node has left service
}

// DropRate returns the contained fraction of attempted packets.
func (h NodeHealth) DropRate() float64 {
	if h.Attempted == 0 {
		return 0
	}
	return float64(h.Contained) / float64(h.Attempted)
}

// Node is one live clumsy processor serving a packet stream.
type Node struct {
	cfg   Config
	app   apps.App
	space *simmem.Space
	proc  fault.Process
	h     *cache.Hierarchy
	eng   *engine
	ctrl  *freqctl.Controller
	rec   *metrics.Recorder
	ctx   *apps.Context

	ckpt       *simmem.Checkpoint
	cacheState *cache.Snapshot
	guard      *stateGuard

	buf    simmem.Addr // reused DMA buffer (line-aligned)
	bufCap int

	prevCycles float64 // totalCycles at the last packet boundary
	parityMark uint64

	attempted     int
	processed     int
	contained     int
	watchdogKills int
	dead          bool
	fatal         error
}

// OpenNode builds one faulty processor for the workload: fault process per
// the configured regime (forked off the node's seed with the batch path's
// stream labels, so a node and a batch run with the same seed draw the
// same faults), hierarchy with the recovery ladder armed, engine, and —
// unless the policy is abort — a packet-boundary checkpoint. The control
// plane (Setup over the trace) runs here; a fatal error during Setup fails
// the open, exactly like the batch semantics. cal must come from Calibrate
// over the same trace.
func OpenNode(cfg Config, trace *packet.Trace, cal Calibration) (*Node, error) {
	cfg = cfg.withDefaults()
	if trace == nil || len(trace.Packets) == 0 {
		return nil, errors.New("clumsy: empty trace")
	}
	cfg.Packets = len(trace.Packets)

	spaceBytes := cfg.SpaceBytes
	if spaceBytes == 0 {
		spaceBytes = autoSpaceBytes(trace)
	}
	space := simmem.NewSpace(spaceBytes)

	// Fault process: same construction and fork labels as runOnce, so the
	// injector stream of a node is bit-identical to a batch run seeded the
	// same way.
	model := fault.NewModel(cfg.FaultScale)
	seedRNG := fault.NewRNG(cfg.Seed)
	var proc fault.Process
	switch cfg.Regime {
	case RegimeBurst:
		proc = fault.NewBurst(model, seedRNG.Fork(0xfa17), 32, fault.DefaultBurstParams())
	case RegimePermanent:
		inner := fault.NewInjector(model, seedRNG.Fork(0xfa17), 32)
		l1dBytes := cfg.L1DSize
		if l1dBytes == 0 {
			l1dBytes = cache.DefaultL1D.SizeBytes
		}
		proc = fault.NewStuckAt(inner, seedRNG.Fork(0x57ac), l1dBytes/4, fault.DefaultStuckAtParams())
	case RegimePaper:
		fallthrough
	default: // unknown regimes fall back to the paper process
		proc = fault.NewInjector(model, seedRNG.Fork(0xfa17), 32)
	}
	proc.SetEnabled(false)

	var hc cache.HierarchyConfig
	if cfg.L1DSize != 0 {
		hc.L1D = cache.DefaultL1D
		hc.L1D.SizeBytes = cfg.L1DSize
	}
	h, err := cache.NewHierarchyWith(space, proc, cfg.Detection, cfg.Strikes, hc)
	if err != nil {
		return nil, err
	}
	h.L1D.SetSubBlock(cfg.SubBlock)
	strikes, window := cfg.LineDisableStrikes, cfg.LineDisableWindow
	if strikes == 0 && cfg.Recovery == RecoverDegrade {
		strikes = DefaultLineDisableStrikes
	}
	if strikes > 0 {
		if window == 0 {
			window = DefaultLineDisableWindow
		}
		h.L1D.SetLineDisable(strikes, window)
	}
	if cfg.PreDisableFrac > 0 {
		h.L1D.ForceDisable(cfg.PreDisableFrac)
	}
	eng, err := newEngine(h, appBlocks)
	if err != nil {
		return nil, err
	}

	var ctrl *freqctl.Controller
	if cfg.Dynamic {
		epoch := cfg.EpochPackets
		if epoch == 0 {
			epoch = freqctl.DefaultEpochPackets
		}
		x1, x2 := cfg.X1, cfg.X2
		if x1 == 0 {
			x1 = freqctl.DefaultX1
		}
		if x2 == 0 {
			x2 = freqctl.DefaultX2
		}
		ctrl, err = freqctl.NewWith(freqctl.DefaultLevels(), epoch, x1, x2, freqctl.DefaultSwitchPenalty)
		if err != nil {
			return nil, err
		}
		if cfg.MinDwellEpochs > 0 {
			ctrl.SetMinDwell(cfg.MinDwellEpochs)
		}
		if cfg.Recovery == RecoverDegrade {
			ctrl.SetSpatialPolicy(DefaultSpatialLines, DefaultSpatialDisabledFrac)
			ctrl.SpatialEvidence = h.L1D.TakeEpochEvidence
		}
		h.L1D.SetCycleTime(ctrl.CycleTime())
	} else {
		h.L1D.SetCycleTime(cfg.CycleTime)
	}

	app, err := apps.New(cfg.App)
	if err != nil {
		return nil, err
	}
	rec := metrics.NewRecorder()
	n := &Node{
		cfg: cfg, app: app, space: space, proc: proc, h: h, eng: eng,
		ctrl: ctrl, rec: rec,
		ctx: &apps.Context{Space: space, Mem: dataMemory{eng}, Rec: rec, Exec: eng},
	}

	// Control plane. A fatal error here fails the open: there is no
	// pre-fault state to restore before the tables exist.
	if cfg.Planes&PlaneControl != 0 {
		proc.SetEnabled(true)
	}
	if err := runSetup(app, n.ctx, trace); err != nil {
		return nil, fmt.Errorf("clumsy: node setup failed: %w", err)
	}
	proc.SetEnabled(false)
	rec.BeginPackets()

	// State-integrity machinery around a stateful app's flow table, exactly
	// as the batch path wires it (the node has no run trace, so events are
	// discarded; counters and the ladder still run).
	if sa, ok := app.(apps.StatefulApp); ok && sa.StateTable() != nil {
		n.guard = newStateGuard(sa.StateTable(), h, nil, eng, cfg)
	}

	// One line-aligned DMA buffer, reused for every packet, sized for the
	// largest packet of the workload: a streaming node must not grow its
	// simulated memory per packet.
	maxWire := 0
	for i := range trace.Packets {
		if l := trace.Packets[i].WireLen(); l > maxWire {
			maxWire = l
		}
	}
	n.bufCap = (maxWire + 31) &^ 31
	if n.bufCap < 32 {
		n.bufCap = 32
	}
	n.buf, err = space.Alloc(n.bufCap, 32)
	if err != nil {
		return nil, err
	}

	if cfg.Recovery != RecoverAbort {
		n.ckpt = space.NewCheckpoint()
		n.cacheState = h.Snapshot(nil)
	}
	if cfg.Planes&PlaneData != 0 {
		proc.SetEnabled(true)
	}
	eng.budget = cal.Budget
	n.prevCycles = n.totalCycles()
	return n, nil
}

// totalCycles is the node's simulated clock: engine cycles (core + stalls)
// plus any frequency-switch penalty.
func (n *Node) totalCycles() float64 {
	c := n.eng.totalCycles()
	if n.ctrl != nil {
		c += n.ctrl.PenaltyCycles
	}
	return c
}

// Process serves one packet and returns its outcome: the simulated cycles
// it cost (the fleet's service time), and whether it was dropped or killed
// the node. Calling Process on a dead node returns ErrNodeDead; any other
// error is a simulator failure, not a simulated outcome.
func (n *Node) Process(p *packet.Packet) (NodeOutcome, error) {
	if n.dead {
		return NodeOutcome{}, ErrNodeDead
	}
	n.attempted++
	if err := n.dmaInto(p); err != nil {
		return NodeOutcome{}, err
	}
	n.eng.beginPacket()
	if n.guard != nil {
		n.guard.packet = n.attempted - 1
	}
	if err := processPacket(n.app, n.ctx, p, n.buf); err != nil {
		if errors.Is(err, ErrStateCorrupt) {
			// Unrecoverable cross-packet state: terminal under every policy.
			n.dead = true
			n.fatal = err
			return NodeOutcome{Dropped: true, Fatal: true, Reason: dropReason(err), Cycles: n.lap()}, nil
		}
		if !isFatal(err) {
			return NodeOutcome{}, err
		}
		// Fatal: spin out the watchdog budget, then drop or die.
		if n.eng.budget > 0 {
			n.eng.burnWatchdog(n.eng.budget)
		}
		if errors.Is(err, ErrWatchdog) {
			n.watchdogKills++
		}
		out := NodeOutcome{Dropped: true, Reason: dropReason(err)}
		if n.ckpt == nil {
			n.dead = true
			n.fatal = err
			out.Fatal = true
			out.Cycles = n.lap()
			return out, nil
		}
		n.ckpt.Restore()
		n.h.RestoreSnapshot(n.cacheState)
		if n.guard != nil {
			n.guard.st.RestoreShadow()
		}
		n.contained++
		n.rec.DropPacket()
		if sr, ok := n.app.(apps.ScratchResetter); ok {
			sr.ResetScratch()
		}
		if n.cfg.MaxDropRate > 0 {
			if rate := float64(n.contained) / float64(n.attempted); rate > n.cfg.MaxDropRate {
				n.dead = true
				n.fatal = fmt.Errorf("%w: %.4f > %.4f after %d packets",
					ErrDropRateExceeded, rate, n.cfg.MaxDropRate, n.attempted)
				out.Fatal = true
			}
		}
		out.Cycles = n.lap()
		return out, nil
	}
	n.rec.EndPacket()
	n.processed++
	if n.guard != nil && n.guard.scrubDue(n.processed) {
		if err := n.guard.scrubPass(n.ctx.Mem, n.attempted-1); err != nil {
			if !errors.Is(err, ErrStateCorrupt) && !isFatal(err) {
				return NodeOutcome{}, err
			}
			n.dead = true
			n.fatal = err
			return NodeOutcome{Dropped: true, Fatal: true, Reason: dropReason(err), Cycles: n.lap()}, nil
		}
	}
	if n.ckpt != nil {
		n.ckpt.Commit()
		n.cacheState = n.h.Snapshot(n.cacheState)
	}
	if n.guard != nil {
		n.guard.st.CommitShadow()
	}
	if n.ctrl != nil {
		newErrors := n.h.L1D.Recovery.ParityErrors - n.parityMark
		n.parityMark = n.h.L1D.Recovery.ParityErrors
		if _, changed := n.ctrl.PacketDone(newErrors); changed {
			n.h.L1D.SetCycleTime(n.ctrl.CycleTime())
		}
	}
	return NodeOutcome{Cycles: n.lap()}, nil
}

// lap returns the cycles since the last packet boundary and advances it.
func (n *Node) lap() float64 {
	now := n.totalCycles()
	d := now - n.prevCycles
	n.prevCycles = now
	return d
}

// dmaInto places the packet into the node's reused buffer, as the NIC's
// DMA engine would: straight to backing memory, invalidating stale cached
// copies of the range.
func (n *Node) dmaInto(p *packet.Packet) error {
	if size := p.WireLen(); size > n.bufCap {
		return fmt.Errorf("clumsy: packet (%d bytes) exceeds the node's DMA buffer (%d)", size, n.bufCap)
	}
	if p.Raw != nil {
		if len(p.Raw) == 0 {
			return nil
		}
		return n.h.DMA(n.buf, p.Raw)
	}
	hdr := p.Header()
	if err := n.h.DMA(n.buf, hdr[:]); err != nil {
		return err
	}
	if len(p.Payload) > 0 {
		return n.h.DMA(n.buf+packet.HeaderLen, p.Payload)
	}
	return nil
}

// Health returns the node's cumulative health evidence.
func (n *Node) Health() NodeHealth {
	ev := n.h.L1D.Health()
	nh := NodeHealth{
		Attempted:     n.attempted,
		Processed:     n.processed,
		Contained:     n.contained,
		WatchdogKills: n.watchdogKills,
		LinesDisabled: ev.DisabledLines,
		DisabledFrac:  ev.DisabledFraction,
		CycleTime:     ev.CycleTime,
		Dead:          n.dead,
	}
	if n.ctrl != nil {
		nh.SpatialBackoffs = n.ctrl.SpatialBackoffs
	}
	return nh
}

// FatalErr returns the error that ended a dead node's service life, or nil.
func (n *Node) FatalErr() error { return n.fatal }

// Reclock raises the node's relative cycle time to cr (clamped to [current
// cycle time, 1]) — the restorative half of drain-and-re-clock: slower
// cycles give marginal cells the full sense window back, and the cache
// returns every non-pinned disabled frame to service with a clean strike
// window. Returns the applied cycle time. Static-clock nodes only; a
// dynamic node's controller owns its operating point, so Reclock is a
// no-op there.
func (n *Node) Reclock(cr float64) float64 {
	cur := n.h.L1D.CycleTime()
	if n.ctrl != nil {
		return cur
	}
	if cr < cur {
		cr = cur
	}
	if cr > 1 {
		cr = 1
	}
	if cr > cur {
		n.h.L1D.SetCycleTime(cr)
	}
	return cr
}

// Close releases the node's checkpoint resources. The node must not be
// used afterwards.
func (n *Node) Close() {
	if n.ckpt != nil {
		n.ckpt.Release()
		n.ckpt = nil
	}
	n.dead = true
}
