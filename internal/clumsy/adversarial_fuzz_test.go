package clumsy

import (
	"testing"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/packet"
)

// FuzzAdversarialParse feeds arbitrary wire images through the stateful
// applications' defensive parsers inside the full containment machinery.
// The invariants: no Go panic escapes the simulator (an app panic is a
// simulated trap, contained like any fault), the run always completes
// under the unbounded drop policy, and rejected packets are not free —
// parsing a malformed image still charges instructions and cycles.
func FuzzAdversarialParse(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint64(1))
	f.Add([]byte{0x45}, uint8(1), uint64(7))
	// A plausible-but-corrupt header: version/IHL ok, length field lies.
	f.Add([]byte{0x45, 0, 0xff, 0xff, 0, 0, 0, 0, 64, 6, 0, 0,
		10, 0, 0, 1, 10, 0, 0, 2, 0, 80, 0, 80}, uint8(0), uint64(42))
	f.Fuzz(func(t *testing.T, raw []byte, appIdx uint8, seed uint64) {
		if len(raw) > 512 {
			raw = raw[:512] // bound the wire image like a real MTU would
		}
		app := []string{"fw", "flowtrack"}[int(appIdx)%2]
		proto, err := apps.New(app)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := packet.Generate(proto.TraceConfig(12, seed%1000+1))
		if err != nil {
			t.Fatal(err)
		}
		// Plant the fuzzed image on several packets, interleaved with
		// well-formed ones so flow state is live around each parse.
		for i := 2; i < len(trace.Packets); i += 3 {
			trace.Packets[i].Raw = raw
		}
		cfg := Config{
			App: app, Seed: seed%1000 + 1, CycleTime: 0.5,
			Detection: cache.DetectionParity, Strikes: 2,
			FaultScale: 1e-6, Recovery: RecoverDrop,
		}
		res, err := RunWithTrace(cfg, trace)
		if err != nil {
			t.Fatalf("RunWithTrace: %v", err)
		}
		if res.FatalErr != nil {
			t.Fatalf("unbounded drop policy ended fatally on a malformed image: %v", res.FatalErr)
		}
		if got := res.Report.Processed + res.Report.Dropped; got != len(trace.Packets) {
			t.Fatalf("attempted %d of %d packets", got, len(trace.Packets))
		}
		if res.GoldenInstrs == 0 || res.GoldenCycles == 0 {
			t.Fatal("malformed packets were processed for free; rejection must charge cycles")
		}
		if res.StateUndetected != 0 {
			t.Fatalf("%d silently diverged flow records in a near-fault-free run", res.StateUndetected)
		}
	})
}
