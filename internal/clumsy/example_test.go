package clumsy_test

import (
	"fmt"

	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
)

// ExampleRun simulates the route application on a clumsy packet processor
// whose data cache runs at half the specified cycle time, protected by
// parity with two-strike recovery, and reports the trade against the
// fault-free baseline.
func ExampleRun() {
	res, err := clumsy.Run(clumsy.Config{
		App:        "route",
		Packets:    500,
		Seed:       42,
		CycleTime:  0.5,
		Detection:  cache.DetectionParity,
		Strikes:    2,
		FaultScale: 1e-12, // silence faults so the example output is exact
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("processed %d/%d packets\n", res.Report.Processed, res.Report.GoldenPackets)
	fmt.Printf("delay improves: %v\n", res.Delay < res.GoldenDelay)
	fmt.Printf("energy improves: %v\n", res.Energy.Total() < res.GoldenEnergy.Total())
	fmt.Printf("fallibility: %.3f\n", res.Fallibility())
	// Output:
	// processed 500/500 packets
	// delay improves: true
	// energy improves: true
	// fallibility: 1.000
}
