package clumsy

import (
	"testing"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/metrics"
)

// run is a test helper with small packet counts.
func run(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return res
}

func TestAllAppsRunCleanAtBaseline(t *testing.T) {
	for _, name := range apps.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			res := run(t, Config{App: name, Packets: 120, Seed: 1, FaultScale: 1e-9})
			if res.Report.Fatal {
				t.Fatalf("%s died at negligible fault rate: %v", name, res.FatalErr)
			}
			if res.Report.PacketsWith != 0 {
				t.Fatalf("%s has %d erroneous packets at negligible fault rate", name, res.Report.PacketsWith)
			}
			if res.Fallibility() != 1 {
				t.Fatalf("%s fallibility = %v", name, res.Fallibility())
			}
			if res.Instrs == 0 || res.Cycles <= 0 || res.Delay <= 0 {
				t.Fatalf("%s produced empty cost figures: %+v", name, res)
			}
			if res.L1DStats.Accesses() == 0 {
				t.Fatalf("%s made no data accesses", name)
			}
			if res.Energy.Total() <= 0 {
				t.Fatalf("%s energy = %v", name, res.Energy.Total())
			}
		})
	}
}

func TestGoldenAndCleanRunsAgree(t *testing.T) {
	// With the injector effectively off, golden and clumsy runs at Cr=1
	// must match cycle for cycle.
	res := run(t, Config{App: "route", Packets: 100, Seed: 2, FaultScale: 1e-12})
	if res.Cycles != res.GoldenCycles {
		t.Fatalf("cycles %v != golden %v", res.Cycles, res.GoldenCycles)
	}
	if res.Instrs != res.GoldenInstrs {
		t.Fatalf("instrs %v != golden %v", res.Instrs, res.GoldenInstrs)
	}
}

func TestOverclockingReducesDelayAndEnergy(t *testing.T) {
	base := run(t, Config{App: "tl", Packets: 200, Seed: 3, FaultScale: 1e-9, CycleTime: 1})
	fast := run(t, Config{App: "tl", Packets: 200, Seed: 3, FaultScale: 1e-9, CycleTime: 0.5})
	if fast.Delay >= base.Delay {
		t.Fatalf("delay at Cr=0.5 (%v) should beat Cr=1 (%v)", fast.Delay, base.Delay)
	}
	if fast.Energy.L1D >= base.Energy.L1D {
		t.Fatalf("L1D energy at Cr=0.5 (%v) should beat Cr=1 (%v)", fast.Energy.L1D, base.Energy.L1D)
	}
}

func TestHighFaultRateCausesErrors(t *testing.T) {
	res := run(t, Config{App: "route", Packets: 300, Seed: 4, FaultScale: 3e3, CycleTime: 0.25})
	if res.Report.PacketsWith == 0 && !res.Report.Fatal {
		t.Fatal("expected application errors at amplified fault rate")
	}
	if res.Fallibility() <= 1 && !res.Report.Fatal {
		t.Fatalf("fallibility = %v", res.Fallibility())
	}
}

func TestParityDetectionSuppressesErrors(t *testing.T) {
	// Faults in the data plane only, at a rate hot enough for errors but
	// cool enough that parity recovery keeps the run alive.
	noDet := run(t, Config{App: "route", Packets: 400, Seed: 5, FaultScale: 20, CycleTime: 0.25,
		Planes: PlaneData, Detection: cache.DetectionNone})
	parity := run(t, Config{App: "route", Packets: 400, Seed: 5, FaultScale: 20, CycleTime: 0.25,
		Planes: PlaneData, Detection: cache.DetectionParity, Strikes: 2})
	nd := noDet.Report.PacketsWith
	if noDet.Report.Fatal {
		nd = noDet.Report.GoldenPackets // died: worst case
	}
	if parity.Report.Fatal {
		t.Fatalf("parity run died: %v", parity.FatalErr)
	}
	if parity.Report.PacketsWith >= nd && nd > 0 {
		t.Fatalf("parity (%d errors) should improve on no detection (%d)", parity.Report.PacketsWith, nd)
	}
	if parity.Recovery.ParityErrors == 0 {
		t.Fatal("parity run saw no parity errors at amplified rate")
	}
}

func TestControlPlaneOnlyInjection(t *testing.T) {
	res := run(t, Config{App: "route", Packets: 150, Seed: 6, FaultScale: 5e3, CycleTime: 0.25,
		Planes: PlaneControl})
	// Faults in setup corrupt tables; data plane itself is clean, so every
	// error traces back to initialization state.
	if res.Recovery.FaultsOnRead+res.Recovery.FaultsOnWrite == 0 {
		t.Fatal("no faults injected during control plane")
	}
	// The data plane must have been clean: no faults counted there beyond
	// the setup ones (the counter freezes when the injector is disabled).
	insSetup := res.Recovery.FaultsOnRead + res.Recovery.FaultsOnWrite
	_ = insSetup // counters cover the whole run; presence checked above
}

func TestDynamicSchemeSwitches(t *testing.T) {
	res := run(t, Config{App: "route", Packets: 1200, Seed: 7, FaultScale: 10,
		Dynamic: true, Detection: cache.DetectionParity, Strikes: 2})
	if res.LevelPackets == nil {
		t.Fatal("dynamic run did not record level packets")
	}
	if res.Switches == 0 {
		t.Fatal("dynamic scheme never changed frequency over 8 epochs")
	}
	var total uint64
	for _, n := range res.LevelPackets {
		total += n
	}
	if total != uint64(res.Report.Processed) {
		t.Fatalf("level packets %d != processed %d", total, res.Report.Processed)
	}
}

func TestEDFComputation(t *testing.T) {
	res := run(t, Config{App: "crc", Packets: 80, Seed: 8, FaultScale: 1e-9})
	e := metrics.DefaultExponents()
	if res.EDF(e) <= 0 || res.GoldenEDF(e) <= 0 {
		t.Fatal("EDF products must be positive")
	}
	// Clean run at Cr=1: clumsy EDF equals golden EDF.
	ratio := res.EDF(e) / res.GoldenEDF(e)
	if ratio < 0.999 || ratio > 1.001 {
		t.Fatalf("clean baseline EDF ratio = %v, want 1", ratio)
	}
}

func TestUnknownAppRejected(t *testing.T) {
	if _, err := Run(Config{App: "nosuch", Packets: 10}); err == nil {
		t.Fatal("unknown application should fail")
	}
}

func TestDeterminism(t *testing.T) {
	a := run(t, Config{App: "nat", Packets: 150, Seed: 9, FaultScale: 2e3, CycleTime: 0.25})
	b := run(t, Config{App: "nat", Packets: 150, Seed: 9, FaultScale: 2e3, CycleTime: 0.25})
	if a.Cycles != b.Cycles || a.Instrs != b.Instrs || a.Report.PacketsWith != b.Report.PacketsWith {
		t.Fatalf("identical configs diverge: %v/%v, %v/%v, %v/%v",
			a.Cycles, b.Cycles, a.Instrs, b.Instrs, a.Report.PacketsWith, b.Report.PacketsWith)
	}
}
