package clumsy

import (
	"testing"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/fault"
	"clumsy/internal/metrics"
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// zeroallocRig is a faulty-path data plane mirroring runOnce's steady
// state: an enabled fault process under parity detection, per-packet
// checkpoint commits and cache snapshots for the containing policies, and
// the line-disable ladder armed under degrade. It exists to pin the
// allocation behaviour of the per-packet hot loop, which `clumsy bench`
// reports as allocs_per_packet.
type zeroallocRig struct {
	trace      *packet.Trace
	app        apps.App
	ctx        *apps.Context
	eng        *engine
	h          *cache.Hierarchy
	ckpt       *simmem.Checkpoint
	cacheState *cache.Snapshot
	guard      *stateGuard
	next       int
}

// newZeroallocRig builds the rig exactly as runOnce does for the given
// app, policy, and regime: same fork labels for the fault streams, parity
// detection with a two-strike retry budget, and the degrade policy arming
// line disable. Stateful apps additionally get the state guard with a
// short scrub interval, so the integrity ladder and the periodic scrub
// are inside the measured loop. The watchdog stays unarmed and the fault
// scale moderate, so the defensive applications never die and every
// measured packet takes the success path (recovery stalls included).
func newZeroallocRig(t *testing.T, appName string, policy RecoveryPolicy, regime FaultRegime) *zeroallocRig {
	t.Helper()
	app, err := apps.New(appName)
	if err != nil {
		t.Fatal(err)
	}
	trace, err := packet.Generate(app.TraceConfig(64, 0x5eed))
	if err != nil {
		t.Fatal(err)
	}
	space := simmem.NewSpace(autoSpaceBytes(trace))
	model := fault.NewModel(25)
	seedRNG := fault.NewRNG(7)
	var proc fault.Process
	switch regime {
	case RegimeBurst:
		proc = fault.NewBurst(model, seedRNG.Fork(0xfa17), 32, fault.DefaultBurstParams())
	case RegimePermanent:
		inner := fault.NewInjector(model, seedRNG.Fork(0xfa17), 32)
		proc = fault.NewStuckAt(inner, seedRNG.Fork(0x57ac),
			cache.DefaultL1D.SizeBytes/4, fault.DefaultStuckAtParams())
	default:
		proc = fault.NewInjector(model, seedRNG.Fork(0xfa17), 32)
	}
	proc.SetEnabled(false)
	h, err := cache.NewHierarchyWith(space, proc, cache.DetectionParity, 2, cache.HierarchyConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h.L1D.SetCycleTime(0.5)
	if policy == RecoverDegrade {
		h.L1D.SetLineDisable(DefaultLineDisableStrikes, DefaultLineDisableWindow)
	}
	eng, err := newEngine(h, appBlocks)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.NewRecorder()
	ctx := &apps.Context{Space: space, Mem: dataMemory{eng}, Rec: rec, Exec: eng}
	if err := app.Setup(ctx, trace); err != nil {
		t.Fatalf("setup: %v", err)
	}
	rec.BeginPackets()
	r := &zeroallocRig{trace: trace, app: app, ctx: ctx, eng: eng, h: h}
	if sa, ok := app.(apps.StatefulApp); ok && sa.StateTable() != nil {
		// ScrubInterval 16 puts several full scrub passes inside the
		// 100-packet measurement window, pinning the scrub loop too.
		r.guard = newStateGuard(sa.StateTable(), h, nil, eng, Config{ScrubInterval: 16})
		r.guard.st.CommitShadow()
	}
	if policy != RecoverAbort {
		r.ckpt = space.NewCheckpoint()
		t.Cleanup(r.ckpt.Release)
		r.cacheState = h.Snapshot(nil)
	}
	proc.SetEnabled(true)
	return r
}

// step runs one packet through the steady-state loop: DMA, execution, and
// — for the containing policies — the checkpoint commit plus the
// buffer-reusing cache snapshot that advance the restore point. The
// recorder's EndPacket is deliberately excluded: it is measurement
// harness, not simulated machine, and its per-packet observation reset
// allocates by design.
func (r *zeroallocRig) step() error {
	p := &r.trace.Packets[r.next%len(r.trace.Packets)]
	r.next++
	buf, err := dmaPacket(r.h, p)
	if err != nil {
		return err
	}
	r.eng.beginPacket()
	if r.guard != nil {
		r.guard.packet = r.next - 1
	}
	if err := processPacket(r.app, r.ctx, p, buf); err != nil {
		return err
	}
	if r.guard != nil && r.guard.scrubDue(r.next) {
		if err := r.guard.scrubPass(r.ctx.Mem, r.next-1); err != nil {
			return err
		}
	}
	if r.ckpt != nil {
		r.ckpt.Commit()
		r.cacheState = r.h.Snapshot(r.cacheState)
	}
	if r.guard != nil {
		r.guard.st.CommitShadow()
	}
	return nil
}

// TestSteadyStatePacketLoopZeroAlloc pins the steady-state packet loop at
// zero heap allocations per packet under every app, recovery policy, and
// fault regime — including the stateful apps with the integrity guard and
// periodic scrub armed. A regression here shows up as allocs_per_packet
// drift in `clumsy bench` snapshots; this test catches it without
// snapshot noise.
func TestSteadyStatePacketLoopZeroAlloc(t *testing.T) {
	policies := []struct {
		pol  RecoveryPolicy
		name string
	}{
		{RecoverAbort, "abort"},
		{RecoverDrop, "drop"},
		{RecoverDegrade, "degrade"},
	}
	regimes := []struct {
		reg  FaultRegime
		name string
	}{
		{RegimePaper, "paper"},
		{RegimeBurst, "burst"},
		{RegimePermanent, "permanent"},
	}
	for _, appName := range []string{"route", "fw", "flowtrack"} {
		for _, p := range policies {
			for _, g := range regimes {
				t.Run(appName+"/"+p.name+"/"+g.name, func(t *testing.T) {
					if appName != "route" && g.reg == RegimePermanent && p.pol != RecoverDegrade {
						// A stuck-at bit inside the flow table re-strikes on
						// every lookup until the recovery ladder exhausts:
						// terminal by design. Only degrade's line disable
						// removes the faulty line and yields a steady state.
						t.Skip("permanent faults in flow state are terminal without line disable")
					}
					r := newZeroallocRig(t, appName, p.pol, g.reg)
					for i := 0; i < 200; i++ {
						if err := r.step(); err != nil {
							t.Fatalf("warm-up packet %d: %v", i, err)
						}
					}
					allocs := testing.AllocsPerRun(100, func() {
						if err := r.step(); err != nil {
							t.Fatalf("measured packet: %v", err)
						}
					})
					if allocs != 0 {
						t.Errorf("steady-state packet loop allocates %.2f times per packet, want 0", allocs)
					}
					// Self-check: the rig must actually exercise the faulty
					// path, or a zero result proves nothing.
					if r.h.L1D.Recovery.FaultsOnRead+r.h.L1D.Recovery.FaultsOnWrite == 0 {
						t.Fatal("rig injected no faults; the zero-alloc result is vacuous")
					}
					if r.h.L1D.Recovery.ParityErrors == 0 {
						t.Fatal("rig detected no parity errors; recovery path unexercised")
					}
					if r.guard != nil && r.guard.scrubPasses == 0 {
						t.Fatal("stateful rig never scrubbed; the guard path is unexercised")
					}
				})
			}
		}
	}
}
