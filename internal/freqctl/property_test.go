package freqctl

import (
	"testing"
	"testing/quick"

	"clumsy/internal/fault"
)

// TestControllerInvariants drives the controller with random fault
// sequences and checks its structural invariants: the level index stays in
// range, every packet is attributed to exactly one level, and the penalty
// accounting matches the switch count.
func TestControllerInvariants(t *testing.T) {
	f := func(seed uint64, burstiness uint8) bool {
		rng := fault.NewRNG(seed)
		c := New()
		const packets = 5000
		for i := 0; i < packets; i++ {
			var faults uint64
			// Bursty fault pattern: mostly quiet with occasional storms
			// whose intensity depends on the current level.
			if rng.Intn(int(burstiness)+2) == 0 {
				faults = uint64(rng.Intn(10)) * uint64(1/c.CycleTime())
			}
			c.PacketDone(faults)
			cr := c.CycleTime()
			if cr != 1 && cr != 0.75 && cr != 0.5 && cr != 0.25 {
				return false
			}
		}
		var total uint64
		for _, n := range c.LevelPackets {
			total += n
		}
		if total != packets {
			return false
		}
		return c.PenaltyCycles == float64(c.Switches)*DefaultSwitchPenalty
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
