// Package freqctl implements the dynamic frequency-adaptation scheme of
// Section 4: the processor observes parity failures over execution epochs
// of a fixed number of packets and steps the data-cache clock up or down
// through discrete frequency levels.
//
// After each epoch the fault count is compared with the count stored at the
// last frequency change: more than X1 (200%) of the stored rate steps the
// frequency down (toward safety), less than X2 (80%) steps it up (toward
// speed), anything between leaves it alone. Each change costs a small cycle
// penalty; no cache flush is needed.
package freqctl

import "errors"

// Defaults from the paper.
const (
	DefaultEpochPackets  = 100  // decision interval, in packets
	DefaultX1            = 2.0  // decrease-frequency threshold (200%)
	DefaultX2            = 0.8  // increase-frequency threshold (80%)
	DefaultSwitchPenalty = 10.0 // cycles per frequency change
)

// DefaultLevels are the available relative cycle times, fastest last:
// full frequency and the +50%, +100%, +300% over-clocked settings
// (Cr = 0.75, 0.5, 0.25).
func DefaultLevels() []float64 { return []float64{1, 0.75, 0.5, 0.25} }

// Decision reports the outcome of an epoch boundary.
type Decision int

const (
	Keep Decision = iota
	SpeedUp
	SlowDown
)

func (d Decision) String() string {
	switch d {
	case SpeedUp:
		return "speed up"
	case SlowDown:
		return "slow down"
	default:
		return "keep"
	}
}

// Controller is the adaptation state machine.
type Controller struct {
	levels        []float64 // descending cycle times (increasing frequency)
	epochPackets  int
	x1, x2        float64
	switchPenalty float64

	idx            int    // current level index
	storedFaults   uint64 // fault count at the last frequency change
	primed         bool   // a non-zero reference count has been stored
	packetsInEpoch int
	faultsInEpoch  uint64

	// Back-off: after a slow-down the controller waits a growing number
	// of epochs before probing a faster level again. This keeps the
	// scheme "mostly in the Cr = 0.5 region" (Section 5.4) instead of
	// bouncing 1:1 across the fault-rate knee.
	cooldown      int
	sinceSlowdown int

	// OnDecision, if non-nil, observes every epoch-boundary evaluation:
	// the decision taken, whether the operating point changed, and the
	// cycle time in force after the decision. The telemetry layer hooks
	// this to count and trace DVS decisions; mid-epoch packets do not
	// invoke it.
	OnDecision func(d Decision, changed bool, cycleTime float64)

	// Switches counts frequency changes; PenaltyCycles accumulates the
	// switching cost, to be added to the run's execution cycles.
	Switches      int
	PenaltyCycles float64
	// LevelPackets records how many packets were processed at each level,
	// for reports such as "the dynamic scheme stays mostly in the Cr=0.5
	// region" (Section 5.4).
	LevelPackets []uint64
}

// New returns a controller with the paper's default parameters, starting at
// full-swing operation (the first level).
func New() *Controller {
	c, err := NewWith(DefaultLevels(), DefaultEpochPackets, DefaultX1, DefaultX2, DefaultSwitchPenalty)
	if err != nil {
		panic(err) // defaults are valid by construction
	}
	return c
}

// NewWith returns a controller with explicit parameters. Levels must be
// given in strictly decreasing cycle-time order... i.e. strictly increasing
// frequency; the controller starts at levels[0].
func NewWith(levels []float64, epochPackets int, x1, x2, switchPenalty float64) (*Controller, error) {
	if len(levels) < 2 {
		return nil, errors.New("freqctl: need at least two frequency levels")
	}
	for i, l := range levels {
		if l <= 0 {
			return nil, errors.New("freqctl: non-positive cycle time level")
		}
		if i > 0 && l >= levels[i-1] {
			return nil, errors.New("freqctl: levels must strictly decrease in cycle time")
		}
	}
	if epochPackets < 1 {
		return nil, errors.New("freqctl: epoch must cover at least one packet")
	}
	if x1 <= x2 || x2 < 0 {
		return nil, errors.New("freqctl: thresholds must satisfy 0 <= X2 < X1")
	}
	if switchPenalty < 0 {
		return nil, errors.New("freqctl: negative switch penalty")
	}
	return &Controller{
		levels:        levels,
		epochPackets:  epochPackets,
		x1:            x1,
		x2:            x2,
		switchPenalty: switchPenalty,
		LevelPackets:  make([]uint64, len(levels)),
	}, nil
}

// CycleTime returns the currently selected relative cycle time.
func (c *Controller) CycleTime() float64 { return c.levels[c.idx] }

// PacketDone records the completion of one packet during which faults
// parity failures were observed. At epoch boundaries it evaluates the
// adaptation rule; it returns the decision taken and whether the operating
// point changed (in which case the caller must reprogram the cache clock
// and charge PenaltyCycles' latest increment).
func (c *Controller) PacketDone(faults uint64) (Decision, bool) {
	c.LevelPackets[c.idx]++
	c.faultsInEpoch += faults
	c.packetsInEpoch++
	if c.packetsInEpoch < c.epochPackets {
		return Keep, false
	}

	observed := c.faultsInEpoch
	c.packetsInEpoch = 0
	c.faultsInEpoch = 0
	c.sinceSlowdown++

	decision := Keep
	switch {
	case observed == 0:
		// A fault-free epoch: there is nothing to lose by probing the
		// next faster level.
		if c.idx < len(c.levels)-1 && c.sinceSlowdown >= c.cooldown {
			decision = SpeedUp
		}
	case !c.primed:
		// First faulty epoch: record the reference rate of the current
		// operating point instead of comparing against an empty history.
		c.storedFaults = observed
		c.primed = true
	case float64(observed) > c.x1*float64(c.storedFaults):
		// Too many faults relative to the last stable point: back off.
		if c.idx > 0 {
			decision = SlowDown
		}
	case float64(observed) < c.x2*float64(c.storedFaults):
		// Comfortably below the stored rate: try the next faster level.
		if c.idx < len(c.levels)-1 && c.sinceSlowdown >= c.cooldown {
			decision = SpeedUp
		}
	}

	switch decision {
	case SlowDown:
		c.idx--
		// Exponential back-off on re-probing the level that just failed.
		if c.cooldown == 0 {
			c.cooldown = 2
		} else if c.cooldown < 16 {
			c.cooldown *= 2
		}
		c.sinceSlowdown = 0
	case SpeedUp:
		c.idx++
	default:
		if c.OnDecision != nil {
			c.OnDecision(Keep, false, c.CycleTime())
		}
		return Keep, false
	}
	// Store the previous epoch's fault count at every change (Section 4),
	// clamped to one so a zero reference cannot wedge the comparison.
	c.storedFaults = observed
	if c.storedFaults == 0 {
		c.storedFaults = 1
	}
	c.primed = true
	c.Switches++
	c.PenaltyCycles += c.switchPenalty
	if c.OnDecision != nil {
		c.OnDecision(decision, true, c.CycleTime())
	}
	return decision, true
}

// SwitchPenalty returns the per-change cycle cost.
func (c *Controller) SwitchPenalty() float64 { return c.switchPenalty }
