// Package freqctl implements the dynamic frequency-adaptation scheme of
// Section 4: the processor observes parity failures over execution epochs
// of a fixed number of packets and steps the data-cache clock up or down
// through discrete frequency levels.
//
// After each epoch the fault count is compared with the count stored at the
// last frequency change: more than X1 (200%) of the stored rate steps the
// frequency down (toward safety), less than X2 (80%) steps it up (toward
// speed), anything between leaves it alone. Each change costs a small cycle
// penalty; no cache flush is needed.
package freqctl

import "errors"

// Defaults from the paper.
const (
	DefaultEpochPackets  = 100  // decision interval, in packets
	DefaultX1            = 2.0  // decrease-frequency threshold (200%)
	DefaultX2            = 0.8  // increase-frequency threshold (80%)
	DefaultSwitchPenalty = 10.0 // cycles per frequency change
)

// DefaultLevels are the available relative cycle times, fastest last:
// full frequency and the +50%, +100%, +300% over-clocked settings
// (Cr = 0.75, 0.5, 0.25).
func DefaultLevels() []float64 { return []float64{1, 0.75, 0.5, 0.25} }

// Decision reports the outcome of an epoch boundary.
//
//lint:exhaustive
type Decision int

const (
	Keep Decision = iota
	SpeedUp
	SlowDown
)

func (d Decision) String() string {
	switch d {
	case Keep:
		return "keep"
	case SpeedUp:
		return "speed up"
	case SlowDown:
		return "slow down"
	default:
		return "keep"
	}
}

// Controller is the adaptation state machine.
type Controller struct {
	levels        []float64 // descending cycle times (increasing frequency)
	epochPackets  int
	x1, x2        float64
	switchPenalty float64

	idx            int    // current level index
	storedFaults   uint64 // fault count at the last frequency change
	primed         bool   // a non-zero reference count has been stored
	packetsInEpoch int
	faultsInEpoch  uint64

	// Back-off: after a slow-down the controller waits a growing number
	// of epochs before probing a faster level again. This keeps the
	// scheme "mostly in the Cr = 0.5 region" (Section 5.4) instead of
	// bouncing 1:1 across the fault-rate knee.
	cooldown      int
	sinceSlowdown int

	// Minimum dwell (opt-in, default 0 = paper semantics): an operating-
	// point change is applied only when at least minDwell epochs have
	// passed since the last applied change. Suppressed decisions still
	// update the adaptation rule's reference state, so the dwelled
	// controller tracks the undamped one with a delay instead of
	// diverging.
	minDwell    int
	sinceChange int

	// Spatial escalation (opt-in): at each epoch boundary the controller
	// consults SpatialEvidence and forces a slow-down when the epoch saw
	// more than spatialLines distinct faulting lines or the disabled-
	// capacity fraction exceeds spatialFrac. This is the top rung of the
	// recovery ladder: faults spread across many lines (or eating the
	// cache) are an operating-point problem, not a per-line one.
	spatialLines int
	spatialFrac  float64

	// SpatialEvidence, if non-nil, is invoked once per epoch boundary and
	// returns the distinct faulting lines of the closing epoch and the
	// currently disabled capacity fraction.
	SpatialEvidence func() (distinctLines int, disabledFrac float64)

	// SpatialBackoffs counts slow-downs forced by spatial evidence.
	SpatialBackoffs int

	// OnDecision, if non-nil, observes every epoch-boundary evaluation:
	// the decision taken, whether the operating point changed, and the
	// cycle time in force after the decision. The telemetry layer hooks
	// this to count and trace DVS decisions; mid-epoch packets do not
	// invoke it.
	OnDecision func(d Decision, changed bool, cycleTime float64)

	// Switches counts frequency changes; PenaltyCycles accumulates the
	// switching cost, to be added to the run's execution cycles.
	Switches      int
	PenaltyCycles float64
	// LevelPackets records how many packets were processed at each level,
	// for reports such as "the dynamic scheme stays mostly in the Cr=0.5
	// region" (Section 5.4).
	LevelPackets []uint64
}

// New returns a controller with the paper's default parameters, starting at
// full-swing operation (the first level).
func New() *Controller {
	c, err := NewWith(DefaultLevels(), DefaultEpochPackets, DefaultX1, DefaultX2, DefaultSwitchPenalty)
	if err != nil {
		panic(err) // defaults are valid by construction
	}
	return c
}

// NewWith returns a controller with explicit parameters. Levels must be
// given in strictly decreasing cycle-time order... i.e. strictly increasing
// frequency; the controller starts at levels[0].
func NewWith(levels []float64, epochPackets int, x1, x2, switchPenalty float64) (*Controller, error) {
	if len(levels) < 2 {
		return nil, errors.New("freqctl: need at least two frequency levels")
	}
	for i, l := range levels {
		if l <= 0 {
			return nil, errors.New("freqctl: non-positive cycle time level")
		}
		if i > 0 && l >= levels[i-1] {
			return nil, errors.New("freqctl: levels must strictly decrease in cycle time")
		}
	}
	if epochPackets < 1 {
		return nil, errors.New("freqctl: epoch must cover at least one packet")
	}
	if x1 <= x2 || x2 < 0 {
		return nil, errors.New("freqctl: thresholds must satisfy 0 <= X2 < X1")
	}
	if switchPenalty < 0 {
		return nil, errors.New("freqctl: negative switch penalty")
	}
	return &Controller{
		levels:        levels,
		epochPackets:  epochPackets,
		x1:            x1,
		x2:            x2,
		switchPenalty: switchPenalty,
		LevelPackets:  make([]uint64, len(levels)),
	}, nil
}

// CycleTime returns the currently selected relative cycle time.
func (c *Controller) CycleTime() float64 { return c.levels[c.idx] }

// SetMinDwell sets the minimum number of epochs between applied
// operating-point changes. Zero (the default) restores the paper's
// undamped semantics. The first change of a run is never suppressed.
func (c *Controller) SetMinDwell(epochs int) {
	if epochs < 0 {
		epochs = 0
	}
	c.minDwell = epochs
	c.sinceChange = epochs
}

// MinDwell returns the configured minimum dwell.
func (c *Controller) MinDwell() int { return c.minDwell }

// SetSpatialPolicy arms the spatial escalation triggers: maxLines bounds
// the distinct faulting lines per epoch, maxFrac the disabled-capacity
// fraction. A zero value disables the corresponding trigger.
func (c *Controller) SetSpatialPolicy(maxLines int, maxFrac float64) {
	c.spatialLines = maxLines
	c.spatialFrac = maxFrac
}

// PacketDone records the completion of one packet during which faults
// parity failures were observed. At epoch boundaries it evaluates the
// adaptation rule; it returns the decision taken and whether the operating
// point changed (in which case the caller must reprogram the cache clock
// and charge PenaltyCycles' latest increment).
func (c *Controller) PacketDone(faults uint64) (Decision, bool) {
	c.LevelPackets[c.idx]++
	c.faultsInEpoch += faults
	c.packetsInEpoch++
	if c.packetsInEpoch < c.epochPackets {
		return Keep, false
	}

	observed := c.faultsInEpoch
	c.packetsInEpoch = 0
	c.faultsInEpoch = 0
	c.sinceSlowdown++

	// Spatial evidence is consumed every epoch (whether or not it forces
	// anything) so the evidence provider's per-epoch window stays aligned
	// with the controller's.
	var spatialLines int
	var spatialFrac float64
	if c.SpatialEvidence != nil {
		spatialLines, spatialFrac = c.SpatialEvidence()
	}

	decision := Keep
	spatial := false
	if c.idx > 0 &&
		((c.spatialLines > 0 && spatialLines > c.spatialLines) ||
			(c.spatialFrac > 0 && spatialFrac > c.spatialFrac)) {
		// Faults are spread across many lines or have disabled a chunk of
		// the cache: escalate past the per-line actions and back the
		// operating point off regardless of the count-based rule.
		decision = SlowDown
		spatial = true
	} else {
		switch {
		case observed == 0:
			// A fault-free epoch: there is nothing to lose by probing the
			// next faster level.
			if c.idx < len(c.levels)-1 && c.sinceSlowdown >= c.cooldown {
				decision = SpeedUp
			}
		case !c.primed:
			// First faulty epoch: record the reference rate of the current
			// operating point instead of comparing against an empty history.
			c.storedFaults = observed
			c.primed = true
		case float64(observed) > c.x1*float64(c.storedFaults):
			// Too many faults relative to the last stable point: back off.
			if c.idx > 0 {
				decision = SlowDown
			}
		case float64(observed) < c.x2*float64(c.storedFaults):
			// Comfortably below the stored rate: try the next faster level.
			if c.idx < len(c.levels)-1 && c.sinceSlowdown >= c.cooldown {
				decision = SpeedUp
			}
		}
	}

	if decision == Keep {
		c.sinceChange++
		if c.OnDecision != nil {
			c.OnDecision(Keep, false, c.CycleTime())
		}
		return Keep, false
	}

	// The rule state advances for every non-Keep decision, applied or
	// dwell-suppressed: the stored reference is the previous epoch's fault
	// count (Section 4), clamped to one so a zero reference cannot wedge
	// the comparison, and a slow-down decision arms the exponential
	// re-probe back-off. Mirroring this state on suppressed decisions keeps
	// the dwelled rule identical to the undamped one: while the operating
	// points agree the two controllers emit the same decisions and differ
	// only in which of them they apply, so suppression delays changes
	// rather than retraining the rule.
	if decision == SlowDown {
		if c.cooldown == 0 {
			c.cooldown = 2
		} else if c.cooldown < 16 {
			c.cooldown *= 2
		}
		c.sinceSlowdown = 0
	}
	c.storedFaults = observed
	if c.storedFaults == 0 {
		c.storedFaults = 1
	}
	c.primed = true

	if c.minDwell > 0 && c.sinceChange < c.minDwell {
		c.sinceChange++
		if c.OnDecision != nil {
			c.OnDecision(decision, false, c.CycleTime())
		}
		return decision, false
	}

	if decision == SlowDown {
		c.idx--
		if spatial {
			c.SpatialBackoffs++
		}
	} else {
		c.idx++
	}
	c.sinceChange = 0
	c.Switches++
	c.PenaltyCycles += c.switchPenalty
	if c.OnDecision != nil {
		c.OnDecision(decision, true, c.CycleTime())
	}
	return decision, true
}

// SwitchPenalty returns the per-change cycle cost.
func (c *Controller) SwitchPenalty() float64 { return c.switchPenalty }
