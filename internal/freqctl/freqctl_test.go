package freqctl

import "testing"

// runEpoch feeds a full epoch of packets, each observing the given fault
// count, and returns the final decision.
func runEpoch(c *Controller, perPacketFaults uint64) (Decision, bool) {
	var d Decision
	var changed bool
	for i := 0; i < DefaultEpochPackets; i++ {
		d, changed = c.PacketDone(perPacketFaults)
	}
	return d, changed
}

func TestStartsAtFullCycleTime(t *testing.T) {
	c := New()
	if c.CycleTime() != 1 {
		t.Fatalf("initial cycle time = %v, want 1", c.CycleTime())
	}
}

func TestNoDecisionMidEpoch(t *testing.T) {
	c := New()
	for i := 0; i < DefaultEpochPackets-1; i++ {
		if d, changed := c.PacketDone(100); d != Keep || changed {
			t.Fatalf("mid-epoch decision at packet %d: %v", i, d)
		}
	}
}

func TestFaultFreeRampsToFastest(t *testing.T) {
	c := New()
	levels := []float64{0.75, 0.5, 0.25}
	for _, want := range levels {
		d, changed := runEpoch(c, 0)
		if d != SpeedUp || !changed {
			t.Fatalf("fault-free epoch should speed up, got %v", d)
		}
		if c.CycleTime() != want {
			t.Fatalf("cycle time = %v, want %v", c.CycleTime(), want)
		}
	}
	// At the fastest level, fault-free epochs keep.
	if d, changed := runEpoch(c, 0); d != Keep || changed {
		t.Fatalf("at fastest level expected Keep, got %v", d)
	}
	if c.Switches != 3 {
		t.Fatalf("switches = %d, want 3", c.Switches)
	}
	if c.PenaltyCycles != 3*DefaultSwitchPenalty {
		t.Fatalf("penalty = %v", c.PenaltyCycles)
	}
}

func TestFaultBurstBacksOff(t *testing.T) {
	c := New()
	runEpoch(c, 0) // to 0.75, stored = 0
	if d, _ := runEpoch(c, 5); d != SlowDown {
		t.Fatalf("faults after a fault-free reference should slow down, got %v", d)
	}
	if c.CycleTime() != 1 {
		t.Fatalf("cycle time = %v, want back at 1", c.CycleTime())
	}
}

func TestCannotSlowBelowFirstLevel(t *testing.T) {
	c := New()
	// At level 0 with stored 0, any faults hit the slow-down branch but
	// there is nowhere to go.
	if d, changed := runEpoch(c, 50); d != Keep || changed {
		t.Fatalf("at slowest level expected Keep, got %v changed=%v", d, changed)
	}
}

func TestHysteresisBand(t *testing.T) {
	c := New()
	runEpoch(c, 0)  // -> 0.75, stored 0
	runEpoch(c, 10) // faults: slow down -> 1, stored = 1000
	if c.CycleTime() != 1 {
		t.Fatalf("cycle time = %v", c.CycleTime())
	}
	// Observed equal to stored (ratio 1, between X2=0.8 and X1=2): keep.
	if d, changed := runEpoch(c, 10); d != Keep || changed {
		t.Fatalf("in-band epoch should keep, got %v", d)
	}
}

func TestOscillationBetweenAdjacentLevels(t *testing.T) {
	// The paper's rule bounces between 0.5 and 0.25 when the fault rate
	// jumps ~8x across that boundary: the dynamic scheme "stays mostly in
	// the Cr = 0.5 region" without beating the static setting.
	c := New()
	runEpoch(c, 0) // -> 0.75
	runEpoch(c, 0) // -> 0.5
	runEpoch(c, 0) // -> 0.25
	seen50, seen25 := 0, 0
	for i := 0; i < 20; i++ {
		var faults uint64
		if c.CycleTime() == 0.25 {
			faults = 8
		} else {
			faults = 1
		}
		runEpoch(c, faults)
		switch c.CycleTime() {
		case 0.5:
			seen50++
		case 0.25:
			seen25++
		default:
			t.Fatalf("wandered to level %v", c.CycleTime())
		}
	}
	if seen50 == 0 || seen25 == 0 {
		t.Fatalf("expected oscillation around the knee, got 0.5:%d 0.25:%d", seen50, seen25)
	}
}

func TestLevelPacketsAccounting(t *testing.T) {
	c := New()
	runEpoch(c, 0)
	runEpoch(c, 0)
	total := uint64(0)
	for _, n := range c.LevelPackets {
		total += n
	}
	if total != 2*DefaultEpochPackets {
		t.Fatalf("level packets total %d, want %d", total, 2*DefaultEpochPackets)
	}
	if c.LevelPackets[0] != DefaultEpochPackets || c.LevelPackets[1] != DefaultEpochPackets {
		t.Fatalf("level distribution %v", c.LevelPackets)
	}
}

func TestNewWithValidation(t *testing.T) {
	bad := [][]float64{
		{1},           // too few
		{1, 1},        // not strictly decreasing
		{0.5, 0.75},   // increasing
		{1, 0.5, 0.5}, // repeat
		{1, -0.5},     // negative
	}
	for i, levels := range bad {
		if _, err := NewWith(levels, 100, 2, 0.8, 10); err == nil {
			t.Errorf("levels %d (%v) should be rejected", i, levels)
		}
	}
	if _, err := NewWith(DefaultLevels(), 0, 2, 0.8, 10); err == nil {
		t.Error("zero epoch should be rejected")
	}
	if _, err := NewWith(DefaultLevels(), 100, 0.8, 2, 10); err == nil {
		t.Error("X1 <= X2 should be rejected")
	}
	if _, err := NewWith(DefaultLevels(), 100, 2, 0.8, -1); err == nil {
		t.Error("negative penalty should be rejected")
	}
	if _, err := NewWith(DefaultLevels(), 100, 2, 0.8, 10); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDecisionString(t *testing.T) {
	if Keep.String() != "keep" || SpeedUp.String() != "speed up" || SlowDown.String() != "slow down" {
		t.Fatal("unexpected Decision strings")
	}
}
