package freqctl

import (
	"testing"

	"clumsy/internal/fault"
)

// epochFeed generates an open-loop fault sequence: the fault count of each
// epoch depends only on the epoch index, never on the controller's state,
// so the same feed can drive two controllers for comparison.
func epochFeed(seed uint64, epochs int) []uint64 {
	rng := fault.NewRNG(seed)
	feed := make([]uint64, epochs)
	for i := range feed {
		if rng.Intn(2) == 0 {
			feed[i] = uint64(rng.Intn(40))
		}
	}
	return feed
}

type applied struct {
	epoch    int
	decision Decision
}

// drive runs one single-packet-epoch controller over the feed and returns
// the applied operating-point changes.
func drive(t *testing.T, minDwell int, feed []uint64) (*Controller, []applied) {
	t.Helper()
	c, err := NewWith(DefaultLevels(), 1, DefaultX1, DefaultX2, DefaultSwitchPenalty)
	if err != nil {
		t.Fatal(err)
	}
	c.SetMinDwell(minDwell)
	var changes []applied
	for i, f := range feed {
		if d, changed := c.PacketDone(f); changed {
			changes = append(changes, applied{epoch: i, decision: d})
		}
	}
	return c, changes
}

// TestMinDwellZeroIsUndamped: dwell zero must reproduce the paper's
// undamped semantics exactly — same decisions, same changes, same cycle
// times, epoch by epoch.
func TestMinDwellZeroIsUndamped(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		feed := epochFeed(seed, 400)
		ref, err := NewWith(DefaultLevels(), 1, DefaultX1, DefaultX2, DefaultSwitchPenalty)
		if err != nil {
			t.Fatal(err)
		}
		dw, err := NewWith(DefaultLevels(), 1, DefaultX1, DefaultX2, DefaultSwitchPenalty)
		if err != nil {
			t.Fatal(err)
		}
		dw.SetMinDwell(0)
		for i, f := range feed {
			rd, rc := ref.PacketDone(f)
			dd, dc := dw.PacketDone(f)
			if rd != dd || rc != dc || ref.CycleTime() != dw.CycleTime() {
				t.Fatalf("seed %d epoch %d: undamped (%v,%v,%g) != dwell-0 (%v,%v,%g)",
					seed, i, rd, rc, ref.CycleTime(), dd, dc, dw.CycleTime())
			}
		}
	}
}

// TestMinDwellSpacing: applied changes are separated by more than minDwell
// epochs, the first change of a run is never suppressed, and the level
// index stays in range throughout.
func TestMinDwellSpacing(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		feed := epochFeed(seed, 400)
		_, undamped := drive(t, 0, feed)
		firstEpoch := -1
		if len(undamped) > 0 {
			firstEpoch = undamped[0].epoch
		}
		for _, m := range []int{1, 2, 3, 5, 8} {
			c, changes := drive(t, m, feed)
			if got := c.CycleTime(); got != 1 && got != 0.75 && got != 0.5 && got != 0.25 {
				t.Fatalf("seed %d dwell %d: cycle time %g off the level grid", seed, m, got)
			}
			for i := 1; i < len(changes); i++ {
				if gap := changes[i].epoch - changes[i-1].epoch; gap <= m {
					t.Fatalf("seed %d dwell %d: changes %d epochs apart, want > %d",
						seed, m, gap, m)
				}
			}
			// The first change is exempt from the dwell: it lands on the same
			// epoch as the undamped run's first change.
			if firstEpoch >= 0 {
				if len(changes) == 0 || changes[0].epoch != firstEpoch {
					t.Fatalf("seed %d dwell %d: first change suppressed (undamped changed at epoch %d, dwelled %v)",
						seed, m, firstEpoch, changes)
				}
			}
		}
	}
}

// TestMinDwellSubsequence pins the relationship between the dwelled and
// undamped controllers on open-loop feeds: because suppressed decisions
// still advance the adaptation rule's reference state, the dwelled rule is
// identical to the undamped one for as long as the operating points agree
// — i.e. up to and including the first suppression. Over that prefix the
// two emit the same decision every epoch, so the dwelled controller's
// applied changes are a subsequence of the undamped controller's: the
// dwell removes changes, it never invents or reorders them. (Past the
// first suppression the operating points differ and the rules see
// different worlds, so no global relationship is claimed.)
func TestMinDwellSubsequence(t *testing.T) {
	suppressions := 0
	for seed := uint64(1); seed <= 25; seed++ {
		feed := epochFeed(seed, 400)
		for _, m := range []int{1, 2, 3, 5} {
			ref, err := NewWith(DefaultLevels(), 1, DefaultX1, DefaultX2, DefaultSwitchPenalty)
			if err != nil {
				t.Fatal(err)
			}
			dw, err := NewWith(DefaultLevels(), 1, DefaultX1, DefaultX2, DefaultSwitchPenalty)
			if err != nil {
				t.Fatal(err)
			}
			dw.SetMinDwell(m)
			var refApplied, dwApplied []Decision
			for i, f := range feed {
				rd, rc := ref.PacketDone(f)
				dd, dc := dw.PacketDone(f)
				if rd != dd {
					t.Fatalf("seed %d dwell %d epoch %d: decisions diverged before any suppression (undamped %v, dwelled %v)",
						seed, m, i, rd, dd)
				}
				if rc {
					refApplied = append(refApplied, rd)
				}
				if dc {
					dwApplied = append(dwApplied, dd)
				}
				if dd != Keep && !dc {
					// First suppression: the undamped twin applied this very
					// decision, and from here the trajectories part ways.
					if !rc {
						t.Fatalf("seed %d dwell %d epoch %d: decision %v suppressed by dwell but not applied undamped",
							seed, m, i, dd)
					}
					suppressions++
					break
				}
			}
			j := 0
			for _, d := range dwApplied {
				for j < len(refApplied) && refApplied[j] != d {
					j++
				}
				if j == len(refApplied) {
					t.Fatalf("seed %d dwell %d: dwelled changes %v are not a subsequence of undamped %v",
						seed, m, dwApplied, refApplied)
				}
				j++
			}
		}
	}
	if suppressions == 0 {
		t.Fatal("no feed ever triggered a dwell suppression; the property was tested vacuously")
	}
}

// TestSuppressedSlowDownArmsCooldown: a dwell-suppressed slow-down must
// still arm the exponential re-probe back-off and reset the reference
// fault count, exactly as an applied one would.
func TestSuppressedSlowDownArmsCooldown(t *testing.T) {
	c, err := NewWith(DefaultLevels(), 1, DefaultX1, DefaultX2, DefaultSwitchPenalty)
	if err != nil {
		t.Fatal(err)
	}
	c.SetMinDwell(2)

	// Epoch 1: fault-free, first change exempt from the dwell.
	if d, changed := c.PacketDone(0); d != SpeedUp || !changed {
		t.Fatalf("epoch 1: (%v,%v), want applied speed-up", d, changed)
	}
	// Epoch 2: fault storm -> slow-down decided but dwell-suppressed.
	if d, changed := c.PacketDone(50); d != SlowDown || changed {
		t.Fatalf("epoch 2: (%v,%v), want suppressed slow-down", d, changed)
	}
	if c.CycleTime() != 0.75 {
		t.Fatalf("suppressed slow-down moved the operating point to %g", c.CycleTime())
	}
	// Epoch 3: fault-free, but the suppressed slow-down armed the cooldown,
	// so the controller must not probe a faster level yet.
	if d, changed := c.PacketDone(0); d != Keep || changed {
		t.Fatalf("epoch 3: (%v,%v), want keep under cooldown", d, changed)
	}
	// Epoch 4: cooldown expired and the dwell is satisfied.
	if d, changed := c.PacketDone(0); d != SpeedUp || !changed {
		t.Fatalf("epoch 4: (%v,%v), want applied speed-up", d, changed)
	}
	if c.CycleTime() != 0.5 {
		t.Fatalf("cycle time %g after two applied speed-ups, want 0.5", c.CycleTime())
	}
	if c.Switches != 2 || c.PenaltyCycles != 2*DefaultSwitchPenalty {
		t.Fatalf("suppressed decisions leaked into accounting: %d switches, %g penalty",
			c.Switches, c.PenaltyCycles)
	}
}
