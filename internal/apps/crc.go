package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// crcApp implements the CRC-32 checksum benchmark. The control plane
// computes the 256-entry CRC lookup table into simulated memory; the data
// plane folds every packet byte through the table. The paper's two error
// structures are the crc table (nonvolatile — an error can affect many
// packets) and the per-packet accumulator (volatile).
type crcApp struct {
	table simmem.Addr // 256 x 32-bit table
}

func init() { Register("crc", func() App { return &crcApp{} }) }

func (a *crcApp) Name() string { return "crc" }

// TraceConfig: streaming payloads; destinations are irrelevant to crc.
// Large payloads give crc its high instruction count and, because the
// packet buffers stream through the small L1, a low miss rate on the hot
// crc table with misses dominated by the streaming data (Table I: crc has
// the lowest miss rate, 1.2%).
func (a *crcApp) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{
		Packets: packets, Flows: 64, PayloadMin: 256, PayloadMax: 512, Seed: seed,
	}
}

// CRC-32 (IEEE 802.3) reflected polynomial.
const crcPoly = 0xedb88320

// Basic-block identifiers for instruction accounting.
const (
	crcBlkInit = iota
	crcBlkByte
	crcBlkFinish
)

func (a *crcApp) Setup(ctx *Context, tr *packet.Trace) error {
	tbl, err := ctx.Space.Alloc(256*4, 4)
	if err != nil {
		return err
	}
	a.table = tbl
	var digest uint32
	for i := uint32(0); i < 256; i++ {
		c := i
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = crcPoly ^ c>>1
			} else {
				c >>= 1
			}
			if err := ctx.Exec.Step(crcBlkInit, 4); err != nil {
				return err
			}
		}
		if err := ctx.Mem.Store32(tbl+simmem.Addr(i*4), c); err != nil {
			return err
		}
		digest ^= c
	}
	// The table digest is the control-plane observation: a fault during
	// table construction shows up as an initialization error.
	read := uint32(0)
	for i := uint32(0); i < 256; i++ {
		v, err := ctx.Mem.Load32(tbl + simmem.Addr(i*4))
		if err != nil {
			return err
		}
		read ^= v
		if err := ctx.Exec.Step(crcBlkInit, 2); err != nil {
			return err
		}
	}
	ctx.Rec.Observe("crc-table", uint64(read))
	_ = digest
	return nil
}

func (a *crcApp) Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error {
	n := packet.HeaderLen + len(p.Payload)
	crc := ^uint32(0)
	for i := 0; i < n; i++ {
		b, err := ctx.Mem.Load8(buf + simmem.Addr(i))
		if err != nil {
			return err
		}
		idx := (crc ^ uint32(b)) & 0xff
		e, err := ctx.Mem.Load32(a.table + simmem.Addr(idx*4))
		if err != nil {
			return err
		}
		crc = e ^ crc>>8
		if err := ctx.Exec.Step(crcBlkByte, 5); err != nil {
			return err
		}
	}
	if err := ctx.Exec.Step(crcBlkFinish, 2); err != nil {
		return err
	}
	// The per-packet accumulator value (Section 2).
	ctx.Rec.Observe("crc-accumulator", uint64(^crc))
	return nil
}
