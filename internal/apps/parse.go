package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// Defensive IPv4 header parsing for the stateful applications. The
// stateless NetBench ports trust the header bytes they read; a firewall
// or flow tracker must not, because (a) workload-v2 delivers genuinely
// malformed wire images (truncated, field-fuzzed) and (b) a clumsy cache
// can corrupt the bytes between DMA and parse. Every validation step is
// charged — a rejected packet costs real cycles, which is exactly the
// overhead the paper's error-tolerance argument has to carry.

// parseBlk is the shared basic block of the defensive parser (block ids
// select I-cache lines within the engine's 32-block code segment; the
// stateful apps use 0..5 for their own kernels).
const parseBlk = 7

// parsedHeader is the validated five-tuple view of a packet. Ports are
// not carried in the IPv4 header the generator serialises, so flow
// identity is built from (src, dst, proto).
type parsedHeader struct {
	Src, Dst uint32
	Proto    uint8
	TTL      uint8
	Wire     int // bytes on the wire, NIC descriptor metadata
}

// flowKey folds the five-tuple into a non-zero 32-bit key (zero marks an
// empty record).
func (h *parsedHeader) flowKey() uint32 {
	k := h.Src
	k ^= h.Dst<<7 | h.Dst>>25
	k ^= uint32(h.Proto) * 0x9e3779b9
	if k == 0 {
		k = 1
	}
	return k
}

// parseHeader reads and validates the IPv4 header at buf: length sanity
// against the NIC's DMA count, version/IHL, total-length consistency, and
// the RFC 1071 header checksum. It returns ok=false for malformed
// packets — including well-formed packets whose header bytes a cache
// fault corrupted in flight, which is the property that keeps corrupt
// data out of the flow table. The error return carries only
// memory/watchdog faults.
func parseHeader(ctx *Context, p *packet.Packet, buf simmem.Addr) (parsedHeader, bool, error) {
	hdr := parsedHeader{Wire: p.WireLen()}
	// Length gate: fewer bytes than an IPv4 header cannot be parsed.
	if err := ctx.Exec.Step(parseBlk, 4); err != nil {
		return hdr, false, err
	}
	if hdr.Wire < packet.HeaderLen {
		return hdr, false, nil
	}
	// Load the 20 header bytes, folding the Internet checksum as we go.
	var b [packet.HeaderLen]byte
	var sum uint32
	for i := 0; i < packet.HeaderLen; i += 2 {
		hi, err := ctx.Mem.Load8(buf + simmem.Addr(i))
		if err != nil {
			return hdr, false, err
		}
		lo, err := ctx.Mem.Load8(buf + simmem.Addr(i+1))
		if err != nil {
			return hdr, false, err
		}
		b[i], b[i+1] = hi, lo
		sum += uint32(hi)<<8 | uint32(lo)
	}
	if err := ctx.Exec.Step(parseBlk, 16); err != nil {
		return hdr, false, err
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	// Version 4, IHL 5: the only shape the generator emits; anything else
	// is fuzz or corruption.
	if b[0] != 0x45 {
		return hdr, false, nil
	}
	// The total-length field must match what the NIC actually delivered.
	if int(b[2])<<8|int(b[3]) != hdr.Wire {
		return hdr, false, nil
	}
	// A correct header sums to 0xffff including its checksum field.
	if sum != 0xffff {
		return hdr, false, nil
	}
	hdr.TTL = b[8]
	hdr.Proto = b[9]
	hdr.Src = uint32(b[12])<<24 | uint32(b[13])<<16 | uint32(b[14])<<8 | uint32(b[15])
	hdr.Dst = uint32(b[16])<<24 | uint32(b[17])<<16 | uint32(b[18])<<8 | uint32(b[19])
	return hdr, true, nil
}
