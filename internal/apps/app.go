// Package apps contains faithful Go reimplementations of the seven NetBench
// applications studied in the paper (Section 2): crc, tl, route, drr, nat,
// md5, and url — plus extension workloads beyond the paper's set (the IMA
// ADPCM media codec). Each application keeps its important data structures —
// lookup tables, radix-tree nodes, queues, digests — inside the simulated
// address space and reaches them exclusively through the simmem.Memory
// interface, so the clumsy L1 data cache's injected faults corrupt exactly
// the state the paper instruments.
//
// Every application separates its control-plane phase (Setup: building
// tables) from its data-plane phase (Process: per-packet work), and marks
// the values of its key data structures through the metrics recorder.
package apps

import (
	"fmt"
	"sort"

	"clumsy/internal/fault"
	"clumsy/internal/metrics"
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// Exec is the execution-accounting interface the host processor provides.
// Applications report the instructions of each basic block they execute;
// the engine charges cycles, simulates instruction fetch, and enforces the
// per-packet watchdog (a corrupted loop bound shows up as an error here,
// which the processor records as a fatal error).
type Exec interface {
	// Step accounts n instructions of the given basic block. The block
	// identifier selects an instruction-cache line, so small kernels fit
	// in the L1I as the real benchmarks do.
	Step(block, n int) error
}

// Context carries everything an application needs for one run.
type Context struct {
	Space *simmem.Space     // arena for control-plane allocations
	Mem   simmem.Memory     // the (possibly clumsy) data memory
	Rec   *metrics.Recorder // observation sink
	Exec  Exec
}

// App is one NetBench workload.
type App interface {
	Name() string
	// TraceConfig describes the input traffic this workload is defined
	// over (payload sizes, routable prefixes, HTTP fraction) for the given
	// packet count and seed. The same configuration drives the golden and
	// the clumsy execution.
	TraceConfig(packets int, seed uint64) packet.TraceConfig
	// Setup performs the control-plane phase: allocating and populating
	// the application's data structures for the coming trace.
	Setup(ctx *Context, tr *packet.Trace) error
	// Process handles one packet whose raw bytes (20-byte IPv4 header
	// followed by the payload) have been placed at buf in simulated
	// memory. p carries the generator's metadata (sizes, five-tuple); the
	// data plane must read actual packet content from memory.
	Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error
}

// ScratchResetter is an optional App extension for fault containment.
// After a fatal error is contained (packet dropped, simulated memory rolled
// back to the last packet boundary), the processor calls ResetScratch so
// the application discards any host-side (Go-level) state it caches between
// packets — values read from the now-restored simulated memory would
// otherwise survive the rollback and diverge from it. The seven NetBench
// applications keep all inter-packet state inside the simulated space
// (tables, queues, digests) and their Go fields are set once during Setup,
// so none of them needs the hook today; it is the contract future stateful
// workloads must meet to be containable.
type ScratchResetter interface {
	ResetScratch()
}

// StatefulApp is implemented by applications that keep per-flow state in
// a simmem.StateTable persisting across packet boundaries — state a
// contained drop cannot fully recover. The processor discovers the table
// after Setup and wires the integrity machinery around it: the corruption
// ladder handler, the periodic scrub pass, shadow commit/rollback at
// packet boundaries, and the end-of-run divergence audit.
type StatefulApp interface {
	// StateTable returns the app's flow-state table, or nil if this run
	// keeps none.
	StateTable() *simmem.StateTable
}

// routingSeed fixes the prefix population shared by an app's routing table
// and its generated traffic; the table contents are part of the workload
// definition, not of the experiment seed.
const routingSeed = 0x71

// routingPrefixes returns the canonical prefix set of size n.
func routingPrefixes(n int) []packet.Prefix {
	return packet.GeneratePrefixes(n, fault.NewRNG(routingSeed))
}

// Factory creates a fresh application instance for one run.
type Factory func() App

var registry = map[string]Factory{}

// Register adds an application factory under its canonical name. It is
// called from init functions of the application files.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("apps: duplicate registration of " + name)
	}
	registry[name] = f
}

// New instantiates a registered application.
func New(name string) (App, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q", name)
	}
	return f(), nil
}

// paperApps is the NetBench selection of Table I, in the paper's order.
var paperApps = []string{"crc", "tl", "route", "drr", "nat", "md5", "url"}

// Names returns the paper's seven applications (the set every
// table/figure experiment iterates), in Table I order.
func Names() []string {
	out := make([]string, 0, len(paperApps))
	for _, n := range paperApps {
		if _, ok := registry[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// Extras returns the registered applications beyond the paper's seven
// (extension workloads such as the media codec), sorted.
func Extras() []string {
	var out []string
	for n := range registry { //lint:det-ok — iteration order irrelevant: result is sorted before return
		paper := false
		for _, p := range paperApps {
			if p == n {
				paper = true
				break
			}
		}
		if !paper {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}
