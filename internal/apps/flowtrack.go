package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// ftApp is a flow-state tracker: per-flow packet/byte accounting with a
// small state machine (new → established → heavy) driven entirely by the
// record contents, in the style of stateful data-plane abstractions
// (OpenState/FAST-style flow tables). Like the firewall it keeps all
// cross-packet state in a simmem.StateTable; unlike the firewall it
// touches the table on *every* well-formed packet, making it the denser
// stress of the integrity machinery.
//
//lint:checkpoint ResetScratch
type ftApp struct {
	//lint:ephemeral wiring fixed during Setup; flow state lives in the table
	st *simmem.StateTable
}

func init() { Register("flowtrack", func() App { return &ftApp{} }) }

func (a *ftApp) Name() string { return "flowtrack" }

// StateTable implements StatefulApp.
func (a *ftApp) StateTable() *simmem.StateTable { return a.st }

// ResetScratch implements ScratchResetter; all host-side fields are
// immutable after Setup.
func (a *ftApp) ResetScratch() {}

const (
	ftRecords  = 512 // power of two
	ftProbeMax = 8

	// Flow-record payload words.
	ftKey   = 0 // flow key, 0 = empty
	ftPkts  = 1
	ftBytes = 2
	ftState = 3
	ftTTLs  = 4 // min TTL << 8 | max TTL, a cheap path-change signal
	ftWords = 5

	// Flow states.
	ftStateNew   = 1
	ftStateEstab = 2
	ftStateHeavy = 3

	// A flow graduates to established after this many packets, and to
	// heavy beyond this many bytes.
	ftEstabPkts  = 3
	ftHeavyBytes = 4096
)

const (
	ftBlkHash = iota
	ftBlkProbe
	ftBlkUpdate
	ftBlkClass
)

// TraceConfig: a larger flow population with moderate payloads, so the
// table sees both locality (Zipf head) and occupancy pressure (tail).
func (a *ftApp) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{
		Packets: packets, Flows: 160, ZipfS: 1.1,
		PayloadMin: 40, PayloadMax: 512, Seed: seed,
	}
}

// ftHash mixes a flow key into a home slot.
func ftHash(key uint32) uint32 {
	h := key * 0xcc9e2d51
	h ^= h >> 15
	h *= 0x1b873593
	h ^= h >> 13
	return h & (ftRecords - 1)
}

func (a *ftApp) Setup(ctx *Context, tr *packet.Trace) error {
	st, err := simmem.NewStateTable(ctx.Space, ftRecords, ftWords)
	if err != nil {
		return err
	}
	a.st = st
	return st.Init(ctx.Mem)
}

func (a *ftApp) Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error {
	hdr, ok, err := parseHeader(ctx, p, buf)
	if err != nil {
		return err
	}
	if !ok {
		ctx.Rec.Observe("ft-state", 0)
		ctx.Rec.Observe("ft-flow", 0)
		return nil
	}
	key := hdr.flowKey()
	if err := ctx.Exec.Step(ftBlkHash, 8); err != nil {
		return err
	}

	h := ftHash(key)
	idx, found := int(h), false
	var pkts, bytes, state, ttls uint32
	for probe := uint32(0); probe < ftProbeMax; probe++ {
		if err := ctx.Exec.Step(ftBlkProbe, 6); err != nil {
			return err
		}
		i := int((h + probe) & (ftRecords - 1))
		rec, err := a.st.Lookup(ctx.Mem, i)
		if err != nil {
			return err
		}
		if rec[ftKey] == 0 {
			idx = i
			break
		}
		if rec[ftKey] == key {
			// Hit: the words just verified by Lookup are the transaction
			// inputs; copy them out before the scratch is reused.
			idx, found = i, true
			pkts, bytes, state, ttls = rec[ftPkts], rec[ftBytes], rec[ftState], rec[ftTTLs]
			break
		}
	}

	if err := ctx.Exec.Step(ftBlkUpdate, 14); err != nil {
		return err
	}
	if found {
		pkts++
		bytes += uint32(hdr.Wire)
		minTTL, maxTTL := (ttls>>8)&0xff, ttls&0xff
		if uint32(hdr.TTL) < minTTL {
			minTTL = uint32(hdr.TTL)
		}
		if uint32(hdr.TTL) > maxTTL {
			maxTTL = uint32(hdr.TTL)
		}
		ttls = minTTL<<8 | maxTTL
	} else {
		pkts, bytes = 1, uint32(hdr.Wire)
		state = ftStateNew
		ttls = uint32(hdr.TTL)<<8 | uint32(hdr.TTL)
	}
	// State machine: thresholds derived from the (verified) record only.
	if err := ctx.Exec.Step(ftBlkClass, 6); err != nil {
		return err
	}
	if state == ftStateNew && pkts >= ftEstabPkts {
		state = ftStateEstab
	}
	if state == ftStateEstab && bytes >= ftHeavyBytes {
		state = ftStateHeavy
	}
	if err := a.st.StoreField(ctx.Mem, idx, ftKey, key); err != nil {
		return err
	}
	if err := a.st.StoreField(ctx.Mem, idx, ftPkts, pkts); err != nil {
		return err
	}
	if err := a.st.StoreField(ctx.Mem, idx, ftBytes, bytes); err != nil {
		return err
	}
	if err := a.st.StoreField(ctx.Mem, idx, ftState, state); err != nil {
		return err
	}
	if err := a.st.StoreField(ctx.Mem, idx, ftTTLs, ttls); err != nil {
		return err
	}
	if err := a.st.Seal(ctx.Mem, idx); err != nil {
		return err
	}
	ctx.Rec.Observe("ft-state", uint64(state))
	ctx.Rec.Observe("ft-flow", uint64(key)<<16|uint64(pkts&0xffff))
	return nil
}
