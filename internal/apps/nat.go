package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/radix"
	"clumsy/internal/simmem"
)

// natApp implements network address translation on a router connecting a
// private network to the public internet: the source address of every
// outgoing packet is rewritten from a NAT table (an open-addressing hash
// table in simulated memory), and the packet is then routed. The observed
// values follow Figure 7: the initial source address, the interface value,
// the destination address, the traversed radix-tree entries, and the
// translated source address; the NAT table entries are the control-plane
// structure.
type natApp struct {
	table   *radix.Table
	nat     simmem.Addr // hash table of translation entries
	buckets uint32
}

func init() { Register("nat", func() App { return &natApp{} }) }

func (a *natApp) Name() string { return "nat" }

const (
	natPrefixes = 250
	natBuckets  = 512 // power of two
	natProbeMax = 16

	// Entry layout (words): private address (0 = empty), public address,
	// interface.
	natPriv   = 0
	natPub    = 4
	natIfc    = 8
	natEntLen = 12
)

const (
	natBlkHash = iota
	natBlkProbe
	natBlkRewrite
	natBlkNode
)

// TraceConfig: sources from a private /8 so every packet needs translation.
func (a *natApp) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{
		Packets: packets, Flows: 96, PayloadMin: 40, PayloadMax: 160,
		Prefixes: routingPrefixes(natPrefixes), Seed: seed,
	}
}

// natHash mixes an address into a bucket index.
func natHash(addr uint32) uint32 {
	h := addr
	h ^= h >> 16
	h *= 0x7feb352d
	h ^= h >> 15
	return h & (natBuckets - 1)
}

func (a *natApp) Setup(ctx *Context, tr *packet.Trace) error {
	tab, err := radix.New(ctx.Space, ctx.Mem)
	if err != nil {
		return err
	}
	a.table = tab
	prefixes := routingPrefixes(natPrefixes)
	for i, p := range prefixes {
		if err := ctx.Exec.Step(natBlkHash, 14); err != nil {
			return err
		}
		if err := tab.Insert(ctx.Mem, p, uint32(i+1), uint32(i%8)); err != nil {
			return err
		}
	}

	a.buckets = natBuckets
	a.nat, err = ctx.Space.Alloc(natBuckets*natEntLen, 8)
	if err != nil {
		return err
	}
	for b := uint32(0); b < natBuckets; b++ {
		base := a.nat + simmem.Addr(b*natEntLen)
		for off := simmem.Addr(0); off < natEntLen; off += 4 {
			if err := ctx.Mem.Store32(base+off, 0); err != nil {
				return err
			}
		}
	}

	// Populate translations for every source seen in the trace: the NAT
	// table is the control-plane structure of Figure 7.
	var digest uint64
	seen := map[uint32]bool{}
	for _, p := range tr.Packets {
		if seen[p.Src] {
			continue
		}
		seen[p.Src] = true
		pub := 0x05000000 | p.Src&0x00ffffff // public pool 5.0.0.0/8
		ifc := p.Src % 8
		if err := a.insert(ctx, p.Src, pub, ifc); err != nil {
			return err
		}
		digest ^= uint64(pub) + uint64(ifc)<<32
		if err := ctx.Exec.Step(natBlkProbe, 10); err != nil {
			return err
		}
	}
	ctx.Rec.Observe("nat-table", digest)
	return nil
}

func (a *natApp) insert(ctx *Context, priv, pub, ifc uint32) error {
	h := natHash(priv)
	for probe := uint32(0); probe < natProbeMax; probe++ {
		base := a.nat + simmem.Addr(((h+probe)&(natBuckets-1))*natEntLen)
		cur, err := ctx.Mem.Load32(base + natPriv)
		if err != nil {
			return err
		}
		if cur == 0 || cur == priv {
			if err := ctx.Mem.Store32(base+natPriv, priv); err != nil {
				return err
			}
			if err := ctx.Mem.Store32(base+natPub, pub); err != nil {
				return err
			}
			return ctx.Mem.Store32(base+natIfc, ifc)
		}
	}
	// Table pressure: overwrite the home slot (the real NAT would evict
	// by LRU; the distinction does not matter to the error study).
	base := a.nat + simmem.Addr(h*natEntLen)
	if err := ctx.Mem.Store32(base+natPriv, priv); err != nil {
		return err
	}
	if err := ctx.Mem.Store32(base+natPub, pub); err != nil {
		return err
	}
	return ctx.Mem.Store32(base+natIfc, ifc)
}

func (a *natApp) Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error {
	// Read the source address from the header.
	var src uint32
	for i := 0; i < 4; i++ {
		b, err := ctx.Mem.Load8(buf + simmem.Addr(12+i))
		if err != nil {
			return err
		}
		src = src<<8 | uint32(b)
	}
	ctx.Rec.Observe("initial-src", uint64(src))
	if err := ctx.Exec.Step(natBlkHash, 8); err != nil {
		return err
	}

	// Probe the NAT table.
	var pub, ifc uint32
	found := false
	h := natHash(src)
	for probe := uint32(0); probe < natProbeMax; probe++ {
		if err := ctx.Exec.Step(natBlkProbe, 6); err != nil {
			return err
		}
		base := a.nat + simmem.Addr(((h+probe)&(natBuckets-1))*natEntLen)
		cur, err := ctx.Mem.Load32(base + natPriv)
		if err != nil {
			return err
		}
		if cur == 0 {
			break
		}
		if cur == src {
			pub, err = ctx.Mem.Load32(base + natPub)
			if err != nil {
				return err
			}
			ifc, err = ctx.Mem.Load32(base + natIfc)
			if err != nil {
				return err
			}
			found = true
			break
		}
	}
	ctx.Rec.Observe("interface", uint64(ifc))
	if !found {
		// Untranslatable packets are dropped.
		ctx.Rec.Observe("translated-src", 0)
		ctx.Rec.Observe("dst", 0)
		return nil
	}

	// Rewrite the source in the packet header.
	for i := 0; i < 4; i++ {
		if err := ctx.Mem.Store8(buf+simmem.Addr(12+i), byte(pub>>uint(24-8*i))); err != nil {
			return err
		}
	}
	if err := ctx.Exec.Step(natBlkRewrite, 8); err != nil {
		return err
	}
	ctx.Rec.Observe("translated-src", uint64(pub))

	// Route on the (untranslated) destination.
	var dst uint32
	for i := 0; i < 4; i++ {
		b, err := ctx.Mem.Load8(buf + simmem.Addr(16+i))
		if err != nil {
			return err
		}
		dst = dst<<8 | uint32(b)
	}
	res, err := a.table.Lookup(ctx.Mem, dst, func(node simmem.Addr) error {
		return ctx.Exec.Step(natBlkNode, 7)
	})
	if err != nil {
		return err
	}
	ctx.Rec.Observe("radix-walk", uint64(res.Steps)<<8|uint64(res.PrefixLen))
	ctx.Rec.Observe("dst", uint64(dst)<<8|uint64(res.NextHop&0xff))
	return ctx.Exec.Step(natBlkRewrite, 4)
}
