package apps

import (
	"testing"

	"clumsy/internal/metrics"
	"clumsy/internal/packet"
)

// setupOn prepares an app over a default trace and returns its context.
func setupOn(t *testing.T, name string, packets int) (App, *Context, *packet.Trace) {
	t.Helper()
	app, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := testCtx(t)
	tr := packet.MustGenerate(app.TraceConfig(packets, 77))
	if err := app.Setup(ctx, tr); err != nil {
		t.Fatal(err)
	}
	ctx.Rec.BeginPackets()
	return app, ctx, tr
}

// process pushes one custom packet through the app.
func process(t *testing.T, app App, ctx *Context, p *packet.Packet) []metrics.Observation {
	t.Helper()
	buf := dma(t, ctx, p)
	if err := app.Process(ctx, p, buf); err != nil {
		t.Fatal(err)
	}
	ctx.Rec.EndPacket()
	return ctx.Rec.Packets[len(ctx.Rec.Packets)-1].Obs
}

func obsValue(t *testing.T, obs []metrics.Observation, name string) (uint64, bool) {
	t.Helper()
	for _, o := range obs {
		if o.Name == name {
			return o.Value, true
		}
	}
	return 0, false
}

func TestRouteDropsExpiredTTL(t *testing.T) {
	app, ctx, tr := setupOn(t, "route", 2)
	p := tr.Packets[0]
	p.TTL = 1
	obs := process(t, app, ctx, &p)
	ttl, ok := obsValue(t, obs, "ttl")
	if !ok || ttl != 1 {
		t.Fatalf("ttl observation = %v, %v", ttl, ok)
	}
	entry, ok := obsValue(t, obs, "route-entry")
	if !ok || entry != 0 {
		t.Fatalf("expired packet should be dropped, route-entry = %v", entry)
	}
}

func TestRouteZeroTTL(t *testing.T) {
	app, ctx, tr := setupOn(t, "route", 2)
	p := tr.Packets[0]
	p.TTL = 0
	obs := process(t, app, ctx, &p)
	if entry, _ := obsValue(t, obs, "route-entry"); entry != 0 {
		t.Fatal("TTL 0 must not be forwarded")
	}
}

func TestURLIgnoresNonHTTPPayload(t *testing.T) {
	app, ctx, tr := setupOn(t, "url", 2)
	p := tr.Packets[0]
	p.Payload = []byte("POST /unsupported HTTP/1.0\r\n\r\n")
	obs := process(t, app, ctx, &p)
	entry, ok := obsValue(t, obs, "url-entry")
	if !ok || entry != ^uint64(0) {
		t.Fatalf("non-GET payload should not match: %v", entry)
	}
	if dst, _ := obsValue(t, obs, "final-dst"); dst != 0 {
		t.Fatal("unmatched packet must not be rewritten")
	}
}

func TestURLUnknownPathMisses(t *testing.T) {
	app, ctx, tr := setupOn(t, "url", 2)
	p := tr.Packets[0]
	p.Payload = []byte("GET /no/such/path HTTP/1.0\r\nHost: x\r\n\r\n")
	obs := process(t, app, ctx, &p)
	entry, _ := obsValue(t, obs, "url-entry")
	if int32(uint32(entry)) >= 0 {
		t.Fatalf("unknown path matched entry %d", int32(uint32(entry)))
	}
}

func TestURLEmptyPayload(t *testing.T) {
	app, ctx, tr := setupOn(t, "url", 2)
	p := tr.Packets[0]
	p.Payload = nil
	obs := process(t, app, ctx, &p)
	if entry, ok := obsValue(t, obs, "url-entry"); !ok || entry != ^uint64(0) {
		t.Fatalf("empty payload should be a parse miss, got %v", entry)
	}
}

func TestNATUnknownSourceDropped(t *testing.T) {
	app, ctx, tr := setupOn(t, "nat", 2)
	p := tr.Packets[0]
	p.Src = 0xfefefefe // never inserted in the NAT table
	obs := process(t, app, ctx, &p)
	if trans, ok := obsValue(t, obs, "translated-src"); !ok || trans != 0 {
		t.Fatalf("unknown source should be dropped, translated = %v", trans)
	}
}

func TestDRRRingOverflowDrops(t *testing.T) {
	// Saturate one queue: drr drops rather than corrupting its ring.
	app, ctx, tr := setupOn(t, "drr", 2)
	p := tr.Packets[0]
	p.Payload = make([]byte, 1500) // bigger than the 512-byte quantum
	for i := 0; i < 80; i++ {      // ring capacity is 32
		buf := dma(t, ctx, &p)
		if err := app.Process(ctx, &p, buf); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		ctx.Rec.EndPacket()
	}
	// All observations must be well-formed; no runaway deficit.
	for i, rec := range ctx.Rec.Packets {
		if v, ok := obsValue(t, rec.Obs, "deficit-value"); ok && v > 1<<20 {
			t.Fatalf("packet %d: deficit %d exploded", i, v)
		}
	}
}

func TestCRCEmptyPayload(t *testing.T) {
	app, ctx, tr := setupOn(t, "crc", 2)
	p := tr.Packets[0]
	p.Payload = nil
	obs := process(t, app, ctx, &p)
	if _, ok := obsValue(t, obs, "crc-accumulator"); !ok {
		t.Fatal("crc of header-only packet missing")
	}
}

func TestMD5PaddingBoundaries(t *testing.T) {
	// Message lengths that straddle the RFC 1321 padding edge cases:
	// 35 and 36 bytes of payload put the total at 55/56 bytes, around the
	// one-block/two-block boundary; 44 makes exactly 64.
	app, ctx, tr := setupOn(t, "md5", 2)
	for _, n := range []int{35, 36, 44, 108} {
		p := tr.Packets[0]
		p.Payload = make([]byte, n)
		for i := range p.Payload {
			p.Payload[i] = byte(i)
		}
		obs := process(t, app, ctx, &p)
		h := p.Header()
		want := md5Reference(append(h[:], p.Payload...))
		got := make([]uint32, 0, 4)
		for _, o := range obs {
			if o.Name == "md5-digest" {
				got = append(got, uint32(o.Value))
			}
		}
		if len(got) != 4 {
			t.Fatalf("payload %d: %d digest words", n, len(got))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("payload %d: digest word %d = %#x, want %#x", n, i, got[i], want[i])
			}
		}
	}
}

func TestTLUnroutableDestination(t *testing.T) {
	app, ctx, tr := setupOn(t, "tl", 2)
	p := tr.Packets[0]
	p.Dst = 0 // 0.0.0.0 matches no prefix (lengths are >= 8)
	obs := process(t, app, ctx, &p)
	entry, ok := obsValue(t, obs, "route-entry")
	if !ok {
		t.Fatal("route-entry observation missing")
	}
	if entry>>8 != 0 {
		t.Fatalf("unroutable destination resolved to %d", entry>>8)
	}
}

func TestExtrasListsADPCM(t *testing.T) {
	extras := Extras()
	found := false
	for _, n := range extras {
		if n == "adpcm" {
			found = true
		}
		for _, p := range Names() {
			if p == n {
				t.Fatalf("extra %q also in the paper set", n)
			}
		}
	}
	if !found {
		t.Fatalf("adpcm missing from extras: %v", extras)
	}
}

func TestADPCMEncodesAgainstReference(t *testing.T) {
	app, ctx, tr := setupOn(t, "adpcm", 3)
	for i := range tr.Packets {
		p := &tr.Packets[i]
		obs := process(t, app, ctx, p)
		stream, ok := obsValue(t, obs, "adpcm-stream")
		if !ok {
			t.Fatal("stream digest missing")
		}
		pred, ok := obsValue(t, obs, "adpcm-predictor")
		if !ok {
			t.Fatal("predictor missing")
		}
		wantStream, wantPred := adpcmReference(p.Payload)
		if stream != wantStream {
			t.Fatalf("packet %d: stream digest %#x, want %#x", i, stream, wantStream)
		}
		if uint32(pred) != wantPred {
			t.Fatalf("packet %d: predictor %#x, want %#x", i, pred, wantPred)
		}
	}
}

// adpcmReference is an independent host-side IMA ADPCM encoder producing
// the same digest the app observes.
func adpcmReference(payload []byte) (uint64, uint32) {
	pred, idx := int32(0), int32(0)
	var digest uint64
	for s := 0; s+1 < len(payload); s += 2 {
		sample := int32(int16(uint16(payload[s]) | uint16(payload[s+1])<<8))
		step := int32(imaStepTable[idx])
		diff := sample - pred
		var code int32
		if diff < 0 {
			code = 8
			diff = -diff
		}
		var delta int32
		if diff >= step {
			code |= 4
			diff -= step
			delta += step
		}
		if diff >= step/2 {
			code |= 2
			diff -= step / 2
			delta += step / 2
		}
		if diff >= step/4 {
			code |= 1
			delta += step / 4
		}
		delta += step / 8
		if code&8 != 0 {
			delta = -delta
		}
		pred = clamp32(pred+delta, -32768, 32767)
		idx = clamp32(idx+imaIndexTable[code&15], 0, int32(len(imaStepTable)-1))
		digest = digest*31 + uint64(code&15)
	}
	return digest, uint32(pred)
}

func TestADPCMRunsOnClumsyProcessor(t *testing.T) {
	// The extension workload must run end-to-end through the processor
	// harness like the paper's seven.
	rec := runApp(t, "adpcm", 30)
	if len(rec.Packets) != 30 {
		t.Fatalf("processed %d packets", len(rec.Packets))
	}
}

func TestURLPathAtMaxLength(t *testing.T) {
	// A request path exactly at the parser's register-window limit must
	// parse without error and simply miss the table.
	app, ctx, tr := setupOn(t, "url", 2)
	p := tr.Packets[0]
	long := "GET /"
	for len(long) < 4+urlMaxPath+8 {
		long += "x"
	}
	p.Payload = []byte(long + " HTTP/1.0\r\n\r\n")
	obs := process(t, app, ctx, &p)
	if entry, ok := obsValue(t, obs, "url-entry"); !ok || int32(uint32(entry)) >= 0 {
		t.Fatalf("oversized path should miss, entry = %v", entry)
	}
}

func TestMD5EmptyPayload(t *testing.T) {
	app, ctx, tr := setupOn(t, "md5", 2)
	p := tr.Packets[0]
	p.Payload = nil
	obs := process(t, app, ctx, &p)
	h := p.Header()
	want := md5Reference(h[:])
	got := make([]uint32, 0, 4)
	for _, o := range obs {
		if o.Name == "md5-digest" {
			got = append(got, uint32(o.Value))
		}
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("digest word %d = %#x, want %#x", i, got[i], want[i])
		}
	}
}

func TestADPCMOddPayload(t *testing.T) {
	// An odd-length payload leaves a trailing byte unencoded; the codec
	// must not read past it.
	app, ctx, tr := setupOn(t, "adpcm", 2)
	p := tr.Packets[0]
	p.Payload = []byte{1, 2, 3}
	obs := process(t, app, ctx, &p)
	if _, ok := obsValue(t, obs, "adpcm-stream"); !ok {
		t.Fatal("stream digest missing for odd payload")
	}
}
