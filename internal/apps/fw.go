package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// fwApp is a stateful firewall/ACL: the first packet of a flow walks an
// ordered rule list (first match wins) and, when admitted, installs a
// connection-tracking record in a simmem.StateTable; subsequent packets
// of an established flow short-circuit the ACL on a table hit. The
// connection table is cross-packet state a contained drop cannot fully
// recover — exactly the structure the state-integrity machinery
// (checksums, scrub, recovery ladder) exists to protect.
//
// All inter-packet state lives in the simulated space and the table's
// shadow (which the processor commits/rolls back at packet boundaries);
// the Go fields below are wiring fixed during Setup, so ResetScratch has
// nothing to discard.
//
//lint:checkpoint ResetScratch
type fwApp struct {
	//lint:ephemeral wiring fixed during Setup; flow state lives in the table
	st *simmem.StateTable
	//lint:ephemeral layout constant fixed during Setup
	rules simmem.Addr
	//lint:ephemeral layout constant fixed during Setup
	ruleCount uint32
}

func init() { Register("fw", func() App { return &fwApp{} }) }

func (a *fwApp) Name() string { return "fw" }

// StateTable implements StatefulApp.
func (a *fwApp) StateTable() *simmem.StateTable { return a.st }

// ResetScratch implements ScratchResetter; every Go field is immutable
// after Setup, so containment has nothing host-side to unwind.
func (a *fwApp) ResetScratch() {}

const (
	fwRuleCount = 64
	fwRecords   = 256 // power of two
	fwProbeMax  = 8

	// Connection-record payload words.
	fwKey   = 0 // flow key, 0 = empty
	fwPkts  = 1
	fwBytes = 2
	fwTTL   = 3
	fwVerd  = 4
	fwWords = 5

	// Rule layout (words): dst address, dst mask, action (1 = allow).
	fwRuleWords = 3

	fwVerdictMalformed = 0
	fwVerdictDeny      = 1
	fwVerdictAllow     = 2
	fwVerdictEstab     = 3
)

const (
	fwBlkHash = iota
	fwBlkProbe
	fwBlkACL
	fwBlkUpdate
)

// TraceConfig: destinations drawn from the canonical prefix population so
// the ACL rules partition real traffic.
func (a *fwApp) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{
		Packets: packets, Flows: 96, PayloadMin: 40, PayloadMax: 160,
		Prefixes: routingPrefixes(fwRuleCount), Seed: seed,
	}
}

// fwHash mixes a flow key into a home slot.
func fwHash(key uint32) uint32 {
	h := key
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	return h & (fwRecords - 1)
}

func (a *fwApp) Setup(ctx *Context, tr *packet.Trace) error {
	// Rule list: one rule per canonical prefix, every third one a deny.
	prefixes := routingPrefixes(fwRuleCount)
	a.ruleCount = fwRuleCount
	rules, err := ctx.Space.Alloc(fwRuleCount*fwRuleWords*4, 8)
	if err != nil {
		return err
	}
	a.rules = rules
	var digest uint64
	for i, p := range prefixes {
		if err := ctx.Exec.Step(fwBlkACL, 9); err != nil {
			return err
		}
		action := uint32(fwVerdictAllow)
		if i%3 == 0 {
			action = fwVerdictDeny
		}
		base := rules + simmem.Addr(i*fwRuleWords*4)
		if err := ctx.Mem.Store32(base, p.Addr&p.Mask()); err != nil {
			return err
		}
		if err := ctx.Mem.Store32(base+4, p.Mask()); err != nil {
			return err
		}
		if err := ctx.Mem.Store32(base+8, action); err != nil {
			return err
		}
		digest ^= uint64(p.Addr&p.Mask()) + uint64(action)<<32
	}
	ctx.Rec.Observe("fw-rules", digest)

	// Connection table: empty at start of day; the data plane populates
	// it, which is what makes its state unrecoverable by rollback alone.
	st, err := simmem.NewStateTable(ctx.Space, fwRecords, fwWords)
	if err != nil {
		return err
	}
	a.st = st
	return st.Init(ctx.Mem)
}

// acl walks the rule list in order and returns the verdict for dst.
func (a *fwApp) acl(ctx *Context, dst uint32) (uint32, error) {
	for i := uint32(0); i < a.ruleCount; i++ {
		if err := ctx.Exec.Step(fwBlkACL, 5); err != nil {
			return 0, err
		}
		base := a.rules + simmem.Addr(i*fwRuleWords*4)
		addr, err := ctx.Mem.Load32(base)
		if err != nil {
			return 0, err
		}
		mask, err := ctx.Mem.Load32(base + 4)
		if err != nil {
			return 0, err
		}
		if dst&mask != addr {
			continue
		}
		action, err := ctx.Mem.Load32(base + 8)
		if err != nil {
			return 0, err
		}
		// A corrupted action word must not invent a verdict the rule
		// compiler never wrote.
		if action != fwVerdictAllow && action != fwVerdictDeny {
			return fwVerdictDeny, nil
		}
		return action, nil
	}
	// Default allow: the deny rules carve exceptions out of open traffic.
	return fwVerdictAllow, nil
}

func (a *fwApp) Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error {
	hdr, ok, err := parseHeader(ctx, p, buf)
	if err != nil {
		return err
	}
	if !ok {
		ctx.Rec.Observe("fw-verdict", fwVerdictMalformed)
		ctx.Rec.Observe("fw-flow", 0)
		return nil
	}
	key := hdr.flowKey()
	if err := ctx.Exec.Step(fwBlkHash, 8); err != nil {
		return err
	}

	// Connection-track lookup: verified reads through the state table.
	h := fwHash(key)
	slot := -1 // first empty slot seen, the insertion point
	for probe := uint32(0); probe < fwProbeMax; probe++ {
		if err := ctx.Exec.Step(fwBlkProbe, 6); err != nil {
			return err
		}
		idx := int((h + probe) & (fwRecords - 1))
		rec, err := a.st.Lookup(ctx.Mem, idx)
		if err != nil {
			return err
		}
		if rec[fwKey] == 0 {
			slot = idx
			break
		}
		if rec[fwKey] == key {
			// Established flow: refresh the record, skip the ACL.
			if err := ctx.Exec.Step(fwBlkUpdate, 10); err != nil {
				return err
			}
			pkts := rec[fwPkts] + 1
			bytes := rec[fwBytes] + uint32(hdr.Wire)
			if err := a.st.StoreField(ctx.Mem, idx, fwPkts, pkts); err != nil {
				return err
			}
			if err := a.st.StoreField(ctx.Mem, idx, fwBytes, bytes); err != nil {
				return err
			}
			if err := a.st.StoreField(ctx.Mem, idx, fwTTL, uint32(hdr.TTL)); err != nil {
				return err
			}
			if err := a.st.Seal(ctx.Mem, idx); err != nil {
				return err
			}
			ctx.Rec.Observe("fw-verdict", fwVerdictEstab)
			ctx.Rec.Observe("fw-flow", uint64(key)<<8|uint64(pkts&0xff))
			return nil
		}
	}

	// New flow: consult the ACL.
	verdict, err := a.acl(ctx, hdr.Dst)
	if err != nil {
		return err
	}
	ctx.Rec.Observe("fw-verdict", uint64(verdict))
	if verdict != fwVerdictAllow {
		ctx.Rec.Observe("fw-flow", 0)
		return nil
	}
	// Install the connection record; under table pressure the home slot
	// is overwritten (the real firewall would evict by LRU).
	if slot < 0 {
		slot = int(h)
	}
	if err := ctx.Exec.Step(fwBlkUpdate, 12); err != nil {
		return err
	}
	if err := a.st.StoreField(ctx.Mem, slot, fwKey, key); err != nil {
		return err
	}
	if err := a.st.StoreField(ctx.Mem, slot, fwPkts, 1); err != nil {
		return err
	}
	if err := a.st.StoreField(ctx.Mem, slot, fwBytes, uint32(hdr.Wire)); err != nil {
		return err
	}
	if err := a.st.StoreField(ctx.Mem, slot, fwTTL, uint32(hdr.TTL)); err != nil {
		return err
	}
	if err := a.st.StoreField(ctx.Mem, slot, fwVerd, verdict); err != nil {
		return err
	}
	if err := a.st.Seal(ctx.Mem, slot); err != nil {
		return err
	}
	ctx.Rec.Observe("fw-flow", uint64(key)<<8|1)
	return nil
}
