package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/radix"
	"clumsy/internal/simmem"
)

// urlApp implements URL-based destination switching: a content-aware load
// balancer that parses the HTTP request line of each packet, matches the
// request path against a URL table, rewrites the destination to the server
// handling that content, and routes the result. Observed values follow
// Section 2: URL table entries (control plane), the final destination, the
// RouteTable entries, the checksum, the TTL, and the traversed radix nodes.
type urlApp struct {
	table   *radix.Table
	strings simmem.Addr // packed NUL-terminated URL strings
	offsets simmem.Addr // per-entry offset of the string
	dests   simmem.Addr // per-entry destination server
	n       uint32
	paths   []string
}

func init() { Register("url", func() App { return &urlApp{} }) }

func (a *urlApp) Name() string { return "url" }

const (
	urlPrefixes = 350
	urlMaxPath  = 64 // longest matchable path

	// urlMaxTableBytes bounds the packed string table; offsets beyond it
	// are rejected as corrupt.
	urlMaxTableBytes = 1 << 16
)

const (
	urlBlkInsert = iota
	urlBlkParse
	urlBlkMatch
	urlBlkRewrite
	urlBlkNode
)

// TraceConfig: all packets carry HTTP GETs; payload parsing plus a large
// URL table give url the paper's highest access count and miss rate.
func (a *urlApp) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{
		Packets: packets, Flows: 192, PayloadMin: 300, PayloadMax: 1200,
		HTTPFraction: 1.0, Prefixes: routingPrefixes(urlPrefixes), Seed: seed,
	}
}

func (a *urlApp) Setup(ctx *Context, tr *packet.Trace) error {
	tab, err := radix.New(ctx.Space, ctx.Mem)
	if err != nil {
		return err
	}
	a.table = tab
	prefixes := routingPrefixes(urlPrefixes)
	for i, p := range prefixes {
		if err := ctx.Exec.Step(urlBlkInsert, 14); err != nil {
			return err
		}
		if err := tab.Insert(ctx.Mem, p, uint32(i+1), uint32(i%8)); err != nil {
			return err
		}
	}

	a.paths = packet.DefaultURLPaths
	a.n = uint32(len(a.paths))
	total := 0
	for _, s := range a.paths {
		total += len(s) + 1
	}
	a.strings, err = ctx.Space.Alloc(total, 4)
	if err != nil {
		return err
	}
	a.offsets, err = ctx.Space.Alloc(int(a.n)*4, 4)
	if err != nil {
		return err
	}
	a.dests, err = ctx.Space.Alloc(int(a.n)*4, 4)
	if err != nil {
		return err
	}
	off := uint32(0)
	var digest uint64
	for i, s := range a.paths {
		if err := simmem.StoreString(ctx.Mem, a.strings+simmem.Addr(off), s); err != nil {
			return err
		}
		if err := ctx.Mem.Store32(a.offsets+simmem.Addr(i*4), off); err != nil {
			return err
		}
		dest := prefixes[i%len(prefixes)].Addr | 0x0101 // a server inside a routed prefix
		if err := ctx.Mem.Store32(a.dests+simmem.Addr(i*4), dest); err != nil {
			return err
		}
		digest ^= uint64(dest) + uint64(off)<<32
		off += uint32(len(s) + 1)
		if err := ctx.Exec.Step(urlBlkInsert, 8); err != nil {
			return err
		}
	}
	ctx.Rec.Observe("url-table", digest)
	return nil
}

func (a *urlApp) Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error {
	payload := buf + packet.HeaderLen
	payloadLen := len(p.Payload)

	// Parse the request line: expect "GET <path> ".
	if err := ctx.Exec.Step(urlBlkParse, 4); err != nil {
		return err
	}
	ok := true
	for i, want := range []byte("GET ") {
		if i >= payloadLen {
			ok = false
			break
		}
		b, err := ctx.Mem.Load8(payload + simmem.Addr(i))
		if err != nil {
			return err
		}
		if b != want {
			ok = false
			break
		}
	}
	if !ok {
		ctx.Rec.Observe("url-entry", ^uint64(0))
		ctx.Rec.Observe("final-dst", 0)
		return nil
	}
	// Extract the path into a scratch area of registers (host slice — it
	// models the parser's register window, not a data structure).
	var path [urlMaxPath]byte
	plen := 0
	for ; plen < urlMaxPath; plen++ {
		idx := 4 + plen
		if idx >= payloadLen {
			break
		}
		b, err := ctx.Mem.Load8(payload + simmem.Addr(idx))
		if err != nil {
			return err
		}
		if b == ' ' || b == 0 || b == '\r' {
			break
		}
		path[plen] = b
		if err := ctx.Exec.Step(urlBlkParse, 3); err != nil {
			return err
		}
	}

	// Match against the URL table: compare strings byte-by-byte through
	// the cache.
	match := -1
	for e := uint32(0); e < a.n && match < 0; e++ {
		if err := ctx.Exec.Step(urlBlkMatch, 5); err != nil {
			return err
		}
		strOff, err := ctx.Mem.Load32(a.offsets + simmem.Addr(e*4))
		if err != nil {
			return err
		}
		if strOff > urlMaxTableBytes {
			// A corrupted offset: the table code rejects it and treats the
			// entry as a mismatch (a silent error), as bounds-checked
			// production code would.
			continue
		}
		base := a.strings + simmem.Addr(strOff)
		same := true
		for i := 0; i <= plen && i < urlMaxPath+1; i++ {
			tb, err := ctx.Mem.Load8(base + simmem.Addr(i))
			if err != nil {
				return err
			}
			var pb byte
			if i < plen {
				pb = path[i]
			}
			if tb != pb {
				same = false
				break
			}
			if err := ctx.Exec.Step(urlBlkMatch, 3); err != nil {
				return err
			}
		}
		if same {
			match = int(e)
		}
	}
	ctx.Rec.Observe("url-entry", uint64(uint32(match)))
	if match < 0 {
		ctx.Rec.Observe("final-dst", 0)
		return nil
	}

	// Scan the remainder of the request for the end of the header block
	// (content-aware switches inspect the full request); the scan streams
	// every payload byte through the data cache.
	headerEnd := payloadLen
	run := 0
	for i := 4 + plen; i < payloadLen; i++ {
		b, err := ctx.Mem.Load8(payload + simmem.Addr(i))
		if err != nil {
			return err
		}
		if b == '\r' || b == '\n' {
			run++
			if run == 4 {
				headerEnd = i + 1
				break
			}
		} else {
			run = 0
		}
		if err := ctx.Exec.Step(urlBlkParse, 3); err != nil {
			return err
		}
	}
	ctx.Rec.Observe("header-end", uint64(headerEnd))

	// Rewrite the destination to the content server and patch TTL and
	// checksum as a router would.
	dest, err := ctx.Mem.Load32(a.dests + simmem.Addr(match*4))
	if err != nil {
		return err
	}
	for i := 0; i < 4; i++ {
		if err := ctx.Mem.Store8(buf+simmem.Addr(16+i), byte(dest>>uint(24-8*i))); err != nil {
			return err
		}
	}
	ttl, err := ctx.Mem.Load8(buf + 8)
	if err != nil {
		return err
	}
	if ttl > 0 {
		ttl--
	}
	if err := ctx.Mem.Store8(buf+8, ttl); err != nil {
		return err
	}
	ctx.Rec.Observe("ttl", uint64(ttl))

	// Recompute the header checksum over the rewritten header.
	if err := ctx.Mem.Store8(buf+10, 0); err != nil {
		return err
	}
	if err := ctx.Mem.Store8(buf+11, 0); err != nil {
		return err
	}
	var sum uint32
	for off := 0; off < packet.HeaderLen; off += 2 {
		w, err := loadHeaderWord16(ctx, buf, off)
		if err != nil {
			return err
		}
		sum += uint32(w)
		if err := ctx.Exec.Step(urlBlkRewrite, 4); err != nil {
			return err
		}
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	ck := ^uint16(sum)
	if err := ctx.Mem.Store8(buf+10, byte(ck>>8)); err != nil {
		return err
	}
	if err := ctx.Mem.Store8(buf+11, byte(ck)); err != nil {
		return err
	}
	ctx.Rec.Observe("checksum", uint64(ck))

	// Route toward the content server.
	res, err := a.table.Lookup(ctx.Mem, dest, func(node simmem.Addr) error {
		return ctx.Exec.Step(urlBlkNode, 7)
	})
	if err != nil {
		return err
	}
	ctx.Rec.Observe("radix-walk", uint64(res.Steps)<<8|uint64(res.PrefixLen))
	ctx.Rec.Observe("final-dst", uint64(dest)<<8|uint64(res.NextHop&0xff))
	return ctx.Exec.Step(urlBlkRewrite, 6)
}
