package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// md5App computes the RFC 1321 message digest of every outgoing packet (the
// signature checked at the destination). The sine-constant table, the
// per-round shift amounts, and the running digest state all live in
// simulated memory; errors in MD5 are binary — any corrupted bit anywhere
// avalanches into a different digest (Section 2).
type md5App struct {
	k     simmem.Addr // 64 sine constants
	s     simmem.Addr // 64 shift amounts
	state simmem.Addr // 4-word digest state
}

func init() { Register("md5", func() App { return &md5App{} }) }

func (a *md5App) Name() string { return "md5" }

const (
	md5BlkInit = iota
	md5BlkPad
	md5BlkRound
	md5BlkFinish
)

// TraceConfig: large payloads; md5 is compute-bound with a hot constants
// table, giving it the paper's high instruction count per packet.
func (a *md5App) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{
		Packets: packets, Flows: 64, PayloadMin: 200, PayloadMax: 600, Seed: seed,
	}
}

// md5K holds floor(2^32 * abs(sin(i+1))) for i in 0..63 (RFC 1321).
var md5K = [64]uint32{
	0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
	0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
	0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
	0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
	0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
	0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
	0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
	0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
	0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
	0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
	0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
}

// md5S holds the per-operation left-rotation amounts.
var md5S = [64]uint32{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

func (a *md5App) Setup(ctx *Context, tr *packet.Trace) error {
	var err error
	a.k, err = ctx.Space.Alloc(64*4, 4)
	if err != nil {
		return err
	}
	a.s, err = ctx.Space.Alloc(64*4, 4)
	if err != nil {
		return err
	}
	a.state, err = ctx.Space.Alloc(4*4, 4)
	if err != nil {
		return err
	}
	var digest uint64
	for i := 0; i < 64; i++ {
		if err := ctx.Mem.Store32(a.k+simmem.Addr(i*4), md5K[i]); err != nil {
			return err
		}
		if err := ctx.Mem.Store32(a.s+simmem.Addr(i*4), md5S[i]); err != nil {
			return err
		}
		if err := ctx.Exec.Step(md5BlkInit, 4); err != nil {
			return err
		}
	}
	// Control-plane observation: read back the constant tables.
	for i := 0; i < 64; i++ {
		k, err := ctx.Mem.Load32(a.k + simmem.Addr(i*4))
		if err != nil {
			return err
		}
		s, err := ctx.Mem.Load32(a.s + simmem.Addr(i*4))
		if err != nil {
			return err
		}
		digest += uint64(k) ^ uint64(s)<<32
	}
	ctx.Rec.Observe("md5-tables", digest)
	return nil
}

func rotl(x uint32, s uint32) uint32 { return x<<(s&31) | x>>((32-s)&31) }

func (a *md5App) Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error {
	// Initialise the digest state in memory.
	init := [4]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}
	for i, v := range init {
		if err := ctx.Mem.Store32(a.state+simmem.Addr(i*4), v); err != nil {
			return err
		}
	}
	if err := ctx.Exec.Step(md5BlkInit, 6); err != nil {
		return err
	}

	msgLen := packet.HeaderLen + len(p.Payload)
	// Padded length: message + 1 byte 0x80 + zeros + 8-byte length, to a
	// multiple of 64.
	padded := (msgLen + 8 + 64) &^ 63

	var block [16]uint32
	for base := 0; base < padded; base += 64 {
		// Assemble one 512-bit block from the packet bytes in memory,
		// applying RFC 1321 padding on the fly.
		for w := 0; w < 16; w++ {
			var v uint32
			for byteI := 0; byteI < 4; byteI++ {
				idx := base + w*4 + byteI
				var bb byte
				switch {
				case idx < msgLen:
					var err error
					bb, err = ctx.Mem.Load8(buf + simmem.Addr(idx))
					if err != nil {
						return err
					}
				case idx == msgLen:
					bb = 0x80
				case idx >= padded-8:
					shift := uint(idx-(padded-8)) * 8
					bb = byte(uint64(msgLen*8) >> shift)
				}
				v |= uint32(bb) << uint(8*byteI)
			}
			block[w] = v
			if err := ctx.Exec.Step(md5BlkPad, 6); err != nil {
				return err
			}
		}

		// Load the chaining state.
		var st [4]uint32
		for i := range st {
			v, err := ctx.Mem.Load32(a.state + simmem.Addr(i*4))
			if err != nil {
				return err
			}
			st[i] = v
		}
		aa, bbv, cc, dd := st[0], st[1], st[2], st[3]
		for i := 0; i < 64; i++ {
			var f uint32
			var g int
			switch {
			case i < 16:
				f = bbv&cc | ^bbv&dd
				g = i
			case i < 32:
				f = dd&bbv | ^dd&cc
				g = (5*i + 1) & 15
			case i < 48:
				f = bbv ^ cc ^ dd
				g = (3*i + 5) & 15
			default:
				f = cc ^ (bbv | ^dd)
				g = (7 * i) & 15
			}
			k, err := ctx.Mem.Load32(a.k + simmem.Addr(i*4))
			if err != nil {
				return err
			}
			s, err := ctx.Mem.Load32(a.s + simmem.Addr(i*4))
			if err != nil {
				return err
			}
			f += aa + k + block[g]
			aa = dd
			dd = cc
			cc = bbv
			bbv += rotl(f, s)
			if err := ctx.Exec.Step(md5BlkRound, 9); err != nil {
				return err
			}
		}
		st[0] += aa
		st[1] += bbv
		st[2] += cc
		st[3] += dd
		for i, v := range st {
			if err := ctx.Mem.Store32(a.state+simmem.Addr(i*4), v); err != nil {
				return err
			}
		}
		if err := ctx.Exec.Step(md5BlkFinish, 8); err != nil {
			return err
		}
	}

	// Observe the final digest words: the per-packet signature.
	for i := 0; i < 4; i++ {
		v, err := ctx.Mem.Load32(a.state + simmem.Addr(i*4))
		if err != nil {
			return err
		}
		ctx.Rec.Observe("md5-digest", uint64(v))
	}
	return nil
}
