package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/radix"
	"clumsy/internal/simmem"
)

// drrApp implements deficit round-robin scheduling after Shreedhar and
// Varghese: every connection through the router has its own queue, a
// quantum is added to the deficit counter of each visited queue, and
// packets are released while the deficit covers them. The queues, deficit
// list, and classification table all live in simulated memory; the paper's
// observed values are the RouteTable entries, the traversed radix nodes,
// the deficit value, and the deficit information read for each packet.
type drrApp struct {
	table  *radix.Table
	queues simmem.Addr // per-flow queue descriptors
	ring   simmem.Addr // shared ring storage for queued packet lengths
	nq     uint32
}

func init() { Register("drr", func() App { return &drrApp{} }) }

func (a *drrApp) Name() string { return "drr" }

const (
	drrPrefixes = 200
	drrQueues   = 64  // flow queues
	drrRingCap  = 32  // queued lengths per flow
	drrQuantum  = 512 // bytes added per round

	// Queue descriptor layout (words): deficit, head, tail, count.
	qDeficit = 0
	qHead    = 4
	qTail    = 8
	qCount   = 12
	qDescLen = 16
)

const (
	drrBlkClassify = iota
	drrBlkEnqueue
	drrBlkSchedule
	drrBlkDequeue
	drrBlkNode
)

// TraceConfig: many flows, small packets — a scheduling-bound workload.
func (a *drrApp) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{
		Packets: packets, Flows: 128, PayloadMin: 64, PayloadMax: 512,
		Prefixes: routingPrefixes(drrPrefixes), Seed: seed,
	}
}

func (a *drrApp) Setup(ctx *Context, tr *packet.Trace) error {
	tab, err := radix.New(ctx.Space, ctx.Mem)
	if err != nil {
		return err
	}
	a.table = tab
	prefixes := routingPrefixes(drrPrefixes)
	for i, p := range prefixes {
		if err := ctx.Exec.Step(drrBlkClassify, 14); err != nil {
			return err
		}
		if err := tab.Insert(ctx.Mem, p, uint32(i+1), uint32(i%8)); err != nil {
			return err
		}
	}

	a.nq = drrQueues
	a.queues, err = ctx.Space.Alloc(drrQueues*qDescLen, 8)
	if err != nil {
		return err
	}
	a.ring, err = ctx.Space.Alloc(drrQueues*drrRingCap*4, 8)
	if err != nil {
		return err
	}
	var digest uint64
	for q := uint32(0); q < drrQueues; q++ {
		base := a.queues + simmem.Addr(q*qDescLen)
		for off := simmem.Addr(0); off < qDescLen; off += 4 {
			if err := ctx.Mem.Store32(base+off, 0); err != nil {
				return err
			}
		}
		if err := ctx.Exec.Step(drrBlkEnqueue, 6); err != nil {
			return err
		}
		digest += uint64(q)
	}
	ctx.Rec.Observe("deficit-list", digest) // initial (all-zero) deficit list identity
	// Read back a routing sample.
	for i := 0; i < len(prefixes); i += 16 {
		res, err := tab.Lookup(ctx.Mem, prefixes[i].Addr, nil)
		if err != nil {
			return err
		}
		ctx.Rec.Observe("routetable-entry", uint64(res.NextHop))
	}
	return nil
}

func (a *drrApp) qword(q uint32, off simmem.Addr) simmem.Addr {
	return a.queues + simmem.Addr(q*qDescLen) + off
}

func (a *drrApp) Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error {
	// Classify: radix lookup on the destination selects the output route;
	// the flow queue is chosen from the source address.
	var dst uint32
	for i := 0; i < 4; i++ {
		b, err := ctx.Mem.Load8(buf + simmem.Addr(16+i))
		if err != nil {
			return err
		}
		dst = dst<<8 | uint32(b)
	}
	res, err := a.table.Lookup(ctx.Mem, dst, func(node simmem.Addr) error {
		return ctx.Exec.Step(drrBlkNode, 7)
	})
	if err != nil {
		return err
	}
	ctx.Rec.Observe("radix-walk", uint64(res.Steps)<<8|uint64(res.PrefixLen))
	ctx.Rec.Observe("routetable-entry", uint64(res.NextHop))

	var src uint32
	for i := 0; i < 4; i++ {
		b, err := ctx.Mem.Load8(buf + simmem.Addr(12+i))
		if err != nil {
			return err
		}
		src = src<<8 | uint32(b)
	}
	q := src % a.nq
	if err := ctx.Exec.Step(drrBlkClassify, 8); err != nil {
		return err
	}

	// Enqueue the packet length, dropping when the ring is full (a router
	// drops packets under pressure; this is normal DRR behaviour).
	count, err := ctx.Mem.Load32(a.qword(q, qCount))
	if err != nil {
		return err
	}
	size := uint32(packet.HeaderLen + len(p.Payload))
	if count < drrRingCap {
		tail, err := ctx.Mem.Load32(a.qword(q, qTail))
		if err != nil {
			return err
		}
		slot := a.ring + simmem.Addr((q*drrRingCap+tail%drrRingCap)*4)
		if err := ctx.Mem.Store32(slot, size); err != nil {
			return err
		}
		if err := ctx.Mem.Store32(a.qword(q, qTail), (tail+1)%drrRingCap); err != nil {
			return err
		}
		if err := ctx.Mem.Store32(a.qword(q, qCount), count+1); err != nil {
			return err
		}
	}
	if err := ctx.Exec.Step(drrBlkEnqueue, 10); err != nil {
		return err
	}

	// Service the queue: one DRR visit. The deficit information read for
	// the packet and the resulting deficit are both observed values.
	deficit, err := ctx.Mem.Load32(a.qword(q, qDeficit))
	if err != nil {
		return err
	}
	ctx.Rec.Observe("deficit-read", uint64(deficit))
	deficit += drrQuantum
	for {
		if err := ctx.Exec.Step(drrBlkSchedule, 6); err != nil {
			return err
		}
		cnt, err := ctx.Mem.Load32(a.qword(q, qCount))
		if err != nil {
			return err
		}
		if cnt == 0 {
			deficit = 0 // an empty queue forfeits its deficit
			break
		}
		head, err := ctx.Mem.Load32(a.qword(q, qHead))
		if err != nil {
			return err
		}
		slot := a.ring + simmem.Addr((q*drrRingCap+head%drrRingCap)*4)
		headLen, err := ctx.Mem.Load32(slot)
		if err != nil {
			return err
		}
		if headLen > deficit {
			break
		}
		deficit -= headLen
		if err := ctx.Mem.Store32(a.qword(q, qHead), (head+1)%drrRingCap); err != nil {
			return err
		}
		if err := ctx.Mem.Store32(a.qword(q, qCount), cnt-1); err != nil {
			return err
		}
		if err := ctx.Exec.Step(drrBlkDequeue, 8); err != nil {
			return err
		}
	}
	if err := ctx.Mem.Store32(a.qword(q, qDeficit), deficit); err != nil {
		return err
	}
	ctx.Rec.Observe("deficit-value", uint64(deficit))
	return nil
}
