package apps

import (
	"hash/crc32"
	"testing"

	"clumsy/internal/metrics"
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// nopExec satisfies Exec without bounds (golden-style runs), optionally
// counting instructions.
type nopExec struct {
	instrs int
	limit  int // 0 = unlimited
	err    error
}

func (e *nopExec) Step(block, n int) error {
	e.instrs += n
	if e.limit > 0 && e.instrs > e.limit {
		return errBudget
	}
	return nil
}

var errBudget = &simmem.AccessError{Op: "budget", Reason: "test budget exceeded"}

// testCtx builds a golden context over a fresh space.
func testCtx(t *testing.T) (*Context, *nopExec) {
	t.Helper()
	space := simmem.NewSpace(64 << 20)
	e := &nopExec{}
	return &Context{Space: space, Mem: space, Rec: metrics.NewRecorder(), Exec: e}, e
}

// dma places a packet into the context's space.
func dma(t *testing.T, ctx *Context, p *packet.Packet) simmem.Addr {
	t.Helper()
	size := (packet.HeaderLen + len(p.Payload) + 31) &^ 31
	buf, err := ctx.Space.Alloc(size, 32)
	if err != nil {
		t.Fatal(err)
	}
	h := p.Header()
	if err := ctx.Space.WriteBlock(buf, h[:]); err != nil {
		t.Fatal(err)
	}
	if len(p.Payload) > 0 {
		if err := ctx.Space.WriteBlock(buf+packet.HeaderLen, p.Payload); err != nil {
			t.Fatal(err)
		}
	}
	return buf
}

// runApp sets up the app on a small trace and processes all packets,
// returning the recorder.
func runApp(t *testing.T, name string, packets int) *metrics.Recorder {
	t.Helper()
	app, err := New(name)
	if err != nil {
		t.Fatal(err)
	}
	ctx, _ := testCtx(t)
	tr := packet.MustGenerate(app.TraceConfig(packets, 42))
	if err := app.Setup(ctx, tr); err != nil {
		t.Fatalf("%s setup: %v", name, err)
	}
	ctx.Rec.BeginPackets()
	for i := range tr.Packets {
		buf := dma(t, ctx, &tr.Packets[i])
		if err := app.Process(ctx, &tr.Packets[i], buf); err != nil {
			t.Fatalf("%s packet %d: %v", name, i, err)
		}
		ctx.Rec.EndPacket()
	}
	return ctx.Rec
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"crc", "tl", "route", "drr", "nat", "md5", "url"}
	if len(names) != len(want) {
		t.Fatalf("registered %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order %v, want %v", names, want)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Fatal("unknown app should error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	Register("crc", func() App { return nil })
}

func TestAllAppsProduceObservations(t *testing.T) {
	for _, name := range Names() {
		rec := runApp(t, name, 25)
		if len(rec.Packets) != 25 {
			t.Errorf("%s recorded %d packets", name, len(rec.Packets))
		}
		for i, p := range rec.Packets {
			if len(p.Obs) == 0 {
				t.Errorf("%s packet %d has no observations", name, i)
				break
			}
		}
		if len(rec.Init) == 0 {
			t.Errorf("%s has no control-plane observations", name)
		}
	}
}

func TestCRCMatchesStdlib(t *testing.T) {
	app, _ := New("crc")
	ctx, _ := testCtx(t)
	tr := packet.MustGenerate(app.TraceConfig(5, 7))
	if err := app.Setup(ctx, tr); err != nil {
		t.Fatal(err)
	}
	ctx.Rec.BeginPackets()
	for i := range tr.Packets {
		p := &tr.Packets[i]
		buf := dma(t, ctx, p)
		if err := app.Process(ctx, p, buf); err != nil {
			t.Fatal(err)
		}
		ctx.Rec.EndPacket()
		h := p.Header()
		want := crc32.ChecksumIEEE(append(h[:], p.Payload...))
		obs := ctx.Rec.Packets[i].Obs
		got := obs[len(obs)-1]
		if got.Name != "crc-accumulator" || uint32(got.Value) != want {
			t.Fatalf("packet %d crc = %#x (%s), want %#x", i, got.Value, got.Name, want)
		}
	}
}

func TestMD5MatchesStdlib(t *testing.T) {
	app, _ := New("md5")
	ctx, _ := testCtx(t)
	tr := packet.MustGenerate(app.TraceConfig(4, 9))
	if err := app.Setup(ctx, tr); err != nil {
		t.Fatal(err)
	}
	ctx.Rec.BeginPackets()
	for i := range tr.Packets {
		p := &tr.Packets[i]
		buf := dma(t, ctx, p)
		if err := app.Process(ctx, p, buf); err != nil {
			t.Fatal(err)
		}
		ctx.Rec.EndPacket()
		h := p.Header()
		want := md5Reference(append(h[:], p.Payload...))
		obs := ctx.Rec.Packets[i].Obs
		if len(obs) < 4 {
			t.Fatalf("packet %d: %d observations", i, len(obs))
		}
		for w := 0; w < 4; w++ {
			o := obs[len(obs)-4+w]
			if o.Name != "md5-digest" || uint32(o.Value) != want[w] {
				t.Fatalf("packet %d digest word %d = %#x, want %#x", i, w, o.Value, want[w])
			}
		}
	}
}

func TestRouteChecksumAndTTL(t *testing.T) {
	app, _ := New("route")
	ctx, _ := testCtx(t)
	tr := packet.MustGenerate(app.TraceConfig(30, 3))
	if err := app.Setup(ctx, tr); err != nil {
		t.Fatal(err)
	}
	ctx.Rec.BeginPackets()
	for i := range tr.Packets {
		p := &tr.Packets[i]
		buf := dma(t, ctx, p)
		if err := app.Process(ctx, p, buf); err != nil {
			t.Fatal(err)
		}
		ctx.Rec.EndPacket()
		obs := ctx.Rec.Packets[i].Obs
		if obs[0].Name != "checksum" || obs[0].Value != 0xffff {
			t.Fatalf("packet %d: incoming checksum observation %v, want folded 0xffff", i, obs[0])
		}
		if obs[1].Name != "ttl" || uint8(obs[1].Value) != p.TTL-1 {
			t.Fatalf("packet %d: ttl obs %v, want %d", i, obs[1], p.TTL-1)
		}
		// The rewritten header in memory must checksum to 0xffff again.
		hdr := make([]byte, packet.HeaderLen)
		if err := ctx.Space.ReadBlock(buf, hdr); err != nil {
			t.Fatal(err)
		}
		var sum uint32
		for off := 0; off < len(hdr); off += 2 {
			sum += uint32(hdr[off])<<8 | uint32(hdr[off+1])
		}
		for sum>>16 != 0 {
			sum = sum&0xffff + sum>>16
		}
		if uint16(sum) != 0xffff {
			t.Fatalf("packet %d: rewritten header does not verify", i)
		}
		if hdr[8] != p.TTL-1 {
			t.Fatalf("packet %d: TTL in memory %d, want %d", i, hdr[8], p.TTL-1)
		}
	}
}

func TestRouteFindsRoutes(t *testing.T) {
	rec := runApp(t, "route", 60)
	misses := 0
	for _, p := range rec.Packets {
		for _, o := range p.Obs {
			if o.Name == "route-entry" && o.Value == 0 {
				misses++
			}
		}
	}
	// Destinations are drawn from the table's prefixes: lookups resolve
	// except for the rare TTL-expired drops.
	if misses > 5 {
		t.Fatalf("%d of 60 packets failed to route", misses)
	}
}

func TestNATTranslates(t *testing.T) {
	rec := runApp(t, "nat", 50)
	for i, p := range rec.Packets {
		var init, trans uint64
		ok := false
		for _, o := range p.Obs {
			switch o.Name {
			case "initial-src":
				init = o.Value
			case "translated-src":
				trans = o.Value
				ok = true
			}
		}
		if !ok {
			t.Fatalf("packet %d: no translation observed", i)
		}
		if trans == 0 {
			t.Fatalf("packet %d: untranslated (src %#x)", i, init)
		}
		if trans>>24 != 0x05 {
			t.Fatalf("packet %d: translated src %#x outside the public pool", i, trans)
		}
		if trans&0x00ffffff != init&0x00ffffff {
			t.Fatalf("packet %d: translation %#x does not preserve host bits of %#x", i, trans, init)
		}
	}
}

func TestDRRConservesPackets(t *testing.T) {
	// Every enqueued byte is eventually dequeued or still queued: the
	// deficit observations must be internally consistent (non-negative,
	// bounded by quantum + max packet size).
	rec := runApp(t, "drr", 200)
	for i, p := range rec.Packets {
		for _, o := range p.Obs {
			if o.Name == "deficit-value" && o.Value > 4096 {
				t.Fatalf("packet %d: runaway deficit %d", i, o.Value)
			}
		}
	}
}

func TestURLMatchesAndRewrites(t *testing.T) {
	rec := runApp(t, "url", 40)
	matched := 0
	for i, p := range rec.Packets {
		for _, o := range p.Obs {
			if o.Name == "url-entry" {
				if int32(o.Value) >= 0 {
					matched++
				}
			}
			if o.Name == "final-dst" && o.Value != 0 {
				if int32(o.Value>>40) < 0 {
					t.Fatalf("packet %d: negative destination", i)
				}
			}
		}
	}
	if matched < 35 {
		t.Fatalf("only %d of 40 HTTP requests matched the URL table", matched)
	}
}

func TestTLWalksTable(t *testing.T) {
	rec := runApp(t, "tl", 60)
	for i, p := range rec.Packets {
		var steps uint64
		for _, o := range p.Obs {
			if o.Name == "radix-walk" {
				steps = o.Value >> 8
			}
		}
		if steps < 1 || steps > 33 {
			t.Fatalf("packet %d: %d radix steps", i, steps)
		}
	}
}

func TestWatchdogPropagates(t *testing.T) {
	// An execution budget exceeded inside Step aborts processing.
	app, _ := New("crc")
	ctx, e := testCtx(t)
	tr := packet.MustGenerate(app.TraceConfig(1, 1))
	if err := app.Setup(ctx, tr); err != nil {
		t.Fatal(err)
	}
	e.limit = e.instrs + 10 // allow almost nothing for the packet
	buf := dma(t, ctx, &tr.Packets[0])
	if err := app.Process(ctx, &tr.Packets[0], buf); err == nil {
		t.Fatal("budget exhaustion should propagate out of Process")
	}
}

func TestDeterministicObservations(t *testing.T) {
	for _, name := range []string{"route", "nat", "url"} {
		a := runApp(t, name, 20)
		b := runApp(t, name, 20)
		if len(a.Packets) != len(b.Packets) {
			t.Fatalf("%s: packet counts differ", name)
		}
		for i := range a.Packets {
			ao, bo := a.Packets[i].Obs, b.Packets[i].Obs
			if len(ao) != len(bo) {
				t.Fatalf("%s packet %d: observation counts differ", name, i)
			}
			for j := range ao {
				if ao[j] != bo[j] {
					t.Fatalf("%s packet %d obs %d: %v != %v", name, i, j, ao[j], bo[j])
				}
			}
		}
	}
}

// md5Reference computes the RFC 1321 digest as four little-endian words
// using an independent implementation (table-free, computed constants).
func md5Reference(msg []byte) [4]uint32 {
	s := [64]uint32{
		7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
		5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
		4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
		6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
	}
	st := [4]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}
	ml := len(msg)
	padded := append(append([]byte{}, msg...), 0x80)
	for len(padded)%64 != 56 {
		padded = append(padded, 0)
	}
	for i := 0; i < 8; i++ {
		padded = append(padded, byte(uint64(ml*8)>>(8*i)))
	}
	for base := 0; base < len(padded); base += 64 {
		var m [16]uint32
		for w := 0; w < 16; w++ {
			for b := 0; b < 4; b++ {
				m[w] |= uint32(padded[base+w*4+b]) << (8 * b)
			}
		}
		a, b, c, d := st[0], st[1], st[2], st[3]
		for i := 0; i < 64; i++ {
			var f uint32
			var g int
			switch {
			case i < 16:
				f, g = b&c|^b&d, i
			case i < 32:
				f, g = d&b|^d&c, (5*i+1)&15
			case i < 48:
				f, g = b^c^d, (3*i+5)&15
			default:
				f, g = c^(b|^d), (7*i)&15
			}
			f += a + md5K[i] + m[g]
			a, d, c = d, c, b
			b += f<<(s[i]&31) | f>>((32-s[i])&31)
		}
		st[0] += a
		st[1] += b
		st[2] += c
		st[3] += d
	}
	return st
}
