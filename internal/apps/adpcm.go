package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/simmem"
)

// adpcmApp is an extension workload beyond the paper's NetBench seven: an
// IMA ADPCM speech encoder, the classic MediaBench kernel. The paper notes
// its ideas "can be applied to any type of processor that executes
// applications with fault resiliency (e.g., media processors)"; this
// workload makes that claim testable. The encoder's step-size and index
// tables and its predictor state live in simulated memory; a corrupted
// table entry turns into audible noise (a silent, value-level error), and
// the codec clamps its index like real implementations do, so corruption
// degrades quality rather than crashing.
type adpcmApp struct {
	stepTable  simmem.Addr // 89 x 32-bit step sizes
	indexTable simmem.Addr // 16 x 32-bit index deltas
	state      simmem.Addr // predictor (word 0), index (word 1)
}

func init() { Register("adpcm", func() App { return &adpcmApp{} }) }

func (a *adpcmApp) Name() string { return "adpcm" }

const (
	adpcmBlkInit = iota
	adpcmBlkSample
	adpcmBlkFinish
)

// TraceConfig: voice-like frames, 160 samples (320 bytes) per packet as in
// 20 ms G.711 framing.
func (a *adpcmApp) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{
		Packets: packets, Flows: 32, PayloadMin: 320, PayloadMax: 320, Seed: seed,
	}
}

// imaStepTable is the 89-entry IMA ADPCM step-size table.
var imaStepTable = [89]uint32{
	7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
	41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
	190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
	724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
	2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894, 6484,
	7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289, 16818,
	18500, 20350, 22385, 24623, 27086, 29794, 32767,
}

// imaIndexTable is the 16-entry index adjustment table.
var imaIndexTable = [16]int32{
	-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8,
}

func (a *adpcmApp) Setup(ctx *Context, tr *packet.Trace) error {
	var err error
	a.stepTable, err = ctx.Space.Alloc(len(imaStepTable)*4, 4)
	if err != nil {
		return err
	}
	a.indexTable, err = ctx.Space.Alloc(len(imaIndexTable)*4, 4)
	if err != nil {
		return err
	}
	a.state, err = ctx.Space.Alloc(8, 4)
	if err != nil {
		return err
	}
	var digest uint64
	for i, v := range imaStepTable {
		if err := ctx.Mem.Store32(a.stepTable+simmem.Addr(i*4), v); err != nil {
			return err
		}
		digest += uint64(v)
		if err := ctx.Exec.Step(adpcmBlkInit, 2); err != nil {
			return err
		}
	}
	for i, v := range imaIndexTable {
		if err := ctx.Mem.Store32(a.indexTable+simmem.Addr(i*4), uint32(v)); err != nil {
			return err
		}
		digest ^= uint64(uint32(v)) << (i & 31)
	}
	ctx.Rec.Observe("adpcm-tables", digest)
	return nil
}

func clamp32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (a *adpcmApp) Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error {
	// Reset the codec per packet (packet loss must not desynchronise the
	// stream — standard practice for ADPCM over RTP).
	if err := ctx.Mem.Store32(a.state, 0); err != nil {
		return err
	}
	if err := ctx.Mem.Store32(a.state+4, 0); err != nil {
		return err
	}
	if err := ctx.Exec.Step(adpcmBlkInit, 4); err != nil {
		return err
	}

	payload := buf + packet.HeaderLen
	samples := len(p.Payload) / 2
	var outDigest uint64
	for s := 0; s < samples; s++ {
		lo, err := ctx.Mem.Load8(payload + simmem.Addr(2*s))
		if err != nil {
			return err
		}
		hi, err := ctx.Mem.Load8(payload + simmem.Addr(2*s+1))
		if err != nil {
			return err
		}
		sample := int32(int16(uint16(lo) | uint16(hi)<<8))

		predRaw, err := ctx.Mem.Load32(a.state)
		if err != nil {
			return err
		}
		idxRaw, err := ctx.Mem.Load32(a.state + 4)
		if err != nil {
			return err
		}
		pred := int32(predRaw)
		// The index is clamped on every use: a corrupted stored index
		// degrades the encoding but cannot escape the table.
		idx := clamp32(int32(idxRaw), 0, int32(len(imaStepTable)-1))
		step, err := ctx.Mem.Load32(a.stepTable + simmem.Addr(idx*4))
		if err != nil {
			return err
		}

		diff := sample - pred
		var code uint32
		if diff < 0 {
			code = 8
			diff = -diff
		}
		st := int32(step)
		var delta int32
		if diff >= st {
			code |= 4
			diff -= st
			delta += st
		}
		if diff >= st/2 {
			code |= 2
			diff -= st / 2
			delta += st / 2
		}
		if diff >= st/4 {
			code |= 1
			delta += st / 4
		}
		delta += st / 8
		if code&8 != 0 {
			delta = -delta
		}
		pred = clamp32(pred+delta, -32768, 32767)

		adjRaw, err := ctx.Mem.Load32(a.indexTable + simmem.Addr((code&15)*4))
		if err != nil {
			return err
		}
		idx = clamp32(idx+int32(adjRaw), 0, int32(len(imaStepTable)-1))

		if err := ctx.Mem.Store32(a.state, uint32(pred)); err != nil {
			return err
		}
		if err := ctx.Mem.Store32(a.state+4, uint32(idx)); err != nil {
			return err
		}
		outDigest = outDigest*31 + uint64(code&15)
		if err := ctx.Exec.Step(adpcmBlkSample, 14); err != nil {
			return err
		}
	}
	// The encoded nibble stream and the final predictor are the observed
	// values: any corrupted table entry or state word changes them.
	ctx.Rec.Observe("adpcm-stream", outDigest)
	final, err := ctx.Mem.Load32(a.state)
	if err != nil {
		return err
	}
	ctx.Rec.Observe("adpcm-predictor", uint64(final))
	return ctx.Exec.Step(adpcmBlkFinish, 3)
}
