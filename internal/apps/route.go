package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/radix"
	"clumsy/internal/simmem"
)

// routeApp implements IPv4 forwarding per RFC 1812: header checksum
// verification, TTL handling with incremental checksum update, and a
// longest-prefix match for the next hop. The observed values follow
// Figure 6: the created RouteTable entries (control plane), the checksum,
// the TTL, the radix-tree entries traversed, and the route entry per
// packet.
type routeApp struct {
	table *radix.Table
}

func init() { Register("route", func() App { return &routeApp{} }) }

func (a *routeApp) Name() string { return "route" }

const routePrefixes = 300

const (
	routeBlkInsert = iota
	routeBlkChecksum
	routeBlkTTL
	routeBlkNode
	routeBlkForward
)

// TraceConfig: mixed small/medium packets over the routing prefixes.
func (a *routeApp) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{
		Packets: packets, Flows: 128, PayloadMin: 40, PayloadMax: 200,
		Prefixes: routingPrefixes(routePrefixes), Seed: seed,
	}
}

func (a *routeApp) Setup(ctx *Context, tr *packet.Trace) error {
	tab, err := radix.New(ctx.Space, ctx.Mem)
	if err != nil {
		return err
	}
	a.table = tab
	prefixes := routingPrefixes(routePrefixes)
	for i, p := range prefixes {
		if err := ctx.Exec.Step(routeBlkInsert, 14); err != nil {
			return err
		}
		if err := tab.Insert(ctx.Mem, p, uint32(i+1), uint32(i%8)); err != nil {
			return err
		}
	}
	// Observe the created RouteTable entries (Figure 6's "RouteTable
	// Entry" structure covers both planes; the control-plane share is the
	// read-back of what initialisation built).
	for i := 0; i < len(prefixes); i += 8 {
		res, err := tab.Lookup(ctx.Mem, prefixes[i].Addr, nil)
		if err != nil {
			return err
		}
		ctx.Rec.Observe("routetable-entry", uint64(res.NextHop)<<8|uint64(res.Iface))
	}
	return nil
}

// loadHeaderWord16 reads a big-endian 16-bit header field from memory.
func loadHeaderWord16(ctx *Context, buf simmem.Addr, off int) (uint16, error) {
	hi, err := ctx.Mem.Load8(buf + simmem.Addr(off))
	if err != nil {
		return 0, err
	}
	lo, err := ctx.Mem.Load8(buf + simmem.Addr(off+1))
	if err != nil {
		return 0, err
	}
	return uint16(hi)<<8 | uint16(lo), nil
}

func (a *routeApp) Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error {
	// 1. Verify the header checksum (RFC 1812 5.2.2) over the 20 bytes in
	// memory, 16 bits at a time.
	var sum uint32
	for off := 0; off < packet.HeaderLen; off += 2 {
		w, err := loadHeaderWord16(ctx, buf, off)
		if err != nil {
			return err
		}
		sum += uint32(w)
		if err := ctx.Exec.Step(routeBlkChecksum, 4); err != nil {
			return err
		}
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
		if err := ctx.Exec.Step(routeBlkChecksum, 2); err != nil {
			return err
		}
	}
	ctx.Rec.Observe("checksum", uint64(uint16(sum))) // 0xffff when intact

	// 2. TTL: drop at <= 1, otherwise decrement in place and patch the
	// checksum incrementally (RFC 1624).
	ttl, err := ctx.Mem.Load8(buf + 8)
	if err != nil {
		return err
	}
	if err := ctx.Exec.Step(routeBlkTTL, 3); err != nil {
		return err
	}
	if ttl <= 1 {
		ctx.Rec.Observe("ttl", uint64(ttl))
		ctx.Rec.Observe("route-entry", 0) // dropped
		return nil
	}
	if err := ctx.Mem.Store8(buf+8, ttl-1); err != nil {
		return err
	}
	ck, err := loadHeaderWord16(ctx, buf, 10)
	if err != nil {
		return err
	}
	// HC' = ~(~HC + ~m + m') with m the old ttl/proto word, m' the new.
	oldWord := uint32(ttl)<<8 | uint32(p.Proto)
	newWord := uint32(ttl-1)<<8 | uint32(p.Proto)
	s := uint32(^ck&0xffff) + (^oldWord & 0xffff) + newWord
	for s>>16 != 0 {
		s = s&0xffff + s>>16
	}
	newCk := ^uint16(s)
	if err := ctx.Mem.Store8(buf+10, byte(newCk>>8)); err != nil {
		return err
	}
	if err := ctx.Mem.Store8(buf+11, byte(newCk)); err != nil {
		return err
	}
	if err := ctx.Exec.Step(routeBlkTTL, 9); err != nil {
		return err
	}
	ctx.Rec.Observe("ttl", uint64(ttl-1))

	// 3. Longest-prefix match on the destination read from memory.
	var dst uint32
	for i := 0; i < 4; i++ {
		b, err := ctx.Mem.Load8(buf + simmem.Addr(16+i))
		if err != nil {
			return err
		}
		dst = dst<<8 | uint32(b)
	}
	res, err := a.table.Lookup(ctx.Mem, dst, func(node simmem.Addr) error {
		return ctx.Exec.Step(routeBlkNode, 7)
	})
	if err != nil {
		return err
	}
	ctx.Rec.Observe("radix-walk", uint64(res.Steps)<<8|uint64(res.PrefixLen))
	ctx.Rec.Observe("route-entry", uint64(res.NextHop))
	return ctx.Exec.Step(routeBlkForward, 5)
}
