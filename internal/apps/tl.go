package apps

import (
	"clumsy/internal/packet"
	"clumsy/internal/radix"
	"clumsy/internal/simmem"
)

// tlApp is the table-lookup benchmark: the radix-tree routine common to all
// routing processes, taken in NetBench from the FreeBSD kernel. The data
// plane is a bare longest-prefix match per packet; the observed values are
// the traversed radix-tree nodes and the RouteTable entry (Section 2).
type tlApp struct {
	table *radix.Table
}

func init() { Register("tl", func() App { return &tlApp{} }) }

func (a *tlApp) Name() string { return "tl" }

// TraceConfig: small packets whose destinations are drawn from the table's
// own prefixes, so lookups resolve; tl is short and load-dominated.
func (a *tlApp) TraceConfig(packets int, seed uint64) packet.TraceConfig {
	return packet.TraceConfig{
		Packets: packets, Flows: 256, PayloadMin: 20, PayloadMax: 60,
		Prefixes: routingPrefixes(tlPrefixes), Seed: seed,
	}
}

const (
	tlBlkInsert = iota
	tlBlkNode
	tlBlkResult
)

// tlPrefixes is the routing-table size for the tl workload.
const tlPrefixes = 400

func (a *tlApp) Setup(ctx *Context, tr *packet.Trace) error {
	tab, err := radix.New(ctx.Space, ctx.Mem)
	if err != nil {
		return err
	}
	a.table = tab
	prefixes := routingPrefixes(tlPrefixes)
	for i, p := range prefixes {
		if err := ctx.Exec.Step(tlBlkInsert, 12); err != nil {
			return err
		}
		if err := tab.Insert(ctx.Mem, p, uint32(i+1), uint32(i%8)); err != nil {
			return err
		}
	}
	// Read back a sample of entries as the control-plane observation.
	for i := 0; i < len(prefixes); i += 16 {
		res, err := tab.Lookup(ctx.Mem, prefixes[i].Addr, nil)
		if err != nil {
			return err
		}
		ctx.Rec.Observe("route-entry", uint64(res.NextHop))
	}
	return nil
}

func (a *tlApp) Process(ctx *Context, p *packet.Packet, buf simmem.Addr) error {
	// Read the destination address out of the packet header in memory.
	d0, err := ctx.Mem.Load8(buf + 16)
	if err != nil {
		return err
	}
	d1, err := ctx.Mem.Load8(buf + 17)
	if err != nil {
		return err
	}
	d2, err := ctx.Mem.Load8(buf + 18)
	if err != nil {
		return err
	}
	d3, err := ctx.Mem.Load8(buf + 19)
	if err != nil {
		return err
	}
	dst := uint32(d0)<<24 | uint32(d1)<<16 | uint32(d2)<<8 | uint32(d3)
	if err := ctx.Exec.Step(tlBlkResult, 6); err != nil {
		return err
	}

	res, err := a.table.Lookup(ctx.Mem, dst, func(node simmem.Addr) error {
		return ctx.Exec.Step(tlBlkNode, 7)
	})
	if err != nil {
		return err
	}
	// Section 2's observed values: the radix-tree nodes traversed (the
	// walk is summarised by its length and endpoint — a corrupted pointer
	// changes both) and the RouteTable entry for the packet.
	ctx.Rec.Observe("radix-walk", uint64(res.Steps)<<8|uint64(res.PrefixLen))
	ctx.Rec.Observe("route-entry", uint64(res.NextHop)<<8|uint64(res.Iface))
	return ctx.Exec.Step(tlBlkResult, 3)
}
