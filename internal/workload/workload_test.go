package workload

import (
	"bytes"
	"math"
	"testing"

	"clumsy/internal/packet"
)

func baseTrace(t *testing.T, n int) *packet.Trace {
	t.Helper()
	return packet.MustGenerate(packet.TraceConfig{
		Packets: n, Flows: 16, PayloadMin: 40, PayloadMax: 200, Seed: 0x5eed,
	})
}

func TestParseShapeRoundtrip(t *testing.T) {
	for _, s := range []Shape{ShapeSteady, ShapeDiurnal, ShapeFlash, ShapeOnOff} {
		got, err := ParseShape(s.String())
		if err != nil || got != s {
			t.Errorf("ParseShape(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseShape("tsunami"); err == nil {
		t.Error("unknown shape parsed")
	}
	if _, err := ParseShape(""); err == nil {
		t.Error("empty shape parsed; callers must default explicitly")
	}
}

func TestIdentitySpecReturnsSameTrace(t *testing.T) {
	tr := baseTrace(t, 50)
	if got := (Spec{}).Apply(tr, 7); got != tr {
		t.Error("zero-value spec did not return the input trace unchanged")
	}
	if !(Spec{}).IsZero() || (Spec{Adversarial: 0.1}).IsZero() {
		t.Error("IsZero misclassifies")
	}
}

func TestApplyIsDeterministicInSeed(t *testing.T) {
	tr := baseTrace(t, 200)
	spec := Spec{Shape: ShapeFlash, Adversarial: 0.2, Churn: 0.3}
	a := spec.Apply(tr, 42)
	b := spec.Apply(tr, 42)
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("lengths diverge")
	}
	sameAsInput := true
	for i := range a.Packets {
		pa, pb := &a.Packets[i], &b.Packets[i]
		if pa.Src != pb.Src || pa.SrcPort != pb.SrcPort || pa.DstPort != pb.DstPort ||
			!bytes.Equal(pa.Raw, pb.Raw) {
			t.Fatalf("packet %d differs between identically seeded applications", i)
		}
		orig := &tr.Packets[i]
		if pa.Src != orig.Src || pa.Raw != nil {
			sameAsInput = false
		}
	}
	if sameAsInput {
		t.Fatal("adv=0.2/churn=0.3 over 200 packets mutated nothing")
	}
	// A different seed must mutate a different packet set.
	c := spec.Apply(tr, 43)
	diff := false
	for i := range a.Packets {
		if !bytes.Equal(a.Packets[i].Raw, c.Packets[i].Raw) || a.Packets[i].Src != c.Packets[i].Src {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("seeds 42 and 43 produced identical mutations")
	}
	// The input trace is never modified.
	for i := range tr.Packets {
		if tr.Packets[i].Raw != nil {
			t.Fatal("Apply mutated the input trace")
		}
	}
}

func TestApplyMutationKinds(t *testing.T) {
	tr := baseTrace(t, 400)
	spec := Spec{Adversarial: 0.25, Churn: 0.25}
	out := spec.Apply(tr, 9)
	var truncated, fuzzed, churned int
	for i := range out.Packets {
		p := &out.Packets[i]
		switch {
		case p.Raw != nil && len(p.Raw) < packet.HeaderLen:
			truncated++
		case p.Raw != nil:
			fuzzed++
			hdr := p.Header()
			if bytes.Equal(p.Raw[:packet.HeaderLen], hdr[:]) {
				t.Error("fuzzed image is byte-identical to the canonical header")
			}
		case p.Src != tr.Packets[i].Src:
			churned++
			if p.Src&0xff000000 != 0x0a000000 {
				t.Errorf("churn source %#x outside the 10/8 churn block", p.Src)
			}
		}
	}
	if truncated == 0 || fuzzed == 0 || churned == 0 {
		t.Errorf("mutation mix truncated=%d fuzzed=%d churned=%d; every kind must appear", truncated, fuzzed, churned)
	}
}

func TestRateAtMeanAndFloor(t *testing.T) {
	const samples = 10000
	for _, spec := range []Spec{
		{Shape: ShapeSteady},
		{Shape: ShapeDiurnal},
		{Shape: ShapeFlash},
		{Shape: ShapeOnOff},
		{Shape: ShapeDiurnal, Periods: 5},
	} {
		sum := 0.0
		for i := 0; i < samples; i++ {
			r := spec.RateAt(float64(i) / samples)
			if r < minRate {
				t.Fatalf("%s: rate %g below the floor %g", spec, r, minRate)
			}
			sum += r
		}
		if mean := sum / samples; math.Abs(mean-1) > 0.02 {
			t.Errorf("%s: mean rate %g, want ~1 (shapes redistribute load, not add it)", spec, mean)
		}
	}
	// Out-of-range positions clamp instead of exploding.
	s := Spec{Shape: ShapeDiurnal}
	if r := s.RateAt(-1); r != s.RateAt(0) {
		t.Error("negative position did not clamp to 0")
	}
	if r := s.RateAt(2); math.IsNaN(r) || r < minRate {
		t.Error("position past 1 did not clamp")
	}
}

// TestStackedRateConservation is the regression gate on shape stacking:
// for every pair of stacked shapes the mean rate over the stream must
// stay pinned at 1 — the product profile redistributes load in time, it
// never adds or sheds any.
func TestStackedRateConservation(t *testing.T) {
	const samples = 10000
	shapes := []Shape{ShapeSteady, ShapeDiurnal, ShapeFlash, ShapeOnOff}
	for _, s1 := range shapes {
		for _, s2 := range shapes {
			for _, spec := range []Spec{
				{Shape: s1, Shape2: s2},
				{Shape: s1, Shape2: s2, Periods: 3, Periods2: 5},
			} {
				sum := 0.0
				for i := 0; i < samples; i++ {
					r := spec.RateAt((float64(i) + 0.5) / samples)
					if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
						t.Fatalf("%s: rate %g is not strictly positive and finite", spec, r)
					}
					sum += r
				}
				if mean := sum / samples; math.Abs(mean-1) > 0.01 {
					t.Errorf("%s: stacked mean rate %g, want ~1", spec, mean)
				}
			}
		}
	}
}

// TestStackedSpecIdentityAndFingerprint: a steady second shape is the
// exact unstacked profile (and fingerprint), and a real stack shows up
// in the fingerprint so journal keys distinguish it.
func TestStackedSpecIdentityAndFingerprint(t *testing.T) {
	plain := Spec{Shape: ShapeDiurnal}
	stackedSteady := Spec{Shape: ShapeDiurnal, Shape2: ShapeSteady}
	for i := 0; i < 100; i++ {
		frac := float64(i) / 100
		if plain.RateAt(frac) != stackedSteady.RateAt(frac) {
			t.Fatalf("steady stack changed the profile at %g", frac)
		}
	}
	if plain.String() != stackedSteady.String() {
		t.Errorf("steady stack changed the fingerprint: %q vs %q", plain, stackedSteady)
	}
	stacked := Spec{Shape: ShapeDiurnal, Shape2: ShapeOnOff}
	if got, want := stacked.String(), "diurnal+onoff/adv=0.00/churn=0.00"; got != want {
		t.Errorf("stacked fingerprint = %q, want %q", got, want)
	}
	if stacked.IsZero() {
		t.Error("stacked spec reported as identity")
	}
	if !(Spec{}).IsZero() {
		t.Error("zero spec must stay the identity")
	}
}

func TestChurnClampedAgainstAdversarial(t *testing.T) {
	tr := baseTrace(t, 300)
	// adv+churn > 1: churn gives way, and every packet is still mutated at
	// most once.
	out := Spec{Adversarial: 0.8, Churn: 0.8}.Apply(tr, 3)
	for i := range out.Packets {
		p := &out.Packets[i]
		if p.Raw != nil && p.Src != tr.Packets[i].Src {
			t.Fatalf("packet %d both malformed and churned", i)
		}
	}
}
