// Package workload is the workload-generator v2 substrate: seeded
// temporal shapes (diurnal, flash-crowd, bursty on/off) and adversarial
// packet-stream mutations (truncated headers, header field fuzzing,
// flow-churn floods) layered over the base traces that
// internal/packet generates. The same Spec drives both batch runs
// (clumsy.Run mutates the generated trace) and the fleet arrival process
// (cluster scales inter-arrival gaps by RateAt), so a flash crowd and a
// malformed-packet flood exercise the single-node containment path and
// the fleet admission path from one seeded description.
//
// Everything here is a pure function of (Spec, trace, seed): mutation
// draws from the seeded xorshift RNG in internal/fault and the temporal
// shapes are closed-form, so runs stay byte-deterministic.
package workload

import (
	"fmt"
	"math"
	"sync"

	"clumsy/internal/fault"
	"clumsy/internal/packet"
)

// Shape selects the temporal intensity profile of the workload over the
// course of a trace (batch runs) or an arrival schedule (fleet runs).
//
//lint:exhaustive
type Shape int

const (
	// ShapeSteady is a flat profile: the base trace unmodified in time.
	ShapeSteady Shape = iota
	// ShapeDiurnal is a smooth day/night swing: a sinusoid over Periods
	// cycles with a 4:1 peak-to-trough ratio.
	ShapeDiurnal
	// ShapeFlash is a flash crowd: baseline traffic with a narrow window
	// mid-trace at several times the base rate, where churn and
	// adversarial pressure also concentrate.
	ShapeFlash
	// ShapeOnOff is a bursty on/off source: square-wave alternation
	// between an active and a near-idle half-period.
	ShapeOnOff
)

// String names the shape for reports and journal fingerprints.
func (s Shape) String() string {
	switch s {
	case ShapeSteady:
		return "steady"
	case ShapeDiurnal:
		return "diurnal"
	case ShapeFlash:
		return "flash"
	case ShapeOnOff:
		return "onoff"
	}
	return fmt.Sprintf("shape(%d)", int(s))
}

// ParseShape maps a shape name back to its value.
func ParseShape(s string) (Shape, error) {
	switch s {
	case "steady":
		return ShapeSteady, nil
	case "diurnal":
		return ShapeDiurnal, nil
	case "flash":
		return ShapeFlash, nil
	case "onoff":
		return ShapeOnOff, nil
	}
	return 0, fmt.Errorf("workload: unknown shape %q (want steady, diurnal, flash, or onoff)", s)
}

// Spec describes one workload-v2 stream. The zero value is the identity:
// steady shape, no adversarial traffic, no churn — Apply returns the
// trace unchanged and RateAt is the constant 1.
type Spec struct {
	// Shape is the temporal intensity profile.
	Shape Shape
	// Periods is the number of shape cycles across the trace
	// (0 = shape-specific default: 2 diurnal cycles, 8 on/off bursts).
	Periods int
	// Shape2 optionally stacks a second profile on the first: the local
	// rate is the product of the two shapes, renormalized so the mean
	// over the stream stays pinned at 1 (a diurnal swing with on/off
	// bursts riding on it carries the same total load as either alone).
	// ShapeSteady (the zero value) means no stacking.
	Shape2 Shape
	// Periods2 is the cycle count of the stacked shape (0 = that shape's
	// default).
	Periods2 int
	// Adversarial is the fraction of packets replaced by malformed wire
	// images: truncated headers and fuzzed header fields. Clamped to
	// [0, 1].
	Adversarial float64
	// Churn is the fraction of packets rewritten into fresh one-packet
	// flows — the flow-churn flood that thrashes stateful tables.
	// Clamped to [0, 1-Adversarial].
	Churn float64
}

// String renders the spec for journal Extra fingerprints and reports.
// The stacked shape appears only when present, so every pre-stacking
// fingerprint is unchanged.
func (s Spec) String() string {
	if s.Shape2 != ShapeSteady {
		return fmt.Sprintf("%s+%s/adv=%.2f/churn=%.2f", s.Shape, s.Shape2, s.Adversarial, s.Churn)
	}
	return fmt.Sprintf("%s/adv=%.2f/churn=%.2f", s.Shape, s.Adversarial, s.Churn)
}

// IsZero reports whether the spec is the identity workload.
func (s Spec) IsZero() bool {
	return s.Shape == ShapeSteady && s.Shape2 == ShapeSteady && s.Adversarial == 0 && s.Churn == 0
}

// minRate keeps every profile strictly positive so arrival gaps stay
// finite.
const minRate = 0.25

// defaultPeriods returns a shape's default cycle count.
func defaultPeriods(sh Shape) int {
	switch sh {
	case ShapeSteady, ShapeFlash:
		return 1
	case ShapeDiurnal:
		return 2
	case ShapeOnOff:
		return 8
	}
	return 1
}

// periods returns the effective cycle count of the primary shape.
func (s Spec) periods() int {
	if s.Periods > 0 {
		return s.Periods
	}
	return defaultPeriods(s.Shape)
}

// periods2 returns the effective cycle count of the stacked shape.
func (s Spec) periods2() int {
	if s.Periods2 > 0 {
		return s.Periods2
	}
	return defaultPeriods(s.Shape2)
}

// shapeRate is one profile's raw closed-form intensity: mean 1 over
// [0, 1) for every shape in isolation.
func shapeRate(sh Shape, periods int, frac float64) float64 {
	switch sh {
	case ShapeSteady:
		return 1
	case ShapeDiurnal:
		// 1 + 0.6 sin: swings 0.4x..1.6x, mean 1.
		return 1 + 0.6*math.Sin(2*math.Pi*float64(periods)*frac)
	case ShapeFlash:
		// A 10%-wide window mid-stream at 4x; baseline rescaled so the
		// mean stays 1 (0.9*b + 0.1*4b = 1 => b = 10/13).
		base := 10.0 / 13.0
		if frac >= 0.45 && frac < 0.55 {
			return 4 * base
		}
		return base
	case ShapeOnOff:
		// Square wave: active half-period at 1.75x, idle at 0.25x.
		phase := float64(periods) * frac
		if phase-math.Floor(phase) < 0.5 {
			return 1.75
		}
		return minRate
	}
	return 1
}

// stackNormPoints is the midpoint-rule resolution used to normalize a
// stacked pair of shapes. 1<<12 points resolve the narrowest feature in
// the closed-form profiles (the 10%-wide flash window) to ~0.02% error.
const stackNormPoints = 1 << 12

// stackKey identifies one stacked-shape combination for the norm cache.
type stackKey struct {
	s1, s2 Shape
	p1, p2 int
}

// stackNorms caches the numerically computed mean of each stacked
// product, so RateAt stays cheap on the arrival hot path.
var stackNorms sync.Map // stackKey -> float64

// stackNorm returns the mean of shape1*shape2 over [0, 1), computed once
// per combination by the midpoint rule. Dividing the product by it pins
// the stacked stream's mean rate back at 1: each shape alone conserves
// load, but their product generally does not (the profiles correlate).
func stackNorm(k stackKey) float64 {
	if v, ok := stackNorms.Load(k); ok {
		return v.(float64)
	}
	sum := 0.0
	for i := 0; i < stackNormPoints; i++ {
		frac := (float64(i) + 0.5) / stackNormPoints
		sum += shapeRate(k.s1, k.p1, frac) * shapeRate(k.s2, k.p2, frac)
	}
	norm := sum / stackNormPoints
	stackNorms.Store(k, norm)
	return norm
}

// RateAt returns the relative traffic intensity at fractional position
// frac in [0, 1) of the stream. The mean over the stream is ~1 — for a
// stacked pair the product is renormalized to keep it there — so a fleet
// run with a shaped workload carries the same total load as the steady
// baseline, redistributed in time.
func (s Spec) RateAt(frac float64) float64 {
	if frac < 0 {
		frac = 0
	} else if frac >= 1 {
		frac = math.Nextafter(1, 0)
	}
	r := shapeRate(s.Shape, s.periods(), frac)
	if s.Shape2 != ShapeSteady {
		r *= shapeRate(s.Shape2, s.periods2(), frac)
		r /= stackNorm(stackKey{s1: s.Shape, s2: s.Shape2, p1: s.periods(), p2: s.periods2()})
	}
	return r
}

// intensityAt is the local multiplier applied to the adversarial and
// churn probabilities, so malformed traffic and flow floods concentrate
// where the shape concentrates load (a flash crowd is also when the
// attack traffic arrives).
func (s Spec) intensityAt(frac float64) float64 {
	r := s.RateAt(frac)
	if r < minRate {
		r = minRate
	}
	return r
}

// Apply returns a copy of tr with the spec's mutations applied: a
// deterministic function of (spec, trace, seed). The input trace is not
// modified; packet structs are copied shallowly and mutated packets get
// fresh Raw images, so payload bytes stay shared with the input. The
// identity spec returns tr itself.
func (s Spec) Apply(tr *packet.Trace, seed uint64) *packet.Trace {
	if s.IsZero() || len(tr.Packets) == 0 {
		return tr
	}
	adv := clamp01(s.Adversarial)
	churn := clamp01(s.Churn)
	if adv+churn > 1 {
		churn = 1 - adv
	}
	rng := fault.NewRNG(seed).Fork(0x10ad)
	out := &packet.Trace{Packets: make([]packet.Packet, len(tr.Packets))}
	copy(out.Packets, tr.Packets)
	n := len(out.Packets)
	churnSeq := uint32(0)
	for i := range out.Packets {
		frac := float64(i) / float64(n)
		scale := s.intensityAt(frac)
		u := rng.Float64()
		switch {
		case u < adv*scale:
			malform(&out.Packets[i], rng)
		case u < (adv+churn)*scale:
			churnSeq++
			churnRewrite(&out.Packets[i], churnSeq, rng)
		}
	}
	return out
}

// malform attaches a malformed raw wire image to p: either a truncated
// header or a field-fuzzed full image.
func malform(p *packet.Packet, rng *fault.RNG) {
	hdr := p.Header()
	if rng.Intn(2) == 0 {
		// Truncated header: fewer bytes on the wire than an IPv4 header.
		// make (not append) so k=0 still yields a non-nil empty image — a
		// zero-byte arrival, not a silent fallback to the canonical bytes.
		k := rng.Intn(packet.HeaderLen)
		p.Raw = make([]byte, k)
		copy(p.Raw, hdr[:k])
		return
	}
	// Field fuzz: full image with 1..4 corrupted header bytes. XOR with a
	// non-zero mask guarantees the image differs from the canonical one,
	// so the header checksum (or a field bound) must catch it.
	raw := make([]byte, packet.HeaderLen+len(p.Payload))
	copy(raw, hdr[:])
	copy(raw[packet.HeaderLen:], p.Payload)
	flips := 1 + rng.Intn(4)
	for f := 0; f < flips; f++ {
		off := rng.Intn(packet.HeaderLen)
		raw[off] ^= byte(1 + rng.Intn(255))
	}
	p.Raw = raw
}

// churnRewrite turns p into the first (and only) packet of a fresh flow:
// a new source drawn from a churn address block, with randomized ports.
// The packet stays well-formed — the pressure is on flow-table occupancy,
// not the parser.
func churnRewrite(p *packet.Packet, seq uint32, rng *fault.RNG) {
	p.Raw = nil
	p.Src = 0x0a000000 | (seq & 0x00ffffff) // 10.0.0.0/8 churn block
	p.SrcPort = uint16(1024 + rng.Intn(64512))
	p.DstPort = uint16(1 + rng.Intn(1024))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
