package packet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Trace serialisation: a compact binary format so generated workloads can
// be stored, shared, and replayed byte-identically (the golden/faulty
// comparison depends on both executions seeing the same trace).

// traceMagic identifies the format; the version gate allows evolution.
var traceMagic = [4]byte{'C', 'L', 'T', 'R'}

// Version 1 carries metadata + payload per packet. Version 2 appends an
// optional raw wire image (workload-v2 malformed packets). The writer
// emits version 1 whenever no packet carries a raw image, so traces of
// well-formed workloads stay byte-identical to earlier releases.
const (
	traceVersion   = 1
	traceVersionV2 = 2
)

// maxSerializedPayload bounds per-packet payloads, protecting readers
// against corrupt or hostile files; it comfortably covers jumbo frames.
const maxSerializedPayload = 9216

// Serialize writes the trace in the binary format read by ReadTrace.
func (t *Trace) Serialize(w io.Writer) error {
	version := uint16(traceVersion)
	for i := range t.Packets {
		if t.Packets[i].Raw != nil {
			version = traceVersionV2
			break
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	hdr := []any{version, uint32(len(t.Packets))}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for i := range t.Packets {
		p := &t.Packets[i]
		if len(p.Payload) > maxSerializedPayload {
			return fmt.Errorf("packet: payload of packet %d too large to serialise (%d)", i, len(p.Payload))
		}
		if len(p.Raw) > maxSerializedPayload+HeaderLen {
			return fmt.Errorf("packet: raw image of packet %d too large to serialise (%d)", i, len(p.Raw))
		}
		fields := []any{
			p.Src, p.Dst, p.SrcPort, p.DstPort, p.Proto, p.TTL,
			uint16(len(p.Payload)),
		}
		for _, v := range fields {
			if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
				return err
			}
		}
		if _, err := bw.Write(p.Payload); err != nil {
			return err
		}
		if version == traceVersionV2 {
			hasRaw := uint8(0)
			if p.Raw != nil {
				hasRaw = 1
			}
			if err := binary.Write(bw, binary.LittleEndian, hasRaw); err != nil {
				return err
			}
			if hasRaw == 1 {
				if err := binary.Write(bw, binary.LittleEndian, uint16(len(p.Raw))); err != nil {
					return err
				}
				if _, err := bw.Write(p.Raw); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadTrace deserialises a trace written by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("packet: reading trace magic: %w", err)
	}
	if magic != traceMagic {
		return nil, errors.New("packet: not a clumsy trace file")
	}
	var version uint16
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != traceVersion && version != traceVersionV2 {
		return nil, fmt.Errorf("packet: unsupported trace version %d", version)
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	// Pre-allocate conservatively: the count is attacker-controlled in a
	// corrupt file, so cap the up-front reservation and let append grow
	// the slice if the packets really are there.
	capHint := count
	if capHint > 65536 {
		capHint = 65536
	}
	tr := &Trace{Packets: make([]Packet, 0, capHint)}
	for i := uint32(0); i < count; i++ {
		var p Packet
		var plen uint16
		fields := []any{&p.Src, &p.Dst, &p.SrcPort, &p.DstPort, &p.Proto, &p.TTL, &plen}
		for _, v := range fields {
			if err := binary.Read(br, binary.LittleEndian, v); err != nil {
				return nil, fmt.Errorf("packet: reading packet %d: %w", i, err)
			}
		}
		if int(plen) > maxSerializedPayload {
			return nil, fmt.Errorf("packet: packet %d payload length %d corrupt", i, plen)
		}
		if plen > 0 {
			p.Payload = make([]byte, plen)
			if _, err := io.ReadFull(br, p.Payload); err != nil {
				return nil, fmt.Errorf("packet: reading packet %d payload: %w", i, err)
			}
		}
		if version == traceVersionV2 {
			var hasRaw uint8
			if err := binary.Read(br, binary.LittleEndian, &hasRaw); err != nil {
				return nil, fmt.Errorf("packet: reading packet %d raw flag: %w", i, err)
			}
			if hasRaw == 1 {
				var rlen uint16
				if err := binary.Read(br, binary.LittleEndian, &rlen); err != nil {
					return nil, fmt.Errorf("packet: reading packet %d raw length: %w", i, err)
				}
				if int(rlen) > maxSerializedPayload+HeaderLen {
					return nil, fmt.Errorf("packet: packet %d raw length %d corrupt", i, rlen)
				}
				p.Raw = make([]byte, rlen)
				if _, err := io.ReadFull(br, p.Raw); err != nil {
					return nil, fmt.Errorf("packet: reading packet %d raw image: %w", i, err)
				}
			} else if hasRaw != 0 {
				return nil, fmt.Errorf("packet: packet %d raw flag %d corrupt", i, hasRaw)
			}
		}
		tr.Packets = append(tr.Packets, p)
	}
	return tr, nil
}
