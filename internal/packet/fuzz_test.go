package packet

import (
	"bytes"
	"testing"
)

// FuzzReadTrace hardens the trace reader against corrupt and hostile
// inputs: it must return an error or a valid trace, never panic or
// allocate unboundedly.
func FuzzReadTrace(f *testing.F) {
	// Seed with a valid serialised trace and a few mutations.
	tr := MustGenerate(TraceConfig{Packets: 5, Flows: 2, PayloadMin: 10, PayloadMax: 40, Seed: 1})
	var buf bytes.Buffer
	if err := tr.Serialize(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("CLTR"))
	mutated := append([]byte{}, valid...)
	if len(mutated) > 8 {
		mutated[6] = 0xff // explode the packet count
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed trace must re-serialise.
		var out bytes.Buffer
		if err := got.Serialize(&out); err != nil {
			t.Fatalf("round trip of accepted input failed: %v", err)
		}
	})
}
