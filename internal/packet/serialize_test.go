package packet

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := MustGenerate(TraceConfig{Packets: 300, Flows: 30,
		PayloadMin: 0, PayloadMax: 900, HTTPFraction: 0.4, Seed: 13})
	var buf bytes.Buffer
	if err := orig.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Packets) != len(orig.Packets) {
		t.Fatalf("count %d, want %d", len(back.Packets), len(orig.Packets))
	}
	for i := range orig.Packets {
		a, b := &orig.Packets[i], &back.Packets[i]
		if a.Src != b.Src || a.Dst != b.Dst || a.SrcPort != b.SrcPort ||
			a.DstPort != b.DstPort || a.Proto != b.Proto || a.TTL != b.TTL {
			t.Fatalf("packet %d header differs: %+v vs %+v", i, a, b)
		}
		if !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("packet %d payload differs", i)
		}
	}
}

func TestTraceRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil || len(back.Packets) != 0 {
		t.Fatalf("empty round trip: %v, %d packets", err, len(back.Packets))
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("shrt"),
		[]byte("NOPE0123456789"),
		append([]byte("CLTR"), 0xff, 0xff, 0, 0, 0, 0), // bad version
	}
	for i, b := range cases {
		if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadTraceRejectsTruncation(t *testing.T) {
	orig := MustGenerate(TraceConfig{Packets: 20, Flows: 4, PayloadMin: 64, PayloadMax: 64, Seed: 2})
	var buf bytes.Buffer
	if err := orig.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, 11} {
		if _, err := ReadTrace(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadTraceRejectsHugePayloadLength(t *testing.T) {
	// Hand-craft a header claiming a payload larger than the cap.
	var buf bytes.Buffer
	buf.WriteString("CLTR")
	buf.Write([]byte{1, 0})       // version 1
	buf.Write([]byte{1, 0, 0, 0}) // one packet
	buf.Write(make([]byte, 4+4+2+2+1+1))
	buf.Write([]byte{0xff, 0xff}) // payload length 65535 > cap
	if _, err := ReadTrace(&buf); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("huge payload accepted: %v", err)
	}
}
