package packet

import (
	"bytes"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	orig := MustGenerate(TraceConfig{Packets: 300, Flows: 30,
		PayloadMin: 0, PayloadMax: 900, HTTPFraction: 0.4, Seed: 13})
	var buf bytes.Buffer
	if err := orig.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Packets) != len(orig.Packets) {
		t.Fatalf("count %d, want %d", len(back.Packets), len(orig.Packets))
	}
	for i := range orig.Packets {
		a, b := &orig.Packets[i], &back.Packets[i]
		if a.Src != b.Src || a.Dst != b.Dst || a.SrcPort != b.SrcPort ||
			a.DstPort != b.DstPort || a.Proto != b.Proto || a.TTL != b.TTL {
			t.Fatalf("packet %d header differs: %+v vs %+v", i, a, b)
		}
		if !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("packet %d payload differs", i)
		}
	}
}

// TestTraceVersionGate pins the format evolution contract: a trace with
// no raw wire images serialises as version 1, byte-compatible with
// earlier releases; attaching any raw image switches the writer to
// version 2.
func TestTraceVersionGate(t *testing.T) {
	tr := MustGenerate(TraceConfig{Packets: 10, Flows: 3, PayloadMin: 32, PayloadMax: 64, Seed: 5})
	var v1 bytes.Buffer
	if err := tr.Serialize(&v1); err != nil {
		t.Fatal(err)
	}
	if got := v1.Bytes()[4]; got != 1 {
		t.Fatalf("well-formed trace serialised as version %d, want 1", got)
	}
	tr.Packets[3].Raw = []byte{0x45, 0x00}
	var v2 bytes.Buffer
	if err := tr.Serialize(&v2); err != nil {
		t.Fatal(err)
	}
	if got := v2.Bytes()[4]; got != 2 {
		t.Fatalf("trace with a raw image serialised as version %d, want 2", got)
	}
}

// TestTraceRoundTripRawImages round-trips workload-v2 malformed packets:
// nil (canonical), truncated, empty, and full fuzzed images must all
// survive serialisation distinguishably.
func TestTraceRoundTripRawImages(t *testing.T) {
	orig := MustGenerate(TraceConfig{Packets: 8, Flows: 2, PayloadMin: 16, PayloadMax: 32, Seed: 9})
	orig.Packets[1].Raw = []byte{}                       // zero-byte arrival
	orig.Packets[2].Raw = []byte{0x45, 0x00, 0x00}       // truncated header
	orig.Packets[4].Raw = bytes.Repeat([]byte{0xa5}, 40) // fuzzed full image
	var buf bytes.Buffer
	if err := orig.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig.Packets {
		a, b := &orig.Packets[i], &back.Packets[i]
		if (a.Raw == nil) != (b.Raw == nil) {
			t.Fatalf("packet %d raw nil-ness changed: %v vs %v", i, a.Raw, b.Raw)
		}
		if !bytes.Equal(a.Raw, b.Raw) {
			t.Fatalf("packet %d raw image differs", i)
		}
		if a.WireLen() != b.WireLen() {
			t.Fatalf("packet %d wire length %d != %d", i, a.WireLen(), b.WireLen())
		}
	}
}

func TestTraceRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Trace{}).Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil || len(back.Packets) != 0 {
		t.Fatalf("empty round trip: %v, %d packets", err, len(back.Packets))
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("shrt"),
		[]byte("NOPE0123456789"),
		append([]byte("CLTR"), 0xff, 0xff, 0, 0, 0, 0), // bad version
	}
	for i, b := range cases {
		if _, err := ReadTrace(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestReadTraceRejectsTruncation(t *testing.T) {
	orig := MustGenerate(TraceConfig{Packets: 20, Flows: 4, PayloadMin: 64, PayloadMax: 64, Seed: 2})
	var buf bytes.Buffer
	if err := orig.Serialize(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) / 2, 11} {
		if _, err := ReadTrace(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestReadTraceRejectsHugePayloadLength(t *testing.T) {
	// Hand-craft a header claiming a payload larger than the cap.
	var buf bytes.Buffer
	buf.WriteString("CLTR")
	buf.Write([]byte{1, 0})       // version 1
	buf.Write([]byte{1, 0, 0, 0}) // one packet
	buf.Write(make([]byte, 4+4+2+2+1+1))
	buf.Write([]byte{0xff, 0xff}) // payload length 65535 > cap
	if _, err := ReadTrace(&buf); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("huge payload accepted: %v", err)
	}
}
