package packet

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"clumsy/internal/fault"
)

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: 0001 f203 f4f5 f6f7 -> checksum 0x220d.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(b); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	if Checksum([]byte{0xff}) != ^uint16(0xff00) {
		t.Fatal("odd-length checksum mishandled")
	}
}

func TestHeaderChecksumValidates(t *testing.T) {
	p := Packet{Src: 0x0a000001, Dst: 0xc0a80101, TTL: 64, Proto: ProtoTCP, Payload: make([]byte, 100)}
	h := p.Header()
	// Re-summing the header including its checksum yields zero complement.
	var sum uint32
	for i := 0; i < len(h); i += 2 {
		sum += uint32(h[i])<<8 | uint32(h[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if uint16(sum) != 0xffff {
		t.Fatalf("header does not verify: sum = %#x", sum)
	}
	if h[8] != 64 || h[9] != ProtoTCP {
		t.Fatal("TTL/protocol fields misplaced")
	}
	if int(h[2])<<8|int(h[3]) != HeaderLen+100 {
		t.Fatal("total length field wrong")
	}
}

func TestPrefixContains(t *testing.T) {
	p := Prefix{Addr: 0xc0a80000, Len: 16} // 192.168/16
	if !p.Contains(0xc0a81234) {
		t.Fatal("address inside prefix rejected")
	}
	if p.Contains(0xc0a90000) {
		t.Fatal("address outside prefix accepted")
	}
	if p.String() != "192.168.0.0/16" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestPrefixMaskProperty(t *testing.T) {
	f := func(raw uint32, lnRaw uint8) bool {
		ln := 8 + int(lnRaw)%23 // 8..30
		p := Prefix{Addr: raw, Len: ln}
		m := p.Mask()
		// Mask has exactly ln leading ones.
		ones := 0
		for i := 31; i >= 0 && m&(1<<uint(i)) != 0; i-- {
			ones++
		}
		return ones == ln && p.Contains(p.Addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGeneratePrefixesDistinct(t *testing.T) {
	rng := fault.NewRNG(1)
	ps := GeneratePrefixes(200, rng)
	if len(ps) != 200 {
		t.Fatalf("got %d prefixes", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Len < 8 || p.Len > 24 {
			t.Fatalf("prefix length %d out of range", p.Len)
		}
		if p.Addr&^p.Mask() != 0 {
			t.Fatalf("prefix %v has host bits set", p)
		}
		if seen[p.String()] {
			t.Fatalf("duplicate prefix %v", p)
		}
		seen[p.String()] = true
	}
}

func TestTraceDeterminism(t *testing.T) {
	cfg := TraceConfig{Packets: 500, Flows: 40, PayloadMin: 40, PayloadMax: 200, Seed: 7}
	a := MustGenerate(cfg)
	b := MustGenerate(cfg)
	if len(a.Packets) != len(b.Packets) {
		t.Fatal("lengths differ")
	}
	for i := range a.Packets {
		if a.Packets[i].Src != b.Packets[i].Src || !bytes.Equal(a.Packets[i].Payload, b.Packets[i].Payload) {
			t.Fatalf("packet %d differs between identical seeds", i)
		}
	}
	c := MustGenerate(TraceConfig{Packets: 500, Flows: 40, PayloadMin: 40, PayloadMax: 200, Seed: 8})
	same := 0
	for i := range a.Packets {
		if a.Packets[i].Src == c.Packets[i].Src {
			same++
		}
	}
	if same == len(a.Packets) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestTraceFlowLocality(t *testing.T) {
	// Zipf skew: the most popular flow should carry far more than 1/Flows
	// of the traffic.
	tr := MustGenerate(TraceConfig{Packets: 5000, Flows: 100, PayloadMin: 64, PayloadMax: 64, Seed: 3})
	counts := map[uint32]int{}
	for _, p := range tr.Packets {
		counts[p.Src]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 3*len(tr.Packets)/100 {
		t.Fatalf("top flow carries %d of %d packets; expected heavy skew", max, len(tr.Packets))
	}
}

func TestTraceHTTPPayloads(t *testing.T) {
	tr := MustGenerate(TraceConfig{Packets: 1000, Flows: 50, PayloadMin: 64, PayloadMax: 64,
		HTTPFraction: 1.0, Seed: 5})
	for i, p := range tr.Packets {
		if !strings.HasPrefix(string(p.Payload), "GET /") {
			t.Fatalf("packet %d payload %q is not an HTTP GET", i, p.Payload[:16])
		}
		if p.DstPort != 80 || p.Proto != ProtoTCP {
			t.Fatalf("HTTP packet %d has port %d proto %d", i, p.DstPort, p.Proto)
		}
		if len(p.Payload) < 64 {
			t.Fatalf("payload padded to %d, want >= 64", len(p.Payload))
		}
	}
}

func TestTraceDestinationsInPrefixes(t *testing.T) {
	rng := fault.NewRNG(2)
	prefixes := GeneratePrefixes(32, rng)
	tr := MustGenerate(TraceConfig{Packets: 800, Flows: 60, PayloadMin: 40, PayloadMax: 40,
		Prefixes: prefixes, Seed: 11})
	for i, p := range tr.Packets {
		found := false
		for _, pf := range prefixes {
			if pf.Contains(p.Dst) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("packet %d destination %#x outside every prefix", i, p.Dst)
		}
	}
}

func TestTraceValidation(t *testing.T) {
	bad := []TraceConfig{
		{},
		{Packets: 10},                           // no flows
		{Packets: 10, Flows: 5, PayloadMin: -1}, // bad payload
		{Packets: 10, Flows: 5, PayloadMin: 100, PayloadMax: 50},
		{Packets: 10, Flows: 5, HTTPFraction: 2},
		{Packets: 10, Flows: 5, ZipfS: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should fail: %+v", i, cfg)
		}
	}
}

func TestTraceTTLRange(t *testing.T) {
	tr := MustGenerate(TraceConfig{Packets: 300, Flows: 10, PayloadMin: 40, PayloadMax: 40, Seed: 1})
	for _, p := range tr.Packets {
		if p.TTL < 32 {
			t.Fatalf("TTL %d below minimum", p.TTL)
		}
	}
}
