package packet

import (
	"errors"
	"fmt"

	"clumsy/internal/fault"
)

// TraceConfig describes a synthetic workload.
type TraceConfig struct {
	Packets int     // number of packets to generate
	Flows   int     // active flow population
	ZipfS   float64 // flow popularity skew (1.0 ~ typical internet mix)

	PayloadMin, PayloadMax int // payload size range in bytes

	// HTTPFraction of packets carry an HTTP GET request as payload (used
	// by the url application; others ignore payload semantics).
	HTTPFraction float64
	// URLPaths is the set of request paths HTTP payloads draw from. When
	// empty, DefaultURLPaths is used.
	URLPaths []string

	// Prefixes are the routable destination prefixes; flow destinations
	// are drawn from them so that lookups resolve. When empty, destinations
	// are uniformly random.
	Prefixes []Prefix

	Seed uint64
}

// Validate reports configuration problems.
func (c TraceConfig) Validate() error {
	switch {
	case c.Packets <= 0:
		return errors.New("packet: non-positive packet count")
	case c.Flows <= 0:
		return errors.New("packet: non-positive flow count")
	case c.PayloadMin < 0 || c.PayloadMax < c.PayloadMin:
		return errors.New("packet: bad payload size range")
	case c.HTTPFraction < 0 || c.HTTPFraction > 1:
		return errors.New("packet: HTTP fraction out of [0,1]")
	case c.ZipfS < 0:
		return errors.New("packet: negative Zipf skew")
	}
	return nil
}

// DefaultURLPaths is the path population for URL-switching workloads.
var DefaultURLPaths = []string{
	"/index.html", "/images/logo.gif", "/cgi-bin/query", "/news/today",
	"/static/app.js", "/api/v1/items", "/video/stream", "/download/file.bin",
	"/sports/scores", "/weather/map",
}

// flow is one generated five-tuple with a fixed payload style.
type flow struct {
	src, dst         uint32
	srcPort, dstPort uint16
	proto            uint8
	http             bool
	urlIdx           int
}

// Trace is a reproducible packet sequence.
type Trace struct {
	Packets []Packet
}

// Generate builds the trace deterministically from the seed.
func Generate(cfg TraceConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := fault.NewRNG(cfg.Seed).Fork(0x7ace)
	paths := cfg.URLPaths
	if len(paths) == 0 {
		paths = DefaultURLPaths
	}
	s := cfg.ZipfS
	if s == 0 {
		s = 1.0
	}

	flows := make([]flow, cfg.Flows)
	for i := range flows {
		f := flow{
			src:     rng.Uint32(),
			srcPort: uint16(1024 + rng.Intn(60000)),
			proto:   ProtoUDP,
		}
		if len(cfg.Prefixes) > 0 {
			p := cfg.Prefixes[rng.Intn(len(cfg.Prefixes))]
			f.dst = p.Addr&p.Mask() | rng.Uint32()&^p.Mask()
		} else {
			f.dst = rng.Uint32()
		}
		if rng.Float64() < cfg.HTTPFraction {
			f.http = true
			f.proto = ProtoTCP
			f.dstPort = 80
			f.urlIdx = rng.Intn(len(paths))
		} else {
			f.dstPort = uint16(rng.Intn(1024))
		}
		flows[i] = f
	}

	z := newZipf(cfg.Flows, s)
	tr := &Trace{Packets: make([]Packet, cfg.Packets)}
	for i := 0; i < cfg.Packets; i++ {
		f := flows[z.sample(rng)]
		size := cfg.PayloadMin
		if cfg.PayloadMax > cfg.PayloadMin {
			size += rng.Intn(cfg.PayloadMax - cfg.PayloadMin + 1)
		}
		var payload []byte
		if f.http {
			payload = []byte(fmt.Sprintf("GET %s HTTP/1.0\r\nHost: sw%d.example\r\n\r\n",
				paths[f.urlIdx], f.dst&0xff))
			for len(payload) < size {
				payload = append(payload, byte('a'+len(payload)%26))
			}
		} else {
			payload = make([]byte, size)
			for j := range payload {
				payload[j] = byte(rng.Uint32())
			}
		}
		tr.Packets[i] = Packet{
			Src:     f.src,
			Dst:     f.dst,
			SrcPort: f.srcPort,
			DstPort: f.dstPort,
			Proto:   f.proto,
			TTL:     uint8(32 + rng.Intn(96)),
			Payload: payload,
		}
	}
	return tr, nil
}

// MustGenerate is Generate for static configurations.
func MustGenerate(cfg TraceConfig) *Trace {
	tr, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return tr
}
