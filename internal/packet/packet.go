// Package packet generates the synthetic traffic that drives the NetBench
// applications. The paper used packet traces with the original benchmark
// inputs; this reproduction substitutes seeded generators that produce the
// same signals the applications are sensitive to — IPv4 header fields, flow
// locality (a Zipf-distributed flow population), routable destination
// prefixes, and payload bytes (including HTTP GET requests for URL
// switching).
package packet

import (
	"fmt"
	"math"

	"clumsy/internal/fault"
)

// Protocol numbers used by the generator.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Packet is one IPv4 packet as seen by the applications.
type Packet struct {
	Src, Dst         uint32
	SrcPort, DstPort uint16
	Proto            uint8
	TTL              uint8
	Payload          []byte

	// Raw, when non-nil, is the exact wire image DMA'd into simulated
	// memory in place of the canonical Header()+Payload serialisation —
	// the carrier for workload-v2's malformed packets (truncated or
	// field-fuzzed headers). The metadata fields above still describe the
	// packet the image was derived from; applications must parse the
	// bytes defensively rather than trust them.
	Raw []byte
}

// HeaderLen is the length of the serialised IPv4 header (no options).
const HeaderLen = 20

// WireLen is the number of bytes the packet occupies on the wire: the
// raw image length when one is attached, the canonical header plus
// payload otherwise. This is NIC descriptor metadata — applications may
// trust it even for malformed packets, because the DMA engine knows how
// many bytes it copied.
func (p *Packet) WireLen() int {
	if p.Raw != nil {
		return len(p.Raw)
	}
	return HeaderLen + len(p.Payload)
}

// Header serialises the 20-byte IPv4 header with a correct checksum.
func (p *Packet) Header() [HeaderLen]byte {
	var h [HeaderLen]byte
	total := HeaderLen + len(p.Payload)
	h[0] = 0x45 // version 4, IHL 5
	h[2] = byte(total >> 8)
	h[3] = byte(total)
	h[8] = p.TTL
	h[9] = p.Proto
	h[12] = byte(p.Src >> 24)
	h[13] = byte(p.Src >> 16)
	h[14] = byte(p.Src >> 8)
	h[15] = byte(p.Src)
	h[16] = byte(p.Dst >> 24)
	h[17] = byte(p.Dst >> 16)
	h[18] = byte(p.Dst >> 8)
	h[19] = byte(p.Dst)
	sum := Checksum(h[:])
	h[10] = byte(sum >> 8)
	h[11] = byte(sum)
	return h
}

// Checksum computes the Internet checksum (RFC 1071) of b, assuming the
// checksum field itself is zero.
func Checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Prefix is a routable destination prefix.
type Prefix struct {
	Addr uint32
	Len  int // prefix length in bits, 8..30
}

func (p Prefix) String() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d", p.Addr>>24, p.Addr>>16&0xff, p.Addr>>8&0xff, p.Addr&0xff, p.Len)
}

// Mask returns the network mask of the prefix.
func (p Prefix) Mask() uint32 {
	if p.Len <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(p.Len))
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr uint32) bool {
	return addr&p.Mask() == p.Addr&p.Mask()
}

// GeneratePrefixes produces n distinct prefixes with lengths spread over
// 8..24 bits, suitable for populating a routing table.
func GeneratePrefixes(n int, rng *fault.RNG) []Prefix {
	if n <= 0 {
		panic("packet: non-positive prefix count")
	}
	seen := make(map[uint64]bool, n)
	out := make([]Prefix, 0, n)
	for len(out) < n {
		ln := 8 + rng.Intn(17) // 8..24
		addr := rng.Uint32() & (^uint32(0) << (32 - uint(ln)))
		key := uint64(addr)<<8 | uint64(ln)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, Prefix{Addr: addr, Len: ln})
	}
	return out
}

// zipf samples from a Zipf distribution over [0, n) with skew s, using a
// precomputed CDF (the flow populations are small enough that this is
// cheap and exact).
type zipf struct {
	cdf []float64
}

func newZipf(n int, s float64) *zipf {
	z := &zipf{cdf: make([]float64, n)}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

func (z *zipf) sample(rng *fault.RNG) int {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
