package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"clumsy/internal/telemetry"
)

func TestParallelForVisitsEveryIndex(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 100
	var hits [n]int32
	if err := parallelFor(context.Background(), n, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	err := parallelFor(context.Background(), 50, func(i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelForSerialFallback(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	order := []int{}
	if err := parallelFor(context.Background(), 5, func(i int) error {
		order = append(order, i) // safe: serial path
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestParallelForZero(t *testing.T) {
	if err := parallelFor(context.Background(), 0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("zero-length loop should not invoke fn")
	}
}

// TestParallelForEarlyCancel is the regression test for the early-cancel
// behaviour: after the first error, the feeder must stop issuing new work
// instead of draining the full grid. The old implementation executed all n
// items; the fixed one runs at most a few items per worker.
func TestParallelForEarlyCancel(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 1000
	boom := errors.New("boom")
	errored := make(chan struct{})
	var calls atomic.Int32
	err := parallelFor(context.Background(), n, func(i int) error {
		calls.Add(1)
		if i == 0 {
			close(errored)
			return boom
		}
		// Park the other workers until the failure has fired so the test
		// observes cancellation rather than a fast grid finishing first.
		<-errored
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if got := calls.Load(); got > n/2 {
		t.Fatalf("executed %d of %d items after the first error; early-cancel is not working", got, n)
	}
}

// TestParallelForPanicRecovery is the regression test for worker panic
// containment: a panic inside one grid item must surface as an error naming
// the item's index, not crash the process, on both the parallel and the
// serial path.
func TestParallelForPanicRecovery(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	err := parallelFor(context.Background(), 50, func(i int) error {
		if i == 23 {
			panic("index out of range [12] with length 4")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panicking item must fail the grid")
	}
	if !strings.Contains(err.Error(), "grid item 23") ||
		!strings.Contains(err.Error(), "index out of range") {
		t.Fatalf("panic error must carry the grid index and cause: %v", err)
	}

	runtime.GOMAXPROCS(1)
	err = parallelFor(context.Background(), 3, func(i int) error {
		if i == 1 {
			panic("serial boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "grid item 1") {
		t.Fatalf("serial path must contain panics too: %v", err)
	}
}

// TestParallelForMonitor checks that the installed grid monitor observes
// every run, keeps consistent progress, and feeds the registry — with the
// monitor shared by concurrent workers (exercised under -race).
func TestParallelForMonitor(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	reg := telemetry.NewRegistry()
	var events atomic.Int32
	mon := &telemetry.RunMonitor{Registry: reg}
	mon.OnProgress = func(p telemetry.Progress) {
		events.Add(1)
		if p.Done < 1 || p.Done > p.Total {
			t.Errorf("inconsistent progress: %d/%d", p.Done, p.Total)
		}
	}
	SetMonitor(mon)
	defer SetMonitor(nil)

	const n = 64
	if err := parallelFor(context.Background(), n, func(i int) error {
		time.Sleep(50 * time.Microsecond)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := events.Load(); got != n {
		t.Fatalf("OnProgress fired %d times, want %d", got, n)
	}
	p := mon.Progress()
	if p.Done != n || p.Total != n {
		t.Fatalf("final progress %d/%d, want %d/%d", p.Done, p.Total, n, n)
	}
	if p.Busy <= 0 || p.AvgRun <= 0 {
		t.Fatalf("busy/avg not recorded: %+v", p)
	}
	if got := reg.Counter("experiment.runs").Load(); got != n {
		t.Fatalf("experiment.runs = %d, want %d", got, n)
	}
	if got := reg.Histogram("experiment.run_ms").Count(); got != n {
		t.Fatalf("experiment.run_ms count = %d, want %d", got, n)
	}
}

// TestParallelForJoinsDistinctErrors: the grid error must name every
// distinct failing cell (deduplicated, bounded), not just the first.
func TestParallelForJoinsDistinctErrors(t *testing.T) {
	old := runtime.GOMAXPROCS(1) // serial path keeps the failure set deterministic
	defer runtime.GOMAXPROCS(old)
	errA := errors.New("cell 3: disk full")
	err := parallelFor(context.Background(), 10, func(i int) error {
		if i == 3 {
			return errA
		}
		return nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v", err)
	}

	// Parallel path: workers that fail concurrently each contribute one
	// distinct message; duplicates collapse.
	runtime.GOMAXPROCS(4)
	start := make(chan struct{})
	err = parallelFor(context.Background(), 4, func(i int) error {
		if i == 0 {
			close(start)
		}
		<-start
		if i%2 == 0 {
			return errors.New("same failure")
		}
		return fmt.Errorf("distinct failure %d", i)
	})
	if err == nil {
		t.Fatal("failing grid returned nil")
	}
	if n := strings.Count(err.Error(), "same failure"); n > 1 {
		t.Fatalf("duplicate messages not collapsed: %v", err)
	}
}

// TestParallelForCancelledContext: a cancelled campaign context stops the
// grid and surfaces as the context error, with the drained items counted by
// the monitor. The skip accounting is asserted on the serial path, where
// the set of never-run items is deterministic.
func TestParallelForCancelledContext(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	mon := &telemetry.RunMonitor{}
	SetMonitor(mon)
	defer SetMonitor(nil)

	ctx, cancel := context.WithCancel(context.Background())
	const n = 100
	var calls atomic.Int32
	err := parallelFor(ctx, n, func(i int) error {
		if calls.Add(1) == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("serial path executed %d items after cancellation at the 3rd, want exactly 3", got)
	}
	if p := mon.Progress(); p.Skipped != n-3 {
		t.Fatalf("monitor counted %d skipped items, want %d", p.Skipped, n-3)
	}

	// Parallel path: cancellation still stops the grid early and returns
	// the context error (the exact drained count is scheduling-dependent).
	runtime.GOMAXPROCS(4)
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls.Store(0)
	err = parallelFor(ctx2, n, func(i int) error {
		if calls.Add(1) == 3 {
			cancel2()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel err = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got >= n {
		t.Fatalf("all %d items ran despite cancellation", got)
	}
}
