package experiment

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestParallelForVisitsEveryIndex(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	const n = 100
	var hits [n]int32
	if err := parallelFor(n, func(i int) error {
		atomic.AddInt32(&hits[i], 1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestParallelForPropagatesError(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	boom := errors.New("boom")
	err := parallelFor(50, func(i int) error {
		if i == 17 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestParallelForSerialFallback(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	order := []int{}
	if err := parallelFor(5, func(i int) error {
		order = append(order, i) // safe: serial path
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial path out of order: %v", order)
		}
	}
}

func TestParallelForZero(t *testing.T) {
	if err := parallelFor(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal("zero-length loop should not invoke fn")
	}
}
