package experiment

import (
	"bytes"
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"

	"clumsy/internal/apps"
)

// renderReliability renders the full sweep (all regime tables) as CSV for
// byte-comparison.
func renderReliability(t *testing.T, cells []ReliabilityCell, o Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, table := range ReliabilityRender(cells, o) {
		if err := table.RenderCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestReliabilitySweepSmall: a small sweep populates every application x
// regime x policy cell with sane values, and the regimes are not clones of
// one another.
func TestReliabilitySweepSmall(t *testing.T) {
	o := Options{Packets: 60, Trials: 1}
	cells, err := Reliability(o)
	if err != nil {
		t.Fatal(err)
	}
	names := apps.Names()
	if want := len(names) * len(Regimes()) * len(Policies()); len(cells) != want {
		t.Fatalf("sweep returned %d cells, want %d", len(cells), want)
	}
	for _, app := range names {
		for _, regime := range Regimes() {
			for _, pol := range Policies() {
				c := reliabilityCell(cells, app, regime.String(), pol.String())
				if c == nil {
					t.Fatalf("missing cell %s/%s/%s", app, regime, pol)
				}
				if c.RelEDF <= 0 {
					t.Errorf("%s/%s/%s: RelEDF = %g, want > 0", app, regime, pol, c.RelEDF)
				}
				if c.DropRate < 0 || c.DropRate > 1 || c.DisabledFrac < 0 || c.DisabledFrac > 1 {
					t.Errorf("%s/%s/%s: rates out of range: %+v", app, regime, pol, c)
				}
			}
		}
	}
	// (Stuck-at hits need the operating point below the weak cells'
	// 0.3 minimum threshold; a 60-packet dynamic run never completes a
	// 100-packet epoch, so no cell slows down that far here. Regime
	// divergence is pinned by TestRegimesDiverge in internal/clumsy.)
	if got := len(ReliabilityRender(cells, o)); got != len(Regimes()) {
		t.Fatalf("render produced %d tables, want %d", got, len(Regimes()))
	}
}

// TestReliabilityResumeByteIdentical: the reliability sweep cancelled
// mid-grid and resumed from its journal renders byte-identically to an
// uninterrupted run, recomputing only the missing cells.
func TestReliabilityResumeByteIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reliability.jsonl")
	o := Options{Packets: 60, Trials: 1}

	ref, err := Reliability(o)
	if err != nil {
		t.Fatal(err)
	}
	refCSV := renderReliability(t, ref, o)

	j, _, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	oi := o
	oi.Ctx = ctx
	oi.Journal = j
	var computed atomic.Int32
	oi.afterCell = func(string, int) {
		if computed.Add(1) == 5 {
			cancel()
		}
	}
	if _, err := Reliability(oi); err == nil {
		t.Fatal("cancelled sweep must report an error")
	}

	jr, loaded, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	total := len(apps.Names()) * len(Regimes()) * len(Policies())
	if loaded < 5 || loaded >= total {
		t.Fatalf("journal holds %d of %d cells; want a partial sweep", loaded, total)
	}

	or := o
	or.Journal = jr
	var recomputed atomic.Int32
	or.afterCell = func(string, int) { recomputed.Add(1) }
	res, err := Reliability(or)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(recomputed.Load()), total-loaded; got != want {
		t.Fatalf("resume recomputed %d cells, want %d (journal held %d)", got, want, loaded)
	}
	if gotCSV := renderReliability(t, res, o); !bytes.Equal(refCSV, gotCSV) {
		t.Fatalf("resumed sweep rendered differently:\n--- uninterrupted ---\n%s--- resumed ---\n%s",
			refCSV, gotCSV)
	}
}

// TestReliabilityCurveSmall: the graceful-degradation curve honours the
// requested pre-disabled fractions and keeps producing forward progress as
// the cache shrinks.
func TestReliabilityCurveSmall(t *testing.T) {
	o := Options{Packets: 60, Trials: 1}
	points, err := ReliabilityCurve("crc", o)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(CurveFracs) {
		t.Fatalf("curve has %d points, want %d", len(points), len(CurveFracs))
	}
	for i, p := range points {
		if p.Frac != CurveFracs[i] {
			t.Errorf("point %d: frac %g, want %g", i, p.Frac, CurveFracs[i])
		}
		// Pre-disabled frames are pinned: the realised dead fraction can
		// only exceed the request (strike disables add to it).
		if p.DisabledFrac < p.Frac {
			t.Errorf("point %d: realised disabled fraction %g below requested %g", i, p.DisabledFrac, p.Frac)
		}
		if p.IPC <= 0 {
			t.Errorf("point %d: IPC = %g, want > 0", i, p.IPC)
		}
		if p.RelEDF <= 0 {
			t.Errorf("point %d: RelEDF = %g, want > 0", i, p.RelEDF)
		}
	}
	if table := ReliabilityCurveRender("crc", points, o); len(table.Rows) != len(points) {
		t.Fatalf("curve table has %d rows, want %d", len(table.Rows), len(points))
	}
}
