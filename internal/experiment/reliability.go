package experiment

import (
	"fmt"

	"clumsy/internal/apps"
	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
	"clumsy/internal/stats"
)

// The reliability study goes beyond the paper's memoryless fault model: it
// sweeps the correlated fault regimes (burst droop episodes, permanent
// stuck-at cells) against the escalating recovery ladder (abort, drop,
// degrade) and reports how gracefully the processor's EDF^2 decays. The
// companion curve pre-disables growing fractions of the L1 data cache and
// measures throughput under the degrade policy — the "clumsy processor
// limping on a shrinking cache" picture.

// Regimes returns the fault regimes of the reliability sweep, paper first.
func Regimes() []clumsy.FaultRegime {
	return []clumsy.FaultRegime{clumsy.RegimePaper, clumsy.RegimeBurst, clumsy.RegimePermanent}
}

// Policies returns the recovery policies of the reliability sweep in
// escalation order.
func Policies() []clumsy.RecoveryPolicy {
	return []clumsy.RecoveryPolicy{clumsy.RecoverAbort, clumsy.RecoverDrop, clumsy.RecoverDegrade}
}

// ReliabilityCell is one cell of the regime x policy sweep for one
// application, averaged over trials.
type ReliabilityCell struct {
	App    string
	Regime string
	Policy string

	RelEDF float64 // EDF relative to the same run's golden baseline
	CI     float64 // 95% half-width of RelEDF across trials
	Fall   float64 // mean fallibility factor

	DropRate      float64 // mean dropped fraction of attempted packets
	DisabledFrac  float64 // mean L1D capacity fraction dead at run end
	LinesDisabled float64 // mean L1D frames disabled per run
	Escalations   float64 // mean ladder escalations (line disables + spatial back-offs)
	BurstEpisodes float64 // mean bad-state episodes (burst regime)
	PermanentHits float64 // mean stuck-at faults (permanent regime)
	Fatal         bool    // any trial ended fatally
}

// reliabilityConfig is the common configuration of every sweep cell: the
// dynamic frequency scheme with two-strike parity recovery — the paper's
// overall winner — so the regimes and policies are compared at the
// operating point a deployed clumsy processor would use.
func reliabilityConfig(app string, o Options, regime clumsy.FaultRegime) clumsy.Config {
	return clumsy.Config{
		App:        app,
		Packets:    o.Packets,
		Dynamic:    true,
		Detection:  cache.DetectionParity,
		Strikes:    2,
		FaultScale: o.FaultScale,
		Regime:     regime,
	}
}

// Reliability sweeps fault regime x recovery policy over every application.
// Each cell is normalised to its own run's golden EDF (not to a shared
// baseline cell), so cells are independent and journal resume is
// order-free.
func Reliability(o Options) ([]ReliabilityCell, error) {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()

	names := apps.Names()
	regimes := Regimes()
	policies := Policies()
	perApp := len(regimes) * len(policies)
	cells := make([]ReliabilityCell, len(names)*perApp)
	err := parallelFor(o.ctx(), len(cells), func(idx int) error {
		app := names[idx/perApp]
		regime := regimes[(idx%perApp)/len(policies)]
		policy := policies[idx%len(policies)]
		// Options.run forces the campaign-wide policy onto every
		// configuration; this study sweeps the policy itself, so each cell
		// runs under a per-cell copy of the options.
		ropts := o
		ropts.Recovery = policy
		return runCell(o, "reliability-"+app, idx%perApp,
			[2]string{regime.String(), policy.String()}, &cells[idx], func() (ReliabilityCell, error) {
				cell := ReliabilityCell{App: app, Regime: regime.String(), Policy: policy.String()}
				var rel stats.Sample
				var fall, drop, dfrac, lines, esc, bursts, perm float64
				for trial := 0; trial < o.Trials; trial++ {
					cfg := reliabilityConfig(app, o, regime)
					cfg.Seed = o.trialSeed(trial) // common random numbers across the grid
					res, err := ropts.run(cfg)
					if err != nil {
						return cell, fmt.Errorf("reliability %s %s/%s: %w", app, regime, policy, err)
					}
					rel.Add(res.EDF(o.Exponents) / res.GoldenEDF(o.Exponents))
					fall += res.Fallibility()
					drop += res.Report.DropRate()
					dfrac += res.DisabledFrac
					lines += float64(res.LinesDisabled)
					esc += float64(res.Recovery.LineDisables) + float64(res.SpatialBackoffs)
					bursts += float64(res.BurstEpisodes)
					perm += float64(res.PermanentHits)
					if res.Report.Fatal {
						cell.Fatal = true
					}
				}
				n := float64(o.Trials)
				cell.RelEDF = rel.Mean()
				cell.CI = rel.CI95()
				cell.Fall = fall / n
				cell.DropRate = drop / n
				cell.DisabledFrac = dfrac / n
				cell.LinesDisabled = lines / n
				cell.Escalations = esc / n
				cell.BurstEpisodes = bursts / n
				cell.PermanentHits = perm / n
				return cell, nil
			})
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// reliabilityCell finds a cell in the sweep, or nil.
func reliabilityCell(cells []ReliabilityCell, app, regime, policy string) *ReliabilityCell {
	for i := range cells {
		c := &cells[i]
		if c.App == app && c.Regime == regime && c.Policy == policy {
			return c
		}
	}
	return nil
}

// ReliabilityRender formats the sweep as one table per fault regime:
// applications down, recovery policies across, relative EDF^2 in the
// cells (with drop rate where packets were lost).
func ReliabilityRender(cells []ReliabilityCell, o Options) []*Table {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	var tables []*Table
	for _, regime := range Regimes() {
		t := &Table{
			Title: fmt.Sprintf("Reliability: relative energy-delay^%g-fallibility^%g under the %s fault regime (vs each run's golden baseline)",
				o.Exponents.M, o.Exponents.N, regime),
			Header: []string{"Application"},
			Notes: []string{
				fmt.Sprintf("%d packets/run, %d trials, fault scale %g; dynamic scheme, parity, two strikes", o.Packets, o.Trials, o.FaultScale),
				"* marks configurations with fatal trials; drop/disabled columns shown when non-zero",
			},
		}
		for _, pol := range Policies() {
			t.Header = append(t.Header, pol.String())
		}
		var escalations float64
		for _, app := range apps.Names() {
			row := []string{app}
			for _, pol := range Policies() {
				c := reliabilityCell(cells, app, regime.String(), pol.String())
				cell := "-"
				if c != nil {
					cell = fmt.Sprintf("%.3f", c.RelEDF)
					if c.CI > 0 {
						cell += fmt.Sprintf("±%.3f", c.CI)
					}
					if c.DropRate > 0 {
						cell += fmt.Sprintf(" drop=%.3f", c.DropRate)
					}
					if c.DisabledFrac > 0 {
						cell += fmt.Sprintf(" dead=%.2f", c.DisabledFrac)
					}
					if c.Fatal {
						cell += "*"
					}
					escalations += c.Escalations
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		}
		if escalations > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("mean ladder escalations across the regime: %.1f per run", escalations/float64(len(apps.Names())*len(Policies()))))
		}
		tables = append(tables, t)
	}
	return tables
}

// CurvePoint is one point of the graceful-degradation curve: the
// processor running with a fraction of its L1 data cache force-disabled.
type CurvePoint struct {
	Frac          float64 // requested pre-disabled capacity fraction
	DisabledFrac  float64 // realised fraction at run end (>= Frac: strikes add)
	DropRate      float64 // mean dropped fraction of attempted packets
	IPC           float64 // mean instructions per cycle of the faulty run
	RelEDF        float64 // EDF relative to the golden baseline
	LinesDisabled float64 // mean dead L1D frames at run end
	Fatal         bool
}

// CurveFracs are the swept pre-disabled capacity fractions.
var CurveFracs = []float64{0, 0.125, 0.25, 0.5, 0.75}

// ReliabilityCurve measures the graceful-degradation curve: drop rate and
// IPC as growing fractions of the L1 data cache are disabled, under the
// permanent fault regime with the full recovery ladder (degrade policy)
// at the static Cr = 0.5 operating point.
func ReliabilityCurve(app string, o Options) ([]CurvePoint, error) {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	ropts := o
	ropts.Recovery = clumsy.RecoverDegrade

	points := make([]CurvePoint, len(CurveFracs))
	err := parallelFor(o.ctx(), len(points), func(idx int) error {
		frac := CurveFracs[idx]
		return runCell(o, "reliability-curve-"+app, idx,
			fmt.Sprintf("frac=%g", frac), &points[idx], func() (CurvePoint, error) {
				pt := CurvePoint{Frac: frac}
				var dfrac, drop, ipc, rel, lines float64
				for trial := 0; trial < o.Trials; trial++ {
					res, err := ropts.run(clumsy.Config{
						App:            app,
						Packets:        o.Packets,
						Seed:           o.trialSeed(trial),
						CycleTime:      0.5,
						Detection:      cache.DetectionParity,
						Strikes:        2,
						FaultScale:     o.FaultScale,
						Regime:         clumsy.RegimePermanent,
						PreDisableFrac: frac,
					})
					if err != nil {
						return pt, fmt.Errorf("reliability-curve %s frac=%g: %w", app, frac, err)
					}
					dfrac += res.DisabledFrac
					drop += res.Report.DropRate()
					if res.Cycles > 0 {
						ipc += float64(res.Instrs) / res.Cycles
					}
					rel += res.EDF(o.Exponents) / res.GoldenEDF(o.Exponents)
					lines += float64(res.LinesDisabled)
					if res.Report.Fatal {
						pt.Fatal = true
					}
				}
				n := float64(o.Trials)
				pt.DisabledFrac = dfrac / n
				pt.DropRate = drop / n
				pt.IPC = ipc / n
				pt.RelEDF = rel / n
				pt.LinesDisabled = lines / n
				return pt, nil
			})
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// ReliabilityCurveRender formats the graceful-degradation curve.
func ReliabilityCurveRender(app string, points []CurvePoint, o Options) *Table {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Graceful degradation: %s with a shrinking L1 data cache (permanent regime, degrade policy, Cr=0.5)", app),
		Header: []string{"Pre-disabled", "Dead at end", "Drop rate", "IPC", "Relative EDF", "Dead frames"},
		Notes: []string{
			fmt.Sprintf("%d packets/run, %d trials, fault scale %g; * marks fatal trials", o.Packets, o.Trials, o.FaultScale),
		},
	}
	for _, p := range points {
		relEDF := fmt.Sprintf("%.3f", p.RelEDF)
		if p.Fatal {
			relEDF += "*"
		}
		t.AddRow(
			fmt.Sprintf("%.1f%%", p.Frac*100),
			fmt.Sprintf("%.1f%%", p.DisabledFrac*100),
			fmt.Sprintf("%.4f", p.DropRate),
			fmt.Sprintf("%.3f", p.IPC),
			relEDF,
			fmt.Sprintf("%.1f", p.LinesDisabled),
		)
	}
	return t
}
