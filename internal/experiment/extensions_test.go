package experiment

import (
	"bytes"
	"strings"
	"testing"

	"clumsy/internal/cache"
)

func TestExtDetectionGrid(t *testing.T) {
	cells, err := ExtDetection("route", small())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3*len(CycleTimes) {
		t.Fatalf("got %d cells", len(cells))
	}
	// Baseline normalisation: no detection at Cr=1 is exactly 1.
	for _, c := range cells {
		if c.Detection == cache.DetectionNone && c.CycleTime == 1 {
			if c.RelativeEDF != 1 {
				t.Fatalf("baseline = %v", c.RelativeEDF)
			}
		}
		if c.RelativeEDF <= 0 {
			t.Fatalf("non-positive EDF for %v at %v", c.Detection, c.CycleTime)
		}
	}
	// ECC corrects; parity does not.
	var eccCorrected, parityCorrected uint64
	for _, c := range cells {
		switch c.Detection {
		case cache.DetectionECC:
			eccCorrected += c.Corrected
		case cache.DetectionParity:
			parityCorrected += c.Corrected
		}
	}
	if eccCorrected == 0 {
		t.Error("ECC corrected nothing at the amplified rate")
	}
	if parityCorrected != 0 {
		t.Error("parity must not correct")
	}
	var buf bytes.Buffer
	ExtDetectionRender("route", cells, small()).Render(&buf)
	for _, frag := range []string{"ecc", "parity", "no detection", "corrected"} {
		if !strings.Contains(buf.String(), frag) {
			t.Errorf("render missing %q", frag)
		}
	}
}

func TestExtSubBlock(t *testing.T) {
	cells, err := ExtSubBlock("route", small())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(CycleTimes) {
		t.Fatalf("got %d rows", len(cells))
	}
	if cells[0].FullEDF != 1 {
		t.Fatalf("baseline EDF = %v", cells[0].FullEDF)
	}
	for _, c := range cells {
		if c.SubEDF <= 0 || c.FullEDF <= 0 {
			t.Fatalf("non-positive EDF at Cr=%v", c.CycleTime)
		}
	}
	var buf bytes.Buffer
	ExtSubBlockRender("route", cells, small()).Render(&buf)
	if !strings.Contains(buf.String(), "sub-block") {
		t.Error("render missing title")
	}
}

func TestExtExponents(t *testing.T) {
	rows, err := ExtExponents("route", small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d weightings", len(rows))
	}
	for _, r := range rows {
		if r.Best.Scheme == "" || r.Best.Setting == "" {
			t.Fatalf("empty best cell for %+v", r.Exponents)
		}
		if r.Best.Relative <= 0 {
			t.Fatalf("non-positive best EDF for %+v", r.Exponents)
		}
	}
	// The paper's weighting must be among the rows.
	found := false
	for _, r := range rows {
		if r.Exponents.K == 1 && r.Exponents.M == 2 && r.Exponents.N == 2 {
			found = true
		}
	}
	if !found {
		t.Error("the paper's (1,2,2) weighting missing")
	}
	var buf bytes.Buffer
	ExtExponentsRender("route", rows, small()).Render(&buf)
	if !strings.Contains(buf.String(), "fallibility") {
		t.Error("render missing header")
	}
}

func TestExtGeometry(t *testing.T) {
	cells, err := ExtGeometry("route", small())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3*len(CycleTimes) {
		t.Fatalf("got %d cells", len(cells))
	}
	missBySize := map[int]float64{}
	for _, c := range cells {
		if c.RelativeEDF <= 0 {
			t.Fatalf("non-positive EDF at size %d cr %v", c.SizeBytes, c.CycleTime)
		}
		if c.CycleTime == 1 {
			if c.RelativeEDF != 1 {
				t.Fatalf("size %d baseline = %v", c.SizeBytes, c.RelativeEDF)
			}
			missBySize[c.SizeBytes] = c.MissRate
		}
	}
	// Bigger caches miss less.
	if !(missBySize[1024] > missBySize[4096] && missBySize[4096] > missBySize[16384]) {
		t.Fatalf("miss rates not ordered by size: %v", missBySize)
	}
	var buf bytes.Buffer
	ExtGeometryRender("route", cells, small()).Render(&buf)
	if !strings.Contains(buf.String(), "16 KB") {
		t.Error("render missing size rows")
	}
}

func TestExtTuning(t *testing.T) {
	cells, err := ExtTuning("route", small())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(TuningX1)*len(TuningX2) {
		t.Fatalf("got %d cells", len(cells))
	}
	centre := false
	for _, c := range cells {
		if c.RelativeEDF <= 0 {
			t.Fatalf("non-positive EDF at X1=%v X2=%v", c.X1, c.X2)
		}
		if c.X1 == 2.0 && c.X2 == 0.8 {
			centre = true
		}
	}
	if !centre {
		t.Fatal("the paper's X1=200%/X2=80% point missing from the sweep")
	}
	var buf bytes.Buffer
	ExtTuningRender("route", cells, small()).Render(&buf)
	if !strings.Contains(buf.String(), "threshold study") {
		t.Error("render missing title")
	}
}

func TestVerifyClaims(t *testing.T) {
	claims, err := VerifyClaims(Options{Packets: 400, Trials: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(claims) != 7 {
		t.Fatalf("got %d claims", len(claims))
	}
	// The circuit-model claims are scale-independent and must always pass.
	for _, c := range claims[:2] {
		if !c.Pass {
			t.Errorf("claim %q failed: %s", c.Name, c.Detail)
		}
	}
	for _, c := range claims {
		if c.Detail == "" {
			t.Errorf("claim %q has no measured detail", c.Name)
		}
	}
	var buf bytes.Buffer
	VerifyRender(claims, Options{}).Render(&buf)
	if !strings.Contains(buf.String(), "Claims regression") {
		t.Error("render missing title")
	}
}
