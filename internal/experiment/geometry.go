package experiment

import (
	"fmt"

	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
)

// Geometry ablation: the paper fixes the StrongARM 4 KB L1 data cache;
// this study asks how the clumsy trade-off moves with L1 capacity. A
// larger array filters more L2 stalls (delay gains shrink — there is less
// cache latency on the critical path to win back) but costs more energy
// per access; a smaller one amplifies both the over-clocking benefit and
// the recovery traffic.

// GeometryCell is one (size, Cr) point of the ablation.
type GeometryCell struct {
	SizeBytes   int
	CycleTime   float64
	MissRate    float64 // golden-run L1D miss rate
	RelativeEDF float64 // vs the same size at Cr = 1
	Fatal       bool
}

// ExtGeometry sweeps the L1D capacity across the operating points under
// parity with two-strike recovery. Each size is normalised to its own
// Cr = 1 run, so the column reads "what over-clocking buys at this size".
func ExtGeometry(app string, o Options) ([]GeometryCell, error) {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	sizes := []int{1024, 4096, 16384}
	var cells []GeometryCell
	for _, size := range sizes {
		var baseline float64
		for _, cr := range CycleTimes {
			cell := GeometryCell{SizeBytes: size, CycleTime: cr}
			var edfSum, missSum float64
			for trial := 0; trial < o.Trials; trial++ {
				res, err := o.run(clumsy.Config{
					App:        app,
					Packets:    o.Packets,
					Seed:       o.trialSeed(trial),
					CycleTime:  cr,
					Detection:  cache.DetectionParity,
					Strikes:    2,
					FaultScale: o.FaultScale,
					L1DSize:    size,
				})
				if err != nil {
					return nil, fmt.Errorf("ext-geometry %s size=%d cr=%v: %w", app, size, cr, err)
				}
				edfSum += res.EDF(o.Exponents)
				missSum += res.GoldenL1DStats.MissRate()
				cell.Fatal = cell.Fatal || res.Report.Fatal
			}
			cell.RelativeEDF = edfSum / float64(o.Trials)
			cell.MissRate = missSum / float64(o.Trials)
			if cr == 1 {
				baseline = cell.RelativeEDF
			}
			cells = append(cells, cell)
		}
		// Normalise this size's row against its own full-speed point.
		for i := len(cells) - len(CycleTimes); i < len(cells); i++ {
			cells[i].RelativeEDF /= baseline
		}
	}
	return cells, nil
}

// ExtGeometryRender formats the ablation.
func ExtGeometryRender(app string, cells []GeometryCell, o Options) *Table {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Extension: L1 data cache geometry ablation for %s (parity, two-strike)", app),
		Header: []string{"L1D size", "miss rate"},
		Notes: []string{
			"each row is normalised to its own Cr=1 point: the cells read 'what over-clocking buys at this size'",
			fmt.Sprintf("%d packets/run, %d trials, fault scale %g", o.Packets, o.Trials, o.FaultScale),
		},
	}
	for _, cr := range CycleTimes {
		t.Header = append(t.Header, "Cr="+cycleTimeLabel(cr))
	}
	bySize := map[int][]GeometryCell{}
	order := []int{}
	for _, c := range cells {
		if _, seen := bySize[c.SizeBytes]; !seen {
			order = append(order, c.SizeBytes)
		}
		bySize[c.SizeBytes] = append(bySize[c.SizeBytes], c)
	}
	for _, size := range order {
		row := []string{fmt.Sprintf("%d KB", size/1024),
			fmt.Sprintf("%.1f%%", bySize[size][0].MissRate*100)}
		for _, c := range bySize[size] {
			cell := fmt.Sprintf("%.3f", c.RelativeEDF)
			if c.Fatal {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}
