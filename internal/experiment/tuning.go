package experiment

import (
	"fmt"

	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
)

// Threshold tuning: Section 4 reports that "a detailed study reveals that
// setting X1 to 200% and X2 to 80% overall results in the best performance
// of the dynamic scheme". This experiment reruns that study: a grid over
// the decrease threshold X1 and the increase threshold X2, measuring the
// dynamic scheme's EDF (parity, two-strike) relative to the static
// full-frequency baseline.

// TuningCell is one (X1, X2) operating point.
type TuningCell struct {
	X1, X2      float64
	RelativeEDF float64
	Switches    float64 // mean frequency changes per run
}

// TuningX1 and TuningX2 are the swept threshold values (the paper's choice
// in the middle of each range).
var (
	TuningX1 = []float64{1.2, 2.0, 4.0}
	TuningX2 = []float64{0.5, 0.8, 0.95}
)

// ExtTuning sweeps the dynamic controller thresholds for one application.
func ExtTuning(app string, o Options) ([]TuningCell, error) {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()

	// Baseline: static full frequency with parity (the scheme the dynamic
	// controller would idle at). The baseline is its own journal cell and
	// runs before the grid, so resumed campaigns recover or recompute the
	// identical divisor before any swept cell needs it.
	var baseline float64
	if err := runCell(o, "tuning-"+app+"-baseline", 0, nil, &baseline, func() (float64, error) {
		var sum float64
		for trial := 0; trial < o.Trials; trial++ {
			res, err := o.run(clumsy.Config{
				App: app, Packets: o.Packets, Seed: o.trialSeed(trial),
				CycleTime: 1, Detection: cache.DetectionParity, Strikes: 2,
				FaultScale: o.FaultScale,
			})
			if err != nil {
				return 0, fmt.Errorf("ext-tuning baseline: %w", err)
			}
			sum += res.EDF(o.Exponents)
		}
		return sum / float64(o.Trials), nil
	}); err != nil {
		return nil, err
	}

	cells := make([]TuningCell, len(TuningX1)*len(TuningX2))
	err := parallelFor(o.ctx(), len(cells), func(idx int) error {
		x1 := TuningX1[idx/len(TuningX2)]
		x2 := TuningX2[idx%len(TuningX2)]
		return runCell(o, "tuning-"+app, idx, [2]float64{x1, x2}, &cells[idx], func() (TuningCell, error) {
			var edfSum, swSum float64
			for trial := 0; trial < o.Trials; trial++ {
				res, err := o.run(clumsy.Config{
					App: app, Packets: o.Packets, Seed: o.trialSeed(trial),
					Dynamic: true, X1: x1, X2: x2,
					Detection: cache.DetectionParity, Strikes: 2,
					FaultScale: o.FaultScale,
				})
				if err != nil {
					return TuningCell{}, fmt.Errorf("ext-tuning x1=%v x2=%v: %w", x1, x2, err)
				}
				edfSum += res.EDF(o.Exponents)
				swSum += float64(res.Switches)
			}
			return TuningCell{
				X1:          x1,
				X2:          x2,
				RelativeEDF: edfSum / float64(o.Trials) / baseline,
				Switches:    swSum / float64(o.Trials),
			}, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// ExtTuningRender formats the threshold grid.
func ExtTuningRender(app string, cells []TuningCell, o Options) *Table {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Extension: dynamic-controller threshold study for %s (relative EDF^2 vs static Cr=1 parity)", app),
		Header: []string{"X1 \\ X2"},
		Notes: []string{
			"Section 4: the paper's detailed study selected X1=200%, X2=80% (the centre cell)",
			fmt.Sprintf("%d packets/run, %d trials, fault scale %g; switches averaged per run in parentheses",
				o.Packets, o.Trials, o.FaultScale),
		},
	}
	for _, x2 := range TuningX2 {
		t.Header = append(t.Header, fmt.Sprintf("%.0f%%", x2*100))
	}
	for i, x1 := range TuningX1 {
		row := []string{fmt.Sprintf("%.0f%%", x1*100)}
		for j := range TuningX2 {
			c := cells[i*len(TuningX2)+j]
			row = append(row, fmt.Sprintf("%.3f (%.0f)", c.RelativeEDF, c.Switches))
		}
		t.AddRow(row...)
	}
	best := cells[0]
	for _, c := range cells[1:] {
		if c.RelativeEDF < best.RelativeEDF {
			best = c
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("best: X1=%.0f%%, X2=%.0f%% at %.3f",
		best.X1*100, best.X2*100, best.RelativeEDF))
	return t
}
