package experiment

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"clumsy/internal/clumsy"
	"clumsy/internal/telemetry"
)

// TestCampaignResumeByteIdentical is the tentpole's acceptance test: a
// campaign cancelled mid-grid and resumed from its journal must render
// byte-identical output to an uninterrupted run, and must skip (not
// recompute) every journaled cell.
func TestCampaignResumeByteIdentical(t *testing.T) {
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	o := Options{Packets: 200, Trials: 1}

	// Reference: the uninterrupted campaign.
	ref, err := EDFGrid("crc", o)
	if err != nil {
		t.Fatal(err)
	}
	var refCSV bytes.Buffer
	if err := EDFRender(ref, "test", o).RenderCSV(&refCSV); err != nil {
		t.Fatal(err)
	}

	// Interrupted: cancel the campaign context once five cells have been
	// journaled. In-flight cells drain; the rest of the grid never runs.
	j, _, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	oi := o
	oi.Ctx = ctx
	oi.Journal = j
	var computed atomic.Int32
	oi.afterCell = func(string, int) {
		if computed.Add(1) == 5 {
			cancel()
		}
	}
	if _, err := EDFGrid("crc", oi); err == nil {
		t.Fatal("cancelled campaign must report an error")
	}

	jr, loaded, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	total := len(Schemes()) * len(Settings())
	if loaded < 5 || loaded >= total {
		t.Fatalf("journal holds %d of %d cells; want a partial campaign", loaded, total)
	}

	// Resumed: only the missing cells are computed, and the rendered CSV is
	// byte-identical to the uninterrupted reference.
	or := o
	or.Journal = jr
	var recomputed atomic.Int32
	or.afterCell = func(string, int) { recomputed.Add(1) }
	res, err := EDFGrid("crc", or)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := int(recomputed.Load()), total-loaded; got != want {
		t.Fatalf("resume recomputed %d cells, want %d (journal held %d)", got, want, loaded)
	}
	var gotCSV bytes.Buffer
	if err := EDFRender(res, "test", o).RenderCSV(&gotCSV); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refCSV.Bytes(), gotCSV.Bytes()) {
		t.Fatalf("resumed campaign rendered differently:\n--- uninterrupted ---\n%s--- resumed ---\n%s",
			refCSV.String(), gotCSV.String())
	}
}

// TestRunCellRetryTransient: an unclassified host failure is retried with
// backoff until it succeeds, within the configured budget.
func TestRunCellRetryTransient(t *testing.T) {
	o := Options{Retries: 3, RetryBackoff: time.Microsecond}
	var attempts int
	var out int
	err := runCell(o, "flaky", 0, nil, &out, func() (int, error) {
		attempts++
		if attempts < 3 {
			return 0, errors.New("read /proc/fake: transient I/O error")
		}
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != 42 || attempts != 3 {
		t.Fatalf("out=%d attempts=%d, want 42 after 3 attempts", out, attempts)
	}

	// Budget exhausted: Retries=3 allows four attempts in total.
	attempts = 0
	err = runCell(o, "flaky", 1, nil, &out, func() (int, error) {
		attempts++
		return 0, errors.New("persistent host failure")
	})
	if err == nil || attempts != 4 {
		t.Fatalf("err=%v attempts=%d, want failure after 4 attempts", err, attempts)
	}
}

// TestRunCellNeverRetriesSimSemantic: simulated outcomes are pure functions
// of the configuration — retrying them is at best wasted wall-clock and at
// worst hides a modelling bug, so each is terminal on the first attempt.
func TestRunCellNeverRetriesSimSemantic(t *testing.T) {
	simErrs := []error{
		clumsy.ErrDropRateExceeded,
		clumsy.ErrWatchdog,
		clumsy.ErrAppPanic,
	}
	for _, simErr := range simErrs {
		o := Options{Retries: 5, RetryBackoff: time.Microsecond}
		var attempts int
		var out int
		err := runCell(o, "sim", 0, nil, &out, func() (int, error) {
			attempts++
			return 0, fmt.Errorf("run failed: %w", simErr)
		})
		if !errors.Is(err, simErr) {
			t.Fatalf("%v: error chain lost: %v", simErr, err)
		}
		if attempts != 1 {
			t.Fatalf("%v: attempted %d times; sim-semantic errors must never retry", simErr, attempts)
		}
	}
}

// TestRunCellCancelledNotRetried: cancellation is not a transient failure.
func TestRunCellCancelledNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := Options{Ctx: ctx, Retries: 5, RetryBackoff: time.Microsecond}
	var attempts int
	var out int
	err := runCell(o, "cancelled", 0, nil, &out, func() (int, error) {
		attempts++
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d, want context.Canceled after 1 attempt", err, attempts)
	}
}

// TestRunCellDeadline: a wedged cell is killed by the wall-clock watchdog
// with a diagnostic naming the study and cell, and is not retried.
func TestRunCellDeadline(t *testing.T) {
	tel := telemetry.New()
	clumsy.SetDefaultTelemetry(tel)
	defer clumsy.SetDefaultTelemetry(nil)

	release := make(chan struct{})
	defer close(release)
	o := Options{RunTimeout: 20 * time.Millisecond, Retries: 5, RetryBackoff: time.Microsecond}
	var attempts atomic.Int32
	var out int
	err := runCell(o, "wedge", 3, nil, &out, func() (int, error) {
		attempts.Add(1)
		<-release // wedged until test cleanup
		return 1, nil
	})
	var te *CellTimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want CellTimeoutError", err)
	}
	if te.Study != "wedge" || te.Index != 3 {
		t.Fatalf("diagnostic names %s[%d], want wedge[3]", te.Study, te.Index)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("wedged cell attempted %d times; deadline kills must never retry", got)
	}
	if got := tel.Registry.Counter(telemetry.CtrCampaignCellsTimedOut).Load(); got != 1 {
		t.Fatalf("campaign.cells_timed_out = %d, want 1", got)
	}
}

// TestRunCellPanicTerminal: a panic inside a deadline-guarded cell surfaces
// as an error carrying the cell identity instead of crashing, and is not
// retried.
func TestRunCellPanicTerminal(t *testing.T) {
	o := Options{RunTimeout: time.Second, Retries: 5, RetryBackoff: time.Microsecond}
	var attempts int
	var out int
	err := runCell(o, "buggy", 7, nil, &out, func() (int, error) {
		attempts++
		panic("index out of range")
	})
	if err == nil || !errors.Is(err, errCellPanic) {
		t.Fatalf("err = %v, want errCellPanic chain", err)
	}
	if attempts != 1 {
		t.Fatalf("panicking cell attempted %d times; panics must never retry", attempts)
	}
}

// TestRunCellJournalSkip: a journaled cell is returned without invoking
// compute, and the skip is counted.
func TestRunCellJournalSkip(t *testing.T) {
	tel := telemetry.New()
	clumsy.SetDefaultTelemetry(tel)
	defer clumsy.SetDefaultTelemetry(nil)

	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, _, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	o := Options{Journal: j}
	var out int
	if err := runCell(o, "s", 0, "extra", &out, func() (int, error) { return 7, nil }); err != nil {
		t.Fatal(err)
	}
	if out != 7 {
		t.Fatalf("out = %d, want 7", out)
	}

	// Reopen with resume and hit the same cell: compute must not run.
	j2, n, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("journal reloaded %d entries, want 1", n)
	}
	o2 := Options{Journal: j2}
	out = 0
	if err := runCell(o2, "s", 0, "extra", &out, func() (int, error) {
		t.Fatal("journaled cell recomputed")
		return 0, nil
	}); err != nil {
		t.Fatal(err)
	}
	if out != 7 {
		t.Fatalf("journal replayed %d, want 7", out)
	}
	if got := tel.Registry.Counter(telemetry.CtrCampaignCellsSkipped).Load(); got != 1 {
		t.Fatalf("campaign.cells_skipped = %d, want 1", got)
	}

	// A different config fingerprint misses and recomputes.
	o3 := Options{Journal: j2, Packets: 999}
	out = 0
	if err := runCell(o3, "s", 0, "extra", &out, func() (int, error) { return 8, nil }); err != nil {
		t.Fatal(err)
	}
	if out != 8 {
		t.Fatalf("config change must miss the journal: out = %d, want 8", out)
	}
}
