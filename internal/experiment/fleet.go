package experiment

import (
	"fmt"
	"math"

	"clumsy/internal/cluster"
)

// The fleet study lifts the single-processor graceful-degradation curve to
// the fleet: a cluster of clumsy nodes behind the least-loaded dispatcher,
// with a growing fraction of the fleet terminally damaged (pinned stuck-at
// cells above the drain bar). Each point runs the full health lifecycle —
// degrade, drain-and-re-clock, failed probation, death, failover — and
// records how SLO attainment and the fleet drop rate decay as the fleet
// loses nodes. The acceptance shape mirrors the paper's single-node story:
// the curve falls gracefully, and the drop SLO holds until more than a
// third of the fleet is dead.

// FleetNodes is the fleet size of the degradation sweep.
const FleetNodes = 8

// FleetFracs are the swept faulty-node fractions of the fleet.
var FleetFracs = []float64{0, 0.125, 0.25, 0.375, 0.5, 0.75}

// FleetCell is one point of the fleet degradation sweep, averaged over
// trials.
type FleetCell struct {
	Frac        float64 // requested faulty-node fraction
	FaultyNodes int     // realised hostile node count (round(Frac x Nodes))

	Attainment float64 // mean fraction of arrivals served within the latency SLO
	DropRate   float64 // mean fleet drop rate (node drops + shed, over arrivals)
	DropSLOMet bool    // every trial kept the fleet drop rate under the SLO
	P50        float64 // mean p50 latency in virtual ticks
	P99        float64 // mean p99 latency in virtual ticks

	Deaths    float64 // mean nodes dead at run end
	NodesLive float64 // mean nodes still in rotation at run end
	Drains    float64 // mean drain-and-re-clock cycles
	Reclocks  float64 // mean re-clock steps applied
	Shed      float64 // mean packets shed per run
}

// fleetConfig is the common configuration of every sweep point: the
// least-loaded dispatcher (so the fault-free baseline is clean — flow
// hashing would pin the workload's hottest flow to one node and overload
// it with no faults at all), hostile nodes with pinned hard damage above
// the drain bar (so they are terminal, not merely slow), and a short
// drain ladder sized so the lifecycle completes within the packet budget.
func fleetConfig(app string, o Options, faulty int, seed uint64) cluster.Config {
	return cluster.Config{
		App:              app,
		Nodes:            FleetNodes,
		Packets:          o.Packets,
		Seed:             seed,
		Dispatch:         cluster.DispatchLeastLoaded,
		FaultyNodes:      faulty,
		FaultScale:       o.FaultScale,
		FaultyScale:      150,
		FaultyPreDisable: 0.10,
		Health:           cluster.HealthConfig{Window: 32, MaxDrains: 1, MaxCycleTime: 0.625},
	}
}

// Fleet sweeps the faulty-node fraction of an 8-node fleet and returns the
// fleet-level graceful-degradation curve for one application. Each cell is
// independent (its own seeds, no shared baseline), so journal resume is
// order-free.
func Fleet(app string, o Options) ([]FleetCell, error) {
	o = o.withDefaults()
	cells := make([]FleetCell, len(FleetFracs))
	err := parallelFor(o.ctx(), len(cells), func(idx int) error {
		frac := FleetFracs[idx]
		faulty := int(math.Round(frac * FleetNodes))
		return runCell(o, "fleet-"+app, idx,
			fmt.Sprintf("frac=%g", frac), &cells[idx], func() (FleetCell, error) {
				cell := FleetCell{Frac: frac, FaultyNodes: faulty, DropSLOMet: true}
				for trial := 0; trial < o.Trials; trial++ {
					if err := o.ctx().Err(); err != nil {
						return cell, err
					}
					r, err := cluster.Run(fleetConfig(app, o, faulty, o.trialSeed(trial)))
					if err != nil {
						return cell, fmt.Errorf("fleet %s frac=%g: %w", app, frac, err)
					}
					cell.Attainment += r.Attainment
					cell.DropRate += r.FleetDropRate
					cell.P50 += r.P50Latency
					cell.P99 += r.P99Latency
					cell.Deaths += float64(r.Deaths)
					cell.NodesLive += float64(r.NodesLive)
					cell.Drains += float64(r.Drains)
					cell.Reclocks += float64(r.Reclocks)
					cell.Shed += float64(r.Shed)
					if !r.DropSLOMet {
						cell.DropSLOMet = false
					}
				}
				n := float64(o.Trials)
				cell.Attainment /= n
				cell.DropRate /= n
				cell.P50 /= n
				cell.P99 /= n
				cell.Deaths /= n
				cell.NodesLive /= n
				cell.Drains /= n
				cell.Reclocks /= n
				cell.Shed /= n
				return cell, nil
			})
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// FleetRender formats the fleet degradation curve.
func FleetRender(app string, cells []FleetCell, o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: fmt.Sprintf("Fleet degradation: %s on %d nodes behind the least-loaded dispatcher (terminal hostile nodes)",
			app, FleetNodes),
		Header: []string{"Faulty", "Nodes", "Attainment", "Drop rate", "SLO", "p50", "p99", "Deaths", "Live", "Drains", "Shed"},
		Notes: []string{
			fmt.Sprintf("%d packets/run, %d trials; hostile nodes: permanent regime x150 with 10%% pinned hard damage", o.Packets, o.Trials),
			"SLO column reports the fleet drop-rate objective; attainment is the latency objective",
		},
	}
	for _, c := range cells {
		slo := "met"
		if !c.DropSLOMet {
			slo = "BROKEN"
		}
		t.AddRow(
			fmt.Sprintf("%.1f%%", c.Frac*100),
			fmt.Sprintf("%d", c.FaultyNodes),
			fmt.Sprintf("%.1f%%", 100*c.Attainment),
			fmt.Sprintf("%.2f%%", 100*c.DropRate),
			slo,
			fmt.Sprintf("%.0f", c.P50),
			fmt.Sprintf("%.0f", c.P99),
			fmt.Sprintf("%.1f", c.Deaths),
			fmt.Sprintf("%.1f", c.NodesLive),
			fmt.Sprintf("%.1f", c.Drains),
			fmt.Sprintf("%.1f", c.Shed),
		)
	}
	return t
}
