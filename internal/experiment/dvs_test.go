package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestDVSVoltageModel(t *testing.T) {
	if dvsVoltage(1) != 1 {
		t.Fatalf("full-speed voltage ratio = %v", dvsVoltage(1))
	}
	prev := dvsVoltage(1)
	for phi := 0.9; phi >= 0.5; phi -= 0.1 {
		v := dvsVoltage(phi)
		if v >= prev || v <= 0.4 {
			t.Fatalf("voltage at phi=%v is %v", phi, v)
		}
		prev = v
	}
}

func TestExtDVSRows(t *testing.T) {
	rows, err := ExtDVS("route", small())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1+5+3 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0].Approach != "baseline" || rows[0].EDFRel != 1 {
		t.Fatalf("baseline row = %+v", rows[0])
	}
	for _, r := range rows[1:6] {
		if r.Approach != "dvs" {
			t.Fatalf("row %+v should be dvs", r)
		}
		// DVS trades delay for energy and has no faults.
		if r.EnergyRel >= 1 || r.DelayRel <= 1 || r.Fallibility != 1 {
			t.Fatalf("dvs row implausible: %+v", r)
		}
		// Under the delay-squared metric DVS loses ground.
		if r.EDFRel <= 1 {
			t.Fatalf("dvs should raise EDF^2: %+v", r)
		}
	}
	for _, r := range rows[6:] {
		if r.Approach != "clumsy" {
			t.Fatalf("row %+v should be clumsy", r)
		}
		if r.EnergyRel >= 1 || r.DelayRel >= 1.05 {
			t.Fatalf("clumsy row implausible: %+v", r)
		}
	}
	var buf bytes.Buffer
	ExtDVSRender("route", rows, small()).Render(&buf)
	if !strings.Contains(buf.String(), "DVS vs clumsy") {
		t.Error("render missing title")
	}
}
