package experiment

import (
	"fmt"

	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
	"clumsy/internal/metrics"
)

// Extensions: experiments beyond the paper's evaluation, covering the
// alternatives the paper mentions but sets aside — SEC-DED error
// correction (Section 4: "error correction techniques would incur
// unnecessary complication and energy"), sub-block invalidation
// (footnote 2), and the weighted energy^k-delay^m-fallibility^n metric
// family (Section 4.1).

// DetectionCell summarises one detection scheme at one operating point.
type DetectionCell struct {
	Detection   cache.Detection
	CycleTime   float64
	RelativeEDF float64
	Fallibility float64
	Corrected   uint64 // ECC in-place corrections
	Recoveries  uint64
	Fatal       bool
}

// ExtDetection compares no detection, parity, and SEC-DED ECC (all with
// two-strike recovery for the detected-uncorrectable path) across the
// operating points, answering the question the paper raised and skipped:
// is the energy cost of correction ever worth it?
func ExtDetection(app string, o Options) ([]DetectionCell, error) {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	detections := []cache.Detection{cache.DetectionNone, cache.DetectionParity, cache.DetectionECC}
	var cells []DetectionCell
	var baseline float64
	for _, det := range detections {
		for _, cr := range CycleTimes {
			cell := DetectionCell{Detection: det, CycleTime: cr}
			var edfSum, fallSum float64
			for trial := 0; trial < o.Trials; trial++ {
				res, err := o.run(clumsy.Config{
					App:        app,
					Packets:    o.Packets,
					Seed:       o.trialSeed(trial),
					CycleTime:  cr,
					Detection:  det,
					Strikes:    2,
					FaultScale: o.FaultScale,
				})
				if err != nil {
					return nil, fmt.Errorf("ext-detection %s %v cr=%v: %w", app, det, cr, err)
				}
				edfSum += res.EDF(o.Exponents)
				fallSum += res.Fallibility()
				cell.Corrected += res.Recovery.Corrected
				cell.Recoveries += res.Recovery.Recoveries
				cell.Fatal = cell.Fatal || res.Report.Fatal
			}
			cell.RelativeEDF = edfSum / float64(o.Trials)
			cell.Fallibility = fallSum / float64(o.Trials)
			if det == cache.DetectionNone && cr == 1 {
				baseline = cell.RelativeEDF
			}
			cells = append(cells, cell)
		}
	}
	for i := range cells {
		cells[i].RelativeEDF /= baseline
	}
	return cells, nil
}

// ExtDetectionRender formats the detection comparison.
func ExtDetectionRender(app string, cells []DetectionCell, o Options) *Table {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Extension: detection schemes for %s — relative EDF^2 (two-strike recovery)", app),
		Header: []string{"Detection"},
		Notes: []string{
			fmt.Sprintf("%d packets/run, %d trials, fault scale %g; ECC corrects single-bit faults in place at +60%%/+80%% read/write energy",
				o.Packets, o.Trials, o.FaultScale),
		},
	}
	for _, cr := range CycleTimes {
		t.Header = append(t.Header, "Cr="+cycleTimeLabel(cr))
	}
	t.Header = append(t.Header, "corrected", "recoveries")
	byDet := map[cache.Detection][]DetectionCell{}
	for _, c := range cells {
		byDet[c.Detection] = append(byDet[c.Detection], c)
	}
	for _, det := range []cache.Detection{cache.DetectionNone, cache.DetectionParity, cache.DetectionECC} {
		row := []string{det.String()}
		var corrected, recoveries uint64
		for _, c := range byDet[det] {
			cell := fmt.Sprintf("%.3f", c.RelativeEDF)
			if c.Fatal {
				cell += "*"
			}
			row = append(row, cell)
			corrected += c.Corrected
			recoveries += c.Recoveries
		}
		row = append(row, fmt.Sprintf("%d", corrected), fmt.Sprintf("%d", recoveries))
		t.AddRow(row...)
	}
	return t
}

// SubBlockCell compares full-line and sub-block recovery at one point.
type SubBlockCell struct {
	CycleTime    float64
	FullEDF      float64 // relative EDF, full-line invalidation
	SubEDF       float64 // relative EDF, sub-block recovery
	FullL2       uint64  // L2 accesses under full-line recovery
	SubL2        uint64  // L2 accesses under sub-block recovery
	FullRecovers uint64
	SubRecovers  uint64
}

// ExtSubBlock measures the footnote-2 extension: recovering single words
// from the L2 instead of invalidating whole lines, under parity with
// two-strike recovery.
func ExtSubBlock(app string, o Options) ([]SubBlockCell, error) {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	var cells []SubBlockCell
	var baseline float64
	for _, cr := range CycleTimes {
		cell := SubBlockCell{CycleTime: cr}
		for _, sub := range []bool{false, true} {
			var edfSum float64
			var l2, rec uint64
			for trial := 0; trial < o.Trials; trial++ {
				res, err := o.run(clumsy.Config{
					App:        app,
					Packets:    o.Packets,
					Seed:       o.trialSeed(trial),
					CycleTime:  cr,
					Detection:  cache.DetectionParity,
					Strikes:    2,
					SubBlock:   sub,
					FaultScale: o.FaultScale,
				})
				if err != nil {
					return nil, fmt.Errorf("ext-subblock %s cr=%v: %w", app, cr, err)
				}
				edfSum += res.EDF(o.Exponents)
				rec += res.Recovery.Recoveries
				l2 += res.L1DStats.ReadMisses + res.L1DStats.WriteMisses + res.L1DStats.Writebacks + res.Recovery.Recoveries
			}
			if sub {
				cell.SubEDF = edfSum / float64(o.Trials)
				cell.SubL2 = l2
				cell.SubRecovers = rec
			} else {
				cell.FullEDF = edfSum / float64(o.Trials)
				cell.FullL2 = l2
				cell.FullRecovers = rec
			}
		}
		if cr == 1 {
			baseline = cell.FullEDF
		}
		cells = append(cells, cell)
	}
	for i := range cells {
		cells[i].FullEDF /= baseline
		cells[i].SubEDF /= baseline
	}
	return cells, nil
}

// ExtSubBlockRender formats the sub-block comparison.
func ExtSubBlockRender(app string, cells []SubBlockCell, o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: fmt.Sprintf("Extension: sub-block recovery for %s (parity, two-strike)", app),
		Header: []string{"Cr", "EDF full-line", "EDF sub-block",
			"L2 traffic full", "L2 traffic sub", "recoveries full", "recoveries sub"},
		Notes: []string{
			"footnote 2 of the paper: invalidating only the affected word keeps dirty neighbours and avoids write-backs",
			fmt.Sprintf("%d packets/run, %d trials", o.Packets, o.Trials),
		},
	}
	for _, c := range cells {
		t.AddRow(cycleTimeLabel(c.CycleTime),
			fmt.Sprintf("%.3f", c.FullEDF),
			fmt.Sprintf("%.3f", c.SubEDF),
			fmt.Sprintf("%d", c.FullL2),
			fmt.Sprintf("%d", c.SubL2),
			fmt.Sprintf("%d", c.FullRecovers),
			fmt.Sprintf("%d", c.SubRecovers))
	}
	return t
}

// ExponentRow records the winning configuration under one EDF weighting.
type ExponentRow struct {
	Exponents metrics.EDFExponents
	Best      EDFCell
}

// ExtExponents explores the energy^k-delay^m-fallibility^n family of
// Section 4.1: different architectures weight the three axes differently,
// and the winning configuration moves with the weights.
func ExtExponents(app string, o Options) ([]ExponentRow, error) {
	weightings := []metrics.EDFExponents{
		{K: 1, M: 1, N: 1}, // classic EDP with errors
		{K: 1, M: 2, N: 2}, // the paper's choice
		{K: 1, M: 2, N: 0}, // ignore errors entirely (pure energy-delay^2)
		{K: 2, M: 1, N: 2}, // battery-bound wireless node
		{K: 1, M: 1, N: 4}, // error-critical deployment
	}
	var rows []ExponentRow
	for _, e := range weightings {
		opts := o
		opts.Exponents = e
		grid, err := EDFGrid(app, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ExponentRow{Exponents: e, Best: grid.Best()})
	}
	return rows, nil
}

// ExtExponentsRender formats the weighting sensitivity study.
func ExtExponentsRender(app string, rows []ExponentRow, o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("Extension: metric-weighting sensitivity for %s", app),
		Header: []string{"k (energy)", "m (delay)", "n (fallibility)", "best scheme", "best setting", "relative EDF"},
		Notes: []string{
			"Section 4.1: the product can be weighted energy^k-delay^m-fallibility^n to the architecture's needs",
			fmt.Sprintf("%d packets/run, %d trials", o.Packets, o.Trials),
		},
	}
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%g", r.Exponents.K),
			fmt.Sprintf("%g", r.Exponents.M),
			fmt.Sprintf("%g", r.Exponents.N),
			r.Best.Scheme, r.Best.Setting,
			fmt.Sprintf("%.3f", r.Best.Relative))
	}
	return t
}
