package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintln(w, strings.Repeat("=", len(t.Title)))
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a set of curves sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Render writes the figure as one aligned column block per series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", f.Title)
	fmt.Fprintln(w, strings.Repeat("=", len(f.Title)))
	for _, s := range f.Series {
		fmt.Fprintf(w, "-- %s --\n", s.Name)
		fmt.Fprintf(w, "%-14s %s\n", f.XLabel, f.YLabel)
		for i := range s.X {
			fmt.Fprintf(w, "%-14.6g %.6g\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}
