package experiment

import (
	"fmt"
	"math"

	"clumsy/internal/cache"
	"clumsy/internal/circuit"
	"clumsy/internal/clumsy"
)

// Claims regression harness: the paper's headline claims, checked
// programmatically against the simulator. `clumsy verify` runs it; a claim
// that stops holding after a model change fails loudly instead of drifting
// silently in a table nobody re-reads.

// Claim is one verified statement.
type Claim struct {
	Name   string
	Detail string
	Pass   bool
}

// VerifyClaims evaluates the headline claims. The simulation-backed checks
// use a compact deterministic configuration (route/crc/md5 at the
// exposure-equalised fault scale), so the whole run takes tens of seconds.
func VerifyClaims(o Options) ([]Claim, error) {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	var claims []Claim
	add := func(name string, pass bool, detail string, args ...any) {
		claims = append(claims, Claim{Name: name, Pass: pass, Detail: fmt.Sprintf(detail, args...)})
	}

	// C1 — circuit knee (Figure 5): flat to ~half cycle time, sharp at 0.25.
	cell := circuit.DefaultCell()
	base := cell.FaultProbability(1)
	r75 := cell.FaultProbability(0.75) / base
	r50 := cell.FaultProbability(0.50) / base
	r25 := cell.FaultProbability(0.25) / base
	add("fault-curve knee", r75 < 2.5 && r50 > 1.5 && r50 < 8 && r25 > 10,
		"fault-rate ratios %.2f / %.2f / %.2f at Cr=0.75/0.5/0.25", r75, r50, r25)

	// C2 — cache-energy reductions track the paper's 6%/19%/45%.
	redOK := true
	detail := ""
	for _, c := range []struct{ cr, want float64 }{{0.75, 0.06}, {0.5, 0.19}, {0.25, 0.45}} {
		red := 1 - circuit.VoltageSwing(c.cr)
		detail += fmt.Sprintf("%.0f%%@Cr=%g ", red*100, c.cr)
		if math.Abs(red-c.want) > 0.03 {
			redOK = false
		}
	}
	add("cache-energy reductions", redOK, "%s(paper: 6%%/19%%/45%%)", detail)

	// C3 — fallibility rises with frequency but stays bounded at the
	// paper's physical rate (Table I band).
	f50, err := o.run(clumsy.Config{App: "md5", Packets: o.Packets, Seed: o.trialSeed(0),
		CycleTime: 0.5, FaultScale: 1})
	if err != nil {
		return nil, err
	}
	f25, err := o.run(clumsy.Config{App: "md5", Packets: o.Packets, Seed: o.trialSeed(0),
		CycleTime: 0.25, FaultScale: 1})
	if err != nil {
		return nil, err
	}
	add("fallibility band (md5)",
		f25.Fallibility() > f50.Fallibility() && f25.Fallibility() < 1.5 && f50.Fallibility() < 1.1,
		"fallibility %.3f @0.5, %.3f @0.25 (paper: 1.055 / 1.261)",
		f50.Fallibility(), f25.Fallibility())

	// C4 — detection keeps runs alive at 4x over-clocking.
	parity, err := o.run(clumsy.Config{App: "route", Packets: o.Packets, Seed: o.trialSeed(0),
		CycleTime: 0.25, Detection: cache.DetectionParity, Strikes: 2, FaultScale: o.FaultScale})
	if err != nil {
		return nil, err
	}
	add("parity survives 4x", !parity.Report.Fatal && parity.Recovery.ParityErrors > 0,
		"fatal=%v, %d parity errors, %d recoveries",
		parity.Report.Fatal, parity.Recovery.ParityErrors, parity.Recovery.Recoveries)

	// C5/C6/C7 — the EDF landscape on a fast three-app subset.
	subset := []string{"route", "crc", "md5"}
	var grids []*EDFResult
	for _, app := range subset {
		g, err := EDFGrid(app, o)
		if err != nil {
			return nil, err
		}
		grids = append(grids, g)
	}
	avg := EDFAverage(grids)

	bestParity05 := math.Inf(1)
	for _, scheme := range []string{"one-strike", "two strikes", "three strikes"} {
		if c := avg.Cell(scheme, "0.5"); c != nil && c.Relative < bestParity05 {
			bestParity05 = c.Relative
		}
	}
	add("parity family at Cr=0.5 wins", avg.Best().Setting == "0.5" && bestParity05 < 0.85,
		"best cell %s at %s (%.3f); parity family at 0.5 reaches %.3f",
		avg.Best().Scheme, avg.Best().Setting, avg.Best().Relative, bestParity05)

	nd05 := avg.Cell("no detection", "0.5")
	nd25 := avg.Cell("no detection", "0.25")
	add("no-detection worsens past 2x", nd25 != nil && nd05 != nil && nd25.Relative > nd05.Relative,
		"no-detection EDF %.3f @0.5 -> %.3f @0.25", nd05.Relative, nd25.Relative)

	bestStatic := math.Inf(1)
	worstDynamic := 0.0
	bestDynamic := math.Inf(1)
	for _, scheme := range []string{"one-strike", "two strikes", "three strikes"} {
		for _, setting := range []string{"1", "0.75", "0.5", "0.25"} {
			if c := avg.Cell(scheme, setting); c != nil && c.Relative < bestStatic {
				bestStatic = c.Relative
			}
		}
		if c := avg.Cell(scheme, "dynamic"); c != nil {
			if c.Relative > worstDynamic {
				worstDynamic = c.Relative
			}
			if c.Relative < bestDynamic {
				bestDynamic = c.Relative
			}
		}
	}
	add("dynamic does not beat best static", bestDynamic >= bestStatic-0.02,
		"dynamic %.3f..%.3f vs best static %.3f", bestDynamic, worstDynamic, bestStatic)

	return claims, nil
}

// VerifyRender formats the claim list.
func VerifyRender(claims []Claim, o Options) *Table {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	t := &Table{
		Title:  "Claims regression: the paper's headline results, checked programmatically",
		Header: []string{"claim", "status", "measured"},
		Notes: []string{
			fmt.Sprintf("%d packets/run, %d trials, fault scale %g; simulation-backed checks use route/crc/md5",
				o.Packets, o.Trials, o.FaultScale),
		},
	}
	for _, c := range claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		t.AddRow(c.Name, status, c.Detail)
	}
	return t
}
