package experiment

import (
	"errors"
	"fmt"

	"clumsy/internal/cache"
	"clumsy/internal/clumsy"
	"clumsy/internal/workload"
)

// The state-integrity study measures what the paper's fault-containment
// story cannot see: corruption of *cross-packet* state. The stateful
// applications (the firewall's connection table, the flow tracker's
// per-flow records) carry state a packet-boundary rollback cannot restore;
// this grid sweeps fault regime x scrub interval x workload shape and
// reports how much flow state silently diverged from the golden shadow,
// how much the checksum machinery caught, and what the recovery ladder did
// about it. The acceptance bar is the undetected-divergence column: at the
// default scrub interval it must be zero (the only escape channel is a
// 32-bit checksum collision).

// StateApps returns the stateful applications of the study.
func StateApps() []string { return []string{"fw", "flowtrack"} }

// stateScrubs are the swept scrub settings: the default interval and
// scrubbing disabled (verified reads on the access path remain the only
// detector).
var stateScrubs = []int{clumsy.DefaultScrubInterval, -1}

// stateShapes are the swept workload shapes: the canonical steady trace
// and an adversarial flash-crowd mix (malformed wire images + flow-churn
// flood) from the workload-v2 substrate.
var stateShapes = []struct {
	name string
	spec *workload.Spec
}{
	{"steady", nil},
	{"adversarial", &workload.Spec{Shape: workload.ShapeFlash, Adversarial: 0.15, Churn: 0.25}},
}

// StateCell is one cell of the regime x scrub x shape sweep for one
// stateful application, averaged over trials.
type StateCell struct {
	App    string
	Regime string
	Scrub  int // scrub interval in packets (<= 0: disabled)
	Shape  string

	Detected  float64 // mean checksum mismatches detected per run
	Evictions float64 // mean ladder evictions per run
	Rebuilds  float64 // mean shadow rebuilds per run
	Scrubs    float64 // mean scrub passes per run

	DivergedRate   float64 // mean end-of-run diverged fraction of flow records
	UndetectedRate float64 // mean diverged-yet-checksum-consistent fraction
	DropRate       float64 // mean dropped fraction of attempted packets

	CorruptFatal int  // trials ended by unrecoverable state corruption
	Fatal        bool // any trial ended fatally (for any reason)
}

// stateConfig is the common configuration of every cell: static Cr = 0.5
// (deep in the clumsy region, so faults actually land), parity with
// two-strike recovery, and drop-and-continue containment — the deployment
// posture a stateful clumsy processor would run under.
func stateConfig(app string, o Options, regime clumsy.FaultRegime, scrub int, spec *workload.Spec) clumsy.Config {
	return clumsy.Config{
		App:           app,
		Packets:       o.Packets,
		CycleTime:     0.5,
		Detection:     cache.DetectionParity,
		Strikes:       2,
		FaultScale:    o.FaultScale,
		Regime:        regime,
		ScrubInterval: scrub,
		Workload:      spec,
	}
}

// StateIntegrity sweeps fault regime x scrub interval x workload shape for
// one stateful application. Cells are journaled under "state-<app>" and
// independent, so campaign resume is order-free.
func StateIntegrity(app string, o Options) ([]StateCell, error) {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()

	regimes := Regimes()
	perRegime := len(stateScrubs) * len(stateShapes)
	cells := make([]StateCell, len(regimes)*perRegime)
	err := parallelFor(o.ctx(), len(cells), func(idx int) error {
		regime := regimes[idx/perRegime]
		scrub := stateScrubs[(idx%perRegime)/len(stateShapes)]
		shape := stateShapes[idx%len(stateShapes)]
		// The study owns its containment policy; a campaign-wide -recovery
		// switch must not turn the drop-rate measurement into abort runs.
		ropts := o
		ropts.Recovery = clumsy.RecoverDrop
		// The cell's fingerprint carries the study-specific knobs that the
		// Config annotations defer here: regime, scrub interval, and the
		// workload spec (Config.ScrubInterval / StateStrikes / Workload).
		extra := [3]string{regime.String(), fmt.Sprintf("scrub=%d", scrub), shape.name}
		if shape.spec != nil {
			extra[2] = shape.spec.String()
		}
		return runCell(o, "state-"+app, idx, extra, &cells[idx], func() (StateCell, error) {
			cell := StateCell{App: app, Regime: regime.String(), Scrub: scrub, Shape: shape.name}
			for trial := 0; trial < o.Trials; trial++ {
				cfg := stateConfig(app, o, regime, scrub, shape.spec)
				cfg.Seed = o.trialSeed(trial) // common random numbers across the grid
				res, err := ropts.run(cfg)
				if err != nil {
					return cell, fmt.Errorf("state %s %s/%s/scrub=%d: %w", app, regime, shape.name, scrub, err)
				}
				cell.Detected += float64(res.StateDetected)
				cell.Evictions += float64(res.StateEvictions)
				cell.Rebuilds += float64(res.StateRebuilds)
				cell.Scrubs += float64(res.StateScrubs)
				if res.StateRecords > 0 {
					cell.DivergedRate += float64(res.StateDiverged) / float64(res.StateRecords)
					cell.UndetectedRate += float64(res.StateUndetected) / float64(res.StateRecords)
				}
				cell.DropRate += res.Report.DropRate()
				if errors.Is(res.FatalErr, clumsy.ErrStateCorrupt) {
					cell.CorruptFatal++
				}
				if res.Report.Fatal {
					cell.Fatal = true
				}
			}
			n := float64(o.Trials)
			cell.Detected /= n
			cell.Evictions /= n
			cell.Rebuilds /= n
			cell.Scrubs /= n
			cell.DivergedRate /= n
			cell.UndetectedRate /= n
			cell.DropRate /= n
			return cell, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return cells, nil
}

// stateCell finds a cell in the sweep, or nil.
func stateCell(cells []StateCell, regime string, scrub int, shape string) *StateCell {
	for i := range cells {
		c := &cells[i]
		if c.Regime == regime && c.Scrub == scrub && c.Shape == shape {
			return c
		}
	}
	return nil
}

// StateIntegrityRender formats one application's sweep as a table:
// regime x shape down, scrub settings across, with the detection and
// divergence evidence in each cell.
func StateIntegrityRender(app string, cells []StateCell, o Options) *Table {
	if o.FaultScale == 0 {
		o.FaultScale = EDFFaultScale
	}
	o = o.withDefaults()
	t := &Table{
		Title:  fmt.Sprintf("State integrity: %s flow-table corruption under fault regime x scrub x workload shape", app),
		Header: []string{"Regime", "Shape"},
		Notes: []string{
			fmt.Sprintf("%d packets/run, %d trials, fault scale %g; Cr=0.5, parity x2, drop containment", o.Packets, o.Trials, o.FaultScale),
			"det = checksum mismatches caught, ev/rb = ladder evictions/rebuilds, div = end-of-run diverged record fraction",
			"undet = diverged yet checksum-consistent fraction (silent corruption; must be 0), + marks unrecoverable-state trials",
		},
	}
	for _, scrub := range stateScrubs {
		label := fmt.Sprintf("scrub every %d", scrub)
		if scrub <= 0 {
			label = "scrub off"
		}
		t.Header = append(t.Header, label)
	}
	for _, regime := range Regimes() {
		for _, shape := range stateShapes {
			row := []string{regime.String(), shape.name}
			for _, scrub := range stateScrubs {
				c := stateCell(cells, regime.String(), scrub, shape.name)
				cell := "-"
				if c != nil {
					cell = fmt.Sprintf("det=%.1f ev=%.1f rb=%.1f div=%.4f undet=%.4f",
						c.Detected, c.Evictions, c.Rebuilds, c.DivergedRate, c.UndetectedRate)
					if c.DropRate > 0 {
						cell += fmt.Sprintf(" drop=%.3f", c.DropRate)
					}
					if c.CorruptFatal > 0 {
						cell += fmt.Sprintf(" +%d", c.CorruptFatal)
					}
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		}
	}
	return t
}
