package experiment

import (
	"fmt"

	"clumsy/internal/apps"
	"clumsy/internal/clumsy"
	"clumsy/internal/stats"
)

// Table1Row is the per-application summary of Table I.
type Table1Row struct {
	App              string
	InstrsM          float64 // instructions simulated, millions
	CacheAccessesM   float64 // L1D accesses, millions
	MissRate         float64 // L1D miss rate
	FallibilityC50   float64 // fallibility factor at Cr = 0.5
	FallibilityC50CI float64
	FallibilityC25   float64 // fallibility factor at Cr = 0.25
	FallibilityC25CI float64
}

// Table1 reproduces Table I: workload properties from the golden run and
// fallibility factors at Cr = 0.5 and 0.25 (no detection, faults in both
// planes, averaged over trials). Each application is one campaign cell:
// journaled for resume, deadline-guarded, and retried on host failures.
func Table1(o Options) ([]Table1Row, error) {
	o = o.withDefaults()
	names := apps.Names()
	rows := make([]Table1Row, len(names))
	err := parallelFor(o.ctx(), len(names), func(ai int) error {
		name := names[ai]
		return runCell(o, "table1", ai, name, &rows[ai], func() (Table1Row, error) {
			row := Table1Row{App: name}
			for _, cr := range []float64{0.5, 0.25} {
				var fall stats.Sample
				for trial := 0; trial < o.Trials; trial++ {
					res, err := o.run(clumsy.Config{
						App:        name,
						Packets:    o.Packets,
						Seed:       o.trialSeed(trial),
						CycleTime:  cr,
						FaultScale: o.FaultScale,
					})
					if err != nil {
						return row, fmt.Errorf("table1 %s cr=%v: %w", name, cr, err)
					}
					fall.Add(res.Fallibility())
					if cr == 0.5 && trial == 0 {
						row.InstrsM = float64(res.GoldenInstrs) / 1e6
						row.CacheAccessesM = float64(res.GoldenL1DStats.Accesses()) / 1e6
						row.MissRate = res.GoldenL1DStats.MissRate()
					}
				}
				if cr == 0.5 {
					row.FallibilityC50 = fall.Mean()
					row.FallibilityC50CI = fall.CI95()
				} else {
					row.FallibilityC25 = fall.Mean()
					row.FallibilityC25CI = fall.CI95()
				}
			}
			return row, nil
		})
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table1Render formats the rows like the paper's Table I.
func Table1Render(rows []Table1Row, o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		Title: "Table I: networking applications and their properties",
		Header: []string{"App", "Instr [M]", "Cache acc [M]", "Miss rate [%]",
			"Fallibility Cr=0.5", "Fallibility Cr=0.25"},
		Notes: []string{
			fmt.Sprintf("%d packets/run, %d trials, fault scale %g, no detection, faults in both planes",
				o.Packets, o.Trials, o.FaultScale),
		},
	}
	for _, r := range rows {
		t.AddRow(r.App,
			fmt.Sprintf("%.2f", r.InstrsM),
			fmt.Sprintf("%.2f", r.CacheAccessesM),
			fmt.Sprintf("%.1f", r.MissRate*100),
			fmt.Sprintf("%.3f±%.3f", r.FallibilityC50, r.FallibilityC50CI),
			fmt.Sprintf("%.3f±%.3f", r.FallibilityC25, r.FallibilityC25CI))
	}
	return t
}
